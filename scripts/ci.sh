#!/bin/sh
# Local mirror of the CI matrix: build and run the full test suite in
# Debug and in Release (-DNDEBUG).  The guard subsystem must detect and
# recover from breakdowns in both, so neither configuration is optional.
#
# Usage: scripts/ci.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
cd "$(dirname "$0")/.."

for TYPE in Debug Release; do
  BUILD="build-ci-$TYPE"
  echo "== $TYPE =="
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE="$TYPE"
  cmake --build "$BUILD" -j "$JOBS"
  (cd "$BUILD" && ctest --output-on-failure -j "$JOBS")
done
echo "== CI matrix passed =="
