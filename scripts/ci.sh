#!/bin/sh
# Local mirror of the CI matrix: build Debug and Release and run the
# labeled test tiers (see tests/CMakeLists.txt):
#
#   Debug    unit + property + smoke + scenario  (fast correctness on
#            every build, including the pinned workload-gallery matrix)
#   Release  everything, including the "slow" tier — the determinism
#            matrix and the closed-box conservation regression
#
# The guard subsystem must detect and recover from breakdowns in both
# build types, so neither configuration is optional.  After the Release
# run, a small guarded+instrumented smoke run emits a telemetry JSON
# report under artifacts/ for CI upload.
#
# Usage: scripts/ci.sh [jobs]
set -eu

JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
cd "$(dirname "$0")/.."

echo "== tracked-tree hygiene =="
# Build trees are generated; a tracked build*/ path means someone
# committed one (the .gitignore build*/ rule only covers new files).
TRACKED_BUILD="$(git ls-files -- 'build*' | head -5)"
if [ -n "$TRACKED_BUILD" ]; then
  echo "error: generated build tree files are git-tracked:" >&2
  echo "$TRACKED_BUILD" >&2
  exit 1
fi

for TYPE in Debug Release; do
  BUILD="build-ci-$TYPE"
  echo "== $TYPE =="
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE="$TYPE"
  cmake --build "$BUILD" -j "$JOBS"
  if [ "$TYPE" = Debug ]; then
    (cd "$BUILD" && ctest --output-on-failure -j "$JOBS" \
        -L 'unit|property|smoke|scenario')
  else
    (cd "$BUILD" && ctest --output-on-failure -j "$JOBS")
  fi
done

echo "== scenario regression matrix =="
# The workload gallery gate: every registered scenario's pinned run must
# reproduce its checked-in reference hash on both engines (label covers
# the ScenarioRegressionTest binary and the scenario_matrix end-to-end
# run of the gallery tool).
(cd build-ci-Release && ctest --output-on-failure -L scenario)

echo "== scenario gallery artifact =="
# CI-tracked record of the full matrix: name, pinned hash per engine,
# reference, status.
mkdir -p artifacts
./build-ci-Release/examples/scenario_gallery --json artifacts/SCENARIOS.json
echo "wrote artifacts/SCENARIOS.json"

echo "== telemetry artifact =="
mkdir -p artifacts
./build-ci-Release/bench/fig4_scaling --cells 96 --steps 20 --threads 1,2 \
    --guard --telemetry artifacts/fig4_telemetry.json
echo "wrote artifacts/fig4_telemetry.json"

echo "== tiling ablation artifact =="
# Fast smoke-scale config of the A5 tile sweep; the JSON table is the
# CI-tracked record of tiled-vs-flattened hot-loop cost.
./build-ci-Release/bench/ablation_tiling --cells 96 --steps 10 \
    --threads 2 --json artifacts/BENCH_tiling.json
echo "wrote artifacts/BENCH_tiling.json"

echo "== checkpoint overhead artifact =="
# Durability cost record: per-step price of periodic atomic checkpoints
# at cadences {off, 100, 10} on the Fig. 4 workload.  The acceptance
# budget is < 5% overhead at the default every=100 cadence.
./build-ci-Release/bench/checkpoint_overhead --cells 96 --steps 200 \
    --threads 2 --dir artifacts/checkpoint_overhead.ckpt \
    --json artifacts/BENCH_checkpoint.json
echo "wrote artifacts/BENCH_checkpoint.json"

echo "== tasks determinism gate =="
# The task backend's bit-identity pledge (loop mode and DAG step mode
# vs serial) is part of the determinism matrix; re-run the label as a
# named gate so a tasks regression is visible by stage, not just as one
# failure inside the full Release suite.
(cd build-ci-Release && ctest --output-on-failure -L determinism)

echo "== tasks ablation artifact =="
# A7 record: work-stealing tasks (loop + DAG step modes) vs spin-pool
# and fork-join on FIG4/EXT5 grids.  Acceptance: tasks at the top
# worker count must not lose to fork-join.
./build-ci-Release/bench/ablation_tasks --cells 96 --ext5-cells 192 \
    --steps 20 --threads 1,2,4,8 --json artifacts/BENCH_tasks.json
echo "wrote artifacts/BENCH_tasks.json"

echo "== allocation ablation artifact =="
# A6 record: pooled vs per-temporary allocation on the Fig. 4 workload.
# The binary exits nonzero if any pooled steady-state step allocates.
./build-ci-Release/bench/alloc_overhead --cells 96 --steps 20 \
    --threads 2 --json artifacts/BENCH_alloc.json
echo "wrote artifacts/BENCH_alloc.json"

echo "== shard smoke + ablation artifact =="
# PR 9 record: multi-process row-block sharding.  First the elastic
# recovery end-to-end (kill one shard mid-run, resume from its own
# checkpoint store, verify the final hash against a single-process
# run), then the A9 scaling table; the bench exits nonzero if any
# shard count's hash diverges from the 1-shard reference.
rm -rf artifacts/shard_ci_ckpt
./build-ci-Release/examples/shard_interaction_2d --cells 64 --shards 2 \
    --steps 10 --checkpoint-dir artifacts/shard_ci_ckpt \
    --checkpoint-every 1 --kill-shard 1 --kill-at-step 5 --verify
./build-ci-Release/bench/ablation_shards --cells 96 --ext5-cells 192 \
    --steps 10 --shards 1,2,4,8 --json artifacts/BENCH_shard.json
echo "wrote artifacts/BENCH_shard.json"

echo "== simd ablation gate + artifact =="
# A8 record and gate: per-kernel scalar-vs-SIMD speedups plus the
# layout x simd end-to-end matrix on the Fig. 4 workload.  --gate fails
# the Release matrix when fewer than 2 kernels reach 1.3x or fused
# SoA+SIMD runs slower than scalar AoS (auto-skipped when the toolchain
# could not build an accelerated simd TU); any bit-identity violation
# fails unconditionally.
./build-ci-Release/bench/ablation_simd --cells 96 --steps 20 \
    --gate --json artifacts/BENCH_simd.json
echo "wrote artifacts/BENCH_simd.json"
echo "== CI matrix passed =="
