//===- examples/riemann_gallery.cpp - Toro's Riemann problem suite --------===//
//
// Runs the five classical Riemann problems from Toro's book through both
// the exact solver (the validation baseline) and the numerical solver,
// printing star-region values, wave structure, and L1 errors for each —
// a tour of the euler/ and solver/ public APIs.
//
// Usage: ./examples/riemann_gallery [--cells N] [--recon ...]
//
//===----------------------------------------------------------------------===//

#include "euler/ExactRiemann.h"
#include "io/AsciiPlot.h"
#include "io/FieldExport.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Error.h"

#include <cstdio>

using namespace sacfd;

namespace {

struct GalleryCase {
  const char *Name;
  double RhoL, UL, PL;
  double RhoR, UR, PR;
  double EndTime;
};

const GalleryCase Cases[] = {
    {"sod (shock tube of the paper's Fig. 1)", 1.0, 0.0, 1.0, 0.125, 0.0,
     0.1, 0.2},
    {"123 (strong double rarefaction)", 1.0, -2.0, 0.4, 1.0, 2.0, 0.4,
     0.15},
    {"left blast (p ratio 1e5)", 1.0, 0.0, 1000.0, 1.0, 0.0, 0.01, 0.012},
    {"right blast", 1.0, 0.0, 0.01, 1.0, 0.0, 100.0, 0.035},
    {"collision (two strong shocks)", 5.99924, 19.5975, 460.894, 5.99242,
     -6.19633, 46.0950, 0.035},
};

Prim<1> prim(double Rho, double U, double P) {
  Prim<1> W;
  W.Rho = Rho;
  W.Vel = {U};
  W.P = P;
  return W;
}

} // namespace

int main(int Argc, const char **Argv) {
  int Cells = 400;
  bool Plot = false;
  RunConfig Cfg;
  Cfg.Scheme.Cfl = 0.4; // headroom for the blast cases

  CommandLine CL("riemann_gallery",
                 "exact + numerical solutions of Toro's five Riemann "
                 "problems");
  CL.addInt("cells", Cells, "grid cells for the numerical runs");
  CL.addFlag("plot", Plot, "show ASCII density profiles");
  Cfg.registerAll(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  Cfg.resolveOrExit();

  std::printf("%-42s %10s %10s %7s %7s %9s\n", "case", "p*", "u*", "waveL",
              "waveR", "L1(rho)");
  for (const GalleryCase &C : Cases) {
    Prim<1> L = prim(C.RhoL, C.UL, C.PL);
    Prim<1> R = prim(C.RhoR, C.UR, C.PR);

    ExactRiemannSolver RS(L, R);
    if (!RS.valid()) {
      std::printf("%-42s  (vacuum or invalid data)\n", C.Name);
      continue;
    }

    Problem<1> Prob = sodProblem(static_cast<size_t>(Cells));
    Prob.Name = C.Name;
    Prob.InitialState = [L, R](const std::array<double, 1> &X) {
      return X[0] < 0.5 ? L : R;
    };
    Prob.EndTime = C.EndTime;

    SolverRun<1> Run = makeSolverRun(Prob, Cfg);
    Run.advanceTo(C.EndTime);
    RiemannErrors E = riemannL1Error(Run.solver(), L, R, 0.5);

    std::printf("%-42s %10.5f %10.5f %7s %7s %9.5f\n", C.Name, RS.pStar(),
                RS.uStar(), RS.leftIsShock() ? "shock" : "raref",
                RS.rightIsShock() ? "shock" : "raref", E.Rho);

    if (Plot) {
      std::vector<double> Density;
      for (const ProfileSample &S : profileOf(Run.solver()))
        Density.push_back(S.Rho);
      std::printf("%s\n", asciiLinePlot(Density, 72, 12).c_str());
    }
  }
  return 0;
}
