//===- examples/shock_interaction_2d.cpp - The paper's 2D experiment ------===//
//
// Runs the two-channel unsteady shock interaction of Section 3.2 / Fig. 2
// and writes Fig. 3-style snapshots: density and numerical-schlieren PGM
// images plus a VTK file for ParaView.  A terminal density map shows the
// structure directly (primary circular shocks, Mach stem between them).
//
// Examples:
//   ./examples/shock_interaction_2d                       # 200x200 demo
//   ./examples/shock_interaction_2d --cells 400 --frames 4
//   ./examples/shock_interaction_2d --ms 3.0 --prefix strong
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/Checkpoint.h"
#include "io/CsvWriter.h"
#include "io/FieldExport.h"
#include "io/PgmWriter.h"
#include "io/TelemetryExport.h"
#include "io/VtkWriter.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/GuardOptions.h"
#include "solver/Problems.h"
#include "solver/RunRecorder.h"
#include "solver/StepGuard.h"
#include "support/CommandLine.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/Timer.h"
#include "telemetry/TelemetryOptions.h"

#include <cstdio>
#include <memory>
#include <optional>
#include <string>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  int Cells = 200;
  double Ms = 2.2;
  double TimeFraction = 1.0;
  int Frames = 1;
  unsigned Threads = defaultThreadCount();
  std::string Prefix = "interaction";
  std::string HistoryPath;
  std::string BackendName = "spin-pool";
  std::string EngineName = "array";
  bool NoFiles = false;
  GuardCliOptions Guard;
  TelemetryCliOptions Telem;

  CommandLine CL("shock_interaction_2d",
                 "two-channel unsteady shock interaction (paper Fig. 2/3)");
  CL.addInt("cells", Cells, "grid cells per axis (paper: 400)");
  CL.addDouble("ms", Ms, "shock Mach number (paper: 2.2)");
  CL.addDouble("time-fraction", TimeFraction,
               "fraction of the nominal end time to simulate");
  CL.addInt("frames", Frames, "number of evenly spaced output frames");
  CL.addUnsigned("threads", Threads, "worker threads");
  CL.addString("backend", BackendName,
               "serial|spin-pool|fork-join|openmp");
  CL.addString("engine", EngineName, "array (SaC) | fused (Fortran)");
  CL.addString("prefix", Prefix, "output file prefix");
  CL.addString("history", HistoryPath,
               "write per-step diagnostics (dt, conservation, "
               "positivity) to this CSV file");
  CL.addFlag("no-files", NoFiles, "skip PGM/VTK output");
  Guard.registerWith(CL);
  Telem.registerWith(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Cells < 8 || Frames < 1)
    reportFatalError("need --cells >= 8 and --frames >= 1");
  Telem.apply();

  auto Kind = parseBackendKind(BackendName);
  if (!Kind)
    reportFatalError("unknown --backend value");
  auto Exec = createBackend(*Kind, Threads);
  if (!Exec)
    reportFatalError("backend not available in this build");

  // Keep the paper's geometry (h = half the domain side) at any
  // resolution by scaling the channel width with the cell count so
  // dx = 1 as in the 400x400 reference setup.
  double ChannelWidth = static_cast<double>(Cells) / 2.0;
  Problem<2> Prob = shockInteraction2D(static_cast<size_t>(Cells), Ms,
                                       ChannelWidth);
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  std::unique_ptr<EulerSolver<2>> SolverPtr;
  if (EngineName == "array")
    SolverPtr = std::make_unique<ArraySolver<2>>(Prob, Scheme, *Exec);
  else if (EngineName == "fused")
    SolverPtr = std::make_unique<FusedSolver<2>>(Prob, Scheme, *Exec);
  else
    reportFatalError("unknown --engine value (array|fused)");
  EulerSolver<2> &Solver = *SolverPtr;

  double EndTime = Prob.EndTime * TimeFraction;
  std::printf("shock_interaction_2d: %dx%d, Ms=%.2f, h=%.0f, t_end=%.2f, "
              "scheme %s, engine %s, backend %s(%u)\n",
              Cells, Cells, Ms, ChannelWidth, EndTime,
              Scheme.str().c_str(), Solver.engineName(), Exec->name(),
              Exec->workerCount());

  WallTimer Timer;
  RunRecorder<2> Recorder(/*Stride=*/5);
  std::optional<StepGuard<2>> SG;
  if (Guard.Enabled) {
    SG.emplace(Solver, Guard.config());
    Guard.armFaults(*SG);
    if (!Guard.CheckpointPath.empty())
      SG->setEmergencyCheckpoint(Guard.CheckpointPath,
                                 [&Solver](const std::string &P) {
                                   return saveCheckpoint(P, Solver);
                                 });
  }
  bool GuardFailed = false;
  for (int Frame = 1; Frame <= Frames; ++Frame) {
    double FrameEnd = EndTime * Frame / Frames;
    if (SG) {
      if (HistoryPath.empty()) {
        GuardFailed = !SG->advanceTo(FrameEnd);
      } else {
        while (Solver.time() < FrameEnd && !SG->failed())
          Recorder.advanceAndRecord(*SG);
        GuardFailed = SG->failed();
      }
    } else if (HistoryPath.empty()) {
      Solver.advanceTo(FrameEnd);
    } else {
      while (Solver.time() < FrameEnd)
        Recorder.advanceAndRecord(Solver);
    }
    if (GuardFailed)
      break;

    FieldHealth<2> H = fieldHealth(Solver);
    if (!H.AllFinite)
      reportFatalError("solution lost finiteness");
    std::printf("\nframe %d: t=%.3f steps=%u min(rho)=%.4f "
                "min(p)=%.4f\n",
                Frame, Solver.time(), Solver.stepCount(), H.MinDensity,
                H.MinPressure);

    if (!NoFiles) {
      std::string Tag = Prefix + "_f" + std::to_string(Frame);
      NDArray<double> Rho = scalarField(Solver, FieldQuantity::Density);
      if (!writePgm(Tag + "_density.pgm", Rho))
        reportFatalError("cannot write density PGM");
      if (!writePgm(Tag + "_schlieren.pgm", schlierenField(Solver)))
        reportFatalError("cannot write schlieren PGM");
      if (!writeVtk(Tag + ".vtk", Solver))
        reportFatalError("cannot write VTK file");
      std::printf("wrote %s_density.pgm, %s_schlieren.pgm, %s.vtk\n",
                  Tag.c_str(), Tag.c_str(), Tag.c_str());
    }
  }

  if (SG) {
    std::printf("\n%s\n", SG->summary().c_str());
    for (const BreakdownReport &R : SG->reports())
      std::printf("  %s\n", R.str().c_str());
  }

  std::printf("\nfinal density field (Fig. 3 analogue):\n%s",
              asciiFieldMap(scalarField(Solver, FieldQuantity::Density))
                  .c_str());
  std::printf("\nwall time %.2fs for %u steps\n", Timer.seconds(),
              Solver.stepCount());

  if (!HistoryPath.empty()) {
    if (!writeCsv(HistoryPath, RunRecorder<2>::csvHeader(),
                  Recorder.csvRows()))
      reportFatalError("cannot write history CSV");
    std::printf("history (%zu samples) written to %s; min rho seen "
                "%.4f\n",
                Recorder.samples().size(), HistoryPath.c_str(),
                Recorder.minDensitySeen());
  }

  if (Telem.enabled()) {
    TelemetryMeta Meta = {
        {"program", "shock_interaction_2d"},
        {"cells", std::to_string(Cells)},
        {"ms", std::to_string(Ms)},
        {"scheme", Scheme.str()},
        {"engine", Solver.engineName()},
        {"backend", Exec->name()},
        {"workers", std::to_string(Exec->workerCount())},
        {"guard", Guard.Enabled ? "on" : "off"},
    };
    if (!writeTelemetryJson(Telem.Path, telemetry::snapshot(), Meta))
      reportFatalError("cannot write telemetry JSON file");
    std::printf("telemetry written to %s\n", Telem.Path.c_str());
  }
  return GuardFailed ? 1 : 0;
}
