//===- examples/shock_interaction_2d.cpp - The paper's 2D experiment ------===//
//
// Runs the two-channel unsteady shock interaction of Section 3.2 / Fig. 2
// and writes Fig. 3-style snapshots: density and numerical-schlieren PGM
// images plus a VTK file for ParaView.  A terminal density map shows the
// structure directly (primary circular shocks, Mach stem between them).
//
// Examples:
//   ./examples/shock_interaction_2d                       # 200x200 demo
//   ./examples/shock_interaction_2d --cells 400 --frames 4
//   ./examples/shock_interaction_2d --ms 3.0 --prefix strong
//   ./examples/shock_interaction_2d --tile 32x128 --backend fork-join
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/CsvWriter.h"
#include "io/FieldExport.h"
#include "io/PgmWriter.h"
#include "io/RunIo.h"
#include "io/VtkWriter.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/RunRecorder.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  int Cells = 200;
  double Ms = 2.2;
  double TimeFraction = 1.0;
  int Frames = 1;
  std::string Prefix = "interaction";
  std::string HistoryPath;
  bool NoFiles = false;
  RunConfig Cfg;

  CommandLine CL("shock_interaction_2d",
                 "two-channel unsteady shock interaction (paper Fig. 2/3)");
  CL.addInt("cells", Cells, "grid cells per axis (paper: 400)");
  CL.addDouble("ms", Ms, "shock Mach number (paper: 2.2)");
  CL.addDouble("time-fraction", TimeFraction,
               "fraction of the nominal end time to simulate");
  CL.addInt("frames", Frames, "number of evenly spaced output frames");
  CL.addString("prefix", Prefix, "output file prefix");
  CL.addString("history", HistoryPath,
               "write per-step diagnostics (dt, conservation, "
               "positivity) to this CSV file");
  CL.addFlag("no-files", NoFiles, "skip PGM/VTK output");
  Cfg.registerAll(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Cells < 8 || Frames < 1)
    reportFatalError("need --cells >= 8 and --frames >= 1");
  Cfg.resolveOrExit();

  // Keep the paper's geometry (h = half the domain side) at any
  // resolution by scaling the channel width with the cell count so
  // dx = 1 as in the 400x400 reference setup.
  double ChannelWidth = static_cast<double>(Cells) / 2.0;
  // --scenario swaps in any registered 2D workload (e.g. sedov,
  // double-mach, riemann2d:config=3) in place of the default setup.
  Problem<2> Prob = resolveProblem(
      shockInteraction2D(static_cast<size_t>(Cells), Ms, ChannelWidth),
      Cfg);
  SolverRun<2> Run = makeSolverRun(Prob, Cfg);
  DurabilitySetup Durable = setupDurableRun(Run);
  if (!Durable.Ok)
    reportFatalError("--resume: no loadable checkpoint generation");
  EulerSolver<2> &Solver = Run.solver();
  if (Durable.Resumed)
    std::printf("resumed from %s at t=%.3f (%u steps)\n",
                Durable.ResumePath.c_str(), Solver.time(),
                Solver.stepCount());

  double EndTime = Prob.EndTime * TimeFraction;
  std::printf("%s: %zux%zu, t_end=%.2f, scheme %s, %s\n",
              Prob.Name.c_str(), Prob.Domain.cells(0), Prob.Domain.cells(1),
              EndTime, Cfg.Scheme.str().c_str(),
              Cfg.executionStr().c_str());

  WallTimer Timer;
  RunRecorder<2> Recorder(/*Stride=*/5);
  bool GuardFailed = false;
  for (int Frame = 1; Frame <= Frames; ++Frame) {
    double FrameEnd = EndTime * Frame / Frames;
    if (HistoryPath.empty()) {
      GuardFailed = !Run.advanceTo(FrameEnd);
    } else if (StepGuard<2> *SG = Run.guard()) {
      while (Solver.time() < FrameEnd && !SG->failed())
        Recorder.advanceAndRecord(*SG);
      GuardFailed = SG->failed();
    } else {
      while (Solver.time() < FrameEnd)
        Recorder.advanceAndRecord(Solver);
    }
    if (GuardFailed)
      break;

    FieldHealth<2> H = fieldHealth(Solver);
    if (!H.AllFinite)
      reportFatalError("solution lost finiteness");
    std::printf("\nframe %d: t=%.3f steps=%u min(rho)=%.4f "
                "min(p)=%.4f\n",
                Frame, Solver.time(), Solver.stepCount(), H.MinDensity,
                H.MinPressure);

    if (!NoFiles) {
      std::string Tag = Prefix + "_f" + std::to_string(Frame);
      NDArray<double> Rho = scalarField(Solver, FieldQuantity::Density);
      if (!writePgm(Tag + "_density.pgm", Rho))
        reportFatalError("cannot write density PGM");
      if (!writePgm(Tag + "_schlieren.pgm", schlierenField(Solver)))
        reportFatalError("cannot write schlieren PGM");
      if (!writeVtk(Tag + ".vtk", Solver))
        reportFatalError("cannot write VTK file");
      std::printf("wrote %s_density.pgm, %s_schlieren.pgm, %s.vtk\n",
                  Tag.c_str(), Tag.c_str(), Tag.c_str());
    }
  }

  if (Run.guarded()) {
    std::printf("\n");
    Run.printGuardReport();
  }

  std::printf("\nfinal density field (Fig. 3 analogue):\n%s",
              asciiFieldMap(scalarField(Solver, FieldQuantity::Density))
                  .c_str());
  std::printf("\nwall time %.2fs for %u steps\n", Timer.seconds(),
              Solver.stepCount());

  if (!HistoryPath.empty()) {
    if (!writeCsv(HistoryPath, RunRecorder<2>::csvHeader(),
                  Recorder.csvRows()))
      reportFatalError("cannot write history CSV");
    std::printf("history (%zu samples) written to %s; min rho seen "
                "%.4f\n",
                Recorder.samples().size(), HistoryPath.c_str(),
                Recorder.minDensitySeen());
  }

  std::string TelemetryError;
  if (!writeRunTelemetry(Run, "shock_interaction_2d",
                         {{"cells", std::to_string(Cells)},
                          {"ms", std::to_string(Ms)}},
                         &TelemetryError))
    reportFatalError(TelemetryError.c_str());
  return GuardFailed ? 1 : 0;
}
