//===- examples/shard_interaction_2d.cpp - Multi-process sharded run ------===//
//
// Runs the paper's two-channel shock interaction split across N forked
// shard processes (row-block decomposition with shared-memory halo
// exchange, see src/shard/).  The result is bit-identical to the
// single-process run at any shard count; --verify checks that directly
// by re-running the same workload unsharded and comparing state hashes.
//
// With --checkpoint-dir/--checkpoint-every each shard keeps its own
// durable store, and --kill-shard/--kill-at-step inject a SIGKILL into
// one shard mid-run to demonstrate elastic recovery: the victim is
// reforked and resumed from its latest generation while the other
// shards wait at the halo barrier.
//
// Examples:
//   ./examples/shard_interaction_2d --cells 200 --shards 4 --verify
//   ./examples/shard_interaction_2d --cells 100 --shards 2 --steps 20
//       --checkpoint-dir ckpt --checkpoint-every 2
//       --kill-shard 1 --kill-at-step 10 --verify
//   ./examples/shard_interaction_2d --cells 100 --shards 2 --resume
//       --checkpoint-dir ckpt --steps 10
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"
#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  int Cells = 200;
  double Ms = 2.2;
  unsigned Shards = 2;
  unsigned Steps = 10;
  std::string CheckpointDir;
  unsigned CheckpointEvery = 0;
  bool Resume = false;
  bool Verify = false;
  int KillShard = -1;
  unsigned KillAtStep = 0;

  CommandLine CL("shard_interaction_2d",
                 "sharded multi-process 2D shock interaction");
  CL.addInt("cells", Cells, "grid cells per axis");
  CL.addDouble("ms", Ms, "shock Mach number");
  CL.addUnsigned("shards", Shards, "number of shard processes (row blocks)");
  CL.addUnsigned("steps", Steps, "steps to advance this invocation");
  CL.addString("checkpoint-dir", CheckpointDir,
               "per-shard checkpoint root (shard-K subdirectories)");
  CL.addUnsigned("checkpoint-every", CheckpointEvery,
                 "checkpoint cadence in steps (0 = off)");
  CL.addFlag("resume", Resume,
             "resume every shard from its latest common generation");
  CL.addFlag("verify", Verify,
             "re-run single-process and compare state hashes");
  CL.addInt("kill-shard", KillShard,
            "SIGKILL this shard index mid-run (fault-injection demo)");
  CL.addUnsigned("kill-at-step", KillAtStep,
                 "step count at which --kill-shard fires");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Cells < 8 || Shards < 1)
    reportFatalError("need --cells >= 8 and --shards >= 1");
  if (KillShard >= static_cast<int>(Shards))
    reportFatalError("--kill-shard index out of range");

  double ChannelWidth = static_cast<double>(Cells) / 2.0;
  Problem<2> Prob =
      shockInteraction2D(static_cast<size_t>(Cells), Ms, ChannelWidth);

  ShardOptions Opt;
  Opt.Shards = Shards;
  Opt.Scheme = SchemeConfig::benchmarkScheme();
  Opt.CheckpointDir = CheckpointDir;
  Opt.CheckpointEvery = CheckpointEvery;
  Opt.Resume = Resume;
  ShardCoordinator Coord(Prob, Opt);
  if (!Coord.start())
    reportFatalError("failed to start shard fleet");
  std::printf("%s: %zux%zu, %u shards, scheme %s\n", Prob.Name.c_str(),
              Prob.Domain.cells(0), Prob.Domain.cells(1), Shards,
              Opt.Scheme.str().c_str());
  if (Resume)
    std::printf("resumed at t=%.6f (%u steps)\n", Coord.time(),
                Coord.stepCount());

  WallTimer Timer;
  const unsigned Target = Coord.stepCount() + Steps;
  bool Ok = true;
  if (KillShard >= 0 && KillAtStep > Coord.stepCount() &&
      KillAtStep < Target) {
    Ok = Coord.advanceSteps(KillAtStep - Coord.stepCount());
    if (Ok) {
      std::printf("killing shard %d at step %u\n", KillShard,
                  Coord.stepCount());
      Coord.killShard(static_cast<unsigned>(KillShard));
      Ok = Coord.advanceSteps(Target - Coord.stepCount());
    }
  } else {
    Ok = Coord.advanceSteps(Steps);
  }
  if (!Ok)
    reportFatalError("shard fleet failed to advance");

  uint64_t Hash = Coord.stateHash();
  std::printf("t=%.6f steps=%u hash=%016llx restarts=%u full-restarts=%u "
              "(%.2fs)\n",
              Coord.time(), Coord.stepCount(),
              static_cast<unsigned long long>(Hash), Coord.restartCount(),
              Coord.fullRestartCount(), Timer.seconds());
  unsigned FinalSteps = Coord.stepCount();
  Coord.shutdown();

  if (Verify) {
    RunConfig Cfg;
    Cfg.Scheme = Opt.Scheme;
    Cfg.Engine = EngineKind::Fused;
    Cfg.Backend = BackendKind::Serial;
    Cfg.Threads = 1;
    SolverRun<2> Ref(Prob, Cfg);
    Ref.solver().advanceSteps(FinalSteps);
    uint64_t RefHash = fieldStateHash(Ref.solver());
    if (RefHash != Hash) {
      std::printf("VERIFY FAILED: sharded %016llx vs single-process "
                  "%016llx\n",
                  static_cast<unsigned long long>(Hash),
                  static_cast<unsigned long long>(RefHash));
      return 1;
    }
    std::printf("VERIFY OK: matches single-process hash\n");
  }
  return 0;
}
