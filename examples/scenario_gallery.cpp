//===- examples/scenario_gallery.cpp - The workload gallery matrix --------===//
//
// Renders the scenario registry: every registered workload's pinned
// regression run, executed on both engines and checked against the
// checked-in reference hashes.  The tool behind the `scenario` ctest
// tier and the CI regression matrix.
//
// Usage:
//   scenario_gallery                 run + check the full matrix
//   scenario_gallery --only sedov    one scenario
//   scenario_gallery --json out.json machine-readable matrix (CI artifact)
//   scenario_gallery --rebaseline    emit a fresh PinnedReferences table
//
// Exit status: 0 when every pinned run matches its reference (or when
// rebaselining), 1 on any mismatch or failed run.
//
//===----------------------------------------------------------------------===//

#include "solver/Scenario.h"
#include "support/CommandLine.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

struct MatrixRow {
  ScenarioInfo Info;
  PinnedResult Array;
  PinnedResult Fused;
  bool Ran = false;
  std::string Error;

  bool ok() const {
    return Ran && Array.matched() && Fused.matched() &&
           Array.Hash == Fused.Hash;
  }
};

void writeJson(const char *Path, const std::vector<MatrixRow> &Rows) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "scenario_gallery: cannot write '%s'\n", Path);
    return;
  }
  std::fprintf(F, "{\n  \"scenarios\": [\n");
  for (size_t I = 0; I < Rows.size(); ++I) {
    const MatrixRow &R = Rows[I];
    std::fprintf(F, "    {\"name\": \"%s\", \"dim\": %u, ",
                 R.Info.Name.c_str(), R.Info.Dim);
    std::fprintf(F, "\"summary\": \"%s\", ", R.Info.Summary.c_str());
    std::fprintf(F, "\"pinned_cells\": %zu, \"pinned_steps\": %u, ",
                 R.Info.Pinned.Cells, R.Info.Pinned.Steps);
    if (R.Ran) {
      std::fprintf(F,
                   "\"hash\": \"0x%016llx\", \"fused_hash\": \"0x%016llx\", ",
                   static_cast<unsigned long long>(R.Array.Hash),
                   static_cast<unsigned long long>(R.Fused.Hash));
      std::fprintf(F, "\"time\": %.17g, \"wall_ms\": %.3f, ", R.Array.Time,
                   R.Array.WallMs + R.Fused.WallMs);
    }
    if (R.Info.Reference)
      std::fprintf(F, "\"reference\": \"0x%016llx\", ",
                   static_cast<unsigned long long>(*R.Info.Reference));
    std::fprintf(F, "\"status\": \"%s\"}%s\n",
                 R.ok() ? "ok" : (R.Ran ? "mismatch" : "error"),
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("wrote %s\n", Path);
}

} // namespace

int main(int Argc, const char **Argv) {
  std::string Only;
  std::string JsonPath;
  bool Rebaseline = false;

  CommandLine CL("scenario_gallery",
                 "run the workload gallery's pinned regression matrix");
  CL.addString("only", Only, "run a single scenario by name");
  CL.addString("json", JsonPath, "write the matrix as JSON to this path");
  CL.addFlag("rebaseline", Rebaseline,
             "emit a fresh reference table instead of checking");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;

  const ScenarioRegistry &Registry = ScenarioRegistry::instance();
  std::vector<MatrixRow> Rows;
  for (const ScenarioInfo &Info : Registry.infos()) {
    if (!Only.empty() && Info.Name != Only)
      continue;
    MatrixRow Row;
    Row.Info = Info;
    SpecParse<PinnedResult> A =
        runPinnedScenario(Info.Name, EngineKind::Array);
    SpecParse<PinnedResult> F =
        runPinnedScenario(Info.Name, EngineKind::Fused);
    if (!A || !F) {
      Row.Error = !A ? A.Error : F.Error;
    } else {
      Row.Array = *A.Value;
      Row.Fused = *F.Value;
      Row.Ran = true;
    }
    Rows.push_back(std::move(Row));
  }
  if (Rows.empty()) {
    std::fprintf(stderr,
                 "scenario_gallery: no scenario named '%s'; known: %s\n",
                 Only.c_str(), Registry.namesStr().c_str());
    return 1;
  }

  if (Rebaseline) {
    // Paste-ready rows for scenarios/PinnedReferences.cpp (array engine;
    // the fused hash is identical whenever the matrix is healthy).
    std::printf("  static constexpr Row Table[] = {\n");
    for (const MatrixRow &R : Rows) {
      if (!R.Ran) {
        std::fprintf(stderr, "scenario_gallery: %s failed: %s\n",
                     R.Info.Name.c_str(), R.Error.c_str());
        return 1;
      }
      std::printf("      {\"%s\", 0x%016llxull},\n", R.Info.Name.c_str(),
                  static_cast<unsigned long long>(R.Array.Hash));
    }
    std::printf("  };\n");
    if (!JsonPath.empty())
      writeJson(JsonPath.c_str(), Rows);
    return 0;
  }

  std::printf("%-20s %3s %7s %5s %-18s %-9s %8s\n", "scenario", "dim",
              "cells", "steps", "hash", "status", "ms");
  bool AllOk = true;
  for (const MatrixRow &R : Rows) {
    if (!R.Ran) {
      std::printf("%-20s %3u %7zu %5u %-18s %-9s\n", R.Info.Name.c_str(),
                  R.Info.Dim, R.Info.Pinned.Cells, R.Info.Pinned.Steps,
                  "-", "error");
      std::fprintf(stderr, "  %s\n", R.Error.c_str());
      AllOk = false;
      continue;
    }
    const char *Status = "ok";
    if (R.Array.Hash != R.Fused.Hash)
      Status = "engines!"; // engine divergence outranks a stale reference
    else if (!R.Info.Reference)
      Status = "new";
    else if (!R.Array.matched())
      Status = "MISMATCH";
    if (std::string(Status) != "ok")
      AllOk = false;
    std::printf("%-20s %3u %7zu %5u 0x%016llx %-9s %8.2f\n",
                R.Info.Name.c_str(), R.Info.Dim, R.Array.Cells,
                R.Array.Steps,
                static_cast<unsigned long long>(R.Array.Hash), Status,
                R.Array.WallMs + R.Fused.WallMs);
  }
  if (!JsonPath.empty())
    writeJson(JsonPath.c_str(), Rows);
  if (!AllOk)
    std::fprintf(stderr, "scenario_gallery: matrix check failed; %s\n",
                 rebaselineHint().c_str());
  return AllOk ? 0 : 1;
}
