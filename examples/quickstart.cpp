//===- examples/quickstart.cpp - Smallest end-to-end SacFD run ------------===//
//
// Solves Sod's shock tube (the paper's 1D experiment, Fig. 1) with the
// default scheme on the SaC-style spin pool and prints the density
// profile plus its error against the exact Riemann solution.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/FieldExport.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"

#include <cstdio>

using namespace sacfd;

int main() {
  // 1. Describe the run: the defaults are the paper's setup — SaC-style
  //    array engine on the persistent spin-barrier pool with one worker
  //    per hardware thread, WENO3 + HLLC + TVD RK3.
  RunConfig Cfg;

  // 2. Describe the workload: Sod's tube on 400 cells.
  Problem<1> Prob = sodProblem(/*Cells=*/400);

  // 3. Build the solver through the factory and advance to t = 0.2.
  SolverRun<1> Run = makeSolverRun(Prob, Cfg);
  Run.advanceTo(Prob.EndTime);
  EulerSolver<1> &Solver = Run.solver();

  // 4. Inspect the result.
  std::vector<double> Density;
  for (const ProfileSample &S : profileOf(Solver))
    Density.push_back(S.Rho);

  std::printf("Sod shock tube, N=400, scheme %s, %u steps to t=%.2f on "
              "backend '%s' (%u threads)\n\n",
              Cfg.Scheme.str().c_str(), Solver.stepCount(), Solver.time(),
              Run.backend().name(), Run.backend().workerCount());
  std::printf("density profile (rarefaction | contact | shock):\n%s\n",
              asciiLinePlot(Density).c_str());

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;
  RiemannErrors E = riemannL1Error(Solver, L, R, 0.5);
  std::printf("L1 error vs exact Riemann solution: rho %.5f, u %.5f, "
              "p %.5f\n",
              E.Rho, E.U, E.P);
  return 0;
}
