//===- examples/quickstart.cpp - Smallest end-to-end SacFD run ------------===//
//
// Solves Sod's shock tube (the paper's 1D experiment, Fig. 1) with the
// default scheme on the SaC-style spin pool and prints the density
// profile plus its error against the exact Riemann solution.
//
// Build & run:  ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/FieldExport.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "support/Env.h"

#include <cstdio>

using namespace sacfd;

int main() {
  // 1. Pick a backend: the persistent spin-barrier pool (SaC's runtime
  //    model) with one worker per hardware thread.
  auto Exec = createBackend(BackendKind::SpinPool, defaultThreadCount());

  // 2. Describe the workload and scheme: Sod's tube on 400 cells, the
  //    paper's flow-figure configuration (WENO3 + HLLC + TVD RK3).
  Problem<1> Prob = sodProblem(/*Cells=*/400);
  SchemeConfig Scheme = SchemeConfig::figureScheme();

  // 3. Create the SaC-style solver and advance to t = 0.2.
  ArraySolver<1> Solver(Prob, Scheme, *Exec);
  Solver.advanceTo(Prob.EndTime);

  // 4. Inspect the result.
  std::vector<double> Density;
  for (const ProfileSample &S : profileOf(Solver))
    Density.push_back(S.Rho);

  std::printf("Sod shock tube, N=400, scheme %s, %u steps to t=%.2f on "
              "backend '%s' (%u threads)\n\n",
              Scheme.str().c_str(), Solver.stepCount(), Solver.time(),
              Exec->name(), Exec->workerCount());
  std::printf("density profile (rarefaction | contact | shock):\n%s\n",
              asciiLinePlot(Density).c_str());

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;
  RiemannErrors E = riemannL1Error(Solver, L, R, 0.5);
  std::printf("L1 error vs exact Riemann solution: rho %.5f, u %.5f, "
              "p %.5f\n",
              E.Rho, E.U, E.P);
  return 0;
}
