//===- examples/sod_shock_tube.cpp - Configurable 1D tube runs ------------===//
//
// The paper's Fig. 1 experiment with every numerical knob exposed:
// reconstruction, limiter, Riemann solver, integrator, resolution,
// backend and engine are all selectable, the profile can be written to
// CSV, and the error against the exact solution is reported.
//
// Examples:
//   ./examples/sod_shock_tube --recon tvd2 --limiter superbee
//   ./examples/sod_shock_tube --engine fused --backend fortran --threads 4
//   ./examples/sod_shock_tube --cells 2000 --csv sod.csv
//   ./examples/sod_shock_tube --cfl 10 --guard --guard-checkpoint em.ckpt
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/Checkpoint.h"
#include "io/CsvWriter.h"
#include "io/TelemetryExport.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/GuardOptions.h"
#include "solver/Problems.h"
#include "solver/StepGuard.h"
#include "support/CommandLine.h"
#include "telemetry/TelemetryOptions.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  int Cells = 400;
  double Cfl = 0.5;
  double EndTime = 0.2;
  unsigned Threads = defaultThreadCount();
  std::string ReconName = "weno3";
  std::string LimiterName = "minmod";
  std::string RiemannName = "hllc";
  std::string IntegratorName = "rk3";
  std::string BackendName = "spin-pool";
  std::string EngineName = "array";
  std::string CsvPath;
  std::string SavePath;
  std::string LoadPath;
  bool Quiet = false;
  GuardCliOptions Guard;
  TelemetryCliOptions Telem;

  CommandLine CL("sod_shock_tube",
                 "Sod shock tube (paper Fig. 1) with a configurable "
                 "scheme, engine and backend");
  CL.addInt("cells", Cells, "grid cells");
  CL.addDouble("cfl", Cfl, "CFL number");
  CL.addDouble("end-time", EndTime, "simulated end time");
  CL.addUnsigned("threads", Threads, "worker threads");
  CL.addString("recon", ReconName, "pc1|tvd2|tvd3|weno3");
  CL.addString("limiter", LimiterName, "minmod|superbee|vanleer|mc");
  CL.addString("riemann", RiemannName, "rusanov|hll|hllc|roe");
  CL.addString("integrator", IntegratorName, "rk1|rk2|rk3");
  CL.addString("backend", BackendName, "serial|spin-pool|fork-join");
  CL.addString("engine", EngineName, "array (SaC) | fused (Fortran)");
  CL.addString("csv", CsvPath, "write final profile to this CSV file");
  CL.addString("save", SavePath, "write a checkpoint at the end");
  CL.addString("load", LoadPath, "restore a checkpoint before running");
  CL.addFlag("quiet", Quiet, "suppress the ASCII plot");
  Guard.registerWith(CL);
  Telem.registerWith(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  Telem.apply();

  SchemeConfig Scheme;
  Scheme.Cfl = Cfl;
  if (auto K = parseReconstructionKind(ReconName))
    Scheme.Recon = *K;
  else
    reportFatalError("unknown --recon value");
  if (auto K = parseLimiterKind(LimiterName))
    Scheme.Limiter = *K;
  else
    reportFatalError("unknown --limiter value");
  if (auto K = parseRiemannKind(RiemannName))
    Scheme.Riemann = *K;
  else
    reportFatalError("unknown --riemann value");
  if (auto K = parseTimeIntegratorKind(IntegratorName))
    Scheme.Integrator = *K;
  else
    reportFatalError("unknown --integrator value");

  auto Kind = parseBackendKind(BackendName);
  if (!Kind)
    reportFatalError("unknown --backend value");
  auto Exec = createBackend(*Kind, Threads);
  if (!Exec)
    reportFatalError("backend not available in this build");

  Problem<1> Prob = sodProblem(static_cast<size_t>(Cells));
  std::unique_ptr<EulerSolver<1>> Solver;
  if (EngineName == "array")
    Solver = std::make_unique<ArraySolver<1>>(Prob, Scheme, *Exec);
  else if (EngineName == "fused")
    Solver = std::make_unique<FusedSolver<1>>(Prob, Scheme, *Exec);
  else
    reportFatalError("unknown --engine value (array|fused)");

  if (!LoadPath.empty()) {
    if (!loadCheckpoint(LoadPath, *Solver))
      reportFatalError("cannot restore checkpoint (missing file or "
                       "mismatched problem geometry)");
    std::printf("restored checkpoint %s at t=%.4f (%u steps)\n",
                LoadPath.c_str(), Solver->time(), Solver->stepCount());
  }

  WallTimer Timer;
  bool GuardFailed = false;
  if (Guard.Enabled) {
    StepGuard<1> SG(*Solver, Guard.config());
    Guard.armFaults(SG);
    if (!Guard.CheckpointPath.empty())
      SG.setEmergencyCheckpoint(Guard.CheckpointPath,
                                [&Solver](const std::string &P) {
                                  return saveCheckpoint(P, *Solver);
                                });
    GuardFailed = !SG.advanceTo(EndTime);
    std::printf("%s\n", SG.summary().c_str());
    for (const BreakdownReport &R : SG.reports())
      std::printf("  %s\n", R.str().c_str());
  } else {
    Solver->advanceTo(EndTime);
  }
  double Seconds = Timer.seconds();

  if (!SavePath.empty()) {
    if (!saveCheckpoint(SavePath, *Solver))
      reportFatalError("cannot write checkpoint file");
    std::printf("checkpoint written to %s\n", SavePath.c_str());
  }

  std::printf("sod_shock_tube: N=%d scheme=%s engine=%s backend=%s(%u) "
              "steps=%u t=%.4f wall=%.3fs\n",
              Cells, Scheme.str().c_str(), Solver->engineName(),
              Exec->name(), Exec->workerCount(), Solver->stepCount(),
              Solver->time(), Seconds);

  std::vector<ProfileSample> Profile = profileOf(*Solver);
  if (!Quiet) {
    std::vector<double> Density;
    for (const ProfileSample &S : Profile)
      Density.push_back(S.Rho);
    std::printf("%s", asciiLinePlot(Density).c_str());
  }

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;
  RiemannErrors E = riemannL1Error(*Solver, L, R, 0.5);
  std::printf("L1 errors vs exact: rho=%.6f u=%.6f p=%.6f\n", E.Rho, E.U,
              E.P);

  FieldHealth<1> H = fieldHealth(*Solver);
  std::printf("min density %.6f, min pressure %.6f\n", H.MinDensity,
              H.MinPressure);

  if (!CsvPath.empty()) {
    if (!writeProfileCsv(CsvPath, Profile))
      reportFatalError("cannot write CSV output file");
    std::printf("profile written to %s\n", CsvPath.c_str());
  }

  if (Telem.enabled()) {
    TelemetryMeta Meta = {
        {"program", "sod_shock_tube"},
        {"cells", std::to_string(Cells)},
        {"scheme", Scheme.str()},
        {"engine", Solver->engineName()},
        {"backend", Exec->name()},
        {"workers", std::to_string(Exec->workerCount())},
        {"guard", Guard.Enabled ? "on" : "off"},
    };
    if (!writeTelemetryJson(Telem.Path, telemetry::snapshot(), Meta))
      reportFatalError("cannot write telemetry JSON file");
    std::printf("telemetry written to %s\n", Telem.Path.c_str());
  }
  return GuardFailed ? 1 : 0;
}
