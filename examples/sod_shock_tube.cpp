//===- examples/sod_shock_tube.cpp - Configurable 1D tube runs ------------===//
//
// The paper's Fig. 1 experiment with every numerical knob exposed through
// the shared RunConfig surface: reconstruction, limiter, Riemann solver,
// integrator, resolution, backend, engine, schedule/tile, guard and
// telemetry are all selectable, the profile can be written to CSV, and
// the error against the exact solution is reported.
//
// Examples:
//   ./examples/sod_shock_tube --recon tvd2 --limiter superbee
//   ./examples/sod_shock_tube --engine fused --backend fortran --threads 4
//   ./examples/sod_shock_tube --cells 2000 --csv sod.csv
//   ./examples/sod_shock_tube --cfl 10 --guard --guard-checkpoint em.ckpt
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/Checkpoint.h"
#include "io/CsvWriter.h"
#include "io/RunIo.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  int Cells = 400;
  double EndTime = 0.2;
  std::string CsvPath;
  std::string SavePath;
  std::string LoadPath;
  bool Quiet = false;
  RunConfig Cfg;

  CommandLine CL("sod_shock_tube",
                 "Sod shock tube (paper Fig. 1) with a configurable "
                 "scheme, engine and backend");
  CL.addInt("cells", Cells, "grid cells");
  CL.addDouble("end-time", EndTime, "simulated end time");
  CL.addString("csv", CsvPath, "write final profile to this CSV file");
  CL.addString("save", SavePath, "write a checkpoint at the end");
  CL.addString("load", LoadPath, "restore a checkpoint before running");
  CL.addFlag("quiet", Quiet, "suppress the ASCII plot");
  Cfg.registerAll(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  Cfg.resolveOrExit();

  // --scenario swaps in any registered 1D workload (its end time too,
  // unless --end-time was given explicitly).
  Problem<1> Prob =
      resolveProblem(sodProblem(static_cast<size_t>(Cells)), Cfg);
  if (Cfg.hasScenario() && !Cfg.flagWasSet("end-time"))
    EndTime = Prob.EndTime;
  SolverRun<1> Run = makeSolverRun(Prob, Cfg);
  DurabilitySetup Durable = setupDurableRun(Run);
  if (!Durable.Ok)
    reportFatalError("--resume: no loadable checkpoint generation");
  EulerSolver<1> &Solver = Run.solver();
  if (Durable.Resumed)
    std::printf("resumed from %s at t=%.4f (%u steps)\n",
                Durable.ResumePath.c_str(), Solver.time(),
                Solver.stepCount());

  if (!LoadPath.empty()) {
    if (CheckpointStatus St = loadCheckpoint(LoadPath, Solver); !St.ok())
      reportFatalError(("cannot restore checkpoint: " + St.str()).c_str());
    std::printf("restored checkpoint %s at t=%.4f (%u steps)\n",
                LoadPath.c_str(), Solver.time(), Solver.stepCount());
  }

  WallTimer Timer;
  bool GuardFailed = !Run.advanceTo(EndTime);
  Run.printGuardReport();
  double Seconds = Timer.seconds();

  if (!SavePath.empty()) {
    if (CheckpointStatus St = saveCheckpoint(SavePath, Solver); !St.ok())
      reportFatalError(("cannot write checkpoint: " + St.str()).c_str());
    std::printf("checkpoint written to %s\n", SavePath.c_str());
  }

  std::printf("%s: N=%zu scheme=%s engine=%s backend=%s(%u) "
              "steps=%u t=%.4f wall=%.3fs\n",
              Prob.Name.c_str(), Prob.Domain.cells(0),
              Cfg.Scheme.str().c_str(), Solver.engineName(),
              Run.backend().name(), Run.backend().workerCount(),
              Solver.stepCount(), Solver.time(), Seconds);

  std::vector<ProfileSample> Profile = profileOf(Solver);
  if (!Quiet) {
    std::vector<double> Density;
    for (const ProfileSample &S : Profile)
      Density.push_back(S.Rho);
    std::printf("%s", asciiLinePlot(Density).c_str());
  }

  if (Prob.Name == "sod") {
    // The exact-solution comparison only applies to the Sod data.
    Prim<1> L, R;
    L.Rho = 1.0;
    L.Vel = {0.0};
    L.P = 1.0;
    R.Rho = 0.125;
    R.Vel = {0.0};
    R.P = 0.1;
    RiemannErrors E = riemannL1Error(Solver, L, R, 0.5);
    std::printf("L1 errors vs exact: rho=%.6f u=%.6f p=%.6f\n", E.Rho, E.U,
                E.P);
  }

  FieldHealth<1> H = fieldHealth(Solver);
  std::printf("min density %.6f, min pressure %.6f\n", H.MinDensity,
              H.MinPressure);

  if (!CsvPath.empty()) {
    if (!writeProfileCsv(CsvPath, Profile))
      reportFatalError("cannot write CSV output file");
    std::printf("profile written to %s\n", CsvPath.c_str());
  }

  std::string TelemetryError;
  if (!writeRunTelemetry(Run, "sod_shock_tube",
                         {{"cells", std::to_string(Cells)}},
                         &TelemetryError))
    reportFatalError(TelemetryError.c_str());
  return GuardFailed ? 1 : 0;
}
