//===- kernels/Kernels.h - Vectorized per-stage solver kernels -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified kernel layer both engines lower their hot loops onto.
///
/// Every kernel operates on a contiguous run of cells described by a
/// Run/ConstRun view: one pointer per conserved component plus a shared
/// element stride.  AoS storage presents as stride NumVars with the
/// component pointers offset inside the first record; SoA storage
/// presents as stride 1 with one pointer per plane.  No NDArray (or any
/// container) appears in these signatures — the engines translate their
/// index spaces into runs, and this layer owns the arithmetic.
///
/// Each kernel exists twice, in scalarimpl:: (compiled with vectorization
/// disabled — the honest scalar baseline) and simdimpl:: (compiled with
/// the host ISA, OpenMP SIMD pragmas, and contraction off).  The public
/// inline wrappers dispatch on a runtime `Simd` flag.  The two builds
/// are bit-identical by construction: the SIMD bodies are elementwise
/// rewrites of the same IEEE arithmetic with branches turned into
/// selects (the f18 lowering rules: no reassociation of non-exact
/// reductions, no contraction, selected-lane arithmetic identical to the
/// branchy original), and KernelsTest asserts equality bit-for-bit,
/// ragged tails included.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_KERNELS_KERNELS_H
#define SACFD_KERNELS_KERNELS_H

#include "euler/Gas.h"
#include "euler/State.h"
#include "numerics/Reconstruction.h"
#include "numerics/RiemannSolvers.h"

#include <cassert>
#include <cstddef>
#include <type_traits>

namespace sacfd {
namespace kernels {

/// Mutable view of a contiguous run of cells: component pointers at the
/// run's first cell, all advanced by Stride elements per cell.
template <unsigned Dim> struct Run {
  double *C[NumVars<Dim>] = {};
  ptrdiff_t Stride = 1;
};

/// Read-only run view.
template <unsigned Dim> struct ConstRun {
  const double *C[NumVars<Dim>] = {};
  ptrdiff_t Stride = 1;

  ConstRun() = default;
  ConstRun(const Run<Dim> &R) : Stride(R.Stride) {
    for (unsigned K = 0; K < NumVars<Dim>; ++K)
      C[K] = R.C[K];
  }
};

/// The kernel layer reinterprets Cons records as component doubles; both
/// facts below are what make that well-defined.
template <unsigned Dim> constexpr void assertConsLayout() {
  static_assert(std::is_standard_layout_v<Cons<Dim>>,
                "Cons must be reinterpretable as doubles");
  static_assert(sizeof(Cons<Dim>) == NumVars<Dim> * sizeof(double),
                "Cons must pack its components with no padding");
}

/// Run over interleaved Cons records starting at \p P.
template <unsigned Dim> inline Run<Dim> aosRun(Cons<Dim> *P) {
  assertConsLayout<Dim>();
  Run<Dim> R;
  double *B = reinterpret_cast<double *>(P);
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] = B + K;
  R.Stride = NumVars<Dim>;
  return R;
}
template <unsigned Dim> inline ConstRun<Dim> aosRun(const Cons<Dim> *P) {
  assertConsLayout<Dim>();
  ConstRun<Dim> R;
  const double *B = reinterpret_cast<const double *>(P);
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] = B + K;
  R.Stride = NumVars<Dim>;
  return R;
}

/// Run over SoA planes: component K lives at Base + K * PlaneStride,
/// and the run starts \p Offset cells into each plane.
template <unsigned Dim>
inline Run<Dim> soaRun(double *Base, size_t PlaneStride, size_t Offset) {
  Run<Dim> R;
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] = Base + K * PlaneStride + Offset;
  R.Stride = 1;
  return R;
}
template <unsigned Dim>
inline ConstRun<Dim> soaRun(const double *Base, size_t PlaneStride,
                            size_t Offset) {
  ConstRun<Dim> R;
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] = Base + K * PlaneStride + Offset;
  R.Stride = 1;
  return R;
}

/// \returns \p R advanced by \p Cells cells.
template <unsigned Dim> inline Run<Dim> advance(Run<Dim> R, ptrdiff_t Cells) {
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] += Cells * R.Stride;
  return R;
}
template <unsigned Dim>
inline ConstRun<Dim> advance(ConstRun<Dim> R, ptrdiff_t Cells) {
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] += Cells * R.Stride;
  return R;
}

/// Scalar element access through a run (boundaries, tests, staging).
template <unsigned Dim>
inline Cons<Dim> loadCons(const ConstRun<Dim> &R, size_t I) {
  const ptrdiff_t O = static_cast<ptrdiff_t>(I) * R.Stride;
  Cons<Dim> Q;
  Q.Rho = R.C[0][O];
  for (unsigned D = 0; D < Dim; ++D)
    Q.Mom[D] = R.C[1 + D][O];
  Q.E = R.C[Dim + 1][O];
  return Q;
}
template <unsigned Dim>
inline void storeCons(const Run<Dim> &R, size_t I, const Cons<Dim> &Q) {
  const ptrdiff_t O = static_cast<ptrdiff_t>(I) * R.Stride;
  R.C[0][O] = Q.Rho;
  for (unsigned D = 0; D < Dim; ++D)
    R.C[1 + D][O] = Q.Mom[D];
  R.C[Dim + 1][O] = Q.E;
}

/// True when the per-line flux kernel applies: piecewise-constant
/// reconstruction makes a face's L/R states the two adjacent cells, so
/// the whole face line is two shifted runs.  Higher-order
/// reconstructions keep the engines' stencil-gather paths.
constexpr bool fluxKernelEligible(ReconstructionKind Recon) {
  return Recon == ReconstructionKind::PiecewiseConstant;
}

/// True when this build compiled simdimpl:: with host-ISA acceleration
/// (the -march/-fopenmp-simd TU); false means simdimpl is a plain
/// recompile and `--no-simd` is only a dispatch formality.
bool simdAccelerated();

// Per-TU implementations.  scalarimpl is compiled with vectorization
// disabled; simdimpl with the host ISA and contraction off.  Both are
// defined out-of-line (KernelsScalar.cpp / KernelsSimd.cpp) with
// explicit instantiations for Dim = 1, 2, 3.
#define SACFD_KERNELS_DECLARE                                                  \
  template <unsigned Dim>                                                      \
  void copyState(const ConstRun<Dim> &Src, const Run<Dim> &Dst, size_t N);     \
  template <unsigned Dim> void zeroState(const Run<Dim> &Dst, size_t N);       \
  template <unsigned Dim>                                                      \
  void sspUpdate(const Run<Dim> &U, const ConstRun<Dim> &Un,                   \
                 const ConstRun<Dim> &Res, double A, double B, double Dt,      \
                 size_t N);                                                    \
  template <unsigned Dim>                                                      \
  double maxEigen(const ConstRun<Dim> &U, const Gas &G, const double *InvDx,   \
                  double Acc, size_t N);                                       \
  template <unsigned Dim>                                                      \
  void accumDivergence(const Run<Dim> &Res, const ConstRun<Dim> &Lo,           \
                       const ConstRun<Dim> &Hi, double InvDx, size_t N);       \
  template <unsigned Dim>                                                      \
  void fluxFaces(const ConstRun<Dim> &L, const ConstRun<Dim> &R,               \
                 const Run<Dim> &F, const Gas &G, unsigned Axis,               \
                 RiemannKind Kind, size_t N);

namespace scalarimpl {
SACFD_KERNELS_DECLARE
}
namespace simdimpl {
SACFD_KERNELS_DECLARE
}
#undef SACFD_KERNELS_DECLARE

// Public dispatchers: one runtime branch per kernel call (calls cover
// whole lines, so the branch is noise).

template <unsigned Dim>
inline void copyState(const ConstRun<Dim> &Src, const Run<Dim> &Dst, size_t N,
                      bool Simd) {
  (Simd ? simdimpl::copyState<Dim> : scalarimpl::copyState<Dim>)(Src, Dst, N);
}

template <unsigned Dim>
inline void zeroState(const Run<Dim> &Dst, size_t N, bool Simd) {
  (Simd ? simdimpl::zeroState<Dim> : scalarimpl::zeroState<Dim>)(Dst, N);
}

template <unsigned Dim>
inline void sspUpdate(const Run<Dim> &U, const ConstRun<Dim> &Un,
                      const ConstRun<Dim> &Res, double A, double B, double Dt,
                      size_t N, bool Simd) {
  (Simd ? simdimpl::sspUpdate<Dim> : scalarimpl::sspUpdate<Dim>)(U, Un, Res, A,
                                                                 B, Dt, N);
}

template <unsigned Dim>
inline double maxEigen(const ConstRun<Dim> &U, const Gas &G,
                       const double *InvDx, double Acc, size_t N, bool Simd) {
  return (Simd ? simdimpl::maxEigen<Dim> : scalarimpl::maxEigen<Dim>)(
      U, G, InvDx, Acc, N);
}

template <unsigned Dim>
inline void accumDivergence(const Run<Dim> &Res, const ConstRun<Dim> &Lo,
                            const ConstRun<Dim> &Hi, double InvDx, size_t N,
                            bool Simd) {
  (Simd ? simdimpl::accumDivergence<Dim>
        : scalarimpl::accumDivergence<Dim>)(Res, Lo, Hi, InvDx, N);
}

template <unsigned Dim>
inline void fluxFaces(const ConstRun<Dim> &L, const ConstRun<Dim> &R,
                      const Run<Dim> &F, const Gas &G, unsigned Axis,
                      RiemannKind Kind, size_t N, bool Simd) {
  // The branch-free SIMD mirror covers the unit-stride (SoA) runs of the
  // three algebraic solvers; Roe's eigen-decomposition and AoS gathers
  // stay on the reference loop.
  bool Vector = Simd && Kind != RiemannKind::Roe && L.Stride == 1 &&
                R.Stride == 1 && F.Stride == 1;
  (Vector ? simdimpl::fluxFaces<Dim> : scalarimpl::fluxFaces<Dim>)(
      L, R, F, G, Axis, Kind, N);
}

} // namespace kernels
} // namespace sacfd

#endif // SACFD_KERNELS_KERNELS_H
