//===- kernels/KernelsScalar.cpp - Scalar-baseline kernel build -----------===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
//
// The honest scalar baseline: compiled with auto-vectorization disabled
// (see kernels/CMakeLists.txt) so `--no-simd` and the A8 ablation
// measure scalar code, not whatever the optimizer felt like widening.
//
//===----------------------------------------------------------------------===//

#define SACFD_KERNEL_NS scalarimpl
#include "kernels/KernelsTU.inc"
