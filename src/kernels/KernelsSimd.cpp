//===- kernels/KernelsSimd.cpp - Host-ISA vectorized kernel build ---------===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
//
// Compiled with the host ISA, OpenMP SIMD pragmas honored, and FP
// contraction off (see kernels/CMakeLists.txt): wide instructions are
// welcome, silent FMA fusion — the one codegen freedom that changes
// bits — is not.  When the toolchain lacks the flags, this TU is a plain
// recompile of the same source and simdAccelerated() reports false.
//
//===----------------------------------------------------------------------===//

#define SACFD_KERNEL_NS simdimpl
#include "kernels/KernelsTU.inc"

namespace sacfd {
namespace kernels {

bool simdAccelerated() {
#ifdef SACFD_SIMD_ACCEL
  return true;
#else
  return false;
#endif
}

} // namespace kernels
} // namespace sacfd
