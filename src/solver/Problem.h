//===- solver/Problem.h - Workload description -----------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained simulation setup: grid, gas, boundary conditions and
/// initial state.  Concrete instances (Sod tube, the two-channel shock
/// interaction, ...) live in Problems.h.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_PROBLEM_H
#define SACFD_SOLVER_PROBLEM_H

#include "euler/Gas.h"
#include "euler/State.h"
#include "solver/BoundaryConditions.h"
#include "solver/Grid.h"

#include <array>
#include <functional>
#include <string>

namespace sacfd {

/// A complete workload the solvers can be pointed at.
template <unsigned Dim> struct Problem {
  std::string Name;
  Grid<Dim> Domain;
  BoundarySpec<Dim> Boundary;
  Gas G;
  /// Initial primitive state as a function of the cell-center position.
  std::function<Prim<Dim>(const std::array<double, Dim> &)> InitialState;
  /// The physically interesting duration (benchmarks may override).
  /// Defaults to 0 = unset: a problem that forgets to choose one is
  /// rejected by the scenario registry with a structured error instead
  /// of silently simulating to an arbitrary time (scenario factories
  /// must produce hasEndTime() problems).
  double EndTime = 0.0;

  /// True when a positive end time has been chosen.
  bool hasEndTime() const { return EndTime > 0.0; }
};

} // namespace sacfd

#endif // SACFD_SOLVER_PROBLEM_H
