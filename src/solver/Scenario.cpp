//===- solver/Scenario.cpp - Workload registry + pinned regressions -------===//

#include "solver/Scenario.h"

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/FusedSolver.h"
#include "solver/scenarios/BuiltinScenarios.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <chrono>
#include <memory>

using namespace sacfd;

//===----------------------------------------------------------------------===//
// Spec grammar
//===----------------------------------------------------------------------===//

namespace {

constexpr const char *SpecGrammar =
    "expected name[:key=value,...] with lowercase names/keys of letters, "
    "digits and '-'";

bool isSpecWord(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (!((C >= 'a' && C <= 'z') || (C >= '0' && C <= '9') || C == '-'))
      return false;
  return true;
}

} // namespace

SpecParse<ScenarioSpec> ScenarioSpec::parse(std::string_view Text) {
  using Result = SpecParse<ScenarioSpec>;
  Text = trim(Text);
  if (Text.empty())
    return Result::fail(std::string("empty scenario spec; ") + SpecGrammar);

  ScenarioSpec S;
  size_t Colon = Text.find(':');
  std::string_view Name =
      Colon == std::string_view::npos ? Text : Text.substr(0, Colon);
  if (!isSpecWord(Name))
    return Result::fail("bad scenario name '" + std::string(Name) + "'; " +
                        SpecGrammar);
  S.Name = std::string(Name);
  if (Colon == std::string_view::npos)
    return Result::ok(std::move(S));

  std::string_view Rest = Text.substr(Colon + 1);
  if (Rest.empty())
    return Result::fail("scenario '" + S.Name +
                        "': empty parameter list after ':'; " + SpecGrammar);
  // Segment split: every comma terminates a segment, so a trailing comma
  // ("cells=64,") or doubled comma produces an *empty* segment that must
  // be rejected — the old substr-and-drop loop silently swallowed it.
  for (unsigned Segment = 1; true; ++Segment) {
    size_t Comma = Rest.find(',');
    std::string_view Piece =
        Comma == std::string_view::npos ? Rest : Rest.substr(0, Comma);
    if (Piece.empty())
      return Result::fail("scenario '" + S.Name + "': empty parameter segment " +
                          std::to_string(Segment) +
                          (Comma == std::string_view::npos
                               ? " (trailing ',')"
                               : " (before ',')") +
                          "; " + SpecGrammar);
    size_t Eq = Piece.find('=');
    if (Eq == std::string_view::npos)
      return Result::fail("scenario '" + S.Name + "': parameter '" +
                          std::string(Piece) + "' is not key=value; " +
                          SpecGrammar);
    std::string_view Key = Piece.substr(0, Eq);
    std::string_view Value = Piece.substr(Eq + 1);
    if (!isSpecWord(Key))
      return Result::fail("scenario '" + S.Name + "': bad parameter key '" +
                          std::string(Key) + "'; " + SpecGrammar);
    if (Value.empty())
      return Result::fail("scenario '" + S.Name + "': parameter '" +
                          std::string(Key) + "' has an empty value; " +
                          SpecGrammar);
    if (S.find(Key))
      return Result::fail("scenario '" + S.Name + "': duplicate parameter '" +
                          std::string(Key) + "'");
    S.Params.emplace_back(std::string(Key), std::string(Value));
    if (Comma == std::string_view::npos)
      break;
    Rest = Rest.substr(Comma + 1);
  }
  return Result::ok(std::move(S));
}

std::string ScenarioSpec::str() const {
  std::string Out = Name;
  for (size_t I = 0; I < Params.size(); ++I) {
    Out += I == 0 ? ':' : ',';
    Out += Params[I].first;
    Out += '=';
    Out += Params[I].second;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Typed parameter access
//===----------------------------------------------------------------------===//

SpecParse<unsigned> ScenarioArgs::getUnsigned(std::string_view Key,
                                              unsigned Default) const {
  using Result = SpecParse<unsigned>;
  const std::string *Text = Spec->find(Key);
  if (!Text)
    return Result::ok(Default);
  std::optional<unsigned long long> V = parseUnsigned(*Text);
  if (!V || *V > std::numeric_limits<unsigned>::max())
    return Result::fail("scenario '" + Spec->Name + "': parameter '" +
                        std::string(Key) + "' wants a non-negative integer, "
                        "got '" + *Text + "'");
  return Result::ok(static_cast<unsigned>(*V));
}

SpecParse<double> ScenarioArgs::getDouble(std::string_view Key,
                                          double Default) const {
  using Result = SpecParse<double>;
  const std::string *Text = Spec->find(Key);
  if (!Text)
    return Result::ok(Default);
  std::optional<double> V = parseDouble(*Text);
  if (!V)
    return Result::fail("scenario '" + Spec->Name + "': parameter '" +
                        std::string(Key) + "' wants a number, got '" + *Text +
                        "'");
  return Result::ok(*V);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

ScenarioRegistry::ScenarioRegistry() = default;

ScenarioRegistry &ScenarioRegistry::instance() {
  static ScenarioRegistry *R = [] {
    // Leaked singleton: scenario factories may be registered from static
    // initializers (ScenarioRegistrar), so the registry must outlive
    // every static destructor.
    auto *Reg = new ScenarioRegistry();
    registerTubes1DScenarios(*Reg);
    registerClassic2DScenarios(*Reg);
    registerSedovScenario(*Reg);
    registerDoubleMachScenario(*Reg);
    registerShockBubbleScenario(*Reg);
    registerPinnedReferences(*Reg);
    return Reg;
  }();
  return *R;
}

void ScenarioRegistry::add(Scenario<1> S) {
  S1.erase(std::remove_if(S1.begin(), S1.end(),
                          [&](const Scenario<1> &E) { return E.Name == S.Name; }),
           S1.end());
  S1.push_back(std::move(S));
}

void ScenarioRegistry::add(Scenario<2> S) {
  S2.erase(std::remove_if(S2.begin(), S2.end(),
                          [&](const Scenario<2> &E) { return E.Name == S.Name; }),
           S2.end());
  S2.push_back(std::move(S));
}

void ScenarioRegistry::setReferenceHash(std::string Name, uint64_t Hash) {
  for (auto &KV : References)
    if (KV.first == Name) {
      KV.second = Hash;
      return;
    }
  References.emplace_back(std::move(Name), Hash);
}

std::optional<uint64_t>
ScenarioRegistry::referenceHash(std::string_view Name) const {
  for (const auto &KV : References)
    if (KV.first == Name)
      return KV.second;
  return std::nullopt;
}

unsigned ScenarioRegistry::dimOf(std::string_view Name) const {
  if (find<1>(Name))
    return 1;
  if (find<2>(Name))
    return 2;
  return 0;
}

const ScenarioTuning *
ScenarioRegistry::tuningFor(std::string_view Name) const {
  if (const Scenario<1> *S = find<1>(Name))
    return &S->Tuning;
  if (const Scenario<2> *S = find<2>(Name))
    return &S->Tuning;
  return nullptr;
}

std::vector<ScenarioInfo> ScenarioRegistry::infos() const {
  std::vector<ScenarioInfo> Out;
  auto Push = [&](const auto &S, unsigned Dim) {
    ScenarioInfo I;
    I.Name = S.Name;
    I.Dim = Dim;
    I.Summary = S.Summary;
    I.DefaultCells = S.DefaultCells;
    I.Pinned = S.Pinned;
    I.Params = S.Params;
    I.Reference = referenceHash(S.Name);
    Out.push_back(std::move(I));
  };
  for (const Scenario<1> &S : S1)
    Push(S, 1);
  for (const Scenario<2> &S : S2)
    Push(S, 2);
  std::sort(Out.begin(), Out.end(),
            [](const ScenarioInfo &A, const ScenarioInfo &B) {
              return A.Dim != B.Dim ? A.Dim < B.Dim : A.Name < B.Name;
            });
  return Out;
}

std::string ScenarioRegistry::namesStr() const {
  std::vector<std::string> Names;
  for (const Scenario<1> &S : S1)
    Names.push_back(S.Name);
  for (const Scenario<2> &S : S2)
    Names.push_back(S.Name);
  std::sort(Names.begin(), Names.end());
  std::string Out;
  for (const std::string &N : Names) {
    if (!Out.empty())
      Out += ", ";
    Out += N;
  }
  return Out;
}

SpecParse<ScenarioSpec> ScenarioRegistry::validate(const ScenarioSpec &Spec,
                                                   unsigned Dim) const {
  using Result = SpecParse<ScenarioSpec>;
  unsigned D = dimOf(Spec.Name);
  if (D == 0)
    return Result::fail("unknown scenario '" + Spec.Name +
                        "'; known scenarios: " + namesStr());
  if (Dim != 0 && D != Dim)
    return Result::fail("scenario '" + Spec.Name + "' is a " +
                        std::to_string(D) + "D workload; this tool runs " +
                        std::to_string(Dim) + "D problems");

  const std::vector<ScenarioParam> *Params = nullptr;
  if (D == 1)
    Params = &find<1>(Spec.Name)->Params;
  else
    Params = &find<2>(Spec.Name)->Params;

  for (const auto &KV : Spec.Params) {
    if (KV.first == "cells")
      continue;
    bool Declared = false;
    for (const ScenarioParam &P : *Params)
      if (P.Key == KV.first) {
        Declared = true;
        break;
      }
    if (!Declared) {
      std::string Accepted = "cells";
      for (const ScenarioParam &P : *Params)
        Accepted += ", " + P.Key;
      return Result::fail("scenario '" + Spec.Name +
                          "' does not accept parameter '" + KV.first +
                          "'; accepted: " + Accepted);
    }
  }
  return Result::ok(Spec);
}

//===----------------------------------------------------------------------===//
// Pinned regression runs
//===----------------------------------------------------------------------===//

namespace {

template <unsigned Dim>
SpecParse<PinnedResult> runPinnedImpl(const Scenario<Dim> &S,
                                      EngineKind Engine, Layout FieldLayout,
                                      std::optional<uint64_t> Expected) {
  using Result = SpecParse<PinnedResult>;

  // The pinned configuration is frozen: figure scheme + scenario tuning,
  // serial backend, one thread.  Reference hashes are only meaningful
  // against this exact setup.
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  if (S.Tuning.Cfl)
    Scheme.Cfl = *S.Tuning.Cfl;
  if (S.Tuning.Recon)
    Scheme.Recon = *S.Tuning.Recon;

  ScenarioSpec Spec;
  Spec.Name = S.Name;
  ScenarioArgs Args(Spec, S.Pinned.Cells, ghostCells(Scheme.Recon));
  SpecParse<Problem<Dim>> Built = S.Build(Args);
  if (!Built)
    return Result::fail(Built.Error);
  if (!Built.Value->hasEndTime())
    return Result::fail("scenario '" + S.Name +
                        "' produced a problem without an end time");

  std::unique_ptr<Backend> Exec = createBackend(BackendKind::Serial, 1);
  std::unique_ptr<EulerSolver<Dim>> Solver;
  switch (Engine) {
  case EngineKind::Array:
    Solver = std::make_unique<ArraySolver<Dim>>(std::move(*Built.Value),
                                                Scheme, *Exec,
                                                ArrayEvalMode::Fused,
                                                FieldLayout);
    break;
  case EngineKind::ArrayMaterialized:
    Solver = std::make_unique<ArraySolver<Dim>>(
        std::move(*Built.Value), Scheme, *Exec, ArrayEvalMode::Materialized,
        FieldLayout);
    break;
  case EngineKind::Fused:
    Solver = std::make_unique<FusedSolver<Dim>>(std::move(*Built.Value),
                                                Scheme, *Exec, FieldLayout);
    break;
  }

  auto Start = std::chrono::steady_clock::now();
  Solver->advanceSteps(S.Pinned.Steps);
  auto End = std::chrono::steady_clock::now();

  PinnedResult R;
  R.Name = S.Name;
  R.Dim = Dim;
  R.Cells = S.Pinned.Cells;
  R.Steps = S.Pinned.Steps;
  R.Time = Solver->time();
  R.WallMs =
      std::chrono::duration<double, std::milli>(End - Start).count();
  R.Hash = fieldStateHash(*Solver);
  R.Expected = Expected;
  return Result::ok(std::move(R));
}

} // namespace

SpecParse<PinnedResult> sacfd::runPinnedScenario(std::string_view Name,
                                                 EngineKind Engine,
                                                 Layout FieldLayout) {
  using Result = SpecParse<PinnedResult>;
  const ScenarioRegistry &R = ScenarioRegistry::instance();
  std::optional<uint64_t> Expected = R.referenceHash(Name);
  if (const Scenario<1> *S = R.find<1>(Name))
    return runPinnedImpl(*S, Engine, FieldLayout, Expected);
  if (const Scenario<2> *S = R.find<2>(Name))
    return runPinnedImpl(*S, Engine, FieldLayout, Expected);
  return Result::fail("unknown scenario '" + std::string(Name) +
                      "'; known scenarios: " + R.namesStr());
}

std::string sacfd::rebaselineHint() {
  return "to refresh after an intentional numerics change, run "
         "`scenario_gallery --rebaseline` (built under examples/) and "
         "paste the emitted table into "
         "src/solver/scenarios/PinnedReferences.cpp";
}
