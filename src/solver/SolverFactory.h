//===- solver/SolverFactory.h - RunConfig -> ready-to-run solver *- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The supported way to build a solver: makeSolverRun() turns a Problem
/// plus a RunConfig into a SolverRun owning the backend, the engine and
/// (when enabled) the step guard, with fault injection already armed.
/// Direct EulerSolver construction remains available for library code and
/// tests, but tools should go through the factory so every example and
/// bench honors the same flags the same way.
///
/// SolverRun's advance calls route through the guard automatically when
/// one is configured, so call sites need no `if (guard)` forks.  The
/// emergency-checkpoint callback is io's job (io links against solver,
/// not the reverse) — see io/RunIo.h installEmergencyCheckpoint().
///
/// Periodic checkpointing follows the same layering: io installs an
/// opaque hook via setPeriodicCheckpoint() (see io/RunIo.h
/// setupDurableRun()), and the advance calls fire it every N accepted
/// steps.  The hooked step loops replicate the exact dt arithmetic of
/// the unhooked fast paths, so durable runs stay bit-identical to plain
/// ones — the property the kill-and-resume tests assert.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_SOLVERFACTORY_H
#define SACFD_SOLVER_SOLVERFACTORY_H

#include "solver/ArraySolver.h"
#include "solver/FusedSolver.h"
#include "solver/RunConfig.h"
#include "solver/Scenario.h"
#include "solver/StepGuard.h"
#include "support/Error.h"

#include <cstdio>
#include <functional>
#include <memory>
#include <utility>

namespace sacfd {

/// A ready-to-run solver with its backend and optional step guard.
/// Movable (everything it owns lives on the heap, so the guard's
/// reference into the solver stays valid), not copyable.
template <unsigned Dim> class SolverRun {
public:
  SolverRun(Problem<Dim> Prob, const RunConfig &Config) : Cfg(Config) {
    Exec = Cfg.makeBackend();
    if (!Exec)
      reportFatalError("backend not available in this build");
    switch (Cfg.Engine) {
    case EngineKind::Array:
      Solver = std::make_unique<ArraySolver<Dim>>(
          std::move(Prob), Cfg.Scheme, *Exec, ArrayEvalMode::Fused,
          Cfg.FieldLayout, Cfg.Simd);
      break;
    case EngineKind::ArrayMaterialized:
      Solver = std::make_unique<ArraySolver<Dim>>(
          std::move(Prob), Cfg.Scheme, *Exec, ArrayEvalMode::Materialized,
          Cfg.FieldLayout, Cfg.Simd);
      break;
    case EngineKind::Fused: {
      auto Fused = std::make_unique<FusedSolver<Dim>>(
          std::move(Prob), Cfg.Scheme, *Exec, Cfg.FieldLayout, Cfg.Simd);
      if (Cfg.Step == StepMode::Dag && !Fused->enableDagStepping()) {
        // resolve() validated backend/engine, so the only ways here are a
        // 3D problem or a hand-built RunConfig that skipped resolve().
        if constexpr (Dim > 2)
          reportFatalError("--step-mode=dag supports 1D/2D problems only");
        reportFatalError("--step-mode=dag requires the tasks backend");
      }
      Solver = std::move(Fused);
      break;
    }
    }
    Solver->fieldPool().setEnabled(Cfg.Pooling);
    if (Cfg.Guard.Enabled) {
      Guard = std::make_unique<StepGuard<Dim>>(*Solver, Cfg.Guard.config());
      Cfg.Guard.armFaults(*Guard);
    }
  }

  const RunConfig &config() const { return Cfg; }
  EulerSolver<Dim> &solver() { return *Solver; }
  const EulerSolver<Dim> &solver() const { return *Solver; }
  Backend &backend() { return *Exec; }
  const Backend &backend() const { return *Exec; }

  /// The step guard, or nullptr when --guard was not given.
  StepGuard<Dim> *guard() { return Guard.get(); }
  const StepGuard<Dim> *guard() const { return Guard.get(); }

  bool guarded() const { return Guard != nullptr; }

  /// \returns true when the guard has terminally failed the run.
  bool failed() const { return Guard && Guard->failed(); }

  /// Installs a periodic checkpoint: during advanceTo/advanceSteps,
  /// \p Hook fires after every \p EverySteps accepted steps (measured
  /// from the current step count; \p EverySteps 0 or a null hook
  /// disables).  The hook must not mutate the solver — it snapshots it.
  /// Installed by io/RunIo.h setupDurableRun(), not by tools directly.
  void setPeriodicCheckpoint(unsigned EverySteps, std::function<void()> Hook) {
    CkptEvery = EverySteps;
    CkptHook = std::move(Hook);
    LastCkptStep = Solver->stepCount();
  }

  /// Advances to \p EndTime (guarded when configured).  \returns false
  /// on terminal guard failure.
  bool advanceTo(double EndTime) {
    if (!periodicArmed()) {
      if (Guard)
        return Guard->advanceTo(EndTime);
      Solver->advanceTo(EndTime);
      return true;
    }
    // Same arithmetic as the fast paths, chunked so the hook can fire:
    // guard windows when guarded, single clamped CFL steps otherwise.
    while (!failed() && Solver->time() < EndTime) {
      if (Guard) {
        Guard->advanceWindow(EndTime);
      } else if (stepRemainderNegligible(Solver->time(), EndTime)) {
        // Snap a sub-rounding-noise remainder, matching
        // EulerSolver::advanceTo.
        Solver->restoreClock(EndTime, Solver->stepCount());
      } else {
        double Dt = std::min(Solver->computeDt(), EndTime - Solver->time());
        Solver->advanceWithDt(Dt);
      }
      maybeCheckpoint();
    }
    return !failed();
  }

  /// Advances exactly \p N steps (guarded when configured).  \returns
  /// false on terminal guard failure.
  bool advanceSteps(unsigned N) {
    if (!periodicArmed()) {
      if (Guard)
        return Guard->advanceSteps(N);
      Solver->advanceSteps(N);
      return true;
    }
    unsigned Target = Solver->stepCount() + N;
    while (!failed() && Solver->stepCount() < Target) {
      if (Guard)
        Guard->advanceWindow();
      else
        Solver->advanceWithDt(Solver->computeDt());
      maybeCheckpoint();
    }
    return !failed();
  }

  /// Prints the guard summary and per-breakdown reports to stdout; no-op
  /// without a guard.
  void printGuardReport() const {
    if (!Guard)
      return;
    std::printf("%s\n", Guard->summary().c_str());
    for (const BreakdownReport &R : Guard->reports())
      std::printf("  %s\n", R.str().c_str());
  }

private:
  bool periodicArmed() const { return CkptEvery > 0 && CkptHook != nullptr; }

  void maybeCheckpoint() {
    if (Solver->stepCount() >= LastCkptStep + CkptEvery) {
      CkptHook();
      LastCkptStep = Solver->stepCount();
    }
  }

  RunConfig Cfg;
  std::unique_ptr<Backend> Exec;
  std::unique_ptr<EulerSolver<Dim>> Solver;
  std::unique_ptr<StepGuard<Dim>> Guard;
  unsigned CkptEvery = 0;
  unsigned LastCkptStep = 0;
  std::function<void()> CkptHook;
};

/// Builds the configured backend + engine + guard for \p Prob.  Fatal
/// error (not a return code) when the configured backend is unavailable
/// in this build, matching tool behavior.
template <unsigned Dim>
SolverRun<Dim> makeSolverRun(Problem<Dim> Prob, const RunConfig &Cfg) {
  return SolverRun<Dim>(std::move(Prob), Cfg);
}

/// The workload a tool should actually run: \p Default when no
/// --scenario was given, otherwise the problem the scenario registry
/// builds for the spec (cells override, scheme-sized ghost layers,
/// EndTime validated).  Fatal error with the registry's structured
/// message on an unknown scenario, a rank mismatch, or bad parameter
/// values — matching the tools' treatment of other malformed flags.
template <unsigned Dim>
Problem<Dim> resolveProblem(Problem<Dim> Default, const RunConfig &Cfg) {
  if (!Cfg.hasScenario())
    return Default;
  SpecParse<ScenarioSpec> Spec =
      ScenarioSpec::parse(Cfg.scenarioSpecText());
  if (!Spec)
    reportFatalError(("--scenario: " + Spec.Error).c_str());
  SpecParse<Problem<Dim>> Built =
      ScenarioRegistry::instance().buildProblem<Dim>(*Spec.Value,
                                                     Cfg.Scheme);
  if (!Built)
    reportFatalError(("--scenario: " + Built.Error).c_str());
  return std::move(*Built.Value);
}

} // namespace sacfd

#endif // SACFD_SOLVER_SOLVERFACTORY_H
