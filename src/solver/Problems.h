//===- solver/Problems.h - Concrete workload setups ------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two experiments plus the standard gas-dynamics test
/// problems used for validation and the extra examples:
///
///   sodProblem            the paper's 1D experiment (Fig. 1)
///   shockInteraction2D    the paper's 2D experiment (Figs. 2/3 and the
///                         Fig. 4 benchmark configuration)
///   laxProblem, shuOsherProblem, blastWavesProblem, movingContactProblem
///                         classical 1D validation cases
///   riemann2D             a four-quadrant 2D Riemann problem
///   uniformFlow           free-stream preservation check
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_PROBLEMS_H
#define SACFD_SOLVER_PROBLEMS_H

#include "solver/Problem.h"

namespace sacfd {

/// Sod's shock tube [16] on [0, 1], diaphragm at 0.5: top state
/// (1, 0, 1), bottom state (0.125, 0, 0.1); run to t = 0.2.
Problem<1> sodProblem(size_t Cells, unsigned GhostLayers = 2);

/// Lax's shock tube on [0, 1]: (0.445, 0.698, 3.528) | (0.5, 0, 0.571);
/// run to t = 0.13.
Problem<1> laxProblem(size_t Cells, unsigned GhostLayers = 2);

/// Shu-Osher shock/entropy-wave interaction on [-5, 5]; run to t = 1.8.
Problem<1> shuOsherProblem(size_t Cells, unsigned GhostLayers = 2);

/// Woodward-Colella interacting blast waves on [0, 1] between reflecting
/// walls; run to t = 0.038.
Problem<1> blastWavesProblem(size_t Cells, unsigned GhostLayers = 2);

/// An isolated contact discontinuity advecting at u = 1 (tests contact
/// preservation); run to t = 0.2.
Problem<1> movingContactProblem(size_t Cells, unsigned GhostLayers = 2);

/// The paper's 2D configuration (Fig. 2): a 2h x 2h quiescent box;
/// shocks of Mach number \p Ms exhaust from two channels of width h —
/// the lower half of the left boundary and the left half of the bottom
/// boundary — with solid walls on the rest of those sides and open
/// right/top boundaries.  Post-shock inflow states come from the
/// Rankine-Hugoniot relations (supersonic for Ms = 2.2, so they stay
/// frozen).  h = 200 in the paper's units; \p Cells is per axis (the
/// paper uses 400 and 2000).
Problem<2> shockInteraction2D(size_t Cells, double Ms = 2.2,
                              double ChannelWidth = 200.0,
                              unsigned GhostLayers = 2);

/// Four-quadrant 2D Riemann problems of Schulz-Rinne/Lax-Liu on
/// [0, 1]^2.  Supported configurations:
///   3   four shocks, the classic mushroom-jet case (run to t = 0.3)
///   4   four shocks, diagonal-symmetric (default; run to t = 0.25)
///   6   four contacts forming a spiral (run to t = 0.3)
///   12  two shocks + two contacts (run to t = 0.25)
Problem<2> riemann2D(size_t CellsPerAxis, unsigned GhostLayers = 2,
                     unsigned Configuration = 4);

/// Sedov-style cylindrical blast on [-0.5, 0.5]^2: unit-density gas with
/// a finite-energy hot disc of radius 0.1 at the origin driving a
/// radially expanding shock into a cold ambient; run to t = 0.1.  The
/// diverging-shock positivity workload of the gallery.
Problem<2> sedovBlast2D(size_t CellsPerAxis, unsigned GhostLayers = 2);

/// Woodward-Colella double Mach reflection: a Mach 10 shock inclined 60
/// degrees to a reflecting wall that starts at x = 1/6, on [0, 4] x
/// [0, 1] (\p CellsPerUnit cells per unit length, so the grid is
/// 4N x N); run to t = 0.2.  The top boundary prescribes the exact
/// moving-shock trace as a time-dependent state — the workload that
/// forces BcKind::Prescribed.
Problem<2> doubleMachReflection(size_t CellsPerUnit,
                                unsigned GhostLayers = 2);

/// Shock-bubble interaction on [0, 2] x [0, 1]: a Mach 2 planar shock
/// (initially at x = 0.25) sweeps over a low-density circular bubble at
/// (0.8, 0.5), radius 0.2, between reflecting channel walls; run to
/// t = 0.4.  \p CellsPerUnit cells per unit length (grid 2N x N).
Problem<2> shockBubble2D(size_t CellsPerUnit, unsigned GhostLayers = 2);

/// Uniform free stream in \p Dim dimensions (any scheme must preserve it
/// to round-off).
Problem<1> uniformFlow1D(size_t Cells, unsigned GhostLayers = 2);
Problem<2> uniformFlow2D(size_t CellsPerAxis, unsigned GhostLayers = 2);

/// Smooth density wave rho = 1 + 0.2 sin(2 pi x) advecting at u = 1 with
/// constant pressure on periodic [0, 1]: the exact solution translates,
/// so this is the convergence-order workload.  Ghost default 3 so WENO5
/// runs too.
Problem<1> smoothAdvectionProblem(size_t Cells, unsigned GhostLayers = 3);

/// 2D variant advecting diagonally at (1, 1) on periodic [0, 1]^2.
Problem<2> smoothAdvection2D(size_t CellsPerAxis, unsigned GhostLayers = 3);

/// Exact density of the smooth-advection solution at (x..., t).
double smoothAdvectionDensity1D(double X, double T);
double smoothAdvectionDensity2D(double X, double Y, double T);

/// Isentropic vortex (Shu) advecting diagonally across a periodic
/// [0, 10]^2 box at free-stream (1, 1): a smooth 2D exact solution of
/// the full Euler system, the standard multi-dimensional order test.
Problem<2> isentropicVortex2D(size_t CellsPerAxis,
                              unsigned GhostLayers = 3);

/// Exact primitive state of the isentropic vortex at (x, y, t)
/// (periodic wrap of the translating vortex).
Prim<2> isentropicVortexExact(double X, double Y, double T);

/// Uniform free stream in 3D (rank-generic extension beyond the paper).
Problem<3> uniformFlow3D(size_t CellsPerAxis, unsigned GhostLayers = 2);

/// Spherical pressure burst in a closed reflective 3D box on [0, 1]^3
/// (conservation and positivity workload); run to t = 0.2.
Problem<3> sphericalBlast3D(size_t CellsPerAxis, unsigned GhostLayers = 2);

/// Sod data extruded along y and z on [0, 1]^3 with transmissive ends:
/// must evolve exactly like the 1D tube (dimensional consistency).
Problem<3> sodExtruded3D(size_t Cells, size_t TransverseCells,
                         unsigned GhostLayers = 2);

} // namespace sacfd

#endif // SACFD_SOLVER_PROBLEMS_H
