//===- solver/RunConfig.h - Unified run configuration ----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One struct holding everything that shapes a solver run — scheme,
/// engine, backend, schedule/tile, step guard and telemetry — with one
/// shared CLI surface, so examples and benches stop re-assembling these
/// options from their own flag-parsing code.
///
/// Usage pattern:
/// \code
///   RunConfig Cfg;                       // or preset Cfg.Scheme first
///   CommandLine CL("tool", "...");
///   Cfg.registerAll(CL);                 // or the granular register*()
///   if (!CL.parse(Argc, Argv))
///     return CL.helpRequested() ? 0 : 1;
///   Cfg.resolveOrExit();                 // typed fields ready, telemetry on
///   auto Run = makeSolverRun<2>(Prob, Cfg);   // SolverFactory.h
/// \endcode
///
/// resolve() rejects malformed values (including --schedule and --tile
/// specs) with a structured error naming the flag and the accepted
/// grammar — there is no silent fall-back to defaults.
///
/// RunConfig lives in the solver library rather than support because it
/// aggregates SchemeConfig/GuardOptions (solver) and TelemetryOptions
/// (telemetry); support sits below both and cannot name those types.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_RUNCONFIG_H
#define SACFD_SOLVER_RUNCONFIG_H

#include "array/Layout.h"
#include "runtime/Runtime.h"
#include "solver/CheckpointOptions.h"
#include "solver/GuardOptions.h"
#include "solver/SchemeConfig.h"
#include "support/CommandLine.h"
#include "telemetry/TelemetryOptions.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace sacfd {

/// Which solver engine executes the run (the paper's two ports plus the
/// unoptimized-SaC ablation mode).
enum class EngineKind {
  /// SaC with-loop engine, fused evaluation (ArraySolver, Fused).
  Array,
  /// SaC engine with every intermediate materialized (ablation A1).
  ArrayMaterialized,
  /// Fortran-style loop-nest engine (FusedSolver).
  Fused,
};

/// \returns the stable name used in reports and the --engine flag.
const char *engineKindName(EngineKind Kind);

/// Parses "array", "array-materialized"/"materialized", "fused".
std::optional<EngineKind> parseEngineKind(std::string_view Text);

/// How one solver step is dispatched onto the backend.
enum class StepMode {
  /// One parallel region (barrier) per loop nest — the paper's model.
  Loops,
  /// Dependency-DAG pipeline: per-tile tasks linked by data dependencies,
  /// no global barrier between stages.  Requires --backend=tasks and
  /// --engine=fused (2D/1D).
  Dag,
};

/// \returns the stable name used in reports and the --step-mode flag.
const char *stepModeName(StepMode Mode);

/// Parses "loops"/"loop", "dag"/"tasks-dag".
std::optional<StepMode> parseStepMode(std::string_view Text);

/// The full run-shaping configuration of a SacFD tool.
struct RunConfig {
  /// Numerical scheme; preset this (e.g. SchemeConfig::benchmarkScheme())
  /// before registering flags and the CLI defaults follow.
  SchemeConfig Scheme = SchemeConfig::figureScheme();
  EngineKind Engine = EngineKind::Array;
  BackendKind Backend = BackendKind::SpinPool;
  /// Step dispatch shape; Dag is validated against Engine/Backend in
  /// resolve().
  StepMode Step = StepMode::Loops;
  /// Worker threads; defaults to defaultThreadCount().
  unsigned Threads;
  /// 1D iteration schedule (honored by the fork-join backend).
  Schedule Sched = Schedule::staticBlock();
  /// Rank-2 tiling policy for parallelFor2D (off = legacy row flattening).
  Tile TileCfg = Tile::off();
  GuardCliOptions Guard;
  TelemetryCliOptions Telemetry;
  CheckpointCliOptions Checkpoint;
  /// Whether the solver's FieldPool recycles stage temporaries (the
  /// zero-allocation hot path).  Off = one malloc/free per temporary,
  /// the unpooled arm of the A6 ablation.  Bit-identical either way.
  bool Pooling = true;
  /// Conserved-field memory layout (--layout): AoS keeps the historical
  /// record array; SoA stores per-component planes, the vectorization-
  /// friendly shape.  Bit-identical either way.
  Layout FieldLayout = Layout::AoS;
  /// Whether the per-TU vectorized kernel build runs the contiguous
  /// inner loops (--no-simd turns it off).  The scalar and SIMD builds
  /// are bit-identical by construction; the flag exists for ablation
  /// (A8) and for bisecting miscompiles.
  bool Simd = true;

  RunConfig();

  /// Binds --recon, --limiter, --riemann, --integrator, --cfl.
  void registerSchemeFlags(CommandLine &CL);
  /// Binds --scenario (workload selector, `name[:key=val,...]` — see
  /// solver/Scenario.h).  resolve() validates the spec against the
  /// registry and applies the scenario's recommended scheme tuning to
  /// any scheme knob the user did not set explicitly.
  void registerScenarioFlag(CommandLine &CL);
  /// Binds --engine.
  void registerEngineFlag(CommandLine &CL);
  /// Binds --backend, --execution (an alias of --backend that wins when
  /// both are given), --threads and --step-mode.
  void registerBackendFlags(CommandLine &CL);
  /// Binds --schedule, --tile and --tile-dealing.
  void registerScheduleFlags(CommandLine &CL);
  /// Binds --no-pool (disable field-buffer recycling).
  void registerPoolFlag(CommandLine &CL);
  /// Binds --layout (aos|soa) and --no-simd.
  void registerLayoutFlags(CommandLine &CL);
  /// Binds the step-guard flag group (see GuardOptions.h).
  void registerGuardFlags(CommandLine &CL) { Guard.registerWith(CL); }
  /// Binds the telemetry flag group (see TelemetryOptions.h).
  void registerTelemetryFlags(CommandLine &CL) { Telemetry.registerWith(CL); }
  /// Binds the durability flag group (see CheckpointOptions.h).
  void registerCheckpointFlags(CommandLine &CL) { Checkpoint.registerWith(CL); }
  /// Binds every flag group above.
  void registerAll(CommandLine &CL);

  /// Resolves the staged flag strings into the typed fields.  \returns
  /// false with a structured message in \p Error on any malformed value
  /// (unknown kind names, bad schedule/tile specs).  Only flag groups
  /// that were registered are resolved.
  bool resolve(std::string &Error);

  /// resolve() + reportFatalError on failure, then enables telemetry per
  /// the parsed flags.  The convenience path for tools.
  void resolveOrExit();

  /// Builds the configured backend (threads, schedule, tile installed).
  /// \returns nullptr only for an OpenMP request in a non-OpenMP build.
  std::unique_ptr<sacfd::Backend> makeBackend() const;

  /// One-line description of the execution setup for reports, e.g.
  /// "array/spin-pool(4) tile=32x128".
  std::string executionStr() const;

  /// True when a --scenario spec was given (or seeded via
  /// setScenarioSpec).  Tools route through
  /// SolverFactory.h resolveProblem() to honor it.
  bool hasScenario() const { return !ScenarioSpecText.empty(); }
  /// The raw spec text (validated by resolve(); parsed again by
  /// resolveProblem(), which owns the value errors).
  const std::string &scenarioSpecText() const { return ScenarioSpecText; }
  /// Seeds the spec without a CommandLine (tests, embedding code).
  void setScenarioSpec(std::string Spec) {
    ScenarioSpecText = std::move(Spec);
  }

  /// True when the user passed --\p Flag explicitly on the bound command
  /// line (false when no CommandLine was ever bound).
  bool flagWasSet(std::string_view Flag) const;

private:
  // CLI staging: registrars seed these from the current typed values (so
  // --help shows real defaults) and resolve() parses them back.
  std::string ReconName;
  std::string LimiterName;
  std::string RiemannName;
  std::string IntegratorName;
  std::string EngineName;
  std::string BackendName;
  std::string ExecutionName;
  std::string StepModeName;
  std::string ScheduleSpec;
  std::string TileSpec;
  std::string TileDealingSpec;
  std::string ScenarioSpecText;
  std::string LayoutName;
  bool NoPoolFlag = false;
  bool NoSimdFlag = false;
  /// The CommandLine the register*() calls bound to, for
  /// flagWasSet() — scenario tuning must lose to explicit user flags.
  const CommandLine *BoundCL = nullptr;
};

} // namespace sacfd

#endif // SACFD_SOLVER_RUNCONFIG_H
