//===- solver/RunRecorder.h - Time-series run diagnostics ------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records per-step diagnostics (t, dt, conserved integrals, positivity)
/// over a run, for CSV export and regression analysis.  The bench
/// harness and examples use it to document that long runs stay healthy;
/// the conservation columns should be constant to round-off on closed
/// domains.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_RUNRECORDER_H
#define SACFD_SOLVER_RUNRECORDER_H

#include "solver/Diagnostics.h"
#include "solver/StepGuard.h"

#include <string>
#include <vector>

namespace sacfd {

/// One recorded step.
template <unsigned Dim> struct RunSample {
  unsigned Step;
  double Time;
  double Dt;
  ConservedTotals<Dim> Totals;
  double MinDensity;
  double MinPressure;
};

/// Collects a diagnostic sample every \p Stride steps of a solver run.
template <unsigned Dim> class RunRecorder {
public:
  explicit RunRecorder(unsigned Stride = 1) : Stride(Stride) {}

  /// Advances \p Solver one step and records if due. \returns dt taken.
  double advanceAndRecord(EulerSolver<Dim> &Solver) {
    double TBefore = Solver.time();
    double Dt = Solver.advance();
    if (Solver.stepCount() % Stride == 0)
      record(Solver, TBefore, Dt);
    return Dt;
  }

  /// Runs \p Steps steps with recording.
  void advanceSteps(EulerSolver<Dim> &Solver, unsigned Steps) {
    for (unsigned I = 0; I < Steps; ++I)
      advanceAndRecord(Solver);
  }

  /// Guarded variant: advances one scan window through \p Guard, records
  /// if due, and mirrors any new breakdown reports into breakdowns().
  /// \returns the dt of the window's first accepted step (0 once the
  /// guard has failed — no further progress is possible).
  double advanceAndRecord(StepGuard<Dim> &Guard) {
    GuardStepResult R = Guard.advanceWindow();
    const std::vector<BreakdownReport> &All = Guard.reports();
    for (; SeenReports < All.size(); ++SeenReports)
      Breakdowns.push_back(All[SeenReports]);
    if (R.Action != GuardAction::Failed &&
        Guard.solver().stepCount() % Stride == 0)
      record(Guard.solver(), Guard.solver().time() - R.Dt, R.Dt);
    return R.Action == GuardAction::Failed ? 0.0 : R.Dt;
  }

  /// Breakdown reports mirrored from the guarded run.
  const std::vector<BreakdownReport> &breakdowns() const {
    return Breakdowns;
  }

  /// Appends an externally produced breakdown report (tools that drive
  /// the guard themselves but want the recorder to own the run record).
  void noteBreakdown(BreakdownReport Report) {
    Breakdowns.push_back(std::move(Report));
  }

  const std::vector<RunSample<Dim>> &samples() const { return Samples; }

  /// Largest relative drift of mass over the recorded window (0 when
  /// fewer than two samples).
  double massDrift() const {
    if (Samples.size() < 2)
      return 0.0;
    double First = Samples.front().Totals.Mass;
    double MaxDrift = 0.0;
    for (const RunSample<Dim> &S : Samples)
      MaxDrift = std::max(MaxDrift,
                          std::fabs(S.Totals.Mass - First) /
                              std::fabs(First));
    return MaxDrift;
  }

  /// Smallest density/pressure seen across all samples.
  double minDensitySeen() const {
    double Min = std::numeric_limits<double>::infinity();
    for (const RunSample<Dim> &S : Samples)
      Min = std::min(Min, S.MinDensity);
    return Min;
  }
  double minPressureSeen() const {
    double Min = std::numeric_limits<double>::infinity();
    for (const RunSample<Dim> &S : Samples)
      Min = std::min(Min, S.MinPressure);
    return Min;
  }

  /// Serializes the samples as CSV rows (step, t, dt, mass, mom...,
  /// energy, min_rho, min_p).
  std::vector<std::vector<double>> csvRows() const {
    std::vector<std::vector<double>> Rows;
    Rows.reserve(Samples.size());
    for (const RunSample<Dim> &S : Samples) {
      std::vector<double> Row = {static_cast<double>(S.Step), S.Time,
                                 S.Dt, S.Totals.Mass};
      for (unsigned A = 0; A < Dim; ++A)
        Row.push_back(S.Totals.Momentum[A]);
      Row.push_back(S.Totals.Energy);
      Row.push_back(S.MinDensity);
      Row.push_back(S.MinPressure);
      Rows.push_back(std::move(Row));
    }
    return Rows;
  }

  /// Header matching csvRows().
  static std::vector<std::string> csvHeader() {
    std::vector<std::string> H = {"step", "t", "dt", "mass"};
    for (unsigned A = 0; A < Dim; ++A)
      H.push_back("momentum" + std::to_string(A));
    H.push_back("energy");
    H.push_back("min_rho");
    H.push_back("min_p");
    return H;
  }

private:
  void record(const EulerSolver<Dim> &Solver, double TimeBefore,
              double Dt) {
    (void)TimeBefore;
    FieldHealth<Dim> H = fieldHealth(Solver);
    Samples.push_back({Solver.stepCount(), Solver.time(), Dt,
                       conservedTotals(Solver), H.MinDensity,
                       H.MinPressure});
  }

  unsigned Stride;
  std::vector<RunSample<Dim>> Samples;
  std::vector<BreakdownReport> Breakdowns;
  size_t SeenReports = 0;
};

} // namespace sacfd

#endif // SACFD_SOLVER_RUNRECORDER_H
