//===- solver/Grid.h - Uniform Cartesian grids with ghost cells -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The computational domain: "the computational domain is divided into a
/// number of grid cells" (Section 3) — a uniform Cartesian grid of Nx (x
/// Ny) cells padded by ghost layers for the reconstruction stencils and
/// boundary conditions.
///
/// Interior indices run [0, cells) per axis; storage indices include the
/// ghost padding.  Storage is the Shape the field NDArray is allocated
/// with, so the array layer and the fused loop nests index identically.
///
/// A grid may be a row slice of a larger global grid (sharded domain
/// decomposition): it then keeps the *global* bounds and cell counts for
/// all physical geometry (dx, cellCenter) while cells()/storageShape()
/// describe the local slice.  Because dx and cellCenter evaluate exactly
/// the same expressions as on the global grid, every coordinate a slice
/// produces is bit-identical to the global grid's value for the same
/// global cell.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_GRID_H
#define SACFD_SOLVER_GRID_H

#include "array/Shape.h"

#include <array>
#include <cassert>
#include <cstddef>

namespace sacfd {

/// Uniform Cartesian grid in \p Dim dimensions with ghost padding.
template <unsigned Dim> class Grid {
public:
  static_assert(Dim >= 1 && Dim <= MaxRank, "unsupported dimension");

  Grid() = default;

  /// \param CellCounts interior cells per axis.
  /// \param Lo, Hi physical bounds of the domain.
  /// \param GhostLayers padding cells on each side of each axis.
  Grid(std::array<size_t, Dim> CellCounts, std::array<double, Dim> Lo,
       std::array<double, Dim> Hi, unsigned GhostLayers)
      : CellCounts(CellCounts), GlobalCellCounts(CellCounts), LoBound(Lo),
        HiBound(Hi), GhostLayers(GhostLayers) {
    for (unsigned A = 0; A < Dim; ++A) {
      assert(CellCounts[A] > 0 && "empty axis");
      assert(Hi[A] > Lo[A] && "degenerate domain");
    }
  }

  /// A row-block slice of \p Global along axis 0: local interior rows
  /// [\p Begin, \p Begin + \p Count) of the global interior.  The slice
  /// keeps the global bounds and counts for geometry, so dx() and
  /// cellCenter() are bitwise the global grid's values.  Slicing a slice
  /// composes the offsets.
  static Grid rowSlice(const Grid &Global, size_t Begin, size_t Count) {
    assert(Count > 0 && Begin + Count <= Global.CellCounts[0] &&
           "row slice out of range");
    Grid G = Global;
    G.CellCounts[0] = Count;
    G.IndexOffset[0] += static_cast<std::ptrdiff_t>(Begin);
    return G;
  }

  /// Square grid over [0, Extent]^Dim convenience constructor.
  static Grid square(size_t CellsPerAxis, double Extent,
                     unsigned GhostLayers) {
    std::array<size_t, Dim> N;
    std::array<double, Dim> Lo, Hi;
    for (unsigned A = 0; A < Dim; ++A) {
      N[A] = CellsPerAxis;
      Lo[A] = 0.0;
      Hi[A] = Extent;
    }
    return Grid(N, Lo, Hi, GhostLayers);
  }

  unsigned ghost() const { return GhostLayers; }
  size_t cells(unsigned Axis) const {
    assert(Axis < Dim && "axis out of range");
    return CellCounts[Axis];
  }
  double lo(unsigned Axis) const { return LoBound[Axis]; }
  double hi(unsigned Axis) const { return HiBound[Axis]; }

  /// Interior cells per axis of the global grid this one slices (equal
  /// to cells() for an unsliced grid).
  size_t globalCells(unsigned Axis) const {
    assert(Axis < Dim && "axis out of range");
    return GlobalCellCounts[Axis];
  }

  /// Offset of local interior index 0 within the global interior (zero
  /// for an unsliced grid).
  std::ptrdiff_t indexOffset(unsigned Axis) const {
    assert(Axis < Dim && "axis out of range");
    return IndexOffset[Axis];
  }

  /// Cell width along \p Axis (a global-grid property; identical on
  /// every slice of the same grid).
  double dx(unsigned Axis) const {
    assert(Axis < Dim && "axis out of range");
    return (HiBound[Axis] - LoBound[Axis]) /
           static_cast<double>(GlobalCellCounts[Axis]);
  }

  /// Shape of the field storage (interior plus ghosts).
  Shape storageShape() const {
    Shape S = Shape::uniform(Dim, 0);
    for (unsigned A = 0; A < Dim; ++A)
      S.dim(A) = CellCounts[A] + 2 * static_cast<size_t>(GhostLayers);
    return S;
  }

  /// Shape of the interior region.
  Shape interiorShape() const {
    Shape S = Shape::uniform(Dim, 0);
    for (unsigned A = 0; A < Dim; ++A)
      S.dim(A) = CellCounts[A];
    return S;
  }

  size_t interiorCount() const { return interiorShape().count(); }

  /// Maps an interior index to the corresponding storage index.
  Index toStorage(const Index &Interior) const {
    assert(Interior.Rank == Dim && "rank mismatch");
    Index S = Interior;
    for (unsigned A = 0; A < Dim; ++A)
      S.Coord[A] += static_cast<std::ptrdiff_t>(GhostLayers);
    return S;
  }

  /// Physical center of interior cell \p I along \p Axis (also valid for
  /// ghost cells via negative / past-the-end indices).
  double cellCenter(unsigned Axis, std::ptrdiff_t I) const {
    return LoBound[Axis] +
           (static_cast<double>(I + IndexOffset[Axis]) + 0.5) * dx(Axis);
  }

  friend bool operator==(const Grid &A, const Grid &B) {
    return A.CellCounts == B.CellCounts &&
           A.GlobalCellCounts == B.GlobalCellCounts &&
           A.IndexOffset == B.IndexOffset && A.LoBound == B.LoBound &&
           A.HiBound == B.HiBound && A.GhostLayers == B.GhostLayers;
  }

private:
  std::array<size_t, Dim> CellCounts = {};
  /// Cell counts of the grid this one slices; == CellCounts when global.
  std::array<size_t, Dim> GlobalCellCounts = {};
  /// Global interior index of local interior index 0 per axis.
  std::array<std::ptrdiff_t, Dim> IndexOffset = {};
  /// Bounds of the *global* domain (geometry is global; the local
  /// extent is CellCounts with IndexOffset into it).
  std::array<double, Dim> LoBound = {};
  std::array<double, Dim> HiBound = {};
  unsigned GhostLayers = 0;
};

} // namespace sacfd

#endif // SACFD_SOLVER_GRID_H
