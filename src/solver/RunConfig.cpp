//===- solver/RunConfig.cpp - Unified run configuration ------------------===//

#include "solver/RunConfig.h"

#include "solver/Scenario.h"
#include "support/Env.h"
#include "support/Error.h"
#include "support/StrUtil.h"

using namespace sacfd;

const char *sacfd::engineKindName(EngineKind Kind) {
  switch (Kind) {
  case EngineKind::Array:
    return "array";
  case EngineKind::ArrayMaterialized:
    return "array-materialized";
  case EngineKind::Fused:
    return "fused";
  }
  sacfdUnreachable("covered switch");
}

std::optional<EngineKind> sacfd::parseEngineKind(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "array"))
    return EngineKind::Array;
  if (equalsLower(Name, "array-materialized") ||
      equalsLower(Name, "materialized"))
    return EngineKind::ArrayMaterialized;
  if (equalsLower(Name, "fused"))
    return EngineKind::Fused;
  return std::nullopt;
}

const char *sacfd::stepModeName(StepMode Mode) {
  switch (Mode) {
  case StepMode::Loops:
    return "loops";
  case StepMode::Dag:
    return "dag";
  }
  sacfdUnreachable("covered switch");
}

std::optional<StepMode> sacfd::parseStepMode(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "loops") || equalsLower(Name, "loop"))
    return StepMode::Loops;
  if (equalsLower(Name, "dag") || equalsLower(Name, "tasks-dag"))
    return StepMode::Dag;
  return std::nullopt;
}

RunConfig::RunConfig() : Threads(defaultThreadCount()) {}

void RunConfig::registerSchemeFlags(CommandLine &CL) {
  ReconName = reconstructionKindName(Scheme.Recon);
  LimiterName = limiterKindName(Scheme.Limiter);
  RiemannName = riemannKindName(Scheme.Riemann);
  IntegratorName = timeIntegratorKindName(Scheme.Integrator);
  CL.addString("recon", ReconName, "pc1|tvd2|tvd3|weno3");
  CL.addString("limiter", LimiterName, "minmod|superbee|vanleer|mc");
  CL.addString("riemann", RiemannName, "rusanov|hll|hllc|roe");
  CL.addString("integrator", IntegratorName, "rk1|rk2|rk3");
  CL.addDouble("cfl", Scheme.Cfl, "CFL number");
  BoundCL = &CL;
}

void RunConfig::registerScenarioFlag(CommandLine &CL) {
  CL.addString("scenario", ScenarioSpecText,
               "workload selector: name[:key=val,...], e.g. "
               "riemann2d:config=3 or sedov:cells=400");
  BoundCL = &CL;
}

bool RunConfig::flagWasSet(std::string_view Flag) const {
  return BoundCL && BoundCL->wasSet(Flag);
}

void RunConfig::registerEngineFlag(CommandLine &CL) {
  EngineName = engineKindName(Engine);
  CL.addString("engine", EngineName,
               "array (SaC) | array-materialized | fused (Fortran)");
}

void RunConfig::registerBackendFlags(CommandLine &CL) {
  BackendName = backendKindName(Backend);
  CL.addString("backend", BackendName,
               "serial|spin-pool|fork-join|openmp|tasks");
  // Alias: "execution model" is the paper's vocabulary; seeded empty so
  // resolve() can tell whether it was given.
  CL.addString("execution", ExecutionName,
               "alias for --backend (overrides it when both are given)");
  CL.addUnsigned("threads", Threads, "worker threads (>= 1)");
  StepModeName = stepModeName(Step);
  CL.addString("step-mode", StepModeName,
               "loops (one barrier per loop nest) | dag (task pipeline; "
               "needs --backend=tasks --engine=fused)");
}

void RunConfig::registerScheduleFlags(CommandLine &CL) {
  ScheduleSpec = Sched.str();
  TileSpec = TileCfg.str();
  TileDealingSpec = TileCfg.Dealing.str();
  CL.addString("schedule", ScheduleSpec,
               "iteration schedule: static[,N] | dynamic[,N]");
  CL.addString("tile", TileSpec,
               "2D tiling: off | auto | RxC | N (NxN)");
  CL.addString("tile-dealing", TileDealingSpec,
               "how tiles are dealt to workers: static[,N] | dynamic[,N]");
}

void RunConfig::registerPoolFlag(CommandLine &CL) {
  CL.addFlag("no-pool", NoPoolFlag,
             "disable field-buffer recycling (one malloc per temporary)");
}

void RunConfig::registerLayoutFlags(CommandLine &CL) {
  LayoutName = layoutName(FieldLayout);
  CL.addString("layout", LayoutName,
               "conserved-field memory layout: aos | soa");
  CL.addFlag("no-simd", NoSimdFlag,
             "run the scalar kernel build (bit-identical; for ablation)");
}

void RunConfig::registerAll(CommandLine &CL) {
  registerSchemeFlags(CL);
  registerScenarioFlag(CL);
  registerEngineFlag(CL);
  registerBackendFlags(CL);
  registerScheduleFlags(CL);
  registerPoolFlag(CL);
  registerLayoutFlags(CL);
  registerGuardFlags(CL);
  registerTelemetryFlags(CL);
  registerCheckpointFlags(CL);
}

bool RunConfig::resolve(std::string &Error) {
  auto Fail = [&Error](std::string Message) {
    Error = std::move(Message);
    return false;
  };

  if (!ReconName.empty()) {
    if (auto K = parseReconstructionKind(ReconName))
      Scheme.Recon = *K;
    else
      return Fail("unknown --recon value '" + ReconName +
                  "' (expected pc1|tvd2|tvd3|weno3)");
  }
  if (!LimiterName.empty()) {
    if (auto K = parseLimiterKind(LimiterName))
      Scheme.Limiter = *K;
    else
      return Fail("unknown --limiter value '" + LimiterName +
                  "' (expected minmod|superbee|vanleer|mc)");
  }
  if (!RiemannName.empty()) {
    if (auto K = parseRiemannKind(RiemannName))
      Scheme.Riemann = *K;
    else
      return Fail("unknown --riemann value '" + RiemannName +
                  "' (expected rusanov|hll|hllc|roe)");
  }
  if (!IntegratorName.empty()) {
    if (auto K = parseTimeIntegratorKind(IntegratorName))
      Scheme.Integrator = *K;
    else
      return Fail("unknown --integrator value '" + IntegratorName +
                  "' (expected rk1|rk2|rk3)");
  }
  if (!ScenarioSpecText.empty()) {
    SpecParse<ScenarioSpec> Spec = ScenarioSpec::parse(ScenarioSpecText);
    if (!Spec)
      return Fail("--scenario: " + Spec.Error);
    const ScenarioRegistry &Registry = ScenarioRegistry::instance();
    SpecParse<ScenarioSpec> Checked = Registry.validate(*Spec.Value);
    if (!Checked)
      return Fail("--scenario: " + Checked.Error);
    // Apply the scenario's recommended scheme tuning, but never over an
    // explicit user flag.
    if (const ScenarioTuning *T = Registry.tuningFor(Spec.Value->Name)) {
      if (T->Cfl && !flagWasSet("cfl"))
        Scheme.Cfl = *T->Cfl;
      if (T->Recon && !flagWasSet("recon"))
        Scheme.Recon = *T->Recon;
    }
  }
  if (!EngineName.empty()) {
    if (auto K = parseEngineKind(EngineName))
      Engine = *K;
    else
      return Fail("unknown --engine value '" + EngineName +
                  "' (expected array|array-materialized|fused)");
  }
  if (!BackendName.empty()) {
    if (auto K = parseBackendKind(BackendName))
      Backend = *K;
    else
      return Fail("unknown --backend value '" + BackendName +
                  "' (expected serial|spin-pool|fork-join|openmp|tasks)");
  }
  if (!ExecutionName.empty()) {
    if (auto K = parseBackendKind(ExecutionName))
      Backend = *K;
    else
      return Fail("unknown --execution value '" + ExecutionName +
                  "' (expected serial|spin-pool|fork-join|openmp|tasks)");
  }
  if (!StepModeName.empty()) {
    if (auto K = parseStepMode(StepModeName))
      Step = *K;
    else
      return Fail("unknown --step-mode value '" + StepModeName +
                  "' (expected loops|dag)");
  }
  if (Threads == 0)
    return Fail("--threads must be at least 1 (0 workers cannot run "
                "anything; omit the flag for auto-detection)");
  if (Step == StepMode::Dag) {
    if (Backend != BackendKind::Tasks)
      return Fail(std::string("--step-mode=dag requires --backend=tasks "
                              "(got --backend=") +
                  backendKindName(Backend) + ")");
    if (Engine != EngineKind::Fused)
      return Fail(std::string("--step-mode=dag requires --engine=fused "
                              "(got --engine=") +
                  engineKindName(Engine) + ")");
  }
  if (!ScheduleSpec.empty()) {
    SpecParse<Schedule> P = Schedule::parseSpec(ScheduleSpec);
    if (!P)
      return Fail("--schedule: " + P.Error);
    Sched = *P.Value;
  }
  if (!TileSpec.empty()) {
    SpecParse<Tile> P = Tile::parseSpec(TileSpec);
    if (!P)
      return Fail("--tile: " + P.Error);
    // The dealing schedule is a separate flag; graft it below.
    Schedule Dealing = TileCfg.Dealing;
    TileCfg = *P.Value;
    TileCfg.Dealing = Dealing;
  }
  if (!TileDealingSpec.empty()) {
    SpecParse<Schedule> P = Schedule::parseSpec(TileDealingSpec);
    if (!P)
      return Fail("--tile-dealing: " + P.Error);
    TileCfg.Dealing = *P.Value;
  }
  if (!LayoutName.empty() && !parseLayout(LayoutName, FieldLayout))
    return Fail("unknown --layout value '" + LayoutName +
                "' (expected aos|soa)");
  if (NoPoolFlag)
    Pooling = false;
  if (NoSimdFlag)
    Simd = false;
  if (!Checkpoint.resolve(Error))
    return false;
  return true;
}

void RunConfig::resolveOrExit() {
  std::string Error;
  if (!resolve(Error))
    reportFatalError(Error.c_str());
  Telemetry.apply();
}

std::unique_ptr<Backend> RunConfig::makeBackend() const {
  return createBackend(Backend, Threads, Sched, TileCfg);
}

std::string RunConfig::executionStr() const {
  std::string S = engineKindName(Engine);
  S += "/";
  S += backendKindName(Backend);
  S += "(" + std::to_string(Threads) + ")";
  if (Step != StepMode::Loops) {
    S += " step=";
    S += stepModeName(Step);
  }
  if (TileCfg.Enabled)
    S += " tile=" + TileCfg.str();
  if (FieldLayout != Layout::AoS) {
    S += " layout=";
    S += layoutName(FieldLayout);
  }
  if (!Pooling)
    S += " no-pool";
  if (!Simd)
    S += " no-simd";
  return S;
}
