//===- solver/SchemeConfig.h - Numerical scheme selection ------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The knobs of the three-stage Godunov pipeline, bundled.
///
/// Two presets mirror the paper's two configurations:
///   - figureScheme(): WENO3 + HLLC + RK3 (the flow-field computations of
///     Figs. 1 and 3 use the 3rd-order WENO reconstruction);
///   - benchmarkScheme(): PC1 + RK3 ("the third order Runge-Kutta TVD
///     method and first order piecewise constant reconstruction",
///     Section 5 — the Fig. 4 measurement configuration).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_SCHEMECONFIG_H
#define SACFD_SOLVER_SCHEMECONFIG_H

#include "numerics/Limiters.h"
#include "numerics/Reconstruction.h"
#include "numerics/RiemannSolvers.h"
#include "numerics/TimeIntegrators.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace sacfd {

/// Full numerical-scheme selection for one solver run.
struct SchemeConfig {
  ReconstructionKind Recon = ReconstructionKind::Weno3;
  LimiterKind Limiter = LimiterKind::MinMod;
  ReconstructVariables Vars = ReconstructVariables::Characteristic;
  RiemannKind Riemann = RiemannKind::Hllc;
  TimeIntegratorKind Integrator = TimeIntegratorKind::SspRk3;
  /// CFL number for the GetDT step (DT = CFL / EVmax).
  double Cfl = 0.5;
  /// Hard upper bound on any single time step.  A quiescent
  /// zero-sound-speed field has EVmax = 0 and CFL / EVmax would be inf; a
  /// broken field can make EVmax NaN or inf.  Clamping keeps every step
  /// loop finite.
  double MaxDt = 1.0e9;

  /// Converts the GetDT max eigenvalue into the step size, clamped into
  /// (0, MaxDt].  Both engines route their reduction result through this
  /// so the clamping policy (and engine bit-equivalence) lives in one
  /// place: EVmax <= 0, NaN or inf all return MaxDt instead of an
  /// inf/NaN/zero step.
  double dtFromMaxEigen(double EvMax) const {
    if (!(EvMax > 0.0) || !std::isfinite(EvMax))
      return MaxDt;
    return std::min(Cfl / EvMax, MaxDt);
  }

  /// The paper's flow-figure configuration.
  static SchemeConfig figureScheme() { return SchemeConfig(); }

  /// The paper's Fig. 4 wall-clock benchmark configuration.
  static SchemeConfig benchmarkScheme() {
    SchemeConfig C;
    C.Recon = ReconstructionKind::PiecewiseConstant;
    C.Integrator = TimeIntegratorKind::SspRk3;
    return C;
  }

  /// One-line description for reports, e.g. "weno3/minmod/hllc/rk3".
  std::string str() const {
    std::string S = reconstructionKindName(Recon);
    S += "/";
    S += limiterKindName(Limiter);
    S += "/";
    S += riemannKindName(Riemann);
    S += "/";
    S += timeIntegratorKindName(Integrator);
    return S;
  }
};

} // namespace sacfd

#endif // SACFD_SOLVER_SCHEMECONFIG_H
