//===- solver/Scenario.h - Workload registry + pinned regressions *- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workload gallery: every named simulation setup the repo ships,
/// selectable from any tool with one flag.
///
/// A Scenario is a named factory producing a Problem<1> or Problem<2>
/// plus the metadata a tool needs to run it well: a one-line summary,
/// the recommended resolution, optional scheme tuning (a CFL or
/// reconstruction the workload wants — applied only to knobs the user
/// did not set explicitly), declared parameters, and a pinned regression
/// run (small grid, few steps) whose field-state hash is checked against
/// a checked-in reference table.
///
/// Tools select workloads with a spec string:
///
///   --scenario sod
///   --scenario riemann2d:config=3
///   --scenario sedov:cells=400
///
/// Grammar: `name[:key=value[,key=value...]]`.  Every malformed spec,
/// unknown name, undeclared key or bad value is a structured error — no
/// silent fallback (the SpecParse contract shared with --schedule and
/// --tile).  The registry also rejects any factory that forgets to set a
/// positive Problem::EndTime, closing the old silently-default-to-1.0
/// hole.
///
/// Built-in scenarios live in src/solver/scenarios/, one translation
/// unit per family (Athena++ pgen-style).  Each TU exposes a
/// registration function that ScenarioRegistry::instance() calls on
/// first use — explicit calls rather than static-initializer tricks, so
/// static archives cannot dead-strip a workload and registration order
/// is deterministic.  Out-of-tree code (and tests) can still add
/// scenarios at static-init time through ScenarioRegistrar.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_SCENARIO_H
#define SACFD_SOLVER_SCENARIO_H

#include "runtime/Schedule.h" // SpecParse
#include "solver/EulerSolver.h"
#include "solver/Problem.h"
#include "solver/RunConfig.h"
#include "solver/SchemeConfig.h"
#include "support/Hash.h"

#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sacfd {

/// A parsed `name[:key=value,...]` scenario selector.
struct ScenarioSpec {
  std::string Name;
  /// Key/value pairs in spec order (keys unique; parse() rejects dups).
  std::vector<std::pair<std::string, std::string>> Params;

  /// Parses the spec grammar.  Accepted names and keys are lowercase
  /// words of letters, digits and dashes; values are any non-empty text
  /// without ',' .  Errors name the offending piece and the grammar.
  static SpecParse<ScenarioSpec> parse(std::string_view Text);

  /// \returns the value bound to \p Key, or nullptr when absent.
  const std::string *find(std::string_view Key) const {
    for (const auto &KV : Params)
      if (KV.first == Key)
        return &KV.second;
    return nullptr;
  }

  /// Canonical spec text (round-trips through parse()).
  std::string str() const;
};

/// A parameter a scenario accepts in its spec, for --help style listings
/// and key validation.
struct ScenarioParam {
  std::string Key;
  std::string Help;
};

/// The cheap checked-in regression run of a scenario: \p Cells per unit
/// resolution and a fixed step count, hashed against the reference
/// table.  Fixed steps (not an end time) so the run cost is bounded and
/// the hash does not depend on CFL step-count drift.
struct PinnedRun {
  size_t Cells = 32;
  unsigned Steps = 5;
};

/// Scheme adjustments a workload recommends (a strong blast wants a
/// lower CFL, for example).  Applied by RunConfig::resolve() only to
/// knobs the user did not pass explicitly, and by the pinned runner
/// unconditionally so reference hashes are stable.
struct ScenarioTuning {
  std::optional<double> Cfl;
  std::optional<ReconstructionKind> Recon;
};

/// Resolved build inputs handed to a scenario factory.
class ScenarioArgs {
public:
  ScenarioArgs(const ScenarioSpec &Spec, size_t Cells, unsigned GhostLayers)
      : Spec(&Spec), CellCount(Cells), Ghost(GhostLayers) {}

  /// Cells per unit resolution (the scenario default, or `cells=N`).
  size_t cells() const { return CellCount; }
  /// Ghost layers the resolved reconstruction needs.
  unsigned ghostLayers() const { return Ghost; }

  /// Typed parameter accessors: the declared default when the key is
  /// absent, a structured error when the value does not parse.
  SpecParse<unsigned> getUnsigned(std::string_view Key,
                                  unsigned Default) const;
  SpecParse<double> getDouble(std::string_view Key, double Default) const;

private:
  const ScenarioSpec *Spec;
  size_t CellCount;
  unsigned Ghost;
};

/// One registered workload of rank \p Dim.
template <unsigned Dim> struct Scenario {
  static_assert(Dim == 1 || Dim == 2, "registry covers 1D/2D workloads");

  /// Registry key; also the spec name (lowercase-dash).
  std::string Name;
  /// One-line description for gallery listings.
  std::string Summary;
  /// Recommended cells-per-unit resolution for a real run.
  size_t DefaultCells = 100;
  /// The pinned regression run (see PinnedRun).
  PinnedRun Pinned;
  /// Recommended scheme adjustments (may be empty).
  ScenarioTuning Tuning;
  /// Extra spec keys beyond the built-in `cells`.
  std::vector<ScenarioParam> Params;
  /// Factory: builds the problem or reports a structured error (bad
  /// parameter values).  The registry verifies hasEndTime() afterwards.
  std::function<SpecParse<Problem<Dim>>(const ScenarioArgs &)> Build;
};

/// Dim-agnostic scenario metadata for listings.
struct ScenarioInfo {
  std::string Name;
  unsigned Dim = 0;
  std::string Summary;
  size_t DefaultCells = 0;
  PinnedRun Pinned;
  std::vector<ScenarioParam> Params;
  /// Reference hash for the pinned run, when one is checked in.
  std::optional<uint64_t> Reference;
};

/// The process-wide scenario table.
class ScenarioRegistry {
public:
  /// The registry with every built-in scenario registered.
  static ScenarioRegistry &instance();

  /// Adds a scenario; later registrations of the same name win (the
  /// latest-wins rule lets tests shadow built-ins).
  void add(Scenario<1> S);
  void add(Scenario<2> S);

  /// Records the reference hash of \p Name's pinned run.
  void setReferenceHash(std::string Name, uint64_t Hash);
  /// \returns the checked-in pinned-run hash, if any.
  std::optional<uint64_t> referenceHash(std::string_view Name) const;

  /// \returns the scenario named \p Name at rank \p Dim, or nullptr.
  template <unsigned Dim>
  const Scenario<Dim> *find(std::string_view Name) const {
    for (const Scenario<Dim> &S : list<Dim>())
      if (S.Name == Name)
        return &S;
    return nullptr;
  }

  /// The rank of scenario \p Name, or 0 when unknown.
  unsigned dimOf(std::string_view Name) const;

  /// Recommended tuning for \p Name, or nullptr when unknown.
  const ScenarioTuning *tuningFor(std::string_view Name) const;

  /// Metadata for every scenario, sorted by (Dim, Name).
  std::vector<ScenarioInfo> infos() const;

  /// Comma-separated sorted scenario names (for error messages).
  std::string namesStr() const;

  /// Checks \p Spec against the table without building: unknown name and
  /// undeclared keys are structured errors.  \p Dim 0 accepts any rank;
  /// otherwise the scenario must have that rank.
  SpecParse<ScenarioSpec> validate(const ScenarioSpec &Spec,
                                   unsigned Dim = 0) const;

  /// Builds the problem \p Spec selects at rank \p Dim: validates the
  /// spec, resolves `cells` (scenario default when absent), sizes ghost
  /// layers for \p Scheme's reconstruction, runs the factory, and
  /// rejects any result without a positive EndTime.
  template <unsigned Dim>
  SpecParse<Problem<Dim>> buildProblem(const ScenarioSpec &Spec,
                                       const SchemeConfig &Scheme) const;

  /// The per-rank scenario lists, registration order.
  template <unsigned Dim> const std::vector<Scenario<Dim>> &list() const {
    if constexpr (Dim == 1)
      return S1;
    else
      return S2;
  }

private:
  ScenarioRegistry();

  template <unsigned Dim> std::vector<Scenario<Dim>> &mutableList() {
    if constexpr (Dim == 1)
      return S1;
    else
      return S2;
  }

  std::vector<Scenario<1>> S1;
  std::vector<Scenario<2>> S2;
  std::vector<std::pair<std::string, uint64_t>> References;
};

/// Static-init registration hook for out-of-tree/test scenarios:
///   static ScenarioRegistrar<2> X(myScenario());
template <unsigned Dim> struct ScenarioRegistrar {
  explicit ScenarioRegistrar(Scenario<Dim> S) {
    ScenarioRegistry::instance().add(std::move(S));
  }
};

/// FNV-1a hash of the solver's observable state: every interior
/// conserved component in row-major order (bitwise doubles), then the
/// step count and the bitwise clock.  Both engines produce bit-identical
/// fields, so one reference hash serves array and fused alike.
template <unsigned Dim> uint64_t fieldStateHash(const EulerSolver<Dim> &S) {
  const Grid<Dim> &G = S.problem().Domain;
  const Field<Dim> &U = S.field();
  uint64_t H = FnvOffsetBasis;
  auto HashDouble = [&H](double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    H = fnv1a(&Bits, sizeof(Bits), H);
  };
  Shape Interior = G.interiorShape();
  Index Iv = Interior.delinearize(0);
  if (Interior.count() > 0) {
    do {
      const Cons<Dim> Q = U.at(G.toStorage(Iv));
      HashDouble(Q.Rho);
      for (unsigned A = 0; A < Dim; ++A)
        HashDouble(Q.Mom[A]);
      HashDouble(Q.E);
    } while (Interior.increment(Iv));
  }
  uint64_t Steps = S.stepCount();
  H = fnv1a(&Steps, sizeof(Steps), H);
  HashDouble(S.time());
  return H;
}

/// fieldStateHash over an already-stitched interior buffer (\p Count
/// cells in global row-major order) — the shard coordinator's view of
/// the same observable state.  Component order per cell matches the
/// solver overload exactly, so an N-shard stitched hash equals the
/// single-process hash when the fields match bit for bit.
template <unsigned Dim>
uint64_t fieldStateHash(const Cons<Dim> *Interior, size_t Count,
                        unsigned StepCount, double Time) {
  uint64_t H = FnvOffsetBasis;
  auto HashDouble = [&H](double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    H = fnv1a(&Bits, sizeof(Bits), H);
  };
  for (size_t I = 0; I < Count; ++I) {
    const Cons<Dim> &Q = Interior[I];
    HashDouble(Q.Rho);
    for (unsigned A = 0; A < Dim; ++A)
      HashDouble(Q.Mom[A]);
    HashDouble(Q.E);
  }
  uint64_t Steps = StepCount;
  H = fnv1a(&Steps, sizeof(Steps), H);
  HashDouble(Time);
  return H;
}

/// Outcome of one pinned regression run.
struct PinnedResult {
  std::string Name;
  unsigned Dim = 0;
  size_t Cells = 0;
  unsigned Steps = 0;
  double Time = 0.0;   ///< solver clock after the run
  double WallMs = 0.0; ///< wall-clock cost
  uint64_t Hash = 0;
  std::optional<uint64_t> Expected;

  /// True when a reference exists and the run reproduced it.
  bool matched() const { return Expected && Hash == *Expected; }
};

/// Runs scenario \p Name's pinned configuration on \p Engine (serial
/// backend, one thread, figure scheme with the scenario tuning applied)
/// and hashes the final state.  Structured error for unknown names or a
/// failing factory.  \p FieldLayout selects the conserved-field storage
/// layout; the hash is layout-independent (fieldStateHash walks logical
/// cells), so SoA runs must reproduce the same pinned references.
SpecParse<PinnedResult> runPinnedScenario(std::string_view Name,
                                          EngineKind Engine,
                                          Layout FieldLayout = Layout::AoS);

/// The one-line recipe for refreshing the reference table after an
/// intentional numerics change (printed by failing regression checks).
std::string rebaselineHint();

// --- implementation ----------------------------------------------------

template <unsigned Dim>
SpecParse<Problem<Dim>>
ScenarioRegistry::buildProblem(const ScenarioSpec &Spec,
                               const SchemeConfig &Scheme) const {
  using Result = SpecParse<Problem<Dim>>;
  SpecParse<ScenarioSpec> Checked = validate(Spec, Dim);
  if (!Checked)
    return Result::fail(Checked.Error);
  const Scenario<Dim> *S = find<Dim>(Spec.Name);
  // validate(Dim) guarantees presence at this rank.
  size_t Cells = S->DefaultCells;
  if (const std::string *Text = Spec.find("cells")) {
    SpecParse<unsigned> N = ScenarioArgs(Spec, 0, 0).getUnsigned("cells", 0);
    if (!N)
      return Result::fail(N.Error);
    if (*N.Value == 0)
      return Result::fail("scenario '" + Spec.Name +
                          "': cells must be positive, got '" + *Text + "'");
    Cells = *N.Value;
  }
  ScenarioArgs Args(Spec, Cells, ghostCells(Scheme.Recon));
  SpecParse<Problem<Dim>> Built = S->Build(Args);
  if (!Built)
    return Built;
  if (!Built.Value->hasEndTime())
    return Result::fail(
        "scenario '" + Spec.Name +
        "' produced a problem without an end time (EndTime must be " +
        "positive; factories may not rely on a default)");
  return Built;
}

} // namespace sacfd

#endif // SACFD_SOLVER_SCENARIO_H
