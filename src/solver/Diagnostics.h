//===- solver/Diagnostics.h - Field integrals and sanity checks -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Conserved-quantity integrals, total variation, positivity and error
/// norms — the quantities the test suite and EXPERIMENTS.md report.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_DIAGNOSTICS_H
#define SACFD_SOLVER_DIAGNOSTICS_H

#include "euler/ExactRiemann.h"
#include "solver/EulerSolver.h"

#include <array>
#include <cmath>

namespace sacfd {

/// Domain integrals of the conserved variables (the conservation laws'
/// invariants on closed/periodic domains).
template <unsigned Dim> struct ConservedTotals {
  double Mass = 0.0;
  std::array<double, Dim> Momentum = {};
  double Energy = 0.0;
};

/// Integrates Q over the interior (sum times cell volume), serially for
/// exact reproducibility.
template <unsigned Dim>
ConservedTotals<Dim> conservedTotals(const EulerSolver<Dim> &Solver) {
  const Grid<Dim> &G = Solver.problem().Domain;
  double Volume = 1.0;
  for (unsigned A = 0; A < Dim; ++A)
    Volume *= G.dx(A);

  ConservedTotals<Dim> T;
  Shape Interior = G.interiorShape();
  Index Iv = Interior.delinearize(0);
  do {
    const Cons<Dim> &Q = Solver.field().at(G.toStorage(Iv));
    T.Mass += Q.Rho;
    for (unsigned A = 0; A < Dim; ++A)
      T.Momentum[A] += Q.Mom[A];
    T.Energy += Q.E;
  } while (Interior.increment(Iv));

  T.Mass *= Volume;
  for (unsigned A = 0; A < Dim; ++A)
    T.Momentum[A] *= Volume;
  T.Energy *= Volume;
  return T;
}

/// Smallest density/pressure over the interior, and finiteness.
template <unsigned Dim> struct FieldHealth {
  double MinDensity = 0.0;
  double MinPressure = 0.0;
  bool AllFinite = true;
};

template <unsigned Dim>
FieldHealth<Dim> fieldHealth(const EulerSolver<Dim> &Solver) {
  const Grid<Dim> &G = Solver.problem().Domain;
  const Gas &Gas_ = Solver.problem().G;

  FieldHealth<Dim> H;
  H.MinDensity = std::numeric_limits<double>::infinity();
  H.MinPressure = std::numeric_limits<double>::infinity();

  Shape Interior = G.interiorShape();
  Index Iv = Interior.delinearize(0);
  do {
    const Cons<Dim> &Q = Solver.field().at(G.toStorage(Iv));
    for (unsigned K = 0; K < NumVars<Dim>; ++K)
      if (!std::isfinite(Q.comp(K)))
        H.AllFinite = false;
    if (!H.AllFinite) {
      // The scan stops at the first bad cell; the partial minima would be
      // misleading ("min density 1.0" over a NaN field), so report NaN.
      H.MinDensity = std::numeric_limits<double>::quiet_NaN();
      H.MinPressure = std::numeric_limits<double>::quiet_NaN();
      return H;
    }
    Prim<Dim> W = toPrim(Q, Gas_);
    H.MinDensity = std::min(H.MinDensity, W.Rho);
    H.MinPressure = std::min(H.MinPressure, W.P);
  } while (Interior.increment(Iv));
  return H;
}

/// Total variation of the density field (1D): sum |rho_{i+1} - rho_i|.
/// TVD schemes must not increase it on monotone profiles.
inline double densityTotalVariation(const EulerSolver<1> &Solver) {
  const Grid<1> &G = Solver.problem().Domain;
  double Tv = 0.0;
  for (size_t I = 0; I + 1 < G.cells(0); ++I) {
    double A =
        Solver.field().at(G.toStorage(Index{(std::ptrdiff_t)I})).Rho;
    double B =
        Solver.field().at(G.toStorage(Index{(std::ptrdiff_t)I + 1})).Rho;
    Tv += std::fabs(B - A);
  }
  return Tv;
}

/// Per-variable L1 errors of a 1D solver field against the exact Riemann
/// solution with initial states (\p L, \p R) and diaphragm at \p X0.
struct RiemannErrors {
  double Rho = 0.0;
  double U = 0.0;
  double P = 0.0;
  bool Valid = false;
};

inline RiemannErrors
riemannL1Error(const EulerSolver<1> &Solver, const Prim<1> &L,
               const Prim<1> &R, double X0) {
  RiemannErrors E;
  ExactRiemannSolver RS(L, R, Solver.problem().G);
  if (!RS.valid() || Solver.time() <= 0.0)
    return E;
  E.Valid = true;

  const Grid<1> &G = Solver.problem().Domain;
  double Dx = G.dx(0);
  for (size_t I = 0; I < G.cells(0); ++I) {
    double X = G.cellCenter(0, static_cast<std::ptrdiff_t>(I));
    Prim<1> Exact = RS.sample((X - X0) / Solver.time());
    Prim<1> Got = Solver.primitiveAt(Index{(std::ptrdiff_t)I});
    E.Rho += std::fabs(Got.Rho - Exact.Rho) * Dx;
    E.U += std::fabs(Got.Vel[0] - Exact.Vel[0]) * Dx;
    E.P += std::fabs(Got.P - Exact.P) * Dx;
  }
  return E;
}

/// Maximum absolute field difference between two solvers on the same
/// grid (engine-equivalence checks).
template <unsigned Dim>
double maxFieldDifference(const EulerSolver<Dim> &A,
                          const EulerSolver<Dim> &B) {
  assert(A.problem().Domain == B.problem().Domain && "grid mismatch");
  const Grid<Dim> &G = A.problem().Domain;
  double MaxDiff = 0.0;
  Shape Interior = G.interiorShape();
  Index Iv = Interior.delinearize(0);
  do {
    Index S = G.toStorage(Iv);
    const Cons<Dim> &Qa = A.field().at(S);
    const Cons<Dim> &Qb = B.field().at(S);
    for (unsigned K = 0; K < NumVars<Dim>; ++K)
      MaxDiff = std::max(MaxDiff, std::fabs(Qa.comp(K) - Qb.comp(K)));
  } while (Interior.increment(Iv));
  return MaxDiff;
}

} // namespace sacfd

#endif // SACFD_SOLVER_DIAGNOSTICS_H
