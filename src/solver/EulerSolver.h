//===- solver/EulerSolver.h - Solver engine interface ----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common driver for the two solver engines under comparison.
///
/// ArraySolver (the SaC port) and FusedSolver (the Fortran original) are
/// two implementations of the same numerical method; both derive from
/// EulerSolver, which owns the field, the clock and the step loop.  The
/// engines implement computeDt() (the GetDT kernel) and stepWithDt() (one
/// full multi-stage time step).  For identical scheme settings the two
/// engines produce bit-identical fields — the executable form of the
/// paper's claim that the SaC code is a faithful port.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_EULERSOLVER_H
#define SACFD_SOLVER_EULERSOLVER_H

#include "array/FieldPool.h"
#include "array/Layout.h"
#include "array/NDArray.h"
#include "runtime/Backend.h"
#include "solver/Field.h"
#include "solver/Problem.h"
#include "solver/SchemeConfig.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <string>

namespace sacfd {

/// True when the interval [Now, EndTime] is below the rounding noise of
/// the solver clock — smaller than a few ulps of Now.  Stepping through
/// such a remainder grinds out denormal-sized dt values (and
/// `Time += Dt` may not even change Time, looping forever); callers snap
/// the clock onto EndTime instead.
inline bool stepRemainderNegligible(double Now, double EndTime) {
  return EndTime - Now <
         4.0 * std::numeric_limits<double>::epsilon() *
             std::max(std::abs(Now), 1.0);
}

/// Abstract Euler solver: owns the field and the time loop; engines
/// supply the per-step numerics.
template <unsigned Dim> class EulerSolver {
public:
  EulerSolver(Problem<Dim> Prob, SchemeConfig Scheme, Backend &Exec,
              Layout FieldLayout = Layout::AoS, bool Simd = true)
      : Prob(std::move(Prob)), Scheme(Scheme), Exec(Exec),
        U(Pool, this->Prob.Domain.storageShape(), FieldLayout),
        SimdEnabled(Simd) {
    assert(this->Prob.Domain.ghost() >= ghostCells(Scheme.Recon) &&
           "grid ghost layers insufficient for the reconstruction");
    Pool.setLayout(FieldLayout);
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Storage = G.storageShape();
    for (unsigned A = 0; A < Dim; ++A) {
      N[A] = G.cells(A);
      StorageDim[A] = Storage.dim(A);
    }
    // Row-major strides.
    StorageStride[Dim - 1] = 1;
    InteriorStride[Dim - 1] = 1;
    for (unsigned A = Dim - 1; A-- > 0;) {
      StorageStride[A] = StorageStride[A + 1] * StorageDim[A + 1];
      InteriorStride[A] = InteriorStride[A + 1] * N[A + 1];
    }
    Ng = G.ghost();
    initializeField();
  }
  virtual ~EulerSolver() = default;

  EulerSolver(const EulerSolver &) = delete;
  EulerSolver &operator=(const EulerSolver &) = delete;

  const Problem<Dim> &problem() const { return Prob; }
  const SchemeConfig &scheme() const { return Scheme; }
  Backend &backend() { return Exec; }

  double time() const { return Time; }
  unsigned stepCount() const { return Steps; }

  /// Result of the last GetDT reduction (0 before the first computeDt).
  /// The shard coordinator reduces these across shards to form the
  /// global CFL step.
  double lastMaxEigen() const { return LastMaxEigen; }

  /// Called at the top of every ghost fill, before the boundary
  /// conditions are applied (shard halo exchange: neighbor interiors
  /// land in the axis-0 ghost rows, then the physical BC pass fills the
  /// remaining sides — BcKind::Halo sides are left untouched by it).
  using GhostFillHook = std::function<void(Field<Dim> &U, double Time)>;

  /// Installs \p Hook; pass an empty function to remove it.  The hook
  /// runs on the driving thread once per stage fill.
  void setGhostFillHook(GhostFillHook Hook) { GhostHook = std::move(Hook); }

  /// The full field including ghost cells (shape == storageShape()).
  /// Element access goes through Field::at()/set(); bulk transfers
  /// through Field::exportTo()/importFrom().  The old accessors handing
  /// out the raw interleaved NDArray are gone — they pinned every
  /// consumer to the AoS layout.
  const Field<Dim> &field() const { return U; }
  Field<Dim> &field() { return U; }

  /// Memory layout the state field is stored under.
  Layout fieldLayout() const { return U.layout(); }
  /// Whether stage kernels may use the vectorized build.
  bool simdEnabled() const { return SimdEnabled; }

  /// Primitive state of interior cell \p Interior.
  Prim<Dim> primitiveAt(const Index &Interior) const {
    return toPrim(U.at(Prob.Domain.toStorage(Interior)), Prob.G);
  }

  /// CFL-limited time step of the current field (the GetDT kernel).
  virtual double computeDt() = 0;

  /// Advances one step with the CFL time step.  \returns the dt taken.
  double advance() {
    double Dt = computeDt();
    stepWithDt(Dt);
    Time += Dt;
    ++Steps;
    recordStepTelemetry(Dt);
    return Dt;
  }

  /// Advances one step with a caller-chosen dt (the step-guard retry loop
  /// drives this with scaled/clamped steps).  \returns the dt taken.
  double advanceWithDt(double Dt) {
    stepWithDt(Dt);
    Time += Dt;
    ++Steps;
    recordStepTelemetry(Dt);
    return Dt;
  }

  /// Advances exactly \p N steps (the paper's fixed-step benchmark loop).
  void advanceSteps(unsigned N) {
    for (unsigned I = 0; I < N; ++I)
      advance();
  }

  /// Advances until \p EndTime, clamping the final step onto it.  A
  /// remainder below clock rounding noise is snapped rather than stepped
  /// (see stepRemainderNegligible) so adversarial end times cannot grind
  /// the loop through denormal-sized steps.
  void advanceTo(double EndTime) {
    while (Time < EndTime) {
      if (stepRemainderNegligible(Time, EndTime)) {
        // Snap through restoreClock, not a bare assignment: engines cache
        // state keyed on the clock (the DAG GetDT cache), and Prescribed
        // boundary segments read the clock — both must observe the snap
        // exactly like a checkpoint-resume overwrite.
        restoreClock(EndTime, Steps);
        break;
      }
      double Dt = std::min(computeDt(), EndTime - Time);
      stepWithDt(Dt);
      Time += Dt;
      ++Steps;
      recordStepTelemetry(Dt);
    }
  }

  /// Engine name for reports ("array" / "fused").
  virtual const char *engineName() const = 0;

  /// Overwrites the solver clock; checkpoint-restore hook (the field is
  /// restored through the mutable field() accessor).  Fires
  /// onClockRestored() so engines can drop any state derived from the
  /// pre-restore field (e.g. a cached GetDT result).
  void restoreClock(double NewTime, unsigned NewSteps) {
    Time = NewTime;
    Steps = NewSteps;
    onClockRestored();
  }

  /// The solver's buffer arena.  Engines lease every stage temporary from
  /// here; the step guard leases its rollback snapshot from it too, so the
  /// guard must not outlive the solver.
  FieldPool &fieldPool() { return Pool; }

protected:
  /// One full multi-stage step with the given dt.
  virtual void stepWithDt(double Dt) = 0;

  /// The per-stage ghost fill both engines call: the ghost-fill hook
  /// first (halo exchange), then the physical boundary conditions.  All
  /// engine step modes route their applyBoundaries calls through here so
  /// a sharded sub-solver exchanges halos exactly once per stage.
  void fillGhosts(double FillTime) {
    if (GhostHook)
      GhostHook(U, FillTime);
    applyBoundaries(U, Prob.Domain, Prob.Boundary, Exec, FillTime);
  }

  /// Line decomposition shared by the engines and the kernel routing: a
  /// "line" is a run of interior cells along \p Axis; contiguous in
  /// storage when Axis is the last (row-major) axis.

  /// Number of tangential lines perpendicular to \p Axis.
  size_t lineCount(unsigned Axis) const {
    size_t Count = 1;
    for (unsigned A = 0; A < Dim; ++A)
      if (A != Axis)
        Count *= N[A];
    return Count;
  }

  /// Storage offset of interior cell 0 of tangential line \p Line along
  /// \p Axis.
  size_t lineStorageBase(unsigned Axis, size_t Line) const {
    size_t Base = 0;
    // Decompose Line over the tangential axes in row-major order.
    for (unsigned A = Dim; A-- > 0;) {
      if (A == Axis)
        continue;
      size_t Coord = Line % N[A];
      Line /= N[A];
      Base += (Coord + Ng) * StorageStride[A];
    }
    Base += Ng * StorageStride[Axis];
    return Base;
  }

  /// Interior (residual) offset of cell 0 of the same line.
  size_t lineInteriorBase(unsigned Axis, size_t Line) const {
    size_t Base = 0;
    for (unsigned A = Dim; A-- > 0;) {
      if (A == Axis)
        continue;
      size_t Coord = Line % N[A];
      Line /= N[A];
      Base += Coord * InteriorStride[A];
    }
    return Base;
  }

  /// Called whenever restoreClock rewinds or overwrites the clock (step-
  /// guard rollback, checkpoint resume, end-time snapping).  Engines that
  /// cache anything derived from the field state must invalidate it here.
  virtual void onClockRestored() {}

  /// Engines route their GetDT reduction result through this instead of
  /// SchemeConfig::dtFromMaxEigen directly, so the max eigenvalue is
  /// remembered for the "step.max_eigen" telemetry gauge.
  double dtFromMaxEigen(double EvMax) {
    LastMaxEigen = EvMax;
    return Scheme.dtFromMaxEigen(EvMax);
  }

  /// Feeds the "solver.steps" counter and, at the configured gauge
  /// stride, the per-step gauges: dt, the GetDT max eigenvalue, and the
  /// conserved totals (mass, momentum per axis, energy) whose drift is
  /// the conservation regression's measurement channel.  The totals are
  /// a serial interior sum, so the gauge values are bit-identical across
  /// backends and worker counts.
  void recordStepTelemetry(double Dt) {
    if (!telemetry::enabled())
      return;
    static const unsigned StepsTaken = telemetry::counterId("solver.steps");
    telemetry::addCounter(StepsTaken);
    if (!telemetry::gaugeDue(Steps))
      return;
    static const unsigned GaugeDt = telemetry::gaugeId("step.dt");
    static const unsigned GaugeEv = telemetry::gaugeId("step.max_eigen");
    static const unsigned GaugeMass = telemetry::gaugeId("step.mass");
    static const unsigned GaugeEnergy = telemetry::gaugeId("step.energy");
    static const std::array<unsigned, Dim> GaugeMom = [] {
      std::array<unsigned, Dim> Ids{};
      for (unsigned A = 0; A < Dim; ++A) {
        std::string Name = "step.momentum" + std::to_string(A);
        Ids[A] = telemetry::gaugeId(Name.c_str());
      }
      return Ids;
    }();

    telemetry::recordGauge(GaugeDt, Steps, Dt);
    telemetry::recordGauge(GaugeEv, Steps, LastMaxEigen);

    const Grid<Dim> &G = Prob.Domain;
    double Volume = 1.0;
    for (unsigned A = 0; A < Dim; ++A)
      Volume *= G.dx(A);
    double Mass = 0.0, Energy = 0.0;
    std::array<double, Dim> Momentum = {};
    Shape Interior = G.interiorShape();
    Index Iv = Interior.delinearize(0);
    if (Interior.count() > 0) {
      do {
        const Cons<Dim> Q = U.at(G.toStorage(Iv));
        Mass += Q.Rho;
        for (unsigned A = 0; A < Dim; ++A)
          Momentum[A] += Q.Mom[A];
        Energy += Q.E;
      } while (Interior.increment(Iv));
    }
    telemetry::recordGauge(GaugeMass, Steps, Mass * Volume);
    for (unsigned A = 0; A < Dim; ++A)
      telemetry::recordGauge(GaugeMom[A], Steps, Momentum[A] * Volume);
    telemetry::recordGauge(GaugeEnergy, Steps, Energy * Volume);

    // Pool stats are a pure function of the step structure (acquisitions
    // happen only on the driving thread), so these gauges stay
    // bit-identical across backends and worker counts.
    Pool.recordTelemetry(Steps);
  }

  void initializeField() {
    const Grid<Dim> &G = Prob.Domain;
    Shape Interior = G.interiorShape();
    Index Iv = Interior.delinearize(0);
    if (Interior.count() > 0) {
      do {
        std::array<double, Dim> X;
        for (unsigned A = 0; A < Dim; ++A)
          X[A] = G.cellCenter(A, Iv.Coord[A]);
        U.set(G.toStorage(Iv), toCons(Prob.InitialState(X), Prob.G));
      } while (Interior.increment(Iv));
    }
    applyBoundaries(U, G, Prob.Boundary, Exec, Time);
  }

  Problem<Dim> Prob;
  SchemeConfig Scheme;
  Backend &Exec;
  /// Declared before U and before any derived-class lease members: leases
  /// (destroyed in derived destructors, before this) return their buffers
  /// here, so the pool must be destroyed last.
  FieldPool Pool;
  Field<Dim> U;
  /// Stage kernels dispatch into the vectorized TU when set (the
  /// --no-simd ablation clears it).
  bool SimdEnabled = true;
  /// Cached grid geometry for the line decomposition.
  size_t N[Dim] = {};
  size_t StorageDim[Dim] = {};
  size_t StorageStride[Dim] = {};
  size_t InteriorStride[Dim] = {};
  unsigned Ng = 0;
  double Time = 0.0;
  unsigned Steps = 0;
  /// Result of the last GetDT reduction (0 until computeDt runs).
  double LastMaxEigen = 0.0;
  /// Optional pre-BC ghost fill (shard halo exchange); empty by default.
  GhostFillHook GhostHook;
};

} // namespace sacfd

#endif // SACFD_SOLVER_EULERSOLVER_H
