//===- solver/EulerSolver.h - Solver engine interface ----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common driver for the two solver engines under comparison.
///
/// ArraySolver (the SaC port) and FusedSolver (the Fortran original) are
/// two implementations of the same numerical method; both derive from
/// EulerSolver, which owns the field, the clock and the step loop.  The
/// engines implement computeDt() (the GetDT kernel) and stepWithDt() (one
/// full multi-stage time step).  For identical scheme settings the two
/// engines produce bit-identical fields — the executable form of the
/// paper's claim that the SaC code is a faithful port.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_EULERSOLVER_H
#define SACFD_SOLVER_EULERSOLVER_H

#include "array/NDArray.h"
#include "runtime/Backend.h"
#include "solver/Problem.h"
#include "solver/SchemeConfig.h"

#include <algorithm>
#include <cassert>

namespace sacfd {

/// Abstract Euler solver: owns the field and the time loop; engines
/// supply the per-step numerics.
template <unsigned Dim> class EulerSolver {
public:
  EulerSolver(Problem<Dim> Prob, SchemeConfig Scheme, Backend &Exec)
      : Prob(std::move(Prob)), Scheme(Scheme), Exec(Exec),
        U(this->Prob.Domain.storageShape()) {
    assert(this->Prob.Domain.ghost() >= ghostCells(Scheme.Recon) &&
           "grid ghost layers insufficient for the reconstruction");
    initializeField();
  }
  virtual ~EulerSolver() = default;

  EulerSolver(const EulerSolver &) = delete;
  EulerSolver &operator=(const EulerSolver &) = delete;

  const Problem<Dim> &problem() const { return Prob; }
  const SchemeConfig &scheme() const { return Scheme; }
  Backend &backend() { return Exec; }

  double time() const { return Time; }
  unsigned stepCount() const { return Steps; }

  /// The full field including ghost cells (shape == storageShape()).
  const NDArray<Cons<Dim>> &field() const { return U; }
  NDArray<Cons<Dim>> &field() { return U; }

  /// Primitive state of interior cell \p Interior.
  Prim<Dim> primitiveAt(const Index &Interior) const {
    return toPrim(U.at(Prob.Domain.toStorage(Interior)), Prob.G);
  }

  /// CFL-limited time step of the current field (the GetDT kernel).
  virtual double computeDt() = 0;

  /// Advances one step with the CFL time step.  \returns the dt taken.
  double advance() {
    double Dt = computeDt();
    stepWithDt(Dt);
    Time += Dt;
    ++Steps;
    return Dt;
  }

  /// Advances one step with a caller-chosen dt (the step-guard retry loop
  /// drives this with scaled/clamped steps).  \returns the dt taken.
  double advanceWithDt(double Dt) {
    stepWithDt(Dt);
    Time += Dt;
    ++Steps;
    return Dt;
  }

  /// Advances exactly \p N steps (the paper's fixed-step benchmark loop).
  void advanceSteps(unsigned N) {
    for (unsigned I = 0; I < N; ++I)
      advance();
  }

  /// Advances until \p EndTime, clamping the final step onto it.
  void advanceTo(double EndTime) {
    while (Time < EndTime) {
      double Dt = std::min(computeDt(), EndTime - Time);
      stepWithDt(Dt);
      Time += Dt;
      ++Steps;
    }
  }

  /// Engine name for reports ("array" / "fused").
  virtual const char *engineName() const = 0;

  /// Overwrites the solver clock; checkpoint-restore hook (the field is
  /// restored through the mutable field() accessor).
  void restoreClock(double NewTime, unsigned NewSteps) {
    Time = NewTime;
    Steps = NewSteps;
  }

protected:
  /// One full multi-stage step with the given dt.
  virtual void stepWithDt(double Dt) = 0;

  void initializeField() {
    const Grid<Dim> &G = Prob.Domain;
    Shape Interior = G.interiorShape();
    Index Iv = Interior.delinearize(0);
    if (Interior.count() > 0) {
      do {
        std::array<double, Dim> X;
        for (unsigned A = 0; A < Dim; ++A)
          X[A] = G.cellCenter(A, Iv.Coord[A]);
        U.at(G.toStorage(Iv)) = toCons(Prob.InitialState(X), Prob.G);
      } while (Interior.increment(Iv));
    }
    applyBoundaries(U, G, Prob.Boundary, Exec);
  }

  Problem<Dim> Prob;
  SchemeConfig Scheme;
  Backend &Exec;
  NDArray<Cons<Dim>> U;
  double Time = 0.0;
  unsigned Steps = 0;
};

} // namespace sacfd

#endif // SACFD_SOLVER_EULERSOLVER_H
