//===- solver/StepGuard.h - Breakdown detection and recovery ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The step guard: detect, contain, and recover from solver breakdown.
///
/// High-CFL runs, under-resolved shocks and strong interactions can push
/// the explicit schemes outside the admissible set (rho <= 0, p < 0,
/// NaN/inf).  The EOS/flux/characteristics helpers are total functions —
/// they clamp instead of asserting — so a broken state propagates rather
/// than aborts; the guard is the matching detection-and-recovery layer:
///
///   1. After every window of `Every` accepted steps, scan the interior
///      for finiteness and positivity (a deterministic blockReduce
///      through the Backend — the parallel form of fieldHealth()).
///   2. On breakdown, restore the snapshot taken at the last verified
///      healthy point, halve the dt scale, and retry — up to MaxRetries
///      times with exponential backoff.
///   3. If retries are exhausted and floors are allowed, replay the
///      window once more and clamp the offending cells to the
///      configurable density/pressure floors (positivity floors).
///   4. If even that fails, restore the last healthy state, optionally
///      write an emergency checkpoint of it, and report a structured
///      BreakdownReport (step, time, dt history, offending cells,
///      minima).  The guard then refuses further work (failed()).
///
/// Healthy runs are bit-identical to unguarded ones: the scan only reads
/// the field, the dt scale stays at 1, and snapshots are plain copies.
///
/// The emergency checkpoint is a caller-supplied callback rather than a
/// direct io/Checkpoint.h call: the io library links against the solver
/// library, so the dependency must point outward.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_STEPGUARD_H
#define SACFD_SOLVER_STEPGUARD_H

#include "runtime/BlockReduce.h"
#include "solver/EulerSolver.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace sacfd {

/// Tuning knobs of the step guard.
struct GuardConfig {
  /// Steps between health scans (a scan window).  0 is treated as 1.
  unsigned Every = 1;
  /// Maximum dt-halving retries per window before the floor stage.
  unsigned MaxRetries = 4;
  /// Positivity floor for density: interior cells below it are flagged
  /// (and clamped to it in the floor stage).
  double DensityFloor = 1.0e-10;
  /// Positivity floor for pressure.
  double PressureFloor = 1.0e-10;
  /// Whether the floor stage may clamp cells after retries are spent.
  bool AllowFloor = true;
  /// Cap on offending-cell indices kept per scan/report.
  unsigned MaxReportedCells = 8;
};

/// Result of one parallel health scan over the interior.
struct HealthScan {
  double MinDensity = std::numeric_limits<double>::infinity();
  double MinPressure = std::numeric_limits<double>::infinity();
  bool AllFinite = true;
  /// Cells violating finiteness or the floors.
  size_t BadCells = 0;
  /// Linear interior indices of the first offenders (capped, in
  /// ascending order — deterministic for a fixed worker count).
  std::vector<size_t> Offenders;

  bool healthy() const { return BadCells == 0; }
};

/// Scans the interior of \p Solver for breakdown: non-finite components,
/// density below \p DensityFloor, or pressure below \p PressureFloor.
/// Minima are taken over the finite cells.  Dispatched through \p Exec as
/// a deterministic block reduction; never calls toPrim (whose velocity
/// division would poison the scan on rho <= 0).
template <unsigned Dim>
HealthScan scanFieldHealth(const EulerSolver<Dim> &Solver, Backend &Exec,
                           double DensityFloor, double PressureFloor,
                           unsigned MaxOffenders = 8) {
  const Grid<Dim> &G = Solver.problem().Domain;
  const Gas &Gas_ = Solver.problem().G;
  Shape Interior = G.interiorShape();
  size_t N = Interior.count();

  auto FoldBlock = [&](size_t Lo, size_t Hi) {
    HealthScan S;
    Index Iv = Interior.delinearize(Lo);
    for (size_t L = Lo; L != Hi; ++L) {
      const Cons<Dim> Q = Solver.field().at(G.toStorage(Iv));
      bool Finite = true;
      for (unsigned K = 0; K < NumVars<Dim>; ++K)
        if (!std::isfinite(Q.comp(K)))
          Finite = false;

      double P = -std::numeric_limits<double>::infinity();
      if (Finite) {
        S.MinDensity = std::min(S.MinDensity, Q.Rho);
        if (Q.Rho > 0.0) {
          double Mom2 = 0.0;
          for (unsigned D = 0; D < Dim; ++D)
            Mom2 += Q.Mom[D] * Q.Mom[D];
          P = Gas_.pressure(Q.Rho, 0.5 * Mom2 / Q.Rho, Q.E);
        }
        S.MinPressure = std::min(S.MinPressure, P);
      } else {
        S.AllFinite = false;
      }

      if (!Finite || Q.Rho < DensityFloor || !(P >= PressureFloor)) {
        ++S.BadCells;
        if (S.Offenders.size() < MaxOffenders)
          S.Offenders.push_back(L);
      }
      Interior.increment(Iv);
    }
    return S;
  };

  auto MergeFn = [MaxOffenders](HealthScan A, HealthScan B) {
    A.MinDensity = std::min(A.MinDensity, B.MinDensity);
    A.MinPressure = std::min(A.MinPressure, B.MinPressure);
    A.AllFinite = A.AllFinite && B.AllFinite;
    A.BadCells += B.BadCells;
    for (size_t Cell : B.Offenders) {
      if (A.Offenders.size() >= MaxOffenders)
        break;
      A.Offenders.push_back(Cell);
    }
    return A;
  };

  return blockReduce(N, Exec, HealthScan(), FoldBlock, MergeFn);
}

/// How the guard resolved one scan window.
enum class GuardAction {
  Accepted, ///< window healthy on the first attempt
  Retried,  ///< healthy after >= 1 dt-halving retries
  Floored,  ///< recovered by clamping cells to the positivity floors
  Failed,   ///< unrecoverable; solver restored to last healthy state
};

inline const char *guardActionName(GuardAction A) {
  switch (A) {
  case GuardAction::Accepted:
    return "accepted";
  case GuardAction::Retried:
    return "retried";
  case GuardAction::Floored:
    return "floored";
  case GuardAction::Failed:
    return "failed";
  }
  return "unknown";
}

/// How a breakdown episode ended.
enum class BreakdownResolution {
  FloorRecovered, ///< floors clamped the bad cells; the run continues
  Failed,         ///< retries and floors exhausted; the run is over
};

/// Structured record of one breakdown episode, surfaced through
/// StepGuard::reports() and RunRecorder.
struct BreakdownReport {
  /// Step count at the window-start snapshot (the last healthy point).
  unsigned Step = 0;
  /// Simulation time at the window-start snapshot.
  double Time = 0.0;
  /// First-step dt of each attempt, in order — exponential backoff makes
  /// consecutive entries halve exactly.
  std::vector<double> DtHistory;
  /// Number of offending cells in the final (worst) scan.
  size_t BadCells = 0;
  /// Linear interior indices of the first offenders (capped).
  std::vector<size_t> OffendingCells;
  /// Scan minima at the final attempt (NaN-free cells only).
  double MinDensity = 0.0;
  double MinPressure = 0.0;
  BreakdownResolution Resolution = BreakdownResolution::Failed;
  /// Emergency checkpoint outcome (Failed episodes only).
  bool CheckpointWritten = false;
  std::string CheckpointPath;
  /// Writer diagnostic when the emergency checkpoint failed (empty on
  /// success), e.g. a CheckpointStatus::str() from io.
  std::string CheckpointErrorText;

  /// One-line human-readable summary.
  std::string str() const {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "breakdown at step %u t=%.6g: %zu bad cells, "
                  "min rho=%.3g min p=%.3g, %zu attempts, %s",
                  Step, Time, BadCells, MinDensity, MinPressure,
                  DtHistory.size(),
                  Resolution == BreakdownResolution::FloorRecovered
                      ? "recovered by floors"
                      : "failed");
    std::string S = Buf;
    if (CheckpointWritten) {
      S += "; emergency checkpoint: ";
      S += CheckpointPath;
    } else if (!CheckpointErrorText.empty()) {
      S += "; emergency checkpoint FAILED: ";
      S += CheckpointErrorText;
    }
    return S;
  }
};

/// Outcome of one StepGuard::advanceWindow call.
struct GuardStepResult {
  GuardAction Action = GuardAction::Accepted;
  /// dt of the first step of the accepted attempt (0 when no step ran).
  double Dt = 0.0;
  /// dt-halving retries spent on this window.
  unsigned Retries = 0;
};

/// Wraps an EulerSolver's step loop with scan / snapshot-rollback /
/// dt-backoff / positivity-floor recovery.  See the file comment for the
/// policy.  The guard owns a snapshot of the last verified healthy field;
/// mutating the solver behind the guard's back invalidates it.
template <unsigned Dim> class StepGuard {
public:
  /// Persists the (already restored) last healthy state to the given
  /// path.  \returns an empty string on success, else a structured
  /// diagnostic (io passes a CheckpointStatus::str() through here —
  /// the guard cannot name io types, but it can carry their report).
  using CheckpointWriter = std::function<std::string(const std::string &)>;

  StepGuard(EulerSolver<Dim> &Solver, GuardConfig Config = GuardConfig())
      : S(Solver), Cfg(Config) {
    if (Cfg.Every == 0)
      Cfg.Every = 1;
    captureSnapshot();
  }

  /// Registers an emergency checkpoint: on terminal failure the solver is
  /// first restored to the last healthy state, then \p Writer is invoked
  /// with \p Path to persist it.
  void setEmergencyCheckpoint(std::string Path, CheckpointWriter Writer) {
    EmergencyPath = std::move(Path);
    EmergencyWriter = std::move(Writer);
  }

  /// Fault injection: poisons the given linear interior cells (all
  /// components NaN) right after the solver completes step \p AfterStep.
  /// One-shot faults disarm once fired, so a rollback replay runs clean
  /// (the transient-fault recovery path); persistent faults re-fire on
  /// every replay (the unrecoverable path, unless floors are allowed).
  void injectFault(unsigned AfterStep, std::vector<size_t> Cells,
                   bool Persistent = false) {
    Faults.push_back({AfterStep, std::move(Cells), Persistent, true});
  }

  /// Convenience: poison \p CellCount evenly spaced interior cells.
  void injectFaultSpread(unsigned AfterStep, size_t CellCount,
                         bool Persistent = false) {
    size_t N = S.problem().Domain.interiorShape().count();
    CellCount = std::min(CellCount, N);
    std::vector<size_t> Cells;
    for (size_t I = 0; I < CellCount; ++I)
      Cells.push_back(I * N / CellCount);
    injectFault(AfterStep, std::move(Cells), Persistent);
  }

  /// Runs one scan window (Cfg.Every steps, dt clamped onto
  /// \p ClampTime), then scans and recovers per the policy.
  GuardStepResult advanceWindow(
      double ClampTime = std::numeric_limits<double>::infinity()) {
    if (Failed)
      return {GuardAction::Failed, 0.0, 0};
    ++Windows;

    std::vector<double> DtHist;
    for (unsigned Attempt = 0; Attempt <= Cfg.MaxRetries; ++Attempt) {
      double FirstDt = runWindow(ClampTime);
      DtHist.push_back(FirstDt);
      LastScan = scan();
      if (LastScan.healthy()) {
        TotalRetries += Attempt;
        countGuard("guard.retries", Attempt);
        Scale = std::min(1.0, Scale * 2.0);
        captureSnapshot();
        return {Attempt == 0 ? GuardAction::Accepted : GuardAction::Retried,
                FirstDt, Attempt};
      }
      restoreSnapshot();
      countGuard("guard.rollbacks");
      Scale *= 0.5;
    }
    TotalRetries += Cfg.MaxRetries;
    countGuard("guard.retries", Cfg.MaxRetries);

    // Floor stage: replay once more, then clamp the offenders.
    if (Cfg.AllowFloor) {
      double FirstDt = runWindow(ClampTime);
      DtHist.push_back(FirstDt);
      HealthScan Before = scan();
      if (Before.healthy()) {
        // The extra dt halving alone rescued the replay; this is a late
        // retry, not a floor recovery -- no cells were touched.
        ++TotalRetries;
        countGuard("guard.retries");
        LastScan = Before;
        Scale = std::min(1.0, Scale * 2.0);
        captureSnapshot();
        return {GuardAction::Retried, FirstDt, Cfg.MaxRetries + 1};
      }
      size_t Fixed = applyFloors();
      LastScan = scan();
      if (LastScan.healthy()) {
        ++TotalFloorEvents;
        TotalFlooredCells += Fixed;
        countGuard("guard.floor_events");
        countGuard("guard.floored_cells", Fixed);
        Reports.push_back(
            makeReport(Before, DtHist, BreakdownResolution::FloorRecovered));
        captureSnapshot();
        return {GuardAction::Floored, FirstDt, Cfg.MaxRetries};
      }
      restoreSnapshot();
      countGuard("guard.rollbacks");
    }

    // Terminal failure: the solver sits at the last healthy state.
    Failed = true;
    countGuard("guard.failures");
    BreakdownReport R =
        makeReport(LastScan, DtHist, BreakdownResolution::Failed);
    if (EmergencyWriter) {
      R.CheckpointPath = EmergencyPath;
      R.CheckpointErrorText = EmergencyWriter(EmergencyPath);
      R.CheckpointWritten = R.CheckpointErrorText.empty();
    }
    Reports.push_back(std::move(R));
    return {GuardAction::Failed, 0.0, Cfg.MaxRetries};
  }

  /// Advances until \p EndTime (clamping onto it), scanning every window.
  /// \returns false if the run failed before reaching EndTime.
  bool advanceTo(double EndTime) {
    while (!Failed && S.time() < EndTime)
      advanceWindow(EndTime);
    return !Failed;
  }

  /// Advances (at least) \p N steps in guarded windows.  \returns false
  /// on failure.
  bool advanceSteps(unsigned N) {
    unsigned Target = S.stepCount() + N;
    while (!Failed && S.stepCount() < Target)
      advanceWindow();
    return !Failed;
  }

  /// Re-captures the healthy-state snapshot from the solver's current
  /// state.  The caller must do this after legitimately mutating the
  /// solver behind the guard's back — in practice after restoring a
  /// checkpoint into it (--resume), which invalidates the snapshot taken
  /// at construction.
  void resync() { captureSnapshot(); }

  bool failed() const { return Failed; }
  unsigned retriesTotal() const { return TotalRetries; }
  unsigned floorsTotal() const { return TotalFloorEvents; }
  size_t flooredCellsTotal() const { return TotalFlooredCells; }
  double dtScale() const { return Scale; }
  const std::vector<BreakdownReport> &reports() const { return Reports; }
  const HealthScan &lastScan() const { return LastScan; }
  EulerSolver<Dim> &solver() { return S; }
  const EulerSolver<Dim> &solver() const { return S; }

  /// One-line statistics summary for run reports.
  std::string summary() const {
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "guard: %zu windows, %u retries, %u floor events "
                  "(%zu cells), %zu breakdown reports, dt scale %.3g%s",
                  Windows, TotalRetries, TotalFloorEvents,
                  TotalFlooredCells, Reports.size(), Scale,
                  Failed ? ", FAILED" : "");
    return Buf;
  }

private:
  /// Runs up to Cfg.Every steps with the backed-off dt, firing armed
  /// faults after each step.  \returns the dt of the first step taken.
  double runWindow(double ClampTime) {
    double FirstDt = 0.0;
    for (unsigned I = 0; I < Cfg.Every; ++I) {
      if (S.time() >= ClampTime)
        break;
      if (stepRemainderNegligible(S.time(), ClampTime)) {
        // Snap instead of grinding through a sub-rounding-noise
        // remainder with denormal-sized steps (see EulerSolver::advanceTo).
        S.restoreClock(ClampTime, S.stepCount());
        break;
      }
      double Dt = std::min(S.computeDt() * Scale, ClampTime - S.time());
      S.advanceWithDt(Dt);
      if (I == 0)
        FirstDt = Dt;
      fireFaults();
    }
    return FirstDt;
  }

  HealthScan scan() const {
    countGuard("guard.scans");
    static const unsigned SpanScan = telemetry::spanId("guard.scan");
    telemetry::ScopedSpan Span(SpanScan);
    return scanFieldHealth(S, S.backend(), Cfg.DensityFloor,
                           Cfg.PressureFloor, Cfg.MaxReportedCells);
  }

  /// Bumps the named guard counter.  Guard events are rare (a handful per
  /// breakdown episode), so the per-call name lookup is not on any hot
  /// path; when telemetry is disabled this is a single relaxed load.
  static void countGuard(const char *Name, uint64_t Delta = 1) {
    if (!telemetry::enabled() || Delta == 0)
      return;
    telemetry::addCounter(telemetry::counterId(Name), Delta);
  }

  void captureSnapshot() {
    const Field<Dim> &U = S.field();
    if (!Snap || Snap->shape() != U.shape())
      // Leased from the solver's pool (the guard never outlives its
      // solver); uninit is safe, the copy writes every element.  The
      // snapshot stages through the AoS interchange format, so the
      // guard is layout-agnostic.
      Snap = S.fieldPool().template acquireUninit<Cons<Dim>>(U.shape());
    U.exportTo(Snap->data());
    SnapTime = S.time();
    SnapSteps = S.stepCount();
  }

  void restoreSnapshot() {
    S.field().importFrom(Snap->data());
    S.restoreClock(SnapTime, SnapSteps);
  }

  /// Clamps every flagged interior cell to the floors: density and
  /// pressure raised to the configured minima, non-finite components
  /// zeroed.  \returns the number of cells modified.
  size_t applyFloors() {
    const Grid<Dim> &G = S.problem().Domain;
    const Gas &Gas_ = S.problem().G;
    Shape Interior = G.interiorShape();
    size_t N = Interior.count();
    Field<Dim> &U = S.field();

    auto FoldBlock = [&](size_t Lo, size_t Hi) {
      size_t Fixed = 0;
      Index Iv = Interior.delinearize(Lo);
      for (size_t L = Lo; L != Hi; ++L) {
        const Index Storage = G.toStorage(Iv);
        Cons<Dim> Q = U.at(Storage);
        bool Finite = true;
        for (unsigned K = 0; K < NumVars<Dim>; ++K)
          if (!std::isfinite(Q.comp(K)))
            Finite = false;

        double P = -std::numeric_limits<double>::infinity();
        if (Finite && Q.Rho > 0.0) {
          double Mom2 = 0.0;
          for (unsigned D = 0; D < Dim; ++D)
            Mom2 += Q.Mom[D] * Q.Mom[D];
          P = Gas_.pressure(Q.Rho, 0.5 * Mom2 / Q.Rho, Q.E);
        }

        if (!Finite || Q.Rho < Cfg.DensityFloor ||
            !(P >= Cfg.PressureFloor)) {
          // Clamp to twice the floors: the rescan recomputes pressure
          // from the rebuilt E, and with kinetic energy much larger than
          // the floor the EOS roundtrip can lose an ulp — a cell floored
          // exactly onto the threshold could be re-flagged.  The margin
          // keeps the rebuilt cell robustly admissible.
          Prim<Dim> W;
          W.Rho = std::isfinite(Q.Rho)
                      ? std::max(Q.Rho, 2.0 * Cfg.DensityFloor)
                      : 2.0 * Cfg.DensityFloor;
          for (unsigned D = 0; D < Dim; ++D) {
            double V = Finite && Q.Rho > 0.0 ? Q.Mom[D] / Q.Rho : 0.0;
            W.Vel[D] = std::isfinite(V) ? V : 0.0;
          }
          W.P = std::isfinite(P) ? std::max(P, 2.0 * Cfg.PressureFloor)
                                 : 2.0 * Cfg.PressureFloor;
          U.set(Storage, toCons(W, Gas_));
          ++Fixed;
        }
        Interior.increment(Iv);
      }
      return Fixed;
    };

    return blockReduce(
        N, S.backend(), size_t{0}, FoldBlock,
        [](size_t A, size_t B) { return A + B; });
  }

  /// Poisons the cells of every armed fault whose trigger step has been
  /// reached.  One-shot faults disarm permanently; persistent faults
  /// re-fire whenever the (rolled-back) step count matches again.
  void fireFaults() {
    const Grid<Dim> &G = S.problem().Domain;
    Shape Interior = G.interiorShape();
    double Nan = std::numeric_limits<double>::quiet_NaN();
    for (Fault &F : Faults) {
      if (!F.Armed || S.stepCount() != F.AfterStep)
        continue;
      for (size_t L : F.Cells) {
        if (L >= Interior.count())
          continue;
        const Index Storage = G.toStorage(Interior.delinearize(L));
        Cons<Dim> Q = S.field().at(Storage);
        for (unsigned K = 0; K < NumVars<Dim>; ++K)
          Q.setComp(K, Nan);
        S.field().set(Storage, Q);
      }
      if (!F.Persistent)
        F.Armed = false;
    }
  }

  BreakdownReport makeReport(const HealthScan &Scan,
                             const std::vector<double> &DtHist,
                             BreakdownResolution Resolution) const {
    BreakdownReport R;
    R.Step = SnapSteps;
    R.Time = SnapTime;
    R.DtHistory = DtHist;
    R.BadCells = Scan.BadCells;
    R.OffendingCells = Scan.Offenders;
    R.MinDensity = Scan.MinDensity;
    R.MinPressure = Scan.MinPressure;
    R.Resolution = Resolution;
    return R;
  }

  struct Fault {
    unsigned AfterStep;
    std::vector<size_t> Cells;
    bool Persistent;
    bool Armed;
  };

  EulerSolver<Dim> &S;
  GuardConfig Cfg;

  /// Rollback snapshot of the last verified healthy field, leased from
  /// the solver's pool.
  FieldPool::Lease<Cons<Dim>> Snap;
  double SnapTime = 0.0;
  unsigned SnapSteps = 0;

  /// Multiplies the CFL dt; halves per failed attempt, recovers (doubles,
  /// capped at 1) per healthy window.
  double Scale = 1.0;
  bool Failed = false;

  size_t Windows = 0;
  unsigned TotalRetries = 0;
  unsigned TotalFloorEvents = 0;
  size_t TotalFlooredCells = 0;
  HealthScan LastScan;
  std::vector<BreakdownReport> Reports;
  std::vector<Fault> Faults;

  std::string EmergencyPath;
  CheckpointWriter EmergencyWriter;
};

} // namespace sacfd

#endif // SACFD_SOLVER_STEPGUARD_H
