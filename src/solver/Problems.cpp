//===- solver/Problems.cpp - Concrete workload setups ---------------------===//

#include "solver/Problems.h"

#include "euler/RankineHugoniot.h"

#include <cmath>

using namespace sacfd;

namespace {

Prim<1> prim1(double Rho, double U, double P) {
  Prim<1> W;
  W.Rho = Rho;
  W.Vel = {U};
  W.P = P;
  return W;
}

Prim<2> prim2(double Rho, double U, double V, double P) {
  Prim<2> W;
  W.Rho = Rho;
  W.Vel = {U, V};
  W.P = P;
  return W;
}

/// 1D problem on [Lo, Hi] with transmissive ends.
Problem<1> tube(std::string Name, size_t Cells, unsigned Ghost, double Lo,
                double Hi, double EndTime) {
  Problem<1> P;
  P.Name = std::move(Name);
  P.Domain = Grid<1>({Cells}, {Lo}, {Hi}, Ghost);
  P.Boundary = BoundarySpec<1>::uniform(BcKind::Transmissive);
  P.EndTime = EndTime;
  return P;
}

} // namespace

Problem<1> sacfd::sodProblem(size_t Cells, unsigned GhostLayers) {
  Problem<1> P = tube("sod", Cells, GhostLayers, 0.0, 1.0, 0.2);
  P.InitialState = [](const std::array<double, 1> &X) {
    return X[0] < 0.5 ? prim1(1.0, 0.0, 1.0) : prim1(0.125, 0.0, 0.1);
  };
  return P;
}

Problem<1> sacfd::laxProblem(size_t Cells, unsigned GhostLayers) {
  Problem<1> P = tube("lax", Cells, GhostLayers, 0.0, 1.0, 0.13);
  P.InitialState = [](const std::array<double, 1> &X) {
    return X[0] < 0.5 ? prim1(0.445, 0.698, 3.528)
                      : prim1(0.5, 0.0, 0.571);
  };
  return P;
}

Problem<1> sacfd::shuOsherProblem(size_t Cells, unsigned GhostLayers) {
  Problem<1> P = tube("shu-osher", Cells, GhostLayers, -5.0, 5.0, 1.8);
  P.InitialState = [](const std::array<double, 1> &X) {
    if (X[0] < -4.0)
      return prim1(3.857143, 2.629369, 10.33333);
    return prim1(1.0 + 0.2 * std::sin(5.0 * X[0]), 0.0, 1.0);
  };
  return P;
}

Problem<1> sacfd::blastWavesProblem(size_t Cells, unsigned GhostLayers) {
  Problem<1> P = tube("blast-waves", Cells, GhostLayers, 0.0, 1.0, 0.038);
  P.Boundary = BoundarySpec<1>::uniform(BcKind::Reflective);
  P.InitialState = [](const std::array<double, 1> &X) {
    if (X[0] < 0.1)
      return prim1(1.0, 0.0, 1000.0);
    if (X[0] > 0.9)
      return prim1(1.0, 0.0, 100.0);
    return prim1(1.0, 0.0, 0.01);
  };
  return P;
}

Problem<1> sacfd::movingContactProblem(size_t Cells, unsigned GhostLayers) {
  Problem<1> P = tube("moving-contact", Cells, GhostLayers, 0.0, 1.0, 0.2);
  P.InitialState = [](const std::array<double, 1> &X) {
    return X[0] < 0.4 ? prim1(2.0, 1.0, 1.0) : prim1(1.0, 1.0, 1.0);
  };
  return P;
}

Problem<1> sacfd::uniformFlow1D(size_t Cells, unsigned GhostLayers) {
  Problem<1> P = tube("uniform-1d", Cells, GhostLayers, 0.0, 1.0, 1.0);
  P.InitialState = [](const std::array<double, 1> &) {
    return prim1(1.0, 0.5, 1.0);
  };
  return P;
}

Problem<2> sacfd::shockInteraction2D(size_t Cells, double Ms,
                                     double ChannelWidth,
                                     unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "shock-interaction-2d";
  double H = ChannelWidth;
  P.Domain = Grid<2>::square(Cells, 2.0 * H, GhostLayers);

  // Quiescent gas fills the domain at t = 0.
  Prim<2> Quiescent = prim2(1.0, 0.0, 0.0, 1.0);
  P.InitialState = [Quiescent](const std::array<double, 2> &) {
    return Quiescent;
  };

  // Axis convention: storage axis 0 is x (the left/right sides), axis 1
  // is y (the bottom/top sides).  Tangential coordinate of the left side
  // is y; of the bottom side is x.
  const Gas &G = P.G;
  Cons<2> FromLeft = toCons(postShockInflow(Ms, Quiescent, 0, G), G);
  Cons<2> FromBottom = toCons(postShockInflow(Ms, Quiescent, 1, G), G);

  // Left boundary: channel exit on y in [0, h), solid wall above.
  BcSegment<2> LeftExit;
  LeftExit.Kind = BcKind::Inflow;
  LeftExit.InflowState = FromLeft;
  LeftExit.TangentialLo = 0.0;
  LeftExit.TangentialHi = H;
  BcSegment<2> LeftWall;
  LeftWall.Kind = BcKind::Reflective;
  LeftWall.TangentialLo = H;
  LeftWall.TangentialHi = std::numeric_limits<double>::infinity();
  P.Boundary.Side[boundarySide(0, false)] = {LeftExit, LeftWall};

  // Bottom boundary: channel exit on x in [0, h), solid wall right of it.
  BcSegment<2> BottomExit;
  BottomExit.Kind = BcKind::Inflow;
  BottomExit.InflowState = FromBottom;
  BottomExit.TangentialLo = 0.0;
  BottomExit.TangentialHi = H;
  BcSegment<2> BottomWall;
  BottomWall.Kind = BcKind::Reflective;
  BottomWall.TangentialLo = H;
  BottomWall.TangentialHi = std::numeric_limits<double>::infinity();
  P.Boundary.Side[boundarySide(1, false)] = {BottomExit, BottomWall};

  // Open right and top boundaries (waves leave the domain).
  BcSegment<2> Open;
  Open.Kind = BcKind::Transmissive;
  P.Boundary.setSide(boundarySide(0, true), Open);
  P.Boundary.setSide(boundarySide(1, true), Open);

  // Time for the primary shocks to cross ~half the domain.
  double ShockSpeed = Ms * P.G.soundSpeed(Quiescent.Rho, Quiescent.P);
  P.EndTime = H / ShockSpeed;
  return P;
}

Problem<2> sacfd::riemann2D(size_t CellsPerAxis, unsigned GhostLayers,
                            unsigned Configuration) {
  Problem<2> P;
  P.Name = "riemann-2d-c" + std::to_string(Configuration);
  P.Domain = Grid<2>::square(CellsPerAxis, 1.0, GhostLayers);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Transmissive);

  // Quadrant states ordered NE, NW, SW, SE (Lax-Liu numbering).
  struct Quadrants {
    Prim<2> NE, NW, SW, SE;
    double EndTime;
  };
  Quadrants Q;
  switch (Configuration) {
  case 3: // four shocks, the classic mushroom-jet case
    Q.NE = prim2(1.5, 0.0, 0.0, 1.5);
    Q.NW = prim2(0.5323, 1.206, 0.0, 0.3);
    Q.SW = prim2(0.138, 1.206, 1.206, 0.029);
    Q.SE = prim2(0.5323, 0.0, 1.206, 0.3);
    Q.EndTime = 0.3;
    break;
  case 6: // four contacts rolling into a spiral
    Q.NE = prim2(1.0, 0.75, -0.5, 1.0);
    Q.NW = prim2(2.0, 0.75, 0.5, 1.0);
    Q.SW = prim2(1.0, -0.75, 0.5, 1.0);
    Q.SE = prim2(3.0, -0.75, -0.5, 1.0);
    Q.EndTime = 0.3;
    break;
  case 12: // two shocks (N/E faces) + two contacts
    Q.NE = prim2(0.5313, 0.0, 0.0, 0.4);
    Q.NW = prim2(1.0, 0.7276, 0.0, 1.0);
    Q.SW = prim2(0.8, 0.0, 0.0, 1.0);
    Q.SE = prim2(1.0, 0.0, 0.7276, 1.0);
    Q.EndTime = 0.25;
    break;
  case 4:
  default: // four shocks, diagonal-symmetric
    Q.NE = prim2(1.1, 0.0, 0.0, 1.1);
    Q.NW = prim2(0.5065, 0.8939, 0.0, 0.35);
    Q.SW = prim2(1.1, 0.8939, 0.8939, 1.1);
    Q.SE = prim2(0.5065, 0.0, 0.8939, 0.35);
    Q.EndTime = 0.25;
    break;
  }

  P.InitialState = [Q](const std::array<double, 2> &X) {
    bool Right = X[0] >= 0.5;
    bool Top = X[1] >= 0.5;
    if (Right && Top)
      return Q.NE;
    if (!Right && Top)
      return Q.NW;
    if (!Right && !Top)
      return Q.SW;
    return Q.SE;
  };
  P.EndTime = Q.EndTime;
  return P;
}

Problem<2> sacfd::sedovBlast2D(size_t CellsPerAxis, unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "sedov";
  P.Domain = Grid<2>({CellsPerAxis, CellsPerAxis}, {-0.5, -0.5},
                     {0.5, 0.5}, GhostLayers);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Transmissive);
  // Total blast energy 1 deposited as pressure in a disc of radius 0.1:
  // p = (gamma - 1) E / (pi r0^2).  The ambient pressure is small but
  // finite so the pre-shock sound speed stays representable.
  double Gamma = P.G.Gamma;
  double R0 = 0.1;
  double PIn = (Gamma - 1.0) * 1.0 / (M_PI * R0 * R0);
  P.InitialState = [R0, PIn](const std::array<double, 2> &X) {
    double R2 = X[0] * X[0] + X[1] * X[1];
    return prim2(1.0, 0.0, 0.0, R2 < R0 * R0 ? PIn : 0.01);
  };
  P.EndTime = 0.1; // shock reaches ~80% of the half-width
  return P;
}

Problem<2> sacfd::doubleMachReflection(size_t CellsPerUnit,
                                       unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "double-mach";
  P.Domain = Grid<2>({4 * CellsPerUnit, CellsPerUnit}, {0.0, 0.0},
                     {4.0, 1.0}, GhostLayers);

  // Mach 10 shock at 60 degrees to the wall.  Pre-shock gas (1.4, 0, 0,
  // 1); the post-shock state follows from the Rankine-Hugoniot relations
  // with the velocity rotated onto the shock normal.
  const double Sqrt3 = std::sqrt(3.0);
  const double X0 = 1.0 / 6.0; // foot of the shock / start of the wall
  Prim<2> Pre = prim2(1.4, 0.0, 0.0, 1.0);
  Prim<2> Post = prim2(8.0, 8.25 * Sqrt3 / 2.0, -8.25 * 0.5, 116.5);
  const Gas &G = P.G;
  Cons<2> PreC = toCons(Pre, G);
  Cons<2> PostC = toCons(Post, G);

  // Initial shock line: x = x0 + y / sqrt(3).
  P.InitialState = [Pre, Post, X0, Sqrt3](const std::array<double, 2> &X) {
    return X[0] < X0 + X[1] / Sqrt3 ? Post : Pre;
  };

  // Left: frozen post-shock inflow.  Right: outflow.
  BcSegment<2> Left;
  Left.Kind = BcKind::Inflow;
  Left.InflowState = PostC;
  P.Boundary.setSide(boundarySide(0, false), Left);
  BcSegment<2> Right;
  Right.Kind = BcKind::Transmissive;
  P.Boundary.setSide(boundarySide(0, true), Right);

  // Bottom: post-shock inflow ahead of the wall start, reflecting wall
  // from x0 on.
  BcSegment<2> BottomPost;
  BottomPost.Kind = BcKind::Inflow;
  BottomPost.InflowState = PostC;
  BottomPost.TangentialLo = -std::numeric_limits<double>::infinity();
  BottomPost.TangentialHi = X0;
  BcSegment<2> BottomWall;
  BottomWall.Kind = BcKind::Reflective;
  BottomWall.TangentialLo = X0;
  BottomWall.TangentialHi = std::numeric_limits<double>::infinity();
  P.Boundary.Side[boundarySide(1, false)] = {BottomPost, BottomWall};

  // Top: the exact shock trace x_s(t) = x0 + (1 + 20 t) / sqrt(3) at
  // y = 1 — post-shock to its left, pre-shock to its right.  The shock
  // speed along the top is 10 c_pre / sin(60), i.e. ds/dt = 20 / sqrt(3)
  // with c_pre = sqrt(gamma p / rho) = 1.
  BcSegment<2> Top;
  Top.Kind = BcKind::Prescribed;
  Top.StateAt = [PreC, PostC, X0, Sqrt3](double Tangential, double Time) {
    double ShockX = X0 + (1.0 + 20.0 * Time) / Sqrt3;
    return Tangential < ShockX ? PostC : PreC;
  };
  P.Boundary.setSide(boundarySide(1, true), Top);

  P.EndTime = 0.2;
  return P;
}

Problem<2> sacfd::shockBubble2D(size_t CellsPerUnit, unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "shock-bubble";
  P.Domain = Grid<2>({2 * CellsPerUnit, CellsPerUnit}, {0.0, 0.0},
                     {2.0, 1.0}, GhostLayers);

  Prim<2> Quiescent = prim2(1.0, 0.0, 0.0, 1.0);
  Prim<2> Post = postShockInflow(2.0, Quiescent, 0, P.G);
  const double ShockX = 0.25;
  const double BubbleX = 0.8, BubbleY = 0.5, BubbleR = 0.2;
  const double BubbleRho = 0.1387; // helium-like density contrast

  P.InitialState = [=](const std::array<double, 2> &X) {
    if (X[0] < ShockX)
      return Post;
    double Dx = X[0] - BubbleX, Dy = X[1] - BubbleY;
    if (Dx * Dx + Dy * Dy < BubbleR * BubbleR)
      return prim2(BubbleRho, 0.0, 0.0, 1.0);
    return Quiescent;
  };

  // Left: frozen post-shock inflow.  Right: outflow.  Channel walls top
  // and bottom.
  BcSegment<2> Left;
  Left.Kind = BcKind::Inflow;
  Left.InflowState = toCons(Post, P.G);
  P.Boundary.setSide(boundarySide(0, false), Left);
  BcSegment<2> Right;
  Right.Kind = BcKind::Transmissive;
  P.Boundary.setSide(boundarySide(0, true), Right);
  BcSegment<2> Wall;
  Wall.Kind = BcKind::Reflective;
  P.Boundary.setSide(boundarySide(1, false), Wall);
  P.Boundary.setSide(boundarySide(1, true), Wall);

  P.EndTime = 0.4; // shock crosses the bubble and the wake develops
  return P;
}

double sacfd::smoothAdvectionDensity1D(double X, double T) {
  return 1.0 + 0.2 * std::sin(2.0 * M_PI * (X - T));
}

double sacfd::smoothAdvectionDensity2D(double X, double Y, double T) {
  return 1.0 + 0.2 * std::sin(2.0 * M_PI * (X - T)) *
                   std::sin(2.0 * M_PI * (Y - T));
}

Problem<1> sacfd::smoothAdvectionProblem(size_t Cells,
                                         unsigned GhostLayers) {
  Problem<1> P = tube("smooth-advection", Cells, GhostLayers, 0.0, 1.0,
                      1.0);
  P.Boundary = BoundarySpec<1>::uniform(BcKind::Periodic);
  P.InitialState = [](const std::array<double, 1> &X) {
    return prim1(smoothAdvectionDensity1D(X[0], 0.0), 1.0, 1.0);
  };
  return P;
}

Problem<2> sacfd::smoothAdvection2D(size_t CellsPerAxis,
                                    unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "smooth-advection-2d";
  P.Domain = Grid<2>::square(CellsPerAxis, 1.0, GhostLayers);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Periodic);
  P.InitialState = [](const std::array<double, 2> &X) {
    return prim2(smoothAdvectionDensity2D(X[0], X[1], 0.0), 1.0, 1.0,
                 1.0);
  };
  P.EndTime = 1.0;
  return P;
}

Problem<2> sacfd::uniformFlow2D(size_t CellsPerAxis, unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "uniform-2d";
  P.Domain = Grid<2>::square(CellsPerAxis, 1.0, GhostLayers);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Transmissive);
  P.InitialState = [](const std::array<double, 2> &) {
    return prim2(1.0, 0.3, -0.2, 1.0);
  };
  P.EndTime = 1.0;
  return P;
}

Prim<2> sacfd::isentropicVortexExact(double X, double Y, double T) {
  constexpr double Gam = 1.4;
  constexpr double Beta = 5.0;
  constexpr double L = 10.0; // box extent
  // Vortex center translates at (1, 1) from (5, 5); wrap periodically.
  double Xc = std::fmod(5.0 + T, L);
  double Yc = std::fmod(5.0 + T, L);
  // Nearest periodic image offsets.
  double Dx = X - Xc;
  double Dy = Y - Yc;
  if (Dx > 0.5 * L)
    Dx -= L;
  if (Dx < -0.5 * L)
    Dx += L;
  if (Dy > 0.5 * L)
    Dy -= L;
  if (Dy < -0.5 * L)
    Dy += L;

  double R2 = Dx * Dx + Dy * Dy;
  double Factor = Beta / (2.0 * M_PI) * std::exp(0.5 * (1.0 - R2));
  double DT = -(Gam - 1.0) * Beta * Beta /
              (8.0 * Gam * M_PI * M_PI) * std::exp(1.0 - R2);
  double Temp = 1.0 + DT;

  Prim<2> W;
  W.Rho = std::pow(Temp, 1.0 / (Gam - 1.0));
  W.Vel = {1.0 - Factor * Dy, 1.0 + Factor * Dx};
  W.P = std::pow(Temp, Gam / (Gam - 1.0));
  return W;
}

Problem<2> sacfd::isentropicVortex2D(size_t CellsPerAxis,
                                     unsigned GhostLayers) {
  Problem<2> P;
  P.Name = "isentropic-vortex";
  P.Domain = Grid<2>::square(CellsPerAxis, 10.0, GhostLayers);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Periodic);
  P.InitialState = [](const std::array<double, 2> &X) {
    return isentropicVortexExact(X[0], X[1], 0.0);
  };
  P.EndTime = 10.0; // one full periodic transit
  return P;
}

namespace {

Prim<3> prim3(double Rho, double U, double V, double W, double P) {
  Prim<3> Prim_;
  Prim_.Rho = Rho;
  Prim_.Vel = {U, V, W};
  Prim_.P = P;
  return Prim_;
}

} // namespace

Problem<3> sacfd::uniformFlow3D(size_t CellsPerAxis, unsigned GhostLayers) {
  Problem<3> P;
  P.Name = "uniform-3d";
  P.Domain = Grid<3>::square(CellsPerAxis, 1.0, GhostLayers);
  P.Boundary = BoundarySpec<3>::uniform(BcKind::Transmissive);
  P.InitialState = [](const std::array<double, 3> &) {
    return prim3(1.0, 0.3, -0.2, 0.1, 1.0);
  };
  P.EndTime = 1.0;
  return P;
}

Problem<3> sacfd::sphericalBlast3D(size_t CellsPerAxis,
                                   unsigned GhostLayers) {
  Problem<3> P;
  P.Name = "spherical-blast-3d";
  P.Domain = Grid<3>::square(CellsPerAxis, 1.0, GhostLayers);
  P.Boundary = BoundarySpec<3>::uniform(BcKind::Reflective);
  P.InitialState = [](const std::array<double, 3> &X) {
    double R2 = 0.0;
    for (unsigned A = 0; A < 3; ++A)
      R2 += (X[A] - 0.5) * (X[A] - 0.5);
    return prim3(1.0, 0.0, 0.0, 0.0, R2 < 0.01 ? 10.0 : 1.0);
  };
  P.EndTime = 0.2;
  return P;
}

Problem<3> sacfd::sodExtruded3D(size_t Cells, size_t TransverseCells,
                                unsigned GhostLayers) {
  Problem<3> P;
  P.Name = "sod-extruded-3d";
  double TransverseExtent =
      static_cast<double>(TransverseCells) / static_cast<double>(Cells);
  P.Domain = Grid<3>({Cells, TransverseCells, TransverseCells},
                     {0.0, 0.0, 0.0},
                     {1.0, TransverseExtent, TransverseExtent},
                     GhostLayers);
  P.Boundary = BoundarySpec<3>::uniform(BcKind::Transmissive);
  P.InitialState = [](const std::array<double, 3> &X) {
    return X[0] < 0.5 ? prim3(1.0, 0.0, 0.0, 0.0, 1.0)
                      : prim3(0.125, 0.0, 0.0, 0.0, 0.1);
  };
  P.EndTime = 0.2;
  return P;
}
