//===- solver/ArraySolver.h - SaC-style data-parallel engine ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SaC port: the solver expressed as whole-array definitions.
///
/// Every numerical stage is a with-loop (withLoop / mapIndex / maxval)
/// over an index space, exactly mirroring the SaC listing in the paper:
/// getDt() is the paper's getDt (set notation + maxval reduction), the
/// face sweep is a genarray with-loop over the face index space, and the
/// Runge-Kutta combine is one fused modarray.  The code is rank-generic:
/// this single class instantiates the 1D Sod tube and the 2D interaction
/// ("our code makes use of this fact to reuse function bodies for a one
/// dimensional and two dimensional shockwave simulation").
///
/// Two evaluation modes model the SaC compiler's optimization level:
///   Fused        with-loops compose whole pipelines per pass (sac2c
///                after with-loop folding — the paper's "collating many
///                small operations into fewer larger operations")
///   Materialized every intermediate array is allocated and filled (the
///                naive lowering; ablation A1 measures the gap)
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_ARRAYSOLVER_H
#define SACFD_SOLVER_ARRAYSOLVER_H

#include "array/Reductions.h"
#include "array/WithLoop.h"
#include "solver/EulerSolver.h"

#include <algorithm>
#include <array>

namespace sacfd {

/// How aggressively the array pipeline is fused (models sac2c optimization).
enum class ArrayEvalMode {
  Fused,
  Materialized,
};

/// The SaC-style engine: whole-array with-loop formulation.
template <unsigned Dim> class ArraySolver final : public EulerSolver<Dim> {
public:
  ArraySolver(Problem<Dim> Prob, SchemeConfig Scheme, Backend &Exec,
              ArrayEvalMode Mode = ArrayEvalMode::Fused)
      : EulerSolver<Dim>(std::move(Prob), Scheme, Exec), Mode(Mode) {}

  const char *engineName() const override { return "array"; }
  ArrayEvalMode evalMode() const { return Mode; }

  /// The paper's getDt:
  ///   c  = sqrt(GAM * p(qp) / rho(qp));
  ///   d  = fabs(u(qp));
  ///   ev = { iv -> sum((d[iv] + c[iv]) / DELTA) };
  ///   return CFL / maxval(ev);
  double computeDt() override {
    static const unsigned SpanGetDt = telemetry::spanId("solver.get_dt");
    telemetry::ScopedSpan Span(SpanGetDt);
    const Grid<Dim> &G = this->Prob.Domain;
    const Gas &Gas_ = this->Prob.G;
    Shape Interior = G.interiorShape();

    std::array<double, Dim> InvDx;
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);

    auto EvAt = [this, &G, &Gas_, &InvDx](const Index &Iv) {
      Prim<Dim> W = toPrim(this->U.at(G.toStorage(Iv)), Gas_);
      double Ev = 0.0;
      for (unsigned A = 0; A < Dim; ++A)
        Ev += maxWaveSpeed(W, Gas_, A) * InvDx[A];
      return Ev;
    };

    if (Mode == ArrayEvalMode::Fused)
      // One fused pass: the set-notation expression feeds maxval directly.
      return this->dtFromMaxEigen(
          maxval(mapIndex(Interior, EvAt), this->Exec));

    // Materialized: ev is an explicit temporary array, like unoptimized
    // SaC would allocate for the set notation before reducing it.  The
    // buffer is leased (every element is written, so uninit is safe).
    FieldPool::Lease<double> Ev = this->Pool.template acquireUninit<double>(Interior);
    withLoopInto(*Ev, this->Exec, EvAt);
    return this->dtFromMaxEigen(maxval(*Ev, this->Exec));
  }

protected:
  void stepWithDt(double Dt) override {
    static const unsigned SpanSnapshot = telemetry::spanId("solver.snapshot");
    static const unsigned SpanBoundary = telemetry::spanId("solver.boundary");
    static const unsigned SpanFlux = telemetry::spanId("solver.flux");
    static const unsigned SpanUpdate = telemetry::spanId("solver.update");
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Interior = G.interiorShape();

    // Q^n snapshot for the convex Runge-Kutta combinations.  Leased
    // uninitialized: the copy overwrites every element.
    FieldPool::Lease<Cons<Dim>> UnL =
        this->Pool.template acquireUninit<Cons<Dim>>(this->U.shape());
    NDArray<Cons<Dim>> &Un = *UnL;
    {
      telemetry::ScopedSpan S(SpanSnapshot);
      std::copy(this->U.begin(), this->U.end(), Un.begin());
    }

    for (const SspStage &Stage : sspStages(this->Scheme.Integrator)) {
      {
        telemetry::ScopedSpan S(SpanBoundary);
        applyBoundaries(this->U, G, this->Prob.Boundary, this->Exec,
                        this->Time);
      }
      FieldPool::Lease<Cons<Dim>> ResL;
      {
        // Reconstruction + Riemann fluxes + divergence, fused per the
        // evaluation mode.
        telemetry::ScopedSpan S(SpanFlux);
        ResL = residual();
      }
      const NDArray<Cons<Dim>> &Res = *ResL;

      // Fused modarray combine:
      //   U = A * Un + B * (U + dt * Res)   on the interior.
      double A = Stage.PrevWeight, B = Stage.StageWeight;
      telemetry::ScopedSpan UpdateSpan(SpanUpdate);
      forEachIndex(Interior, this->Exec,
                   [&](const Index &Iv, size_t Linear) {
                     Index S = G.toStorage(Iv);
                     this->U.at(S) = Un.at(S) * A +
                                     (this->U.at(S) + Res[Linear] * Dt) * B;
                   });
    }
  }

private:
  /// Numerical flux array over the face index space of \p Axis
  /// (interior shape extended by one along the axis).  The result is a
  /// pooled lease; each axis has a distinct face shape, so the per-axis
  /// buffers recycle independently.
  FieldPool::Lease<Cons<Dim>> fluxAlong(unsigned Axis) {
    const Grid<Dim> &G = this->Prob.Domain;
    const Gas &Gas_ = this->Prob.G;
    const SchemeConfig &SC = this->Scheme;
    std::ptrdiff_t Ng = G.ghost();
    std::ptrdiff_t StorageMax =
        static_cast<std::ptrdiff_t>(this->U.shape().dim(Axis)) - 1;

    Shape Faces = G.interiorShape();
    Faces.dim(Axis) += 1;

    FieldPool::Lease<Cons<Dim>> Out =
        this->Pool.template acquireUninit<Cons<Dim>>(Faces);
    // genarray with-loop over faces: gather the 6-cell stencil along the
    // axis, reconstruct, solve the face Riemann problem.
    withLoopInto(*Out, this->Exec, [&, Ng, StorageMax,
                                    Axis](const Index &Fv) {
      std::array<Cons<Dim>, 6> Stencil;
      for (unsigned K = 0; K < 6; ++K) {
        Index C = Fv;
        for (unsigned A = 0; A < Dim; ++A)
          C.Coord[A] += Ng;
        // Window cell K sits at interior offset f - 3 + K along the axis;
        // clamp the unused outermost cells into storage.
        C.Coord[Axis] += static_cast<std::ptrdiff_t>(K) - 3;
        C.Coord[Axis] = std::clamp<std::ptrdiff_t>(C.Coord[Axis], 0,
                                                   StorageMax);
        Stencil[K] = this->U.at(C);
      }
      FaceStates<Dim> FS = reconstructFaceStates(SC.Recon, SC.Limiter,
                                                 SC.Vars, Stencil, Gas_,
                                                 Axis);
      return numericalFlux(SC.Riemann, FS.L, FS.R, Gas_, Axis);
    });
    return Out;
  }

  /// Residual L(U) = -sum_axis dF_axis/dx_axis over the interior,
  /// returned as a pooled lease.
  FieldPool::Lease<Cons<Dim>> residual() {
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Interior = G.interiorShape();

    std::array<FieldPool::Lease<Cons<Dim>>, Dim> Flux;
    for (unsigned A = 0; A < Dim; ++A)
      Flux[A] = fluxAlong(A);

    std::array<double, Dim> InvDx;
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);

    if (Mode == ArrayEvalMode::Fused) {
      // One fused pass: the per-axis dfDx differences are consumed as
      // they are formed (the paper's dfDxNoBoundary, folded into its
      // consumer by the compiler).
      FieldPool::Lease<Cons<Dim>> Out =
          this->Pool.template acquireUninit<Cons<Dim>>(Interior);
      withLoopInto(*Out, this->Exec, [&](const Index &Iv) {
        Cons<Dim> Acc;
        for (unsigned A = 0; A < Dim; ++A) {
          Index HiFace = Iv;
          HiFace.Coord[A] += 1;
          Acc -= (Flux[A]->at(HiFace) - Flux[A]->at(Iv)) * InvDx[A];
        }
        return Acc;
      });
      return Out;
    }

    // Materialized: each dfDx is an explicit temporary, then summed —
    // the unfused whole-array formulation
    //   res = -dfDx(flux0)/dx0 - dfDx(flux1)/dx1.
    // The temporaries stay explicit (that is what the A1 ablation
    // measures); pooling only recycles their storage.  Res needs the
    // value-initialized acquire: it is read before the first axis sum.
    FieldPool::Lease<Cons<Dim>> Res =
        this->Pool.template acquire<Cons<Dim>>(Interior);
    for (unsigned A = 0; A < Dim; ++A) {
      Index DropSpec;
      DropSpec.Rank = Dim;
      for (unsigned B = 0; B < Dim; ++B)
        DropSpec.Coord[B] = 0;
      DropSpec.Coord[A] = 1;
      Index DropBack = DropSpec;
      DropBack.Coord[A] = -1;
      // dfDxNoBoundary(flux, dx) = (drop([1],f) - drop([-1],f)) / dx
      // (multiplied by the reciprocal so both engines and both eval
      // modes produce bit-identical fields).
      FieldPool::Lease<Cons<Dim>> DfDx =
          this->Pool.template acquireUninit<Cons<Dim>>(Interior);
      assignInto(*DfDx,
                 (drop(DropSpec, *Flux[A]) - drop(DropBack, *Flux[A])) *
                     InvDx[A],
                 this->Exec);
      FieldPool::Lease<Cons<Dim>> Sum =
          this->Pool.template acquireUninit<Cons<Dim>>(Interior);
      assignInto(*Sum, toExpr(*Res) - toExpr(*DfDx), this->Exec);
      Res = std::move(Sum);
    }
    return Res;
  }

  ArrayEvalMode Mode;
};

} // namespace sacfd

#endif // SACFD_SOLVER_ARRAYSOLVER_H
