//===- solver/ArraySolver.h - SaC-style data-parallel engine ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SaC port: the solver expressed as whole-array definitions.
///
/// Every numerical stage is a whole-array operation over an index space,
/// exactly mirroring the SaC listing in the paper: getDt() is the paper's
/// getDt (set notation + maxval reduction), the face sweep is a genarray
/// with-loop over the face index space, and the Runge-Kutta combine is
/// one fused modarray.  The code is rank-generic: this single class
/// instantiates the 1D Sod tube and the 2D interaction ("our code makes
/// use of this fact to reuse function bodies for a one dimensional and
/// two dimensional shockwave simulation").
///
/// Two evaluation modes model the SaC compiler's optimization level:
///   Fused        with-loops compose whole pipelines per pass (sac2c
///                after with-loop folding — the paper's "collating many
///                small operations into fewer larger operations").  The
///                per-stage arithmetic runs through the shared kernels::
///                layer, so contiguous runs take the vectorized build —
///                this mode models the optimized compiler output.
///   Materialized every intermediate array is allocated and filled (the
///                naive lowering; ablation A1 measures the gap)
///
/// Both modes produce bit-identical fields: the kernels mirror the
/// reference expressions term for term (see kernels/KernelsTU.inc).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_ARRAYSOLVER_H
#define SACFD_SOLVER_ARRAYSOLVER_H

#include "array/Reductions.h"
#include "array/WithLoop.h"
#include "runtime/BlockReduce.h"
#include "solver/EulerSolver.h"

#include <algorithm>
#include <array>

namespace sacfd {

/// How aggressively the array pipeline is fused (models sac2c optimization).
enum class ArrayEvalMode {
  Fused,
  Materialized,
};

/// The SaC-style engine: whole-array with-loop formulation.
template <unsigned Dim> class ArraySolver final : public EulerSolver<Dim> {
public:
  ArraySolver(Problem<Dim> Prob, SchemeConfig Scheme, Backend &Exec,
              ArrayEvalMode Mode = ArrayEvalMode::Fused,
              Layout FieldLayout = Layout::AoS, bool Simd = true)
      : EulerSolver<Dim>(std::move(Prob), Scheme, Exec, FieldLayout, Simd),
        Mode(Mode) {}

  const char *engineName() const override { return "array"; }
  ArrayEvalMode evalMode() const { return Mode; }

  /// The paper's getDt:
  ///   c  = sqrt(GAM * p(qp) / rho(qp));
  ///   d  = fabs(u(qp));
  ///   ev = { iv -> sum((d[iv] + c[iv]) / DELTA) };
  ///   return CFL / maxval(ev);
  double computeDt() override {
    static const unsigned SpanGetDt = telemetry::spanId("solver.get_dt");
    telemetry::ScopedSpan Span(SpanGetDt);
    const Grid<Dim> &G = this->Prob.Domain;
    const Gas &Gas_ = this->Prob.G;

    std::array<double, Dim> InvDx;
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);

    if (Mode == ArrayEvalMode::Fused) {
      // One fused pass: the set-notation expression feeds the max
      // reduction directly, evaluated line by line through the shared
      // maxEigen kernel.  The max chain is exact under any grouping, so
      // the result is bit-identical to the per-cell formulation at every
      // worker count.
      constexpr unsigned LineAxis = Dim - 1;
      double EvMax = blockReduce2D(
          this->lineCount(LineAxis), this->N[LineAxis], this->Exec, 0.0,
          [&](size_t LineBegin, size_t LineEnd, size_t CellBegin,
              size_t CellEnd) {
            double Acc = 0.0;
            for (size_t Line = LineBegin; Line != LineEnd; ++Line)
              Acc = kernels::maxEigen<Dim>(
                  this->U.crun(this->lineStorageBase(LineAxis, Line) +
                               CellBegin),
                  Gas_, InvDx.data(), Acc, CellEnd - CellBegin,
                  this->SimdEnabled);
            return Acc;
          },
          [](double A, double B) { return std::max(A, B); });
      return this->dtFromMaxEigen(EvMax);
    }

    // Materialized: ev is an explicit temporary array, like unoptimized
    // SaC would allocate for the set notation before reducing it.  The
    // buffer is leased (every element is written, so uninit is safe).
    Shape Interior = G.interiorShape();
    auto EvAt = [this, &G, &Gas_, &InvDx](const Index &Iv) {
      Prim<Dim> W = toPrim(this->U.at(G.toStorage(Iv)), Gas_);
      double Ev = 0.0;
      for (unsigned A = 0; A < Dim; ++A)
        Ev += maxWaveSpeed(W, Gas_, A) * InvDx[A];
      return Ev;
    };
    FieldPool::Lease<double> Ev =
        this->Pool.template acquireUninit<double>(Interior);
    withLoopInto(*Ev, this->Exec, EvAt);
    return this->dtFromMaxEigen(maxval(*Ev, this->Exec));
  }

protected:
  void stepWithDt(double Dt) override {
    if (Mode == ArrayEvalMode::Fused)
      stepFused(Dt);
    else
      stepMaterialized(Dt);
  }

private:
  //===--------------------------------------------------------------------===//
  // Fused mode: every stage routed through the kernels:: layer.
  //===--------------------------------------------------------------------===//

  void stepFused(double Dt) {
    static const unsigned SpanSnapshot = telemetry::spanId("solver.snapshot");
    static const unsigned SpanBoundary = telemetry::spanId("solver.boundary");
    static const unsigned SpanFlux = telemetry::spanId("solver.flux");
    static const unsigned SpanUpdate = telemetry::spanId("solver.update");
    constexpr unsigned LineAxis = Dim - 1;

    // Q^n snapshot for the convex Runge-Kutta combinations.  Leased
    // uninitialized: the copy overwrites every element.
    Field<Dim> Un(this->Pool, this->U.shape(), this->U.layout(),
                  FieldInit::Uninit);
    {
      telemetry::ScopedSpan S(SpanSnapshot);
      kernels::copyState<Dim>(this->U.crun(), Un.run(), this->U.size(),
                              this->SimdEnabled);
    }

    for (const SspStage &Stage : sspStages(this->Scheme.Integrator)) {
      {
        telemetry::ScopedSpan S(SpanBoundary);
        this->fillGhosts(this->Time);
      }
      Field<Dim> Res;
      {
        // Reconstruction + Riemann fluxes + divergence.
        telemetry::ScopedSpan S(SpanFlux);
        Res = residualFused();
      }

      // Fused modarray combine:
      //   U = A * Un + B * (U + dt * Res)   on the interior,
      // one line run of the SSP kernel per interior row.
      double A = Stage.PrevWeight, B = Stage.StageWeight;
      telemetry::ScopedSpan UpdateSpan(SpanUpdate);
      this->Exec.parallelFor2D(
          this->lineCount(LineAxis), this->N[LineAxis],
          [&](size_t LB, size_t LE, size_t CB, size_t CE) {
            for (size_t Line = LB; Line != LE; ++Line) {
              size_t SBase = this->lineStorageBase(LineAxis, Line) + CB;
              size_t RBase = Line * this->N[LineAxis] + CB;
              kernels::sspUpdate<Dim>(this->U.run(SBase), Un.crun(SBase),
                                      Res.crun(RBase), A, B, Dt, CE - CB,
                                      this->SimdEnabled);
            }
          });
    }
  }

  /// Numerical flux field over the face index space of \p Axis (interior
  /// shape extended by one along the axis).  Piecewise-constant
  /// reconstruction takes the kernel path — whole face rows through
  /// kernels::fluxFaces, vectorized on unit-stride runs; every other
  /// scheme gathers the 6-cell stencil per face, exactly the genarray
  /// with-loop of the paper.
  Field<Dim> fluxAlongFused(unsigned Axis) {
    const Gas &Gas_ = this->Prob.G;
    const SchemeConfig &SC = this->Scheme;
    const Grid<Dim> &G = this->Prob.Domain;
    constexpr unsigned LineAxis = Dim - 1;

    Shape Faces = G.interiorShape();
    Faces.dim(Axis) += 1;
    Field<Dim> Out(this->Pool, Faces, this->U.layout(), FieldInit::Uninit);

    if (kernels::fluxKernelEligible(SC.Recon)) {
      size_t RowLen = Faces.dim(LineAxis);
      size_t Rows = Faces.count() / RowLen;
      // Leading face coordinates (all axes but the last); for face row R
      // the L cells sit one axis stride below the R cells in storage.
      Shape Lead = Shape::uniform(Dim == 1 ? 1 : Dim - 1, 1);
      for (unsigned A = 0; A + 1 < Dim; ++A)
        Lead.dim(A) = Faces.dim(A);
      size_t AxisStride = this->StorageStride[Axis];
      this->Exec.parallelFor(0, Rows, [&](size_t RB, size_t RE) {
        for (size_t R = RB; R != RE; ++R) {
          Index L = Lead.delinearize(R);
          // Storage offset of the row's first R-side cell: interior
          // coordinates shifted by the ghost margin; along the sweep
          // axis face f's R cell is interior cell f.
          size_t SBase = this->Ng; // last-axis start
          for (unsigned A = 0; A + 1 < Dim; ++A)
            SBase += (static_cast<size_t>(L.Coord[A]) + this->Ng) *
                     this->StorageStride[A];
          kernels::fluxFaces<Dim>(this->U.crun(SBase - AxisStride),
                                  this->U.crun(SBase), Out.run(R * RowLen),
                                  Gas_, Axis, SC.Riemann, RowLen,
                                  this->SimdEnabled);
        }
      });
      return Out;
    }

    std::ptrdiff_t Ng = G.ghost();
    std::ptrdiff_t StorageMax =
        static_cast<std::ptrdiff_t>(this->U.shape().dim(Axis)) - 1;
    // genarray with-loop over faces: gather the 6-cell stencil along the
    // axis, reconstruct, solve the face Riemann problem.
    forEachIndex(Faces, this->Exec, [&, Ng, StorageMax,
                                     Axis](const Index &Fv, size_t Linear) {
      std::array<Cons<Dim>, 6> Stencil;
      for (unsigned K = 0; K < 6; ++K) {
        Index C = Fv;
        for (unsigned A = 0; A < Dim; ++A)
          C.Coord[A] += Ng;
        // Window cell K sits at interior offset f - 3 + K along the axis;
        // clamp the unused outermost cells into storage.
        C.Coord[Axis] += static_cast<std::ptrdiff_t>(K) - 3;
        C.Coord[Axis] =
            std::clamp<std::ptrdiff_t>(C.Coord[Axis], 0, StorageMax);
        Stencil[K] = this->U.at(C);
      }
      FaceStates<Dim> FS = reconstructFaceStates(SC.Recon, SC.Limiter,
                                                 SC.Vars, Stencil, Gas_,
                                                 Axis);
      Out.store(Linear, numericalFlux(SC.Riemann, FS.L, FS.R, Gas_, Axis));
    });
    return Out;
  }

  /// Residual L(U) = -sum_axis dF_axis/dx_axis over the interior.  One
  /// pass per interior row: zero, then the axis-ordered divergence
  /// accumulations — the same per-cell sequence as the fused with-loop
  /// combine, so fields stay bit-identical to the historical formulation.
  Field<Dim> residualFused() {
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Interior = G.interiorShape();
    constexpr unsigned LineAxis = Dim - 1;

    std::array<Field<Dim>, Dim> Flux;
    for (unsigned A = 0; A < Dim; ++A)
      Flux[A] = fluxAlongFused(A);

    std::array<double, Dim> InvDx;
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);

    // Per-axis face geometry: the linear offset of a row's low face and
    // the stride to its high face, in the face field of that axis.
    std::array<Shape, Dim> FaceShape;
    std::array<size_t, Dim> HiStride;
    for (unsigned A = 0; A < Dim; ++A) {
      FaceShape[A] = Interior;
      FaceShape[A].dim(A) += 1;
      size_t Stride = 1;
      for (unsigned B = Dim; B-- > A + 1;)
        Stride *= FaceShape[A].dim(B);
      HiStride[A] = Stride;
    }

    size_t RowLen = Interior.dim(LineAxis);
    size_t Rows = Interior.count() / RowLen;
    Shape Lead = Shape::uniform(Dim == 1 ? 1 : Dim - 1, 1);
    for (unsigned A = 0; A + 1 < Dim; ++A)
      Lead.dim(A) = Interior.dim(A);

    Field<Dim> Res(this->Pool, Interior, this->U.layout(),
                   FieldInit::Uninit);
    this->Exec.parallelFor(0, Rows, [&](size_t RB, size_t RE) {
      for (size_t R = RB; R != RE; ++R) {
        Index L = Lead.delinearize(R);
        kernels::Run<Dim> ResRun = Res.run(R * RowLen);
        kernels::zeroState<Dim>(ResRun, RowLen, this->SimdEnabled);
        for (unsigned A = 0; A < Dim; ++A) {
          Index F;
          F.Rank = Dim;
          for (unsigned B = 0; B + 1 < Dim; ++B)
            F.Coord[B] = L.Coord[B];
          F.Coord[Dim - 1] = 0;
          size_t Lo = FaceShape[A].linearize(F);
          kernels::accumDivergence<Dim>(
              ResRun, Flux[A].crun(Lo), Flux[A].crun(Lo + HiStride[A]),
              InvDx[A], RowLen, this->SimdEnabled);
        }
      }
    });
    return Res;
  }

  //===--------------------------------------------------------------------===//
  // Materialized mode: every intermediate array explicit (ablation A1).
  //===--------------------------------------------------------------------===//

  void stepMaterialized(double Dt) {
    static const unsigned SpanSnapshot = telemetry::spanId("solver.snapshot");
    static const unsigned SpanBoundary = telemetry::spanId("solver.boundary");
    static const unsigned SpanFlux = telemetry::spanId("solver.flux");
    static const unsigned SpanUpdate = telemetry::spanId("solver.update");
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Interior = G.interiorShape();

    // Q^n snapshot, staged through the AoS interchange copy.
    FieldPool::Lease<Cons<Dim>> UnL =
        this->Pool.template acquireUninit<Cons<Dim>>(this->U.shape());
    NDArray<Cons<Dim>> &Un = *UnL;
    {
      telemetry::ScopedSpan S(SpanSnapshot);
      this->U.exportTo(Un.data());
    }

    for (const SspStage &Stage : sspStages(this->Scheme.Integrator)) {
      {
        telemetry::ScopedSpan S(SpanBoundary);
        this->fillGhosts(this->Time);
      }
      FieldPool::Lease<Cons<Dim>> ResL;
      {
        telemetry::ScopedSpan S(SpanFlux);
        ResL = residualMaterialized();
      }
      const NDArray<Cons<Dim>> &Res = *ResL;

      // Unfused modarray combine:
      //   U = A * Un + B * (U + dt * Res)   on the interior.
      double A = Stage.PrevWeight, B = Stage.StageWeight;
      telemetry::ScopedSpan UpdateSpan(SpanUpdate);
      forEachIndex(Interior, this->Exec,
                   [&](const Index &Iv, size_t Linear) {
                     Index S = G.toStorage(Iv);
                     this->U.set(S, Un.at(S) * A +
                                        (this->U.at(S) + Res[Linear] * Dt) *
                                            B);
                   });
    }
  }

  /// Materialized flux array along \p Axis: the stencil-gather with-loop
  /// writing an explicit NDArray temporary.
  FieldPool::Lease<Cons<Dim>> fluxAlongMaterialized(unsigned Axis) {
    const Grid<Dim> &G = this->Prob.Domain;
    const Gas &Gas_ = this->Prob.G;
    const SchemeConfig &SC = this->Scheme;
    std::ptrdiff_t Ng = G.ghost();
    std::ptrdiff_t StorageMax =
        static_cast<std::ptrdiff_t>(this->U.shape().dim(Axis)) - 1;

    Shape Faces = G.interiorShape();
    Faces.dim(Axis) += 1;

    FieldPool::Lease<Cons<Dim>> Out =
        this->Pool.template acquireUninit<Cons<Dim>>(Faces);
    withLoopInto(*Out, this->Exec, [&, Ng, StorageMax,
                                    Axis](const Index &Fv) {
      std::array<Cons<Dim>, 6> Stencil;
      for (unsigned K = 0; K < 6; ++K) {
        Index C = Fv;
        for (unsigned A = 0; A < Dim; ++A)
          C.Coord[A] += Ng;
        C.Coord[Axis] += static_cast<std::ptrdiff_t>(K) - 3;
        C.Coord[Axis] =
            std::clamp<std::ptrdiff_t>(C.Coord[Axis], 0, StorageMax);
        Stencil[K] = this->U.at(C);
      }
      FaceStates<Dim> FS = reconstructFaceStates(SC.Recon, SC.Limiter,
                                                 SC.Vars, Stencil, Gas_,
                                                 Axis);
      return numericalFlux(SC.Riemann, FS.L, FS.R, Gas_, Axis);
    });
    return Out;
  }

  /// Materialized residual: each dfDx is an explicit temporary, then
  /// summed — the unfused whole-array formulation
  ///   res = -dfDx(flux0)/dx0 - dfDx(flux1)/dx1.
  /// The temporaries stay explicit (that is what the A1 ablation
  /// measures); pooling only recycles their storage.  Res needs the
  /// value-initialized acquire: it is read before the first axis sum.
  FieldPool::Lease<Cons<Dim>> residualMaterialized() {
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Interior = G.interiorShape();

    std::array<FieldPool::Lease<Cons<Dim>>, Dim> Flux;
    for (unsigned A = 0; A < Dim; ++A)
      Flux[A] = fluxAlongMaterialized(A);

    std::array<double, Dim> InvDx;
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);

    FieldPool::Lease<Cons<Dim>> Res =
        this->Pool.template acquire<Cons<Dim>>(Interior);
    for (unsigned A = 0; A < Dim; ++A) {
      Index DropSpec;
      DropSpec.Rank = Dim;
      for (unsigned B = 0; B < Dim; ++B)
        DropSpec.Coord[B] = 0;
      DropSpec.Coord[A] = 1;
      Index DropBack = DropSpec;
      DropBack.Coord[A] = -1;
      // dfDxNoBoundary(flux, dx) = (drop([1],f) - drop([-1],f)) / dx
      // (multiplied by the reciprocal so both engines and both eval
      // modes produce bit-identical fields).
      FieldPool::Lease<Cons<Dim>> DfDx =
          this->Pool.template acquireUninit<Cons<Dim>>(Interior);
      assignInto(*DfDx,
                 (drop(DropSpec, *Flux[A]) - drop(DropBack, *Flux[A])) *
                     InvDx[A],
                 this->Exec);
      FieldPool::Lease<Cons<Dim>> Sum =
          this->Pool.template acquireUninit<Cons<Dim>>(Interior);
      assignInto(*Sum, toExpr(*Res) - toExpr(*DfDx), this->Exec);
      Res = std::move(Sum);
    }
    return Res;
  }

  ArrayEvalMode Mode;
};

} // namespace sacfd

#endif // SACFD_SOLVER_ARRAYSOLVER_H
