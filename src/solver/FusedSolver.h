//===- solver/FusedSolver.h - Fortran-style loop-nest engine ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fortran original: explicit loop nests over raw storage.
///
/// This engine is the performance shape of the paper's Fortran-90 code
/// under an auto-parallelizing compiler:
///   - hand-fused stride-arithmetic loops, no intermediate whole-array
///     temporaries beyond the per-axis flux line buffer (fast on one
///     core — the left edge of Fig. 4);
///   - every loop nest is its own parallel region dispatched through the
///     Backend, the way -autopar parallelizes each DO loop independently.
///     One RK3 time step issues ~27 regions (8 per stage: 4 boundary
///     sides, RHS zeroing, 2 axis sweeps, the update; plus the snapshot
///     copy and the GetDT reduction); with the fork-join backend each of
///     those pays the thread-team setup cost, which is the scaling
///     collapse of Fig. 4.
///
/// The numerics (reconstruction, Riemann solver, stage table) are shared
/// with ArraySolver, so for identical settings the two engines produce
/// bit-identical fields.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_FUSEDSOLVER_H
#define SACFD_SOLVER_FUSEDSOLVER_H

#include "runtime/BlockReduce.h"
#include "solver/EulerSolver.h"

#include <algorithm>

namespace sacfd {

/// The Fortran-style engine: fused stride-based loop nests.
template <unsigned Dim> class FusedSolver final : public EulerSolver<Dim> {
public:
  FusedSolver(Problem<Dim> Prob, SchemeConfig Scheme, Backend &Exec)
      : EulerSolver<Dim>(std::move(Prob), Scheme, Exec) {
    const Grid<Dim> &G = this->Prob.Domain;
    Shape Storage = G.storageShape();
    for (unsigned A = 0; A < Dim; ++A) {
      N[A] = G.cells(A);
      StorageDim[A] = Storage.dim(A);
    }
    // Row-major strides.
    StorageStride[Dim - 1] = 1;
    InteriorStride[Dim - 1] = 1;
    for (unsigned A = Dim - 1; A-- > 0;) {
      StorageStride[A] = StorageStride[A + 1] * StorageDim[A + 1];
      InteriorStride[A] = InteriorStride[A + 1] * N[A + 1];
    }
    Ng = G.ghost();
  }

  const char *engineName() const override { return "fused"; }

  /// The Fortran GetDT: nested DO loops, rectangle maxima in parallel,
  /// then a serial max over rectangles.  The max chain is exact under any
  /// grouping, so tiled and flattened runs produce bit-identical dt.
  double computeDt() override {
    static const unsigned SpanGetDt = telemetry::spanId("solver.get_dt");
    telemetry::ScopedSpan Span(SpanGetDt);
    const Gas &Gas_ = this->Prob.G;
    const Grid<Dim> &G = this->Prob.Domain;
    double InvDx[Dim];
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);

    // Lines run along the last (contiguous) axis.
    constexpr unsigned LineAxis = Dim - 1;
    size_t Lines = lineCount(LineAxis);
    const Cons<Dim> *Field = this->U.data();

    double EvMax = blockReduce2D(
        Lines, N[LineAxis], this->Exec, 0.0,
        [&](size_t LineBegin, size_t LineEnd, size_t CellBegin,
            size_t CellEnd) {
          double Acc = 0.0;
          for (size_t Line = LineBegin; Line != LineEnd; ++Line) {
            size_t Base = lineStorageBase(LineAxis, Line);
            for (size_t I = CellBegin; I != CellEnd; ++I) {
              Prim<Dim> W = toPrim(Field[Base + I], Gas_);
              double Ev = 0.0;
              for (unsigned A = 0; A < Dim; ++A)
                Ev += maxWaveSpeed(W, Gas_, A) * InvDx[A];
              Acc = std::max(Acc, Ev);
            }
          }
          return Acc;
        },
        [](double A, double B) { return std::max(A, B); });
    return this->dtFromMaxEigen(EvMax);
  }

protected:
  void stepWithDt(double Dt) override {
    static const unsigned SpanSnapshot = telemetry::spanId("solver.snapshot");
    static const unsigned SpanBoundary = telemetry::spanId("solver.boundary");
    static const unsigned SpanFlux = telemetry::spanId("solver.flux");
    static const unsigned SpanUpdate = telemetry::spanId("solver.update");
    const Grid<Dim> &G = this->Prob.Domain;
    size_t StorageCount = this->U.shape().count();
    size_t InteriorCount = G.interiorCount();

    // QN = QP: whole-array snapshot (one parallel region, as the
    // auto-parallelizer emits for a Fortran array assignment).  Both
    // scratch buffers are leased on first use; every element is written
    // before being read, so the uninit mode applies.
    if (!UnL || UnL->shape() != this->U.shape())
      UnL = this->Pool.template acquireUninit<Cons<Dim>>(this->U.shape());
    if (!ResL || ResL->shape() != G.interiorShape())
      ResL = this->Pool.template acquireUninit<Cons<Dim>>(G.interiorShape());
    NDArray<Cons<Dim>> &Un = *UnL;
    NDArray<Cons<Dim>> &Res = *ResL;

    Cons<Dim> *UnData = Un.data();
    Cons<Dim> *UData = this->U.data();
    {
      telemetry::ScopedSpan S(SpanSnapshot);
      this->Exec.parallelFor(0, StorageCount, [&](size_t B, size_t E) {
        std::copy(UData + B, UData + E, UnData + B);
      });
    }

    for (const SspStage &Stage : sspStages(this->Scheme.Integrator)) {
      {
        telemetry::ScopedSpan S(SpanBoundary);
        applyBoundaries(this->U, G, this->Prob.Boundary, this->Exec);
      }

      Cons<Dim> *ResData = Res.data();
      {
        // RHS zeroing plus the directional sweeps (reconstruction +
        // Riemann fluxes + divergence, one region per axis).
        telemetry::ScopedSpan S(SpanFlux);
        this->Exec.parallelFor(0, InteriorCount, [&](size_t B, size_t E) {
          std::fill(ResData + B, ResData + E, Cons<Dim>());
        });
        for (unsigned Axis = 0; Axis < Dim; ++Axis)
          sweepAxis(Axis);
      }

      // Update loop (one region): U = A*Un + B*(U + dt*Res) on interior.
      // Runs through the 2D boundary as (line, cell) so the backend can
      // tile it; per-element results are grouping-independent.
      double A = Stage.PrevWeight, B = Stage.StageWeight;
      constexpr unsigned LineAxis = Dim - 1;
      size_t Lines = lineCount(LineAxis);
      telemetry::ScopedSpan UpdateSpan(SpanUpdate);
      this->Exec.parallelFor2D(
          Lines, N[LineAxis],
          [&, A, B, Dt](size_t LB, size_t LE, size_t CB, size_t CE) {
            for (size_t Line = LB; Line != LE; ++Line) {
              size_t SBase = lineStorageBase(LineAxis, Line);
              size_t RBase = Line * N[LineAxis];
              for (size_t I = CB; I != CE; ++I) {
                Cons<Dim> &Q = UData[SBase + I];
                Q = UnData[SBase + I] * A + (Q + ResData[RBase + I] * Dt) * B;
              }
            }
          });
    }
  }

private:
  /// Number of tangential lines perpendicular to \p Axis.
  size_t lineCount(unsigned Axis) const {
    size_t Count = 1;
    for (unsigned A = 0; A < Dim; ++A)
      if (A != Axis)
        Count *= N[A];
    return Count;
  }

  /// Storage offset of interior cell 0 of tangential line \p Line along
  /// \p Axis.
  size_t lineStorageBase(unsigned Axis, size_t Line) const {
    size_t Base = 0;
    // Decompose Line over the tangential axes in row-major order.
    for (unsigned A = Dim; A-- > 0;) {
      if (A == Axis)
        continue;
      size_t Coord = Line % N[A];
      Line /= N[A];
      Base += (Coord + Ng) * StorageStride[A];
    }
    Base += Ng * StorageStride[Axis];
    return Base;
  }

  /// Interior (residual) offset of cell 0 of the same line.
  size_t lineInteriorBase(unsigned Axis, size_t Line) const {
    size_t Base = 0;
    for (unsigned A = Dim; A-- > 0;) {
      if (A == Axis)
        continue;
      size_t Coord = Line % N[A];
      Line /= N[A];
      Base += Coord * InteriorStride[A];
    }
    return Base;
  }

  /// One directional sweep: per line, compute all face fluxes into a
  /// scratch buffer, then accumulate the flux differences into the RHS.
  /// This is the fused Fortran structure: flux and difference in one pass
  /// over the line, no global flux array.
  void sweepAxis(unsigned Axis) {
    const Gas &Gas_ = this->Prob.G;
    const SchemeConfig &SC = this->Scheme;
    const double InvDx = 1.0 / this->Prob.Domain.dx(Axis);
    const std::ptrdiff_t AxisStride =
        static_cast<std::ptrdiff_t>(StorageStride[Axis]);
    const std::ptrdiff_t AxisMax =
        static_cast<std::ptrdiff_t>(StorageDim[Axis]) - 1;
    const size_t Lines = lineCount(Axis);
    const Cons<Dim> *Field = this->U.data();
    Cons<Dim> *ResData = ResL->data();

    // (line, cell-along-axis) is the 2D iteration space; the backend may
    // tile it.  Each cell's update reads faces I and I+1 computed from the
    // same clamped stencils regardless of the sub-range, so tiled and
    // flattened sweeps are bit-identical (column-tile boundary faces are
    // recomputed, not communicated).
    this->Exec.parallelFor2D(
        Lines, N[Axis],
        [&, Axis](size_t LineBegin, size_t LineEnd, size_t CellBegin,
                  size_t CellEnd) {
          // Faces CellBegin..CellEnd inclusive bound this cell sub-range;
          // local face f is global face CellBegin + f.  The face-state
          // scratch is per-worker-thread and grown-only: on persistent
          // worker pools it is allocated once per thread and then reused
          // for every region of every step (fork-join teams are transient,
          // so they re-pay it — part of the per-region cost Fig. 4 is
          // about).  Every face slot is written before it is read.
          size_t LocalFaces = (CellEnd - CellBegin) + 1;
          static thread_local NDArray<Cons<Dim>> FluxScratch;
          if (FluxScratch.size() < LocalFaces)
            FluxScratch.reshapeDiscard(Shape{LocalFaces});
          Cons<Dim> *FluxLine = FluxScratch.data();
          for (size_t Line = LineBegin; Line != LineEnd; ++Line) {
            // Base points at interior cell 0; relative cell i sits at
            // Base + i * AxisStride.
            size_t Base = lineStorageBase(Axis, Line);

            for (size_t F = 0; F < LocalFaces; ++F) {
              std::array<Cons<Dim>, 6> Stencil;
              for (unsigned K = 0; K < 6; ++K) {
                // Window cell K at axis offset f - 3 + K from interior 0,
                // clamped into storage (outermost cells are never read by
                // the implemented schemes).
                std::ptrdiff_t Off =
                    static_cast<std::ptrdiff_t>(CellBegin + F) +
                    static_cast<std::ptrdiff_t>(K) - 3;
                Off = std::clamp<std::ptrdiff_t>(
                    Off, -static_cast<std::ptrdiff_t>(Ng),
                    AxisMax - static_cast<std::ptrdiff_t>(Ng));
                Stencil[K] = Field[static_cast<std::ptrdiff_t>(Base) +
                                   Off * AxisStride];
              }
              FaceStates<Dim> FS = reconstructFaceStates(
                  SC.Recon, SC.Limiter, SC.Vars, Stencil, Gas_, Axis);
              FluxLine[F] =
                  numericalFlux(SC.Riemann, FS.L, FS.R, Gas_, Axis);
            }

            size_t RBase = lineInteriorBase(Axis, Line);
            std::ptrdiff_t RStride =
                static_cast<std::ptrdiff_t>(InteriorStride[Axis]);
            for (size_t I = CellBegin; I != CellEnd; ++I) {
              size_t LocalF = I - CellBegin;
              ResData[static_cast<std::ptrdiff_t>(RBase) +
                      static_cast<std::ptrdiff_t>(I) * RStride] -=
                  (FluxLine[LocalF + 1] - FluxLine[LocalF]) * InvDx;
            }
          }
        });
  }

  size_t N[Dim] = {};
  size_t StorageDim[Dim] = {};
  size_t StorageStride[Dim] = {};
  size_t InteriorStride[Dim] = {};
  unsigned Ng = 0;
  /// Snapshot (QN) and RHS scratch, leased from the solver pool on first
  /// step and held for the solver's lifetime.
  FieldPool::Lease<Cons<Dim>> UnL;
  FieldPool::Lease<Cons<Dim>> ResL;
};

} // namespace sacfd

#endif // SACFD_SOLVER_FUSEDSOLVER_H
