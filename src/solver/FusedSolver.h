//===- solver/FusedSolver.h - Fortran-style loop-nest engine ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fortran original: explicit loop nests over raw storage.
///
/// This engine is the performance shape of the paper's Fortran-90 code
/// under an auto-parallelizing compiler:
///   - hand-fused stride-arithmetic loops, no intermediate whole-array
///     temporaries beyond the per-axis flux line buffer (fast on one
///     core — the left edge of Fig. 4);
///   - every loop nest is its own parallel region dispatched through the
///     Backend, the way -autopar parallelizes each DO loop independently.
///     One RK3 time step issues ~27 regions (8 per stage: 4 boundary
///     sides, RHS zeroing, 2 axis sweeps, the update; plus the snapshot
///     copy and the GetDT reduction); with the fork-join backend each of
///     those pays the thread-team setup cost, which is the scaling
///     collapse of Fig. 4.
///
/// The loop bodies themselves are the shared kernels:: layer: snapshot,
/// RHS zeroing, the SSP update and the GetDT reduction always run as
/// contiguous line runs, and under piecewise-constant reconstruction the
/// face fluxes do too — so with --layout soa the hot loops execute the
/// vectorized kernel build.  Higher-order schemes keep the per-face
/// stencil gather for reconstruction.
///
/// On a TaskBackend the engine additionally offers a dependency-DAG step
/// mode (enableDagStepping): one step becomes per-tile snapshot, flux and
/// update tasks linked by exact data dependencies, so a tile can run
/// stage s+1 while a distant tile is still in stage s — no global
/// barrier between the ~27 regions.  The GetDT reduction rides along as
/// per-tile max-eigenvalue tasks released by each tile's final update,
/// merged in row-major tile order; the merged value is cached and served
/// by the next computeDt() call, overlapping GetDT with independent
/// work instead of dedicating a barrier-bounded region to it.
///
/// The numerics (reconstruction, Riemann solver, stage table) are shared
/// with ArraySolver, so for identical settings the two engines produce
/// bit-identical fields.  The DAG mode preserves that: every task covers
/// the same cell sub-ranges a tiled loop run would, per-cell arithmetic
/// order within the RHS is fixed by tile-local axis ordering, and the
/// max-reduction is grouping-independent — so fields stay bit-identical
/// to serial at every worker count.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_FUSEDSOLVER_H
#define SACFD_SOLVER_FUSEDSOLVER_H

#include "runtime/BlockReduce.h"
#include "runtime/TaskBackend.h"
#include "solver/EulerSolver.h"

#include <algorithm>
#include <optional>
#include <vector>

namespace sacfd {

/// The Fortran-style engine: fused stride-based loop nests.
template <unsigned Dim> class FusedSolver final : public EulerSolver<Dim> {
public:
  FusedSolver(Problem<Dim> Prob, SchemeConfig Scheme, Backend &Exec,
              Layout FieldLayout = Layout::AoS, bool Simd = true)
      : EulerSolver<Dim>(std::move(Prob), Scheme, Exec, FieldLayout, Simd) {}

  const char *engineName() const override { return "fused"; }

  /// Switches stepWithDt to the dependency-DAG pipeline.  Requires the
  /// backend to support DAG dispatch (Backend::taskBackend) and Dim <= 2.
  /// \returns false (leaving the loop mode active) when unsupported.
  bool enableDagStepping() {
    if constexpr (Dim > 2)
      return false;
    DagExec = this->Exec.taskBackend();
    return DagExec != nullptr;
  }

  /// True when steps run as a task DAG rather than barrier-ed regions.
  bool dagStepping() const { return DagExec != nullptr; }

  /// The Fortran GetDT: nested DO loops, rectangle maxima in parallel,
  /// then a serial max over rectangles.  The max chain is exact under any
  /// grouping, so tiled and flattened runs produce bit-identical dt.
  /// In DAG mode the previous step already merged the per-tile maxima
  /// (cache keyed on the clock, invalidated by onClockRestored), so this
  /// usually returns without touching the field.
  double computeDt() override {
    if (DagExec && DtCacheValid && this->Steps == DtCacheSteps &&
        this->Time == DtCacheTime)
      return this->dtFromMaxEigen(CachedEvMax);
    static const unsigned SpanGetDt = telemetry::spanId("solver.get_dt");
    telemetry::ScopedSpan Span(SpanGetDt);

    // Lines run along the last (contiguous) axis.
    constexpr unsigned LineAxis = Dim - 1;
    size_t Lines = this->lineCount(LineAxis);

    double EvMax = blockReduce2D(
        Lines, this->N[LineAxis], this->Exec, 0.0,
        [&](size_t LineBegin, size_t LineEnd, size_t CellBegin,
            size_t CellEnd) {
          return maxEigenRange(LineBegin, LineEnd, CellBegin, CellEnd);
        },
        [](double A, double B) { return std::max(A, B); });
    return this->dtFromMaxEigen(EvMax);
  }

protected:
  void stepWithDt(double Dt) override {
    if (DagExec) {
      if constexpr (Dim <= 2) {
        stepWithDtDag(Dt);
        return;
      }
    }
    static const unsigned SpanSnapshot = telemetry::spanId("solver.snapshot");
    static const unsigned SpanBoundary = telemetry::spanId("solver.boundary");
    static const unsigned SpanFlux = telemetry::spanId("solver.flux");
    static const unsigned SpanUpdate = telemetry::spanId("solver.update");
    const Grid<Dim> &G = this->Prob.Domain;
    size_t StorageCount = this->U.shape().count();
    size_t InteriorCount = G.interiorCount();

    // QN = QP: whole-array snapshot (one parallel region, as the
    // auto-parallelizer emits for a Fortran array assignment).  Both
    // scratch buffers are leased on first use; every element is written
    // before being read, so the uninit mode applies.
    acquireStepBuffers();
    {
      telemetry::ScopedSpan S(SpanSnapshot);
      this->Exec.parallelFor(0, StorageCount, [&](size_t B, size_t E) {
        kernels::copyState<Dim>(this->U.crun(B), Un.run(B), E - B,
                                this->SimdEnabled);
      });
    }

    for (const SspStage &Stage : sspStages(this->Scheme.Integrator)) {
      {
        telemetry::ScopedSpan S(SpanBoundary);
        this->fillGhosts(this->Time);
      }

      {
        // RHS zeroing plus the directional sweeps (reconstruction +
        // Riemann fluxes + divergence, one region per axis).
        telemetry::ScopedSpan S(SpanFlux);
        this->Exec.parallelFor(0, InteriorCount, [&](size_t B, size_t E) {
          kernels::zeroState<Dim>(Res.run(B), E - B, this->SimdEnabled);
        });
        for (unsigned Axis = 0; Axis < Dim; ++Axis) {
          // (line, cell-along-axis) is the 2D iteration space; the
          // backend may tile it.  Faces are recomputed at sub-range
          // seams, so tiled and flattened sweeps are bit-identical.
          this->Exec.parallelFor2D(
              this->lineCount(Axis), this->N[Axis],
              [&, Axis](size_t LineBegin, size_t LineEnd, size_t CellBegin,
                        size_t CellEnd) {
                sweepRange(Axis, LineBegin, LineEnd, CellBegin, CellEnd);
              });
        }
      }

      // Update loop (one region): U = A*Un + B*(U + dt*Res) on interior.
      // Runs through the 2D boundary as (line, cell) so the backend can
      // tile it; per-element results are grouping-independent.
      constexpr unsigned LineAxis = Dim - 1;
      size_t Lines = this->lineCount(LineAxis);
      telemetry::ScopedSpan UpdateSpan(SpanUpdate);
      this->Exec.parallelFor2D(
          Lines, this->N[LineAxis],
          [&](size_t LB, size_t LE, size_t CB, size_t CE) {
            updateRange(Stage.PrevWeight, Stage.StageWeight, Dt, LB, LE, CB,
                        CE);
          });
    }
  }

  void onClockRestored() override { DtCacheValid = false; }

private:
  void acquireStepBuffers() {
    const Grid<Dim> &G = this->Prob.Domain;
    if (Un.shape() != this->U.shape())
      Un = Field<Dim>(this->Pool, this->U.shape(), this->U.layout(),
                      FieldInit::Uninit);
    if (Res.shape() != G.interiorShape())
      Res = Field<Dim>(this->Pool, G.interiorShape(), this->U.layout(),
                       FieldInit::Uninit);
  }

  /// True when the \p Axis sweep runs whole face rows through
  /// kernels::fluxFaces instead of gathering stencils per face: the
  /// reconstruction must be piecewise-constant (face states are the
  /// adjacent cells), and the face rows must be contiguous in storage —
  /// the last axis always is; a 2D axis-0 sweep is restructured into
  /// row runs below.
  bool fluxKernelSweep(unsigned Axis) const {
    return kernels::fluxKernelEligible(this->Scheme.Recon) &&
           (Axis == Dim - 1 || (Dim == 2 && Axis == 0));
  }

  /// One directional sweep over lines [LineBegin, LineEnd) x cells
  /// [CellBegin, CellEnd): per line, compute all bounding face fluxes
  /// into a scratch buffer, then accumulate the flux differences into
  /// the RHS.  This is the fused Fortran structure: flux and difference
  /// in one pass over the line, no global flux array.  Each cell's
  /// update reads faces I and I+1 computed from the same clamped
  /// stencils regardless of the sub-range, so tiled, flattened and
  /// task-decomposed sweeps are bit-identical (sub-range boundary faces
  /// are recomputed, not communicated).
  void sweepRange(unsigned Axis, size_t LineBegin, size_t LineEnd,
                  size_t CellBegin, size_t CellEnd) {
    if (fluxKernelSweep(Axis)) {
      if (Axis == Dim - 1) {
        sweepRangeKernelLastAxis(LineBegin, LineEnd, CellBegin, CellEnd);
      } else {
        if constexpr (Dim == 2)
          sweepRangeKernelAxis0(LineBegin, LineEnd, CellBegin, CellEnd);
      }
      return;
    }

    const Gas &Gas_ = this->Prob.G;
    const SchemeConfig &SC = this->Scheme;
    const double InvDx = 1.0 / this->Prob.Domain.dx(Axis);
    const std::ptrdiff_t AxisStride =
        static_cast<std::ptrdiff_t>(this->StorageStride[Axis]);
    const std::ptrdiff_t AxisMax =
        static_cast<std::ptrdiff_t>(this->StorageDim[Axis]) - 1;
    const std::ptrdiff_t NgS = static_cast<std::ptrdiff_t>(this->Ng);

    // Faces CellBegin..CellEnd inclusive bound this cell sub-range;
    // local face f is global face CellBegin + f.  The face-state
    // scratch is per-worker-thread and grown-only: on persistent
    // worker pools it is allocated once per thread and then reused
    // for every region of every step (fork-join teams are transient,
    // so they re-pay it — part of the per-region cost Fig. 4 is
    // about).  Every face slot is written before it is read.
    size_t LocalFaces = (CellEnd - CellBegin) + 1;
    static thread_local NDArray<Cons<Dim>> FluxScratch;
    if (FluxScratch.size() < LocalFaces)
      FluxScratch.reshapeDiscard(Shape{LocalFaces});
    Cons<Dim> *FluxLine = FluxScratch.data();
    for (size_t Line = LineBegin; Line != LineEnd; ++Line) {
      // Base points at interior cell 0; relative cell i sits at
      // Base + i * AxisStride.
      size_t Base = this->lineStorageBase(Axis, Line);

      for (size_t F = 0; F < LocalFaces; ++F) {
        std::array<Cons<Dim>, 6> Stencil;
        for (unsigned K = 0; K < 6; ++K) {
          // Window cell K at axis offset f - 3 + K from interior 0,
          // clamped into storage (outermost cells are never read by
          // the implemented schemes).
          std::ptrdiff_t Off = static_cast<std::ptrdiff_t>(CellBegin + F) +
                               static_cast<std::ptrdiff_t>(K) - 3;
          Off = std::clamp<std::ptrdiff_t>(Off, -NgS, AxisMax - NgS);
          Stencil[K] = this->U.load(static_cast<size_t>(
              static_cast<std::ptrdiff_t>(Base) + Off * AxisStride));
        }
        FaceStates<Dim> FS = reconstructFaceStates(SC.Recon, SC.Limiter,
                                                   SC.Vars, Stencil, Gas_,
                                                   Axis);
        FluxLine[F] = numericalFlux(SC.Riemann, FS.L, FS.R, Gas_, Axis);
      }

      size_t RBase = this->lineInteriorBase(Axis, Line);
      std::ptrdiff_t RStride =
          static_cast<std::ptrdiff_t>(this->InteriorStride[Axis]);
      for (size_t I = CellBegin; I != CellEnd; ++I) {
        size_t LocalF = I - CellBegin;
        size_t RI = static_cast<size_t>(
            static_cast<std::ptrdiff_t>(RBase) +
            static_cast<std::ptrdiff_t>(I) * RStride);
        Res.store(RI, Res.load(RI) -
                          (FluxLine[LocalF + 1] - FluxLine[LocalF]) * InvDx);
      }
    }
  }

  /// Kernel form of the last-axis sweep: per line, one fluxFaces run
  /// over the bounding faces (unit-stride SoA scratch, so the SIMD
  /// mirror applies), then one accumDivergence run into the RHS.  Face
  /// values and the per-cell accumulation are bit-identical to the
  /// gather form — the kernels mirror numericalFlux term for term.
  void sweepRangeKernelLastAxis(size_t LineBegin, size_t LineEnd,
                                size_t CellBegin, size_t CellEnd) {
    constexpr unsigned Axis = Dim - 1;
    const double InvDx = 1.0 / this->Prob.Domain.dx(Axis);
    size_t LocalFaces = (CellEnd - CellBegin) + 1;
    kernels::Run<Dim> FluxRow =
        fluxScratchRow<Dim>(0, 1, LocalFaces, this->U.layout());
    for (size_t Line = LineBegin; Line != LineEnd; ++Line) {
      size_t Base = this->lineStorageBase(Axis, Line) + CellBegin;
      // Face f (local) sits between storage cells Base+f-1 and Base+f;
      // cell Base-1 is the ghost neighbor when CellBegin == 0.
      kernels::fluxFaces<Dim>(this->U.crun(Base - 1), this->U.crun(Base),
                              FluxRow, this->Prob.G, Axis,
                              this->Scheme.Riemann, LocalFaces,
                              this->SimdEnabled);
      size_t RBase = this->lineInteriorBase(Axis, Line) + CellBegin;
      kernels::ConstRun<Dim> Lo = FluxRow;
      kernels::accumDivergence<Dim>(Res.run(RBase), Lo,
                                    kernels::advance(Lo, 1), InvDx,
                                    CellEnd - CellBegin, this->SimdEnabled);
    }
  }

  /// Kernel form of the 2D axis-0 sweep.  The sweep space is transposed
  /// (lines = columns, cells = rows), so contiguous runs go across the
  /// line range: face row f is computed once into a rolling two-row
  /// scratch, and cell row i consumes face rows i and i+1.  Same face
  /// values, same single accumulation per cell as the gather form.
  void sweepRangeKernelAxis0(size_t LineBegin, size_t LineEnd,
                             size_t CellBegin, size_t CellEnd) {
    static_assert(Dim == 2, "axis-0 kernel sweep is the 2D restructure");
    const double InvDx = 1.0 / this->Prob.Domain.dx(0);
    const size_t S0 = this->StorageStride[0];
    size_t W = LineEnd - LineBegin;

    // Storage offset of the R-side cell row of face row f: interior row
    // f, columns [LineBegin, LineEnd).
    auto FaceRowBase = [&](size_t F) {
      return (this->Ng + F) * S0 + this->Ng + LineBegin;
    };

    kernels::Run<Dim> Rows[2] = {
        fluxScratchRow<Dim>(0, 2, W, this->U.layout()),
        fluxScratchRow<Dim>(1, 2, W, this->U.layout())};
    kernels::fluxFaces<Dim>(this->U.crun(FaceRowBase(CellBegin) - S0),
                            this->U.crun(FaceRowBase(CellBegin)), Rows[0],
                            this->Prob.G, /*Axis=*/0, this->Scheme.Riemann,
                            W, this->SimdEnabled);
    for (size_t I = CellBegin; I != CellEnd; ++I) {
      kernels::Run<Dim> &Lo = Rows[(I - CellBegin) % 2];
      kernels::Run<Dim> &Hi = Rows[(I - CellBegin + 1) % 2];
      kernels::fluxFaces<Dim>(this->U.crun(FaceRowBase(I + 1) - S0),
                              this->U.crun(FaceRowBase(I + 1)), Hi,
                              this->Prob.G, /*Axis=*/0, this->Scheme.Riemann,
                              W, this->SimdEnabled);
      size_t RBase = I * this->N[1] + LineBegin;
      kernels::accumDivergence<Dim>(Res.run(RBase), Lo, Hi, InvDx, W,
                                    this->SimdEnabled);
    }
  }

  /// U = A*Un + B*(U + dt*Res) over lines [LB, LE) x cells [CB, CE) of
  /// the update space (lines along the last axis) — one SSP kernel run
  /// per line.
  void updateRange(double A, double B, double Dt, size_t LB, size_t LE,
                   size_t CB, size_t CE) {
    constexpr unsigned LineAxis = Dim - 1;
    for (size_t Line = LB; Line != LE; ++Line) {
      size_t SBase = this->lineStorageBase(LineAxis, Line) + CB;
      size_t RBase = Line * this->N[LineAxis] + CB;
      kernels::sspUpdate<Dim>(this->U.run(SBase), Un.crun(SBase),
                              Res.crun(RBase), A, B, Dt, CE - CB,
                              this->SimdEnabled);
    }
  }

  /// Max CFL eigenvalue over lines [LineBegin, LineEnd) x cells
  /// [CellBegin, CellEnd) of the update space (the GetDT kernel body).
  double maxEigenRange(size_t LineBegin, size_t LineEnd, size_t CellBegin,
                       size_t CellEnd) const {
    constexpr unsigned LineAxis = Dim - 1;
    const Grid<Dim> &G = this->Prob.Domain;
    double InvDx[Dim];
    for (unsigned A = 0; A < Dim; ++A)
      InvDx[A] = 1.0 / G.dx(A);
    double Acc = 0.0;
    for (size_t Line = LineBegin; Line != LineEnd; ++Line) {
      size_t Base = this->lineStorageBase(LineAxis, Line) + CellBegin;
      Acc = kernels::maxEigen<Dim>(this->U.crun(Base), this->Prob.G, InvDx,
                                   Acc, CellEnd - CellBegin,
                                   this->SimdEnabled);
    }
    return Acc;
  }

  //===--------------------------------------------------------------------===//
  // Dependency-DAG step mode (TaskBackend only, Dim <= 2)
  //
  // The interior is carved once into the backend's TileGrid over the
  // update space (lines x cells-along-last-axis; automatic tile sizes
  // when --tile is off).  One step becomes, per tile T:
  //
  //   Snap(T)                 copy U -> Un on T's interior cells
  //   per stage s:
  //     Bnd(s)                ghost fill, serial inside one task
  //     Flux(s, axis, T)      zero T's RHS (first axis only), then the
  //                           directional sweep restricted to T
  //     Upd(s, T)             the SSP update on T
  //   DtPart(T)               max eigenvalue over T (next step's GetDT)
  //   DtMerge                 row-major-ordered max over the tile partials
  //
  // Edges encode exact data dependencies, including the anti-dependencies
  // "every flux task reading a tile's U runs before that tile's update
  // overwrites it" and "a stage's boundary task waits for the previous
  // stage's updates of every edge-band tile".  Ghost-reading flux tasks
  // depend on their stage's boundary task; interior tiles don't, which is
  // precisely the pipelining headroom.  Determinism: each task covers the
  // same cell sub-ranges as a tiled loop run, the per-cell RHS sequence
  // (zero, -axis0, -axis1) is fixed by the tile-local flux chain, and the
  // dt merge is an exact max in tile order — so any steal order yields
  // bit-identical fields and telemetry gauges.
  //===--------------------------------------------------------------------===//

  enum DagNodeKind : uint64_t {
    KSnap = 0,
    KBnd = 1,
    KFlux = 2,
    KUpd = 3,
    KDtPart = 4,
    KDtMerge = 5,
  };

  static uint64_t dagPayload(DagNodeKind Kind, unsigned Axis, size_t Stage,
                             size_t TileIndex) {
    return static_cast<uint64_t>(Kind) | (static_cast<uint64_t>(Axis) << 3) |
           (static_cast<uint64_t>(Stage) << 6) |
           (static_cast<uint64_t>(TileIndex) << 16);
  }

  /// Tile-row/col index of interior coordinate \p C along an axis with
  /// nominal tile size \p TileDim (TileGrid tiles cover
  /// [i*TileDim, min((i+1)*TileDim, Extent))).
  static size_t tileIndexOf(size_t C, size_t TileDim) { return C / TileDim; }

  /// True when \p R contains interior cells within Ng of any domain
  /// face — the cells applyBoundaries reads (and, for periodic, copies
  /// from the opposite band, which is also covered).
  bool rectTouchesEdgeBand(const TileRect &R, const TileGrid &G) const {
    if (Dim >= 2 && (R.RowBegin < this->Ng || R.RowEnd + this->Ng > G.rows()))
      return true;
    return R.ColBegin < this->Ng || R.ColEnd + this->Ng > G.cols();
  }

  /// The update-space tile indices whose U cells a flux task over tile
  /// \p Ti along \p Axis reads (its own tile plus up to a 3-cell stencil
  /// reach into neighbors), appended to \p Out.  \p GhostRead reports
  /// whether the clamped stencil extends into ghost cells.
  void fluxReadTiles(const TileGrid &G, unsigned Axis, size_t Ti,
                     std::vector<size_t> &Out, bool &GhostRead) const {
    TileRect R = G.rect(Ti);
    constexpr unsigned LineAxis = Dim - 1;
    if (Axis == LineAxis) {
      // Sweep along columns: reads cols [ColBegin-3, ColEnd+2] of its
      // own tile rows.
      size_t Lo = R.ColBegin < 3 ? 0 : R.ColBegin - 3;
      size_t Hi = std::min(R.ColEnd + 2, G.cols() - 1);
      GhostRead = R.ColBegin < 3 || R.ColEnd + 2 > G.cols() - 1;
      size_t TRow = Ti / G.colTiles();
      for (size_t TC = tileIndexOf(Lo, G.tileCols());
           TC <= tileIndexOf(Hi, G.tileCols()); ++TC)
        Out.push_back(TRow * G.colTiles() + TC);
      return;
    }
    // 2D axis-0 sweep along rows: reads rows [RowBegin-3, RowEnd+2] of
    // its own tile columns.
    size_t Lo = R.RowBegin < 3 ? 0 : R.RowBegin - 3;
    size_t Hi = std::min(R.RowEnd + 2, G.rows() - 1);
    GhostRead = R.RowBegin < 3 || R.RowEnd + 2 > G.rows() - 1;
    size_t TCol = Ti % G.colTiles();
    for (size_t TR = tileIndexOf(Lo, G.tileRows());
         TR <= tileIndexOf(Hi, G.tileRows()); ++TR)
      Out.push_back(TR * G.colTiles() + TCol);
  }

  void buildStepDag() {
    constexpr unsigned LineAxis = Dim - 1;
    size_t Lines = this->lineCount(LineAxis);
    Tile T = this->Exec.tile();
    if (!T.Enabled)
      T = Tile::automatic();
    DagGrid.emplace(Lines, this->N[LineAxis], T);
    const TileGrid &G = *DagGrid;
    size_t K = G.count();
    DtPartials.assign(K, 0.0);
    Dag.clear();

    const auto &Stages = sspStages(this->Scheme.Integrator);
    std::vector<size_t> Snap(K), PrevUpd(K), Upd(K), LastFlux(K);
    std::vector<size_t> Reads;

    for (size_t Ti = 0; Ti < K; ++Ti)
      Snap[Ti] = Dag.add(dagPayload(KSnap, 0, 0, Ti));

    for (size_t S = 0; S < Stages.size(); ++S) {
      size_t Bnd = Dag.add(dagPayload(KBnd, 0, S, 0));
      if (S > 0)
        for (size_t Ti = 0; Ti < K; ++Ti)
          if (rectTouchesEdgeBand(G.rect(Ti), G))
            Dag.addDep(PrevUpd[Ti], Bnd);

      for (size_t Ti = 0; Ti < K; ++Ti) {
        Upd[Ti] = Dag.add(dagPayload(KUpd, 0, S, Ti));
        if (S == 0)
          // Stage 0 overwrites U that Snap still reads (and reads Un
          // that Snap writes); later stages inherit the order through
          // the flux chain.
          Dag.addDep(Snap[Ti], Upd[Ti]);
      }

      for (unsigned Axis = 0; Axis < Dim; ++Axis)
        for (size_t Ti = 0; Ti < K; ++Ti) {
          size_t F = Dag.add(dagPayload(KFlux, Axis, S, Ti));
          if (Axis > 0)
            // Per-cell RHS sequence: zero, -axis0, -axis1 — same order
            // as the loop mode, hence bit-identical accumulation.
            Dag.addDep(LastFlux[Ti], F);
          LastFlux[Ti] = F;
          bool GhostRead = false;
          Reads.clear();
          fluxReadTiles(G, Axis, Ti, Reads, GhostRead);
          for (size_t R : Reads) {
            if (S > 0)
              Dag.addDep(PrevUpd[R], F); // U produced by previous stage
            Dag.addDep(F, Upd[R]);       // before R's update overwrites U
          }
          if (GhostRead)
            Dag.addDep(Bnd, F); // ghosts filled by this stage's boundary
        }
      PrevUpd = Upd;
    }

    // Next step's GetDT: per-tile partials released tile-by-tile as the
    // final-stage updates land, merged in row-major tile order.
    size_t Merge = Dag.add(dagPayload(KDtMerge, 0, 0, 0));
    for (size_t Ti = 0; Ti < K; ++Ti) {
      size_t P = Dag.add(dagPayload(KDtPart, 0, 0, Ti));
      Dag.addDep(PrevUpd[Ti], P);
      Dag.addDep(P, Merge);
    }
  }

  void runDagNode(uint64_t Payload, double Dt) {
    const TileGrid &G = *DagGrid;
    auto Kind = static_cast<DagNodeKind>(Payload & 0x7);
    auto Axis = static_cast<unsigned>((Payload >> 3) & 0x7);
    auto Stage = static_cast<size_t>((Payload >> 6) & 0x3FF);
    auto Ti = static_cast<size_t>(Payload >> 16);
    constexpr unsigned LineAxis = Dim - 1;

    switch (Kind) {
    case KSnap: {
      TileRect R = G.rect(Ti);
      for (size_t Line = R.RowBegin; Line != R.RowEnd; ++Line) {
        size_t Base = this->lineStorageBase(LineAxis, Line) + R.ColBegin;
        kernels::copyState<Dim>(this->U.crun(Base), Un.run(Base),
                                R.ColEnd - R.ColBegin, this->SimdEnabled);
      }
      return;
    }
    case KBnd:
      // Runs serially inside this one task (nested parallelFor calls
      // from a task body execute inline).  Same start-of-step Time for
      // every stage, matching the loops mode bit for bit.
      this->fillGhosts(this->Time);
      return;
    case KFlux: {
      TileRect R = G.rect(Ti);
      if (Axis == 0) {
        // First axis of the stage zeroes this tile's RHS before
        // accumulating into it.
        for (size_t Line = R.RowBegin; Line != R.RowEnd; ++Line) {
          size_t Base = Line * this->N[LineAxis] + R.ColBegin;
          kernels::zeroState<Dim>(Res.run(Base), R.ColEnd - R.ColBegin,
                                  this->SimdEnabled);
        }
      }
      if (Axis == LineAxis)
        sweepRange(Axis, R.RowBegin, R.RowEnd, R.ColBegin, R.ColEnd);
      else
        // The 2D axis-0 sweep space is (lines = cols, cells = rows);
        // the update-space tile maps onto it transposed.
        sweepRange(Axis, R.ColBegin, R.ColEnd, R.RowBegin, R.RowEnd);
      return;
    }
    case KUpd: {
      TileRect R = G.rect(Ti);
      const SspStage &St = sspStages(this->Scheme.Integrator)[Stage];
      updateRange(St.PrevWeight, St.StageWeight, Dt, R.RowBegin, R.RowEnd,
                  R.ColBegin, R.ColEnd);
      return;
    }
    case KDtPart: {
      TileRect R = G.rect(Ti);
      DtPartials[Ti] = maxEigenRange(R.RowBegin, R.RowEnd, R.ColBegin,
                                     R.ColEnd);
      return;
    }
    case KDtMerge: {
      double M = 0.0;
      for (double V : DtPartials)
        M = std::max(M, V);
      DagEvMax = M;
      return;
    }
    }
  }

  void stepWithDtDag(double Dt) {
    static const unsigned SpanStep = telemetry::spanId("solver.step_dag");
    telemetry::ScopedSpan Span(SpanStep);
    acquireStepBuffers();
    if (!DagGrid)
      buildStepDag();
    DagExec->runDag(Dag,
                    [&](uint64_t Payload) { runDagNode(Payload, Dt); });
    // The DAG already reduced next step's max eigenvalue; serve it from
    // the cache when the clock arrives where this step put it.
    CachedEvMax = DagEvMax;
    DtCacheValid = true;
    DtCacheSteps = this->Steps + 1;
    DtCacheTime = this->Time + Dt;
  }

  /// Snapshot (QN) and RHS scratch, leased from the solver pool on first
  /// step and held for the solver's lifetime.
  Field<Dim> Un;
  Field<Dim> Res;

  /// Non-null when DAG stepping is enabled (the backend, downcast once).
  TaskBackend *DagExec = nullptr;
  /// The reusable step graph and its tile decomposition.
  TaskDag Dag;
  std::optional<TileGrid> DagGrid;
  /// Per-tile GetDT partials (indexed by tile, merged in tile order).
  std::vector<double> DtPartials;
  /// Where the DtMerge task parks the merged maximum.
  double DagEvMax = 0.0;
  /// One-step dt cache: valid when the clock matches (Steps, Time)
  /// recorded at the end of the producing step.
  double CachedEvMax = 0.0;
  bool DtCacheValid = false;
  unsigned DtCacheSteps = 0;
  double DtCacheTime = 0.0;
};

} // namespace sacfd

#endif // SACFD_SOLVER_FUSEDSOLVER_H
