//===- solver/scenarios/DoubleMach.cpp - Double Mach reflection -----------===//

#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/scenarios/BuiltinScenarios.h"

using namespace sacfd;

void sacfd::registerDoubleMachScenario(ScenarioRegistry &R) {
  Scenario<2> S;
  S.Name = "double-mach";
  S.Summary = "Woodward-Colella double Mach reflection (Mach 10 ramp, "
              "time-dependent top boundary)";
  // Cells per unit length; the domain is 4 x 1 so the grid is 4N x N.
  S.DefaultCells = 120;
  S.Pinned = {16, 4};
  // Mach 10 wants a conservative step at startup.
  S.Tuning.Cfl = 0.3;
  S.Build = [](const ScenarioArgs &A) {
    return SpecParse<Problem<2>>::ok(
        doubleMachReflection(A.cells(), A.ghostLayers()));
  };
  R.add(std::move(S));
}
