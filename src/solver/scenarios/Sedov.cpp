//===- solver/scenarios/Sedov.cpp - Sedov-style blast scenario ------------===//

#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/scenarios/BuiltinScenarios.h"

using namespace sacfd;

void sacfd::registerSedovScenario(ScenarioRegistry &R) {
  Scenario<2> S;
  S.Name = "sedov";
  S.Summary = "Sedov-style cylindrical blast (diverging shock, positivity "
              "stress)";
  S.DefaultCells = 200;
  S.Pinned = {32, 6};
  // The hot disc drives a strong shock into near-vacuum; a conservative
  // step keeps the first expansion positive at low resolution.
  S.Tuning.Cfl = 0.3;
  S.Build = [](const ScenarioArgs &A) {
    return SpecParse<Problem<2>>::ok(
        sedovBlast2D(A.cells(), A.ghostLayers()));
  };
  R.add(std::move(S));
}
