//===- solver/scenarios/ShockBubble.cpp - Shock-bubble interaction --------===//

#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/scenarios/BuiltinScenarios.h"

using namespace sacfd;

void sacfd::registerShockBubbleScenario(ScenarioRegistry &R) {
  Scenario<2> S;
  S.Name = "shock-bubble";
  S.Summary = "Mach 2 planar shock sweeping a low-density bubble in a "
              "channel";
  // Cells per unit length; the domain is 2 x 1 so the grid is 2N x N.
  S.DefaultCells = 100;
  S.Pinned = {24, 4};
  S.Build = [](const ScenarioArgs &A) {
    return SpecParse<Problem<2>>::ok(
        shockBubble2D(A.cells(), A.ghostLayers()));
  };
  R.add(std::move(S));
}
