//===- solver/scenarios/PinnedReferences.cpp - Checked-in run hashes ------===//
//
// The reference field-state hashes of every scenario's pinned run
// (fieldStateHash after PinnedRun steps of the frozen pinned
// configuration — see runPinnedScenario).  The engines are bit-identical
// and the pinned runner is serial, so one hash per scenario covers both
// engines on every backend.
//
// Regenerate after an INTENTIONAL numerics change with:
//
//   scenario_gallery --rebaseline
//
// and paste the emitted table over the one below.  An unexplained
// mismatch is a regression, not a rebaseline opportunity.
//
//===----------------------------------------------------------------------===//

#include "solver/Scenario.h"
#include "solver/scenarios/BuiltinScenarios.h"

using namespace sacfd;

void sacfd::registerPinnedReferences(ScenarioRegistry &R) {
  struct Row {
    const char *Name;
    uint64_t Hash;
  };
  // clang-format off
  static constexpr Row Table[] = {
      {"blast-waves",         0x081cb53abefc8d17ull},
      {"lax",                 0xf9a49a4451bb3c85ull},
      {"moving-contact",      0xe46c476226070e35ull},
      {"shu-osher",           0xe781baba777d9da9ull},
      {"smooth-advection",    0x658f883cb98217e1ull},
      {"sod",                 0x4d52ee875c6cd090ull},
      {"uniform-1d",          0x46d36c5ef8939f70ull},
      {"double-mach",         0xc72c1f4e2995c447ull},
      {"isentropic-vortex",   0xba9ac3611aa598dcull},
      {"riemann2d",           0xc39da78df76be75aull},
      {"sedov",               0x5997535478c8b3e5ull},
      {"shock-bubble",        0x015ee80fb0f3a3d1ull},
      {"shock-interaction",   0x3d55ff4af24849d8ull},
      {"smooth-advection-2d", 0x2a610f79c9c4d121ull},
      {"uniform-2d",          0xcc7ef18ea8264716ull},
  };
  // clang-format on
  for (const Row &E : Table)
    R.setReferenceHash(E.Name, E.Hash);
}
