//===- solver/scenarios/BuiltinScenarios.h - Registration hooks -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registration entry points of the built-in scenario translation units.
/// ScenarioRegistry::instance() calls each exactly once, in this order —
/// explicit calls, so a static archive cannot dead-strip a workload and
/// registration order is deterministic.  Adding a scenario family means
/// adding a TU under scenarios/, declaring its hook here, and calling it
/// from Scenario.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_SCENARIOS_BUILTINSCENARIOS_H
#define SACFD_SOLVER_SCENARIOS_BUILTINSCENARIOS_H

namespace sacfd {

class ScenarioRegistry;

/// 1D tube family: sod, lax, shu-osher, blast-waves, moving-contact,
/// smooth-advection, uniform-1d.
void registerTubes1DScenarios(ScenarioRegistry &R);
/// Classic 2D family: shock-interaction, riemann2d, smooth-advection-2d,
/// isentropic-vortex, uniform-2d.
void registerClassic2DScenarios(ScenarioRegistry &R);
/// Sedov-style cylindrical blast.
void registerSedovScenario(ScenarioRegistry &R);
/// Woodward-Colella double Mach reflection.
void registerDoubleMachScenario(ScenarioRegistry &R);
/// Shock-bubble interaction.
void registerShockBubbleScenario(ScenarioRegistry &R);
/// The checked-in pinned-run reference hashes (see rebaselineHint()).
void registerPinnedReferences(ScenarioRegistry &R);

} // namespace sacfd

#endif // SACFD_SOLVER_SCENARIOS_BUILTINSCENARIOS_H
