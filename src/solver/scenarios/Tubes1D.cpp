//===- solver/scenarios/Tubes1D.cpp - 1D tube scenario family -------------===//
//
// The classical 1D validation tubes as registry scenarios.  Cells are
// per unit length of the tube.
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/scenarios/BuiltinScenarios.h"

using namespace sacfd;

namespace {

/// Wraps a (Cells, GhostLayers) problem factory as a scenario Build.
template <typename FactoryT>
std::function<SpecParse<Problem<1>>(const ScenarioArgs &)>
build1(FactoryT Factory) {
  return [Factory](const ScenarioArgs &A) {
    return SpecParse<Problem<1>>::ok(Factory(A.cells(), A.ghostLayers()));
  };
}

Scenario<1> tube(std::string Name, std::string Summary, size_t DefaultCells,
                 PinnedRun Pinned,
                 std::function<SpecParse<Problem<1>>(const ScenarioArgs &)>
                     Build) {
  Scenario<1> S;
  S.Name = std::move(Name);
  S.Summary = std::move(Summary);
  S.DefaultCells = DefaultCells;
  S.Pinned = Pinned;
  S.Build = std::move(Build);
  return S;
}

} // namespace

void sacfd::registerTubes1DScenarios(ScenarioRegistry &R) {
  R.add(tube("sod", "Sod shock tube, the paper's 1D experiment (Fig. 1)",
             400, {64, 8}, build1([](size_t N, unsigned G) {
               return sodProblem(N, G);
             })));
  R.add(tube("lax", "Lax shock tube (strong contact + shock)", 400,
             {64, 8}, build1([](size_t N, unsigned G) {
               return laxProblem(N, G);
             })));
  R.add(tube("shu-osher", "Shu-Osher shock / entropy-wave interaction",
             400, {64, 8}, build1([](size_t N, unsigned G) {
               return shuOsherProblem(N, G);
             })));
  {
    Scenario<1> S = tube(
        "blast-waves",
        "Woodward-Colella interacting blast waves between walls", 800,
        {64, 8}, build1([](size_t N, unsigned G) {
          return blastWavesProblem(N, G);
        }));
    // The 1000:1 pressure jumps want a conservative step.
    S.Tuning.Cfl = 0.4;
    R.add(std::move(S));
  }
  R.add(tube("moving-contact",
             "isolated contact advecting at u = 1 (contact preservation)",
             400, {64, 8}, build1([](size_t N, unsigned G) {
               return movingContactProblem(N, G);
             })));
  R.add(tube("smooth-advection",
             "smooth density wave on a periodic tube (convergence order)",
             128, {64, 8}, build1([](size_t N, unsigned G) {
               return smoothAdvectionProblem(N, G);
             })));
  R.add(tube("uniform-1d", "uniform free stream (exactness check)", 64,
             {64, 8}, build1([](size_t N, unsigned G) {
               return uniformFlow1D(N, G);
             })));
}
