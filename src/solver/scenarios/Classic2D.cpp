//===- solver/scenarios/Classic2D.cpp - Established 2D scenarios ----------===//
//
// The paper's 2D experiment plus the standard 2D validation workloads
// that predate the gallery, as registry scenarios.
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/Scenario.h"
#include "solver/scenarios/BuiltinScenarios.h"

using namespace sacfd;

namespace {

Scenario<2> simple2(std::string Name, std::string Summary,
                    size_t DefaultCells, PinnedRun Pinned,
                    Problem<2> (*Factory)(size_t, unsigned)) {
  Scenario<2> S;
  S.Name = std::move(Name);
  S.Summary = std::move(Summary);
  S.DefaultCells = DefaultCells;
  S.Pinned = Pinned;
  S.Build = [Factory](const ScenarioArgs &A) {
    return SpecParse<Problem<2>>::ok(Factory(A.cells(), A.ghostLayers()));
  };
  return S;
}

} // namespace

void sacfd::registerClassic2DScenarios(ScenarioRegistry &R) {
  {
    Scenario<2> S;
    S.Name = "shock-interaction";
    S.Summary =
        "the paper's two-channel shock interaction (Figs. 2/3, Fig. 4 "
        "benchmark)";
    S.DefaultCells = 400;
    S.Pinned = {32, 4};
    S.Params = {{"ms", "shock Mach number >= 1 (default 2.2)"}};
    S.Build = [](const ScenarioArgs &A) {
      using Result = SpecParse<Problem<2>>;
      SpecParse<double> Ms = A.getDouble("ms", 2.2);
      if (!Ms)
        return Result::fail(Ms.Error);
      if (!(*Ms.Value >= 1.0))
        return Result::fail(
            "scenario 'shock-interaction': ms must be >= 1, got " +
            std::to_string(*Ms.Value));
      return Result::ok(
          shockInteraction2D(A.cells(), *Ms.Value, 200.0, A.ghostLayers()));
    };
    R.add(std::move(S));
  }
  {
    Scenario<2> S;
    S.Name = "riemann2d";
    S.Summary = "four-quadrant Riemann problems (Schulz-Rinne/Lax-Liu)";
    S.DefaultCells = 400;
    S.Pinned = {32, 4};
    S.Params = {{"config", "quadrant configuration: 3, 4, 6 or 12 "
                           "(default 4)"}};
    S.Build = [](const ScenarioArgs &A) {
      using Result = SpecParse<Problem<2>>;
      SpecParse<unsigned> Config = A.getUnsigned("config", 4);
      if (!Config)
        return Result::fail(Config.Error);
      unsigned C = *Config.Value;
      if (C != 3 && C != 4 && C != 6 && C != 12)
        return Result::fail(
            "scenario 'riemann2d': unsupported config " + std::to_string(C) +
            "; supported: 3, 4, 6, 12");
      return Result::ok(riemann2D(A.cells(), A.ghostLayers(), C));
    };
    R.add(std::move(S));
  }
  R.add(simple2("smooth-advection-2d",
                "smooth density wave advecting diagonally (2D order test)",
                64, {16, 4}, smoothAdvection2D));
  R.add(simple2("isentropic-vortex",
                "Shu's isentropic vortex on a periodic box (Euler order "
                "test)",
                64, {16, 4}, isentropicVortex2D));
  R.add(simple2("uniform-2d", "uniform free stream (exactness check)", 64,
                {16, 4}, uniformFlow2D));
}
