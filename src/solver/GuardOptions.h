//===- solver/GuardOptions.h - Step-guard CLI wiring -----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared command-line surface of the step guard, so every example and
/// bench exposes the same flags:
///
///   --guard              enable the guard
///   --guard-every N      steps per health-scan window
///   --guard-retries K    dt-halving retries per window
///   --density-floor X    positivity floor for rho
///   --pressure-floor X   positivity floor for p
///   --guard-no-floor     disable the floor stage (fail instead of clamp)
///   --guard-checkpoint P emergency checkpoint path on terminal failure
///   --poison-step S      fault injection: trigger after step S (0 = off)
///   --poison-cells N     fault injection: poison N spread interior cells
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_GUARDOPTIONS_H
#define SACFD_SOLVER_GUARDOPTIONS_H

#include "solver/StepGuard.h"
#include "support/CommandLine.h"

#include <string>

namespace sacfd {

/// The guard flags a CLI tool binds and forwards into a StepGuard.
struct GuardCliOptions {
  bool Enabled = false;
  unsigned Every = 1;
  unsigned Retries = 4;
  double DensityFloor = 1.0e-10;
  double PressureFloor = 1.0e-10;
  bool NoFloor = false;
  std::string CheckpointPath;
  unsigned PoisonStep = 0;
  unsigned PoisonCells = 0;

  /// Binds all guard flags onto \p CL.
  void registerWith(CommandLine &CL) {
    CL.addFlag("guard", Enabled, "enable the step guard");
    CL.addUnsigned("guard-every", Every,
                   "steps per guard health-scan window");
    CL.addUnsigned("guard-retries", Retries,
                   "dt-halving retries per window");
    CL.addDouble("density-floor", DensityFloor,
                 "positivity floor for density");
    CL.addDouble("pressure-floor", PressureFloor,
                 "positivity floor for pressure");
    CL.addFlag("guard-no-floor", NoFloor,
               "disable floor recovery (fail instead of clamp)");
    CL.addString("guard-checkpoint", CheckpointPath,
                 "emergency checkpoint path on guard failure");
    CL.addUnsigned("poison-step", PoisonStep,
                   "fault injection: poison cells after this step (0=off)");
    CL.addUnsigned("poison-cells", PoisonCells,
                   "fault injection: number of interior cells to poison");
  }

  /// Translates the parsed flags into a GuardConfig.
  GuardConfig config() const {
    GuardConfig C;
    C.Every = Every;
    C.MaxRetries = Retries;
    C.DensityFloor = DensityFloor;
    C.PressureFloor = PressureFloor;
    C.AllowFloor = !NoFloor;
    return C;
  }

  /// Arms the --poison-step/--poison-cells fault on \p Guard (no-op when
  /// disabled).  The injected fault is persistent: it re-fires on every
  /// rollback replay, exercising the floor/failure paths.
  template <unsigned Dim> void armFaults(StepGuard<Dim> &Guard) const {
    if (PoisonStep > 0 && PoisonCells > 0)
      Guard.injectFaultSpread(PoisonStep, PoisonCells,
                              /*Persistent=*/true);
  }
};

} // namespace sacfd

#endif // SACFD_SOLVER_GUARDOPTIONS_H
