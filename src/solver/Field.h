//===- solver/Field.h - Layout-aware conserved-state field -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver's conserved-state storage, generic over memory layout.
///
/// A Field<Dim> owns one pooled buffer holding Shape::count() states
/// either as an array of Cons<Dim> records (AoS, the historical layout)
/// or as NumVars 64-byte-aligned planes of doubles (SoA), each plane
/// tail-padded to a multiple of the vector width.  Element access goes
/// through at()/set() — at() returns the state by value, const-qualified
/// so a stale `field.at(I) = Q` write fails to compile instead of
/// silently updating a temporary — and bulk access goes through run() /
/// crun(), the kernels:: views both layouts share.
///
/// The AoS record array remains the interchange format: checkpoints,
/// snapshot staging and diagnostics move whole fields through
/// exportTo()/importFrom(), so a run checkpointed under one layout
/// resumes bit-exactly under the other.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_FIELD_H
#define SACFD_SOLVER_FIELD_H

#include "array/FieldPool.h"
#include "array/Layout.h"
#include "array/Shape.h"
#include "kernels/Kernels.h"

#include <cassert>
#include <cstddef>

namespace sacfd {

/// Whether a Field's lease is value-initialized (all-zero states) or
/// left with unspecified contents (for buffers fully overwritten before
/// being read — the pool's no-memset fast path).
enum class FieldInit { Zero, Uninit };

/// One conserved-state field of a fixed shape, stored AoS or SoA.
template <unsigned Dim> class Field {
public:
  Field() = default;

  /// Leases storage for \p S.count() states from \p Pool under \p L.
  /// FieldInit::Zero matches the NDArray<Cons>(Shape) construction this
  /// replaces.
  Field(FieldPool &Pool, const Shape &S, Layout L,
        FieldInit Init = FieldInit::Zero)
      : Dims(S), L(L) {
    if (L == Layout::AoS) {
      Aos = Init == FieldInit::Zero ? Pool.acquire<Cons<Dim>>(S, L)
                                    : Pool.acquireUninit<Cons<Dim>>(S, L);
    } else {
      Plane = paddedCount(S.count());
      Shape Planes({static_cast<size_t>(NumVars<Dim>), Plane});
      Soa = Init == FieldInit::Zero ? Pool.acquire<double>(Planes, L)
                                    : Pool.acquireUninit<double>(Planes, L);
    }
  }

  const Shape &shape() const { return Dims; }
  size_t size() const { return Dims.count(); }
  Layout layout() const { return L; }

  /// State at linear cell \p I.  Returned by value; const-qualified so
  /// assignment through at() is a compile error (use set()).
  const Cons<Dim> load(size_t I) const {
    return kernels::loadCons<Dim>(crun(), I);
  }
  const Cons<Dim> at(const Index &I) const { return load(Dims.linearize(I)); }

  void store(size_t I, const Cons<Dim> &Q) {
    kernels::storeCons<Dim>(run(), I, Q);
  }
  void set(const Index &I, const Cons<Dim> &Q) { store(Dims.linearize(I), Q); }

  void fill(const Cons<Dim> &Q) {
    kernels::Run<Dim> R = run();
    for (size_t I = 0, N = size(); I < N; ++I)
      kernels::storeCons<Dim>(R, I, Q);
  }

  /// Kernel view of the run of cells starting at linear offset \p Off.
  kernels::Run<Dim> run(size_t Off = 0) {
    if (L == Layout::AoS)
      return kernels::aosRun<Dim>(Aos->data() + Off);
    return kernels::soaRun<Dim>(Soa->data(), Plane, Off);
  }
  kernels::ConstRun<Dim> crun(size_t Off = 0) const {
    if (L == Layout::AoS)
      return kernels::aosRun<Dim>(Aos->data() + Off);
    return kernels::soaRun<Dim>(Soa->data(), Plane, Off);
  }

  /// Copies all states into \p Out (an array of size() records) in
  /// linear cell order — the AoS interchange format shared by
  /// checkpoints and snapshot staging.
  void exportTo(Cons<Dim> *Out) const {
    kernels::ConstRun<Dim> R = crun();
    for (size_t I = 0, N = size(); I < N; ++I)
      Out[I] = kernels::loadCons<Dim>(R, I);
  }
  void importFrom(const Cons<Dim> *In) {
    kernels::Run<Dim> R = run();
    for (size_t I = 0, N = size(); I < N; ++I)
      kernels::storeCons<Dim>(R, I, In[I]);
  }

private:
  Shape Dims;
  Layout L = Layout::AoS;
  /// Exactly one of the two leases is live, selected by L.
  FieldPool::Lease<Cons<Dim>> Aos;
  FieldPool::Lease<double> Soa;
  /// SoA plane stride in doubles (padded cell count); 0 under AoS.
  size_t Plane = 0;
};

/// Thread-local flux-line scratch: view of block \p Row out of \p Rows
/// blocks, each holding \p Len states laid out per \p L.  The scratch
/// mirrors the field layout so every kernel call mixing a field run with
/// a scratch run (accumDivergence in particular) sees one homogeneous
/// stride; under SoA the unit-stride planes are what admit the SIMD flux
/// mirror.  Grown-only per thread, like the engines' line scratch:
/// persistent worker pools allocate it once per thread, fork-join teams
/// re-pay it per region.  Every slot is written before it is read.
template <unsigned Dim>
inline kernels::Run<Dim> fluxScratchRow(unsigned Row, unsigned Rows,
                                        size_t Len, Layout L) {
  size_t Plane = paddedCount(Len);
  size_t Block = static_cast<size_t>(NumVars<Dim>) * Plane;
  size_t Needed = static_cast<size_t>(Rows) * Block;
  static thread_local NDArray<double> Buf;
  if (Buf.size() < Needed)
    Buf.reshapeDiscard(Shape{Needed});
  double *Base = Buf.data() + static_cast<size_t>(Row) * Block;
  if (L == Layout::SoA)
    return kernels::soaRun<Dim>(Base, Plane, 0);
  kernels::Run<Dim> R;
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    R.C[K] = Base + K;
  R.Stride = NumVars<Dim>;
  return R;
}

} // namespace sacfd

#endif // SACFD_SOLVER_FIELD_H
