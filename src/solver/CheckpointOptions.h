//===- solver/CheckpointOptions.h - Durable-run CLI wiring -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared command-line surface of the durability subsystem, so every
/// example and bench exposes the same flags:
///
///   --checkpoint-dir D        rotated checkpoint directory (off when empty)
///   --checkpoint-every N      accepted steps between checkpoints (0 = off)
///   --checkpoint-keep K       generations kept by rotation
///   --checkpoint-retries R    write attempts per checkpoint (>= 1)
///   --checkpoint-backoff-ms B first retry backoff, doubling per attempt
///   --resume                  restore the newest loadable generation
///                             before running (fresh start when the
///                             directory holds none)
///   --io-faults SPEC          arm the support/FaultInjection plan, e.g.
///                             "short-write=2,fail-rename"
///
/// This is pure flag plumbing: the CheckpointStore that honors these
/// options lives in io, and io/RunIo.h's setupDurableRun() is what
/// connects the two (the solver library cannot link io).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_CHECKPOINTOPTIONS_H
#define SACFD_SOLVER_CHECKPOINTOPTIONS_H

#include "support/CommandLine.h"
#include "support/FaultInjection.h"

#include <string>

namespace sacfd {

/// The durability flags a CLI tool binds and forwards into a
/// CheckpointStore (via io/RunIo.h).
struct CheckpointCliOptions {
  std::string Dir;
  unsigned Every = 100;
  unsigned Keep = 3;
  unsigned RetryAttempts = 3;
  unsigned RetryBackoffMs = 2;
  bool Resume = false;
  std::string IoFaultSpec;

  /// Binds all durability flags onto \p CL.
  void registerWith(CommandLine &CL) {
    CL.addString("checkpoint-dir", Dir,
                 "rotated checkpoint directory (empty = no periodic "
                 "checkpoints)");
    CL.addUnsigned("checkpoint-every", Every,
                   "accepted steps between checkpoints (0 = off)");
    CL.addUnsigned("checkpoint-keep", Keep,
                   "checkpoint generations kept by rotation");
    CL.addUnsigned("checkpoint-retries", RetryAttempts,
                   "write attempts per checkpoint before giving up");
    CL.addUnsigned("checkpoint-backoff-ms", RetryBackoffMs,
                   "first retry backoff in ms (doubles per attempt)");
    CL.addFlag("resume", Resume,
               "resume from the newest loadable checkpoint generation");
    CL.addString("io-faults", IoFaultSpec,
                 "fault injection: fail-open|fail-write|short-write|"
                 "torn-write|kill-write=N, bit-flip-read=N[@B], "
                 "fail-rename");
  }

  /// Whether periodic checkpointing is configured.
  bool periodic() const { return !Dir.empty() && Every > 0; }

  /// Parses and arms --io-faults.  \returns false with a structured
  /// message in \p Error on a malformed spec.
  bool resolve(std::string &Error) {
    if (IoFaultSpec.empty())
      return true;
    iofault::Plan Plan;
    std::string Why;
    if (!iofault::parsePlan(IoFaultSpec, Plan, Why)) {
      Error = "--io-faults: " + Why;
      return false;
    }
    iofault::setPlan(Plan);
    return true;
  }
};

} // namespace sacfd

#endif // SACFD_SOLVER_CHECKPOINTOPTIONS_H
