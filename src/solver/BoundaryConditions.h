//===- solver/BoundaryConditions.h - Ghost-cell boundary fill --*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Boundary conditions of the paper's two experiments:
///
///   Transmissive  zero-order extrapolation (open/outflow boundaries)
///   Reflective    solid wall: mirrored cells with the normal momentum
///                 negated
///   Inflow        frozen supersonic state (the Rankine-Hugoniot channel
///                 exits of the 2D configuration)
///
/// plus, for the workload gallery beyond the paper:
///
///   Periodic      wrap-around copies (smooth convergence cases)
///   Prescribed    ghost state as a function of the tangential coordinate
///                 and the solver time — the time-dependent shock trace
///                 the double-Mach-reflection top boundary needs
///
/// A boundary side may be split into segments along its tangential
/// coordinate — exactly the paper's left/bottom boundaries, which are
/// part channel exit and part solid wall (Fig. 2).
///
/// Ghost filling is a data-parallel loop over the tangential index space
/// and is executed through the Backend, so each side contributes one
/// parallel region per application — part of the per-step region count
/// whose cost the FIG4 experiment measures.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SOLVER_BOUNDARYCONDITIONS_H
#define SACFD_SOLVER_BOUNDARYCONDITIONS_H

#include "array/NDArray.h"
#include "array/WithLoop.h"
#include "euler/State.h"
#include "runtime/Backend.h"
#include "solver/Field.h"
#include "solver/Grid.h"

#include <array>
#include <cassert>
#include <functional>
#include <limits>
#include <vector>

namespace sacfd {

/// Boundary condition menu.
enum class BcKind {
  Transmissive,
  Reflective,
  Inflow,
  /// Wrap-around: ghost cells copy the opposite end of the axis.  Both
  /// sides of an axis must be periodic; used by the smooth-advection
  /// convergence studies.
  Periodic,
  /// Ghost state prescribed as a function of (tangential coordinate,
  /// time): the time-dependent exact-shock trace of the double Mach
  /// reflection's top boundary.  Every ghost layer of a column gets the
  /// same value (like Inflow, but varying along the side and in time).
  Prescribed,
  /// Internal shard interface: the ghost layers are owned by a
  /// neighboring shard's halo exchange, which runs *before* the
  /// boundary fill each stage.  The fill leaves them untouched.
  Halo,
};

/// One stretch of a boundary side with a single condition.
template <unsigned Dim> struct BcSegment {
  BcKind Kind = BcKind::Transmissive;
  /// Physical tangential range [TangentialLo, TangentialHi) this segment
  /// covers; meaningless in 1D (a side is a point).
  double TangentialLo = -std::numeric_limits<double>::infinity();
  double TangentialHi = std::numeric_limits<double>::infinity();
  /// Frozen ghost state for Inflow.
  Cons<Dim> InflowState = {};
  /// Ghost state for Prescribed; called per tangential column per
  /// application with the time the engines pass to applyBoundaries (the
  /// start-of-step solver clock, the same value in every RK stage — see
  /// the note on applyBoundaries).  Must be a pure function so parallel
  /// ghost fills stay deterministic.
  std::function<Cons<Dim>(double Tangential, double Time)> StateAt;
};

/// Side numbering: side = 2*axis + (0 low / 1 high).
constexpr unsigned boundarySide(unsigned Axis, bool High) {
  return 2 * Axis + (High ? 1u : 0u);
}

/// Per-side segment lists describing a full domain boundary.
template <unsigned Dim> struct BoundarySpec {
  std::array<std::vector<BcSegment<Dim>>, 2 * Dim> Side;

  /// All sides a single \p Kind (the common 1D case).
  static BoundarySpec uniform(BcKind Kind) {
    BoundarySpec Spec;
    BcSegment<Dim> Seg;
    Seg.Kind = Kind;
    for (auto &S : Spec.Side)
      S.push_back(Seg);
    return Spec;
  }

  /// Replaces one side with a single segment.
  void setSide(unsigned SideIndex, BcSegment<Dim> Seg) {
    assert(SideIndex < 2 * Dim && "side out of range");
    Side[SideIndex] = {Seg};
  }

  /// The segment covering tangential coordinate \p T on \p SideIndex.
  const BcSegment<Dim> &segmentAt(unsigned SideIndex, double T) const {
    const std::vector<BcSegment<Dim>> &Segs = Side[SideIndex];
    assert(!Segs.empty() && "side has no boundary condition");
    for (const BcSegment<Dim> &Seg : Segs)
      if (T >= Seg.TangentialLo && T < Seg.TangentialHi)
        return Seg;
    // Out-of-range tangential coordinates (corner ghosts) clamp to the
    // nearest segment.
    return T < Segs.front().TangentialLo ? Segs.front() : Segs.back();
  }
};

namespace detail {

/// Uniform element access over the two field containers the fill works
/// on: the layout-aware Field and plain NDArray staging buffers.
template <unsigned Dim>
inline Cons<Dim> ghostLoad(const NDArray<Cons<Dim>> &U, const Index &I) {
  return U.at(I);
}
template <unsigned Dim>
inline void ghostStore(NDArray<Cons<Dim>> &U, const Index &I,
                       const Cons<Dim> &Q) {
  U.at(I) = Q;
}
template <unsigned Dim>
inline Cons<Dim> ghostLoad(const Field<Dim> &U, const Index &I) {
  return U.at(I);
}
template <unsigned Dim>
inline void ghostStore(Field<Dim> &U, const Index &I, const Cons<Dim> &Q) {
  U.set(I, Q);
}

/// Fills the ghost layers of one side.  \p Tangential iterates the full
/// tangential storage extent when \p IncludeTangentialGhosts (second-axis
/// pass, so corners get defined values).
template <unsigned Dim, typename FieldT>
void applyBoundarySide(FieldT &U, const Grid<Dim> &G,
                       const BoundarySpec<Dim> &Spec, unsigned Axis,
                       bool High, bool IncludeTangentialGhosts,
                       Backend &Exec, double Time) {
  const unsigned Ng = G.ghost();
  const unsigned SideIndex = boundarySide(Axis, High);
  const std::ptrdiff_t N = static_cast<std::ptrdiff_t>(G.cells(Axis));
  const std::ptrdiff_t NgS = static_cast<std::ptrdiff_t>(Ng);

  // Tangential iteration space (rank Dim-1; a single point in 1D).
  Shape TangentialSpace = Shape::uniform(Dim == 1 ? 1 : Dim - 1, 1);
  std::array<unsigned, Dim> TangentialAxes = {};
  unsigned NumTangential = 0;
  for (unsigned A = 0; A < Dim; ++A) {
    if (A == Axis)
      continue;
    size_t Extent = IncludeTangentialGhosts
                        ? G.cells(A) + 2 * static_cast<size_t>(Ng)
                        : G.cells(A);
    TangentialSpace.dim(NumTangential) = Extent;
    TangentialAxes[NumTangential++] = A;
  }

  forEachIndex(TangentialSpace, Exec, [&](const Index &TIx, size_t) {
    // Build the storage index template for this tangential position and
    // find the segment from the physical tangential coordinate.
    Index Storage;
    Storage.Rank = Dim;
    double TangentialCoord = 0.0;
    for (unsigned T = 0; T < NumTangential; ++T) {
      unsigned A = TangentialAxes[T];
      std::ptrdiff_t Interior =
          IncludeTangentialGhosts ? TIx.Coord[T] - NgS : TIx.Coord[T];
      Storage.Coord[A] = Interior + NgS;
      TangentialCoord = G.cellCenter(A, Interior);
    }
    const BcSegment<Dim> &Seg = Spec.segmentAt(SideIndex, TangentialCoord);

    for (std::ptrdiff_t Layer = 1; Layer <= NgS; ++Layer) {
      Index Ghost = Storage;
      Index Source = Storage;
      Ghost.Coord[Axis] = High ? NgS + N - 1 + Layer : NgS - Layer;

      switch (Seg.Kind) {
      case BcKind::Transmissive:
        Source.Coord[Axis] = High ? NgS + N - 1 : NgS;
        ghostStore(U, Ghost, ghostLoad(U, Source));
        break;
      case BcKind::Reflective: {
        Source.Coord[Axis] =
            High ? NgS + N - 1 - (Layer - 1) : NgS + (Layer - 1);
        Cons<Dim> Mirrored = ghostLoad(U, Source);
        Mirrored.Mom[Axis] = -Mirrored.Mom[Axis];
        ghostStore(U, Ghost, Mirrored);
        break;
      }
      case BcKind::Inflow:
        ghostStore(U, Ghost, Seg.InflowState);
        break;
      case BcKind::Periodic:
        // Low ghost layer g copies interior cell N-g; high layer g
        // copies interior cell g-1.
        Source.Coord[Axis] = High ? NgS + (Layer - 1) : NgS + N - Layer;
        ghostStore(U, Ghost, ghostLoad(U, Source));
        break;
      case BcKind::Prescribed:
        assert(Seg.StateAt && "Prescribed segment without a state function");
        ghostStore(U, Ghost, Seg.StateAt(TangentialCoord, Time));
        break;
      case BcKind::Halo:
        // Filled by the shard halo exchange before this pass.
        break;
      }
    }
  });
}

} // namespace detail

/// Fills every ghost layer of \p U according to \p Spec.
///
/// Passes run axis by axis; later axes iterate the full tangential
/// storage extent so corner ghosts receive the composition of both
/// conditions (wall mirror of an inflow column, etc.).
///
/// \p Time feeds Prescribed segments only.  Engines pass the solver
/// clock at the start of the step for every RK stage fill of that step —
/// a deliberate (documented) first-order-in-time treatment that keeps
/// loops and DAG step modes, and both engines, bit-identical.
template <unsigned Dim, typename FieldT>
void applyBoundaries(FieldT &U, const Grid<Dim> &G,
                     const BoundarySpec<Dim> &Spec, Backend &Exec,
                     double Time = 0.0) {
  assert(U.shape() == G.storageShape() && "field/grid mismatch");
  for (unsigned Axis = 0; Axis < Dim; ++Axis) {
    bool IncludeTangentialGhosts = Axis > 0;
    detail::applyBoundarySide(U, G, Spec, Axis, /*High=*/false,
                              IncludeTangentialGhosts, Exec, Time);
    detail::applyBoundarySide(U, G, Spec, Axis, /*High=*/true,
                              IncludeTangentialGhosts, Exec, Time);
  }
}

} // namespace sacfd

#endif // SACFD_SOLVER_BOUNDARYCONDITIONS_H
