//===- io/PgmWriter.cpp - Grayscale image output ---------------------------===//

#include "io/PgmWriter.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace sacfd;

bool sacfd::writePgm(const std::string &Path, const NDArray<double> &Field,
                     std::optional<PgmRange> Range) {
  if (Field.rank() != 2 || Field.size() == 0)
    return false;

  double Lo, Hi;
  if (Range) {
    Lo = Range->Lo;
    Hi = Range->Hi;
  } else {
    Lo = Hi = Field[0];
    for (size_t I = 1; I < Field.size(); ++I) {
      Lo = std::min(Lo, Field[I]);
      Hi = std::max(Hi, Field[I]);
    }
  }
  // A flat field (Hi == Lo) carries no contrast information; render it
  // mid-gray rather than collapsing to all-black.
  bool Flat = !(Hi > Lo);
  double Scale = Flat ? 0.0 : 255.0 / (Hi - Lo);

  size_t Nx = Field.shape().dim(0);
  size_t Ny = Field.shape().dim(1);

  std::FILE *File = std::fopen(Path.c_str(), "wb");
  if (!File)
    return false;
  std::fprintf(File, "P5\n%zu %zu\n255\n", Nx, Ny);

  // Image rows top to bottom = field y from Ny-1 down to 0.
  std::vector<unsigned char> Row(Nx);
  for (size_t J = Ny; J-- > 0;) {
    for (size_t I = 0; I < Nx; ++I) {
      double V = Flat ? 128.0
                      : (Field.at(static_cast<std::ptrdiff_t>(I),
                                  static_cast<std::ptrdiff_t>(J)) -
                         Lo) *
                            Scale;
      Row[I] = static_cast<unsigned char>(std::clamp(V, 0.0, 255.0));
    }
    std::fwrite(Row.data(), 1, Nx, File);
  }

  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  return Ok;
}
