//===- io/CheckpointStore.h - Rotated checkpoint generations ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A directory of rotated checkpoint generations with crash-tolerant
/// discovery — the durability layer behind --checkpoint-dir / --resume.
///
/// Layout: one file per generation, named `ckpt-<steps, 8 digits>.sacfd`,
/// plus a `manifest.txt` listing the kept generations newest-first.  Both
/// the generation files and the manifest are written through the atomic
/// tmp → fsync → rename path of io/Checkpoint, so a crash at any
/// instant leaves either the old or the new bytes under every name,
/// never a torn file.
///
/// The manifest records the rotation state, but discovery never trusts
/// it alone: generations() unions the manifest with a directory scan, so
/// a crash between "rename checkpoint into place" and "update manifest"
/// cannot hide the newest generation, and a stale manifest entry whose
/// file was pruned is ignored.
///
/// resume() walks the generations newest-first and falls back across
/// corrupt, torn, or mismatched files, reporting every skipped
/// generation with its precise CheckpointError — the recovery behavior
/// the fault-injection tests pin down.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_CHECKPOINTSTORE_H
#define SACFD_IO_CHECKPOINTSTORE_H

#include "io/Checkpoint.h"

#include <string>
#include <utility>
#include <vector>

namespace sacfd {

/// A rotated set of checkpoint generations in one directory.
class CheckpointStore {
public:
  /// \p Keep is the number of generations retained by rotation (at least
  /// 1).  The directory is created (recursively) on the first write.
  explicit CheckpointStore(std::string Dir, unsigned Keep = 3,
                           RetryPolicy Retry = {});

  const std::string &dir() const { return Root; }
  unsigned keep() const { return Keep; }

  /// One discovered generation.
  struct Generation {
    unsigned Steps = 0;
    std::string Path;
  };

  /// Writes the solver state as generation `stepCount()` (atomically,
  /// with bounded retry on transient write failures), then rotates: old
  /// generations beyond keep() are deleted and the manifest is rewritten.
  /// A WriteFailed status with a "manifest" detail means the checkpoint
  /// itself is durably on disk but the manifest update failed.
  template <unsigned Dim> CheckpointStatus write(const EulerSolver<Dim> &S);

  /// What resume() did.
  struct ResumeOutcome {
    /// None when a generation loaded; NotFound when the store is empty;
    /// otherwise the newest generation's error (all generations failed).
    CheckpointStatus Status;
    std::string LoadedPath;
    unsigned LoadedSteps = 0;
    /// Generations that failed to load before the one that succeeded,
    /// newest first, each with its precise error.
    std::vector<std::pair<std::string, CheckpointStatus>> Skipped;

    bool resumed() const { return Status.ok() && !LoadedPath.empty(); }
  };

  /// Restores the newest loadable generation into \p S, falling back
  /// across corrupt or torn generations (each recorded in Skipped).
  template <unsigned Dim> ResumeOutcome resume(EulerSolver<Dim> &S);

  /// All discovered generations, newest first (manifest ∪ directory
  /// scan, existing files only).
  std::vector<Generation> generations() const;

  std::string manifestPath() const;

  /// "ckpt-00001234.sacfd" for step 1234.
  static std::string generationFileName(unsigned Steps);

private:
  CheckpointStatus ensureDir();
  /// Prunes generations beyond keep() and rewrites the manifest.
  CheckpointStatus rotate();
  /// Deletes staging leftovers (a generation's or the manifest's `.tmp`)
  /// abandoned by a crash mid-write.  Runs on the write and resume
  /// paths; foreign files in the directory are never touched.
  void sweepOrphanedTmp();

  std::string Root;
  unsigned Keep;
  RetryPolicy Retry;
};

extern template CheckpointStatus
CheckpointStore::write<1>(const EulerSolver<1> &);
extern template CheckpointStatus
CheckpointStore::write<2>(const EulerSolver<2> &);
extern template CheckpointStatus
CheckpointStore::write<3>(const EulerSolver<3> &);
extern template CheckpointStore::ResumeOutcome
CheckpointStore::resume<1>(EulerSolver<1> &);
extern template CheckpointStore::ResumeOutcome
CheckpointStore::resume<2>(EulerSolver<2> &);
extern template CheckpointStore::ResumeOutcome
CheckpointStore::resume<3>(EulerSolver<3> &);

} // namespace sacfd

#endif // SACFD_IO_CHECKPOINTSTORE_H
