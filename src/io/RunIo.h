//===- io/RunIo.h - io wiring for factory-built solver runs ----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The io-side half of the SolverRun workflow.  The solver library cannot
/// call into io (the dependency points the other way), so the hooks a
/// factory-built run needs from io live here:
///
///   installEmergencyCheckpoint()  wires --guard-checkpoint onto the
///                                 run's guard via io's atomic
///                                 retry-capable save path
///   setupDurableRun()             the whole durability surface: the
///                                 emergency hook, the rotated
///                                 CheckpointStore behind
///                                 --checkpoint-dir/--checkpoint-every,
///                                 and --resume discovery with fallback
///   writeRunTelemetry()           exports the telemetry snapshot with
///                                 the run's standard metadata
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_RUNIO_H
#define SACFD_IO_RUNIO_H

#include "io/Checkpoint.h"
#include "io/CheckpointStore.h"
#include "io/TelemetryExport.h"
#include "solver/SolverFactory.h"
#include "telemetry/Telemetry.h"

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

namespace sacfd {

/// Installs the --guard-checkpoint emergency dump onto \p Run's guard.
/// No-op when the run is unguarded or no checkpoint path was given.  The
/// dump goes through the same atomic tmp → fsync → rename path (with
/// bounded retry) as periodic checkpoints; failures surface both as a
/// structured stderr report and in the BreakdownReport.
template <unsigned Dim>
void installEmergencyCheckpoint(SolverRun<Dim> &Run) {
  StepGuard<Dim> *Guard = Run.guard();
  const std::string &Path = Run.config().Guard.CheckpointPath;
  if (!Guard || Path.empty())
    return;
  EulerSolver<Dim> *Solver = &Run.solver();
  RetryPolicy Retry{Run.config().Checkpoint.RetryAttempts,
                    Run.config().Checkpoint.RetryBackoffMs};
  Guard->setEmergencyCheckpoint(Path, [Solver, Retry](const std::string &P) {
    CheckpointStatus St = saveCheckpointWithRetry(P, *Solver, Retry);
    if (telemetry::enabled())
      telemetry::addCounter(
          telemetry::counterId(St.ok() ? "checkpoint.emergency_writes"
                                       : "checkpoint.emergency_failures"));
    if (St.ok())
      return std::string();
    reportCheckpointError("emergency checkpoint", St);
    return St.str();
  });
}

/// What setupDurableRun() established.
struct DurabilitySetup {
  /// False only when --resume found checkpoint generations but none of
  /// them loaded — continuing would silently restart from step 0, so the
  /// tool should abort instead.  An empty/missing directory under
  /// --resume is a fresh start, not an error.
  bool Ok = true;
  bool Resumed = false;
  unsigned ResumeSteps = 0;
  std::string ResumePath;
  /// The rotated store behind --checkpoint-dir (null when unset).  The
  /// periodic hook shares ownership, so keeping this alive is optional.
  std::shared_ptr<CheckpointStore> Store;
};

/// Wires the full durability surface of \p Run from its RunConfig: the
/// emergency-checkpoint hook, the rotated CheckpointStore, --resume
/// recovery (newest loadable generation, falling back across corrupt
/// ones with a structured report per skipped file), and the periodic
/// checkpoint hook.  Periodic write failures are reported but do not
/// stop the run — the simulation is worth more than the checkpoint.
template <unsigned Dim>
DurabilitySetup setupDurableRun(SolverRun<Dim> &Run) {
  installEmergencyCheckpoint(Run);
  DurabilitySetup Setup;
  const CheckpointCliOptions &Opt = Run.config().Checkpoint;
  if (Opt.Dir.empty())
    return Setup;
  Setup.Store = std::make_shared<CheckpointStore>(
      Opt.Dir, Opt.Keep, RetryPolicy{Opt.RetryAttempts, Opt.RetryBackoffMs});

  if (Opt.Resume) {
    CheckpointStore::ResumeOutcome Outcome = Setup.Store->resume(Run.solver());
    for (const auto &[Path, St] : Outcome.Skipped)
      reportCheckpointError(("resume: skipped " + Path).c_str(), St);
    if (Outcome.resumed()) {
      Setup.Resumed = true;
      Setup.ResumeSteps = Outcome.LoadedSteps;
      Setup.ResumePath = Outcome.LoadedPath;
      // The guard's healthy-state snapshot predates the restore.
      if (StepGuard<Dim> *Guard = Run.guard())
        Guard->resync();
    } else if (Outcome.Status.Error != CheckpointError::NotFound) {
      reportCheckpointError("resume", Outcome.Status);
      Setup.Ok = false;
      return Setup;
    }
  }

  if (Opt.periodic()) {
    std::shared_ptr<CheckpointStore> Store = Setup.Store;
    EulerSolver<Dim> *Solver = &Run.solver();
    Run.setPeriodicCheckpoint(Opt.Every, [Store, Solver] {
      CheckpointStatus St = Store->write(*Solver);
      if (!St.ok())
        reportCheckpointError("periodic checkpoint", St);
    });
  }
  return Setup;
}

/// Writes the telemetry JSON report for \p Run when --telemetry was
/// given; no-op (returning true) otherwise.  The standard metadata —
/// program, scheme, engine, backend, workers, schedule, tile, guard —
/// is emitted first, then \p Extra entries.  On failure \p Error (when
/// non-null) names the path that failed.
template <unsigned Dim>
bool writeRunTelemetry(const SolverRun<Dim> &Run, const std::string &Program,
                       TelemetryMeta Extra = {},
                       std::string *Error = nullptr) {
  const RunConfig &Cfg = Run.config();
  if (!Cfg.Telemetry.enabled())
    return true;
  TelemetryMeta Meta = {
      {"program", Program},
      {"scheme", Cfg.Scheme.str()},
      {"engine", engineKindName(Cfg.Engine)},
      {"backend", backendKindName(Cfg.Backend)},
      {"workers", std::to_string(Run.backend().workerCount())},
      {"schedule", Cfg.Sched.str()},
      {"tile", Cfg.TileCfg.str()},
      {"guard", Cfg.Guard.Enabled ? "on" : "off"},
  };
  for (auto &Entry : Extra)
    Meta.push_back(std::move(Entry));
  if (!writeTelemetryJson(Cfg.Telemetry.Path, telemetry::snapshot(), Meta,
                          Error))
    return false;
  std::printf("telemetry written to %s\n", Cfg.Telemetry.Path.c_str());
  return true;
}

} // namespace sacfd

#endif // SACFD_IO_RUNIO_H
