//===- io/RunIo.h - io wiring for factory-built solver runs ----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The io-side half of the SolverRun workflow.  The solver library cannot
/// call into io (the dependency points the other way), so the two hooks a
/// factory-built run needs from io live here:
///
///   installEmergencyCheckpoint()  wires --guard-checkpoint onto the
///                                 run's guard via io's saveCheckpoint
///   writeRunTelemetry()           exports the telemetry snapshot with
///                                 the run's standard metadata
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_RUNIO_H
#define SACFD_IO_RUNIO_H

#include "io/Checkpoint.h"
#include "io/TelemetryExport.h"
#include "solver/SolverFactory.h"

#include <cstdio>
#include <string>

namespace sacfd {

/// Installs the --guard-checkpoint emergency dump onto \p Run's guard.
/// No-op when the run is unguarded or no checkpoint path was given.
template <unsigned Dim>
void installEmergencyCheckpoint(SolverRun<Dim> &Run) {
  StepGuard<Dim> *Guard = Run.guard();
  const std::string &Path = Run.config().Guard.CheckpointPath;
  if (!Guard || Path.empty())
    return;
  EulerSolver<Dim> *Solver = &Run.solver();
  Guard->setEmergencyCheckpoint(Path, [Solver](const std::string &P) {
    return saveCheckpoint(P, *Solver);
  });
}

/// Writes the telemetry JSON report for \p Run when --telemetry was
/// given; no-op (returning true) otherwise.  The standard metadata —
/// program, scheme, engine, backend, workers, schedule, tile, guard —
/// is emitted first, then \p Extra entries.
template <unsigned Dim>
bool writeRunTelemetry(const SolverRun<Dim> &Run, const std::string &Program,
                       TelemetryMeta Extra = {}) {
  const RunConfig &Cfg = Run.config();
  if (!Cfg.Telemetry.enabled())
    return true;
  TelemetryMeta Meta = {
      {"program", Program},
      {"scheme", Cfg.Scheme.str()},
      {"engine", engineKindName(Cfg.Engine)},
      {"backend", backendKindName(Cfg.Backend)},
      {"workers", std::to_string(Run.backend().workerCount())},
      {"schedule", Cfg.Sched.str()},
      {"tile", Cfg.TileCfg.str()},
      {"guard", Cfg.Guard.Enabled ? "on" : "off"},
  };
  for (auto &Entry : Extra)
    Meta.push_back(std::move(Entry));
  if (!writeTelemetryJson(Cfg.Telemetry.Path, telemetry::snapshot(), Meta))
    return false;
  std::printf("telemetry written to %s\n", Cfg.Telemetry.Path.c_str());
  return true;
}

} // namespace sacfd

#endif // SACFD_IO_RUNIO_H
