//===- io/Checkpoint.cpp - Binary checkpoint / restart --------------------===//

#include "io/Checkpoint.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

using namespace sacfd;

namespace {

constexpr uint64_t CheckpointMagic = 0x53414346'44434B50ull; // "SACFDCKP"
constexpr uint32_t CheckpointVersion = 1;

struct AxisRecord {
  uint64_t Cells;
  double Lo;
  double Hi;
};

struct Header {
  uint64_t Magic;
  uint32_t Version;
  uint32_t Rank;
  uint32_t Ghost;
  uint32_t Steps;
  double Gamma;
  double Time;
  AxisRecord Axis[MaxRank];
};

/// RAII FILE handle.
struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

template <unsigned Dim>
Header makeHeader(const EulerSolver<Dim> &S) {
  const Grid<Dim> &G = S.problem().Domain;
  Header H = {};
  H.Magic = CheckpointMagic;
  H.Version = CheckpointVersion;
  H.Rank = Dim;
  H.Ghost = G.ghost();
  H.Steps = S.stepCount();
  H.Gamma = S.problem().G.Gamma;
  H.Time = S.time();
  for (unsigned A = 0; A < Dim; ++A)
    H.Axis[A] = {static_cast<uint64_t>(G.cells(A)), G.lo(A), G.hi(A)};
  return H;
}

template <unsigned Dim>
bool headerMatches(const Header &H, const EulerSolver<Dim> &S) {
  if (H.Magic != CheckpointMagic || H.Version != CheckpointVersion)
    return false;
  const Grid<Dim> &G = S.problem().Domain;
  if (H.Rank != Dim || H.Ghost != G.ghost() ||
      H.Gamma != S.problem().G.Gamma)
    return false;
  for (unsigned A = 0; A < Dim; ++A) {
    if (H.Axis[A].Cells != static_cast<uint64_t>(G.cells(A)) ||
        H.Axis[A].Lo != G.lo(A) || H.Axis[A].Hi != G.hi(A))
      return false;
  }
  return true;
}

} // namespace

template <unsigned Dim>
bool sacfd::saveCheckpoint(const std::string &Path,
                           const EulerSolver<Dim> &S) {
  FileHandle File(std::fopen(Path.c_str(), "wb"));
  if (!File)
    return false;

  Header H = makeHeader(S);
  if (std::fwrite(&H, sizeof(H), 1, File.get()) != 1)
    return false;

  const NDArray<Cons<Dim>> &U = S.field();
  static_assert(std::is_trivially_copyable_v<Cons<Dim>>,
                "checkpoint writes raw state bytes");
  size_t Count = U.size();
  return std::fwrite(U.data(), sizeof(Cons<Dim>), Count, File.get()) ==
         Count;
}

template <unsigned Dim>
bool sacfd::loadCheckpoint(const std::string &Path, EulerSolver<Dim> &S) {
  FileHandle File(std::fopen(Path.c_str(), "rb"));
  if (!File)
    return false;

  Header H = {};
  if (std::fread(&H, sizeof(H), 1, File.get()) != 1)
    return false;
  if (!headerMatches(H, S))
    return false;

  // Stage the payload: a truncated file must not partially overwrite the
  // live field — a failed load leaves the solver bit-identical.
  NDArray<Cons<Dim>> &U = S.field();
  size_t Count = U.size();
  std::vector<Cons<Dim>> Staged(Count);
  if (std::fread(Staged.data(), sizeof(Cons<Dim>), Count, File.get()) !=
      Count)
    return false;
  // Reject trailing garbage (truncated-next-section corruption).
  char Extra;
  if (std::fread(&Extra, 1, 1, File.get()) == 1)
    return false;

  std::copy(Staged.begin(), Staged.end(), U.data());
  S.restoreClock(H.Time, H.Steps);
  return true;
}

template bool sacfd::saveCheckpoint<1>(const std::string &,
                                       const EulerSolver<1> &);
template bool sacfd::saveCheckpoint<2>(const std::string &,
                                       const EulerSolver<2> &);
template bool sacfd::saveCheckpoint<3>(const std::string &,
                                       const EulerSolver<3> &);
template bool sacfd::loadCheckpoint<1>(const std::string &,
                                       EulerSolver<1> &);
template bool sacfd::loadCheckpoint<2>(const std::string &,
                                       EulerSolver<2> &);
template bool sacfd::loadCheckpoint<3>(const std::string &,
                                       EulerSolver<3> &);
