//===- io/Checkpoint.cpp - Crash-safe checkpoint / restart ----------------===//

#include "io/Checkpoint.h"

#include "support/FaultInjection.h"
#include "support/Hash.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

using namespace sacfd;

namespace {

constexpr uint64_t CheckpointMagic = 0x53414346'44434B50ull; // "SACFDCKP"
constexpr uint32_t VersionV1 = 1;
constexpr uint32_t VersionV2 = 2;

struct AxisRecord {
  uint64_t Cells;
  double Lo;
  double Hi;
};

/// The v1 header layout, which is also the leading part of v2.  Field
/// order and types are frozen: 112 bytes, no padding.
struct HeaderPrefix {
  uint64_t Magic;
  uint32_t Version;
  uint32_t Rank;
  uint32_t Ghost;
  uint32_t Steps;
  double Gamma;
  double Time;
  AxisRecord Axis[MaxRank];
};
static_assert(sizeof(HeaderPrefix) == 112, "frozen on-disk layout");

/// v2 = prefix + payload byte count + two FNV-1a checksums.  The header
/// checksum covers every byte of the header before itself.
struct HeaderV2 {
  HeaderPrefix P;
  uint64_t PayloadBytes;
  uint64_t PayloadChecksum;
  uint64_t HeaderChecksum;
};
static_assert(sizeof(HeaderV2) == sizeof(HeaderPrefix) + 24,
              "frozen on-disk layout");

uint64_t headerChecksum(const HeaderV2 &H) {
  return fnv1a(&H, offsetof(HeaderV2, HeaderChecksum));
}

/// RAII FILE handle.
struct FileCloser {
  void operator()(std::FILE *F) const {
    if (F)
      std::fclose(F);
  }
};
using FileHandle = std::unique_ptr<std::FILE, FileCloser>;

template <unsigned Dim>
HeaderPrefix makePrefix(const EulerSolver<Dim> &S, uint32_t Version) {
  const Grid<Dim> &G = S.problem().Domain;
  HeaderPrefix H = {};
  H.Magic = CheckpointMagic;
  H.Version = Version;
  H.Rank = Dim;
  H.Ghost = G.ghost();
  H.Steps = S.stepCount();
  H.Gamma = S.problem().G.Gamma;
  H.Time = S.time();
  for (unsigned A = 0; A < Dim; ++A)
    H.Axis[A] = {static_cast<uint64_t>(G.cells(A)), G.lo(A), G.hi(A)};
  return H;
}

/// Compatibility check of a (magic/version-validated) header against the
/// receiving solver.  \returns an empty string on match, else what
/// differs.
template <unsigned Dim>
std::string geometryMismatch(const HeaderPrefix &H,
                             const EulerSolver<Dim> &S) {
  const Grid<Dim> &G = S.problem().Domain;
  if (H.Rank != Dim)
    return "rank " + std::to_string(H.Rank) + " vs solver rank " +
           std::to_string(Dim);
  if (H.Ghost != G.ghost())
    return "ghost layers " + std::to_string(H.Ghost) + " vs " +
           std::to_string(G.ghost());
  if (H.Gamma != S.problem().G.Gamma)
    return "gamma differs";
  for (unsigned A = 0; A < Dim; ++A) {
    if (H.Axis[A].Cells != static_cast<uint64_t>(G.cells(A)))
      return "axis " + std::to_string(A) + " cells " +
             std::to_string(H.Axis[A].Cells) + " vs " +
             std::to_string(G.cells(A));
    if (H.Axis[A].Lo != G.lo(A) || H.Axis[A].Hi != G.hi(A))
      return "axis " + std::to_string(A) + " bounds differ";
  }
  return {};
}

std::string errnoDetail(const std::string &What) {
  if (errno == 0)
    return What;
  return What + ": " + std::strerror(errno);
}

void countCheckpoint(const char *Name, uint64_t Delta = 1) {
  if (!telemetry::enabled())
    return;
  telemetry::addCounter(telemetry::counterId(Name), Delta);
}

/// Best-effort fsync of the directory containing \p Path, so the rename
/// that published a checkpoint survives power loss too.
void syncParentDir(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd >= 0) {
    ::fsync(Fd);
    ::close(Fd);
  }
}

/// Size of \p F via seek/tell; -1 on failure.
long fileSize(std::FILE *F) {
  if (std::fseek(F, 0, SEEK_END) != 0)
    return -1;
  long Size = std::ftell(F);
  if (std::fseek(F, 0, SEEK_SET) != 0)
    return -1;
  return Size;
}

} // namespace

const char *sacfd::checkpointErrorName(CheckpointError E) {
  switch (E) {
  case CheckpointError::None:
    return "ok";
  case CheckpointError::NotFound:
    return "not-found";
  case CheckpointError::Truncated:
    return "truncated";
  case CheckpointError::BadMagic:
    return "bad-magic";
  case CheckpointError::VersionSkew:
    return "version-skew";
  case CheckpointError::GeometryMismatch:
    return "geometry-mismatch";
  case CheckpointError::ChecksumMismatch:
    return "checksum-mismatch";
  case CheckpointError::WriteFailed:
    return "write-failed";
  }
  return "unknown";
}

std::string CheckpointStatus::str() const {
  std::string S = checkpointErrorName(Error);
  if (!Detail.empty()) {
    S += ": ";
    S += Detail;
  }
  return S;
}

void sacfd::reportCheckpointError(const char *Context,
                                  const CheckpointStatus &St) {
  if (St.ok())
    return;
  std::fprintf(stderr, "sacfd checkpoint [%s]: %s\n", Context,
               St.str().c_str());
}

template <unsigned Dim>
CheckpointStatus sacfd::saveCheckpoint(const std::string &Path,
                                       const EulerSolver<Dim> &S) {
  static const unsigned SpanWrite = telemetry::spanId("checkpoint.write");
  telemetry::ScopedSpan Span(SpanWrite);

  auto Fail = [&](std::string Detail) {
    countCheckpoint("checkpoint.write_failures");
    return CheckpointStatus::make(CheckpointError::WriteFailed,
                                  std::move(Detail));
  };

  static_assert(std::is_trivially_copyable_v<Cons<Dim>>,
                "checkpoint writes raw state bytes");
  // Stage through the AoS interchange format: the on-disk payload is
  // layout-independent, so a run checkpointed under --layout soa resumes
  // bit-exactly under aos and vice versa.
  std::vector<Cons<Dim>> U(S.field().size());
  S.field().exportTo(U.data());
  size_t PayloadBytes = U.size() * sizeof(Cons<Dim>);

  HeaderV2 H = {};
  H.P = makePrefix(S, VersionV2);
  H.PayloadBytes = PayloadBytes;
  H.PayloadChecksum = fnv1a(U.data(), PayloadBytes);
  H.HeaderChecksum = headerChecksum(H);

  // Stage into a temp file next to the target so the final rename stays
  // on one filesystem and is atomic.
  std::string Tmp = Path + ".tmp";
  errno = 0;
  {
    FileHandle File(iofault::fopenChecked(Tmp.c_str(), "wb"));
    if (!File)
      return Fail(errnoDetail("cannot open " + Tmp));

    if (iofault::fwriteChecked(&H, sizeof(H), 1, File.get()) != 1) {
      std::remove(Tmp.c_str());
      return Fail(errnoDetail("header write to " + Tmp + " failed"));
    }
    if (iofault::fwriteChecked(U.data(), sizeof(Cons<Dim>), U.size(),
                               File.get()) != U.size()) {
      std::remove(Tmp.c_str());
      return Fail(errnoDetail("payload write to " + Tmp + " failed"));
    }
    if (std::fflush(File.get()) != 0 || ::fsync(fileno(File.get())) != 0) {
      std::remove(Tmp.c_str());
      return Fail(errnoDetail("flush of " + Tmp + " failed"));
    }
  }

  errno = 0;
  if (iofault::renameChecked(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Fail(errnoDetail("rename " + Tmp + " -> " + Path + " failed"));
  }
  syncParentDir(Path);

  countCheckpoint("checkpoint.writes");
  return CheckpointStatus::success();
}

template <unsigned Dim>
CheckpointStatus sacfd::saveCheckpointWithRetry(const std::string &Path,
                                               const EulerSolver<Dim> &S,
                                               const RetryPolicy &Retry) {
  unsigned Attempts = std::max(1u, Retry.Attempts);
  CheckpointStatus St;
  for (unsigned A = 0; A < Attempts; ++A) {
    if (A > 0) {
      countCheckpoint("checkpoint.write_retries");
      std::this_thread::sleep_for(
          std::chrono::milliseconds(Retry.BackoffMs << (A - 1)));
    }
    St = saveCheckpoint(Path, S);
    // Only WriteFailed is plausibly transient; anything else (there is
    // nothing else today on the save path) would not heal by retrying.
    if (St.Error != CheckpointError::WriteFailed)
      return St;
  }
  return St;
}

template <unsigned Dim>
CheckpointStatus sacfd::loadCheckpoint(const std::string &Path,
                                       EulerSolver<Dim> &S) {
  errno = 0;
  FileHandle File(iofault::fopenChecked(Path.c_str(), "rb"));
  if (!File)
    return CheckpointStatus::make(CheckpointError::NotFound,
                                  errnoDetail("cannot open " + Path));

  long Size = fileSize(File.get());
  if (Size < 0)
    return CheckpointStatus::make(CheckpointError::Truncated,
                                  "cannot determine size of " + Path);
  uint64_t FileBytes = static_cast<uint64_t>(Size);

  // Magic first: an 8-byte read so corruption of the leading bytes is
  // distinguishable from a short file.
  uint64_t Magic = 0;
  if (FileBytes < sizeof(Magic) ||
      iofault::freadChecked(&Magic, sizeof(Magic), 1, File.get()) != 1)
    return CheckpointStatus::make(
        CheckpointError::Truncated,
        Path + " is smaller than a checkpoint magic");
  if (Magic != CheckpointMagic)
    return CheckpointStatus::make(CheckpointError::BadMagic,
                                  Path + " is not a SacFD checkpoint");

  HeaderPrefix Prefix = {};
  Prefix.Magic = Magic;
  if (iofault::freadChecked(reinterpret_cast<char *>(&Prefix) +
                                sizeof(Magic),
                            sizeof(Prefix) - sizeof(Magic), 1,
                            File.get()) != 1)
    return CheckpointStatus::make(CheckpointError::Truncated,
                                  Path + " ends inside the header");

  if (Prefix.Version != VersionV1 && Prefix.Version != VersionV2)
    return CheckpointStatus::make(
        CheckpointError::VersionSkew,
        Path + " is format v" + std::to_string(Prefix.Version) +
            "; this build reads v1-v2");

  uint64_t ExpectedPayload =
      static_cast<uint64_t>(S.field().size()) * sizeof(Cons<Dim>);
  uint64_t HeaderBytes = Prefix.Version == VersionV2 ? sizeof(HeaderV2)
                                                     : sizeof(HeaderPrefix);
  uint64_t PayloadChecksum = 0;
  bool Checksummed = false;

  if (Prefix.Version == VersionV2) {
    HeaderV2 H = {};
    H.P = Prefix;
    if (iofault::freadChecked(&H.PayloadBytes,
                              sizeof(HeaderV2) - sizeof(HeaderPrefix), 1,
                              File.get()) != 1)
      return CheckpointStatus::make(CheckpointError::Truncated,
                                    Path + " ends inside the v2 header");
    // Integrity before compatibility: a corrupt header must not be
    // reported as a geometry mismatch.
    if (headerChecksum(H) != H.HeaderChecksum)
      return CheckpointStatus::make(CheckpointError::ChecksumMismatch,
                                    "header checksum mismatch in " + Path);
    if (std::string Why = geometryMismatch(Prefix, S); !Why.empty())
      return CheckpointStatus::make(CheckpointError::GeometryMismatch,
                                    Path + ": " + Why);
    if (H.PayloadBytes != ExpectedPayload)
      return CheckpointStatus::make(
          CheckpointError::GeometryMismatch,
          Path + ": payload of " + std::to_string(H.PayloadBytes) +
              " bytes vs solver field of " +
              std::to_string(ExpectedPayload));
    PayloadChecksum = H.PayloadChecksum;
    Checksummed = true;
  } else {
    if (std::string Why = geometryMismatch(Prefix, S); !Why.empty())
      return CheckpointStatus::make(CheckpointError::GeometryMismatch,
                                    Path + ": " + Why);
  }

  // Exact size validation, both directions: a short payload and trailing
  // garbage are equally disqualifying for a bit-identical restart.
  if (FileBytes != HeaderBytes + ExpectedPayload) {
    uint64_t Expected = HeaderBytes + ExpectedPayload;
    std::string Detail =
        FileBytes < Expected
            ? Path + " is " + std::to_string(Expected - FileBytes) +
                  " bytes short of its payload"
            : Path + " has " + std::to_string(FileBytes - Expected) +
                  " trailing bytes after its payload";
    return CheckpointStatus::make(CheckpointError::Truncated,
                                  std::move(Detail));
  }

  // Stage the payload: a failed load must leave the live field
  // bit-identical, so nothing is copied in before every check has
  // passed.
  std::vector<Cons<Dim>> Staged(S.field().size());
  if (iofault::freadChecked(Staged.data(), sizeof(Cons<Dim>), Staged.size(),
                            File.get()) != Staged.size())
    return CheckpointStatus::make(CheckpointError::Truncated,
                                  "payload read of " + Path + " came short");
  if (Checksummed &&
      fnv1a(Staged.data(), ExpectedPayload) != PayloadChecksum)
    return CheckpointStatus::make(CheckpointError::ChecksumMismatch,
                                  "payload checksum mismatch in " + Path);

  S.field().importFrom(Staged.data());
  S.restoreClock(Prefix.Time, Prefix.Steps);
  return CheckpointStatus::success();
}

template <unsigned Dim>
CheckpointStatus sacfd::saveCheckpointLegacyV1(const std::string &Path,
                                               const EulerSolver<Dim> &S) {
  // Plain stdio on purpose: the legacy writer exists to produce v1 bytes
  // for compatibility tests, not to exercise the fault machinery.
  FileHandle File(std::fopen(Path.c_str(), "wb"));
  if (!File)
    return CheckpointStatus::make(CheckpointError::WriteFailed,
                                  "cannot open " + Path);
  HeaderPrefix H = makePrefix(S, VersionV1);
  std::vector<Cons<Dim>> U(S.field().size());
  S.field().exportTo(U.data());
  if (std::fwrite(&H, sizeof(H), 1, File.get()) != 1 ||
      std::fwrite(U.data(), sizeof(Cons<Dim>), U.size(), File.get()) !=
          U.size())
    return CheckpointStatus::make(CheckpointError::WriteFailed,
                                  "write to " + Path + " failed");
  return CheckpointStatus::success();
}

template CheckpointStatus sacfd::saveCheckpoint<1>(const std::string &,
                                                   const EulerSolver<1> &);
template CheckpointStatus sacfd::saveCheckpoint<2>(const std::string &,
                                                   const EulerSolver<2> &);
template CheckpointStatus sacfd::saveCheckpoint<3>(const std::string &,
                                                   const EulerSolver<3> &);
template CheckpointStatus
sacfd::saveCheckpointWithRetry<1>(const std::string &, const EulerSolver<1> &,
                                  const RetryPolicy &);
template CheckpointStatus
sacfd::saveCheckpointWithRetry<2>(const std::string &, const EulerSolver<2> &,
                                  const RetryPolicy &);
template CheckpointStatus
sacfd::saveCheckpointWithRetry<3>(const std::string &, const EulerSolver<3> &,
                                  const RetryPolicy &);
template CheckpointStatus sacfd::loadCheckpoint<1>(const std::string &,
                                                   EulerSolver<1> &);
template CheckpointStatus sacfd::loadCheckpoint<2>(const std::string &,
                                                   EulerSolver<2> &);
template CheckpointStatus sacfd::loadCheckpoint<3>(const std::string &,
                                                   EulerSolver<3> &);
template CheckpointStatus
sacfd::saveCheckpointLegacyV1<1>(const std::string &, const EulerSolver<1> &);
template CheckpointStatus
sacfd::saveCheckpointLegacyV1<2>(const std::string &, const EulerSolver<2> &);
template CheckpointStatus
sacfd::saveCheckpointLegacyV1<3>(const std::string &, const EulerSolver<3> &);
