//===- io/VtkWriter.h - Legacy VTK structured output ------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Legacy-format VTK structured-points writer so 2D runs open directly
/// in ParaView/VisIt.  ASCII format, density/pressure/velocity fields.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_VTKWRITER_H
#define SACFD_IO_VTKWRITER_H

#include "solver/EulerSolver.h"

#include <string>

namespace sacfd {

/// Writes the interior primitive fields of a 2D solver as legacy VTK
/// STRUCTURED_POINTS.  \returns false on I/O failure.
bool writeVtk(const std::string &Path, const EulerSolver<2> &Solver);

} // namespace sacfd

#endif // SACFD_IO_VTKWRITER_H
