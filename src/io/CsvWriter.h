//===- io/CsvWriter.h - CSV output -------------------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV emission for profiles and benchmark tables.  Writers
/// return false on I/O failure (recoverable error policy: no exceptions).
/// A missing parent directory is created on the fly; when that (or the
/// open itself) fails, the optional \p Error out-parameter receives a
/// message naming the offending path.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_CSVWRITER_H
#define SACFD_IO_CSVWRITER_H

#include "io/FieldExport.h"

#include <string>
#include <vector>

namespace sacfd {

/// Writes a CSV file with \p Header (comma-joined) and numeric \p Rows,
/// creating the parent directory if needed.
/// \returns false if the file cannot be written; \p Error (when non-null)
/// then names the path that failed.
bool writeCsv(const std::string &Path,
              const std::vector<std::string> &Header,
              const std::vector<std::vector<double>> &Rows,
              std::string *Error = nullptr);

/// Writes a 1D profile as x,rho,u,p.
bool writeProfileCsv(const std::string &Path,
                     const std::vector<ProfileSample> &Profile,
                     std::string *Error = nullptr);

} // namespace sacfd

#endif // SACFD_IO_CSVWRITER_H
