//===- io/CsvWriter.h - CSV output -------------------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal CSV emission for profiles and benchmark tables.  Writers
/// return false on I/O failure (recoverable error policy: no exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_CSVWRITER_H
#define SACFD_IO_CSVWRITER_H

#include "io/FieldExport.h"

#include <string>
#include <vector>

namespace sacfd {

/// Writes a CSV file with \p Header (comma-joined) and numeric \p Rows.
/// \returns false if the file cannot be written.
bool writeCsv(const std::string &Path,
              const std::vector<std::string> &Header,
              const std::vector<std::vector<double>> &Rows);

/// Writes a 1D profile as x,rho,u,p.
bool writeProfileCsv(const std::string &Path,
                     const std::vector<ProfileSample> &Profile);

} // namespace sacfd

#endif // SACFD_IO_CSVWRITER_H
