//===- io/PathUtil.cpp - Output path helpers ------------------------------===//

#include "io/PathUtil.h"

#include <filesystem>
#include <system_error>

using namespace sacfd;

bool sacfd::ensureParentDir(const std::string &Path, std::string *Error) {
  namespace fs = std::filesystem;
  fs::path Parent = fs::path(Path).parent_path();
  if (Parent.empty())
    return true;
  std::error_code Ec;
  fs::create_directories(Parent, Ec);
  // create_directories reports an error for an already-existing directory
  // on some implementations; only a path that still is not a directory is
  // a real failure.
  if (Ec && !fs::is_directory(Parent)) {
    if (Error)
      *Error = "cannot create directory '" + Parent.string() + "' for '" +
               Path + "': " + Ec.message();
    return false;
  }
  return true;
}
