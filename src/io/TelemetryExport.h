//===- io/TelemetryExport.h - Metrics report serialization -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON and CSV serialization of a telemetry::MetricsReport.
///
/// The JSON document (schema tag "sacfd-telemetry-1") is the machine-
/// readable artifact the examples and fig* benches emit under
/// --telemetry; it carries run metadata (free-form key/value pairs),
/// the merged span statistics, the counter totals, and the per-step
/// gauge series:
///
///   {
///     "schema": "sacfd-telemetry-1",
///     "run": {"example": "sod_shock_tube", ...},
///     "spans": [{"name": "region.serial", "count": 123,
///                "total_ns": 456, "min_ns": 1, "max_ns": 9,
///                "mean_ns": 3.7}, ...],
///     "counters": [{"name": "solver.steps", "total": 200}, ...],
///     "gauges": [{"name": "step.dt",
///                 "samples": [{"step": 1, "value": 1e-3}, ...]}, ...]
///   }
///
/// The CSV form flattens the same report into long-format rows
/// (kind,name,step,value,...) for spreadsheet-style post-processing.
/// Writers return false on I/O failure (no exceptions), like the other
/// io/ writers.  Gauge values are printed with round-trip precision so
/// drift measured from the JSON equals drift measured in-process.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_TELEMETRYEXPORT_H
#define SACFD_IO_TELEMETRYEXPORT_H

#include "telemetry/Telemetry.h"

#include <string>
#include <utility>
#include <vector>

namespace sacfd {

/// Free-form run metadata serialized into the JSON "run" object (and CSV
/// comment header): example name, grid, scheme, backend, workers...
using TelemetryMeta = std::vector<std::pair<std::string, std::string>>;

/// Writes \p Report as a "sacfd-telemetry-1" JSON document, creating the
/// parent directory if needed.
/// \returns false if the file cannot be written; \p Error (when non-null)
/// then names the path that failed.
bool writeTelemetryJson(const std::string &Path,
                        const telemetry::MetricsReport &Report,
                        const TelemetryMeta &Meta = {},
                        std::string *Error = nullptr);

/// Writes \p Report as long-format CSV
/// (kind,name,count,total_ns,min_ns,max_ns,step,value), creating the
/// parent directory if needed.
/// \returns false if the file cannot be written; \p Error (when non-null)
/// then names the path that failed.
bool writeTelemetryCsv(const std::string &Path,
                       const telemetry::MetricsReport &Report,
                       std::string *Error = nullptr);

} // namespace sacfd

#endif // SACFD_IO_TELEMETRYEXPORT_H
