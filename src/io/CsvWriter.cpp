//===- io/CsvWriter.cpp - CSV output ---------------------------------------===//

#include "io/CsvWriter.h"

#include "io/PathUtil.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace sacfd;

bool sacfd::writeCsv(const std::string &Path,
                     const std::vector<std::string> &Header,
                     const std::vector<std::vector<double>> &Rows,
                     std::string *Error) {
  if (!ensureParentDir(Path, Error))
    return false;
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File) {
    if (Error)
      *Error = "cannot open '" + Path + "': " + std::strerror(errno);
    return false;
  }

  for (size_t I = 0; I < Header.size(); ++I)
    std::fprintf(File, "%s%s", Header[I].c_str(),
                 I + 1 < Header.size() ? "," : "\n");
  for (const std::vector<double> &Row : Rows)
    for (size_t I = 0; I < Row.size(); ++I)
      std::fprintf(File, "%.12g%s", Row[I], I + 1 < Row.size() ? "," : "\n");

  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  if (!Ok && Error)
    *Error = "write error on '" + Path + "'";
  return Ok;
}

bool sacfd::writeProfileCsv(const std::string &Path,
                            const std::vector<ProfileSample> &Profile,
                            std::string *Error) {
  std::vector<std::vector<double>> Rows;
  Rows.reserve(Profile.size());
  for (const ProfileSample &S : Profile)
    Rows.push_back({S.X, S.Rho, S.U, S.P});
  return writeCsv(Path, {"x", "rho", "u", "p"}, Rows, Error);
}
