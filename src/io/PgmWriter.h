//===- io/PgmWriter.h - Grayscale image output ------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portable graymap (PGM) output for 2D scalar fields — the Fig. 3
/// snapshot images.  Binary P5 format, 8-bit, min/max normalized (or a
/// caller-fixed range for comparable frames).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_PGMWRITER_H
#define SACFD_IO_PGMWRITER_H

#include "array/NDArray.h"

#include <optional>
#include <string>

namespace sacfd {

/// Optional fixed normalization range for writePgm.
struct PgmRange {
  double Lo;
  double Hi;
};

/// Writes a rank-2 scalar field as a binary PGM image.
///
/// Axis 0 of the field maps to image x, axis 1 to image y with row 0 at
/// the bottom (flow-field convention).  Values normalize over the field
/// min/max unless \p Range fixes them.  \returns false on I/O failure or
/// rank != 2.
bool writePgm(const std::string &Path, const NDArray<double> &Field,
              std::optional<PgmRange> Range = std::nullopt);

} // namespace sacfd

#endif // SACFD_IO_PGMWRITER_H
