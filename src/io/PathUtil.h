//===- io/PathUtil.h - Output path helpers ---------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared output-path handling for the io/ writers: every writer that
/// creates a file first makes sure the parent directory exists, so
/// `--telemetry-out runs/today/metrics.json` works without a manual
/// mkdir, and a genuinely uncreatable path yields a structured error
/// naming the offending directory instead of a bare-bool failure.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_PATHUTIL_H
#define SACFD_IO_PATHUTIL_H

#include <string>

namespace sacfd {

/// Creates the parent directory of \p Path (recursively) if it does not
/// exist.  A path without a directory component trivially succeeds.
///
/// \returns false when the directory cannot be created; \p Error (when
/// non-null) then receives a message naming the directory, e.g.
/// "cannot create directory 'runs/today' for 'runs/today/out.csv': ...".
bool ensureParentDir(const std::string &Path, std::string *Error = nullptr);

} // namespace sacfd

#endif // SACFD_IO_PATHUTIL_H
