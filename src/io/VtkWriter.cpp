//===- io/VtkWriter.cpp - Legacy VTK structured output ----------------------===//

#include "io/VtkWriter.h"

#include <cstdio>

using namespace sacfd;

bool sacfd::writeVtk(const std::string &Path, const EulerSolver<2> &Solver) {
  const Grid<2> &G = Solver.problem().Domain;
  size_t Nx = G.cells(0), Ny = G.cells(1);

  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return false;

  std::fprintf(File, "# vtk DataFile Version 3.0\n");
  std::fprintf(File, "sacfd %s t=%.6g\n", Solver.problem().Name.c_str(),
               Solver.time());
  std::fprintf(File, "ASCII\nDATASET STRUCTURED_POINTS\n");
  std::fprintf(File, "DIMENSIONS %zu %zu 1\n", Nx, Ny);
  std::fprintf(File, "ORIGIN %.9g %.9g 0\n", G.lo(0) + 0.5 * G.dx(0),
               G.lo(1) + 0.5 * G.dx(1));
  std::fprintf(File, "SPACING %.9g %.9g 1\n", G.dx(0), G.dx(1));
  std::fprintf(File, "POINT_DATA %zu\n", Nx * Ny);

  // VTK structured points iterate x fastest.
  auto forEachCell = [&](auto &&Fn) {
    for (size_t J = 0; J < Ny; ++J)
      for (size_t I = 0; I < Nx; ++I)
        Fn(Solver.primitiveAt(Index{static_cast<std::ptrdiff_t>(I),
                                    static_cast<std::ptrdiff_t>(J)}));
  };

  std::fprintf(File, "SCALARS density double 1\nLOOKUP_TABLE default\n");
  forEachCell([&](const Prim<2> &W) { std::fprintf(File, "%.9g\n", W.Rho); });

  std::fprintf(File, "SCALARS pressure double 1\nLOOKUP_TABLE default\n");
  forEachCell([&](const Prim<2> &W) { std::fprintf(File, "%.9g\n", W.P); });

  std::fprintf(File, "VECTORS velocity double\n");
  forEachCell([&](const Prim<2> &W) {
    std::fprintf(File, "%.9g %.9g 0\n", W.Vel[0], W.Vel[1]);
  });

  bool Ok = std::ferror(File) == 0;
  std::fclose(File);
  return Ok;
}
