//===- io/CheckpointStore.cpp - Rotated checkpoint generations ------------===//

#include "io/CheckpointStore.h"

#include "support/FaultInjection.h"
#include "support/StrUtil.h"
#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include <fcntl.h>
#include <unistd.h>

using namespace sacfd;

namespace fs = std::filesystem;

namespace {

constexpr const char *ManifestFile = "manifest.txt";
constexpr const char *GenPrefix = "ckpt-";
constexpr const char *GenSuffix = ".sacfd";

void countStore(const char *Name, uint64_t Delta = 1) {
  if (!telemetry::enabled())
    return;
  telemetry::addCounter(telemetry::counterId(Name), Delta);
}

/// Parses "ckpt-00001234.sacfd" into its step count; nullopt for any
/// other name (including the manifest and leftover .tmp files).
std::optional<unsigned> stepsOfGenerationName(std::string_view Name) {
  std::string_view Prefix = GenPrefix, Suffix = GenSuffix;
  if (Name.size() != Prefix.size() + 8 + Suffix.size() ||
      Name.substr(0, Prefix.size()) != Prefix ||
      Name.substr(Name.size() - Suffix.size()) != Suffix)
    return std::nullopt;
  std::string_view Digits = Name.substr(Prefix.size(), 8);
  std::optional<unsigned long long> Steps = parseUnsigned(Digits);
  if (!Steps || *Steps > UINT32_MAX)
    return std::nullopt;
  return static_cast<unsigned>(*Steps);
}

} // namespace

CheckpointStore::CheckpointStore(std::string Dir, unsigned Keep,
                                 RetryPolicy Retry)
    : Root(std::move(Dir)), Keep(std::max(1u, Keep)), Retry(Retry) {}

std::string CheckpointStore::generationFileName(unsigned Steps) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%s%08u%s", GenPrefix, Steps, GenSuffix);
  return Buf;
}

std::string CheckpointStore::manifestPath() const {
  return Root + "/" + ManifestFile;
}

CheckpointStatus CheckpointStore::ensureDir() {
  std::error_code Ec;
  fs::create_directories(Root, Ec);
  if (Ec && !fs::is_directory(Root))
    return CheckpointStatus::make(CheckpointError::WriteFailed,
                                  "cannot create checkpoint directory " +
                                      Root + ": " + Ec.message());
  return CheckpointStatus::success();
}

void CheckpointStore::sweepOrphanedTmp() {
  // The atomic write path is stage-to-.tmp, fsync, rename; a crash
  // between stage and rename strands the .tmp forever (discovery ignores
  // it, rotation prunes only real generations).  Deleting is always safe:
  // rename is atomic, so a .tmp is never the only copy of durable data.
  // Only names our own writer stages are swept — a generation file's or
  // the manifest's — never foreign files that happen to live here.
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Root, Ec)) {
    std::string Name = E.path().filename().string();
    std::string_view View = Name;
    constexpr std::string_view TmpSuffix = ".tmp";
    if (View.size() <= TmpSuffix.size() ||
        View.substr(View.size() - TmpSuffix.size()) != TmpSuffix)
      continue;
    std::string_view Stem = View.substr(0, View.size() - TmpSuffix.size());
    if (!stepsOfGenerationName(Stem) && Stem != ManifestFile)
      continue;
    std::error_code RmEc;
    if (fs::remove(E.path(), RmEc))
      countStore("checkpoint.tmp_swept");
  }
}

std::vector<CheckpointStore::Generation>
CheckpointStore::generations() const {
  // Steps -> path; the map both dedups the manifest ∪ scan union and
  // yields the ascending order we reverse into newest-first.
  std::map<unsigned, std::string> Found;

  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Root, Ec)) {
    std::string Name = E.path().filename().string();
    if (std::optional<unsigned> Steps = stepsOfGenerationName(Name))
      Found.emplace(*Steps, E.path().string());
  }

  std::ifstream Manifest(manifestPath());
  std::string Line;
  while (std::getline(Manifest, Line)) {
    std::string_view Name = trim(Line);
    if (Name.empty() || Name.front() == '#')
      continue;
    if (std::optional<unsigned> Steps = stepsOfGenerationName(Name)) {
      std::string Path = Root + "/" + std::string(Name);
      if (!Found.count(*Steps) && fs::exists(Path, Ec))
        Found.emplace(*Steps, std::move(Path));
    }
  }

  std::vector<Generation> Gens;
  for (auto It = Found.rbegin(); It != Found.rend(); ++It)
    Gens.push_back({It->first, It->second});
  return Gens;
}

CheckpointStatus CheckpointStore::rotate() {
  std::vector<Generation> Gens = generations();

  for (size_t I = Keep; I < Gens.size(); ++I) {
    std::error_code Ec;
    if (fs::remove(Gens[I].Path, Ec))
      countStore("checkpoint.generations_pruned");
  }
  Gens.resize(std::min<size_t>(Gens.size(), Keep));

  // The manifest gets the same torn-write protection as the checkpoints
  // themselves: stage, flush, fsync, rename.
  std::string Manifest = manifestPath();
  std::string Tmp = Manifest + ".tmp";
  auto ManifestFail = [&](const std::string &What) {
    std::remove(Tmp.c_str());
    countStore("checkpoint.manifest_failures");
    return CheckpointStatus::make(CheckpointError::WriteFailed,
                                  "manifest update failed (" + What +
                                      "); the checkpoint itself is on disk");
  };

  std::string Text = "# sacfd checkpoint manifest, newest first\n";
  for (const Generation &G : Gens)
    Text += generationFileName(G.Steps) + "\n";

  std::FILE *F = iofault::fopenChecked(Tmp.c_str(), "wb");
  if (!F)
    return ManifestFail("open " + Tmp);
  bool Written =
      iofault::fwriteChecked(Text.data(), 1, Text.size(), F) == Text.size();
  bool Flushed = std::fflush(F) == 0 && ::fsync(fileno(F)) == 0;
  std::fclose(F);
  if (!Written || !Flushed)
    return ManifestFail("write " + Tmp);
  if (iofault::renameChecked(Tmp.c_str(), Manifest.c_str()) != 0)
    return ManifestFail("rename onto " + Manifest);
  return CheckpointStatus::success();
}

template <unsigned Dim>
CheckpointStatus CheckpointStore::write(const EulerSolver<Dim> &S) {
  if (CheckpointStatus St = ensureDir(); !St.ok())
    return St;
  // Reclaim staging leftovers from a previous crashed writer before
  // staging our own (ours is not yet on disk, so it cannot be swept).
  sweepOrphanedTmp();
  std::string Path = Root + "/" + generationFileName(S.stepCount());
  if (CheckpointStatus St = saveCheckpointWithRetry(Path, S, Retry);
      !St.ok())
    return St;
  return rotate();
}

template <unsigned Dim>
CheckpointStore::ResumeOutcome CheckpointStore::resume(EulerSolver<Dim> &S) {
  ResumeOutcome Out;
  sweepOrphanedTmp();
  std::vector<Generation> Gens = generations();
  if (Gens.empty()) {
    Out.Status = CheckpointStatus::make(
        CheckpointError::NotFound, "no checkpoint generations in " + Root);
    return Out;
  }

  for (const Generation &G : Gens) {
    CheckpointStatus St = loadCheckpoint(G.Path, S);
    if (St.ok()) {
      Out.LoadedPath = G.Path;
      Out.LoadedSteps = G.Steps;
      countStore("checkpoint.resumes");
      if (!Out.Skipped.empty())
        countStore("checkpoint.resume_fallbacks");
      return Out;
    }
    countStore("checkpoint.corrupt_skipped");
    Out.Skipped.emplace_back(G.Path, std::move(St));
  }

  Out.Status = CheckpointStatus::make(
      Out.Skipped.front().second.Error,
      "no loadable generation among " + std::to_string(Gens.size()) +
          " in " + Root + "; newest: " + Out.Skipped.front().second.Detail);
  return Out;
}

template CheckpointStatus CheckpointStore::write<1>(const EulerSolver<1> &);
template CheckpointStatus CheckpointStore::write<2>(const EulerSolver<2> &);
template CheckpointStatus CheckpointStore::write<3>(const EulerSolver<3> &);
template CheckpointStore::ResumeOutcome
CheckpointStore::resume<1>(EulerSolver<1> &);
template CheckpointStore::ResumeOutcome
CheckpointStore::resume<2>(EulerSolver<2> &);
template CheckpointStore::ResumeOutcome
CheckpointStore::resume<3>(EulerSolver<3> &);
