//===- io/FieldExport.h - Extract plottable fields --------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts solver fields into plain scalar arrays/profiles for the
/// writers (CSV/PGM/VTK) and the terminal plots.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_FIELDEXPORT_H
#define SACFD_IO_FIELDEXPORT_H

#include "array/NDArray.h"
#include "solver/EulerSolver.h"

#include <cmath>
#include <vector>

namespace sacfd {

/// Which primitive scalar to extract.
enum class FieldQuantity {
  Density,
  Pressure,
  VelocityX,
  VelocityY,
  MachNumber,
};

/// Samples one primitive quantity of \p W.
template <unsigned Dim>
double sampleQuantity(const Prim<Dim> &W, const Gas &G, FieldQuantity Q) {
  switch (Q) {
  case FieldQuantity::Density:
    return W.Rho;
  case FieldQuantity::Pressure:
    return W.P;
  case FieldQuantity::VelocityX:
    return W.Vel[0];
  case FieldQuantity::VelocityY:
    return Dim >= 2 ? W.Vel[Dim - 1] : 0.0;
  case FieldQuantity::MachNumber: {
    double Q2 = 0.0;
    for (unsigned D = 0; D < Dim; ++D)
      Q2 += W.Vel[D] * W.Vel[D];
    return std::sqrt(Q2) / G.soundSpeed(W.Rho, W.P);
  }
  }
  return 0.0;
}

/// Interior scalar field of a 2D solver.
inline NDArray<double> scalarField(const EulerSolver<2> &S,
                                   FieldQuantity Q) {
  const Grid<2> &G = S.problem().Domain;
  NDArray<double> Out(G.interiorShape());
  Shape Interior = G.interiorShape();
  Index Iv = Interior.delinearize(0);
  size_t Linear = 0;
  do {
    Out[Linear++] = sampleQuantity(S.primitiveAt(Iv), S.problem().G, Q);
  } while (Interior.increment(Iv));
  return Out;
}

/// One sample of a 1D profile: position plus primitive state.
struct ProfileSample {
  double X;
  double Rho;
  double U;
  double P;
};

/// The full 1D interior profile of a solver.
inline std::vector<ProfileSample> profileOf(const EulerSolver<1> &S) {
  const Grid<1> &G = S.problem().Domain;
  std::vector<ProfileSample> Out;
  Out.reserve(G.cells(0));
  for (std::ptrdiff_t I = 0;
       I < static_cast<std::ptrdiff_t>(G.cells(0)); ++I) {
    Prim<1> W = S.primitiveAt(Index{I});
    Out.push_back({G.cellCenter(0, I), W.Rho, W.Vel[0], W.P});
  }
  return Out;
}

/// Numerical schlieren field: exp(-k |grad rho| / max|grad rho|), the
/// standard visualization of Fig. 3-style snapshots.
NDArray<double> schlierenField(const EulerSolver<2> &S, double Contrast = 15.0);

} // namespace sacfd

#endif // SACFD_IO_FIELDEXPORT_H
