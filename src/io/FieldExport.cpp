//===- io/FieldExport.cpp - Extract plottable fields ----------------------===//

#include "io/FieldExport.h"

#include <algorithm>

using namespace sacfd;

NDArray<double> sacfd::schlierenField(const EulerSolver<2> &S,
                                      double Contrast) {
  NDArray<double> Rho = scalarField(S, FieldQuantity::Density);
  const Grid<2> &G = S.problem().Domain;
  std::ptrdiff_t Nx = static_cast<std::ptrdiff_t>(G.cells(0));
  std::ptrdiff_t Ny = static_cast<std::ptrdiff_t>(G.cells(1));

  NDArray<double> Grad(Rho.shape());
  double MaxGrad = 0.0;
  for (std::ptrdiff_t I = 0; I < Nx; ++I)
    for (std::ptrdiff_t J = 0; J < Ny; ++J) {
      // One-sided differences at the domain edge.
      std::ptrdiff_t Im = std::max<std::ptrdiff_t>(I - 1, 0);
      std::ptrdiff_t Ip = std::min<std::ptrdiff_t>(I + 1, Nx - 1);
      std::ptrdiff_t Jm = std::max<std::ptrdiff_t>(J - 1, 0);
      std::ptrdiff_t Jp = std::min<std::ptrdiff_t>(J + 1, Ny - 1);
      double Dx = (Rho.at(Ip, J) - Rho.at(Im, J)) /
                  (G.dx(0) * static_cast<double>(Ip - Im));
      double Dy = (Rho.at(I, Jp) - Rho.at(I, Jm)) /
                  (G.dx(1) * static_cast<double>(Jp - Jm));
      double Mag = std::sqrt(Dx * Dx + Dy * Dy);
      Grad.at(I, J) = Mag;
      MaxGrad = std::max(MaxGrad, Mag);
    }

  if (MaxGrad <= 0.0) {
    Grad.fill(1.0);
    return Grad;
  }
  for (size_t K = 0; K < Grad.size(); ++K)
    Grad[K] = std::exp(-Contrast * Grad[K] / MaxGrad);
  return Grad;
}
