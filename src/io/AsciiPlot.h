//===- io/AsciiPlot.h - Terminal plots ---------------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Character-cell rendering of 1D profiles and 2D fields, so the FIG1
/// bench and the quickstart example can show the wave structure (the
/// three frames of the paper's Fig. 1) directly in the terminal.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_ASCIIPLOT_H
#define SACFD_IO_ASCIIPLOT_H

#include "array/NDArray.h"

#include <string>
#include <vector>

namespace sacfd {

/// Renders \p Values as a Height-row ASCII line plot ('*' marks, axes
/// annotated with the value range).
std::string asciiLinePlot(const std::vector<double> &Values,
                          unsigned Width = 72, unsigned Height = 16);

/// Renders a rank-2 field as an ASCII density map using a dark-to-light
/// character ramp; axis 1 (y) points up.
std::string asciiFieldMap(const NDArray<double> &Field,
                          unsigned MaxWidth = 72, unsigned MaxHeight = 28);

} // namespace sacfd

#endif // SACFD_IO_ASCIIPLOT_H
