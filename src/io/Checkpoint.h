//===- io/Checkpoint.h - Binary checkpoint / restart -----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Save/restore of a solver's full state (field including ghosts, clock,
/// step count) for long-run workflows: a restarted run continues
/// bit-identically to an uninterrupted one (tested).
///
/// Format: a fixed header (magic, version, rank, gamma, grid geometry,
/// time, steps) followed by the raw field bytes.  Native endianness and
/// IEEE-754 doubles — a single-machine format, not an archival one.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_CHECKPOINT_H
#define SACFD_IO_CHECKPOINT_H

#include "solver/EulerSolver.h"

#include <string>

namespace sacfd {

/// Writes the solver's full state to \p Path.  \returns false on I/O
/// failure.
template <unsigned Dim>
bool saveCheckpoint(const std::string &Path, const EulerSolver<Dim> &S);

/// Restores a checkpoint into \p S.
///
/// The solver must already be constructed on the *same problem geometry*
/// (rank, cell counts, ghost layers, bounds, gamma); the file is
/// validated against it and the load is rejected on any mismatch,
/// corruption, or version skew.  On success the field, time and step
/// count are replaced and the run continues bit-identically.
template <unsigned Dim>
bool loadCheckpoint(const std::string &Path, EulerSolver<Dim> &S);

extern template bool saveCheckpoint<1>(const std::string &,
                                       const EulerSolver<1> &);
extern template bool saveCheckpoint<2>(const std::string &,
                                       const EulerSolver<2> &);
extern template bool saveCheckpoint<3>(const std::string &,
                                       const EulerSolver<3> &);
extern template bool loadCheckpoint<1>(const std::string &,
                                       EulerSolver<1> &);
extern template bool loadCheckpoint<2>(const std::string &,
                                       EulerSolver<2> &);
extern template bool loadCheckpoint<3>(const std::string &,
                                       EulerSolver<3> &);

} // namespace sacfd

#endif // SACFD_IO_CHECKPOINT_H
