//===- io/Checkpoint.h - Crash-safe checkpoint / restart -------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Save/restore of a solver's full state (field including ghosts, clock,
/// step count) for long-run workflows: a restarted run continues
/// bit-identically to an uninterrupted one (tested, including across a
/// SIGKILL mid-write).
///
/// Format v2: a fixed header (magic, version, rank, gamma, grid geometry,
/// time, steps, payload byte count) carrying an FNV-1a checksum of itself
/// and of the field payload, followed by the raw field bytes.  Native
/// endianness and IEEE-754 doubles — a single-machine format, not an
/// archival one.  v1 files (no checksums, no payload count) still load.
///
/// Durability contract of saveCheckpoint():
///   - the bytes are staged in `<path>.tmp`, flushed and fsynced, then
///     renamed onto the final path — a reader never observes a torn
///     file under the real name, and a failed save leaves any previous
///     checkpoint at that path intact;
///   - every file operation routes through support/FaultInjection, so
///     each failure mode is constructible in tests.
///
/// All entry points return a CheckpointStatus carrying a CheckpointError
/// from a closed taxonomy plus a human-readable detail line; there are
/// deliberately no bool-returning forms.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_IO_CHECKPOINT_H
#define SACFD_IO_CHECKPOINT_H

#include "solver/EulerSolver.h"

#include <string>

namespace sacfd {

/// Everything that can go wrong saving or loading a checkpoint.  Load
/// errors are ordered by detection: existence, then file integrity, then
/// compatibility with the receiving solver.
enum class CheckpointError {
  None,             ///< success
  NotFound,         ///< the file cannot be opened for reading
  Truncated,        ///< file size disagrees with the payload byte count
                    ///< (either direction: short file or trailing bytes)
  BadMagic,         ///< the leading magic is not a SacFD checkpoint's
  VersionSkew,      ///< a version this build does not read
  GeometryMismatch, ///< rank/cells/bounds/ghost/gamma differ from the
                    ///< receiving solver's problem
  ChecksumMismatch, ///< header or payload bytes fail their checksum
  WriteFailed,      ///< open/write/flush/rename failure on the save path
};

/// \returns the stable lower-case name used in reports and tests.
const char *checkpointErrorName(CheckpointError E);

/// Outcome of a checkpoint operation: an error code from the closed
/// taxonomy plus a one-line human-readable detail (paths, sizes,
/// checksums — whatever pins down this occurrence).
struct CheckpointStatus {
  CheckpointError Error = CheckpointError::None;
  std::string Detail;

  bool ok() const { return Error == CheckpointError::None; }
  explicit operator bool() const { return ok(); }

  /// "truncated: payload is 512 bytes short (...)" — name plus detail.
  std::string str() const;

  static CheckpointStatus success() { return {}; }
  static CheckpointStatus make(CheckpointError E, std::string Detail) {
    return {E, std::move(Detail)};
  }
};

/// Prints a structured one-line checkpoint failure to stderr:
/// "sacfd checkpoint [<context>]: <error-name>: <detail>".  No-op for
/// ok() statuses.
void reportCheckpointError(const char *Context, const CheckpointStatus &St);

/// Writes the solver's full state to \p Path atomically (tmp + fsync +
/// rename).  On failure no partial file is left under \p Path and any
/// previous file there is untouched.
template <unsigned Dim>
CheckpointStatus saveCheckpoint(const std::string &Path,
                                const EulerSolver<Dim> &S);

/// Bounded retry-with-backoff around saveCheckpoint for transient write
/// failures (only WriteFailed is retried; a sick geometry would never
/// heal).  Sleeps BackoffMs, 2*BackoffMs, ... between attempts.
struct RetryPolicy {
  unsigned Attempts = 3;
  unsigned BackoffMs = 2;
};
template <unsigned Dim>
CheckpointStatus saveCheckpointWithRetry(const std::string &Path,
                                         const EulerSolver<Dim> &S,
                                         const RetryPolicy &Retry = {});

/// Restores a checkpoint (v2 or legacy v1) into \p S.
///
/// The solver must already be constructed on the *same problem geometry*
/// (rank, cell counts, ghost layers, bounds, gamma); the file is
/// validated against it — including an exact file-size-vs-payload check
/// in both directions and, for v2, header and payload checksums — and
/// the load is rejected with the precise CheckpointError on any
/// mismatch.  A failed load leaves the solver bit-identical.  On success
/// the field, time and step count are replaced and the run continues
/// bit-identically.
template <unsigned Dim>
CheckpointStatus loadCheckpoint(const std::string &Path, EulerSolver<Dim> &S);

/// Writes the legacy v1 format (no checksums, non-atomic).  Kept only so
/// the v1 compatibility load path stays constructible in tests; new code
/// must use saveCheckpoint.
template <unsigned Dim>
CheckpointStatus saveCheckpointLegacyV1(const std::string &Path,
                                        const EulerSolver<Dim> &S);

extern template CheckpointStatus saveCheckpoint<1>(const std::string &,
                                                   const EulerSolver<1> &);
extern template CheckpointStatus saveCheckpoint<2>(const std::string &,
                                                   const EulerSolver<2> &);
extern template CheckpointStatus saveCheckpoint<3>(const std::string &,
                                                   const EulerSolver<3> &);
extern template CheckpointStatus
saveCheckpointWithRetry<1>(const std::string &, const EulerSolver<1> &,
                           const RetryPolicy &);
extern template CheckpointStatus
saveCheckpointWithRetry<2>(const std::string &, const EulerSolver<2> &,
                           const RetryPolicy &);
extern template CheckpointStatus
saveCheckpointWithRetry<3>(const std::string &, const EulerSolver<3> &,
                           const RetryPolicy &);
extern template CheckpointStatus loadCheckpoint<1>(const std::string &,
                                                   EulerSolver<1> &);
extern template CheckpointStatus loadCheckpoint<2>(const std::string &,
                                                   EulerSolver<2> &);
extern template CheckpointStatus loadCheckpoint<3>(const std::string &,
                                                   EulerSolver<3> &);
extern template CheckpointStatus
saveCheckpointLegacyV1<1>(const std::string &, const EulerSolver<1> &);
extern template CheckpointStatus
saveCheckpointLegacyV1<2>(const std::string &, const EulerSolver<2> &);
extern template CheckpointStatus
saveCheckpointLegacyV1<3>(const std::string &, const EulerSolver<3> &);

} // namespace sacfd

#endif // SACFD_IO_CHECKPOINT_H
