//===- io/AsciiPlot.cpp - Terminal plots ------------------------------------===//

#include "io/AsciiPlot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace sacfd;

std::string sacfd::asciiLinePlot(const std::vector<double> &Values,
                                 unsigned Width, unsigned Height) {
  if (Values.empty() || Width == 0 || Height == 0)
    return "(empty plot)\n";

  double Lo = Values[0], Hi = Values[0];
  for (double V : Values) {
    Lo = std::min(Lo, V);
    Hi = std::max(Hi, V);
  }
  if (Hi <= Lo)
    Hi = Lo + 1.0;

  // Downsample/upsample onto Width columns.
  std::vector<double> Col(Width);
  for (unsigned C = 0; C < Width; ++C) {
    double Pos = static_cast<double>(C) * (Values.size() - 1) /
                 std::max(1u, Width - 1);
    Col[C] = Values[static_cast<size_t>(Pos + 0.5)];
  }

  std::vector<std::string> Rows(Height, std::string(Width, ' '));
  for (unsigned C = 0; C < Width; ++C) {
    double Frac = (Col[C] - Lo) / (Hi - Lo);
    unsigned R = static_cast<unsigned>(
        std::lround(Frac * static_cast<double>(Height - 1)));
    Rows[Height - 1 - R][C] = '*';
  }

  char Buf[64];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf), "%10.4g +", Hi);
  Out += Buf;
  Out += std::string(Width, '-');
  Out += "\n";
  for (const std::string &Row : Rows) {
    Out += "           |";
    Out += Row;
    Out += "\n";
  }
  std::snprintf(Buf, sizeof(Buf), "%10.4g +", Lo);
  Out += Buf;
  Out += std::string(Width, '-');
  Out += "\n";
  return Out;
}

std::string sacfd::asciiFieldMap(const NDArray<double> &Field,
                                 unsigned MaxWidth, unsigned MaxHeight) {
  if (Field.rank() != 2 || Field.size() == 0)
    return "(not a 2D field)\n";

  static const char Ramp[] = " .:-=+*#%@";
  constexpr unsigned RampLen = sizeof(Ramp) - 2;

  double Lo = Field[0], Hi = Field[0];
  for (size_t I = 0; I < Field.size(); ++I) {
    Lo = std::min(Lo, Field[I]);
    Hi = std::max(Hi, Field[I]);
  }
  double Scale = Hi > Lo ? 1.0 / (Hi - Lo) : 0.0;

  size_t Nx = Field.shape().dim(0);
  size_t Ny = Field.shape().dim(1);
  unsigned W = static_cast<unsigned>(std::min<size_t>(Nx, MaxWidth));
  unsigned H = static_cast<unsigned>(std::min<size_t>(Ny, MaxHeight));

  std::string Out;
  Out.reserve((W + 3) * H);
  for (unsigned R = 0; R < H; ++R) {
    // Row 0 at the top = highest y.
    size_t J = (H - 1 - R) * (Ny - 1) / std::max(1u, H - 1);
    Out += "|";
    for (unsigned C = 0; C < W; ++C) {
      size_t I = C * (Nx - 1) / std::max(1u, W - 1);
      double Frac = (Field.at(static_cast<std::ptrdiff_t>(I),
                              static_cast<std::ptrdiff_t>(J)) -
                     Lo) *
                    Scale;
      unsigned Level = static_cast<unsigned>(
          std::clamp(Frac, 0.0, 1.0) * RampLen);
      Out += Ramp[Level];
    }
    Out += "|\n";
  }
  return Out;
}
