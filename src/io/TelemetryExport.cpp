//===- io/TelemetryExport.cpp - Metrics report serialization --------------===//

#include "io/TelemetryExport.h"

#include "io/PathUtil.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

using namespace sacfd;

namespace {

/// JSON string escaping (control characters, quotes, backslashes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Round-trip double formatting (shortest %.17g is good enough here; the
/// determinism tests compare in-process values, the JSON is for humans
/// and post-processing).
std::string fmtDouble(double V) {
  // JSON has no NaN/Infinity literal; a gauge sampled off a poisoned
  // field (e.g. a step-guard retry window) becomes null.
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

bool sacfd::writeTelemetryJson(const std::string &Path,
                               const telemetry::MetricsReport &Report,
                               const TelemetryMeta &Meta,
                               std::string *Error) {
  if (!ensureParentDir(Path, Error))
    return false;
  std::ofstream Out(Path);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }

  Out << "{\n  \"schema\": \"sacfd-telemetry-1\",\n";

  Out << "  \"run\": {";
  for (size_t I = 0; I < Meta.size(); ++I) {
    if (I)
      Out << ", ";
    Out << "\"" << jsonEscape(Meta[I].first) << "\": \""
        << jsonEscape(Meta[I].second) << "\"";
  }
  Out << "},\n";

  Out << "  \"spans\": [";
  for (size_t I = 0; I < Report.Spans.size(); ++I) {
    const telemetry::SpanStats &S = Report.Spans[I];
    Out << (I ? ",\n    " : "\n    ");
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\": \"%s\", \"count\": %" PRIu64
                  ", \"total_ns\": %" PRIu64 ", \"min_ns\": %" PRIu64
                  ", \"max_ns\": %" PRIu64 ", \"mean_ns\": %.6g}",
                  jsonEscape(S.Name).c_str(), S.Count, S.TotalNs, S.MinNs,
                  S.MaxNs, S.meanNs());
    Out << Buf;
  }
  Out << (Report.Spans.empty() ? "],\n" : "\n  ],\n");

  Out << "  \"counters\": [";
  for (size_t I = 0; I < Report.Counters.size(); ++I) {
    const telemetry::CounterTotal &C = Report.Counters[I];
    Out << (I ? ",\n    " : "\n    ");
    Out << "{\"name\": \"" << jsonEscape(C.Name) << "\", \"total\": "
        << C.Total << "}";
  }
  Out << (Report.Counters.empty() ? "],\n" : "\n  ],\n");

  Out << "  \"gauges\": [";
  for (size_t I = 0; I < Report.Gauges.size(); ++I) {
    const telemetry::GaugeSeries &G = Report.Gauges[I];
    Out << (I ? ",\n    " : "\n    ");
    Out << "{\"name\": \"" << jsonEscape(G.Name) << "\", \"samples\": [";
    for (size_t J = 0; J < G.Samples.size(); ++J) {
      if (J)
        Out << ", ";
      Out << "{\"step\": " << G.Samples[J].Step << ", \"value\": "
          << fmtDouble(G.Samples[J].Value) << "}";
    }
    Out << "]}";
  }
  Out << (Report.Gauges.empty() ? "]\n" : "\n  ]\n");

  Out << "}\n";
  return static_cast<bool>(Out);
}

bool sacfd::writeTelemetryCsv(const std::string &Path,
                              const telemetry::MetricsReport &Report,
                              std::string *Error) {
  if (!ensureParentDir(Path, Error))
    return false;
  std::ofstream Out(Path);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }

  Out << "kind,name,count,total_ns,min_ns,max_ns,step,value\n";
  for (const telemetry::SpanStats &S : Report.Spans)
    Out << "span," << S.Name << "," << S.Count << "," << S.TotalNs << ","
        << S.MinNs << "," << S.MaxNs << ",,\n";
  for (const telemetry::CounterTotal &C : Report.Counters)
    Out << "counter," << C.Name << "," << C.Total << ",,,,,\n";
  for (const telemetry::GaugeSeries &G : Report.Gauges)
    for (const telemetry::GaugeSample &S : G.Samples)
      Out << "gauge," << G.Name << ",,,,," << S.Step << ","
          << fmtDouble(S.Value) << "\n";
  return static_cast<bool>(Out);
}
