//===- support/Timer.h - Wall-clock timing utilities -----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timing for the benchmark harness.
///
/// The paper reports wall-clock seconds of a fixed-step simulation (Fig. 4);
/// WallTimer is the primitive behind every measurement in bench/, and
/// TimingSamples aggregates repeated runs into the statistics the harness
/// prints (min is the headline number, median/mean expose noise).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_TIMER_H
#define SACFD_SUPPORT_TIMER_H

#include <chrono>
#include <vector>

namespace sacfd {

/// Measures elapsed wall-clock time from construction or the last restart.
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Resets the reference point to now.
  void restart() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// Collects repeated timing samples and summarizes them.
class TimingSamples {
public:
  void add(double Seconds) { Samples.push_back(Seconds); }

  bool empty() const { return Samples.empty(); }
  unsigned count() const { return static_cast<unsigned>(Samples.size()); }

  /// \returns the smallest sample; 0 when empty.
  double min() const;
  /// \returns the largest sample; 0 when empty.
  double max() const;
  /// \returns the arithmetic mean; 0 when empty.
  double mean() const;
  /// \returns the median (lower-middle for even counts); 0 when empty.
  double median() const;

private:
  std::vector<double> Samples;
};

} // namespace sacfd

#endif // SACFD_SUPPORT_TIMER_H
