//===- support/Process.h - Child-process helpers ----------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90". (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fork()-based worker processes for the shard runtime and the fault-
/// injection tests.  Children run a callable and _exit() without
/// touching parent-process state (no atexit handlers, no stream
/// flushing races); the parent polls or waits for exits.
///
/// Fork discipline: spawn only while the parent holds no live worker
/// threads — the shard coordinator never creates a Backend, and every
/// test SolverRun lives in a scope whose end joins its threads before
/// the fork.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_PROCESS_H
#define SACFD_SUPPORT_PROCESS_H

#include "support/FunctionRef.h"

#include <sys/types.h>

namespace sacfd {

/// Forks a child that runs \p Body and _exit()s with its return value.
/// The child dies with the parent (PDEATHSIG), so a crashed coordinator
/// cannot leak spinning workers.  \returns the child pid, or -1 when
/// fork fails.
pid_t spawnProcess(FunctionRef<int()> Body);

/// Nonblocking liveness probe: \returns true when \p Pid has exited (or
/// was killed); the exit is reaped.  \p Signaled (when non-null) is set
/// to true when the child died of a signal.
bool pollExited(pid_t Pid, bool *Signaled = nullptr);

/// Blocks until \p Pid exits; \returns its exit code, or -1 when it
/// died of a signal.
int waitExit(pid_t Pid);

/// SIGKILLs \p Pid (no-op for Pid <= 0).  The zombie must still be
/// reaped via pollExited/waitExit.
void killProcess(pid_t Pid);

} // namespace sacfd

#endif // SACFD_SUPPORT_PROCESS_H
