//===- support/Timer.cpp - Wall-clock timing utilities -------------------===//

#include "support/Timer.h"

#include <algorithm>

using namespace sacfd;

double TimingSamples::min() const {
  if (Samples.empty())
    return 0.0;
  return *std::min_element(Samples.begin(), Samples.end());
}

double TimingSamples::max() const {
  if (Samples.empty())
    return 0.0;
  return *std::max_element(Samples.begin(), Samples.end());
}

double TimingSamples::mean() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

double TimingSamples::median() const {
  if (Samples.empty())
    return 0.0;
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  return Sorted[(Sorted.size() - 1) / 2];
}
