//===- support/Shm.cpp - Shared-memory region -----------------------------===//

#include "support/Shm.h"

#include <sys/mman.h>
#include <utility>

using namespace sacfd;

ShmRegion::~ShmRegion() {
  if (Base)
    ::munmap(Base, Bytes);
}

ShmRegion::ShmRegion(ShmRegion &&Other) noexcept
    : Base(std::exchange(Other.Base, nullptr)),
      Bytes(std::exchange(Other.Bytes, 0)) {}

ShmRegion &ShmRegion::operator=(ShmRegion &&Other) noexcept {
  if (this != &Other) {
    if (Base)
      ::munmap(Base, Bytes);
    Base = std::exchange(Other.Base, nullptr);
    Bytes = std::exchange(Other.Bytes, 0);
  }
  return *this;
}

ShmRegion ShmRegion::create(std::size_t Bytes) {
  ShmRegion R;
  void *P = ::mmap(nullptr, Bytes, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return R;
  R.Base = P;
  R.Bytes = Bytes;
  return R;
}
