//===- support/Hash.h - FNV-1a hashing ------------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 64-bit FNV-1a, the repo's one content-hash primitive: checkpoint
/// section checksums (io/Checkpoint) and the scenario gallery's pinned
/// reference hashes (solver/Scenario) both use it, so a state that
/// round-trips a checkpoint and a state that matches a pinned reference
/// are fingerprinted by the same arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_HASH_H
#define SACFD_SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>

namespace sacfd {

inline constexpr uint64_t FnvOffsetBasis = 14695981039346656037ull;
inline constexpr uint64_t FnvPrime = 1099511628211ull;

/// FNV-1a over \p Bytes bytes, continuing from \p Seed so multi-buffer
/// hashes chain: fnv1a(B, n, fnv1a(A, m)) == hash of A ++ B.
inline uint64_t fnv1a(const void *Data, size_t Bytes,
                      uint64_t Seed = FnvOffsetBasis) {
  const auto *P = static_cast<const unsigned char *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Bytes; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

} // namespace sacfd

#endif // SACFD_SUPPORT_HASH_H
