//===- support/Shm.h - Shared-memory region ---------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An anonymous MAP_SHARED memory region for fork-based multi-process
/// coordination: created by the parent *before* forking, the mapping is
/// inherited by every child at the same state, so the processes share it
/// with no filesystem object to clean up and no per-step syscalls —
/// plain loads/stores (through std::atomic for the handshake words)
/// carry the shard mailboxes and the dt reduction.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_SHM_H
#define SACFD_SUPPORT_SHM_H

#include <cstddef>

namespace sacfd {

/// Owning handle to an anonymous shared mapping (zero-initialized).
/// Move-only; unmaps on destruction.  After fork() both sides hold the
/// same physical pages; each side's destructor drops only its own
/// mapping.
class ShmRegion {
public:
  ShmRegion() = default;
  ~ShmRegion();

  ShmRegion(ShmRegion &&Other) noexcept;
  ShmRegion &operator=(ShmRegion &&Other) noexcept;
  ShmRegion(const ShmRegion &) = delete;
  ShmRegion &operator=(const ShmRegion &) = delete;

  /// Maps \p Bytes of anonymous shared memory.  \returns an invalid
  /// region (valid() == false) when mmap fails.
  static ShmRegion create(std::size_t Bytes);

  bool valid() const { return Base != nullptr; }
  void *data() const { return Base; }
  std::size_t size() const { return Bytes; }

private:
  void *Base = nullptr;
  std::size_t Bytes = 0;
};

} // namespace sacfd

#endif // SACFD_SUPPORT_SHM_H
