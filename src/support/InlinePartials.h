//===- support/InlinePartials.h - Small-count partials buffer --*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stack-backed storage for per-block reduction partials.
///
/// Every deterministic reduction (fold, blockReduce) needs one partial
/// slot per block, and the block count is almost always the worker count
/// — a handful.  A std::vector there puts a malloc/free on the GetDT
/// path of every step; this buffer keeps small counts (<= InlineCap) in
/// stack storage and only falls back to the heap for large counts (a
/// fine-grained tile grid can exceed the cap).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_INLINEPARTIALS_H
#define SACFD_SUPPORT_INLINEPARTIALS_H

#include <algorithm>
#include <cstddef>
#include <vector>

namespace sacfd {

/// A fixed-size sequence of \p N copies of an initial value, stored
/// inline for N <= InlineCap.  T must be default-constructible and
/// copy-assignable (reduction partial types are).
template <typename T, size_t InlineCap = 32> class InlinePartials {
public:
  InlinePartials(size_t N, const T &Init) : N(N) {
    if (N <= InlineCap)
      std::fill_n(Small, N, Init);
    else
      Big.assign(N, Init);
  }

  size_t size() const { return N; }
  T *data() { return N <= InlineCap ? Small : Big.data(); }
  const T *data() const { return N <= InlineCap ? Small : Big.data(); }

  T &operator[](size_t I) { return data()[I]; }
  const T &operator[](size_t I) const { return data()[I]; }
  T &front() { return data()[0]; }
  const T &front() const { return data()[0]; }

  T *begin() { return data(); }
  T *end() { return data() + N; }
  const T *begin() const { return data(); }
  const T *end() const { return data() + N; }

private:
  size_t N;
  T Small[InlineCap];
  std::vector<T> Big;
};

} // namespace sacfd

#endif // SACFD_SUPPORT_INLINEPARTIALS_H
