//===- support/FaultInjection.h - Deterministic I/O fault plans -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic injection of file-I/O failures, so every durability
/// failure path (torn writes, dying disks, corrupt reads, a process
/// killed mid-checkpoint) is constructible in a test instead of waiting
/// for real hardware to misbehave.
///
/// The model is a process-global Plan of one-shot triggers keyed on the
/// nth I/O operation routed through the checked wrappers below
/// (fopenChecked / fwriteChecked / freadChecked / renameChecked — the io
/// checkpoint layer performs all its file operations through these).
/// Counting is global and 1-based from the moment the plan is armed;
/// each trigger disarms after firing, so a retry of the same operation
/// runs clean — exactly the transient-fault shape the retry/backoff
/// logic exists for.
///
/// Faults:
///   fail-open=N      nth fopen returns nullptr
///   fail-write=N     nth fwrite writes nothing and reports failure
///   short-write=N    nth fwrite writes half its bytes, reports failure
///   torn-write=N     nth fwrite writes half its bytes, reports SUCCESS
///                    (the lying-disk case: the tear surfaces at load)
///   kill-write=N     nth fwrite writes half its bytes, flushes, then
///                    SIGKILLs the process (the kill -9 mid-checkpoint
///                    case; only meaningful in a sacrificial child)
///   bit-flip-read=N[@B]  nth fread flips bit 0 of byte B of the buffer
///                    (default: the middle byte) after a clean read
///   fail-rename      next rename fails
///
/// Plans are armed programmatically (setPlan) or from the environment:
/// SACFD_IO_FAULTS holds the same comma-separated spec the --io-faults
/// flag accepts, e.g. "short-write=2,fail-rename".  The environment is
/// consulted once, at the first checked operation, and only when no plan
/// was armed programmatically first.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_FAULTINJECTION_H
#define SACFD_SUPPORT_FAULTINJECTION_H

#include <cstdio>
#include <string>
#include <string_view>

namespace sacfd {
namespace iofault {

/// One-shot fault triggers, keyed on global 1-based operation counts.
/// Zero (or false) means "never fire".
struct Plan {
  unsigned FailOpenNth = 0;
  unsigned FailWriteNth = 0;
  unsigned ShortWriteNth = 0;
  unsigned TornWriteNth = 0;
  unsigned KillWriteNth = 0;
  unsigned BitFlipReadNth = 0;
  /// Byte of the read buffer whose bit 0 is flipped; -1 = middle byte.
  int BitFlipByte = -1;
  bool FailRename = false;

  bool any() const {
    return FailOpenNth || FailWriteNth || ShortWriteNth || TornWriteNth ||
           KillWriteNth || BitFlipReadNth || FailRename;
  }
};

/// Arms \p P and resets the operation and fired counters.
void setPlan(const Plan &P);

/// Disarms everything and resets the counters.
void clear();

/// The currently armed plan (triggers already fired read as disarmed).
Plan plan();

/// Parses a fault spec ("fail-write=2,bit-flip-read=3@8,fail-rename")
/// into \p Out.  \returns false with a message in \p Error naming the
/// offending token; \p Out is untouched on failure.  An empty spec
/// parses to an empty plan.
bool parsePlan(std::string_view Spec, Plan &Out, std::string &Error);

/// Number of faults that have fired since the plan was armed.
unsigned faultsFired();

/// Operation counters since the plan was armed (diagnostics for tests).
unsigned writeOps();
unsigned readOps();

/// fopen that honors fail-open.
std::FILE *fopenChecked(const char *Path, const char *Mode);

/// fwrite that honors fail-write / short-write / torn-write / kill-write.
size_t fwriteChecked(const void *Ptr, size_t Size, size_t Count,
                     std::FILE *F);

/// fread that honors bit-flip-read.
size_t freadChecked(void *Ptr, size_t Size, size_t Count, std::FILE *F);

/// rename that honors fail-rename.
int renameChecked(const char *From, const char *To);

} // namespace iofault
} // namespace sacfd

#endif // SACFD_SUPPORT_FAULTINJECTION_H
