//===- support/Env.h - Environment variable helpers ------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed access to environment variables.
///
/// The paper tunes the Fortran runtime through OMP_SCHEDULE / OMP_NESTED /
/// OMP_DYNAMIC; SacFD mirrors that with SACFD_SCHEDULE, SACFD_THREADS and
/// SACFD_SPIN so the fork-join backend can be steered the same way without
/// recompiling.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_ENV_H
#define SACFD_SUPPORT_ENV_H

#include <optional>
#include <string>

namespace sacfd {

/// \returns the raw value of \p Name, or nullopt when unset.
std::optional<std::string> getEnvString(const char *Name);

/// \returns \p Name parsed as integer, or nullopt when unset/malformed.
std::optional<long long> getEnvInt(const char *Name);

/// \returns the number of workers to run when the user did not say:
/// std::thread::hardware_concurrency() clamped to at least 1.  The
/// standard allows hardware_concurrency() to return 0 ("not computable");
/// every auto-detection path must go through this helper so a 0-worker
/// pool can never be constructed.
unsigned defaultWorkerCount();

/// \returns the number of hardware threads, at least 1 (alias of
/// defaultWorkerCount(), kept for call sites that read better this way).
unsigned hardwareThreadCount();

/// \returns the default worker count: SACFD_THREADS when set and positive,
/// otherwise hardwareThreadCount().
unsigned defaultThreadCount();

} // namespace sacfd

#endif // SACFD_SUPPORT_ENV_H
