//===- support/Error.h - Fatal errors and unreachable markers --*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error plumbing for the whole library.
///
/// SacFD follows the LLVM error-handling split: invariant violations abort
/// via assert/sacfdUnreachable, while environment errors (missing files,
/// malformed flags) are reported through return values.  The library never
/// throws.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_ERROR_H
#define SACFD_SUPPORT_ERROR_H

namespace sacfd {

/// Prints \p Msg with source location to stderr and aborts.
///
/// Used for control-flow points that are unconditionally bugs when reached.
/// Unlike assert, this also fires in release builds, so invariants that
/// guard memory safety stay enforced.
[[noreturn]] void reportUnreachable(const char *Msg, const char *File,
                                    unsigned Line);

/// Prints a fatal usage/environment error and exits with a nonzero status.
///
/// Reserved for tool-level code (benches, examples); library code reports
/// recoverable failures through its return types instead.
[[noreturn]] void reportFatalError(const char *Msg);

} // namespace sacfd

/// Marks a point in the program that can never be executed.
#define sacfdUnreachable(MSG)                                                  \
  ::sacfd::reportUnreachable(MSG, __FILE__, __LINE__)

#endif // SACFD_SUPPORT_ERROR_H
