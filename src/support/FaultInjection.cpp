//===- support/FaultInjection.cpp - Deterministic I/O fault plans ---------===//

#include "support/FaultInjection.h"

#include "support/Env.h"
#include "support/StrUtil.h"

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <mutex>

using namespace sacfd;
using namespace sacfd::iofault;

namespace {

struct State {
  std::mutex Lock;
  Plan Armed;
  bool ProgrammaticallySet = false;
  bool EnvChecked = false;
  unsigned Opens = 0;
  unsigned Writes = 0;
  unsigned Reads = 0;
  unsigned Fired = 0;
};

State &state() {
  static State S;
  return S;
}

/// Seeds the plan from SACFD_IO_FAULTS exactly once, and only when no
/// plan was armed programmatically first (tests own the plan).
void ensureEnvPlan(State &S) {
  if (S.EnvChecked)
    return;
  S.EnvChecked = true;
  if (S.ProgrammaticallySet)
    return;
  std::optional<std::string> Spec = getEnvString("SACFD_IO_FAULTS");
  if (!Spec || Spec->empty())
    return;
  Plan P;
  std::string Error;
  if (parsePlan(*Spec, P, Error))
    S.Armed = P;
  else
    std::fprintf(stderr, "sacfd: ignoring SACFD_IO_FAULTS: %s\n",
                 Error.c_str());
}

/// Parses "key" or "key=N" / "key=N@B" tokens.
bool parseToken(std::string_view Token, Plan &P, std::string &Error) {
  auto Fail = [&Error, Token](const char *Why) {
    Error = "bad fault token '" + std::string(Token) + "': " + Why;
    return false;
  };

  size_t Eq = Token.find('=');
  std::string_view Key = trim(Token.substr(0, Eq));
  if (Eq == std::string_view::npos) {
    if (equalsLower(Key, "fail-rename")) {
      P.FailRename = true;
      return true;
    }
    return Fail("expected key=N (only fail-rename is valueless)");
  }

  std::string_view Value = trim(Token.substr(Eq + 1));
  std::string_view AtByte;
  size_t At = Value.find('@');
  if (At != std::string_view::npos) {
    AtByte = Value.substr(At + 1);
    Value = Value.substr(0, At);
  }

  std::optional<unsigned long long> Parsed = parseUnsigned(Value);
  if (!Parsed || *Parsed == 0 || *Parsed > UINT32_MAX)
    return Fail("count must be a positive integer");
  unsigned N = static_cast<unsigned>(*Parsed);
  if (!AtByte.empty() && !equalsLower(Key, "bit-flip-read"))
    return Fail("@byte only applies to bit-flip-read");

  if (equalsLower(Key, "fail-open"))
    P.FailOpenNth = N;
  else if (equalsLower(Key, "fail-write"))
    P.FailWriteNth = N;
  else if (equalsLower(Key, "short-write"))
    P.ShortWriteNth = N;
  else if (equalsLower(Key, "torn-write"))
    P.TornWriteNth = N;
  else if (equalsLower(Key, "kill-write"))
    P.KillWriteNth = N;
  else if (equalsLower(Key, "bit-flip-read")) {
    P.BitFlipReadNth = N;
    if (!AtByte.empty()) {
      std::optional<unsigned long long> B = parseUnsigned(AtByte);
      if (!B || *B > INT32_MAX)
        return Fail("@byte must be a non-negative integer");
      P.BitFlipByte = static_cast<int>(*B);
    }
  } else
    return Fail("unknown fault kind (fail-open|fail-write|short-write|"
                "torn-write|kill-write|bit-flip-read|fail-rename)");
  return true;
}

} // namespace

void sacfd::iofault::setPlan(const Plan &P) {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  S.Armed = P;
  S.ProgrammaticallySet = true;
  S.Opens = S.Writes = S.Reads = S.Fired = 0;
}

void sacfd::iofault::clear() { setPlan(Plan()); }

Plan sacfd::iofault::plan() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return S.Armed;
}

bool sacfd::iofault::parsePlan(std::string_view Spec, Plan &Out,
                               std::string &Error) {
  Plan P;
  std::string_view Rest = trim(Spec);
  while (!Rest.empty()) {
    size_t Comma = Rest.find(',');
    std::string_view Token = trim(Rest.substr(0, Comma));
    Rest = Comma == std::string_view::npos
               ? std::string_view()
               : trim(Rest.substr(Comma + 1));
    if (Token.empty()) {
      Error = "empty fault token";
      return false;
    }
    if (!parseToken(Token, P, Error))
      return false;
  }
  Out = P;
  return true;
}

unsigned sacfd::iofault::faultsFired() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return S.Fired;
}

unsigned sacfd::iofault::writeOps() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return S.Writes;
}

unsigned sacfd::iofault::readOps() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return S.Reads;
}

std::FILE *sacfd::iofault::fopenChecked(const char *Path, const char *Mode) {
  {
    State &S = state();
    std::lock_guard<std::mutex> G(S.Lock);
    ensureEnvPlan(S);
    ++S.Opens;
    if (S.Armed.FailOpenNth && S.Opens == S.Armed.FailOpenNth) {
      S.Armed.FailOpenNth = 0;
      ++S.Fired;
      errno = EIO;
      return nullptr;
    }
  }
  return std::fopen(Path, Mode);
}

size_t sacfd::iofault::fwriteChecked(const void *Ptr, size_t Size,
                                     size_t Count, std::FILE *F) {
  enum class WriteFault { None, Fail, Short, Torn, Kill } Fault =
      WriteFault::None;
  {
    State &S = state();
    std::lock_guard<std::mutex> G(S.Lock);
    ensureEnvPlan(S);
    ++S.Writes;
    if (S.Armed.FailWriteNth && S.Writes == S.Armed.FailWriteNth) {
      S.Armed.FailWriteNth = 0;
      Fault = WriteFault::Fail;
    } else if (S.Armed.ShortWriteNth && S.Writes == S.Armed.ShortWriteNth) {
      S.Armed.ShortWriteNth = 0;
      Fault = WriteFault::Short;
    } else if (S.Armed.TornWriteNth && S.Writes == S.Armed.TornWriteNth) {
      S.Armed.TornWriteNth = 0;
      Fault = WriteFault::Torn;
    } else if (S.Armed.KillWriteNth && S.Writes == S.Armed.KillWriteNth) {
      S.Armed.KillWriteNth = 0;
      Fault = WriteFault::Kill;
    }
    if (Fault != WriteFault::None)
      ++S.Fired;
  }

  switch (Fault) {
  case WriteFault::None:
    return std::fwrite(Ptr, Size, Count, F);
  case WriteFault::Fail:
    errno = EIO;
    return 0;
  case WriteFault::Short:
  case WriteFault::Torn: {
    size_t HalfBytes = Size * Count / 2;
    std::fwrite(Ptr, 1, HalfBytes, F);
    if (Fault == WriteFault::Torn)
      return Count; // the disk lied: the tear only surfaces at load
    errno = EIO;
    return HalfBytes / (Size ? Size : 1);
  }
  case WriteFault::Kill:
    std::fwrite(Ptr, 1, Size * Count / 2, F);
    std::fflush(F);
    std::raise(SIGKILL);
    return 0; // unreachable
  }
  return 0;
}

size_t sacfd::iofault::freadChecked(void *Ptr, size_t Size, size_t Count,
                                    std::FILE *F) {
  bool Flip = false;
  int FlipByte = -1;
  {
    State &S = state();
    std::lock_guard<std::mutex> G(S.Lock);
    ensureEnvPlan(S);
    ++S.Reads;
    if (S.Armed.BitFlipReadNth && S.Reads == S.Armed.BitFlipReadNth) {
      S.Armed.BitFlipReadNth = 0;
      ++S.Fired;
      Flip = true;
      FlipByte = S.Armed.BitFlipByte;
    }
  }
  size_t Read = std::fread(Ptr, Size, Count, F);
  size_t Bytes = Read * Size;
  if (Flip && Bytes > 0) {
    size_t Offset = FlipByte >= 0 ? static_cast<size_t>(FlipByte) : Bytes / 2;
    if (Offset < Bytes)
      static_cast<uint8_t *>(Ptr)[Offset] ^= 1u;
  }
  return Read;
}

int sacfd::iofault::renameChecked(const char *From, const char *To) {
  {
    State &S = state();
    std::lock_guard<std::mutex> G(S.Lock);
    ensureEnvPlan(S);
    if (S.Armed.FailRename) {
      S.Armed.FailRename = false;
      ++S.Fired;
      errno = EIO;
      return -1;
    }
  }
  return std::rename(From, To);
}
