//===- support/StrUtil.cpp - Small string helpers -------------------------===//

#include "support/StrUtil.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

using namespace sacfd;

static bool isSpaceChar(char C) {
  return std::isspace(static_cast<unsigned char>(C)) != 0;
}

std::string_view sacfd::trim(std::string_view S) {
  while (!S.empty() && isSpaceChar(S.front()))
    S.remove_prefix(1);
  while (!S.empty() && isSpaceChar(S.back()))
    S.remove_suffix(1);
  return S;
}

std::vector<std::string> sacfd::split(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Begin = 0;
  while (true) {
    size_t End = S.find(Sep, Begin);
    if (End == std::string_view::npos) {
      Parts.emplace_back(S.substr(Begin));
      return Parts;
    }
    Parts.emplace_back(S.substr(Begin, End - Begin));
    Begin = End + 1;
  }
}

std::optional<long long> sacfd::parseInt(std::string_view S) {
  S = trim(S);
  if (S.empty())
    return std::nullopt;
  std::string Buf(S);
  errno = 0;
  char *End = nullptr;
  long long Value = std::strtoll(Buf.c_str(), &End, 10);
  if (errno == ERANGE || End != Buf.c_str() + Buf.size())
    return std::nullopt;
  return Value;
}

std::optional<unsigned long long> sacfd::parseUnsigned(std::string_view S) {
  S = trim(S);
  if (S.empty() || S.front() == '-' || S.front() == '+')
    return std::nullopt;
  std::string Buf(S);
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Buf.c_str(), &End, 10);
  if (errno == ERANGE || End != Buf.c_str() + Buf.size())
    return std::nullopt;
  return Value;
}

std::optional<double> sacfd::parseDouble(std::string_view S) {
  S = trim(S);
  if (S.empty())
    return std::nullopt;
  std::string Buf(S);
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Buf.c_str(), &End);
  if (errno == ERANGE || End != Buf.c_str() + Buf.size())
    return std::nullopt;
  return Value;
}

bool sacfd::equalsLower(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    char CA = static_cast<char>(
        std::tolower(static_cast<unsigned char>(A[I])));
    char CB = static_cast<char>(
        std::tolower(static_cast<unsigned char>(B[I])));
    if (CA != CB)
      return false;
  }
  return true;
}

std::string sacfd::toLower(std::string_view S) {
  std::string Out(S);
  for (char &C : Out)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Out;
}
