//===- support/CommandLine.h - Declarative flag parsing --------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative command-line parser used by examples and benches.
///
/// Options bind directly to caller variables:
/// \code
///   int Nx = 400;
///   bool Full = false;
///   CommandLine CL("fig4_scaling", "FIG4 thread-scaling benchmark");
///   CL.addInt("nx", Nx, "grid cells per dimension");
///   CL.addFlag("full", Full, "run at paper scale");
///   if (!CL.parse(Argc, Argv))
///     return 1;
/// \endcode
///
/// Accepted syntax: `--name value`, `--name=value`, and bare `--name` for
/// flags.  `--help` prints usage and reports parse() == false with
/// helpRequested() == true so tools can exit(0).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_COMMANDLINE_H
#define SACFD_SUPPORT_COMMANDLINE_H

#include <string>
#include <string_view>
#include <vector>

namespace sacfd {

/// Binds named command-line options to variables and parses argv.
class CommandLine {
public:
  CommandLine(std::string ProgramName, std::string Description)
      : Program(std::move(ProgramName)), About(std::move(Description)) {}

  /// Registers a boolean option; bare `--name` sets it true.
  void addFlag(std::string Name, bool &Target, std::string Help);
  /// Registers an integer option.
  void addInt(std::string Name, int &Target, std::string Help);
  /// Registers an unsigned option (rejects negative input).
  void addUnsigned(std::string Name, unsigned &Target, std::string Help);
  /// Registers a double option.
  void addDouble(std::string Name, double &Target, std::string Help);
  /// Registers a string option.
  void addString(std::string Name, std::string &Target, std::string Help);

  /// Parses the argument vector, updating bound variables.
  ///
  /// \returns false on error (message on stderr) or when --help was given
  /// (usage on stdout; check helpRequested()).
  bool parse(int Argc, const char *const *Argv);

  /// \returns true when the last parse() stopped because of --help.
  bool helpRequested() const { return SawHelp; }

  /// \returns true when the user gave --\p Name explicitly in the last
  /// parse() (layered defaults — e.g. a scenario's recommended CFL —
  /// consult this so an explicit flag always wins).
  bool wasSet(std::string_view Name) const;

  /// Prints the usage text to stdout.
  void printHelp() const;

private:
  enum class OptionKind { Flag, Int, Unsigned, Double, String };

  struct Option {
    std::string Name;
    std::string Help;
    OptionKind Kind;
    void *Target;
    bool Seen = false;
    std::string defaultText() const;
  };

  Option *findOption(std::string_view Name);
  /// \p Why receives extra diagnostic detail (e.g. "out of range") when
  /// the value has the right shape but an unrepresentable magnitude.
  bool applyValue(Option &Opt, std::string_view Value, std::string &Why);

  std::string Program;
  std::string About;
  std::vector<Option> Options;
  bool SawHelp = false;
};

} // namespace sacfd

#endif // SACFD_SUPPORT_COMMANDLINE_H
