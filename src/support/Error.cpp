//===- support/Error.cpp - Fatal errors and unreachable markers ----------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace sacfd;

void sacfd::reportUnreachable(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "sacfd fatal: unreachable executed at %s:%u: %s\n",
               File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}

void sacfd::reportFatalError(const char *Msg) {
  std::fprintf(stderr, "sacfd error: %s\n", Msg);
  std::fflush(stderr);
  std::exit(1);
}
