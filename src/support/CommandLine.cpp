//===- support/CommandLine.cpp - Declarative flag parsing ----------------===//

#include "support/CommandLine.h"

#include "support/Error.h"
#include "support/StrUtil.h"

#include <cassert>
#include <cstdio>
#include <limits>

using namespace sacfd;

std::string CommandLine::Option::defaultText() const {
  char Buf[64];
  switch (Kind) {
  case OptionKind::Flag:
    return *static_cast<bool *>(Target) ? "true" : "false";
  case OptionKind::Int:
    std::snprintf(Buf, sizeof(Buf), "%d", *static_cast<int *>(Target));
    return Buf;
  case OptionKind::Unsigned:
    std::snprintf(Buf, sizeof(Buf), "%u", *static_cast<unsigned *>(Target));
    return Buf;
  case OptionKind::Double:
    std::snprintf(Buf, sizeof(Buf), "%g", *static_cast<double *>(Target));
    return Buf;
  case OptionKind::String:
    return *static_cast<std::string *>(Target);
  }
  sacfdUnreachable("covered switch");
}

void CommandLine::addFlag(std::string Name, bool &Target, std::string Help) {
  assert(!findOption(Name) && "duplicate option name");
  Options.push_back(
      {std::move(Name), std::move(Help), OptionKind::Flag, &Target});
}

void CommandLine::addInt(std::string Name, int &Target, std::string Help) {
  assert(!findOption(Name) && "duplicate option name");
  Options.push_back(
      {std::move(Name), std::move(Help), OptionKind::Int, &Target});
}

void CommandLine::addUnsigned(std::string Name, unsigned &Target,
                              std::string Help) {
  assert(!findOption(Name) && "duplicate option name");
  Options.push_back(
      {std::move(Name), std::move(Help), OptionKind::Unsigned, &Target});
}

void CommandLine::addDouble(std::string Name, double &Target,
                            std::string Help) {
  assert(!findOption(Name) && "duplicate option name");
  Options.push_back(
      {std::move(Name), std::move(Help), OptionKind::Double, &Target});
}

void CommandLine::addString(std::string Name, std::string &Target,
                            std::string Help) {
  assert(!findOption(Name) && "duplicate option name");
  Options.push_back(
      {std::move(Name), std::move(Help), OptionKind::String, &Target});
}

CommandLine::Option *CommandLine::findOption(std::string_view Name) {
  for (Option &Opt : Options)
    if (Opt.Name == Name)
      return &Opt;
  return nullptr;
}

bool CommandLine::wasSet(std::string_view Name) const {
  for (const Option &Opt : Options)
    if (Opt.Name == Name)
      return Opt.Seen;
  return false;
}

namespace {

bool allDigits(std::string_view S) {
  if (S.empty())
    return false;
  for (char C : S)
    if (C < '0' || C > '9')
      return false;
  return true;
}

} // namespace

bool CommandLine::applyValue(Option &Opt, std::string_view Value,
                             std::string &Why) {
  switch (Opt.Kind) {
  case OptionKind::Flag: {
    if (equalsLower(Value, "true") || Value == "1") {
      *static_cast<bool *>(Opt.Target) = true;
      return true;
    }
    if (equalsLower(Value, "false") || Value == "0") {
      *static_cast<bool *>(Opt.Target) = false;
      return true;
    }
    return false;
  }
  case OptionKind::Int: {
    std::optional<long long> V = parseInt(Value);
    if (V && (*V < std::numeric_limits<int>::min() ||
              *V > std::numeric_limits<int>::max())) {
      Why = "out of range (int)";
      return false;
    }
    if (!V)
      return false;
    *static_cast<int *>(Opt.Target) = static_cast<int>(*V);
    return true;
  }
  case OptionKind::Unsigned: {
    // parseUnsigned rejects a leading sign outright — strtoull would
    // wrap "-3" to a huge positive value instead of failing — and
    // rejects ERANGE overflow, which strtoull saturates to ULLONG_MAX.
    std::optional<unsigned long long> V = parseUnsigned(Value);
    if (!V && allDigits(Value)) {
      // All digits but unparseable: the value overflowed 64 bits.
      Why = "out of range (max " +
            std::to_string(std::numeric_limits<unsigned>::max()) + ")";
      return false;
    }
    if (V && *V > std::numeric_limits<unsigned>::max()) {
      Why = "out of range (max " +
            std::to_string(std::numeric_limits<unsigned>::max()) + ")";
      return false;
    }
    if (!V)
      return false;
    *static_cast<unsigned *>(Opt.Target) = static_cast<unsigned>(*V);
    return true;
  }
  case OptionKind::Double: {
    std::optional<double> V = parseDouble(Value);
    if (!V)
      return false;
    *static_cast<double *>(Opt.Target) = *V;
    return true;
  }
  case OptionKind::String:
    *static_cast<std::string *>(Opt.Target) = std::string(Value);
    return true;
  }
  sacfdUnreachable("covered switch");
}

bool CommandLine::parse(int Argc, const char *const *Argv) {
  SawHelp = false;
  for (Option &Opt : Options)
    Opt.Seen = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h") {
      SawHelp = true;
      printHelp();
      return false;
    }
    if (Arg.substr(0, 2) != "--") {
      std::fprintf(stderr, "%s: unexpected positional argument '%s'\n",
                   Program.c_str(), Argv[I]);
      return false;
    }
    Arg.remove_prefix(2);

    std::string_view Name = Arg;
    std::string_view Inline;
    bool HasInline = false;
    if (size_t Eq = Arg.find('='); Eq != std::string_view::npos) {
      Name = Arg.substr(0, Eq);
      Inline = Arg.substr(Eq + 1);
      HasInline = true;
    }

    Option *Opt = findOption(Name);
    if (!Opt) {
      std::fprintf(stderr, "%s: unknown option '--%.*s'\n", Program.c_str(),
                   static_cast<int>(Name.size()), Name.data());
      return false;
    }

    std::string_view Value;
    if (HasInline) {
      Value = Inline;
    } else if (Opt->Kind == OptionKind::Flag) {
      Value = "true";
    } else {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "%s: option '--%s' expects a value\n",
                     Program.c_str(), Opt->Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }

    std::string Why;
    if (!applyValue(*Opt, Value, Why)) {
      std::fprintf(stderr, "%s: bad value '%.*s' for option '--%s'%s%s\n",
                   Program.c_str(), static_cast<int>(Value.size()),
                   Value.data(), Opt->Name.c_str(), Why.empty() ? "" : ": ",
                   Why.c_str());
      return false;
    }
    Opt->Seen = true;
  }
  return true;
}

void CommandLine::printHelp() const {
  std::printf("%s - %s\n\nOptions:\n", Program.c_str(), About.c_str());
  for (const Option &Opt : Options)
    std::printf("  --%-18s %s (default: %s)\n", Opt.Name.c_str(),
                Opt.Help.c_str(), Opt.defaultText().c_str());
  std::printf("  --%-18s %s\n", "help", "print this message");
}
