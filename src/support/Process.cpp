//===- support/Process.cpp - Child-process helpers ------------------------===//

#include "support/Process.h"

#include <csignal>
#include <cstdlib>
#include <sys/prctl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace sacfd;

pid_t sacfd::spawnProcess(FunctionRef<int()> Body) {
  pid_t Pid = ::fork();
  if (Pid != 0)
    return Pid;
  // Child: die with the parent so a crashed coordinator cannot leave
  // workers spinning on shared memory forever.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  if (::getppid() == 1)
    ::_exit(127); // parent died between fork and prctl
  ::_exit(Body());
}

bool sacfd::pollExited(pid_t Pid, bool *Signaled) {
  int Status = 0;
  pid_t R = ::waitpid(Pid, &Status, WNOHANG);
  if (R != Pid)
    return false;
  if (Signaled)
    *Signaled = WIFSIGNALED(Status);
  return true;
}

int sacfd::waitExit(pid_t Pid) {
  int Status = 0;
  if (::waitpid(Pid, &Status, 0) != Pid)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

void sacfd::killProcess(pid_t Pid) {
  if (Pid > 0)
    ::kill(Pid, SIGKILL);
}
