//===- support/Env.cpp - Environment variable helpers --------------------===//

#include "support/Env.h"

#include "support/StrUtil.h"

#include <cstdlib>
#include <thread>

using namespace sacfd;

std::optional<std::string> sacfd::getEnvString(const char *Name) {
  const char *Value = std::getenv(Name);
  if (!Value)
    return std::nullopt;
  return std::string(Value);
}

std::optional<long long> sacfd::getEnvInt(const char *Name) {
  std::optional<std::string> Value = getEnvString(Name);
  if (!Value)
    return std::nullopt;
  return parseInt(*Value);
}

unsigned sacfd::defaultWorkerCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

unsigned sacfd::hardwareThreadCount() { return defaultWorkerCount(); }

unsigned sacfd::defaultThreadCount() {
  if (std::optional<long long> N = getEnvInt("SACFD_THREADS"))
    if (*N > 0)
      return static_cast<unsigned>(*N);
  return hardwareThreadCount();
}
