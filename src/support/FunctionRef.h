//===- support/FunctionRef.h - Non-owning callable reference ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning reference to a callable, modeled on llvm::function_ref.
///
/// FunctionRef is to std::function what std::string_view is to std::string:
/// it never allocates and is cheap to pass by value, which matters on the
/// parallel-dispatch hot path where every with-loop body crosses the
/// Backend::parallelFor boundary.  It must not outlive the callable it was
/// constructed from.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_FUNCTIONREF_H
#define SACFD_SUPPORT_FUNCTIONREF_H

#include <type_traits>
#include <utility>

namespace sacfd {

template <typename Fn> class FunctionRef;

/// Non-owning, trivially copyable reference to any callable with the given
/// signature.
template <typename Ret, typename... Params> class FunctionRef<Ret(Params...)> {
public:
  FunctionRef() = default;

  template <typename Callable,
            typename = std::enable_if_t<!std::is_same_v<
                std::remove_cvref_t<Callable>, FunctionRef>>>
  FunctionRef(Callable &&Fn)
      : Callee(reinterpret_cast<void *>(&Fn)),
        Thunk(&invoke<std::remove_reference_t<Callable>>) {}

  Ret operator()(Params... Args) const {
    return Thunk(Callee, std::forward<Params>(Args)...);
  }

  explicit operator bool() const { return Thunk != nullptr; }

private:
  template <typename Callable>
  static Ret invoke(void *Fn, Params... Args) {
    return (*reinterpret_cast<Callable *>(Fn))(
        std::forward<Params>(Args)...);
  }

  void *Callee = nullptr;
  Ret (*Thunk)(void *, Params...) = nullptr;
};

} // namespace sacfd

#endif // SACFD_SUPPORT_FUNCTIONREF_H
