//===- support/StrUtil.h - Small string helpers ----------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String parsing helpers shared by the CLI parser and env-var handling.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SUPPORT_STRUTIL_H
#define SACFD_SUPPORT_STRUTIL_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sacfd {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep; empty fields are preserved.
std::vector<std::string> split(std::string_view S, char Sep);

/// Parses a whole string as a signed integer.
/// \returns std::nullopt on any trailing garbage, overflow, or empty input.
std::optional<long long> parseInt(std::string_view S);

/// Parses a whole string as a non-negative integer.  Unlike raw strtoull
/// — which silently wraps "-3" to 2^64 - 3 — any leading '-' is rejected.
/// \returns std::nullopt on a sign, trailing garbage, overflow, or empty
/// input.
std::optional<unsigned long long> parseUnsigned(std::string_view S);

/// Parses a whole string as a double (accepts the usual strtod forms).
/// \returns std::nullopt on trailing garbage or empty input.
std::optional<double> parseDouble(std::string_view S);

/// Case-insensitive equality for ASCII strings.
bool equalsLower(std::string_view A, std::string_view B);

/// Lower-cases ASCII characters of \p S.
std::string toLower(std::string_view S);

} // namespace sacfd

#endif // SACFD_SUPPORT_STRUTIL_H
