//===- euler/Characteristics.h - Local characteristic fields ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Eigen-decomposition of the directional Euler flux Jacobian.
///
/// Section 3 of the paper: "The reconstruction is applied to the so-called
/// (local) characteristic variables rather than to the primitive variables
/// ... or the conservative variables Q."  At each cell face the Jacobian
/// dF/dQ is diagonalized at a Roe-averaged state; stencil values are
/// projected onto the left eigenvectors (toCharacteristic), reconstructed
/// component-wise, and projected back (fromCharacteristic).  The same
/// decomposition powers the Roe approximate Riemann solver.
///
/// Variable ordering is [rho, mom_0 .. mom_{Dim-1}, E].  For normal axis a
/// the waves are ordered: u_a - c, entropy, shear (one per tangential
/// axis), u_a + c.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_CHARACTERISTICS_H
#define SACFD_EULER_CHARACTERISTICS_H

#include "euler/Gas.h"
#include "euler/State.h"

#include <array>
#include <cassert>
#include <cmath>

namespace sacfd {

/// The face-averaged quantities the eigen-decomposition is evaluated at.
template <unsigned Dim> struct FaceAverage {
  std::array<double, Dim> Vel = {}; ///< velocity
  double H = 0.0;                   ///< specific total enthalpy
  double C = 0.0;                   ///< sound speed
};

/// Roe average of two primitive states: sqrt(rho)-weighted velocity and
/// enthalpy, with the sound speed consistent with them.  This is the
/// average that makes the linearized Jacobian exact on isolated jumps.
template <unsigned Dim>
FaceAverage<Dim> roeAverage(const Prim<Dim> &L, const Prim<Dim> &R,
                            const Gas &G) {
  // Containment clamps (identity on physical inputs): transiently
  // unphysical mid-step states must not abort Debug runs — the step
  // guard detects them between steps.
  double Wl = std::sqrt(std::max(L.Rho, 0.0));
  double Wr = std::sqrt(std::max(R.Rho, 0.0));
  double Inv = 1.0 / (Wl + Wr);

  FaceAverage<Dim> A;
  double Q2 = 0.0;
  for (unsigned D = 0; D < Dim; ++D) {
    A.Vel[D] = (Wl * L.Vel[D] + Wr * R.Vel[D]) * Inv;
    Q2 += A.Vel[D] * A.Vel[D];
  }
  double El = G.totalEnergy(L.P, L.kineticEnergyDensity());
  double Er = G.totalEnergy(R.P, R.kineticEnergyDensity());
  double Hl = G.totalEnthalpy(L.Rho, L.P, El);
  double Hr = G.totalEnthalpy(R.Rho, R.P, Er);
  A.H = (Wl * Hl + Wr * Hr) * Inv;

  // A hyperbolicity loss (C2 <= 0) clamps to c = 0 instead of asserting;
  // sqrt of the raw value would be the silent-NaN path in Release.
  double C2 = (G.Gamma - 1.0) * (A.H - 0.5 * Q2);
  A.C = std::sqrt(std::max(C2, 0.0));
  return A;
}

/// Arithmetic-mean face state (cheaper, adequate away from strong jumps).
template <unsigned Dim>
FaceAverage<Dim> simpleAverage(const Prim<Dim> &L, const Prim<Dim> &R,
                               const Gas &G) {
  FaceAverage<Dim> A;
  double Q2 = 0.0;
  for (unsigned D = 0; D < Dim; ++D) {
    A.Vel[D] = 0.5 * (L.Vel[D] + R.Vel[D]);
    Q2 += A.Vel[D] * A.Vel[D];
  }
  double Rho = 0.5 * (L.Rho + R.Rho);
  double P = 0.5 * (L.P + R.P);
  A.C = G.soundSpeed(Rho, P);
  A.H = A.C * A.C / (G.Gamma - 1.0) + 0.5 * Q2;
  return A;
}

/// Full eigen-decomposition of dF_axis/dQ at a face-averaged state.
template <unsigned Dim> class EigenSystem {
public:
  static constexpr unsigned N = NumVars<Dim>;
  using Vector = std::array<double, N>;

  EigenSystem(const FaceAverage<Dim> &Avg, const Gas &G, unsigned Axis) {
    assert(Axis < Dim && "axis out of range");
    double C = Avg.C;
    double Un = Avg.Vel[Axis];
    double Q2 = 0.0;
    for (unsigned D = 0; D < Dim; ++D)
      Q2 += Avg.Vel[D] * Avg.Vel[D];
    double B1 = (G.Gamma - 1.0) / (C * C);
    double B2 = 0.5 * B1 * Q2;

    // Wave slots: 0 = u-c, 1 = entropy, 2.. = shear (tangential axes in
    // increasing order), N-1 = u+c.
    Lambda[0] = Un - C;
    Lambda[1] = Un;
    Lambda[N - 1] = Un + C;

    auto clear = [](Vector &V) { V.fill(0.0); };

    // Acoustic u - c.
    clear(Right[0]);
    Right[0][0] = 1.0;
    for (unsigned D = 0; D < Dim; ++D)
      Right[0][1 + D] = Avg.Vel[D];
    Right[0][1 + Axis] = Un - C;
    Right[0][N - 1] = Avg.H - Un * C;

    clear(Left[0]);
    Left[0][0] = 0.5 * (B2 + Un / C);
    for (unsigned D = 0; D < Dim; ++D)
      Left[0][1 + D] = 0.5 * (-B1 * Avg.Vel[D]);
    Left[0][1 + Axis] += 0.5 * (-1.0 / C);
    Left[0][N - 1] = 0.5 * B1;

    // Entropy wave.
    clear(Right[1]);
    Right[1][0] = 1.0;
    for (unsigned D = 0; D < Dim; ++D)
      Right[1][1 + D] = Avg.Vel[D];
    Right[1][N - 1] = 0.5 * Q2;

    clear(Left[1]);
    Left[1][0] = 1.0 - B2;
    for (unsigned D = 0; D < Dim; ++D)
      Left[1][1 + D] = B1 * Avg.Vel[D];
    Left[1][N - 1] = -B1;

    // Shear waves, one per tangential axis.
    unsigned Slot = 2;
    for (unsigned T = 0; T < Dim; ++T) {
      if (T == Axis)
        continue;
      Lambda[Slot] = Un;
      clear(Right[Slot]);
      Right[Slot][1 + T] = 1.0;
      Right[Slot][N - 1] = Avg.Vel[T];
      clear(Left[Slot]);
      Left[Slot][0] = -Avg.Vel[T];
      Left[Slot][1 + T] = 1.0;
      ++Slot;
    }
    assert(Slot == N - 1 && "wave slot accounting broken");

    // Acoustic u + c.
    clear(Right[N - 1]);
    Right[N - 1][0] = 1.0;
    for (unsigned D = 0; D < Dim; ++D)
      Right[N - 1][1 + D] = Avg.Vel[D];
    Right[N - 1][1 + Axis] = Un + C;
    Right[N - 1][N - 1] = Avg.H + Un * C;

    clear(Left[N - 1]);
    Left[N - 1][0] = 0.5 * (B2 - Un / C);
    for (unsigned D = 0; D < Dim; ++D)
      Left[N - 1][1 + D] = 0.5 * (-B1 * Avg.Vel[D]);
    Left[N - 1][1 + Axis] += 0.5 * (1.0 / C);
    Left[N - 1][N - 1] = 0.5 * B1;
  }

  /// Wave speed of characteristic field \p K.
  double lambda(unsigned K) const {
    assert(K < N && "field out of range");
    return Lambda[K];
  }

  /// Projects a conservative state onto the characteristic basis: w = L q.
  Vector toCharacteristic(const Cons<Dim> &Q) const {
    Vector W;
    for (unsigned K = 0; K < N; ++K) {
      double Acc = 0.0;
      for (unsigned J = 0; J < N; ++J)
        Acc += Left[K][J] * Q.comp(J);
      W[K] = Acc;
    }
    return W;
  }

  /// Reassembles a conservative state from characteristic amplitudes:
  /// q = sum_k w_k r_k.
  Cons<Dim> fromCharacteristic(const Vector &W) const {
    Cons<Dim> Q;
    for (unsigned J = 0; J < N; ++J) {
      double Acc = 0.0;
      for (unsigned K = 0; K < N; ++K)
        Acc += W[K] * Right[K][J];
      Q.setComp(J, Acc);
    }
    return Q;
  }

  /// Right eigenvector of field \p K as a conservative state.
  Cons<Dim> rightVector(unsigned K) const {
    assert(K < N && "field out of range");
    Cons<Dim> Q;
    for (unsigned J = 0; J < N; ++J)
      Q.setComp(J, Right[K][J]);
    return Q;
  }

private:
  std::array<double, N> Lambda;
  // Left[k] is the k-th left eigenvector (row of L); Right[k] the k-th
  // right eigenvector (column of R, stored row-wise).
  std::array<Vector, N> Left;
  std::array<Vector, N> Right;
};

} // namespace sacfd

#endif // SACFD_EULER_CHARACTERISTICS_H
