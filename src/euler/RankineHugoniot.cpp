//===- euler/RankineHugoniot.cpp - Moving-shock jump relations -----------===//

#include "euler/RankineHugoniot.h"

#include <cmath>

using namespace sacfd;

PostShockState sacfd::postShockState(double Ms, double Rho0, double P0,
                                     const Gas &G) {
  assert(Ms >= 1.0 && "shock Mach number must be >= 1");
  assert(Rho0 > 0.0 && P0 > 0.0 && "quiescent state must be physical");

  double Gam = G.Gamma;
  double Ms2 = Ms * Ms;
  double C0 = G.soundSpeed(Rho0, P0);

  PostShockState S;
  S.P = P0 * (1.0 + 2.0 * Gam / (Gam + 1.0) * (Ms2 - 1.0));
  S.Rho = Rho0 * ((Gam + 1.0) * Ms2) / ((Gam - 1.0) * Ms2 + 2.0);
  S.U = 2.0 * C0 * (Ms2 - 1.0) / ((Gam + 1.0) * Ms);
  return S;
}

double sacfd::postShockFlowMach(double Ms, double Rho0, double P0,
                                const Gas &G) {
  PostShockState S = postShockState(Ms, Rho0, P0, G);
  return S.U / G.soundSpeed(S.Rho, S.P);
}

JumpResiduals sacfd::shockJumpResiduals(double Ms, double Rho0, double P0,
                                        const PostShockState &S,
                                        const Gas &G) {
  // Shock-fixed frame: upstream speed W0 = Ms*c0, downstream W1 = W0 - u1.
  double C0 = G.soundSpeed(Rho0, P0);
  double W0 = Ms * C0;
  double W1 = W0 - S.U;

  double MassUp = Rho0 * W0;
  double MassDown = S.Rho * W1;

  double MomUp = Rho0 * W0 * W0 + P0;
  double MomDown = S.Rho * W1 * W1 + S.P;

  double Gam = G.Gamma;
  double EnthUp = Gam / (Gam - 1.0) * P0 / Rho0 + 0.5 * W0 * W0;
  double EnthDown = Gam / (Gam - 1.0) * S.P / S.Rho + 0.5 * W1 * W1;

  return {MassDown - MassUp, MomDown - MomUp, EnthDown - EnthUp};
}
