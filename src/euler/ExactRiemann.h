//===- euler/ExactRiemann.h - Exact Riemann solver --------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact solution of the 1D Riemann problem for a perfect gas.
///
/// The paper validates against Sod's problem [16], whose accepted answer
/// is the exact Riemann solution.  This solver (Godunov/Toro style:
/// Newton iteration on the star pressure, then self-similar wave-fan
/// sampling) is the validation baseline for the whole 1D test matrix and
/// the FIG1 error report.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_EXACTRIEMANN_H
#define SACFD_EULER_EXACTRIEMANN_H

#include "euler/Gas.h"
#include "euler/State.h"

namespace sacfd {

/// Exact solution of the Riemann problem with data (L, R).
///
/// Construct, check valid(), then sample the self-similar solution at any
/// speed s = x/t.  Invalid only when the data produce vacuum (the pressure
/// positivity condition fails) or the Newton iteration cannot converge.
class ExactRiemannSolver {
public:
  /// Solves the problem; O(iterations) Newton steps on p*.
  ExactRiemannSolver(const Prim<1> &L, const Prim<1> &R,
                     const Gas &G = Gas(), double Tol = 1e-12,
                     unsigned MaxIter = 100);

  /// \returns false when the data generate vacuum or no convergence.
  bool valid() const { return Valid; }

  /// Star-region pressure between the two nonlinear waves.
  double pStar() const { return PStar; }
  /// Star-region (contact) velocity.
  double uStar() const { return UStar; }

  /// Samples the self-similar solution at speed \p S = x/t.
  Prim<1> sample(double S) const;

  /// True when the left (resp. right) nonlinear wave is a shock.
  bool leftIsShock() const { return PStar > Left.P; }
  bool rightIsShock() const { return PStar > Right.P; }

private:
  double pressureFunction(double P, const Prim<1> &W, double C) const;
  double pressureDerivative(double P, const Prim<1> &W, double C) const;
  double initialGuess() const;

  Prim<1> Left, Right;
  Gas G;
  double Cl = 0.0, Cr = 0.0;
  double PStar = 0.0, UStar = 0.0;
  bool Valid = false;
};

} // namespace sacfd

#endif // SACFD_EULER_EXACTRIEMANN_H
