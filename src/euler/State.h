//===- euler/State.h - Conservative and primitive cell states --*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-cell value types of the solver — the paper's `fluid_cv`
/// (conservative: Q of Eq. 2) and `fluid_pv` (primitive: rho, u, p).
///
/// Both are templated on the spatial dimension so the same solver body
/// instantiates for the 1D Sod tube and the 2D channel problem (the
/// paper's rank-generic reuse, realized with compile-time Dim for zero
/// abstraction cost).  Cons has the vector-space operators the schemes
/// need (conservative states are added/scaled inside reconstructions and
/// Runge-Kutta stages), so Cons-valued NDArrays compose with the array
/// expression layer exactly like SaC's `fluid_cv[.]`.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_STATE_H
#define SACFD_EULER_STATE_H

#include "euler/Gas.h"

#include <array>
#include <cassert>
#include <cmath>
#include <cstddef>

namespace sacfd {

/// Number of conserved variables in \p Dim spatial dimensions.
template <unsigned Dim> inline constexpr unsigned NumVars = Dim + 2;

/// Conservative state Q = [rho, rho*u..., E] (the paper's fluid_cv).
template <unsigned Dim> struct Cons {
  static_assert(Dim >= 1 && Dim <= 3, "supported spatial dimensions");
  static constexpr unsigned N = NumVars<Dim>;

  double Rho = 0.0;                   ///< mass density
  std::array<double, Dim> Mom = {};   ///< momentum density rho*u_d
  double E = 0.0;                     ///< total energy density

  /// Flat component access in the canonical order [rho, mom..., E],
  /// matching the eigenvector matrices in Characteristics.h.
  double comp(unsigned K) const {
    assert(K < N && "component out of range");
    if (K == 0)
      return Rho;
    if (K == N - 1)
      return E;
    return Mom[K - 1];
  }
  void setComp(unsigned K, double V) {
    assert(K < N && "component out of range");
    if (K == 0)
      Rho = V;
    else if (K == N - 1)
      E = V;
    else
      Mom[K - 1] = V;
  }

  friend Cons operator+(const Cons &A, const Cons &B) {
    Cons R;
    R.Rho = A.Rho + B.Rho;
    for (unsigned D = 0; D < Dim; ++D)
      R.Mom[D] = A.Mom[D] + B.Mom[D];
    R.E = A.E + B.E;
    return R;
  }
  friend Cons operator-(const Cons &A, const Cons &B) {
    Cons R;
    R.Rho = A.Rho - B.Rho;
    for (unsigned D = 0; D < Dim; ++D)
      R.Mom[D] = A.Mom[D] - B.Mom[D];
    R.E = A.E - B.E;
    return R;
  }
  friend Cons operator*(const Cons &A, double S) {
    Cons R;
    R.Rho = A.Rho * S;
    for (unsigned D = 0; D < Dim; ++D)
      R.Mom[D] = A.Mom[D] * S;
    R.E = A.E * S;
    return R;
  }
  friend Cons operator*(double S, const Cons &A) { return A * S; }
  friend Cons operator/(const Cons &A, double S) { return A * (1.0 / S); }

  Cons &operator+=(const Cons &B) { return *this = *this + B; }
  Cons &operator-=(const Cons &B) { return *this = *this - B; }

  friend bool operator==(const Cons &A, const Cons &B) {
    if (A.Rho != B.Rho || A.E != B.E)
      return false;
    for (unsigned D = 0; D < Dim; ++D)
      if (A.Mom[D] != B.Mom[D])
        return false;
    return true;
  }
};

/// Primitive state [rho, u..., p] (the paper's fluid_pv).
template <unsigned Dim> struct Prim {
  static_assert(Dim >= 1 && Dim <= 3, "supported spatial dimensions");
  static constexpr unsigned N = NumVars<Dim>;

  double Rho = 0.0;                   ///< mass density
  std::array<double, Dim> Vel = {};   ///< velocity u_d
  double P = 0.0;                     ///< pressure

  double comp(unsigned K) const {
    assert(K < N && "component out of range");
    if (K == 0)
      return Rho;
    if (K == N - 1)
      return P;
    return Vel[K - 1];
  }
  void setComp(unsigned K, double V) {
    assert(K < N && "component out of range");
    if (K == 0)
      Rho = V;
    else if (K == N - 1)
      P = V;
    else
      Vel[K - 1] = V;
  }

  /// Kinetic energy density rho |u|^2 / 2.
  double kineticEnergyDensity() const {
    double Q2 = 0.0;
    for (unsigned D = 0; D < Dim; ++D)
      Q2 += Vel[D] * Vel[D];
    return 0.5 * Rho * Q2;
  }
};

/// Primitive -> conservative (Eq. 2).
template <unsigned Dim> Cons<Dim> toCons(const Prim<Dim> &W, const Gas &G) {
  Cons<Dim> Q;
  Q.Rho = W.Rho;
  for (unsigned D = 0; D < Dim; ++D)
    Q.Mom[D] = W.Rho * W.Vel[D];
  Q.E = G.totalEnergy(W.P, W.kineticEnergyDensity());
  return Q;
}

/// Conservative -> primitive (inverts Eq. 2 via Eq. 3).
///
/// Total function: a non-positive density yields non-finite velocity /
/// pressure components instead of aborting (Debug) or being undefined
/// (Release).  Callers that must not see such states check
/// isPhysicalState() first; the solver-level detector is the health scan
/// in solver/StepGuard.h.
template <unsigned Dim> Prim<Dim> toPrim(const Cons<Dim> &Q, const Gas &G) {
  Prim<Dim> W;
  W.Rho = Q.Rho;
  double Kinetic = 0.0;
  for (unsigned D = 0; D < Dim; ++D) {
    W.Vel[D] = Q.Mom[D] / Q.Rho;
    Kinetic += Q.Mom[D] * W.Vel[D];
  }
  W.P = G.pressure(Q.Rho, 0.5 * Kinetic, Q.E);
  return W;
}

/// True when the conserved state is finite with positive density and
/// non-negative pressure — the admissible set the schemes assume.  The
/// step guard scans for violations between steps.
template <unsigned Dim>
bool isPhysicalState(const Cons<Dim> &Q, const Gas &G) {
  for (unsigned K = 0; K < NumVars<Dim>; ++K)
    if (!std::isfinite(Q.comp(K)))
      return false;
  if (!(Q.Rho > 0.0))
    return false;
  double Mom2 = 0.0;
  for (unsigned D = 0; D < Dim; ++D)
    Mom2 += Q.Mom[D] * Q.Mom[D];
  return Gas::physicalState(Q.Rho,
                            G.pressure(Q.Rho, 0.5 * Mom2 / Q.Rho, Q.E));
}

/// Fastest signal speed |u_axis| + c of a cell; the building block of the
/// paper's GetDT kernel.
template <unsigned Dim>
double maxWaveSpeed(const Prim<Dim> &W, const Gas &G, unsigned Axis) {
  assert(Axis < Dim && "axis out of range");
  double C = G.soundSpeed(W.Rho, W.P);
  double U = W.Vel[Axis];
  return (U < 0.0 ? -U : U) + C;
}

} // namespace sacfd

#endif // SACFD_EULER_STATE_H
