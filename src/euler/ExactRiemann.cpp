//===- euler/ExactRiemann.cpp - Exact Riemann solver ----------------------===//
//
// Implementation follows the classical Godunov iteration as presented in
// Toro, "Riemann Solvers and Numerical Methods for Fluid Dynamics",
// chapter 4: a Newton-Raphson iteration on the star pressure with
// shock (Rankine-Hugoniot) and rarefaction (isentropic) branches, then
// direct sampling of the self-similar wave fan.
//
//===----------------------------------------------------------------------===//

#include "euler/ExactRiemann.h"

#include <algorithm>
#include <cmath>

using namespace sacfd;

ExactRiemannSolver::ExactRiemannSolver(const Prim<1> &L, const Prim<1> &R,
                                       const Gas &Gas_, double Tol,
                                       unsigned MaxIter)
    : Left(L), Right(R), G(Gas_) {
  if (L.Rho <= 0.0 || R.Rho <= 0.0 || L.P <= 0.0 || R.P <= 0.0)
    return;
  Cl = G.soundSpeed(L.Rho, L.P);
  Cr = G.soundSpeed(R.Rho, R.P);

  // Pressure positivity (no-vacuum) condition.
  double Gm1 = G.Gamma - 1.0;
  if (2.0 * (Cl + Cr) / Gm1 <= Right.Vel[0] - Left.Vel[0])
    return;

  double P = initialGuess();
  double DeltaU = Right.Vel[0] - Left.Vel[0];
  for (unsigned Iter = 0; Iter < MaxIter; ++Iter) {
    double F = pressureFunction(P, Left, Cl) +
               pressureFunction(P, Right, Cr) + DeltaU;
    double DF = pressureDerivative(P, Left, Cl) +
                pressureDerivative(P, Right, Cr);
    double PNew = P - F / DF;
    if (PNew < 0.0)
      PNew = Tol; // guard: pressure stays positive
    double Change = 2.0 * std::fabs(PNew - P) / (PNew + P);
    P = PNew;
    if (Change < Tol) {
      PStar = P;
      UStar = 0.5 * (Left.Vel[0] + Right.Vel[0]) +
              0.5 * (pressureFunction(P, Right, Cr) -
                     pressureFunction(P, Left, Cl));
      Valid = true;
      return;
    }
  }
}

double ExactRiemannSolver::pressureFunction(double P, const Prim<1> &W,
                                            double C) const {
  double Gam = G.Gamma;
  if (P > W.P) {
    // Shock branch (Rankine-Hugoniot).
    double A = 2.0 / ((Gam + 1.0) * W.Rho);
    double B = (Gam - 1.0) / (Gam + 1.0) * W.P;
    return (P - W.P) * std::sqrt(A / (P + B));
  }
  // Rarefaction branch (isentropic).
  return 2.0 * C / (Gam - 1.0) *
         (std::pow(P / W.P, (Gam - 1.0) / (2.0 * Gam)) - 1.0);
}

double ExactRiemannSolver::pressureDerivative(double P, const Prim<1> &W,
                                              double C) const {
  double Gam = G.Gamma;
  if (P > W.P) {
    double A = 2.0 / ((Gam + 1.0) * W.Rho);
    double B = (Gam - 1.0) / (Gam + 1.0) * W.P;
    return std::sqrt(A / (B + P)) * (1.0 - 0.5 * (P - W.P) / (B + P));
  }
  return 1.0 / (W.Rho * C) *
         std::pow(P / W.P, -(Gam + 1.0) / (2.0 * Gam));
}

double ExactRiemannSolver::initialGuess() const {
  // PVRS (linearized) guess, clamped into the two-rarefaction /
  // two-shock-sensible band; Toro Section 4.3.2.
  double RhoBar = 0.5 * (Left.Rho + Right.Rho);
  double CBar = 0.5 * (Cl + Cr);
  double Ppv = 0.5 * (Left.P + Right.P) -
               0.125 * (Right.Vel[0] - Left.Vel[0]) * RhoBar * CBar * 4.0;
  double Pmin = std::min(Left.P, Right.P);
  double Pmax = std::max(Left.P, Right.P);

  if (Ppv >= Pmin && Ppv <= Pmax && Pmax / Pmin <= 2.0)
    return Ppv;

  if (Ppv < Pmin) {
    // Two-rarefaction guess.
    double Gam = G.Gamma;
    double Z = (Gam - 1.0) / (2.0 * Gam);
    double Num = Cl + Cr - 0.5 * (Gam - 1.0) * (Right.Vel[0] - Left.Vel[0]);
    double Den = Cl / std::pow(Left.P, Z) + Cr / std::pow(Right.P, Z);
    return std::pow(Num / Den, 1.0 / Z);
  }

  // Two-shock guess seeded with the (positive) PVRS value.
  double Gam = G.Gamma;
  double P0 = std::max(Ppv, 1e-12);
  double Al = 2.0 / ((Gam + 1.0) * Left.Rho);
  double Bl = (Gam - 1.0) / (Gam + 1.0) * Left.P;
  double Ar = 2.0 / ((Gam + 1.0) * Right.Rho);
  double Br = (Gam - 1.0) / (Gam + 1.0) * Right.P;
  double Gl = std::sqrt(Al / (P0 + Bl));
  double Gr = std::sqrt(Ar / (P0 + Br));
  double Pts = (Gl * Left.P + Gr * Right.P -
                (Right.Vel[0] - Left.Vel[0])) /
               (Gl + Gr);
  return std::max(Pts, 1e-12);
}

Prim<1> ExactRiemannSolver::sample(double S) const {
  double Gam = G.Gamma;
  double Gm1 = Gam - 1.0;
  double Gp1 = Gam + 1.0;

  Prim<1> W;
  if (S <= UStar) {
    // Left of the contact.
    if (PStar > Left.P) {
      // Left shock.
      double Ratio = PStar / Left.P;
      double ShockSpeed =
          Left.Vel[0] - Cl * std::sqrt(Gp1 / (2.0 * Gam) * Ratio +
                                       Gm1 / (2.0 * Gam));
      if (S <= ShockSpeed)
        return Left;
      W.Rho = Left.Rho * (Ratio + Gm1 / Gp1) / (Gm1 / Gp1 * Ratio + 1.0);
      W.Vel[0] = UStar;
      W.P = PStar;
      return W;
    }
    // Left rarefaction.
    double HeadSpeed = Left.Vel[0] - Cl;
    if (S <= HeadSpeed)
      return Left;
    double CStarL = Cl * std::pow(PStar / Left.P, Gm1 / (2.0 * Gam));
    double TailSpeed = UStar - CStarL;
    if (S >= TailSpeed) {
      W.Rho = Left.Rho * std::pow(PStar / Left.P, 1.0 / Gam);
      W.Vel[0] = UStar;
      W.P = PStar;
      return W;
    }
    // Inside the fan.
    double C = 2.0 / Gp1 * (Cl + 0.5 * Gm1 * (Left.Vel[0] - S));
    W.Vel[0] = 2.0 / Gp1 * (Cl + 0.5 * Gm1 * Left.Vel[0] + S);
    W.Rho = Left.Rho * std::pow(C / Cl, 2.0 / Gm1);
    W.P = Left.P * std::pow(C / Cl, 2.0 * Gam / Gm1);
    return W;
  }

  // Right of the contact (mirror image).
  if (PStar > Right.P) {
    // Right shock.
    double Ratio = PStar / Right.P;
    double ShockSpeed =
        Right.Vel[0] + Cr * std::sqrt(Gp1 / (2.0 * Gam) * Ratio +
                                      Gm1 / (2.0 * Gam));
    if (S >= ShockSpeed)
      return Right;
    W.Rho = Right.Rho * (Ratio + Gm1 / Gp1) / (Gm1 / Gp1 * Ratio + 1.0);
    W.Vel[0] = UStar;
    W.P = PStar;
    return W;
  }
  // Right rarefaction.
  double HeadSpeed = Right.Vel[0] + Cr;
  if (S >= HeadSpeed)
    return Right;
  double CStarR = Cr * std::pow(PStar / Right.P, Gm1 / (2.0 * Gam));
  double TailSpeed = UStar + CStarR;
  if (S <= TailSpeed) {
    W.Rho = Right.Rho * std::pow(PStar / Right.P, 1.0 / Gam);
    W.Vel[0] = UStar;
    W.P = PStar;
    return W;
  }
  double C = 2.0 / Gp1 * (Cr - 0.5 * Gm1 * (Right.Vel[0] - S));
  W.Vel[0] = 2.0 / Gp1 * (-Cr + 0.5 * Gm1 * Right.Vel[0] + S);
  W.Rho = Right.Rho * std::pow(C / Cr, 2.0 / Gm1);
  W.P = Right.P * std::pow(C / Cr, 2.0 * Gam / Gm1);
  return W;
}
