//===- euler/Flux.h - Physical Euler fluxes --------------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inviscid flux vectors F and G of Eq. (2).
///
/// physicalFlux(Q, G, Axis) evaluates the flux along coordinate \p Axis:
/// Axis 0 gives F, Axis 1 gives G.  The directional form lets the
/// dimension-generic face sweep use one function for every direction.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_FLUX_H
#define SACFD_EULER_FLUX_H

#include "euler/Gas.h"
#include "euler/State.h"

#include <cassert>

namespace sacfd {

/// Directional physical flux of the Euler equations (Eq. 2).
///
/// F_axis(Q) = [rho*un, rho*un*u_d + p*delta(d,axis)..., un*(E + p)]
/// where un is the velocity component along \p Axis.
template <unsigned Dim>
Cons<Dim> physicalFlux(const Cons<Dim> &Q, const Gas &G, unsigned Axis) {
  assert(Axis < Dim && "axis out of range");

  // Total on unphysical states (rho <= 0 propagates non-finite
  // components); the step guard's health scan is the detection layer.
  double Un = Q.Mom[Axis] / Q.Rho;
  double Kinetic = 0.0;
  for (unsigned D = 0; D < Dim; ++D)
    Kinetic += Q.Mom[D] * Q.Mom[D];
  Kinetic = 0.5 * Kinetic / Q.Rho;
  double P = G.pressure(Q.Rho, Kinetic, Q.E);

  Cons<Dim> F;
  F.Rho = Q.Mom[Axis];
  for (unsigned D = 0; D < Dim; ++D)
    F.Mom[D] = Q.Mom[D] * Un;
  F.Mom[Axis] += P;
  F.E = Un * (Q.E + P);
  return F;
}

/// Directional physical flux from a primitive state (avoids the
/// cons->prim roundtrip when the primitive form is already at hand).
template <unsigned Dim>
Cons<Dim> physicalFlux(const Prim<Dim> &W, const Gas &G, unsigned Axis) {
  assert(Axis < Dim && "axis out of range");
  double Un = W.Vel[Axis];
  double E = G.totalEnergy(W.P, W.kineticEnergyDensity());

  Cons<Dim> F;
  F.Rho = W.Rho * Un;
  for (unsigned D = 0; D < Dim; ++D)
    F.Mom[D] = W.Rho * W.Vel[D] * Un;
  F.Mom[Axis] += W.P;
  F.E = Un * (E + W.P);
  return F;
}

} // namespace sacfd

#endif // SACFD_EULER_FLUX_H
