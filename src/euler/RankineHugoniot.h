//===- euler/RankineHugoniot.h - Moving-shock jump relations ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rankine-Hugoniot relations for a shock moving into quiescent gas.
///
/// The paper's 2D experiment drives the domain through its channel exits:
/// "The boundary conditions in the exit sections of two channels are
/// imposed in such a way that the flow variables are equal to the values
/// behind the shock waves calculated from the Rankine-Hugoniot relations"
/// at Ms = 2.2 (supersonic post-shock flow, so the exit state never
/// changes during the run).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_RANKINEHUGONIOT_H
#define SACFD_EULER_RANKINEHUGONIOT_H

#include "euler/Gas.h"
#include "euler/State.h"

#include <cassert>

namespace sacfd {

/// Scalar post-shock state behind a shock of Mach number \p Ms advancing
/// into gas at rest with (\p Rho0, \p P0).
struct PostShockState {
  double Rho; ///< post-shock density
  double U;   ///< post-shock flow speed, in the shock's direction of travel
  double P;   ///< post-shock pressure
};

/// Computes the post-shock state from the Rankine-Hugoniot relations.
/// Requires Ms >= 1.
PostShockState postShockState(double Ms, double Rho0, double P0,
                              const Gas &G);

/// \returns the flow Mach number u1/c1 behind the shock; > 1 iff the exit
/// state is supersonic and boundary values stay frozen (true at Ms = 2.2,
/// as the paper notes).
double postShockFlowMach(double Ms, double Rho0, double P0, const Gas &G);

/// Builds the Dim-dimensional primitive inflow state for a shock
/// traveling along +\p Axis into quiescent gas \p Quiescent.
template <unsigned Dim>
Prim<Dim> postShockInflow(double Ms, const Prim<Dim> &Quiescent,
                          unsigned Axis, const Gas &G) {
  assert(Axis < Dim && "axis out of range");
  PostShockState S = postShockState(Ms, Quiescent.Rho, Quiescent.P, G);
  Prim<Dim> W;
  W.Rho = S.Rho;
  W.P = S.P;
  W.Vel = {};
  W.Vel[Axis] = S.U;
  return W;
}

/// Residuals of the three conservation laws across the shock, evaluated
/// in the shock-fixed frame; all ~0 for a state produced by
/// postShockState.  Exposed for property tests.
struct JumpResiduals {
  double Mass;
  double Momentum;
  double Energy;
};
JumpResiduals shockJumpResiduals(double Ms, double Rho0, double P0,
                                 const PostShockState &S, const Gas &G);

} // namespace sacfd

#endif // SACFD_EULER_RANKINEHUGONIOT_H
