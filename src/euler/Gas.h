//===- euler/Gas.h - Perfect-gas equation of state --------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The calorically perfect gas closing the Euler system.
///
/// Eq. (3) of the paper:  p = (gamma - 1) (E - rho (u^2+v^2)/2)  with
/// gamma = 1.4 for air.  Gas bundles gamma with the derived thermodynamic
/// helpers every layer above needs.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_GAS_H
#define SACFD_EULER_GAS_H

#include <cassert>
#include <cmath>

namespace sacfd {

/// Ratio of specific heats and the EOS helpers derived from it.
struct Gas {
  /// gamma = cp/cv; 1.4 for diatomic air (the paper's value).
  double Gamma = 1.4;

  constexpr Gas() = default;
  constexpr explicit Gas(double Gamma) : Gamma(Gamma) {}

  /// Pressure from density, total energy density, and kinetic energy
  /// density (Eq. 3): p = (gamma-1) (E - rho |u|^2 / 2).
  double pressure(double Rho, double KineticEnergyDensity,
                  double TotalEnergyDensity) const {
    (void)Rho;
    return (Gamma - 1.0) * (TotalEnergyDensity - KineticEnergyDensity);
  }

  /// Total energy density from primitive state:
  /// E = p/(gamma-1) + rho |u|^2 / 2.
  double totalEnergy(double P, double KineticEnergyDensity) const {
    return P / (Gamma - 1.0) + KineticEnergyDensity;
  }

  /// Speed of sound c = sqrt(gamma p / rho).
  double soundSpeed(double Rho, double P) const {
    assert(Rho > 0.0 && "non-positive density");
    assert(P >= 0.0 && "negative pressure");
    return std::sqrt(Gamma * P / Rho);
  }

  /// Specific total enthalpy H = (E + p) / rho.
  double totalEnthalpy(double Rho, double P,
                       double TotalEnergyDensity) const {
    assert(Rho > 0.0 && "non-positive density");
    return (TotalEnergyDensity + P) / Rho;
  }
};

} // namespace sacfd

#endif // SACFD_EULER_GAS_H
