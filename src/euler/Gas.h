//===- euler/Gas.h - Perfect-gas equation of state --------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The calorically perfect gas closing the Euler system.
///
/// Eq. (3) of the paper:  p = (gamma - 1) (E - rho (u^2+v^2)/2)  with
/// gamma = 1.4 for air.  Gas bundles gamma with the derived thermodynamic
/// helpers every layer above needs.
///
/// Breakdown containment: the EOS helpers are total functions.  Earlier
/// revisions guarded unphysical inputs with asserts only, so a negative
/// pressure aborted Debug runs and silently produced NaN in Release
/// builds.  Unstable schemes *do* produce transiently unphysical states
/// mid-step, so the helpers now clamp instead: detection belongs to the
/// field health scan (solver/StepGuard.h), which observes the stored
/// states between steps.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_EULER_GAS_H
#define SACFD_EULER_GAS_H

#include <algorithm>
#include <cmath>
#include <limits>

namespace sacfd {

/// Ratio of specific heats and the EOS helpers derived from it.
struct Gas {
  /// gamma = cp/cv; 1.4 for diatomic air (the paper's value).
  double Gamma = 1.4;

  constexpr Gas() = default;
  constexpr explicit Gas(double Gamma) : Gamma(Gamma) {}

  /// Pressure from density, total energy density, and kinetic energy
  /// density (Eq. 3): p = (gamma-1) (E - rho |u|^2 / 2).
  double pressure(double Rho, double KineticEnergyDensity,
                  double TotalEnergyDensity) const {
    (void)Rho;
    return (Gamma - 1.0) * (TotalEnergyDensity - KineticEnergyDensity);
  }

  /// Total energy density from primitive state:
  /// E = p/(gamma-1) + rho |u|^2 / 2.
  double totalEnergy(double P, double KineticEnergyDensity) const {
    return P / (Gamma - 1.0) + KineticEnergyDensity;
  }

  /// Speed of sound c = sqrt(gamma p / rho).
  ///
  /// Unphysical inputs are contained rather than asserted: negative
  /// pressure clamps to c = 0 and non-positive density returns +inf (an
  /// infinite signal speed collapses the CFL step).  Both outcomes keep
  /// downstream arithmetic NaN-free so the health scan, not undefined
  /// behavior, decides what happens to a broken state.  Physical inputs
  /// are evaluated bit-identically to the plain formula.
  double soundSpeed(double Rho, double P) const {
    if (!(Rho > 0.0))
      return std::numeric_limits<double>::infinity();
    return std::sqrt(Gamma * std::max(P, 0.0) / Rho);
  }

  /// Specific total enthalpy H = (E + p) / rho.  Non-positive density
  /// propagates inf/NaN for the health scan to catch (no Release/Debug
  /// divergence).
  double totalEnthalpy(double Rho, double P,
                       double TotalEnergyDensity) const {
    return (TotalEnergyDensity + P) / Rho;
  }

  /// True when (rho, p) is a physically admissible thermodynamic state.
  static bool physicalState(double Rho, double P) {
    return std::isfinite(Rho) && std::isfinite(P) && Rho > 0.0 && P >= 0.0;
  }
};

} // namespace sacfd

#endif // SACFD_EULER_GAS_H
