//===- shard/ShardCoordinator.h - Multi-process shard driver ----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lockstep driver for a sharded 2D run: N forked worker processes, each
/// owning a full SolverRun over one row block plus ghost rows, exchange
/// halo slabs through shared-memory mailboxes every RK stage while the
/// coordinator broadcasts commands and reduces the per-shard GetDT
/// maxima into the global CFL step.
///
/// Bit-determinism: the shard-order max reduction reproduces the global
/// GetDT maximum exactly (max is grouping-invariant), the broadcast dt
/// is applied by every worker, every sub-grid coordinate is bitwise the
/// global grid's (Grid::rowSlice), and a halo slab is a bitwise copy of
/// neighbor interior rows — so an N-shard run matches the single-process
/// run bit for bit, which the determinism suite pins at 1/2/4 shards.
///
/// Elastic recovery: each worker checkpoints its block into its own
/// CheckpointStore directory on a shared cadence.  When a worker dies at
/// a step barrier with a checkpoint of exactly its current state — same
/// step count and no clock snap applied since it was written — only that
/// shard is re-forked and resumed while the others wait inside their
/// mailbox spins; any messier death (mid-step, stale checkpoint, snapped
/// clock) falls back to a global rewind to the latest common generation.
/// A rewound fleet is brought back by replaying the coordinator's
/// recorded command stream — the exact dt of every committed step
/// (advanceTo clamps included) and every end-time snap — rather than by
/// recomputing steps, so recovery is bitwise faithful even when the
/// original steps ran under a clamp the rewound clock no longer implies.
/// Either way the run continues to the same bitwise final state, which
/// the fault tests assert by hash.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SHARD_SHARDCOORDINATOR_H
#define SACFD_SHARD_SHARDCOORDINATOR_H

#include "shard/ShardPlan.h"
#include "shard/ShardShm.h"
#include "solver/RunConfig.h"
#include "support/Shm.h"

#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

namespace sacfd {

/// Everything a shard run is shaped by.  Scheme/engine/layout mirror the
/// single-process RunConfig knobs so a sharded run can be compared
/// bitwise against the equivalent SolverRun.
struct ShardOptions {
  unsigned Shards = 2;
  SchemeConfig Scheme;
  EngineKind Engine = EngineKind::Fused;
  Layout FieldLayout = Layout::AoS;
  bool Simd = true;
  bool Pooling = true;
  /// Per-shard checkpoint stores live under `<CheckpointDir>/shard-<k>`;
  /// empty disables durability (and with it, elastic recovery).
  std::string CheckpointDir;
  /// Checkpoint cadence in steps (0 = off).  The cadence is shared by
  /// every shard, so the per-shard stores always hold a common
  /// generation set.
  unsigned CheckpointEvery = 0;
  unsigned CheckpointKeep = 3;
  /// Resume every shard from the latest generation common to all the
  /// per-shard stores (fresh start when none exists).
  bool Resume = false;
  /// Reserve the per-shard full-storage dump section so tests can read
  /// ghost rows back (exportShardStorage).
  bool StorageDump = false;
};

/// Forks, drives and recovers the worker fleet.  Single-threaded on the
/// coordinator side — it never creates a Backend, so forking is always
/// safe (no live threads).
class ShardCoordinator {
public:
  ShardCoordinator(Problem<2> Global, ShardOptions Opt);
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator &) = delete;
  ShardCoordinator &operator=(const ShardCoordinator &) = delete;

  /// Maps the shared region and forks the workers (resuming when
  /// configured).  \returns false when setup fails (mmap, fork, or a
  /// worker failing its resume load).
  bool start();

  /// Advances every shard \p N lockstep steps.  \returns false on an
  /// unrecoverable failure.
  bool advanceSteps(unsigned N);

  /// Advances every shard to \p EndTime with the exact clamp-and-snap
  /// arithmetic of EulerSolver::advanceTo.  \returns false on an
  /// unrecoverable failure.
  bool advanceTo(double EndTime);

  double time() const { return CurTime; }
  unsigned stepCount() const { return CurSteps; }
  unsigned shards() const { return Opt.Shards; }
  unsigned stagesPerStep() const { return StagesPerStep; }
  const std::vector<RowBlock> &blocks() const { return Blocks; }

  /// Stitches the global interior and hashes it with fieldStateHash
  /// component order — comparable against the single-process hash.
  /// \returns 0 on failure.
  uint64_t stateHash();

  /// Copies the stitched global interior (row-major) into \p Out.
  bool stitchInterior(std::vector<Cons<2>> &Out);

  /// Copies shard \p K's full local storage — ghost rows included — into
  /// \p Out (requires Opt.StorageDump).  The halo test suite reads ghost
  /// rows through this.
  bool exportShardStorage(unsigned K, std::vector<Cons<2>> &Out);

  /// Fault injection: SIGKILLs shard \p K's process.  Call between
  /// advance calls (the fleet is at a step barrier); the next command
  /// detects the death and runs recovery.
  void killShard(unsigned K);

  /// Fault injection: arms a one-shot self-kill — shard \p K SIGKILLs
  /// itself at the top of halo fill \p FillSeq (`= steps * stages +
  /// stage`, counted from t = 0), before publishing anything of that
  /// fill.  A deterministic mid-AdvanceDt death: the victim's neighbors
  /// wedge in their mailbox spins, so detection must not depend on the
  /// victim being the shard whose ack the coordinator is waiting on.
  void killShardAtFill(unsigned K, uint64_t FillSeq);

  /// Shards restarted individually (elastic path).
  unsigned restartCount() const { return Restarts; }
  /// Whole-fleet rewinds (global path).
  unsigned fullRestartCount() const { return FullRestarts; }

  /// Stops the fleet (Exit broadcast + reap); idempotent, also run by
  /// the destructor.
  void shutdown();

private:
  enum class CmdResult { Done, Rewound, Fatal };

  /// The forked child's whole life; never returns to the caller's flow
  /// (spawnProcess _exits with its return value).
  int workerBody(unsigned K);

  bool forkWorker(unsigned K);
  bool waitReady(unsigned K);
  CmdResult waitAcks();
  CmdResult command(ShardCmd Cmd, uint64_t Payload);
  CmdResult handleDeath(unsigned K);
  CmdResult globalRestart();
  /// One ComputeEv + reduce + AdvanceDt cycle, replaying through any
  /// rewind recovery; EndTime null for the fixed-step loop.  Records the
  /// committed step in the replay log.
  CmdResult stepOnce(const double *EndTime);
  /// Re-advances a rewound fleet back to the current state by re-issuing
  /// the recorded command stream (exact per-step dt and clock snaps)
  /// from the rewind point.  \returns false on an unrecoverable failure.
  bool replayHistory();
  /// True when the replay log holds a SnapTime applied at or after step
  /// count \p Steps — i.e. after the checkpoint of generation \p Steps
  /// was written, making that checkpoint's clock stale.
  bool snapRecordedAfter(uint64_t Steps) const;
  /// Runs an export-style command to completion, replaying through any
  /// rewind recovery.
  bool exportNow(ShardCmd Cmd);
  void syncClock();
  uint64_t latestGeneration(unsigned K) const;
  uint64_t latestCommonGeneration() const;
  std::string shardDir(unsigned K) const;

  /// One committed entry of the coordinator's command stream: the step
  /// dts actually broadcast (AdvanceDt) and the end-time snaps
  /// (SnapTime), in order.  Replayed verbatim after a global rewind.
  struct ReplayEvent {
    ShardCmd Cmd;
    uint64_t Payload;
  };

  Problem<2> Global;
  ShardOptions Opt;
  std::vector<RowBlock> Blocks;
  std::vector<Problem<2>> SubProblems;
  bool Ring = false;
  unsigned StagesPerStep = 1;
  ShardShmLayout Layout;
  ShmRegion Region;
  std::vector<pid_t> Pids;
  uint64_t Epoch = 0;
  ShardCmd LastCmd = ShardCmd::None;
  /// Command stream since start(); HistoryBase is the fleet step count
  /// the stream begins at (nonzero after a cross-coordinator resume).
  std::vector<ReplayEvent> History;
  uint64_t HistoryBase = 0;
  double CurTime = 0.0;
  unsigned CurSteps = 0;
  unsigned Restarts = 0;
  unsigned FullRestarts = 0;
  bool Started = false;
  bool Dead = false;
};

} // namespace sacfd

#endif // SACFD_SHARD_SHARDCOORDINATOR_H
