//===- shard/ShardCoordinator.cpp - Multi-process shard driver -----------===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"

#include "io/Checkpoint.h"
#include "io/CheckpointStore.h"
#include "runtime/Spin.h"
#include "solver/Scenario.h"
#include "solver/SolverFactory.h"
#include "support/Process.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <unistd.h>

namespace sacfd {

ShardCoordinator::ShardCoordinator(Problem<2> GlobalProb, ShardOptions O)
    : Global(std::move(GlobalProb)), Opt(std::move(O)) {
  if (Opt.Shards == 0)
    Opt.Shards = 1;
  StagesPerStep =
      static_cast<unsigned>(sspStages(Opt.Scheme.Integrator).size());
}

ShardCoordinator::~ShardCoordinator() { shutdown(); }

std::string ShardCoordinator::shardDir(unsigned K) const {
  return Opt.CheckpointDir + "/shard-" + std::to_string(K);
}

uint64_t ShardCoordinator::latestGeneration(unsigned K) const {
  CheckpointStore Store(shardDir(K), Opt.CheckpointKeep);
  std::vector<CheckpointStore::Generation> Gens = Store.generations();
  if (Gens.empty())
    return ShardNoResume;
  return Gens.front().Steps; // newest first
}

uint64_t ShardCoordinator::latestCommonGeneration() const {
  // The intersection of the per-shard generation sets: a rewind target
  // must exist in *every* store or the shards would disagree on the
  // clock.  The shared cadence keeps the sets aligned in practice, but a
  // shard killed mid-write can be one generation behind.
  std::set<uint64_t> Common;
  for (unsigned K = 0; K < Opt.Shards; ++K) {
    CheckpointStore Store(shardDir(K), Opt.CheckpointKeep);
    std::set<uint64_t> Mine;
    for (const CheckpointStore::Generation &G : Store.generations())
      Mine.insert(G.Steps);
    if (K == 0) {
      Common = std::move(Mine);
    } else {
      std::set<uint64_t> Both;
      for (uint64_t G : Common)
        if (Mine.count(G))
          Both.insert(G);
      Common = std::move(Both);
    }
    if (Common.empty())
      return ShardNoResume;
  }
  return *Common.rbegin();
}

//===----------------------------------------------------------------------===//
// Worker side
//===----------------------------------------------------------------------===//

int ShardCoordinator::workerBody(unsigned K) {
  void *Base = Region.data();
  ShardControl *Ctl = Layout.control(Base);
  ShardSlot *Slot = Layout.slot(Base, K);

  // Each worker is a plain serial solver over its sub-problem; all the
  // single-process machinery (engines, layouts, pooling) applies as-is.
  RunConfig Cfg;
  Cfg.Scheme = Opt.Scheme;
  Cfg.Engine = Opt.Engine;
  Cfg.Backend = BackendKind::Serial;
  Cfg.Threads = 1;
  Cfg.FieldLayout = Opt.FieldLayout;
  Cfg.Simd = Opt.Simd;
  Cfg.Pooling = Opt.Pooling;
  SolverRun<2> Run(SubProblems[K], Cfg);
  EulerSolver<2> &S = Run.solver();

  std::unique_ptr<CheckpointStore> Store;
  if (!Opt.CheckpointDir.empty())
    Store = std::make_unique<CheckpointStore>(shardDir(K), Opt.CheckpointKeep);

  uint64_t Gen = Slot->TargetGen.load(std::memory_order_acquire);
  if (Gen != ShardNoResume) {
    std::string Path = shardDir(K) + "/" +
                       CheckpointStore::generationFileName(
                           static_cast<unsigned>(Gen));
    if (!loadCheckpoint(Path, S).ok())
      return 3; // the coordinator falls back to a global rewind
  }

  const Grid<2> &G = SubProblems[K].Domain;
  const size_t Cols = G.cells(1);
  const unsigned Ng = G.ghost();
  const size_t StorageCols = Cols + 2 * Ng;
  const size_t InteriorRows = Blocks[K].Count;
  const size_t SlabCells = Layout.slabCells();

  // Ring neighbors when the row axis is periodic; chain ends otherwise.
  int Low = -1, High = -1;
  if (Opt.Shards > 1) {
    if (K > 0)
      Low = static_cast<int>(K) - 1;
    else if (Ring)
      Low = static_cast<int>(Opt.Shards) - 1;
    if (K + 1 < Opt.Shards)
      High = static_cast<int>(K) + 1;
    else if (Ring)
      High = 0;
  }

  // Halo fill sequence: Steps * StagesPerStep fills have already run
  // (and, at a barrier, been published) when the solver sits at step
  // count Steps — the invariant the recovery criterion reads.
  uint64_t Seq = static_cast<uint64_t>(S.stepCount()) * StagesPerStep;
  Slot->PubSeq.store(Seq, std::memory_order_relaxed);

  S.setGhostFillHook([&, Low, High](Field<2> &U, double) {
    const uint64_t Sq = Seq;
    const unsigned P = static_cast<unsigned>(Sq % 2);
    if (Ctl->FaultShard.load(std::memory_order_acquire) == K &&
        Ctl->FaultSeq.load(std::memory_order_relaxed) == Sq) {
      // Armed self-kill (tests): disarm in shared memory first so the
      // replacement survives this fill, then die with nothing of it
      // published — a deterministic mid-step crash.
      Ctl->FaultShard.store(ShardNoFault, std::memory_order_release);
      killProcess(getpid());
    }
    // Advance PubSeq *before* the mailbox tags: a crash between the two
    // then reads as "published" and forces the safe global rewind.
    Slot->PubSeq.store(Sq + 1, std::memory_order_release);
    auto Publish = [&](unsigned Side, size_t RowBegin) {
      Cons<2> *Slab = Layout.mailboxSlab(Base, K, Side, P);
      kernels::ConstRun<2> Rn = U.crun(RowBegin * StorageCols);
      for (size_t I = 0; I < SlabCells; ++I)
        Slab[I] = kernels::loadCons<2>(Rn, I);
      Layout.mailbox(Base, K, Side)
          ->SlotSeq[P]
          .store(Sq + 1, std::memory_order_release);
    };
    auto Receive = [&](unsigned Src, unsigned SrcSide, size_t RowBegin) {
      ShardMailbox *M = Layout.mailbox(Base, Src, SrcSide);
      spinThenYieldUntil([&] {
        return M->SlotSeq[P].load(std::memory_order_acquire) == Sq + 1;
      });
      const Cons<2> *Slab = Layout.mailboxSlab(Base, Src, SrcSide, P);
      kernels::Run<2> W = U.run(RowBegin * StorageCols);
      for (size_t I = 0; I < SlabCells; ++I)
        kernels::storeCons<2>(W, I, Slab[I]);
    };
    // Publish both sides before reading either: no cyclic wait, even on
    // the 2-shard ring where both neighbors are the same process.
    if (Low >= 0)
      Publish(/*Side=*/0, /*RowBegin=*/Ng); // first Ng interior rows
    if (High >= 0)
      Publish(/*Side=*/1, /*RowBegin=*/InteriorRows); // last Ng interior
    if (Low >= 0)
      Receive(static_cast<unsigned>(Low), /*SrcSide=*/1, /*RowBegin=*/0);
    if (High >= 0)
      Receive(static_cast<unsigned>(High), /*SrcSide=*/0,
              /*RowBegin=*/Ng + InteriorRows);
    Seq = Sq + 1;
  });

  auto PublishState = [&] {
    Slot->TimeBits.store(shardBits(S.time()), std::memory_order_relaxed);
    Slot->StepsDone.store(S.stepCount(), std::memory_order_relaxed);
  };

  PublishState();
  uint64_t LastSeen = Slot->AckEpoch.load(std::memory_order_acquire);
  Slot->Ready.store(1, std::memory_order_release);

  while (true) {
    spinThenYieldUntil([&] {
      return Ctl->Epoch.load(std::memory_order_acquire) != LastSeen;
    });
    const uint64_t E = Ctl->Epoch.load(std::memory_order_acquire);
    const ShardCmd Cmd =
        static_cast<ShardCmd>(Ctl->Cmd.load(std::memory_order_acquire));
    const uint64_t Payload = Ctl->Payload.load(std::memory_order_acquire);
    switch (Cmd) {
    case ShardCmd::ComputeEv:
      S.computeDt();
      Slot->EvBits.store(shardBits(S.lastMaxEigen()),
                         std::memory_order_relaxed);
      break;
    case ShardCmd::AdvanceDt:
      S.advanceWithDt(shardDouble(Payload));
      if (Store && Opt.CheckpointEvery &&
          S.stepCount() % Opt.CheckpointEvery == 0)
        Store->write(S);
      break;
    case ShardCmd::SnapTime:
      S.restoreClock(shardDouble(Payload), S.stepCount());
      break;
    case ShardCmd::Export: {
      // Interior rows land at their global offsets, so the export
      // section as a whole is the global row-major interior.
      Cons<2> *Out = Layout.exportInterior(Base);
      for (size_t R = 0; R < InteriorRows; ++R) {
        kernels::ConstRun<2> Rn =
            S.field().crun((Ng + R) * StorageCols + Ng);
        Cons<2> *Dst = Out + (Blocks[K].Begin + R) * Cols;
        for (size_t C = 0; C < Cols; ++C)
          Dst[C] = kernels::loadCons<2>(Rn, C);
      }
      break;
    }
    case ShardCmd::ExportStorage:
      if (Opt.StorageDump)
        S.field().exportTo(Layout.storageDump(Base, K));
      break;
    case ShardCmd::Exit:
      Slot->AckEpoch.store(E, std::memory_order_release);
      return 0;
    case ShardCmd::None:
      break;
    }
    PublishState();
    LastSeen = E;
    Slot->AckEpoch.store(E, std::memory_order_release);
  }
}

//===----------------------------------------------------------------------===//
// Coordinator side
//===----------------------------------------------------------------------===//

bool ShardCoordinator::forkWorker(unsigned K) {
  Layout.slot(Region.data(), K)->Ready.store(0, std::memory_order_release);
  pid_t Pid = spawnProcess([&]() -> int { return workerBody(K); });
  if (Pid < 0)
    return false;
  Pids[K] = Pid;
  return true;
}

bool ShardCoordinator::waitReady(unsigned K) {
  ShardSlot *Slot = Layout.slot(Region.data(), K);
  unsigned Spins = 0;
  while (!Slot->Ready.load(std::memory_order_acquire)) {
    if (Pids[K] > 0 && pollExited(Pids[K])) {
      Pids[K] = -1;
      return false;
    }
    if (Spins < (1u << 14))
      ++Spins;
    else
      std::this_thread::yield();
  }
  return true;
}

bool ShardCoordinator::start() {
  if (Started || Dead)
    return false;
  const Grid<2> &G = Global.Domain;
  const size_t Rows = G.cells(0), Cols = G.cells(1);
  const unsigned Ng = G.ghost();
  if (Opt.Shards > Rows)
    return false;
  Blocks = rowBlocks(Rows, Opt.Shards);
  if (Opt.Shards > 1)
    for (const RowBlock &B : Blocks)
      if (B.Count < Ng)
        return false; // a halo slab must fit inside one neighbor block
  Ring = Opt.Shards > 1 && rowAxisPeriodic(Global);
  SubProblems.clear();
  for (unsigned K = 0; K < Opt.Shards; ++K) {
    const bool LowHalo = Opt.Shards > 1 && (K > 0 || Ring);
    const bool HighHalo = Opt.Shards > 1 && (K + 1 < Opt.Shards || Ring);
    SubProblems.push_back(shardProblem(Global, Blocks[K], LowHalo, HighHalo));
  }
  std::vector<size_t> BlockRows(Opt.Shards);
  for (unsigned K = 0; K < Opt.Shards; ++K)
    BlockRows[K] = Blocks[K].Count;
  Layout =
      ShardShmLayout(Opt.Shards, Rows, Cols, Ng, Opt.StorageDump, BlockRows);
  Region = ShmRegion::create(Layout.totalBytes());
  if (!Region.valid())
    return false;
  // The anonymous mapping is zero-filled, which is byte-wise exactly the
  // initial protocol state (epoch 0, no acks, empty mailboxes); the
  // placement-news start the atomics' lifetimes formally before any
  // access.  Only the fault word needs a nonzero sentinel.
  Layout.constructAll(Region.data());
  Layout.control(Region.data())
      ->FaultShard.store(ShardNoFault, std::memory_order_relaxed);
  uint64_t Gen = ShardNoResume;
  if (Opt.Resume && !Opt.CheckpointDir.empty())
    Gen = latestCommonGeneration();
  Pids.assign(Opt.Shards, -1);
  for (unsigned K = 0; K < Opt.Shards; ++K)
    Layout.slot(Region.data(), K)
        ->TargetGen.store(Gen, std::memory_order_relaxed);
  Started = true; // shutdown() must reap whatever start() forked
  for (unsigned K = 0; K < Opt.Shards; ++K)
    if (!forkWorker(K) || !waitReady(K)) {
      Dead = true;
      shutdown();
      return false;
    }
  syncClock();
  History.clear();
  HistoryBase = CurSteps;
  return true;
}

void ShardCoordinator::syncClock() {
  // Every shard advances with the same broadcast dt through the same
  // `Time += Dt` arithmetic, so the clocks are bitwise equal; shard 0
  // speaks for the fleet.
  ShardSlot *Slot = Layout.slot(Region.data(), 0);
  CurTime = shardDouble(Slot->TimeBits.load(std::memory_order_acquire));
  CurSteps =
      static_cast<unsigned>(Slot->StepsDone.load(std::memory_order_acquire));
}

ShardCoordinator::CmdResult ShardCoordinator::command(ShardCmd Cmd,
                                                      uint64_t Payload) {
  if (Dead)
    return CmdResult::Fatal;
  ShardControl *Ctl = Layout.control(Region.data());
  LastCmd = Cmd;
  Ctl->Cmd.store(static_cast<uint32_t>(Cmd), std::memory_order_relaxed);
  Ctl->Payload.store(Payload, std::memory_order_relaxed);
  ++Epoch;
  Ctl->Epoch.store(Epoch, std::memory_order_release);
  return waitAcks();
}

ShardCoordinator::CmdResult ShardCoordinator::waitAcks() {
  for (unsigned K = 0; K < Opt.Shards; ++K) {
    ShardSlot *Slot = Layout.slot(Region.data(), K);
    unsigned Spins = 0;
    while (Slot->AckEpoch.load(std::memory_order_acquire) != Epoch) {
      // Poll every live pid, not just the shard whose ack is awaited: a
      // shard that dies mid-AdvanceDt before publishing its halo slab
      // wedges a *neighbor* inside its mailbox spin, so the ack that
      // never arrives and the pid that died need not be the same shard.
      // (Workers only wait on mailboxes while executing an epoch the
      // coordinator is parked in this loop for, so every wedge window is
      // covered from here.)
      for (unsigned J = 0; J < Opt.Shards; ++J) {
        if (Pids[J] > 0 && pollExited(Pids[J])) {
          Pids[J] = -1;
          CmdResult R = handleDeath(J);
          if (R != CmdResult::Done)
            return R;
          // Targeted restart done — the replacement re-drives the epoch
          // (unwedging any waiting neighbors); keep waiting for acks.
        }
      }
      if (Spins < (1u << 14))
        ++Spins;
      else
        std::this_thread::yield();
    }
  }
  return CmdResult::Done;
}

ShardCoordinator::CmdResult ShardCoordinator::handleDeath(unsigned K) {
  ShardSlot *Slot = Layout.slot(Region.data(), K);
  const uint64_t Steps = Slot->StepsDone.load(std::memory_order_acquire);
  const uint64_t Pub = Slot->PubSeq.load(std::memory_order_acquire);
  const uint64_t Acked = Slot->AckEpoch.load(std::memory_order_acquire);
  // Targeted restart needs three proofs: the victim died at a step
  // barrier (nothing of an in-flight step was published into the
  // mailboxes), its own store holds a checkpoint at exactly that step
  // count, and no clock snap landed after that checkpoint was written —
  // a checkpoint stores the post-step clock, so a later SnapTime
  // (recorded in the replay log, or the in-flight command the victim
  // already completed) would leave the replacement on the pre-snap clock
  // while the survivors run the snapped one, diverging time-dependent
  // boundaries.  Then the replacement resumes bit-identically and the
  // neighbors — parked in their mailbox spins — never notice beyond the
  // wait.
  const bool AtBarrier = Pub == Steps * StagesPerStep;
  const bool HasCheckpoint =
      !Opt.CheckpointDir.empty() && latestGeneration(K) == Steps;
  const bool SnappedSince =
      snapRecordedAfter(Steps) ||
      (LastCmd == ShardCmd::SnapTime && Acked == Epoch);
  if (AtBarrier && HasCheckpoint && !SnappedSince) {
    ++Restarts;
    // If the victim already finished this epoch's work (it acked, or it
    // completed the AdvanceDt step and died before acking), the
    // replacement must not run it again — preset the ack.
    const bool Completed =
        Acked == Epoch ||
        (LastCmd == ShardCmd::AdvanceDt &&
         Steps == static_cast<uint64_t>(CurSteps) + 1);
    Slot->TargetGen.store(Steps, std::memory_order_relaxed);
    Slot->AckEpoch.store(Completed ? Epoch : Epoch - 1,
                         std::memory_order_release);
    if (forkWorker(K) && waitReady(K))
      return CmdResult::Done;
  }
  return globalRestart();
}

ShardCoordinator::CmdResult ShardCoordinator::globalRestart() {
  ++FullRestarts;
  for (pid_t &Pid : Pids) {
    killProcess(Pid);
    if (Pid > 0)
      waitExit(Pid);
    Pid = -1;
  }
  // Rewind to the newest generation every shard can load; with no common
  // generation (or no durability at all) replay restarts from the
  // initial state — either way replayHistory re-issues the recorded
  // command stream and lands on the same bitwise state.
  const uint64_t Gen =
      Opt.CheckpointDir.empty() ? ShardNoResume : latestCommonGeneration();
  Layout.resetMailboxes(Region.data());
  for (unsigned K = 0; K < Opt.Shards; ++K) {
    ShardSlot *Slot = Layout.slot(Region.data(), K);
    Slot->TargetGen.store(Gen, std::memory_order_relaxed);
    Slot->PubSeq.store(0, std::memory_order_relaxed);
    Slot->StepsDone.store(0, std::memory_order_relaxed);
    Slot->TimeBits.store(0, std::memory_order_relaxed);
    // The abandoned epoch is not re-executed as-is; the callers replay
    // the recorded stream and then re-issue the interrupted command.
    Slot->AckEpoch.store(Epoch, std::memory_order_release);
  }
  for (unsigned K = 0; K < Opt.Shards; ++K)
    if (!forkWorker(K) || !waitReady(K)) {
      Dead = true;
      return CmdResult::Fatal;
    }
  syncClock();
  return CmdResult::Rewound;
}

ShardCoordinator::CmdResult ShardCoordinator::stepOnce(const double *EndTime) {
  while (true) {
    CmdResult R = command(ShardCmd::ComputeEv, 0);
    if (R == CmdResult::Fatal)
      return R;
    if (R == CmdResult::Done)
      break;
    if (!replayHistory()) // Rewound: back to the exact pre-command state
      return CmdResult::Fatal;
  }
  // max is exact under any grouping, so the shard-order reduction equals
  // the global GetDT maximum bit for bit.
  double EvMax = 0.0;
  for (unsigned K = 0; K < Opt.Shards; ++K)
    EvMax = std::max(
        EvMax, shardDouble(Layout.slot(Region.data(), K)
                               ->EvBits.load(std::memory_order_acquire)));
  double Dt = Opt.Scheme.dtFromMaxEigen(EvMax);
  if (EndTime)
    Dt = std::min(Dt, *EndTime - CurTime); // EulerSolver::advanceTo clamp
  const uint64_t PreSteps = CurSteps;
  while (true) {
    CmdResult R = command(ShardCmd::AdvanceDt, shardBits(Dt));
    if (R == CmdResult::Fatal)
      return R;
    if (R == CmdResult::Done)
      break;
    if (!replayHistory())
      return CmdResult::Fatal;
    // A rewind can absorb the in-flight step: when every shard
    // checkpointed the new step before the death, the rewind target
    // already contains it and re-running it would double-step.
    if (CurSteps > PreSteps)
      break;
  }
  // The committed step joins the replay log with the dt bits actually
  // broadcast — clamps included — so a later rewind replays it exactly
  // instead of recomputing an unclamped dt.
  History.push_back({ShardCmd::AdvanceDt, shardBits(Dt)});
  syncClock();
  return CmdResult::Done;
}

bool ShardCoordinator::advanceSteps(unsigned N) {
  if (!Started || Dead)
    return false;
  const uint64_t Target = static_cast<uint64_t>(CurSteps) + N;
  while (CurSteps < Target)
    if (stepOnce(nullptr) != CmdResult::Done)
      return false;
  return true;
}

bool ShardCoordinator::advanceTo(double EndTime) {
  if (!Started || Dead)
    return false;
  while (CurTime < EndTime) {
    if (stepRemainderNegligible(CurTime, EndTime)) {
      // The single-process end-time snap, broadcast through restoreClock
      // on every worker (engines cache state keyed on the clock).
      while (true) {
        CmdResult R = command(ShardCmd::SnapTime, shardBits(EndTime));
        if (R == CmdResult::Fatal)
          return false;
        if (R == CmdResult::Done)
          break;
        if (!replayHistory()) // re-issuing the snap is idempotent
          return false;
      }
      History.push_back({ShardCmd::SnapTime, shardBits(EndTime)});
      syncClock();
      break;
    }
    if (stepOnce(&EndTime) != CmdResult::Done)
      return false;
  }
  return true;
}

bool ShardCoordinator::replayHistory() {
  // After a rewind the fleet sits at some checkpoint generation (or the
  // initial state); re-issue the recorded command stream from that
  // point: the exact dt of every committed step and every clock snap.
  // Recomputing steps instead would drop the advanceTo clamp an original
  // step ran under and diverge bitwise from the single-process run.
  for (bool Again = true; Again;) {
    Again = false;
    // Skip the events the rewind target already contains: everything up
    // to and including the AdvanceDt that produced step count CurSteps
    // (checkpoints are written inside that command, so a snap recorded
    // after it is *not* in the checkpoint and must be replayed).
    size_t Pos = 0;
    for (uint64_t Steps = HistoryBase;
         Pos < History.size() && Steps < CurSteps; ++Pos)
      if (History[Pos].Cmd == ShardCmd::AdvanceDt)
        ++Steps;
    for (; Pos < History.size(); ++Pos) {
      CmdResult R = command(History[Pos].Cmd, History[Pos].Payload);
      if (R == CmdResult::Fatal)
        return false;
      if (R == CmdResult::Rewound) {
        Again = true; // a second death mid-replay: rewind again
        break;
      }
      syncClock();
    }
  }
  return true;
}

bool ShardCoordinator::snapRecordedAfter(uint64_t Steps) const {
  uint64_t S = HistoryBase;
  for (const ReplayEvent &E : History) {
    if (E.Cmd == ShardCmd::AdvanceDt)
      ++S;
    else if (S >= Steps)
      return true; // snap applied at or after the checkpoint write
  }
  return false;
}

bool ShardCoordinator::exportNow(ShardCmd Cmd) {
  if (!Started || Dead)
    return false;
  while (true) {
    CmdResult R = command(Cmd, 0);
    if (R == CmdResult::Fatal)
      return false;
    if (R == CmdResult::Done)
      return true;
    // Rewound: replay the recorded stream back to the current state,
    // then re-issue the export.
    if (!replayHistory())
      return false;
  }
}

uint64_t ShardCoordinator::stateHash() {
  if (!exportNow(ShardCmd::Export))
    return 0;
  const Grid<2> &G = Global.Domain;
  return fieldStateHash<2>(Layout.exportInterior(Region.data()),
                           G.cells(0) * G.cells(1), CurSteps, CurTime);
}

bool ShardCoordinator::stitchInterior(std::vector<Cons<2>> &Out) {
  if (!exportNow(ShardCmd::Export))
    return false;
  const Grid<2> &G = Global.Domain;
  const Cons<2> *In = Layout.exportInterior(Region.data());
  Out.assign(In, In + G.cells(0) * G.cells(1));
  return true;
}

bool ShardCoordinator::exportShardStorage(unsigned K,
                                          std::vector<Cons<2>> &Out) {
  if (!Opt.StorageDump || K >= Opt.Shards)
    return false;
  if (!exportNow(ShardCmd::ExportStorage))
    return false;
  const Grid<2> &G = Global.Domain;
  const unsigned Ng = G.ghost();
  const size_t Count = (Blocks[K].Count + 2 * Ng) * (G.cells(1) + 2 * Ng);
  const Cons<2> *In = Layout.storageDump(Region.data(), K);
  Out.assign(In, In + Count);
  return true;
}

void ShardCoordinator::killShard(unsigned K) {
  if (Started && K < Pids.size())
    killProcess(Pids[K]); // next command's ack wait detects the death
}

void ShardCoordinator::killShardAtFill(unsigned K, uint64_t FillSeq) {
  if (!Started || K >= Opt.Shards)
    return;
  ShardControl *Ctl = Layout.control(Region.data());
  Ctl->FaultSeq.store(FillSeq, std::memory_order_relaxed);
  Ctl->FaultShard.store(K, std::memory_order_release);
}

void ShardCoordinator::shutdown() {
  if (!Started)
    return;
  if (!Dead) {
    // Every live worker is parked at the epoch spin between commands, so
    // a clean Exit broadcast reaches them all.
    ShardControl *Ctl = Layout.control(Region.data());
    LastCmd = ShardCmd::Exit;
    Ctl->Cmd.store(static_cast<uint32_t>(ShardCmd::Exit),
                   std::memory_order_relaxed);
    Ctl->Payload.store(0, std::memory_order_relaxed);
    ++Epoch;
    Ctl->Epoch.store(Epoch, std::memory_order_release);
  } else {
    // A fatal run can leave workers wedged inside mailbox spins; only
    // SIGKILL gets them out.
    for (pid_t Pid : Pids)
      killProcess(Pid);
  }
  for (pid_t &Pid : Pids) {
    if (Pid > 0)
      waitExit(Pid);
    Pid = -1;
  }
  Started = false;
}

} // namespace sacfd
