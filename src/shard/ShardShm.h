//===- shard/ShardShm.h - Shared-memory layout of a shard run ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one shared mapping a shard run lives in, created by the
/// coordinator before forking so every worker inherits it.  Sections:
///
///   ShardControl   the coordinator's command broadcast: it writes Cmd
///                  and Payload, then publishes by bumping Epoch
///                  (release); workers acquire Epoch and ack per slot.
///   ShardSlot[N]   per-worker state the coordinator reads back: ack
///                  epoch, GetDT max eigenvalue, clock, step count, halo
///                  publish progress, and the resume-target generation
///                  the worker loads at startup.
///   Mailboxes      2 per shard (low/high side), each double-buffered:
///                  two per-slot sequence tags plus two halo slabs of
///                  Ng full-width storage rows.  The writer fills slot
///                  seq%2 and release-stores seq+1 into its tag; the
///                  reader acquire-spins for the exact tag — no per-step
///                  syscalls, and the two-deep pipeline bound (a writer
///                  reaches seq+2 only after its reader published seq+1,
///                  which happens after that reader consumed seq) means
///                  a slab is never overwritten while being read.
///   Export         the stitched global interior (row-major), written on
///                  the Export command; the concatenation of the shard
///                  interiors in shard order *is* global row-major order,
///                  so the coordinator hashes it sequentially.
///   Storage dump   (optional, tests only) per-shard full-storage copies
///                  so the halo suite can compare ghost rows bit for bit
///                  against a single-process reference.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SHARD_SHARDSHM_H
#define SACFD_SHARD_SHARDSHM_H

#include "euler/State.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <vector>

namespace sacfd {

/// Commands the coordinator broadcasts; workers execute in lockstep.
enum class ShardCmd : uint32_t {
  None = 0,
  /// Run GetDT on the local block; publish the max eigenvalue.
  ComputeEv,
  /// Advance one step with the broadcast dt (Payload = dt bits), then
  /// checkpoint when the cadence hits.
  AdvanceDt,
  /// Overwrite the clock with Payload (time bits) — the advanceTo
  /// end-time snap, routed through restoreClock on every worker.
  SnapTime,
  /// Copy the local interior into the export section.
  Export,
  /// Copy the full local storage (ghosts included) into the debug
  /// storage section.
  ExportStorage,
  /// Leave the worker loop and exit cleanly.
  Exit,
};

/// Sentinel for ShardSlot::TargetGen: start fresh, do not resume.
constexpr uint64_t ShardNoResume = ~uint64_t(0);

/// Sentinel for ShardControl::FaultShard: no self-kill armed.
constexpr uint32_t ShardNoFault = ~uint32_t(0);

/// Coordinator -> workers broadcast block.
struct alignas(64) ShardControl {
  std::atomic<uint64_t> Epoch;
  std::atomic<uint32_t> Cmd;
  std::atomic<uint64_t> Payload;
  /// Fault injection (tests): the worker whose index matches SIGKILLs
  /// itself at the top of halo fill FaultSeq, before publishing anything
  /// of that fill — a deterministic mid-step death.  One-shot: the
  /// victim disarms the word (back to ShardNoFault) before dying, so its
  /// replacement survives the same fill.
  std::atomic<uint32_t> FaultShard;
  std::atomic<uint64_t> FaultSeq;
};

/// One worker's state block (worker -> coordinator, plus the resume
/// target the coordinator presets before forking that worker).
struct alignas(64) ShardSlot {
  /// 1 once the worker finished startup (solver built, state published).
  std::atomic<uint64_t> Ready;
  /// Last epoch this worker completed.
  std::atomic<uint64_t> AckEpoch;
  /// GetDT max eigenvalue of the local block (bit pattern).
  std::atomic<uint64_t> EvBits;
  /// Solver clock (bit pattern) after the last completed command.
  std::atomic<uint64_t> TimeBits;
  /// Solver step count after the last completed command.
  std::atomic<uint64_t> StepsDone;
  /// Last published halo sequence + 1 (0 = nothing published).  The
  /// recovery path reads this to prove a dead worker never published
  /// anything of an in-flight step.
  std::atomic<uint64_t> PubSeq;
  /// Checkpoint generation (step count) to load at startup, or
  /// ShardNoResume for a fresh start.
  std::atomic<uint64_t> TargetGen;
};

/// Double-buffered mailbox handshake words; the slabs follow inline.
struct alignas(64) ShardMailbox {
  /// SlotSeq[p] holds 1 + the last sequence published into slab p; a
  /// reader of sequence s acquire-spins until SlotSeq[s % 2] == s + 1.
  std::atomic<uint64_t> SlotSeq[2];
};

/// Byte layout of the shared mapping for one shard run.  Pure geometry —
/// all offsets are precomputed so coordinator and workers address the
/// same bytes through their inherited mapping.
class ShardShmLayout {
public:
  ShardShmLayout() = default;

  /// \p Shards row blocks over \p GlobalRows x \p Cols interior cells
  /// with \p Ng ghost layers; \p WithStorageDump reserves the per-shard
  /// full-storage debug section (tests only).
  ShardShmLayout(unsigned Shards, size_t GlobalRows, size_t Cols,
                 unsigned Ng, bool WithStorageDump,
                 const std::vector<size_t> &BlockRows) {
    NumShards = Shards;
    SlabCellCount = static_cast<size_t>(Ng) * (Cols + 2 * Ng);
    size_t Off = 0;
    ControlOff = take(Off, sizeof(ShardControl));
    SlotsOff = take(Off, sizeof(ShardSlot) * Shards);
    MailboxStride =
        align(sizeof(ShardMailbox) + 2 * SlabCellCount * sizeof(Cons<2>));
    MailboxesOff = take(Off, MailboxStride * 2 * Shards);
    ExportOff = take(Off, GlobalRows * Cols * sizeof(Cons<2>));
    StorageOffs.resize(Shards, 0);
    if (WithStorageDump)
      for (unsigned K = 0; K < Shards; ++K)
        StorageOffs[K] =
            take(Off, (BlockRows[K] + 2 * Ng) * (Cols + 2 * Ng) *
                          sizeof(Cons<2>));
    Total = Off;
  }

  size_t totalBytes() const { return Total; }
  size_t slabCells() const { return SlabCellCount; }

  ShardControl *control(void *Base) const {
    return at<ShardControl>(Base, ControlOff);
  }
  ShardSlot *slot(void *Base, unsigned K) const {
    return at<ShardSlot>(Base, SlotsOff + sizeof(ShardSlot) * K);
  }
  /// Shard \p K's outgoing mailbox on \p Side (0 low, 1 high).
  ShardMailbox *mailbox(void *Base, unsigned K, unsigned Side) const {
    return at<ShardMailbox>(Base, mailboxOff(K, Side));
  }
  /// Slab \p Parity (seq % 2) of the same mailbox.
  Cons<2> *mailboxSlab(void *Base, unsigned K, unsigned Side,
                       unsigned Parity) const {
    return at<Cons<2>>(Base, mailboxOff(K, Side) + sizeof(ShardMailbox) +
                                 Parity * SlabCellCount * sizeof(Cons<2>));
  }
  /// The stitched global interior (GlobalRows x Cols, row-major).
  Cons<2> *exportInterior(void *Base) const {
    return at<Cons<2>>(Base, ExportOff);
  }
  /// Shard \p K's full-storage debug dump (layout must have been built
  /// WithStorageDump).
  Cons<2> *storageDump(void *Base, unsigned K) const {
    return at<Cons<2>>(Base, StorageOffs[K]);
  }

  /// Constructs the control, slot and mailbox objects in place.  The
  /// fresh mapping is already zero-filled and std::atomic value-init is
  /// byte-wise that same zero state, so this writes nothing new — it
  /// exists to start the objects' lifetimes formally before coordinator
  /// and workers access them through the mapping.
  void constructAll(void *Base) const {
    new (control(Base)) ShardControl();
    for (unsigned K = 0; K < NumShards; ++K) {
      new (slot(Base, K)) ShardSlot();
      for (unsigned Side = 0; Side < 2; ++Side)
        new (mailbox(Base, K, Side)) ShardMailbox();
    }
  }

  /// Clears every mailbox tag and slab (all workers must be dead): the
  /// global-restart path republishes from the rewound state.
  void resetMailboxes(void *Base) const {
    std::memset(static_cast<char *>(Base) + MailboxesOff, 0,
                MailboxStride * 2 * NumShards);
    for (unsigned K = 0; K < NumShards; ++K)
      for (unsigned Side = 0; Side < 2; ++Side)
        new (mailbox(Base, K, Side)) ShardMailbox();
  }

private:
  static size_t align(size_t N) { return (N + 63) & ~size_t(63); }
  static size_t take(size_t &Off, size_t Bytes) {
    size_t At = Off;
    Off = align(Off + Bytes);
    return At;
  }
  size_t mailboxOff(unsigned K, unsigned Side) const {
    return MailboxesOff + MailboxStride * (2 * K + Side);
  }
  template <typename T> static T *at(void *Base, size_t Off) {
    return reinterpret_cast<T *>(static_cast<char *>(Base) + Off);
  }

  unsigned NumShards = 0;
  size_t SlabCellCount = 0;
  size_t ControlOff = 0, SlotsOff = 0, MailboxesOff = 0, ExportOff = 0;
  size_t MailboxStride = 0;
  size_t Total = 0;
  std::vector<size_t> StorageOffs;
};

/// double <-> bit-pattern helpers for the shm words.
inline uint64_t shardBits(double V) {
  uint64_t B;
  std::memcpy(&B, &V, sizeof(B));
  return B;
}
inline double shardDouble(uint64_t B) {
  double V;
  std::memcpy(&V, &B, sizeof(V));
  return V;
}

} // namespace sacfd

#endif // SACFD_SHARD_SHARDSHM_H
