//===- shard/ShardPlan.h - Row-block domain decomposition -------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static decomposition behind the shard runtime: a 2D domain is cut
/// into N row blocks along axis 0 (the slowest, row-major axis, so every
/// halo slab is a contiguous run of storage rows).  Ragged divisions are
/// allowed — the first Rows % N blocks take one extra row — and each
/// block becomes a Problem<2> over a Grid row slice whose geometry is
/// bitwise the global grid's (see Grid::rowSlice).
///
/// Internal block interfaces get BcKind::Halo on the facing sides: the
/// halo exchange owns those ghost rows, and the physical boundary pass
/// leaves them untouched.  A periodic row axis turns the chain into a
/// ring (shard 0 and shard N-1 exchange through the wrap-around), which
/// reproduces the single-process periodic fill bit for bit because that
/// fill is itself just a copy of the opposite end's interior rows.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_SHARD_SHARDPLAN_H
#define SACFD_SHARD_SHARDPLAN_H

#include "solver/Problem.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace sacfd {

/// One shard's run of global interior rows.
struct RowBlock {
  size_t Begin = 0;
  size_t Count = 0;
};

/// Partitions \p Rows interior rows into \p Shards blocks in shard
/// order.  Ragged counts spread the remainder over the leading blocks,
/// so block sizes differ by at most one row.
inline std::vector<RowBlock> rowBlocks(size_t Rows, unsigned Shards) {
  assert(Shards > 0 && Rows >= Shards && "more shards than rows");
  std::vector<RowBlock> Blocks(Shards);
  size_t Base = Rows / Shards, Extra = Rows % Shards, Begin = 0;
  for (unsigned K = 0; K < Shards; ++K) {
    Blocks[K].Begin = Begin;
    Blocks[K].Count = Base + (K < Extra ? 1 : 0);
    Begin += Blocks[K].Count;
  }
  return Blocks;
}

/// True when the row axis (axis 0) wraps periodically — the shard chain
/// must then close into a ring.
inline bool rowAxisPeriodic(const Problem<2> &P) {
  const std::vector<BcSegment<2>> &Segs =
      P.Boundary.Side[boundarySide(0, /*High=*/false)];
  return Segs.size() == 1 && Segs.front().Kind == BcKind::Periodic;
}

/// Builds shard \p B's sub-problem: the grid row slice, with the facing
/// sides replaced by Halo when they are internal interfaces (\p LowHalo /
/// \p HighHalo).  Everything else — bounds, tangential segment ranges,
/// initial state, end time — is shared with the global problem, and the
/// slice geometry makes the initial state evaluation bitwise global.
inline Problem<2> shardProblem(const Problem<2> &Global, RowBlock B,
                               bool LowHalo, bool HighHalo) {
  Problem<2> P = Global;
  P.Domain = Grid<2>::rowSlice(Global.Domain, B.Begin, B.Count);
  BcSegment<2> Halo;
  Halo.Kind = BcKind::Halo;
  if (LowHalo)
    P.Boundary.setSide(boundarySide(0, /*High=*/false), Halo);
  if (HighHalo)
    P.Boundary.setSide(boundarySide(0, /*High=*/true), Halo);
  return P;
}

} // namespace sacfd

#endif // SACFD_SHARD_SHARDPLAN_H
