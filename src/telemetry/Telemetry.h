//===- telemetry/Telemetry.h - Spans, counters and gauges ------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-overhead run instrumentation: where does the time of a step go?
///
/// The paper's comparison (Fig. 4) is about per-parallel-region dispatch
/// cost, yet a wall clock around the whole run cannot attribute time to
/// the GetDT reduction, the flux sweeps or the region dispatch itself.
/// This subsystem provides that attribution with three primitives:
///
///   ScopedSpan   RAII timing of one named region occurrence.  Durations
///                aggregate per name (count/total/min/max) in a
///                thread-local buffer; nothing is allocated per event.
///   counters     monotonic event counts (regions dispatched, guard
///                retries, ...), also accumulated thread-locally.
///   gauges       per-step sampled values (dt, max eigenvalue, conserved
///                totals), recorded from the driving thread as a
///                (step, value) time series.
///
/// Cost model: everything is compiled in, but when telemetry is disabled
/// (the default) every call is one relaxed atomic load and a branch.
/// When enabled, a span is two steady_clock reads plus a few arithmetic
/// ops on a thread-local slot indexed by a pre-registered id — no locks,
/// no hashing on the hot path.  Names are registered once (under a lock)
/// via spanId()/counterId()/gaugeId(), typically through a function-local
/// static.
///
/// Thread model: worker threads (including the transient teams the
/// fork-join backend creates per region) accumulate into thread-local
/// buffers; a buffer is folded into a global retired store when its
/// thread exits.  snapshot() merges retired and live buffers.  Call
/// snapshot()/reset() only at quiescent points (no parallel region in
/// flight) — the live buffers are read without synchronization.
///
/// Determinism: counter totals are order-independent integer sums, so a
/// fixed workload produces bit-identical counter totals on every backend
/// and worker count (the determinism test matrix asserts this).  Span
/// durations are wall-clock measurements and vary run to run.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_TELEMETRY_TELEMETRY_H
#define SACFD_TELEMETRY_TELEMETRY_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace sacfd {
namespace telemetry {

/// Aggregated statistics of one span name.
struct SpanStats {
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MinNs = 0;
  uint64_t MaxNs = 0;

  /// Mean duration in nanoseconds; 0 when the span never fired.
  double meanNs() const {
    return Count ? static_cast<double>(TotalNs) / Count : 0.0;
  }
};

/// Total of one counter name.
struct CounterTotal {
  std::string Name;
  uint64_t Total = 0;
};

/// One sampled gauge value.
struct GaugeSample {
  unsigned Step = 0;
  double Value = 0.0;
};

/// Time series of one gauge name.
struct GaugeSeries {
  std::string Name;
  std::vector<GaugeSample> Samples;

  double first() const { return Samples.empty() ? 0.0 : Samples.front().Value; }
  double last() const { return Samples.empty() ? 0.0 : Samples.back().Value; }

  /// Largest |v - first| / max(|first|, tiny) over the series — the
  /// relative-drift measure the conservation regression uses.
  double maxRelativeDrift() const;
};

/// A merged, quiescent view of all telemetry state, sorted by name.
struct MetricsReport {
  std::vector<SpanStats> Spans;
  std::vector<CounterTotal> Counters;
  std::vector<GaugeSeries> Gauges;

  const SpanStats *findSpan(const std::string &Name) const;
  const CounterTotal *findCounter(const std::string &Name) const;
  const GaugeSeries *findGauge(const std::string &Name) const;
};

namespace detail {

struct State;
State &state();

struct SpanSlot {
  uint64_t Count = 0;
  uint64_t TotalNs = 0;
  uint64_t MinNs = UINT64_MAX;
  uint64_t MaxNs = 0;
};

/// Per-thread accumulation buffers, folded into the global retired store
/// when the thread exits (fork-join teams are transient).
struct ThreadBuffer {
  std::vector<SpanSlot> Spans;
  std::vector<uint64_t> Counters;

  ThreadBuffer();
  ~ThreadBuffer();
  void addSpan(unsigned Id, uint64_t Ns);
  void addCounter(unsigned Id, uint64_t Delta);
};

ThreadBuffer &threadBuffer();

extern std::atomic<bool> Enabled;

inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace detail

/// \returns true when instrumentation is recording.
inline bool enabled() {
  return detail::Enabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off (existing data is kept; see reset()).
void setEnabled(bool On);

/// Gauge sampling stride in steps: a gauge recorded at step S is kept
/// when S % stride == 0 (stride 0 disables gauges).  Default 1.
void setGaugeStride(unsigned Stride);
unsigned gaugeStride();

/// \returns true when gauges should be recorded for \p Step — the guard
/// callers use to skip computing expensive gauge values entirely.
bool gaugeDue(unsigned Step);

/// Registers (or looks up) a span/counter/gauge name; ids are stable for
/// the process lifetime.  Call once and cache, e.g. through a
/// function-local static.
unsigned spanId(const char *Name);
unsigned counterId(const char *Name);
unsigned gaugeId(const char *Name);

/// Adds \p Delta to a counter; no-op while disabled.
inline void addCounter(unsigned Id, uint64_t Delta = 1) {
  if (!enabled())
    return;
  detail::threadBuffer().addCounter(Id, Delta);
}

/// Appends (\p Step, \p Value) to a gauge series.  Driving-thread only;
/// ignores the stride (use gaugeDue() to honor it).  No-op while
/// disabled.
void recordGauge(unsigned Id, unsigned Step, double Value);

/// Times one occurrence of a span from construction to destruction.
class ScopedSpan {
public:
  explicit ScopedSpan(unsigned Id)
      : Id(Id), Start(enabled() ? detail::nowNs() : 0) {}
  ~ScopedSpan() {
    if (Start)
      detail::threadBuffer().addSpan(Id, detail::nowNs() - Start);
  }
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  unsigned Id;
  uint64_t Start;
};

/// Merges every buffer (retired and live) into a sorted report.  Only
/// call at a quiescent point: no parallel region may be executing.
MetricsReport snapshot();

/// Clears all recorded data (spans, counters, gauges); registrations and
/// the enabled flag survive.  Quiescent points only.
void reset();

} // namespace telemetry
} // namespace sacfd

#endif // SACFD_TELEMETRY_TELEMETRY_H
