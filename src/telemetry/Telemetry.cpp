//===- telemetry/Telemetry.cpp - Spans, counters and gauges ---------------===//

#include "telemetry/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <mutex>

using namespace sacfd;
using namespace sacfd::telemetry;

namespace sacfd {
namespace telemetry {
namespace detail {

std::atomic<bool> Enabled{false};

/// Global registry + retired-buffer store.  Registration, retirement and
/// snapshot/reset all serialize on Lock; the hot path never takes it.
struct State {
  std::mutex Lock;

  std::vector<std::string> SpanNames;
  std::vector<std::string> CounterNames;
  std::vector<std::string> GaugeNames;

  /// Folded buffers of exited threads.
  std::vector<SpanSlot> RetiredSpans;
  std::vector<uint64_t> RetiredCounters;

  /// Live per-thread buffers (unsynchronized reads at snapshot; callers
  /// guarantee quiescence).
  std::vector<ThreadBuffer *> Live;

  /// Gauge series, driving-thread only.
  std::vector<std::vector<GaugeSample>> Gauges;

  unsigned GaugeStride = 1;
};

State &state() {
  // Leaked on purpose: thread-local ThreadBuffer destructors may run
  // after static destruction would have torn this down.
  static State *S = new State;
  return *S;
}

static unsigned internName(std::vector<std::string> &Names,
                           const char *Name) {
  for (unsigned I = 0; I < Names.size(); ++I)
    if (Names[I] == Name)
      return I;
  Names.push_back(Name);
  return static_cast<unsigned>(Names.size() - 1);
}

static void mergeSpanSlots(std::vector<SpanSlot> &Into,
                           const std::vector<SpanSlot> &From) {
  if (Into.size() < From.size())
    Into.resize(From.size());
  for (size_t I = 0; I < From.size(); ++I) {
    const SpanSlot &B = From[I];
    if (B.Count == 0)
      continue;
    SpanSlot &A = Into[I];
    A.Count += B.Count;
    A.TotalNs += B.TotalNs;
    A.MinNs = std::min(A.MinNs, B.MinNs);
    A.MaxNs = std::max(A.MaxNs, B.MaxNs);
  }
}

static void mergeCounters(std::vector<uint64_t> &Into,
                          const std::vector<uint64_t> &From) {
  if (Into.size() < From.size())
    Into.resize(From.size(), 0);
  for (size_t I = 0; I < From.size(); ++I)
    Into[I] += From[I];
}

ThreadBuffer::ThreadBuffer() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  S.Live.push_back(this);
}

ThreadBuffer::~ThreadBuffer() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  mergeSpanSlots(S.RetiredSpans, Spans);
  mergeCounters(S.RetiredCounters, Counters);
  S.Live.erase(std::remove(S.Live.begin(), S.Live.end(), this),
               S.Live.end());
}

void ThreadBuffer::addSpan(unsigned Id, uint64_t Ns) {
  if (Id >= Spans.size())
    Spans.resize(Id + 1);
  SpanSlot &Slot = Spans[Id];
  ++Slot.Count;
  Slot.TotalNs += Ns;
  Slot.MinNs = std::min(Slot.MinNs, Ns);
  Slot.MaxNs = std::max(Slot.MaxNs, Ns);
}

void ThreadBuffer::addCounter(unsigned Id, uint64_t Delta) {
  if (Id >= Counters.size())
    Counters.resize(Id + 1, 0);
  Counters[Id] += Delta;
}

ThreadBuffer &threadBuffer() {
  thread_local ThreadBuffer Buf;
  return Buf;
}

} // namespace detail

using detail::State;
using detail::state;

void setEnabled(bool On) {
  detail::Enabled.store(On, std::memory_order_relaxed);
}

void setGaugeStride(unsigned Stride) {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  S.GaugeStride = Stride;
}

unsigned gaugeStride() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return S.GaugeStride;
}

bool gaugeDue(unsigned Step) {
  if (!enabled())
    return false;
  unsigned Stride = gaugeStride();
  return Stride != 0 && Step % Stride == 0;
}

unsigned spanId(const char *Name) {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return detail::internName(S.SpanNames, Name);
}

unsigned counterId(const char *Name) {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  return detail::internName(S.CounterNames, Name);
}

unsigned gaugeId(const char *Name) {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  unsigned Id = detail::internName(S.GaugeNames, Name);
  if (Id >= S.Gauges.size())
    S.Gauges.resize(Id + 1);
  return Id;
}

void recordGauge(unsigned Id, unsigned Step, double Value) {
  if (!enabled())
    return;
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  if (Id >= S.Gauges.size())
    S.Gauges.resize(Id + 1);
  S.Gauges[Id].push_back({Step, Value});
}

double GaugeSeries::maxRelativeDrift() const {
  if (Samples.size() < 2)
    return 0.0;
  double First = Samples.front().Value;
  double Scale = std::max(std::abs(First), 1e-300);
  double Max = 0.0;
  for (const GaugeSample &P : Samples)
    Max = std::max(Max, std::abs(P.Value - First) / Scale);
  return Max;
}

const SpanStats *MetricsReport::findSpan(const std::string &Name) const {
  for (const SpanStats &S : Spans)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

const CounterTotal *
MetricsReport::findCounter(const std::string &Name) const {
  for (const CounterTotal &C : Counters)
    if (C.Name == Name)
      return &C;
  return nullptr;
}

const GaugeSeries *MetricsReport::findGauge(const std::string &Name) const {
  for (const GaugeSeries &G : Gauges)
    if (G.Name == Name)
      return &G;
  return nullptr;
}

MetricsReport snapshot() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);

  std::vector<detail::SpanSlot> Spans = S.RetiredSpans;
  std::vector<uint64_t> Counters = S.RetiredCounters;
  for (const detail::ThreadBuffer *B : S.Live) {
    detail::mergeSpanSlots(Spans, B->Spans);
    detail::mergeCounters(Counters, B->Counters);
  }

  MetricsReport R;
  for (unsigned I = 0; I < Spans.size(); ++I) {
    if (Spans[I].Count == 0)
      continue;
    R.Spans.push_back({S.SpanNames[I], Spans[I].Count, Spans[I].TotalNs,
                       Spans[I].MinNs, Spans[I].MaxNs});
  }
  for (unsigned I = 0; I < Counters.size(); ++I) {
    if (Counters[I] == 0)
      continue;
    R.Counters.push_back({S.CounterNames[I], Counters[I]});
  }
  for (unsigned I = 0; I < S.Gauges.size(); ++I) {
    if (S.Gauges[I].empty())
      continue;
    R.Gauges.push_back({S.GaugeNames[I], S.Gauges[I]});
  }

  auto ByName = [](const auto &A, const auto &B) { return A.Name < B.Name; };
  std::sort(R.Spans.begin(), R.Spans.end(), ByName);
  std::sort(R.Counters.begin(), R.Counters.end(), ByName);
  std::sort(R.Gauges.begin(), R.Gauges.end(), ByName);
  return R;
}

void reset() {
  State &S = state();
  std::lock_guard<std::mutex> G(S.Lock);
  S.RetiredSpans.clear();
  S.RetiredCounters.clear();
  for (detail::ThreadBuffer *B : S.Live) {
    B->Spans.clear();
    B->Counters.clear();
  }
  for (std::vector<GaugeSample> &Series : S.Gauges)
    Series.clear();
}

} // namespace telemetry
} // namespace sacfd
