//===- telemetry/TelemetryOptions.h - Telemetry CLI wiring -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared command-line surface of the telemetry subsystem, so every
/// example and bench exposes the same flags:
///
///   --telemetry PATH     enable instrumentation and write the merged
///                        JSON report to PATH at exit
///   --telemetry-every N  gauge sampling stride in steps (default 1;
///                        spans and counters always record when enabled)
///
/// The JSON itself is written by io/TelemetryExport.h (the io library
/// links against solver/runtime, so the dependency points outward).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_TELEMETRY_TELEMETRYOPTIONS_H
#define SACFD_TELEMETRY_TELEMETRYOPTIONS_H

#include "support/CommandLine.h"
#include "telemetry/Telemetry.h"

#include <string>

namespace sacfd {

/// The telemetry flags a CLI tool binds and forwards into the subsystem.
struct TelemetryCliOptions {
  std::string Path;
  unsigned Every = 1;

  /// Binds the telemetry flags onto \p CL.
  void registerWith(CommandLine &CL) {
    CL.addString("telemetry", Path,
                 "enable telemetry and write the JSON report here");
    CL.addUnsigned("telemetry-every", Every,
                   "record per-step gauges every N steps (0 = never)");
  }

  bool enabled() const { return !Path.empty(); }

  /// Enables recording per the parsed flags (no-op when --telemetry was
  /// not given).  Call after parse(), before the run starts.
  void apply() const {
    if (!enabled())
      return;
    telemetry::setGaugeStride(Every);
    telemetry::setEnabled(true);
  }
};

} // namespace sacfd

#endif // SACFD_TELEMETRY_TELEMETRYOPTIONS_H
