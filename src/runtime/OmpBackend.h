//===- runtime/OmpBackend.h - Real OpenMP execution -------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The literal mechanism of the paper's Fortran runs: OpenMP.
///
/// "As the Fortran compiler uses OpenMP for parallelization ..." — this
/// backend hands each parallelFor to a real `#pragma omp parallel`
/// region, so the model comparison (ForkJoinBackend's literal
/// fork-join vs SpinBarrierPool's persistent spin pool) can be
/// cross-checked against an industrial runtime.  Modern libgomp keeps
/// its team alive between regions, so OpenMP's measured dispatch cost
/// typically lands between the two models — see the E1 extra experiment.
///
/// Built only when the toolchain provides OpenMP (SACFD_HAVE_OPENMP);
/// openMpAvailable() reports availability at runtime.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_OMPBACKEND_H
#define SACFD_RUNTIME_OMPBACKEND_H

#include "runtime/Backend.h"

#include <memory>

namespace sacfd {

/// \returns true when this build carries the OpenMP backend.
bool openMpAvailable();

/// Creates an OpenMP-backed Backend with \p Threads workers, or nullptr
/// when the build has no OpenMP support.
std::unique_ptr<Backend> createOmpBackend(unsigned Threads);

} // namespace sacfd

#endif // SACFD_RUNTIME_OMPBACKEND_H
