//===- runtime/TaskBackend.cpp - Work-stealing task scheduler ------------===//

#include "runtime/TaskBackend.h"

#include "runtime/ParallelRegion.h"
#include "support/Env.h"

#include <algorithm>
#include <cassert>

using namespace sacfd;

/// Hint to the CPU that we are in a busy-wait loop.
static inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

TaskBackend::TaskBackend(unsigned Threads, Schedule Sched, unsigned SpinLimit)
    : Threads(Threads), Sched(Sched), SpinLimit(SpinLimit) {
  assert(Threads >= 1 && "pool needs at least the calling thread");
  // Same oversubscription adaptation as the spin pool: spinning on a
  // shared core starves the worker being waited on.
  if (SpinLimit == DefaultSpinLimit && Threads > defaultWorkerCount())
    this->SpinLimit = 0;
  Deques = std::make_unique<WorkerDeque[]>(Threads);
  if (Threads == 1)
    return;
  Done = std::make_unique<DoneFlag[]>(Threads - 1);
  Workers.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W)
    Workers.emplace_back([this, W] { workerMain(W); });
}

TaskBackend::~TaskBackend() {
  if (Workers.empty())
    return;
  Stopping.store(true, std::memory_order_release);
  for (std::thread &T : Workers)
    T.join();
}

template <typename Pred> void TaskBackend::spinUntil(Pred &&IsDone) const {
  unsigned Spins = 0;
  while (!IsDone()) {
    if (Spins < SpinLimit) {
      ++Spins;
      cpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
}

size_t TaskBackend::taskChunk(size_t N) const {
  if (Sched.ChunkSize != 0)
    return Sched.ChunkSize;
  // Default granularity: ~8 tasks per worker.  Coarser than this and
  // stealing has nothing to balance; finer and deque traffic starts to
  // show up against the body cost.
  return std::max<size_t>(1, N / (8 * static_cast<size_t>(Threads)));
}

bool TaskBackend::popOwn(unsigned W, size_t &Item) {
  WorkerDeque &D = Deques[W];
  std::lock_guard<std::mutex> Lock(D.M);
  if (D.Items.empty())
    return false;
  Item = D.Items.back();
  D.Items.pop_back();
  return true;
}

bool TaskBackend::stealInto(unsigned W, size_t &Item) {
  // Steal-half from the front of a victim's deque: the owner works the
  // back (LIFO, cache-warm), thieves take the oldest half in one lock
  // acquisition so a load imbalance is halved per steal, not nibbled.
  std::vector<size_t> &Scratch = Deques[W].Scratch;
  for (unsigned Hop = 1; Hop < Threads; ++Hop) {
    unsigned V = (W + Hop) % Threads;
    WorkerDeque &D = Deques[V];
    {
      std::lock_guard<std::mutex> Lock(D.M);
      size_t N = D.Items.size();
      if (N == 0)
        continue;
      size_t K = (N + 1) / 2;
      Scratch.assign(D.Items.begin(),
                     D.Items.begin() + static_cast<std::ptrdiff_t>(K));
      D.Items.erase(D.Items.begin(),
                    D.Items.begin() + static_cast<std::ptrdiff_t>(K));
    }
    // Run the first stolen item directly; bank the rest in our own deque.
    // Staging through Scratch keeps the two deque locks from ever being
    // held together (two thieves stealing from each other would deadlock
    // otherwise).
    Item = Scratch.front();
    if (Scratch.size() > 1) {
      WorkerDeque &Own = Deques[W];
      std::lock_guard<std::mutex> Lock(Own.M);
      Own.Items.insert(Own.Items.end(), Scratch.begin() + 1, Scratch.end());
    }
    return true;
  }
  return false;
}

void TaskBackend::runItem(unsigned W, size_t Item) {
  if (Kind == JobKind::Range) {
    size_t B = JobBegin + Item * Chunk;
    size_t E = std::min(B + Chunk, JobEnd);
    ParallelRegionGuard Guard;
    Body(B, E);
    return;
  }
  {
    ParallelRegionGuard Guard;
    DagRun(Dag->Payloads[Item]);
  }
  // Release successors; newly-ready tasks go onto the finishing worker's
  // own deque (depth-first through the graph, warm data stays local —
  // thieves re-balance whatever piles up).
  for (uint32_t S : Dag->Succs[Item])
    if (Remaining[S].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      WorkerDeque &D = Deques[W];
      std::lock_guard<std::mutex> Lock(D.M);
      D.Items.push_back(S);
    }
}

void TaskBackend::participate(unsigned W) {
  unsigned Idle = 0;
  while (Pending.load(std::memory_order_acquire) != 0) {
    size_t Item;
    if (popOwn(W, Item) || stealInto(W, Item)) {
      Idle = 0;
      runItem(W, Item);
      // acq_rel: publishes the item's side effects to whoever observes
      // Pending reach 0 (the master's return is the completion barrier).
      Pending.fetch_sub(1, std::memory_order_acq_rel);
    } else if (Idle < SpinLimit) {
      ++Idle;
      cpuRelax();
    } else {
      std::this_thread::yield();
    }
  }
}

void TaskBackend::workerMain(unsigned W) {
  uint64_t SeenSeq = 0;
  while (true) {
    spinUntil([this, SeenSeq] {
      return JobSeq.load(std::memory_order_acquire) != SeenSeq ||
             Stopping.load(std::memory_order_acquire);
    });
    uint64_t NewSeq = JobSeq.load(std::memory_order_acquire);
    if (NewSeq == SeenSeq) {
      assert(Stopping.load(std::memory_order_acquire) && "spurious wakeup");
      return;
    }
    SeenSeq = NewSeq;
    participate(W);
    Done[W - 1].Seq.store(SeenSeq, std::memory_order_release);
  }
}

void TaskBackend::dispatch() {
  uint64_t Seq = JobSeq.load(std::memory_order_relaxed) + 1;
  JobSeq.store(Seq, std::memory_order_release);
  participate(0);
  // Wait for every helper to check in: they may still be mid-item after
  // the master saw Pending reach 0 is impossible (Pending is decremented
  // after the item body), but they can still be scanning for work, and
  // the next dispatch must not reseed the deques under them.
  for (unsigned W = 1; W < Threads; ++W)
    spinUntil([this, W, Seq] {
      return Done[W - 1].Seq.load(std::memory_order_acquire) == Seq;
    });
}

void TaskBackend::parallelFor(size_t Begin, size_t End, RangeBody Body) {
  if (Begin >= End)
    return;
  if (inParallelRegion()) {
    Body(Begin, End);
    return;
  }
  countRegion();
  static const unsigned Region = telemetry::spanId("region.tasks");
  telemetry::ScopedSpan Span(Region);
  if (Threads == 1) {
    ParallelRegionGuard Guard;
    Body(Begin, End);
    return;
  }

  size_t N = End - Begin;
  size_t C = taskChunk(N);
  size_t NumChunks = (N + C - 1) / C;
  this->Kind = JobKind::Range;
  this->Body = Body;
  JobBegin = Begin;
  JobEnd = End;
  Chunk = C;
  Pending.store(NumChunks, std::memory_order_relaxed);
  // Seed contiguous chunk runs per worker (static-block locality); the
  // helpers are quiescent here (dispatch() waited for their Done flags),
  // so the deques are safe to fill.
  size_t Base = NumChunks / Threads;
  size_t Extra = NumChunks % Threads;
  size_t Next = 0;
  for (unsigned W = 0; W < Threads; ++W) {
    size_t Take = Base + (W < Extra ? 1 : 0);
    WorkerDeque &D = Deques[W];
    std::lock_guard<std::mutex> Lock(D.M);
    for (size_t I = 0; I < Take; ++I)
      D.Items.push_back(Next++);
  }
  dispatch();
}

void TaskBackend::parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) {
  if (Rows == 0 || Cols == 0)
    return;
  if (!tile().Enabled || inParallelRegion()) {
    Backend::parallelFor2D(Rows, Cols, Body);
    return;
  }
  // Tiles become the task granule: the tile range goes through
  // parallelFor, so each task is one or a few whole tiles and stealing
  // re-deals them under load imbalance.
  runTileGrid(TileGrid(Rows, Cols, tile()), tile().Dealing, Body);
}

void TaskBackend::runDagInline(TaskDag &D, DagNodeBody Run) {
  // Sequential fallback for nested calls: plain worklist in dependency
  // order on the calling thread.
  size_t N = D.size();
  std::vector<unsigned> Deps(D.DepCount.begin(),
                             D.DepCount.begin() + static_cast<std::ptrdiff_t>(N));
  std::vector<size_t> Ready;
  for (size_t I = 0; I < N; ++I)
    if (Deps[I] == 0)
      Ready.push_back(I);
  size_t Ran = 0;
  while (!Ready.empty()) {
    size_t Item = Ready.back();
    Ready.pop_back();
    Run(D.Payloads[Item]);
    ++Ran;
    for (uint32_t S : D.Succs[Item])
      if (--Deps[S] == 0)
        Ready.push_back(S);
  }
  assert(Ran == N && "task DAG has a cycle");
  (void)Ran;
}

void TaskBackend::runDag(TaskDag &D, DagNodeBody Run) {
  size_t N = D.size();
  if (N == 0)
    return;
  if (inParallelRegion()) {
    runDagInline(D, Run);
    return;
  }
  countRegion();
  static const unsigned Region = telemetry::spanId("region.task_dag");
  telemetry::ScopedSpan Span(Region);
  if (telemetry::enabled()) {
    static const unsigned TasksRun = telemetry::counterId("runtime.tasks");
    telemetry::addCounter(TasksRun, N);
  }

  if (RemainingCap < N) {
    Remaining = std::make_unique<std::atomic<unsigned>[]>(N);
    RemainingCap = N;
  }
  for (size_t I = 0; I < N; ++I)
    Remaining[I].store(D.DepCount[I], std::memory_order_relaxed);

  Kind = JobKind::Dag;
  Dag = &D;
  DagRun = Run;
  Pending.store(N, std::memory_order_relaxed);
  // Deal the initially-ready nodes round-robin so every worker has a
  // seed to start from; the dependency releases and stealing take it
  // from there.
  unsigned W = 0;
  for (size_t I = 0; I < N; ++I)
    if (D.DepCount[I] == 0) {
      WorkerDeque &Dq = Deques[W];
      std::lock_guard<std::mutex> Lock(Dq.M);
      Dq.Items.push_back(I);
      W = (W + 1) % Threads;
    }
  dispatch();
}
