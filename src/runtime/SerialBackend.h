//===- runtime/SerialBackend.h - Single-threaded reference -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trivial single-threaded Backend.
///
/// Runs every parallelFor body inline on the calling thread.  This is the
/// correctness oracle the threaded backends are tested against, and the
/// 1-core data point of the FIG4 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_SERIALBACKEND_H
#define SACFD_RUNTIME_SERIALBACKEND_H

#include "runtime/Backend.h"

namespace sacfd {

/// Executes all iterations inline; workerCount() == 1.
class SerialBackend final : public Backend {
public:
  void parallelFor(size_t Begin, size_t End, RangeBody Body) override;
  void parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) override;
  unsigned workerCount() const override { return 1; }
  const char *name() const override { return "serial"; }
};

} // namespace sacfd

#endif // SACFD_RUNTIME_SERIALBACKEND_H
