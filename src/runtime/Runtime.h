//===- runtime/Runtime.h - Backend selection and creation ------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Factory functions tying the backend zoo together for tools.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_RUNTIME_H
#define SACFD_RUNTIME_RUNTIME_H

#include "runtime/Backend.h"
#include "runtime/Schedule.h"

#include <memory>
#include <optional>
#include <string_view>

namespace sacfd {

/// The execution models under study.
enum class BackendKind {
  /// Single-threaded reference.
  Serial,
  /// SaC model: persistent pool, spin-barrier communication.
  SpinPool,
  /// Auto-parallelized Fortran model: per-loop thread teams.
  ForkJoin,
  /// Real OpenMP regions (cross-check baseline; build-dependent —
  /// see openMpAvailable()).
  OpenMp,
  /// Work-stealing task scheduler: persistent pool, per-worker deques,
  /// steal-half; also the engine behind the dependency-DAG step mode.
  Tasks,
};

/// \returns the stable name used in reports and CLI flags.
const char *backendKindName(BackendKind Kind);

/// Parses "serial", "spin-pool"/"sac", "fork-join"/"fortran",
/// "openmp"/"omp", "tasks"/"task".
std::optional<BackendKind> parseBackendKind(std::string_view Text);

/// Creates a backend of \p Kind with \p Threads workers.
///
/// \param Sched honored by ForkJoin (iteration partitioning) and Tasks
/// (an explicit chunk size sets the task granularity); the spin pool is
/// always static-block partitioned, like SaC's runtime.
/// \param TileCfg rank-2 tiling policy installed on the backend
/// (Backend::setTile); off by default for legacy row-flattened loops.
/// \returns nullptr only for BackendKind::OpenMp in builds without
/// OpenMP support.
std::unique_ptr<Backend>
createBackend(BackendKind Kind, unsigned Threads,
              Schedule Sched = Schedule::staticBlock(),
              const Tile &TileCfg = Tile::off());

} // namespace sacfd

#endif // SACFD_RUNTIME_RUNTIME_H
