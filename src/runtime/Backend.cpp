//===- runtime/Backend.cpp - Parallel execution backend interface --------===//

#include "runtime/Backend.h"

#include "runtime/ParallelRegion.h"

#include <algorithm>
#include <atomic>

using namespace sacfd;

// Out-of-line virtual method anchor.
Backend::~Backend() = default;

void Backend::parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) {
  // Legacy row-flattening shim: the row range is the 1D iteration space
  // and every body invocation spans all columns.  Region accounting is
  // inherited from parallelFor, so exactly one region is counted.
  if (Rows == 0 || Cols == 0)
    return;
  parallelFor(0, Rows, [&](size_t Begin, size_t End) {
    Body(Begin, End, 0, Cols);
  });
}

void Backend::runTileGrid(const TileGrid &G, const Schedule &Dealing,
                          RangeBody2D Body) {
  size_t Tiles = G.count();
  if (Tiles == 0)
    return;

  auto RunTiles = [&](size_t Begin, size_t End) {
    for (size_t T = Begin; T < End; ++T) {
      TileRect R = G.rect(T);
      Body(R.RowBegin, R.RowEnd, R.ColBegin, R.ColEnd);
    }
  };

  if (Dealing.K == Schedule::Kind::StaticBlock) {
    // Hand the contiguous tile range to the backend's native partitioner;
    // each worker gets one contiguous run of tiles.
    parallelFor(0, Tiles, RunTiles);
    return;
  }

  unsigned Workers = std::max(workerCount(), 1u);
  if (Dealing.K == Schedule::Kind::Dynamic) {
    size_t Chunk = Dealing.resolvedChunk(Tiles, Workers);
    std::atomic<size_t> Next{0};
    parallelFor(0, Workers, [&](size_t, size_t) {
      for (;;) {
        size_t Begin = Next.fetch_add(Chunk, std::memory_order_relaxed);
        if (Begin >= Tiles)
          break;
        RunTiles(Begin, std::min(Begin + Chunk, Tiles));
      }
    });
    return;
  }

  // StaticChunk: deal fixed-size tile groups round-robin by worker index.
  std::vector<std::vector<IterationChunk>> Plan =
      staticPartition(Tiles, Workers, Dealing);
  parallelFor(0, Workers, [&](size_t WBegin, size_t WEnd) {
    for (size_t W = WBegin; W < WEnd; ++W)
      for (const IterationChunk &C : Plan[W])
        RunTiles(C.Begin, C.End);
  });
}

namespace {
thread_local bool InParallelRegion = false;
} // namespace

bool sacfd::inParallelRegion() { return InParallelRegion; }

ParallelRegionGuard::ParallelRegionGuard() { InParallelRegion = true; }

ParallelRegionGuard::~ParallelRegionGuard() { InParallelRegion = false; }
