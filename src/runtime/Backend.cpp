//===- runtime/Backend.cpp - Parallel execution backend interface --------===//

#include "runtime/Backend.h"

#include "runtime/ParallelRegion.h"

using namespace sacfd;

// Out-of-line virtual method anchor.
Backend::~Backend() = default;

namespace {
thread_local bool InParallelRegion = false;
} // namespace

bool sacfd::inParallelRegion() { return InParallelRegion; }

ParallelRegionGuard::ParallelRegionGuard() { InParallelRegion = true; }

ParallelRegionGuard::~ParallelRegionGuard() { InParallelRegion = false; }
