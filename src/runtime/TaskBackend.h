//===- runtime/TaskBackend.h - Work-stealing task scheduler ----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fourth execution model: a work-stealing task scheduler.
///
/// "Introducing OpenMP Tasks into the HYDRO Benchmark" showed that on
/// exactly this class of Godunov-type hydro kernels a task runtime beats
/// static fork-join by relaxing the per-stage barrier.  TaskBackend is
/// that model: a persistent worker pool (created once, woken through the
/// same epoch-sequence broadcast as SpinBarrierPool) where work is a bag
/// of chunk-sized tasks in per-worker deques.  Owners pop their own deque
/// LIFO; an idle worker locks a victim's deque and steals half of it
/// FIFO, so load imbalance drains without a central queue.
///
/// Two dispatch shapes share the pool:
///   - parallelFor / parallelFor2D: the Backend contract.  The iteration
///     range is pre-chunked, chunks are dealt to the deques, and stealing
///     replaces static partitioning.  Because every chunk executes exactly
///     once on some worker — and all SacFD parallel bodies are legal on
///     any disjoint partition, with reduction partials keyed by block or
///     tile index and merged in index order — steal order cannot change a
///     single bit of the results.
///   - runDag: a dependency-DAG dispatch for pipelined solver steps.  The
///     caller describes tasks as integer payloads plus dependency edges
///     (TaskDag); completing a task decrements its successors' counters
///     and pushes newly-ready tasks onto the finishing worker's deque.
///     This is what lets per-tile flux tasks of one stage overlap with
///     update tasks of another instead of meeting at a global barrier.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_TASKBACKEND_H
#define SACFD_RUNTIME_TASKBACKEND_H

#include "runtime/Backend.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sacfd {

/// Executes one DAG node identified by its user payload.
using DagNodeBody = FunctionRef<void(uint64_t Payload)>;

/// A reusable dependency DAG of integer-payload tasks.
///
/// Nodes carry an opaque uint64_t payload the executor interprets; edges
/// added with addDep(Before, After) order execution.  The graph must be
/// acyclic — a cycle leaves tasks forever unready and runDag never
/// returns.  clear() forgets the nodes but keeps the allocations, so a
/// solver can rebuild (or just re-run) the same step graph every step
/// without churning the heap.
class TaskDag {
public:
  /// Adds a node, returning its id (ids are dense, starting at 0).
  size_t add(uint64_t Payload) {
    size_t Id = NumNodes++;
    if (Id < Payloads.size()) {
      Payloads[Id] = Payload;
      DepCount[Id] = 0;
      Succs[Id].clear();
    } else {
      Payloads.push_back(Payload);
      DepCount.push_back(0);
      Succs.emplace_back();
    }
    return Id;
  }

  /// Orders node \p Before strictly before node \p After.  Duplicate
  /// edges are permitted (each is counted and released once).
  void addDep(size_t Before, size_t After) {
    Succs[Before].push_back(static_cast<uint32_t>(After));
    ++DepCount[After];
  }

  size_t size() const { return NumNodes; }

  /// Forgets all nodes, keeping capacity for rebuilds.
  void clear() { NumNodes = 0; }

private:
  friend class TaskBackend;
  size_t NumNodes = 0;
  std::vector<uint64_t> Payloads;
  std::vector<unsigned> DepCount;
  std::vector<std::vector<uint32_t>> Succs;
};

/// Persistent work-stealing pool (the task execution model).
class TaskBackend final : public Backend {
public:
  /// Default busy-wait iterations before yielding (matches the spin
  /// pool; adapted to 0 on oversubscribed hosts).
  static constexpr unsigned DefaultSpinLimit = 1 << 14;

  /// \param Threads pool size including the calling thread (>= 1).
  /// \param Sched an explicit chunk size (static,N / dynamic,N) sets the
  ///        task granularity of parallelFor; the default carves ~8 tasks
  ///        per worker so stealing has something to balance.
  explicit TaskBackend(unsigned Threads,
                       Schedule Sched = Schedule::staticBlock(),
                       unsigned SpinLimit = DefaultSpinLimit);
  ~TaskBackend() override;

  TaskBackend(const TaskBackend &) = delete;
  TaskBackend &operator=(const TaskBackend &) = delete;

  void parallelFor(size_t Begin, size_t End, RangeBody Body) override;
  void parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) override;
  unsigned workerCount() const override { return Threads; }
  const char *name() const override { return "tasks"; }
  TaskBackend *taskBackend() override { return this; }

  /// Executes \p Dag to completion: every node runs exactly once, after
  /// all its predecessors, via \p Run on some worker.  Blocking; counts
  /// one region per non-empty call and feeds the "runtime.tasks" counter
  /// with the node count (deterministic at every worker count).  Nested
  /// calls (from inside a parallel body) run inline in dependency order.
  void runDag(TaskDag &Dag, DagNodeBody Run);

  unsigned spinLimit() const { return SpinLimit; }

private:
  /// One worker's deque plus its private steal scratch, padded so the
  /// owner's pushes and a thief's lock traffic stay off other lines.
  struct alignas(64) WorkerDeque {
    std::mutex M;
    std::vector<size_t> Items;
    /// Thief-side staging buffer; touched only by this worker when it
    /// steals (never under another worker's lock scope mismatch).
    std::vector<size_t> Scratch;
  };

  struct alignas(64) DoneFlag {
    std::atomic<uint64_t> Seq{0};
  };

  enum class JobKind { Range, Dag };

  void workerMain(unsigned W);
  void participate(unsigned W);
  void runItem(unsigned W, size_t Item);
  bool popOwn(unsigned W, size_t &Item);
  bool stealInto(unsigned W, size_t &Item);
  void dispatch();
  void runDagInline(TaskDag &Dag, DagNodeBody Run);
  size_t taskChunk(size_t N) const;
  template <typename Pred> void spinUntil(Pred &&IsDone) const;

  unsigned Threads;
  Schedule Sched;
  unsigned SpinLimit;

  // Broadcast job slot: the master writes the fields below, then
  // publishes by bumping JobSeq (release).  Helpers are quiescent between
  // dispatches (the master waits for every Done flag before returning),
  // so the slot is never written concurrently.
  JobKind Kind = JobKind::Range;
  RangeBody Body;
  size_t JobBegin = 0;
  size_t JobEnd = 0;
  size_t Chunk = 1;
  TaskDag *Dag = nullptr;
  DagNodeBody DagRun;

  /// Items not yet completed in the current dispatch; workers leave the
  /// work loop when it reaches 0.
  std::atomic<size_t> Pending{0};
  /// Per-node unmet-dependency counters for the current DAG dispatch.
  std::unique_ptr<std::atomic<unsigned>[]> Remaining;
  size_t RemainingCap = 0;

  std::atomic<uint64_t> JobSeq{0};
  std::atomic<bool> Stopping{false};

  std::unique_ptr<WorkerDeque[]> Deques;
  std::unique_ptr<DoneFlag[]> Done; // one per helper (Threads - 1)
  std::vector<std::thread> Workers;
};

} // namespace sacfd

#endif // SACFD_RUNTIME_TASKBACKEND_H
