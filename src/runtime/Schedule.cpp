//===- runtime/Schedule.cpp - Loop iteration scheduling policies ---------===//

#include "runtime/Schedule.h"

#include "support/Error.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace sacfd;

std::optional<Schedule> Schedule::parse(std::string_view Text) {
  std::vector<std::string> Parts = split(trim(Text), ',');
  if (Parts.empty() || Parts.size() > 2)
    return std::nullopt;

  Schedule Sched;
  std::string_view Name = trim(Parts[0]);
  if (equalsLower(Name, "static"))
    Sched.K = Parts.size() == 2 ? Kind::StaticChunk : Kind::StaticBlock;
  else if (equalsLower(Name, "dynamic"))
    Sched.K = Kind::Dynamic;
  else
    return std::nullopt;

  if (Parts.size() == 2) {
    std::optional<long long> Chunk = parseInt(Parts[1]);
    if (!Chunk || *Chunk <= 0)
      return std::nullopt;
    Sched.ChunkSize = static_cast<size_t>(*Chunk);
  }
  return Sched;
}

std::string Schedule::str() const {
  std::string Name;
  switch (K) {
  case Kind::StaticBlock:
    return "static";
  case Kind::StaticChunk:
    Name = "static";
    break;
  case Kind::Dynamic:
    Name = "dynamic";
    break;
  }
  if (ChunkSize != 0)
    Name += "," + std::to_string(ChunkSize);
  return Name;
}

size_t Schedule::resolvedChunk(size_t N, unsigned Workers) const {
  assert(Workers > 0 && "worker count must be positive");
  if (ChunkSize != 0)
    return ChunkSize;
  switch (K) {
  case Kind::StaticBlock:
    // One block per worker, rounded up.
    return (N + Workers - 1) / Workers;
  case Kind::StaticChunk:
  case Kind::Dynamic:
    // Mirror common OpenMP practice: enough chunks for some load balance
    // without flooding the dispatch path.
    return std::max<size_t>(1, N / (8 * static_cast<size_t>(Workers)));
  }
  sacfdUnreachable("covered switch");
}

std::vector<std::vector<IterationChunk>>
sacfd::staticPartition(size_t N, unsigned Workers, const Schedule &Sched) {
  assert(Sched.K != Schedule::Kind::Dynamic &&
         "dynamic schedules have no static partition");
  assert(Workers > 0 && "worker count must be positive");

  std::vector<std::vector<IterationChunk>> Plan(Workers);
  if (N == 0)
    return Plan;

  if (Sched.K == Schedule::Kind::StaticBlock) {
    // Spread the remainder over the leading workers so block sizes differ
    // by at most one iteration.
    size_t Base = N / Workers;
    size_t Extra = N % Workers;
    size_t Begin = 0;
    for (unsigned W = 0; W < Workers; ++W) {
      size_t Len = Base + (W < Extra ? 1 : 0);
      if (Len > 0)
        Plan[W].push_back({Begin, Begin + Len});
      Begin += Len;
    }
    return Plan;
  }

  size_t Chunk = Sched.resolvedChunk(N, Workers);
  unsigned W = 0;
  for (size_t Begin = 0; Begin < N; Begin += Chunk) {
    Plan[W].push_back({Begin, std::min(Begin + Chunk, N)});
    W = (W + 1) % Workers;
  }
  return Plan;
}
