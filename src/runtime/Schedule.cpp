//===- runtime/Schedule.cpp - Loop iteration scheduling policies ---------===//

#include "runtime/Schedule.h"

#include "support/Error.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>

using namespace sacfd;

SpecParse<Schedule> Schedule::parseSpec(std::string_view Text) {
  if (trim(Text).empty())
    return SpecParse<Schedule>::fail(
        "empty schedule spec (expected static[,N] or dynamic[,N])");
  std::vector<std::string> Parts = split(trim(Text), ',');
  if (Parts.size() > 2)
    return SpecParse<Schedule>::fail(
        "schedule spec '" + std::string(trim(Text)) +
        "' has too many fields (expected kind[,chunk])");

  Schedule Sched;
  std::string_view Name = trim(Parts[0]);
  if (equalsLower(Name, "static"))
    Sched.K = Parts.size() == 2 ? Kind::StaticChunk : Kind::StaticBlock;
  else if (equalsLower(Name, "dynamic"))
    Sched.K = Kind::Dynamic;
  else
    return SpecParse<Schedule>::fail("unknown schedule kind '" +
                                     std::string(Name) +
                                     "' (expected static or dynamic)");

  if (Parts.size() == 2) {
    std::optional<long long> Chunk = parseInt(Parts[1]);
    if (!Chunk || *Chunk <= 0)
      return SpecParse<Schedule>::fail(
          "bad schedule chunk '" + std::string(trim(Parts[1])) +
          "' (expected a positive integer)");
    Sched.ChunkSize = static_cast<size_t>(*Chunk);
  }
  return SpecParse<Schedule>::ok(Sched);
}

std::string Schedule::str() const {
  std::string Name;
  switch (K) {
  case Kind::StaticBlock:
    return "static";
  case Kind::StaticChunk:
    Name = "static";
    break;
  case Kind::Dynamic:
    Name = "dynamic";
    break;
  }
  if (ChunkSize != 0)
    Name += "," + std::to_string(ChunkSize);
  return Name;
}

size_t Schedule::resolvedChunk(size_t N, unsigned Workers) const {
  assert(Workers > 0 && "worker count must be positive");
  if (ChunkSize != 0)
    return ChunkSize;
  switch (K) {
  case Kind::StaticBlock:
    // One block per worker, rounded up.
    return (N + Workers - 1) / Workers;
  case Kind::StaticChunk:
  case Kind::Dynamic:
    // Mirror common OpenMP practice: enough chunks for some load balance
    // without flooding the dispatch path.
    return std::max<size_t>(1, N / (8 * static_cast<size_t>(Workers)));
  }
  sacfdUnreachable("covered switch");
}

std::vector<std::vector<IterationChunk>>
sacfd::staticPartition(size_t N, unsigned Workers, const Schedule &Sched) {
  assert(Sched.K != Schedule::Kind::Dynamic &&
         "dynamic schedules have no static partition");
  assert(Workers > 0 && "worker count must be positive");

  std::vector<std::vector<IterationChunk>> Plan(Workers);
  if (N == 0)
    return Plan;

  if (Sched.K == Schedule::Kind::StaticBlock) {
    // Spread the remainder over the leading workers so block sizes differ
    // by at most one iteration.
    size_t Base = N / Workers;
    size_t Extra = N % Workers;
    size_t Begin = 0;
    for (unsigned W = 0; W < Workers; ++W) {
      size_t Len = Base + (W < Extra ? 1 : 0);
      if (Len > 0)
        Plan[W].push_back({Begin, Begin + Len});
      Begin += Len;
    }
    return Plan;
  }

  size_t Chunk = Sched.resolvedChunk(N, Workers);
  unsigned W = 0;
  for (size_t Begin = 0; Begin < N; Begin += Chunk) {
    Plan[W].push_back({Begin, std::min(Begin + Chunk, N)});
    W = (W + 1) % Workers;
  }
  return Plan;
}

SpecParse<Tile> Tile::parseSpec(std::string_view Text) {
  std::string_view Spec = trim(Text);
  if (Spec.empty())
    return SpecParse<Tile>::fail(
        "empty tile spec (expected off, auto, RxC, or N)");
  if (equalsLower(Spec, "off") || equalsLower(Spec, "none"))
    return SpecParse<Tile>::ok(Tile::off());
  if (equalsLower(Spec, "auto") || equalsLower(Spec, "on"))
    return SpecParse<Tile>::ok(Tile::automatic());

  size_t Cross = Spec.find_first_of("xX");
  if (Cross == std::string_view::npos) {
    std::optional<long long> N = parseInt(Spec);
    if (!N || *N <= 0)
      return SpecParse<Tile>::fail("bad tile spec '" + std::string(Spec) +
                                   "' (expected off, auto, RxC, or a "
                                   "positive integer N for NxN)");
    return SpecParse<Tile>::ok(
        Tile::sized(static_cast<size_t>(*N), static_cast<size_t>(*N)));
  }

  std::optional<long long> R = parseInt(trim(Spec.substr(0, Cross)));
  std::optional<long long> C = parseInt(trim(Spec.substr(Cross + 1)));
  if (!R || *R <= 0 || !C || *C <= 0)
    return SpecParse<Tile>::fail(
        "bad tile dimensions in '" + std::string(Spec) +
        "' (expected RxC with positive integers, e.g. 32x128)");
  return SpecParse<Tile>::ok(
      Tile::sized(static_cast<size_t>(*R), static_cast<size_t>(*C)));
}

std::string Tile::str() const {
  if (!Enabled)
    return "off";
  if (Rows == 0 && Cols == 0)
    return "auto";
  return std::to_string(Rows) + "x" + std::to_string(Cols);
}

TileGrid::TileGrid(size_t Rows, size_t Cols, const Tile &T)
    : Rows(Rows), Cols(Cols) {
  if (Rows == 0 || Cols == 0)
    return;
  TileR = T.Rows != 0 ? T.Rows : DefaultTileRows;
  TileC = T.Cols != 0 ? T.Cols : DefaultTileCols;
  TileR = std::min(std::max<size_t>(TileR, 1), Rows);
  TileC = std::min(std::max<size_t>(TileC, 1), Cols);
  RowTiles = (Rows + TileR - 1) / TileR;
  ColTiles = (Cols + TileC - 1) / TileC;
}

TileRect TileGrid::rect(size_t T) const {
  assert(T < count() && "tile index out of range");
  size_t TR = T / ColTiles;
  size_t TC = T % ColTiles;
  TileRect R;
  R.RowBegin = TR * TileR;
  R.RowEnd = std::min(R.RowBegin + TileR, Rows);
  R.ColBegin = TC * TileC;
  R.ColEnd = std::min(R.ColBegin + TileC, Cols);
  return R;
}
