//===- runtime/BlockReduce.h - Deterministic block reduction ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic parallel reduction over an index range.
///
/// The range [0, N) is split into min(workerCount, N) contiguous blocks;
/// each block is folded independently (in parallel through the Backend)
/// and the per-block partials are merged serially in block order.  For a
/// fixed worker count the block boundaries — and therefore the merge
/// order — are independent of the schedule, so floating-point results are
/// reproducible run to run.  This is the same discipline the engines use
/// for their GetDT reductions; BlockReduce packages it for consumers that
/// fold arbitrary state (the step guard's health scan folds a struct of
/// minima plus an offender list).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_BLOCKREDUCE_H
#define SACFD_RUNTIME_BLOCKREDUCE_H

#include "runtime/Backend.h"
#include "support/InlinePartials.h"

#include <algorithm>
#include <utility>

namespace sacfd {

/// Folds [0, N) into a single value of type \p T.
///
/// \p Fold is called once per block with its sub-range [Lo, Hi) and must
/// return that block's partial (it must not touch shared state).  \p
/// MergeFn combines two partials left-to-right; it is applied serially in
/// ascending block order, so the reduction is deterministic for a fixed
/// worker count even with non-associative merges (floating-point min/max
/// chains, capped list concatenation).
template <typename T, typename FoldBlock, typename Merge>
T blockReduce(size_t N, Backend &Exec, T Identity, FoldBlock Fold,
              Merge MergeFn) {
  if (N == 0)
    return Identity;

  size_t Blocks = std::min<size_t>(Exec.workerCount(), N);
  InlinePartials<T> Partials(Blocks, Identity);

  // Block b covers [Lo, Lo + Len): the first (N % Blocks) blocks are one
  // element longer, so the partition depends only on N and Blocks.
  size_t Base = N / Blocks;
  size_t Extra = N % Blocks;
  Exec.parallelFor(0, Blocks, [&](size_t BB, size_t BE) {
    for (size_t Block = BB; Block != BE; ++Block) {
      size_t Lo = Block * Base + std::min(Block, Extra);
      size_t Len = Base + (Block < Extra ? 1 : 0);
      Partials[Block] = Fold(Lo, Lo + Len);
    }
  });

  T Result = std::move(Partials.front());
  for (size_t I = 1; I < Partials.size(); ++I)
    Result = MergeFn(std::move(Result), std::move(Partials[I]));
  return Result;
}

/// Folds the (Rows x Cols) rectangle into a single value of type \p T.
///
/// \p Fold is called once per sub-rectangle (RowBegin, RowEnd, ColBegin,
/// ColEnd) and must return that rectangle's partial.  Under a tiled
/// backend the sub-rectangles are the TileGrid's tiles and partials merge
/// in tile order — a decomposition independent of the worker count, so
/// tiled reductions are reproducible at any parallelism level.  Without
/// tiling the legacy discipline applies: min(workerCount, Rows) row bands,
/// each spanning every column, merged in band order.
template <typename T, typename FoldRect, typename Merge>
T blockReduce2D(size_t Rows, size_t Cols, Backend &Exec, T Identity,
                FoldRect Fold, Merge MergeFn) {
  if (Rows == 0 || Cols == 0)
    return Identity;

  if (Exec.tile().Enabled) {
    TileGrid G(Rows, Cols, Exec.tile());
    InlinePartials<T> Partials(G.count(), Identity);
    Exec.parallelFor(0, G.count(), [&](size_t TB, size_t TE) {
      for (size_t Tl = TB; Tl != TE; ++Tl) {
        TileRect R = G.rect(Tl);
        Partials[Tl] = Fold(R.RowBegin, R.RowEnd, R.ColBegin, R.ColEnd);
      }
    });
    T Result = std::move(Partials.front());
    for (size_t I = 1; I < Partials.size(); ++I)
      Result = MergeFn(std::move(Result), std::move(Partials[I]));
    return Result;
  }

  return blockReduce<T>(
      Rows, Exec, Identity,
      [&](size_t Lo, size_t Hi) { return Fold(Lo, Hi, 0, Cols); },
      MergeFn);
}

} // namespace sacfd

#endif // SACFD_RUNTIME_BLOCKREDUCE_H
