//===- runtime/ForkJoinBackend.h - Per-loop thread teams -------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fortran/OpenMP-style execution model.
///
/// Auto-parallelizing compilers emit one parallel region per parallel DO
/// loop; a team of threads is assembled for the region and disbanded at its
/// end.  ForkJoinBackend reproduces that cost model literally: every
/// parallelFor constructs workerCount()-1 std::threads, hands out
/// iterations under the configured Schedule, and joins them before
/// returning.  The per-region thread management cost is exactly the
/// "overhead of communication between the threads" the paper blames for
/// Fortran's scaling collapse on the 400x400 grid (Fig. 4): the Euler time
/// step issues dozens of parallel loops, so the overhead is paid dozens of
/// times per step and grows with the team size.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_FORKJOINBACKEND_H
#define SACFD_RUNTIME_FORKJOINBACKEND_H

#include "runtime/Backend.h"
#include "runtime/Schedule.h"

namespace sacfd {

/// Spawns and joins a fresh thread team for every parallelFor call.
class ForkJoinBackend final : public Backend {
public:
  /// \param Threads team size including the calling thread (>= 1).
  /// \param Sched iteration scheduling policy (OMP_SCHEDULE analogue).
  explicit ForkJoinBackend(unsigned Threads,
                           Schedule Sched = Schedule::staticBlock());

  void parallelFor(size_t Begin, size_t End, RangeBody Body) override;
  void parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) override;
  unsigned workerCount() const override { return Threads; }
  const char *name() const override { return "fork-join"; }

  const Schedule &schedule() const { return Sched; }

private:
  void runStatic(size_t Begin, size_t End, RangeBody Body);
  void runDynamic(size_t Begin, size_t End, RangeBody Body);

  unsigned Threads;
  Schedule Sched;
};

} // namespace sacfd

#endif // SACFD_RUNTIME_FORKJOINBACKEND_H
