//===- runtime/Backend.h - Parallel execution backend interface -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution-model boundary the paper's comparison is about.
///
/// Every data-parallel operation in SacFD (with-loops, reductions, the
/// fused Fortran-style loop nests) funnels through Backend::parallelFor.
/// The two concrete models under study are:
///   - SpinBarrierPool: SaC's runtime — persistent workers, spin-lock
///     communication, near-zero dispatch cost per region;
///   - ForkJoinBackend: auto-parallelized Fortran — threads created and
///     joined for every parallel loop.
/// SerialBackend is the single-core reference both degenerate to.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_BACKEND_H
#define SACFD_RUNTIME_BACKEND_H

#include "runtime/Schedule.h"
#include "support/FunctionRef.h"
#include "telemetry/Telemetry.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sacfd {

class TaskBackend;

/// A range body: executes iterations [Begin, End) of a parallel loop.
using RangeBody = FunctionRef<void(size_t Begin, size_t End)>;

/// A 2D range body: executes the sub-rectangle rows [RowBegin, RowEnd) x
/// cols [ColBegin, ColEnd) of a rank-2 parallel loop.
using RangeBody2D = FunctionRef<void(size_t RowBegin, size_t RowEnd,
                                     size_t ColBegin, size_t ColEnd)>;

/// Abstract parallel-for execution engine.
///
/// parallelFor calls are blocking: all iterations have completed when the
/// call returns.  Bodies must be safe to run concurrently on disjoint
/// sub-ranges.  Nested parallelFor calls from inside a body are legal and
/// execute inline on the calling worker (no nested parallelism), matching
/// the paper's flat one-level parallelization.
///
/// parallelFor2D extends the boundary to rank-2 index spaces.  The same
/// contract holds (blocking, disjoint sub-rectangles, nested calls run
/// inline), and exactly one region is counted per non-empty call, so
/// region counts — and the "runtime.regions" telemetry counter — are
/// identical whether a loop runs tiled or flattened.  The base-class
/// implementation is the legacy row-flattening shim: the row range goes
/// through parallelFor and every body invocation spans all columns.
/// Backends with a native implementation honor the configured Tile
/// (see setTile) to deal cache-sized tiles instead.
class Backend {
public:
  virtual ~Backend();

  /// Executes Body over [Begin, End), partitioned across workers.
  virtual void parallelFor(size_t Begin, size_t End, RangeBody Body) = 0;

  /// Executes Body over the (Rows x Cols) rectangle, partitioned across
  /// workers.  Default: row-flattening shim over parallelFor.
  virtual void parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body);

  /// \returns the number of workers participating in parallelFor,
  /// including the calling thread.
  virtual unsigned workerCount() const = 0;

  /// \returns a stable human-readable backend name for reports.
  virtual const char *name() const = 0;

  /// \returns this backend as a TaskBackend when it supports dependency-
  /// DAG dispatch (runDag), nullptr otherwise.  Callers with a task graph
  /// probe this instead of RTTI; everyone else stays on parallelFor.
  virtual TaskBackend *taskBackend() { return nullptr; }

  /// Sets the rank-2 tiling policy used by parallelFor2D.  Disabled by
  /// default (row-flattened legacy behavior).
  void setTile(const Tile &T) { TileCfg = T; }
  const Tile &tile() const { return TileCfg; }

  /// Number of top-level non-empty parallel regions dispatched so far.
  ///
  /// Each counted region is one team fork-join (ForkJoinBackend), one
  /// pool broadcast+barrier (SpinBarrierPool), or one `omp parallel`.
  /// Nested (inlined) calls and empty ranges are not counted.  The FIG4
  /// harness divides this by the step count to report the
  /// regions-per-time-step that drive the overhead comparison.
  uint64_t regionsDispatched() const {
    return RegionCount.load(std::memory_order_relaxed);
  }

protected:
  /// Implementations call this once per counted region.  Also feeds the
  /// "runtime.regions" telemetry counter, whose total is deterministic
  /// for a fixed workload on every backend and worker count.
  void countRegion() {
    RegionCount.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      static const unsigned Regions = telemetry::counterId("runtime.regions");
      telemetry::addCounter(Regions);
    }
  }

  /// Executes every tile of \p G through this backend's parallelFor,
  /// honoring G's dealing schedule.  Shared by the native parallelFor2D
  /// overrides; issues exactly one counted 1D region.
  void runTileGrid(const TileGrid &G, const Schedule &Dealing,
                   RangeBody2D Body);

private:
  std::atomic<uint64_t> RegionCount{0};
  Tile TileCfg = Tile::off();
};

} // namespace sacfd

#endif // SACFD_RUNTIME_BACKEND_H
