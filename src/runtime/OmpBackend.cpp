//===- runtime/OmpBackend.cpp - Real OpenMP execution ---------------------===//

#include "runtime/OmpBackend.h"

#include "runtime/ParallelRegion.h"

#include <cassert>

#ifdef SACFD_HAVE_OPENMP
#include <omp.h>
#endif

using namespace sacfd;

#ifdef SACFD_HAVE_OPENMP

namespace {

/// Backend running each region as one `omp parallel` with a static block
/// partition (matching the other backends' default chunking, so results
/// stay bit-identical).
class OmpBackend final : public Backend {
public:
  explicit OmpBackend(unsigned Threads) : Threads(Threads) {
    assert(Threads >= 1 && "team needs at least one thread");
  }

  void parallelFor(size_t Begin, size_t End, RangeBody Body) override {
    if (Begin >= End)
      return;
    if (inParallelRegion()) {
      Body(Begin, End);
      return;
    }
    countRegion();
    static const unsigned Region = telemetry::spanId("region.openmp");
    telemetry::ScopedSpan Span(Region);
    if (Threads == 1) {
      ParallelRegionGuard Guard;
      Body(Begin, End);
      return;
    }

    size_t N = End - Begin;
    unsigned Team = Threads;
#pragma omp parallel num_threads(Team)
    {
      ParallelRegionGuard Guard;
      unsigned W = static_cast<unsigned>(omp_get_thread_num());
      unsigned Actual = static_cast<unsigned>(omp_get_num_threads());
      // Static block partition identical to SpinBarrierPool::runShare.
      size_t Base = N / Actual;
      size_t Extra = N % Actual;
      size_t MyBegin = Begin + W * Base + (W < Extra ? W : Extra);
      size_t MyLen = Base + (W < Extra ? 1 : 0);
      if (MyLen > 0)
        Body(MyBegin, MyBegin + MyLen);
    }
  }

  void parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) override {
    if (Rows == 0 || Cols == 0)
      return;
    if (!tile().Enabled || inParallelRegion()) {
      Backend::parallelFor2D(Rows, Cols, Body);
      return;
    }
    // One `omp parallel` covers the whole tile range via the shared tile
    // dealer, so the region cost matches the 1D path.
    runTileGrid(TileGrid(Rows, Cols, tile()), tile().Dealing, Body);
  }

  unsigned workerCount() const override { return Threads; }
  const char *name() const override { return "openmp"; }

private:
  unsigned Threads;
};

} // namespace

bool sacfd::openMpAvailable() { return true; }

std::unique_ptr<Backend> sacfd::createOmpBackend(unsigned Threads) {
  return std::make_unique<OmpBackend>(Threads);
}

#else

bool sacfd::openMpAvailable() { return false; }

std::unique_ptr<Backend> sacfd::createOmpBackend(unsigned) {
  return nullptr;
}

#endif // SACFD_HAVE_OPENMP
