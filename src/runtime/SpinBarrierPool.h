//===- runtime/SpinBarrierPool.h - Persistent spin-sync pool ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SaC-style execution model.
///
/// Quoting the paper: "SaC does not use system calls for its inter thread
/// communication but rather uses the programs shared memory and spin locks
/// to allow inter thread communication with very little overhead."
///
/// SpinBarrierPool reproduces that model: worker threads are created once
/// and live for the lifetime of the pool.  Work is broadcast through a
/// shared job slot guarded by a monotonically increasing sequence number;
/// workers spin (bounded, then yield) on the sequence, execute their static
/// share of the iteration space, and publish completion through per-worker
/// cache-line-padded flags the master spins on.  A full dispatch is two
/// shared-memory round trips — no mutexes, no condition variables, no
/// system calls on the fast path.
///
/// The bounded spin-then-yield is a deliberate deviation from pure
/// spinning: on an oversubscribed host (more workers than cores) pure spin
/// barriers livelock-degrade, and the reference host for this reproduction
/// has a single core.  The spin limit is configurable so the pure-spin
/// behavior can still be measured.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_SPINBARRIERPOOL_H
#define SACFD_RUNTIME_SPINBARRIERPOOL_H

#include "runtime/Backend.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace sacfd {

/// Persistent worker pool with spin-barrier dispatch (SaC runtime model).
class SpinBarrierPool final : public Backend {
public:
  /// Default busy-wait iterations before yielding.
  static constexpr unsigned DefaultSpinLimit = 1 << 14;

  /// \param Threads pool size including the calling thread (>= 1).
  /// \param SpinLimit busy-wait iterations before falling back to yield();
  ///        0 yields immediately (fully cooperative).  The default spins
  ///        only when every worker can own a hardware thread — on an
  ///        oversubscribed host spinning steals the core from the very
  ///        thread being waited on, so the pool goes fully cooperative
  ///        (production runtimes make the same adaptation).
  explicit SpinBarrierPool(unsigned Threads,
                           unsigned SpinLimit = DefaultSpinLimit);
  ~SpinBarrierPool() override;

  SpinBarrierPool(const SpinBarrierPool &) = delete;
  SpinBarrierPool &operator=(const SpinBarrierPool &) = delete;

  void parallelFor(size_t Begin, size_t End, RangeBody Body) override;
  void parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) override;
  unsigned workerCount() const override { return Threads; }
  const char *name() const override { return "spin-pool"; }

  unsigned spinLimit() const { return SpinLimit; }

private:
  /// Per-worker completion flag, padded to avoid false sharing between
  /// workers hammering their own line while the master polls.
  struct alignas(64) DoneFlag {
    std::atomic<uint64_t> Seq{0};
  };

  void workerMain(unsigned WorkerIndex);
  void runShare(unsigned WorkerIndex, size_t Begin, size_t End,
                RangeBody Body) const;
  template <typename Pred> void spinUntil(Pred &&Done) const;

  unsigned Threads;
  unsigned SpinLimit;

  // Broadcast slot: the master writes Job/JobBegin/JobEnd, then publishes
  // by bumping JobSeq (release).  Workers acquire JobSeq and read the slot.
  RangeBody Job;
  size_t JobBegin = 0;
  size_t JobEnd = 0;
  std::atomic<uint64_t> JobSeq{0};
  std::atomic<bool> Stopping{false};

  std::unique_ptr<DoneFlag[]> Done; // one per helper worker (Threads - 1)
  std::vector<std::thread> Workers;
};

} // namespace sacfd

#endif // SACFD_RUNTIME_SPINBARRIERPOOL_H
