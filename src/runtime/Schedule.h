//===- runtime/Schedule.h - Loop iteration scheduling policies -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iteration-space partitioning policies for the parallel backends.
///
/// The paper's Fortran runs were tuned through OMP_SCHEDULE (STATIC won);
/// Schedule reproduces that knob for the fork-join backend so the A2
/// ablation can measure static vs dynamic chunking the way the authors did.
///
/// Tile extends the same idea to rank-2 iteration spaces: the Fig. 4
/// workload is a 2D stencil, and carving it into cache-sized tiles — dealt
/// to workers under a Schedule of their own — is the knob
/// Backend::parallelFor2D exposes.  TileGrid resolves a Tile against a
/// concrete (Rows, Cols) space; its tile order is row-major and depends
/// only on the extents and the tile dimensions, never on the worker count,
/// which is what keeps tile-ordered reductions deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_SCHEDULE_H
#define SACFD_RUNTIME_SCHEDULE_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sacfd {

/// Outcome of parsing a user-supplied spec string: either the parsed
/// value or a structured error naming what was wrong with the input.
/// Callers surface Error verbatim — no silent fallback to a default.
template <typename T> struct SpecParse {
  std::optional<T> Value;
  std::string Error;

  explicit operator bool() const { return Value.has_value(); }

  static SpecParse ok(T V) { return {std::move(V), {}}; }
  static SpecParse fail(std::string Message) {
    return {std::nullopt, std::move(Message)};
  }
};

/// How a [Begin, End) iteration range is carved into worker chunks.
struct Schedule {
  enum class Kind {
    /// One contiguous block per worker (OpenMP `static` without chunk).
    StaticBlock,
    /// Fixed-size chunks dealt round-robin (OpenMP `static,chunk`).
    StaticChunk,
    /// Workers grab chunks from a shared counter (OpenMP `dynamic`).
    Dynamic,
  };

  Kind K = Kind::StaticBlock;
  /// Chunk size for StaticChunk/Dynamic; 0 selects an automatic size.
  size_t ChunkSize = 0;

  static Schedule staticBlock() { return {Kind::StaticBlock, 0}; }
  static Schedule staticChunk(size_t Chunk) {
    return {Kind::StaticChunk, Chunk};
  }
  static Schedule dynamic(size_t Chunk = 0) { return {Kind::Dynamic, Chunk}; }

  /// Parses "static", "static,N", "dynamic", "dynamic,N" (the OMP_SCHEDULE
  /// grammar), reporting malformed input with a structured error.
  static SpecParse<Schedule> parseSpec(std::string_view Text);

  /// Convenience wrapper over parseSpec() for callers that only need the
  /// accept/reject outcome.  \returns nullopt on malformed input.
  static std::optional<Schedule> parse(std::string_view Text) {
    return parseSpec(Text).Value;
  }

  /// \returns a human-readable form, e.g. "static" or "dynamic,16".
  std::string str() const;

  /// Chunk size actually used for an \p N-iteration loop on \p Workers
  /// workers (resolves the automatic size).
  size_t resolvedChunk(size_t N, unsigned Workers) const;
};

/// A contiguous sub-range of a parallel loop assigned to one worker visit.
struct IterationChunk {
  size_t Begin;
  size_t End;
};

/// Computes the static partition of [0, N) for \p Workers workers under
/// \p Sched.  Entry I holds the chunks worker I must execute, in order.
/// Dynamic schedules have no static partition; calling this with one is a
/// programmatic error.
std::vector<std::vector<IterationChunk>>
staticPartition(size_t N, unsigned Workers, const Schedule &Sched);

/// Tiling policy for rank-2 iteration spaces (Backend::parallelFor2D).
///
/// Disabled is the legacy behavior: 2D loops are flattened into row
/// ranges exactly as before the 2D API existed.  Enabled carves the
/// (Rows, Cols) space into Rows x Cols tiles of the given dimensions
/// (0 = resolve an automatic cache-friendly size) and deals whole tiles
/// to workers under Dealing:
///   StaticBlock  the contiguous tile range goes through the backend's
///                native 1D partitioner (its default static split);
///   StaticChunk  tiles are dealt round-robin in fixed-size groups;
///   Dynamic      workers pull tile chunks from a shared counter.
struct Tile {
  bool Enabled = false;
  /// Tile height (rows) and width (cols); 0 = automatic.
  size_t Rows = 0;
  size_t Cols = 0;
  /// How whole tiles are dealt to workers.
  Schedule Dealing = Schedule::staticBlock();

  static Tile off() { return {}; }
  static Tile automatic() {
    Tile T;
    T.Enabled = true;
    return T;
  }
  static Tile sized(size_t Rows, size_t Cols) {
    Tile T;
    T.Enabled = true;
    T.Rows = Rows;
    T.Cols = Cols;
    return T;
  }

  /// Parses "off", "auto", "RxC" (e.g. "32x128"), or "N" (NxN tiles),
  /// reporting malformed input with a structured error.  The dealing
  /// schedule is a separate knob (--tile-dealing) and is not part of
  /// this grammar.
  static SpecParse<Tile> parseSpec(std::string_view Text);

  /// \returns "off", "auto", or "RxC" (Dealing excluded, as in parseSpec).
  std::string str() const;
};

/// One tile of a 2D iteration space: rows [RowBegin, RowEnd) x cols
/// [ColBegin, ColEnd).
struct TileRect {
  size_t RowBegin;
  size_t RowEnd;
  size_t ColBegin;
  size_t ColEnd;
};

/// The tile decomposition of a concrete (Rows x Cols) iteration space.
///
/// Tiles are numbered row-major: tile T covers tile-row T / colTiles()
/// and tile-column T % colTiles().  The decomposition depends only on
/// the extents and the (resolved) tile dimensions — not on the worker
/// count or the dealing schedule — so anything keyed by tile index
/// (per-tile reduction partials, most importantly) is reproducible at
/// any parallelism level.
class TileGrid {
public:
  /// Resolves \p T against the space: automatic dimensions become
  /// DefaultTileRows/DefaultTileCols clamped into the extents.
  TileGrid(size_t Rows, size_t Cols, const Tile &T);

  /// Automatic tile height: a band tall enough to amortize dispatch.
  static constexpr size_t DefaultTileRows = 32;
  /// Automatic tile width: a contiguous run long enough to stream well
  /// (the last axis is the contiguous one in row-major storage).
  static constexpr size_t DefaultTileCols = 128;

  size_t rows() const { return Rows; }
  size_t cols() const { return Cols; }
  size_t tileRows() const { return TileR; }
  size_t tileCols() const { return TileC; }
  size_t rowTiles() const { return RowTiles; }
  size_t colTiles() const { return ColTiles; }

  /// Total number of tiles.
  size_t count() const { return RowTiles * ColTiles; }

  /// The extent of tile \p T (row-major tile numbering); edge tiles are
  /// clipped to the space.
  TileRect rect(size_t T) const;

private:
  size_t Rows;
  size_t Cols;
  size_t TileR = 1;
  size_t TileC = 1;
  size_t RowTiles = 0;
  size_t ColTiles = 0;
};

} // namespace sacfd

#endif // SACFD_RUNTIME_SCHEDULE_H
