//===- runtime/Schedule.h - Loop iteration scheduling policies -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iteration-space partitioning policies for the parallel backends.
///
/// The paper's Fortran runs were tuned through OMP_SCHEDULE (STATIC won);
/// Schedule reproduces that knob for the fork-join backend so the A2
/// ablation can measure static vs dynamic chunking the way the authors did.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_SCHEDULE_H
#define SACFD_RUNTIME_SCHEDULE_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sacfd {

/// How a [Begin, End) iteration range is carved into worker chunks.
struct Schedule {
  enum class Kind {
    /// One contiguous block per worker (OpenMP `static` without chunk).
    StaticBlock,
    /// Fixed-size chunks dealt round-robin (OpenMP `static,chunk`).
    StaticChunk,
    /// Workers grab chunks from a shared counter (OpenMP `dynamic`).
    Dynamic,
  };

  Kind K = Kind::StaticBlock;
  /// Chunk size for StaticChunk/Dynamic; 0 selects an automatic size.
  size_t ChunkSize = 0;

  static Schedule staticBlock() { return {Kind::StaticBlock, 0}; }
  static Schedule staticChunk(size_t Chunk) {
    return {Kind::StaticChunk, Chunk};
  }
  static Schedule dynamic(size_t Chunk = 0) { return {Kind::Dynamic, Chunk}; }

  /// Parses "static", "static,N", "dynamic", "dynamic,N" (the OMP_SCHEDULE
  /// grammar).  \returns nullopt on malformed input.
  static std::optional<Schedule> parse(std::string_view Text);

  /// \returns a human-readable form, e.g. "static" or "dynamic,16".
  std::string str() const;

  /// Chunk size actually used for an \p N-iteration loop on \p Workers
  /// workers (resolves the automatic size).
  size_t resolvedChunk(size_t N, unsigned Workers) const;
};

/// A contiguous sub-range of a parallel loop assigned to one worker visit.
struct IterationChunk {
  size_t Begin;
  size_t End;
};

/// Computes the static partition of [0, N) for \p Workers workers under
/// \p Sched.  Entry I holds the chunks worker I must execute, in order.
/// Dynamic schedules have no static partition; calling this with one is a
/// programmatic error.
std::vector<std::vector<IterationChunk>>
staticPartition(size_t N, unsigned Workers, const Schedule &Sched);

} // namespace sacfd

#endif // SACFD_RUNTIME_SCHEDULE_H
