//===- runtime/ForkJoinBackend.cpp - Per-loop thread teams ---------------===//

#include "runtime/ForkJoinBackend.h"

#include "runtime/ParallelRegion.h"

#include <atomic>
#include <cassert>
#include <thread>
#include <vector>

using namespace sacfd;

ForkJoinBackend::ForkJoinBackend(unsigned Threads, Schedule Sched)
    : Threads(Threads), Sched(Sched) {
  assert(Threads >= 1 && "team needs at least the calling thread");
}

void ForkJoinBackend::parallelFor(size_t Begin, size_t End, RangeBody Body) {
  if (Begin >= End)
    return;
  // Nested regions run inline: OpenMP's behavior when nesting is
  // disabled.
  if (inParallelRegion()) {
    Body(Begin, End);
    return;
  }
  countRegion();
  // The span covers the whole dispatch — fork, body, join — which is the
  // per-region cost model this backend exists to measure.
  static const unsigned Region = telemetry::spanId("region.fork_join");
  telemetry::ScopedSpan Span(Region);

  // 1-thread teams run inline (a trivial team forks nothing).
  if (Threads == 1) {
    ParallelRegionGuard Guard;
    Body(Begin, End);
    return;
  }

  if (Sched.K == Schedule::Kind::Dynamic)
    runDynamic(Begin, End, Body);
  else
    runStatic(Begin, End, Body);
}

void ForkJoinBackend::parallelFor2D(size_t Rows, size_t Cols,
                                    RangeBody2D Body) {
  if (Rows == 0 || Cols == 0)
    return;
  if (!tile().Enabled || inParallelRegion()) {
    Backend::parallelFor2D(Rows, Cols, Body);
    return;
  }
  // One team fork-join covers the whole tile range — the per-region cost
  // is paid once regardless of the tile count.
  runTileGrid(TileGrid(Rows, Cols, tile()), tile().Dealing, Body);
}

void ForkJoinBackend::runStatic(size_t Begin, size_t End, RangeBody Body) {
  size_t N = End - Begin;
  std::vector<std::vector<IterationChunk>> Plan =
      staticPartition(N, Threads, Sched);

  // Fork: one fresh thread per non-master team member, every region.  This
  // is the deliberate cost model; do not hoist into a pool.
  std::vector<std::thread> Team;
  Team.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W)
    Team.emplace_back([&Plan, W, Begin, Body] {
      ParallelRegionGuard Guard;
      for (const IterationChunk &Chunk : Plan[W])
        Body(Begin + Chunk.Begin, Begin + Chunk.End);
    });

  {
    ParallelRegionGuard Guard;
    for (const IterationChunk &Chunk : Plan[0])
      Body(Begin + Chunk.Begin, Begin + Chunk.End);
  }

  // Join: disband the team.
  for (std::thread &T : Team)
    T.join();
}

void ForkJoinBackend::runDynamic(size_t Begin, size_t End, RangeBody Body) {
  size_t N = End - Begin;
  size_t Chunk = Sched.resolvedChunk(N, Threads);
  std::atomic<size_t> Next(0);

  auto Work = [&Next, N, Chunk, Begin, Body] {
    ParallelRegionGuard Guard;
    while (true) {
      size_t ChunkBegin = Next.fetch_add(Chunk, std::memory_order_relaxed);
      if (ChunkBegin >= N)
        return;
      size_t ChunkEnd = ChunkBegin + Chunk < N ? ChunkBegin + Chunk : N;
      Body(Begin + ChunkBegin, Begin + ChunkEnd);
    }
  };

  std::vector<std::thread> Team;
  Team.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W)
    Team.emplace_back(Work);
  Work();
  for (std::thread &T : Team)
    T.join();
}
