//===- runtime/Runtime.cpp - Backend selection and creation --------------===//

#include "runtime/Runtime.h"

#include "runtime/ForkJoinBackend.h"
#include "runtime/OmpBackend.h"
#include "runtime/SerialBackend.h"
#include "runtime/SpinBarrierPool.h"
#include "runtime/TaskBackend.h"
#include "support/Error.h"
#include "support/StrUtil.h"

using namespace sacfd;

const char *sacfd::backendKindName(BackendKind Kind) {
  switch (Kind) {
  case BackendKind::Serial:
    return "serial";
  case BackendKind::SpinPool:
    return "spin-pool";
  case BackendKind::ForkJoin:
    return "fork-join";
  case BackendKind::OpenMp:
    return "openmp";
  case BackendKind::Tasks:
    return "tasks";
  }
  sacfdUnreachable("covered switch");
}

std::optional<BackendKind> sacfd::parseBackendKind(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "serial"))
    return BackendKind::Serial;
  if (equalsLower(Name, "spin-pool") || equalsLower(Name, "spinpool") ||
      equalsLower(Name, "sac"))
    return BackendKind::SpinPool;
  if (equalsLower(Name, "fork-join") || equalsLower(Name, "forkjoin") ||
      equalsLower(Name, "fortran"))
    return BackendKind::ForkJoin;
  if (equalsLower(Name, "openmp") || equalsLower(Name, "omp"))
    return BackendKind::OpenMp;
  if (equalsLower(Name, "tasks") || equalsLower(Name, "task"))
    return BackendKind::Tasks;
  return std::nullopt;
}

std::unique_ptr<Backend> sacfd::createBackend(BackendKind Kind,
                                              unsigned Threads,
                                              Schedule Sched,
                                              const Tile &TileCfg) {
  std::unique_ptr<Backend> B;
  switch (Kind) {
  case BackendKind::Serial:
    B = std::make_unique<SerialBackend>();
    break;
  case BackendKind::SpinPool:
    B = std::make_unique<SpinBarrierPool>(Threads);
    break;
  case BackendKind::ForkJoin:
    B = std::make_unique<ForkJoinBackend>(Threads, Sched);
    break;
  case BackendKind::OpenMp:
    B = createOmpBackend(Threads);
    break;
  case BackendKind::Tasks:
    B = std::make_unique<TaskBackend>(Threads, Sched);
    break;
  }
  if (B)
    B->setTile(TileCfg);
  return B;
}
