//===- runtime/Spin.h - Bounded spin-then-yield waiting ---------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one spin-wait idiom used across the runtime: busy-poll a bounded
/// number of iterations, then fall back to yield() so an oversubscribed
/// host (more waiters than hardware threads) cannot starve the very
/// thread being waited on.  SpinBarrierPool documents the rationale;
/// the shard mailboxes reuse the same discipline for their inter-process
/// seqlock waits.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_SPIN_H
#define SACFD_RUNTIME_SPIN_H

#include <thread>

namespace sacfd {

/// Spins until \p Done() is true: \p SpinLimit busy iterations, then one
/// yield() per iteration (0 yields immediately — fully cooperative).
template <typename Pred>
void spinThenYieldUntil(Pred &&Done, unsigned SpinLimit = 1u << 14) {
  unsigned Spins = 0;
  while (!Done()) {
    if (Spins < SpinLimit)
      ++Spins;
    else
      std::this_thread::yield();
  }
}

} // namespace sacfd

#endif // SACFD_RUNTIME_SPIN_H
