//===- runtime/SerialBackend.cpp - Single-threaded reference -------------===//

#include "runtime/SerialBackend.h"

#include "runtime/ParallelRegion.h"

using namespace sacfd;

void SerialBackend::parallelFor(size_t Begin, size_t End, RangeBody Body) {
  if (Begin >= End)
    return;
  if (inParallelRegion()) {
    Body(Begin, End);
    return;
  }
  countRegion();
  static const unsigned Region = telemetry::spanId("region.serial");
  telemetry::ScopedSpan Span(Region);
  ParallelRegionGuard Guard;
  Body(Begin, End);
}

void SerialBackend::parallelFor2D(size_t Rows, size_t Cols, RangeBody2D Body) {
  if (Rows == 0 || Cols == 0)
    return;
  if (!tile().Enabled) {
    Backend::parallelFor2D(Rows, Cols, Body);
    return;
  }
  if (inParallelRegion()) {
    Body(0, Rows, 0, Cols);
    return;
  }
  countRegion();
  static const unsigned Region = telemetry::spanId("region.serial");
  telemetry::ScopedSpan Span(Region);
  ParallelRegionGuard Guard;
  TileGrid G(Rows, Cols, tile());
  for (size_t T = 0, E = G.count(); T < E; ++T) {
    TileRect R = G.rect(T);
    Body(R.RowBegin, R.RowEnd, R.ColBegin, R.ColEnd);
  }
}
