//===- runtime/SerialBackend.cpp - Single-threaded reference -------------===//

#include "runtime/SerialBackend.h"

#include "runtime/ParallelRegion.h"

using namespace sacfd;

void SerialBackend::parallelFor(size_t Begin, size_t End, RangeBody Body) {
  if (Begin >= End)
    return;
  if (inParallelRegion()) {
    Body(Begin, End);
    return;
  }
  countRegion();
  static const unsigned Region = telemetry::spanId("region.serial");
  telemetry::ScopedSpan Span(Region);
  ParallelRegionGuard Guard;
  Body(Begin, End);
}
