//===- runtime/SpinBarrierPool.cpp - Persistent spin-sync pool -----------===//

#include "runtime/SpinBarrierPool.h"

#include "runtime/ParallelRegion.h"
#include "support/Env.h"

#include <cassert>

using namespace sacfd;

/// Hint to the CPU that we are in a busy-wait loop.
static inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

SpinBarrierPool::SpinBarrierPool(unsigned Threads, unsigned SpinLimit)
    : Threads(Threads), SpinLimit(SpinLimit) {
  assert(Threads >= 1 && "pool needs at least the calling thread");
  // Oversubscription adaptation: spinning on a shared core starves the
  // thread being waited on.  Only applies to the default limit so tests
  // and ablations can still force pure-spin behavior explicitly.
  // defaultWorkerCount() clamps an unknown core count to 1, which makes
  // any multi-worker pool go cooperative there — the safe direction.
  if (SpinLimit == DefaultSpinLimit && Threads > defaultWorkerCount())
    this->SpinLimit = 0;
  if (Threads == 1)
    return;
  Done = std::make_unique<DoneFlag[]>(Threads - 1);
  Workers.reserve(Threads - 1);
  for (unsigned W = 1; W < Threads; ++W)
    Workers.emplace_back([this, W] { workerMain(W); });
}

SpinBarrierPool::~SpinBarrierPool() {
  if (Workers.empty())
    return;
  Stopping.store(true, std::memory_order_release);
  for (std::thread &T : Workers)
    T.join();
}

template <typename Pred> void SpinBarrierPool::spinUntil(Pred &&IsDone) const {
  unsigned Spins = 0;
  while (!IsDone()) {
    if (Spins < SpinLimit) {
      ++Spins;
      cpuRelax();
    } else {
      // Oversubscription fallback: give the core away so the thread that
      // owns the work we are waiting for can run.
      std::this_thread::yield();
    }
  }
}

void SpinBarrierPool::runShare(unsigned WorkerIndex, size_t Begin, size_t End,
                               RangeBody Body) const {
  // Static block partition, identical to Schedule::StaticBlock: sizes
  // differ by at most one iteration, every worker computes its own share
  // without touching shared state.
  size_t N = End - Begin;
  size_t Base = N / Threads;
  size_t Extra = N % Threads;
  size_t MyBegin = Begin + WorkerIndex * Base +
                   (WorkerIndex < Extra ? WorkerIndex : Extra);
  size_t MyLen = Base + (WorkerIndex < Extra ? 1 : 0);
  if (MyLen == 0)
    return;
  Body(MyBegin, MyBegin + MyLen);
}

void SpinBarrierPool::workerMain(unsigned WorkerIndex) {
  uint64_t SeenSeq = 0;
  while (true) {
    spinUntil([this, SeenSeq] {
      return JobSeq.load(std::memory_order_acquire) != SeenSeq ||
             Stopping.load(std::memory_order_acquire);
    });
    uint64_t NewSeq = JobSeq.load(std::memory_order_acquire);
    if (NewSeq == SeenSeq) {
      assert(Stopping.load(std::memory_order_acquire) && "spurious wakeup");
      return;
    }
    SeenSeq = NewSeq;
    {
      ParallelRegionGuard Guard;
      runShare(WorkerIndex, JobBegin, JobEnd, Job);
    }
    Done[WorkerIndex - 1].Seq.store(SeenSeq, std::memory_order_release);
  }
}

void SpinBarrierPool::parallelFor(size_t Begin, size_t End, RangeBody Body) {
  if (Begin >= End)
    return;
  if (inParallelRegion()) {
    Body(Begin, End);
    return;
  }
  countRegion();
  // Covers broadcast, master share and the spin barrier — the persistent
  // pool's whole per-region cost.
  static const unsigned Region = telemetry::spanId("region.spin_pool");
  telemetry::ScopedSpan Span(Region);
  if (Threads == 1) {
    ParallelRegionGuard Guard;
    Body(Begin, End);
    return;
  }

  // Publish the job.  The previous dispatch fully completed before
  // parallelFor returned, so the slot is quiescent here.
  Job = Body;
  JobBegin = Begin;
  JobEnd = End;
  uint64_t Seq = JobSeq.load(std::memory_order_relaxed) + 1;
  JobSeq.store(Seq, std::memory_order_release);

  // The master is worker 0.
  {
    ParallelRegionGuard Guard;
    runShare(0, Begin, End, Body);
  }

  // Barrier: wait for every helper to check in for this sequence number.
  for (unsigned W = 1; W < Threads; ++W)
    spinUntil([this, W, Seq] {
      return Done[W - 1].Seq.load(std::memory_order_acquire) == Seq;
    });
}

void SpinBarrierPool::parallelFor2D(size_t Rows, size_t Cols,
                                    RangeBody2D Body) {
  if (Rows == 0 || Cols == 0)
    return;
  if (!tile().Enabled || inParallelRegion()) {
    Backend::parallelFor2D(Rows, Cols, Body);
    return;
  }
  // Tiles go through the pool's broadcast slot as a 1D tile range, so one
  // dispatch (two shared-memory round trips) covers the whole 2D space.
  runTileGrid(TileGrid(Rows, Cols, tile()), tile().Dealing, Body);
}
