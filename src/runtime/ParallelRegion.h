//===- runtime/ParallelRegion.h - Nested-region detection ------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thread-local tracking of "am I inside a parallel region?".
///
/// Backends use this to serialize nested parallelFor calls: a with-loop
/// body that itself evaluates an array expression must not recursively
/// spawn or re-enter the worker pool.  This mirrors the paper's setup,
/// where only one level of parallelism is active (OMP_NESTED merely being
/// set to TRUE did not change behavior on their workload).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_RUNTIME_PARALLELREGION_H
#define SACFD_RUNTIME_PARALLELREGION_H

namespace sacfd {

/// \returns true when the calling thread is executing inside a
/// Backend::parallelFor body.
bool inParallelRegion();

/// RAII marker: the current thread is executing a parallel-region body.
class ParallelRegionGuard {
public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();

  ParallelRegionGuard(const ParallelRegionGuard &) = delete;
  ParallelRegionGuard &operator=(const ParallelRegionGuard &) = delete;
};

} // namespace sacfd

#endif // SACFD_RUNTIME_PARALLELREGION_H
