//===- numerics/RiemannSolvers.cpp - Approximate Riemann solvers ---------===//

#include "numerics/RiemannSolvers.h"

#include "support/StrUtil.h"

using namespace sacfd;

const char *sacfd::riemannKindName(RiemannKind Kind) {
  switch (Kind) {
  case RiemannKind::Rusanov:
    return "rusanov";
  case RiemannKind::Hll:
    return "hll";
  case RiemannKind::Hllc:
    return "hllc";
  case RiemannKind::Roe:
    return "roe";
  }
  return "unknown";
}

std::optional<RiemannKind> sacfd::parseRiemannKind(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "rusanov") || equalsLower(Name, "llf") ||
      equalsLower(Name, "lax-friedrichs"))
    return RiemannKind::Rusanov;
  if (equalsLower(Name, "hll"))
    return RiemannKind::Hll;
  if (equalsLower(Name, "hllc"))
    return RiemannKind::Hllc;
  if (equalsLower(Name, "roe"))
    return RiemannKind::Roe;
  return std::nullopt;
}
