//===- numerics/TimeIntegrators.h - SSP Runge-Kutta schemes ----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 3 of the Godunov pipeline: "For time advancement the 2nd or 3rd
/// order TVD Runge-Kutta schemes are used."  (The Fig. 4 benchmark uses
/// the 3rd-order method.)
///
/// The TVD (strong-stability-preserving) Runge-Kutta methods of Shu &
/// Osher are convex combinations of forward-Euler steps:
///
///   u^(i) = A_i u^n + B_i ( u^(i-1) + dt L(u^(i-1)) )
///
/// so an integrator is fully described by its (A_i, B_i) stage table.
/// The solver drives the stages itself (each stage is one residual
/// evaluation plus one fused array update); this header owns the tables
/// and a generic driver for anything with the vector-space operations.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_NUMERICS_TIMEINTEGRATORS_H
#define SACFD_NUMERICS_TIMEINTEGRATORS_H

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>

namespace sacfd {

/// Time integrator menu.
enum class TimeIntegratorKind {
  ForwardEuler, ///< 1st order (testing/ablation)
  SspRk2,       ///< the paper's 2nd-order TVD RK
  SspRk3,       ///< the paper's 3rd-order TVD RK (benchmark setting)
};

/// \returns the stable CLI/report name of \p Kind.
const char *timeIntegratorKindName(TimeIntegratorKind Kind);

/// Parses "euler"/"rk1", "rk2", "rk3".
std::optional<TimeIntegratorKind> parseTimeIntegratorKind(
    std::string_view Text);

/// One Shu-Osher stage: u^(i) = PrevWeight u^n + StageWeight (u^(i-1) +
/// dt L(u^(i-1))).
struct SspStage {
  double PrevWeight;  ///< A_i, weight of u^n
  double StageWeight; ///< B_i, weight of the Euler-advanced stage value
};

/// Stage table of \p Kind (1, 2 or 3 stages).
std::span<const SspStage> sspStages(TimeIntegratorKind Kind);

/// Formal order of accuracy (== number of stages for these schemes).
unsigned timeIntegratorOrder(TimeIntegratorKind Kind);

/// Generic stage driver for any state with axpby-style operations.
///
/// \param U in: u^n, out: u^{n+1}.
/// \param Rhs callable: Rhs(State) -> State evaluating L.
/// \param Combine callable: Combine(A, Un, B, Stage, Dt, L) -> State
///        computing A*Un + B*(Stage + Dt*L); lets array-based states fuse
///        the update into one pass.
template <typename State, typename RhsFn, typename CombineFn>
void advanceSsp(TimeIntegratorKind Kind, State &U, double Dt, RhsFn &&Rhs,
                CombineFn &&Combine) {
  State Un = U;
  for (const SspStage &Stage : sspStages(Kind)) {
    State L = Rhs(U);
    U = Combine(Stage.PrevWeight, Un, Stage.StageWeight, U, Dt, L);
  }
}

/// Buffer-reusing stage driver: the zero-allocation form of advanceSsp.
///
/// All scratch states are caller-provided (pool leases, preallocated
/// arrays), so repeated calls perform no allocations of their own.
/// Produces exactly the same stage sequence as advanceSsp.
///
/// \param Un scratch for the u^n snapshot; overwritten by copy-assignment
///        from \p U (which reuses its storage once the shapes match).
/// \param L scratch for the stage residual.
/// \param RhsInto callable: RhsInto(U, L) writes L(U) into \p L.
/// \param CombineInto callable: CombineInto(A, Un, B, U, Dt, L) updates
///        \p U to A*Un + B*(U + Dt*L) in place.
template <typename State, typename RhsIntoFn, typename CombineIntoFn>
void advanceSspInto(TimeIntegratorKind Kind, State &U, double Dt, State &Un,
                    State &L, RhsIntoFn &&RhsInto,
                    CombineIntoFn &&CombineInto) {
  Un = U;
  for (const SspStage &Stage : sspStages(Kind)) {
    RhsInto(U, L);
    CombineInto(Stage.PrevWeight, Un, Stage.StageWeight, U, Dt, L);
  }
}

} // namespace sacfd

#endif // SACFD_NUMERICS_TIMEINTEGRATORS_H
