//===- numerics/Reconstruction.cpp - Face-value reconstruction ------------===//

#include "numerics/Reconstruction.h"

#include "support/StrUtil.h"

#include <cmath>

using namespace sacfd;

const char *sacfd::reconstructionKindName(ReconstructionKind Kind) {
  switch (Kind) {
  case ReconstructionKind::PiecewiseConstant:
    return "pc1";
  case ReconstructionKind::Tvd2:
    return "tvd2";
  case ReconstructionKind::Tvd3:
    return "tvd3";
  case ReconstructionKind::Weno3:
    return "weno3";
  case ReconstructionKind::Weno5:
    return "weno5";
  }
  return "unknown";
}

std::optional<ReconstructionKind>
sacfd::parseReconstructionKind(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "pc1") || equalsLower(Name, "pc") ||
      equalsLower(Name, "constant"))
    return ReconstructionKind::PiecewiseConstant;
  if (equalsLower(Name, "tvd2") || equalsLower(Name, "muscl"))
    return ReconstructionKind::Tvd2;
  if (equalsLower(Name, "tvd3"))
    return ReconstructionKind::Tvd3;
  if (equalsLower(Name, "weno3") || equalsLower(Name, "weno"))
    return ReconstructionKind::Weno3;
  if (equalsLower(Name, "weno5"))
    return ReconstructionKind::Weno5;
  return std::nullopt;
}

const char *sacfd::limiterKindName(LimiterKind Kind) {
  switch (Kind) {
  case LimiterKind::MinMod:
    return "minmod";
  case LimiterKind::Superbee:
    return "superbee";
  case LimiterKind::VanLeer:
    return "vanleer";
  case LimiterKind::Mc:
    return "mc";
  }
  return "unknown";
}

std::optional<LimiterKind> sacfd::parseLimiterKind(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "minmod"))
    return LimiterKind::MinMod;
  if (equalsLower(Name, "superbee"))
    return LimiterKind::Superbee;
  if (equalsLower(Name, "vanleer") || equalsLower(Name, "van-leer"))
    return LimiterKind::VanLeer;
  if (equalsLower(Name, "mc"))
    return LimiterKind::Mc;
  return std::nullopt;
}

/// One-sided 3rd-order WENO reconstruction toward the right face of the
/// middle cell, from the ordered window (Um, U0, Up) = (upwind, cell,
/// downwind).
static double weno3Biased(double Um, double U0, double Up) {
  // Candidate polynomials evaluated at the face.
  double P0 = -0.5 * Um + 1.5 * U0; // stencil {i-1, i}
  double P1 = 0.5 * U0 + 0.5 * Up;  // stencil {i, i+1}
  // Smoothness indicators and ideal weights (d0 = 1/3, d1 = 2/3).
  double B0 = (U0 - Um) * (U0 - Um);
  double B1 = (Up - U0) * (Up - U0);
  constexpr double Eps = 1e-6;
  double A0 = (1.0 / 3.0) / ((Eps + B0) * (Eps + B0));
  double A1 = (2.0 / 3.0) / ((Eps + B1) * (Eps + B1));
  return (A0 * P0 + A1 * P1) / (A0 + A1);
}

/// One-sided 5th-order WENO reconstruction toward the right face of the
/// middle cell, from the ordered 5-cell window (A, B, C, D, E) =
/// (i-2, i-1, i, i+1, i+2) in upwind orientation (Jiang & Shu weights).
static double weno5Biased(double A, double B, double C, double D, double E) {
  double P0 = (2.0 * A - 7.0 * B + 11.0 * C) / 6.0;
  double P1 = (-B + 5.0 * C + 2.0 * D) / 6.0;
  double P2 = (2.0 * C + 5.0 * D - E) / 6.0;

  double B0 = (13.0 / 12.0) * (A - 2.0 * B + C) * (A - 2.0 * B + C) +
              0.25 * (A - 4.0 * B + 3.0 * C) * (A - 4.0 * B + 3.0 * C);
  double B1 = (13.0 / 12.0) * (B - 2.0 * C + D) * (B - 2.0 * C + D) +
              0.25 * (B - D) * (B - D);
  double B2 = (13.0 / 12.0) * (C - 2.0 * D + E) * (C - 2.0 * D + E) +
              0.25 * (3.0 * C - 4.0 * D + E) * (3.0 * C - 4.0 * D + E);

  constexpr double Eps = 1e-6;
  double A0 = 0.1 / ((Eps + B0) * (Eps + B0));
  double A1 = 0.6 / ((Eps + B1) * (Eps + B1));
  double A2 = 0.3 / ((Eps + B2) * (Eps + B2));
  return (A0 * P0 + A1 * P1 + A2 * P2) / (A0 + A1 + A2);
}

/// kappa = 1/3 limited reconstruction toward the right face of the middle
/// cell; DM/DP are its backward/forward differences.
static double tvd3Biased(double U0, double DM, double DP,
                         LimiterKind Limiter) {
  // Third-order interpolation q + (2 dp + dm)/6, limited so each
  // difference contribution stays within the TVD bounds (b = 4 for
  // kappa = 1/3; narrower limiters simply substitute their own slope).
  if (Limiter == LimiterKind::MinMod) {
    constexpr double B = 4.0;
    double DmT = minmod(DM, B * DP);
    double DpT = minmod(DP, B * DM);
    return U0 + (2.0 * DpT + DmT) / 6.0;
  }
  double DmT = limitedSlope(Limiter, DM, DP);
  double DpT = limitedSlope(Limiter, DP, DM);
  return U0 + (2.0 * DpT + DmT) / 6.0;
}

FaceScalars sacfd::reconstructFace(ReconstructionKind Kind,
                                   LimiterKind Limiter,
                                   const std::array<double, 6> &W) {
  FaceScalars Out;
  switch (Kind) {
  case ReconstructionKind::PiecewiseConstant:
    Out.L = W[2];
    Out.R = W[3];
    return Out;

  case ReconstructionKind::Tvd2: {
    // MUSCL: cell i extrapolates forward, cell i+1 backward.
    double SlopeL = limitedSlope(Limiter, W[2] - W[1], W[3] - W[2]);
    double SlopeR = limitedSlope(Limiter, W[3] - W[2], W[4] - W[3]);
    Out.L = W[2] + 0.5 * SlopeL;
    Out.R = W[3] - 0.5 * SlopeR;
    return Out;
  }

  case ReconstructionKind::Tvd3: {
    Out.L = tvd3Biased(W[2], W[2] - W[1], W[3] - W[2], Limiter);
    // Mirror for the right cell: its "forward" direction points left.
    Out.R = tvd3Biased(W[3], W[3] - W[4], W[2] - W[3], Limiter);
    return Out;
  }

  case ReconstructionKind::Weno3:
    Out.L = weno3Biased(W[1], W[2], W[3]);
    Out.R = weno3Biased(W[4], W[3], W[2]);
    return Out;

  case ReconstructionKind::Weno5:
    Out.L = weno5Biased(W[0], W[1], W[2], W[3], W[4]);
    Out.R = weno5Biased(W[5], W[4], W[3], W[2], W[1]);
    return Out;
  }
  Out.L = W[2];
  Out.R = W[3];
  return Out;
}
