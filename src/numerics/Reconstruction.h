//===- numerics/Reconstruction.h - Face-value reconstruction ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 1 of the Godunov pipeline: "reconstruction (in each cell) of the
/// flow variables on the cell faces from cell-averaged variables".
///
/// Four schemes, matching the paper's menu:
///   PC1   1st-order piecewise constant (used in the Fig. 4 benchmark)
///   TVD2  2nd-order MUSCL with a selectable slope limiter
///   TVD3  3rd-order (kappa = 1/3) limited reconstruction
///   WENO3 3rd-order weighted essentially non-oscillatory (used for the
///         flow-field figures)
///
/// The scalar kernel reconstructFace() works on a 6-value window of one
/// characteristic component centered on a face; the characteristic
/// projection around it lives in reconstructFaceStates().
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_NUMERICS_RECONSTRUCTION_H
#define SACFD_NUMERICS_RECONSTRUCTION_H

#include "euler/Characteristics.h"
#include "euler/State.h"
#include "numerics/Limiters.h"

#include <array>
#include <cassert>
#include <optional>
#include <string_view>

namespace sacfd {

/// Reconstruction scheme menu.
enum class ReconstructionKind {
  PiecewiseConstant, ///< 1st order (paper's speed benchmark)
  Tvd2,              ///< 2nd-order TVD MUSCL
  Tvd3,              ///< 3rd-order TVD (kappa = 1/3)
  Weno3,             ///< 3rd-order WENO (paper's flow figures)
  Weno5,             ///< 5th-order WENO (extension beyond the paper)
};

/// \returns the stable CLI/report name of \p Kind.
const char *reconstructionKindName(ReconstructionKind Kind);

/// Parses "pc1", "tvd2", "tvd3", "weno3".
std::optional<ReconstructionKind> parseReconstructionKind(
    std::string_view Text);

/// Ghost-cell layers a scheme needs on each side of the domain.
constexpr unsigned ghostCells(ReconstructionKind Kind) {
  switch (Kind) {
  case ReconstructionKind::PiecewiseConstant:
    return 1;
  case ReconstructionKind::Tvd2:
  case ReconstructionKind::Tvd3:
  case ReconstructionKind::Weno3:
    return 2;
  case ReconstructionKind::Weno5:
    return 3;
  }
  return 3;
}

/// Variables the stencil is reconstructed in.
enum class ReconstructVariables {
  Characteristic, ///< the paper's choice (Section 3)
  Primitive,      ///< ablation alternative
};

/// Left/right states at one face.
struct FaceScalars {
  double L;
  double R;
};

/// Reconstructs one scalar component at the face between window cells 2
/// and 3.
///
/// \param W a 6-value window [i-2, i-1, i, i+1, i+2, i+3] of cell
/// averages; the face sits between W[2] and W[3].  PC1 reads W[2]/W[3]
/// only; the higher-order schemes read the full window.
FaceScalars reconstructFace(ReconstructionKind Kind, LimiterKind Limiter,
                            const std::array<double, 6> &W);

/// Reconstructs the conservative left/right states at a face from a
/// 6-cell conservative stencil, projecting through the characteristic
/// basis of the face (or reconstructing raw components in Primitive
/// mode's sense — component space — for the ablation).
template <unsigned Dim> struct FaceStates {
  Cons<Dim> L;
  Cons<Dim> R;
};

template <unsigned Dim>
FaceStates<Dim>
reconstructFaceStates(ReconstructionKind Kind, LimiterKind Limiter,
                      ReconstructVariables Vars,
                      const std::array<Cons<Dim>, 6> &Stencil, const Gas &G,
                      unsigned Axis) {
  constexpr unsigned N = NumVars<Dim>;
  FaceStates<Dim> Out;

  if (Kind == ReconstructionKind::PiecewiseConstant) {
    // No projection needed: the face states are the adjacent averages.
    Out.L = Stencil[2];
    Out.R = Stencil[3];
    return Out;
  }

  if (Vars == ReconstructVariables::Characteristic) {
    // Local characteristic projection at the face (Section 3 of the
    // paper): eigensystem from the Roe average of the face neighbors.
    Prim<Dim> Wl = toPrim(Stencil[2], G);
    Prim<Dim> Wr = toPrim(Stencil[3], G);
    EigenSystem<Dim> ES(roeAverage(Wl, Wr, G), G, Axis);

    std::array<typename EigenSystem<Dim>::Vector, 6> CharWindow;
    for (unsigned Cell = 0; Cell < 6; ++Cell)
      CharWindow[Cell] = ES.toCharacteristic(Stencil[Cell]);

    typename EigenSystem<Dim>::Vector CharL, CharR;
    for (unsigned K = 0; K < N; ++K) {
      std::array<double, 6> W;
      for (unsigned Cell = 0; Cell < 6; ++Cell)
        W[Cell] = CharWindow[Cell][K];
      FaceScalars F = reconstructFace(Kind, Limiter, W);
      CharL[K] = F.L;
      CharR[K] = F.R;
    }
    Out.L = ES.fromCharacteristic(CharL);
    Out.R = ES.fromCharacteristic(CharR);
    return Out;
  }

  // Primitive-variable mode: reconstruct rho, u..., p component-wise.
  std::array<Prim<Dim>, 6> PrimStencil;
  for (unsigned Cell = 0; Cell < 6; ++Cell)
    PrimStencil[Cell] = toPrim(Stencil[Cell], G);

  Prim<Dim> WL, WR;
  for (unsigned K = 0; K < N; ++K) {
    std::array<double, 6> W;
    for (unsigned Cell = 0; Cell < 6; ++Cell)
      W[Cell] = PrimStencil[Cell].comp(K);
    FaceScalars F = reconstructFace(Kind, Limiter, W);
    WL.setComp(K, F.L);
    WR.setComp(K, F.R);
  }
  // Positivity guard: fall back to first order on a bad reconstruction.
  if (WL.Rho <= 0.0 || WL.P <= 0.0)
    WL = PrimStencil[2];
  if (WR.Rho <= 0.0 || WR.P <= 0.0)
    WR = PrimStencil[3];
  Out.L = toCons(WL, G);
  Out.R = toCons(WR, G);
  return Out;
}

} // namespace sacfd

#endif // SACFD_NUMERICS_RECONSTRUCTION_H
