//===- numerics/RiemannSolvers.h - Approximate Riemann solvers -*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stage 2 of the Godunov pipeline: "evaluation of the numerical fluxes
/// through the cell boundaries ... by approximately solving the Riemann
/// problems between two states on the 'left' and 'right' sides of the
/// cell boundaries".  The paper's code "includes a few options for the
/// approximate Riemann solver"; this menu provides the four standard
/// ones, ordered by increasing resolution:
///
///   Rusanov  local Lax-Friedrichs: one dissipative wave speed
///   HLL      two-wave fan average (contact smeared)
///   HLLC     HLL with restored contact/shear wave
///   Roe      full linearized wave decomposition + Harten entropy fix
///
/// Every solver is consistent (F(q, q) = f(q)) and rotation-covariant via
/// the Axis parameter.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_NUMERICS_RIEMANNSOLVERS_H
#define SACFD_NUMERICS_RIEMANNSOLVERS_H

#include "euler/Characteristics.h"
#include "euler/Flux.h"
#include "euler/State.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <string_view>

namespace sacfd {

/// Approximate Riemann solver menu.
enum class RiemannKind {
  Rusanov,
  Hll,
  Hllc,
  Roe,
};

/// \returns the stable CLI/report name of \p Kind.
const char *riemannKindName(RiemannKind Kind);

/// Parses "rusanov"/"llf", "hll", "hllc", "roe".
std::optional<RiemannKind> parseRiemannKind(std::string_view Text);

namespace detail {

/// Einfeldt-style wave speed estimates from the Roe average.
template <unsigned Dim> struct WaveSpeeds {
  double SL;
  double SR;
};

template <unsigned Dim>
WaveSpeeds<Dim> einfeldtSpeeds(const Prim<Dim> &Wl, const Prim<Dim> &Wr,
                               const Gas &G, unsigned Axis) {
  FaceAverage<Dim> Roe = roeAverage(Wl, Wr, G);
  double Cl = G.soundSpeed(Wl.Rho, Wl.P);
  double Cr = G.soundSpeed(Wr.Rho, Wr.P);
  WaveSpeeds<Dim> S;
  S.SL = std::min(Wl.Vel[Axis] - Cl, Roe.Vel[Axis] - Roe.C);
  S.SR = std::max(Wr.Vel[Axis] + Cr, Roe.Vel[Axis] + Roe.C);
  return S;
}

} // namespace detail

/// Rusanov (local Lax-Friedrichs) flux:
/// F = (F_L + F_R)/2 - smax (Q_R - Q_L)/2.
template <unsigned Dim>
Cons<Dim> rusanovFlux(const Cons<Dim> &Ql, const Cons<Dim> &Qr, const Gas &G,
                      unsigned Axis) {
  Prim<Dim> Wl = toPrim(Ql, G);
  Prim<Dim> Wr = toPrim(Qr, G);
  double Smax =
      std::max(maxWaveSpeed(Wl, G, Axis), maxWaveSpeed(Wr, G, Axis));
  Cons<Dim> Fl = physicalFlux(Wl, G, Axis);
  Cons<Dim> Fr = physicalFlux(Wr, G, Axis);
  return (Fl + Fr) * 0.5 - (Qr - Ql) * (0.5 * Smax);
}

/// HLL flux: two-wave average between Einfeldt speed estimates.
template <unsigned Dim>
Cons<Dim> hllFlux(const Cons<Dim> &Ql, const Cons<Dim> &Qr, const Gas &G,
                  unsigned Axis) {
  Prim<Dim> Wl = toPrim(Ql, G);
  Prim<Dim> Wr = toPrim(Qr, G);
  auto [SL, SR] = detail::einfeldtSpeeds(Wl, Wr, G, Axis);
  Cons<Dim> Fl = physicalFlux(Wl, G, Axis);
  if (SL >= 0.0)
    return Fl;
  Cons<Dim> Fr = physicalFlux(Wr, G, Axis);
  if (SR <= 0.0)
    return Fr;
  return (Fl * SR - Fr * SL + (Qr - Ql) * (SL * SR)) / (SR - SL);
}

/// HLLC flux: HLL with the contact/shear wave restored (Toro 10.4).
template <unsigned Dim>
Cons<Dim> hllcFlux(const Cons<Dim> &Ql, const Cons<Dim> &Qr, const Gas &G,
                   unsigned Axis) {
  Prim<Dim> Wl = toPrim(Ql, G);
  Prim<Dim> Wr = toPrim(Qr, G);
  auto [SL, SR] = detail::einfeldtSpeeds(Wl, Wr, G, Axis);

  Cons<Dim> Fl = physicalFlux(Wl, G, Axis);
  if (SL >= 0.0)
    return Fl;
  Cons<Dim> Fr = physicalFlux(Wr, G, Axis);
  if (SR <= 0.0)
    return Fr;

  double Ul = Wl.Vel[Axis], Ur = Wr.Vel[Axis];
  double Ml = Wl.Rho * (SL - Ul); // mass flux factors
  double Mr = Wr.Rho * (SR - Ur);
  double SStar = (Wr.P - Wl.P + Ml * Ul - Mr * Ur) / (Ml - Mr);

  auto starState = [&](const Prim<Dim> &W, const Cons<Dim> &Q, double S,
                       double U) {
    double Factor = W.Rho * (S - U) / (S - SStar);
    Cons<Dim> QStar;
    QStar.Rho = Factor;
    for (unsigned D = 0; D < Dim; ++D)
      QStar.Mom[D] = Factor * W.Vel[D];
    QStar.Mom[Axis] = Factor * SStar;
    double EOverRho = Q.E / W.Rho +
                      (SStar - U) * (SStar + W.P / (W.Rho * (S - U)));
    QStar.E = Factor * EOverRho;
    return QStar;
  };

  if (SStar >= 0.0) {
    Cons<Dim> QlStar = starState(Wl, Ql, SL, Ul);
    return Fl + (QlStar - Ql) * SL;
  }
  Cons<Dim> QrStar = starState(Wr, Qr, SR, Ur);
  return Fr + (QrStar - Qr) * SR;
}

/// Roe flux with Harten's entropy fix on the acoustic fields:
/// F = (F_L + F_R)/2 - sum_k |lambda_k| alpha_k r_k / 2.
template <unsigned Dim>
Cons<Dim> roeFlux(const Cons<Dim> &Ql, const Cons<Dim> &Qr, const Gas &G,
                  unsigned Axis) {
  constexpr unsigned N = NumVars<Dim>;
  Prim<Dim> Wl = toPrim(Ql, G);
  Prim<Dim> Wr = toPrim(Qr, G);
  FaceAverage<Dim> Avg = roeAverage(Wl, Wr, G);
  EigenSystem<Dim> ES(Avg, G, Axis);

  auto Alpha = ES.toCharacteristic(Qr - Ql);
  Cons<Dim> Fl = physicalFlux(Wl, G, Axis);
  Cons<Dim> Fr = physicalFlux(Wr, G, Axis);

  Cons<Dim> Dissipation; // zero-initialized
  // Harten's entropy fix threshold scaled by the face sound speed.
  double Delta = 0.1 * Avg.C;
  for (unsigned K = 0; K < N; ++K) {
    double Lambda = ES.lambda(K);
    double AbsLambda = std::fabs(Lambda);
    bool Acoustic = (K == 0) || (K == N - 1);
    if (Acoustic && AbsLambda < Delta)
      AbsLambda = 0.5 * (Lambda * Lambda / Delta + Delta);
    Dissipation += ES.rightVector(K) * (AbsLambda * Alpha[K]);
  }
  return (Fl + Fr) * 0.5 - Dissipation * 0.5;
}

/// Dispatches to the selected solver.
template <unsigned Dim>
Cons<Dim> numericalFlux(RiemannKind Kind, const Cons<Dim> &Ql,
                        const Cons<Dim> &Qr, const Gas &G, unsigned Axis) {
  switch (Kind) {
  case RiemannKind::Rusanov:
    return rusanovFlux(Ql, Qr, G, Axis);
  case RiemannKind::Hll:
    return hllFlux(Ql, Qr, G, Axis);
  case RiemannKind::Hllc:
    return hllcFlux(Ql, Qr, G, Axis);
  case RiemannKind::Roe:
    return roeFlux(Ql, Qr, G, Axis);
  }
  return rusanovFlux(Ql, Qr, G, Axis);
}

} // namespace sacfd

#endif // SACFD_NUMERICS_RIEMANNSOLVERS_H
