//===- numerics/Limiters.h - TVD slope limiters ----------------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Slope limiters for the TVD reconstructions.
///
/// Section 3: "the TVD (Total Variation Diminishing) reconstructions of
/// the 2nd and 3rd orders with various slope limiters".  A limiter
/// phi(a, b) combines the backward and forward differences of a cell into
/// a slope that vanishes at extrema (keeping the scheme TVD) and recovers
/// an unlimited slope in smooth monotone regions.
///
/// All limiters here satisfy, for every a, b:
///   - phi(a, b) = 0 when a b <= 0                      (extremum clipping)
///   - phi(a, b) = phi(b, a)                            (symmetry)
///   - phi(s a, s b) = s phi(a, b) for s > 0            (scaling)
///   - minmod(a,b) <= phi(a,b) <= superbee(a,b) in magnitude
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_NUMERICS_LIMITERS_H
#define SACFD_NUMERICS_LIMITERS_H

#include <algorithm>
#include <cmath>
#include <optional>
#include <string_view>

namespace sacfd {

/// The limiter menu ("various slope limiters").
enum class LimiterKind {
  MinMod,    ///< most dissipative TVD limiter
  Superbee,  ///< least dissipative TVD limiter (compressive)
  VanLeer,   ///< smooth harmonic-mean limiter
  Mc,        ///< monotonized central, kappa = 0 second order
};

/// \returns the stable CLI/report name of \p Kind.
const char *limiterKindName(LimiterKind Kind);

/// Parses "minmod", "superbee", "vanleer", "mc".
std::optional<LimiterKind> parseLimiterKind(std::string_view Text);

/// minmod(a, b): the smaller-magnitude difference, zero at extrema.
inline double minmod(double A, double B) {
  if (A * B <= 0.0)
    return 0.0;
  return std::fabs(A) < std::fabs(B) ? A : B;
}

/// Three-argument minmod (used by the third-order TVD reconstruction).
inline double minmod3(double A, double B, double C) {
  return minmod(A, minmod(B, C));
}

/// superbee(a, b) = maxmod(minmod(2a, b), minmod(a, 2b)).
inline double superbee(double A, double B) {
  if (A * B <= 0.0)
    return 0.0;
  double S1 = minmod(2.0 * A, B);
  double S2 = minmod(A, 2.0 * B);
  return std::fabs(S1) > std::fabs(S2) ? S1 : S2;
}

/// van Leer's harmonic limiter 2ab/(a+b).
inline double vanLeer(double A, double B) {
  if (A * B <= 0.0)
    return 0.0;
  return 2.0 * A * B / (A + B);
}

/// Monotonized central: minmod((a+b)/2, 2a, 2b).
inline double monotonizedCentral(double A, double B) {
  if (A * B <= 0.0)
    return 0.0;
  return minmod3(0.5 * (A + B), 2.0 * A, 2.0 * B);
}

/// Applies the selected limiter to backward difference \p A and forward
/// difference \p B.
inline double limitedSlope(LimiterKind Kind, double A, double B) {
  switch (Kind) {
  case LimiterKind::MinMod:
    return minmod(A, B);
  case LimiterKind::Superbee:
    return superbee(A, B);
  case LimiterKind::VanLeer:
    return vanLeer(A, B);
  case LimiterKind::Mc:
    return monotonizedCentral(A, B);
  }
  return 0.0;
}

} // namespace sacfd

#endif // SACFD_NUMERICS_LIMITERS_H
