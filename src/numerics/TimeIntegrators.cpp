//===- numerics/TimeIntegrators.cpp - SSP Runge-Kutta schemes ------------===//

#include "numerics/TimeIntegrators.h"

#include "support/StrUtil.h"

using namespace sacfd;

const char *sacfd::timeIntegratorKindName(TimeIntegratorKind Kind) {
  switch (Kind) {
  case TimeIntegratorKind::ForwardEuler:
    return "rk1";
  case TimeIntegratorKind::SspRk2:
    return "rk2";
  case TimeIntegratorKind::SspRk3:
    return "rk3";
  }
  return "unknown";
}

std::optional<TimeIntegratorKind>
sacfd::parseTimeIntegratorKind(std::string_view Text) {
  std::string_view Name = trim(Text);
  if (equalsLower(Name, "rk1") || equalsLower(Name, "euler"))
    return TimeIntegratorKind::ForwardEuler;
  if (equalsLower(Name, "rk2"))
    return TimeIntegratorKind::SspRk2;
  if (equalsLower(Name, "rk3"))
    return TimeIntegratorKind::SspRk3;
  return std::nullopt;
}

static const SspStage Rk1Stages[] = {
    {0.0, 1.0},
};
static const SspStage Rk2Stages[] = {
    {0.0, 1.0},
    {0.5, 0.5},
};
static const SspStage Rk3Stages[] = {
    {0.0, 1.0},
    {0.75, 0.25},
    {1.0 / 3.0, 2.0 / 3.0},
};

std::span<const SspStage> sacfd::sspStages(TimeIntegratorKind Kind) {
  switch (Kind) {
  case TimeIntegratorKind::ForwardEuler:
    return Rk1Stages;
  case TimeIntegratorKind::SspRk2:
    return Rk2Stages;
  case TimeIntegratorKind::SspRk3:
    return Rk3Stages;
  }
  return Rk1Stages;
}

unsigned sacfd::timeIntegratorOrder(TimeIntegratorKind Kind) {
  return static_cast<unsigned>(sspStages(Kind).size());
}
