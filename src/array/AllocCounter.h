//===- array/AllocCounter.h - NDArray allocation instrumentation *- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Heap-allocation accounting for the array layer.
///
/// The paper charges much of SaC's single-core deficit to intermediate
/// whole-array temporaries; the FieldPool exists to delete exactly that
/// cost from our hot path.  This header makes the claim checkable: every
/// NDArray buffer allocation routes through CountingAllocator, which
/// bumps a process-wide counter.  The allocation-regression tests assert
/// that a steady-state solver step performs zero such allocations, and
/// bench/alloc_overhead reports allocs/step next to wall-clock.
///
/// The counter is a single relaxed atomic increment paid only when an
/// actual heap allocation happens — the event being eliminated — so it is
/// compiled in unconditionally (Debug builds are where the regression
/// tests assert on it; Release builds get real allocs/step numbers in the
/// bench artifact for free).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_ALLOCCOUNTER_H
#define SACFD_ARRAY_ALLOCCOUNTER_H

#include "array/Layout.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace sacfd {
namespace alloctrack {

namespace detail {
inline std::atomic<uint64_t> AllocCount{0};
inline std::atomic<uint64_t> AllocBytes{0};
} // namespace detail

/// Number of NDArray buffer heap allocations since process start.
inline uint64_t allocationCount() {
  return detail::AllocCount.load(std::memory_order_relaxed);
}

/// Total bytes requested by those allocations.
inline uint64_t allocationBytes() {
  return detail::AllocBytes.load(std::memory_order_relaxed);
}

/// Counting allocator for NDArray's storage vector.  Stateless, so all
/// instances compare equal and container moves/swaps behave exactly as
/// with std::allocator.  Every allocation is kFieldAlign-aligned — the
/// SIMD kernels assume-align pooled buffers, and std::allocator would
/// only guarantee alignof(T), so alignment is owed here, on the one path
/// every NDArray (pooled or not) funnels through.
template <typename T> struct CountingAllocator {
  using value_type = T;

  static_assert(alignof(T) <= kFieldAlign,
                "CountingAllocator aligns to kFieldAlign");

  CountingAllocator() = default;
  template <typename U> CountingAllocator(const CountingAllocator<U> &) {}

  T *allocate(size_t N) {
    detail::AllocCount.fetch_add(1, std::memory_order_relaxed);
    detail::AllocBytes.fetch_add(N * sizeof(T), std::memory_order_relaxed);
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(kFieldAlign)));
  }
  void deallocate(T *P, size_t N) {
    ::operator delete(P, N * sizeof(T), std::align_val_t(kFieldAlign));
  }

  friend bool operator==(const CountingAllocator &, const CountingAllocator &) {
    return true;
  }
  friend bool operator!=(const CountingAllocator &, const CountingAllocator &) {
    return false;
  }
};

} // namespace alloctrack
} // namespace sacfd

#endif // SACFD_ARRAY_ALLOCCOUNTER_H
