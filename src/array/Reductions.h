//===- array/Reductions.h - Deterministic parallel folds -------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fold with-loops: parallel reductions over array expressions.
///
/// The solver's one reduction on the hot path is maxval() inside getDt()
/// (the paper's GetDT kernel).  Reductions are made deterministic by
/// splitting the index space into exactly workerCount() fixed blocks and
/// combining the per-block partials in block order — the result is
/// independent of how the backend schedules the blocks, so serial,
/// spin-pool and fork-join runs of the same scheme produce bit-identical
/// time steps.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_REDUCTIONS_H
#define SACFD_ARRAY_REDUCTIONS_H

#include "array/Expr.h"
#include "runtime/Backend.h"
#include "support/InlinePartials.h"

#include <algorithm>

namespace sacfd {

/// fold with-loop: combines every element of \p Operand into \p Init
/// using \p Combine.
///
/// This is SaC's fold: \p Combine must be an associative operation over a
/// single carrier type T with \p Init (effectively) neutral, because the
/// same operation both accumulates elements within a block and merges the
/// per-block partials.  Element values are converted to T before folding.
/// Non-homomorphic reductions (e.g. counting with a predicate) should map
/// first: `sum(transform(A, Pred), Exec)`.
///
/// Determinism contract: partial results are formed over workerCount()
/// equal blocks in index order and combined left-to-right, so the result
/// depends only on the worker count, not on scheduling.  Under a tiled
/// backend the blocks are instead the TileGrid's tiles, merged in tile
/// order — a decomposition that depends only on the extents and the tile
/// dimensions, making the tiled result reproducible at any worker count.
template <ExprOperand X, typename T, typename Combine>
T fold(X &&Operand, T Init, Combine Fn, Backend &Exec) {
  auto Ex = toExpr(std::forward<X>(Operand));
  const Shape S = Ex.shape();
  size_t N = S.count();
  if (N == 0)
    return Init;

  if (Exec.tile().Enabled && S.rank() == 2) {
    size_t Cols = S.dim(1);
    TileGrid G(S.dim(0), Cols, Exec.tile());
    InlinePartials<T> Partials(G.count(), Init);
    Exec.parallelFor(0, G.count(), [&](size_t TBegin, size_t TEnd) {
      for (size_t Tl = TBegin; Tl != TEnd; ++Tl) {
        TileRect R = G.rect(Tl);
        T Acc = Init;
        Index Ix;
        Ix.Rank = 2;
        for (size_t Row = R.RowBegin; Row != R.RowEnd; ++Row) {
          Ix.Coord[0] = static_cast<std::ptrdiff_t>(Row);
          for (size_t C = R.ColBegin; C != R.ColEnd; ++C) {
            Ix.Coord[1] = static_cast<std::ptrdiff_t>(C);
            Acc = Fn(Acc, static_cast<T>(Ex.eval(Ix)));
          }
        }
        Partials[Tl] = Acc;
      }
    });
    T Result = Init;
    for (const T &Partial : Partials)
      Result = Fn(Result, Partial);
    return Result;
  }

  size_t Blocks = std::min<size_t>(Exec.workerCount(), N);
  InlinePartials<T> Partials(Blocks, Init);

  Exec.parallelFor(0, Blocks, [&](size_t BlockBegin, size_t BlockEnd) {
    for (size_t Block = BlockBegin; Block != BlockEnd; ++Block) {
      size_t Base = N / Blocks, Extra = N % Blocks;
      size_t Lo = Block * Base + std::min<size_t>(Block, Extra);
      size_t Len = Base + (Block < Extra ? 1 : 0);
      T Acc = Init;
      Index Ix = S.delinearize(Lo);
      for (size_t Linear = 0; Linear != Len; ++Linear) {
        Acc = Fn(Acc, static_cast<T>(Ex.eval(Ix)));
        S.increment(Ix);
      }
      Partials[Block] = Acc;
    }
  });

  T Result = Init;
  for (const T &Partial : Partials)
    Result = Fn(Result, Partial);
  return Result;
}

/// Largest element (SaC maxval).  Programmatic error on empty operands.
template <ExprOperand X> auto maxval(X &&Operand, Backend &Exec) {
  using T = typename ExprOf<X>::ValueType;
  auto Ex = toExpr(std::forward<X>(Operand));
  assert(Ex.shape().count() > 0 && "maxval of empty array");
  T First = Ex.eval(Ex.shape().delinearize(0));
  return fold(std::move(Ex), First,
              [](const T &A, const T &B) { return std::max(A, B); }, Exec);
}

/// Smallest element (SaC minval).  Programmatic error on empty operands.
template <ExprOperand X> auto minval(X &&Operand, Backend &Exec) {
  using T = typename ExprOf<X>::ValueType;
  auto Ex = toExpr(std::forward<X>(Operand));
  assert(Ex.shape().count() > 0 && "minval of empty array");
  T First = Ex.eval(Ex.shape().delinearize(0));
  return fold(std::move(Ex), First,
              [](const T &A, const T &B) { return std::min(A, B); }, Exec);
}

/// Element sum (SaC sum).  Zero-initialized from T{}.
template <ExprOperand X> auto sum(X &&Operand, Backend &Exec) {
  using T = typename ExprOf<X>::ValueType;
  return fold(std::forward<X>(Operand), T{},
              [](const T &A, const T &B) { return A + B; }, Exec);
}

} // namespace sacfd

#endif // SACFD_ARRAY_REDUCTIONS_H
