//===- array/Shape.cpp - Rank-generic array shapes and indices -----------===//

#include "array/Shape.h"

using namespace sacfd;

std::string Shape::str() const {
  std::string Out = "[";
  for (unsigned I = 0; I < RankValue; ++I) {
    if (I != 0)
      Out += ",";
    Out += std::to_string(Extent[I]);
  }
  Out += "]";
  return Out;
}
