//===- array/WithLoop.h - Data-parallel array construction -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The with-loop: SaC's central data-parallel construct.
///
/// "The essence of this construct is a data-parallel array definition.
/// The programmer supplies a specification of the index space ... and the
/// definition of the array value for a given index ...  Definitions for
/// different array values are assumed to be mutually independent, hence
/// data-parallelism is presented to the compiler explicitly."  (Section 2)
///
/// withLoop() is the genarray form (build a new array), assignInto() the
/// modarray form (overwrite an existing one), and materialize() forces a
/// lazy expression.  All three execute one parallel pass over the index
/// space on the given Backend; the per-element body sees the
/// multi-dimensional Index, maintained incrementally in row-major order so
/// no per-element division is paid.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_WITHLOOP_H
#define SACFD_ARRAY_WITHLOOP_H

#include "array/Expr.h"
#include "array/NDArray.h"
#include "runtime/Backend.h"

#include <cassert>

namespace sacfd {

/// Runs \p Body(Index, Linear) once per element of \p S, in parallel.
///
/// The contract is SaC's: bodies for different indices must be mutually
/// independent.
template <typename Fn>
void forEachIndex(const Shape &S, Backend &Exec, Fn &&Body) {
  size_t N = S.count();
  if (N == 0)
    return;
  if (S.rank() == 2) {
    // Rank-2 spaces go through the 2D boundary so the backend can tile
    // them.  Per-element results do not depend on the traversal grouping,
    // so tiled and flattened runs write bit-identical arrays.
    size_t Cols = S.dim(1);
    Exec.parallelFor2D(
        S.dim(0), Cols,
        [&Body, Cols](size_t RowBegin, size_t RowEnd, size_t ColBegin,
                      size_t ColEnd) {
          Index Ix;
          Ix.Rank = 2;
          for (size_t R = RowBegin; R != RowEnd; ++R) {
            Ix.Coord[0] = static_cast<std::ptrdiff_t>(R);
            size_t Linear = R * Cols + ColBegin;
            for (size_t C = ColBegin; C != ColEnd; ++C, ++Linear) {
              Ix.Coord[1] = static_cast<std::ptrdiff_t>(C);
              Body(static_cast<const Index &>(Ix), Linear);
            }
          }
        });
    return;
  }
  auto Range = [&S, &Body](size_t Begin, size_t End) {
    Index Ix = S.delinearize(Begin);
    for (size_t Linear = Begin; Linear != End; ++Linear) {
      Body(static_cast<const Index &>(Ix), Linear);
      S.increment(Ix);
    }
  };
  Exec.parallelFor(0, N, Range);
}

/// genarray with-loop: a new array over index space \p S with element
/// \p Body(Index).
template <typename Fn>
auto withLoop(const Shape &S, Backend &Exec, Fn &&Body) {
  using T = std::remove_cvref_t<decltype(Body(std::declval<Index>()))>;
  NDArray<T> Out(S);
  T *Data = Out.data();
  forEachIndex(S, Exec, [&Body, Data](const Index &Ix, size_t Linear) {
    Data[Linear] = Body(Ix);
  });
  return Out;
}

/// genarray with-loop into an existing buffer — the pooled form of
/// withLoop().  Every element of \p Out is overwritten with \p Body(Ix),
/// so a recycled (uninitialized) buffer is safe here.
template <typename T, typename Fn>
void withLoopInto(NDArray<T> &Out, Backend &Exec, Fn &&Body) {
  T *Data = Out.data();
  forEachIndex(Out.shape(), Exec,
               [&Body, Data](const Index &Ix, size_t Linear) {
                 Data[Linear] = Body(Ix);
               });
}

/// modarray with-loop: overwrites \p Out with \p Ex element-wise.
/// This is the fused evaluation point of an expression chain.
template <typename T, ArrayExprType E>
void assignInto(NDArray<T> &Out, const E &Ex, Backend &Exec) {
  assert(Out.shape() == Ex.shape() && "assignment shape mismatch");
  T *Data = Out.data();
  forEachIndex(Out.shape(), Exec, [&Ex, Data](const Index &Ix, size_t Linear) {
    Data[Linear] = Ex.eval(Ix);
  });
}

/// Forces a lazy expression into a fresh array (one temporary — the
/// unfused evaluation step of the A1 ablation).
template <ArrayExprType E>
NDArray<typename std::remove_cvref_t<E>::ValueType>
materialize(const E &Ex, Backend &Exec) {
  NDArray<typename std::remove_cvref_t<E>::ValueType> Out(Ex.shape());
  assignInto(Out, Ex, Exec);
  return Out;
}

} // namespace sacfd

#endif // SACFD_ARRAY_WITHLOOP_H
