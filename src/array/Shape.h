//===- array/Shape.h - Rank-generic array shapes and indices ---*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shapes and multi-dimensional indices for the array language.
///
/// SaC types like `double[+]` (any rank) and `double[.,.]` (rank 2, any
/// extent) make rank a runtime property.  Shape mirrors that: rank is
/// dynamic up to MaxRank, so the same solver code instantiates for the 1D
/// Sod tube and the 2D channel interaction — the code-reuse claim of the
/// paper's Section 2.  Layout is row-major (C order); the last axis is
/// contiguous.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_SHAPE_H
#define SACFD_ARRAY_SHAPE_H

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace sacfd {

/// Maximum supported array rank (space dims + headroom).
inline constexpr unsigned MaxRank = 3;

/// A multi-dimensional index into an array (signed so that shifted/cropped
/// expression views can reason about out-of-range offsets).
struct Index {
  unsigned Rank = 0;
  std::array<std::ptrdiff_t, MaxRank> Coord = {};

  Index() = default;
  Index(std::initializer_list<std::ptrdiff_t> Coords) {
    assert(Coords.size() <= MaxRank && "rank too large");
    for (std::ptrdiff_t C : Coords)
      Coord[Rank++] = C;
  }

  std::ptrdiff_t operator[](unsigned Axis) const {
    assert(Axis < Rank && "axis out of range");
    return Coord[Axis];
  }
  std::ptrdiff_t &operator[](unsigned Axis) {
    assert(Axis < Rank && "axis out of range");
    return Coord[Axis];
  }

  friend bool operator==(const Index &A, const Index &B) {
    if (A.Rank != B.Rank)
      return false;
    for (unsigned I = 0; I < A.Rank; ++I)
      if (A.Coord[I] != B.Coord[I])
        return false;
    return true;
  }
  friend bool operator!=(const Index &A, const Index &B) { return !(A == B); }
};

/// The extents of a rank-dynamic, row-major array.
class Shape {
public:
  Shape() = default;
  Shape(std::initializer_list<size_t> Dims) {
    assert(Dims.size() <= MaxRank && "rank too large");
    for (size_t D : Dims)
      Extent[RankValue++] = D;
  }

  /// Builds a rank-\p Rank shape with every extent \p Dim.
  static Shape uniform(unsigned Rank, size_t Dim) {
    assert(Rank <= MaxRank && "rank too large");
    Shape S;
    S.RankValue = Rank;
    for (unsigned I = 0; I < Rank; ++I)
      S.Extent[I] = Dim;
    return S;
  }

  unsigned rank() const { return RankValue; }

  size_t dim(unsigned Axis) const {
    assert(Axis < RankValue && "axis out of range");
    return Extent[Axis];
  }
  size_t &dim(unsigned Axis) {
    assert(Axis < RankValue && "axis out of range");
    return Extent[Axis];
  }

  /// Total element count (1 for rank 0 — a scalar cell).
  size_t count() const {
    size_t N = 1;
    for (unsigned I = 0; I < RankValue; ++I)
      N *= Extent[I];
    return N;
  }

  /// \returns true if \p Ix lies inside [0, dim) on every axis.
  bool contains(const Index &Ix) const {
    if (Ix.Rank != RankValue)
      return false;
    for (unsigned I = 0; I < RankValue; ++I)
      if (Ix.Coord[I] < 0 ||
          static_cast<size_t>(Ix.Coord[I]) >= Extent[I])
        return false;
    return true;
  }

  /// Row-major linearization of \p Ix.
  size_t linearize(const Index &Ix) const {
    assert(contains(Ix) && "index out of bounds");
    size_t Linear = 0;
    for (unsigned I = 0; I < RankValue; ++I)
      Linear = Linear * Extent[I] + static_cast<size_t>(Ix.Coord[I]);
    return Linear;
  }

  /// Inverse of linearize.
  Index delinearize(size_t Linear) const {
    assert(Linear < count() && "linear index out of bounds");
    Index Ix;
    Ix.Rank = RankValue;
    for (unsigned I = RankValue; I-- > 0;) {
      Ix.Coord[I] = static_cast<std::ptrdiff_t>(Linear % Extent[I]);
      Linear /= Extent[I];
    }
    return Ix;
  }

  /// Advances \p Ix to the next row-major position.  \returns false when
  /// the iteration space is exhausted.
  bool increment(Index &Ix) const {
    assert(Ix.Rank == RankValue && "rank mismatch");
    for (unsigned I = RankValue; I-- > 0;) {
      if (static_cast<size_t>(++Ix.Coord[I]) < Extent[I])
        return true;
      Ix.Coord[I] = 0;
    }
    return false;
  }

  friend bool operator==(const Shape &A, const Shape &B) {
    if (A.RankValue != B.RankValue)
      return false;
    for (unsigned I = 0; I < A.RankValue; ++I)
      if (A.Extent[I] != B.Extent[I])
        return false;
    return true;
  }
  friend bool operator!=(const Shape &A, const Shape &B) { return !(A == B); }

  /// \returns e.g. "[400,400]".
  std::string str() const;

private:
  unsigned RankValue = 0;
  std::array<size_t, MaxRank> Extent = {};
};

} // namespace sacfd

#endif // SACFD_ARRAY_SHAPE_H
