//===- array/Expr.h - Lazy array expressions (fusion) ----------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression templates standing in for the SaC compiler's with-loop fusion.
///
/// The paper attributes SaC's scalability to the compiler "collating the
/// many small operations on the arrays into fewer larger operations".  In
/// this C++ reproduction the same role is played by lazy expressions: a
/// chain like
/// \code
///   assignInto(Out, (drop({1}, Dqc) - drop({-1}, Dqc)) / Delta, Pool);
/// \endcode
/// evaluates in a single parallel pass with no temporaries — exactly the
/// fused with-loop sac2c emits for dfDxNoBoundary.  The unfused behavior
/// (one materialized temporary per operation, SaC before optimization) is
/// available by calling materialize() on each sub-expression; the A1
/// ablation benchmark measures the difference.
///
/// An expression is any type with:
///   - `using ValueType = ...;`
///   - `using SacfdExprTag = void;`   (opt-in marker for the operators)
///   - `Shape shape() const`
///   - `ValueType eval(const Index &) const`
/// Expressions hold references to the arrays they read; they must be
/// consumed before those arrays change or die.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_EXPR_H
#define SACFD_ARRAY_EXPR_H

#include "array/NDArray.h"
#include "array/Shape.h"

#include <cassert>
#include <cmath>
#include <type_traits>
#include <utility>

namespace sacfd {

//===----------------------------------------------------------------------===//
// Concepts
//===----------------------------------------------------------------------===//

/// Matches the duck-typed expression protocol (via the opt-in tag).
template <typename E>
concept ArrayExprType = requires { typename std::remove_cvref_t<E>::SacfdExprTag; };

namespace detail {
template <typename T> struct IsNDArrayImpl : std::false_type {};
template <typename T> struct IsNDArrayImpl<NDArray<T>> : std::true_type {};
} // namespace detail

/// Matches NDArray<T> for any T.
template <typename A>
concept NDArrayType = detail::IsNDArrayImpl<std::remove_cvref_t<A>>::value;

/// Anything usable as an expression operand.
template <typename X>
concept ExprOperand = ArrayExprType<X> || NDArrayType<X>;

//===----------------------------------------------------------------------===//
// Leaf: reference to an array
//===----------------------------------------------------------------------===//

/// Wraps a borrowed NDArray as an expression leaf.
template <typename T> class ArrayRefExpr {
public:
  using ValueType = T;
  using SacfdExprTag = void;

  explicit ArrayRefExpr(const NDArray<T> &Array) : Base(&Array) {}

  const Shape &shape() const { return Base->shape(); }
  const T &eval(const Index &Ix) const { return Base->at(Ix); }

private:
  const NDArray<T> *Base;
};

/// Normalizes an operand (array or expression) into an expression.
template <typename T> ArrayRefExpr<T> toExpr(const NDArray<T> &Array) {
  return ArrayRefExpr<T>(Array);
}
template <ArrayExprType E> decltype(auto) toExpr(E &&Ex) {
  return std::forward<E>(Ex);
}

/// The expression type an operand normalizes to.
template <typename X>
using ExprOf = std::remove_cvref_t<decltype(toExpr(std::declval<X>()))>;

//===----------------------------------------------------------------------===//
// Element-wise binary combination
//===----------------------------------------------------------------------===//

/// Element-wise combination of two same-shape expressions.
template <typename L, typename R, typename Op> class BinaryExpr {
public:
  using ValueType =
      decltype(std::declval<Op>()(std::declval<typename L::ValueType>(),
                                  std::declval<typename R::ValueType>()));
  using SacfdExprTag = void;

  BinaryExpr(L Lhs, R Rhs, Op Fn)
      : Lhs(std::move(Lhs)), Rhs(std::move(Rhs)), Fn(std::move(Fn)) {
    assert(this->Lhs.shape() == this->Rhs.shape() &&
           "element-wise operands must have equal shapes");
  }

  Shape shape() const { return Lhs.shape(); }
  ValueType eval(const Index &Ix) const { return Fn(Lhs.eval(Ix), Rhs.eval(Ix)); }

private:
  L Lhs;
  R Rhs;
  Op Fn;
};

/// Element-wise combination of an expression with a broadcast scalar
/// (scalar on the right).
template <typename E, typename S, typename Op> class ScalarRhsExpr {
public:
  using ValueType = decltype(std::declval<Op>()(
      std::declval<typename E::ValueType>(), std::declval<S>()));
  using SacfdExprTag = void;

  ScalarRhsExpr(E Ex, S Scalar, Op Fn)
      : Ex(std::move(Ex)), Scalar(std::move(Scalar)), Fn(std::move(Fn)) {}

  Shape shape() const { return Ex.shape(); }
  ValueType eval(const Index &Ix) const { return Fn(Ex.eval(Ix), Scalar); }

private:
  E Ex;
  S Scalar;
  Op Fn;
};

/// Element-wise combination with a broadcast scalar on the left.
template <typename S, typename E, typename Op> class ScalarLhsExpr {
public:
  using ValueType = decltype(std::declval<Op>()(
      std::declval<S>(), std::declval<typename E::ValueType>()));
  using SacfdExprTag = void;

  ScalarLhsExpr(S Scalar, E Ex, Op Fn)
      : Scalar(std::move(Scalar)), Ex(std::move(Ex)), Fn(std::move(Fn)) {}

  Shape shape() const { return Ex.shape(); }
  ValueType eval(const Index &Ix) const { return Fn(Scalar, Ex.eval(Ix)); }

private:
  S Scalar;
  E Ex;
  Op Fn;
};

/// Element-wise transformation of one expression.
template <typename E, typename Fn> class UnaryExpr {
public:
  using ValueType =
      decltype(std::declval<Fn>()(std::declval<typename E::ValueType>()));
  using SacfdExprTag = void;

  UnaryExpr(E Ex, Fn F) : Ex(std::move(Ex)), F(std::move(F)) {}

  Shape shape() const { return Ex.shape(); }
  ValueType eval(const Index &Ix) const { return F(Ex.eval(Ix)); }

private:
  E Ex;
  Fn F;
};

//===----------------------------------------------------------------------===//
// Set notation: { iv -> body(iv) }
//===----------------------------------------------------------------------===//

/// An array defined point-wise by an index function — SaC's set notation
/// `{ [i,j] -> body }` and the body of a genarray with-loop.
template <typename Fn> class MapExpr {
public:
  using ValueType = decltype(std::declval<Fn>()(std::declval<Index>()));
  using SacfdExprTag = void;

  MapExpr(Shape S, Fn Body) : Dims(S), Body(std::move(Body)) {}

  const Shape &shape() const { return Dims; }
  ValueType eval(const Index &Ix) const { return Body(Ix); }

private:
  Shape Dims;
  Fn Body;
};

/// Builds a set-notation expression over index space \p S.
template <typename Fn> MapExpr<Fn> mapIndex(Shape S, Fn Body) {
  return MapExpr<Fn>(S, std::move(Body));
}

//===----------------------------------------------------------------------===//
// Cropping views: drop / take
//===----------------------------------------------------------------------===//

/// A contiguous sub-box of a base expression (the engine behind SaC's
/// drop/take).  Lo is the per-axis offset of the view inside the base.
template <typename E> class CropExpr {
public:
  using ValueType = typename E::ValueType;
  using SacfdExprTag = void;

  CropExpr(E Base, Index Lo, Shape S)
      : Base(std::move(Base)), Lo(Lo), Dims(S) {
    assert(Lo.Rank == Dims.rank() && "offset rank mismatch");
  }

  const Shape &shape() const { return Dims; }
  ValueType eval(const Index &Ix) const {
    Index Shifted = Ix;
    for (unsigned I = 0; I < Shifted.Rank; ++I)
      Shifted.Coord[I] += Lo.Coord[I];
    return Base.eval(Shifted);
  }

private:
  E Base;
  Index Lo;
  Shape Dims;
};

/// SaC `drop(Offsets, Base)`: removes |Offsets[a]| elements from axis a —
/// from the front when positive, from the back when negative.
template <ExprOperand X> auto drop(Index Offsets, X &&Base) {
  auto Ex = toExpr(std::forward<X>(Base));
  Shape S = Ex.shape();
  assert(Offsets.Rank == S.rank() && "drop offsets must cover every axis");
  Index Lo;
  Lo.Rank = S.rank();
  for (unsigned A = 0; A < S.rank(); ++A) {
    size_t Drop = static_cast<size_t>(
        Offsets.Coord[A] >= 0 ? Offsets.Coord[A] : -Offsets.Coord[A]);
    assert(Drop <= S.dim(A) && "dropping more elements than the axis has");
    S.dim(A) -= Drop;
    Lo.Coord[A] = Offsets.Coord[A] >= 0 ? Offsets.Coord[A] : 0;
  }
  return CropExpr<ExprOf<X>>(std::move(Ex), Lo, S);
}

/// SaC `take(Counts, Base)`: keeps the first Counts[a] elements of axis a
/// when positive, the last |Counts[a]| when negative.
template <ExprOperand X> auto take(Index Counts, X &&Base) {
  auto Ex = toExpr(std::forward<X>(Base));
  Shape Full = Ex.shape();
  assert(Counts.Rank == Full.rank() && "take counts must cover every axis");
  Shape S = Full;
  Index Lo;
  Lo.Rank = Full.rank();
  for (unsigned A = 0; A < Full.rank(); ++A) {
    size_t Keep = static_cast<size_t>(
        Counts.Coord[A] >= 0 ? Counts.Coord[A] : -Counts.Coord[A]);
    assert(Keep <= Full.dim(A) && "taking more elements than the axis has");
    S.dim(A) = Keep;
    Lo.Coord[A] =
        Counts.Coord[A] >= 0
            ? 0
            : static_cast<std::ptrdiff_t>(Full.dim(A) - Keep);
  }
  return CropExpr<ExprOf<X>>(std::move(Ex), Lo, S);
}

//===----------------------------------------------------------------------===//
// Operators
//===----------------------------------------------------------------------===//

namespace detail {
struct AddOp {
  template <typename A, typename B> auto operator()(const A &X, const B &Y) const {
    return X + Y;
  }
};
struct SubOp {
  template <typename A, typename B> auto operator()(const A &X, const B &Y) const {
    return X - Y;
  }
};
struct MulOp {
  template <typename A, typename B> auto operator()(const A &X, const B &Y) const {
    return X * Y;
  }
};
struct DivOp {
  template <typename A, typename B> auto operator()(const A &X, const B &Y) const {
    return X / Y;
  }
};
} // namespace detail

/// True for types broadcast as scalars in mixed expressions.
template <typename S>
concept BroadcastScalar = std::is_arithmetic_v<std::remove_cvref_t<S>>;

#define SACFD_DEFINE_ELEMENTWISE_OPERATOR(SYM, OP)                             \
  template <ExprOperand L, ExprOperand R>                                      \
    requires(ArrayExprType<L> || ArrayExprType<R>)                             \
  auto operator SYM(L &&Lhs, R &&Rhs) {                                        \
    return BinaryExpr<ExprOf<L>, ExprOf<R>, detail::OP>(                       \
        toExpr(std::forward<L>(Lhs)), toExpr(std::forward<R>(Rhs)),            \
        detail::OP{});                                                         \
  }                                                                            \
  template <ArrayExprType E, BroadcastScalar S>                                \
  auto operator SYM(E &&Ex, S Scalar) {                                        \
    return ScalarRhsExpr<ExprOf<E>, S, detail::OP>(                            \
        toExpr(std::forward<E>(Ex)), Scalar, detail::OP{});                    \
  }                                                                            \
  template <BroadcastScalar S, ArrayExprType E>                                \
  auto operator SYM(S Scalar, E &&Ex) {                                        \
    return ScalarLhsExpr<S, ExprOf<E>, detail::OP>(                            \
        Scalar, toExpr(std::forward<E>(Ex)), detail::OP{});                    \
  }

SACFD_DEFINE_ELEMENTWISE_OPERATOR(+, AddOp)
SACFD_DEFINE_ELEMENTWISE_OPERATOR(-, SubOp)
SACFD_DEFINE_ELEMENTWISE_OPERATOR(*, MulOp)
SACFD_DEFINE_ELEMENTWISE_OPERATOR(/, DivOp)

#undef SACFD_DEFINE_ELEMENTWISE_OPERATOR

/// Element-wise transform with an arbitrary function.
template <ExprOperand X, typename Fn> auto transform(X &&Base, Fn F) {
  return UnaryExpr<ExprOf<X>, Fn>(toExpr(std::forward<X>(Base)),
                                  std::move(F));
}

/// Element-wise negation.
template <ExprOperand X> auto operator-(X &&Base)
  requires ArrayExprType<X>
{
  return transform(std::forward<X>(Base), [](const auto &V) { return -V; });
}

/// Element-wise absolute value (MathArray::fabs in the paper's listing).
template <ExprOperand X> auto fabsE(X &&Base) {
  return transform(std::forward<X>(Base),
                   [](const auto &V) { return std::fabs(V); });
}

/// Element-wise square root.
template <ExprOperand X> auto sqrtE(X &&Base) {
  return transform(std::forward<X>(Base),
                   [](const auto &V) { return std::sqrt(V); });
}

} // namespace sacfd

#endif // SACFD_ARRAY_EXPR_H
