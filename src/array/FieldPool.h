//===- array/FieldPool.h - Reusable field-buffer arena ---------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-solver arena of reusable NDArray buffers.
///
/// The paper attributes SaC's single-core deficit to intermediate
/// whole-array temporaries; our with-loop engine used to pay malloc plus
/// value-initialization for every stage temporary of every Runge-Kutta
/// stage.  FieldPool removes that cost: buffers are keyed by (element
/// type, shape) and recycled through free lists, so after a warmup step
/// the solver's hot loop performs zero heap allocations (the
/// allocation-regression tests assert this through AllocCounter.h).
///
/// Acquisition modes:
///   acquire        value-initialized contents, exactly like constructing
///                  NDArray(Shape) — recycled buffers are re-zeroed.
///   acquireUninit  contents unspecified; for buffers every element of
///                  which is overwritten before being read (with-loop
///                  results, snapshots).  This is the no-memset fast path.
///
/// Leases are RAII: destroying (or move-assigning over) a Lease returns
/// the buffer to the pool's free list.  The pool must outlive its leases;
/// a solver owns its pool, and anything holding leases (the step guard's
/// rollback snapshot, engine scratch) must be destroyed before the
/// solver.  Determinism: pooling only changes where a buffer's storage
/// comes from, never the arithmetic or the traversal order, and the
/// value-init mode re-zeroes recycled buffers — so pooled runs are
/// bit-identical to unpooled ones at any worker count.
///
/// setEnabled(false) turns the pool into a pass-through (every acquire
/// allocates, every release frees) — the "unpooled" arm of the A6
/// allocation ablation.  Stats (acquisitions, hits, bytes resident,
/// high-water mark) are exported through the telemetry gauges by
/// recordTelemetry(), which the solver calls on its gauge cadence.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_FIELDPOOL_H
#define SACFD_ARRAY_FIELDPOOL_H

#include "array/Layout.h"
#include "array/NDArray.h"
#include "array/Shape.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace sacfd {

namespace detail {
/// Process-wide registration of element types seen by any pool; gives
/// each T a small dense index into FieldPool's sub-pool table.
unsigned nextFieldPoolTypeId();
template <typename T> unsigned fieldPoolTypeId() {
  static const unsigned Id = nextFieldPoolTypeId();
  return Id;
}
} // namespace detail

/// Shape-keyed arena of reusable NDArray buffers with RAII leases.
class FieldPool {
public:
  /// Structured outcome of pool operations that can be refused; replaces
  /// asserting on misuse so callers can surface the reason.
  enum class PoolError : unsigned char {
    None = 0,
    /// A lease was asked to be reused under a layout other than the one
    /// it was acquired with.
    LayoutMismatch,
  };
  struct PoolStatus {
    PoolError Err = PoolError::None;
    std::string Detail;
    explicit operator bool() const { return Err == PoolError::None; }

    static PoolStatus success() { return {}; }
    static PoolStatus make(PoolError E, std::string D) {
      return {E, std::move(D)};
    }
  };

  /// Pool accounting; monotonic counters plus the current/peak residency.
  struct Stats {
    /// Total acquire/acquireUninit calls.
    uint64_t Acquisitions = 0;
    /// Acquisitions served from a free list (no heap allocation).
    uint64_t Hits = 0;
    /// Bytes of buffer storage currently owned by the pool or out on
    /// lease.
    uint64_t BytesResident = 0;
    /// Largest BytesResident ever observed.
    uint64_t HighWaterBytes = 0;
    /// Leases currently outstanding.
    uint64_t LiveLeases = 0;
  };

  /// RAII handle on a pooled buffer; returns it to the pool on
  /// destruction.  Movable, not copyable; a default-constructed Lease is
  /// empty (boolean false).
  template <typename T> class Lease {
  public:
    Lease() = default;
    Lease(Lease &&O) noexcept
        : Pool(O.Pool), Buf(std::move(O.Buf)), L(O.L), Align(O.Align) {
      O.Pool = nullptr;
    }
    Lease &operator=(Lease &&O) noexcept {
      if (this != &O) {
        reset();
        Pool = O.Pool;
        Buf = std::move(O.Buf);
        L = O.L;
        Align = O.Align;
        O.Pool = nullptr;
      }
      return *this;
    }
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;
    ~Lease() { reset(); }

    /// Returns the buffer to the pool; the Lease becomes empty.
    void reset() {
      if (Buf)
        Pool->release<T>(std::move(Buf), L, Align);
      Pool = nullptr;
    }

    /// Layout the buffer was acquired under; part of its pool key.
    Layout layout() const { return L; }
    /// Alignment the buffer was acquired under.
    size_t alignment() const { return Align; }

    /// Checks that this lease's buffer may be reused in place under
    /// \p NewLayout.  A buffer keyed for one layout must not be
    /// reinterpreted under another — the plane geometry differs — so a
    /// mismatch is a structured error naming both layouts, not an
    /// assert.
    PoolStatus reuseAs(Layout NewLayout) const {
      if (!Buf)
        return PoolStatus::make(PoolError::LayoutMismatch,
                                "empty lease cannot be reused");
      if (NewLayout != L)
        return PoolStatus::make(
            PoolError::LayoutMismatch,
            std::string("lease acquired as ") + layoutName(L) +
                " cannot be reused as " + layoutName(NewLayout) +
                "; release it and acquire under the new layout");
      return PoolStatus::success();
    }

    explicit operator bool() const { return Buf != nullptr; }

    NDArray<T> &operator*() { return *Buf; }
    const NDArray<T> &operator*() const { return *Buf; }
    NDArray<T> *operator->() { return Buf.get(); }
    const NDArray<T> *operator->() const { return Buf.get(); }
    NDArray<T> &array() { return *Buf; }
    const NDArray<T> &array() const { return *Buf; }

  private:
    friend class FieldPool;
    Lease(FieldPool *Pool, std::unique_ptr<NDArray<T>> Buf, Layout L,
          size_t Align)
        : Pool(Pool), Buf(std::move(Buf)), L(L), Align(Align) {}

    FieldPool *Pool = nullptr;
    std::unique_ptr<NDArray<T>> Buf;
    Layout L = Layout::AoS;
    size_t Align = kFieldAlign;
  };

  FieldPool() = default;
  /// Outstanding leases hold a pointer back into the pool.
  FieldPool(const FieldPool &) = delete;
  FieldPool &operator=(const FieldPool &) = delete;

  /// Leases a value-initialized buffer of shape \p S (recycled buffers
  /// are re-zeroed, matching NDArray(Shape) semantics).  \p L and
  /// \p Align are part of the bucket key: buffers only recycle within
  /// the same (shape, layout, alignment) class.
  template <typename T>
  Lease<T> acquire(const Shape &S, Layout L = Layout::AoS,
                   size_t Align = kFieldAlign) {
    return acquireImpl<T>(S, L, Align, /*Recycled=*/nullptr);
  }

  /// Leases a buffer of shape \p S with unspecified contents.  Only for
  /// buffers that are fully overwritten before being read.
  template <typename T>
  Lease<T> acquireUninit(const Shape &S, Layout L = Layout::AoS,
                         size_t Align = kFieldAlign) {
    bool Recycled = false;
    return acquireImpl<T>(S, L, Align, &Recycled);
  }

  /// Declares the layout the owning solver runs its state field under.
  /// Purely descriptive (exported as the "pool.layout" gauge); acquire
  /// calls still name their layout explicitly.
  void setLayout(Layout L);
  Layout layout() const;

  /// Turns recycling on or off.  Disabling drains the free lists, so an
  /// "unpooled" run really pays one malloc/free per temporary.
  void setEnabled(bool On);
  bool enabled() const;

  Stats stats() const;

  /// Records the pool gauges ("pool.acquisitions", "pool.hits",
  /// "pool.bytes_resident", "pool.high_water") at \p Step.  Driving
  /// thread only, like all gauge recording; no-op while telemetry is
  /// disabled.  The stats are a pure function of the step structure, so
  /// the gauge series is bit-identical across backends and worker counts.
  void recordTelemetry(unsigned Step) const;

private:
  struct SubPoolBase {
    virtual ~SubPoolBase() = default;
    /// Frees all idle buffers; returns the bytes released.
    virtual uint64_t drainFree() = 0;
  };

  template <typename T> struct SubPool final : SubPoolBase {
    struct Bucket {
      Shape Dims;
      Layout L = Layout::AoS;
      size_t Align = kFieldAlign;
      std::vector<std::unique_ptr<NDArray<T>>> Free;
    };
    std::vector<Bucket> Buckets;

    Bucket &bucket(const Shape &S, Layout L, size_t Align) {
      for (Bucket &B : Buckets)
        if (B.Dims == S && B.L == L && B.Align == Align)
          return B;
      Buckets.push_back(Bucket{S, L, Align, {}});
      return Buckets.back();
    }

    uint64_t drainFree() override {
      uint64_t Bytes = 0;
      for (Bucket &B : Buckets)
        Bytes += B.Dims.count() * sizeof(T) * B.Free.size();
      Buckets.clear();
      return Bytes;
    }
  };

  template <typename T> SubPool<T> &subPool() {
    unsigned Id = detail::fieldPoolTypeId<T>();
    if (Id >= Subs.size())
      Subs.resize(Id + 1);
    if (!Subs[Id])
      Subs[Id] = std::make_unique<SubPool<T>>();
    return static_cast<SubPool<T> &>(*Subs[Id]);
  }

  /// \p Recycled distinguishes the modes: null means value-init (re-zero
  /// a recycled buffer); non-null means uninit (leave contents) and
  /// receives whether the buffer came off a free list.
  template <typename T>
  Lease<T> acquireImpl(const Shape &S, Layout L, size_t Align,
                       bool *Recycled) {
    std::unique_ptr<NDArray<T>> Buf;
    {
      std::lock_guard<std::mutex> Lock(M);
      ++St.Acquisitions;
      if (Enabled) {
        typename SubPool<T>::Bucket &B = subPool<T>().bucket(S, L, Align);
        if (!B.Free.empty()) {
          Buf = std::move(B.Free.back());
          B.Free.pop_back();
          ++St.Hits;
        }
      }
      if (!Buf) {
        St.BytesResident += S.count() * sizeof(T);
        St.HighWaterBytes = std::max(St.HighWaterBytes, St.BytesResident);
      }
      ++St.LiveLeases;
    }
    if (Buf) {
      if (Recycled)
        *Recycled = true;
      else
        Buf->fill(T());
      return Lease<T>(this, std::move(Buf), L, Align);
    }
    // Fresh NDArray(Shape) storage is value-initialized either way; the
    // uninit mode only skips the re-zeroing of recycled buffers.
    return Lease<T>(this, std::make_unique<NDArray<T>>(S), L, Align);
  }

  template <typename T>
  void release(std::unique_ptr<NDArray<T>> Buf, Layout L, size_t Align) {
    std::lock_guard<std::mutex> Lock(M);
    --St.LiveLeases;
    if (!Enabled) {
      St.BytesResident -= Buf->size() * sizeof(T);
      return; // unique_ptr frees the buffer
    }
    subPool<T>().bucket(Buf->shape(), L, Align).Free.push_back(std::move(Buf));
  }

  /// Frees every pooled (idle) buffer; leased buffers are unaffected and
  /// will be freed on release.  Caller holds M.
  void drainFreeListsLocked();

  mutable std::mutex M;
  std::vector<std::unique_ptr<SubPoolBase>> Subs;
  Stats St;
  bool Enabled = true;
  Layout FieldLayout = Layout::AoS;
};

} // namespace sacfd

#endif // SACFD_ARRAY_FIELDPOOL_H
