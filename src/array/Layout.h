//===- array/Layout.h - Field memory-layout descriptor ---------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The field memory-layout vocabulary shared by FieldPool, Field, and the
/// kernels:: layer.
///
/// AoS keeps one Cons<Dim> record per cell (the layout the with-loop
/// engine has always used); SoA stores each conserved component in its
/// own contiguous plane so the inner kernels see unit-stride streams the
/// compiler can vectorize.  Every pooled buffer is aligned to kFieldAlign
/// and SoA planes are tail-padded to a whole number of alignment blocks,
/// so each component plane starts on a 64-byte boundary regardless of the
/// cell count.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_LAYOUT_H
#define SACFD_ARRAY_LAYOUT_H

#include <cstddef>
#include <string_view>

namespace sacfd {

/// How a field's conserved components are arranged in memory.
enum class Layout : unsigned char {
  AoS = 0, ///< interleaved Cons records, one per cell
  SoA = 1, ///< one contiguous, padded plane per conserved component
};

/// Alignment of every pooled buffer, and the SoA plane boundary.  One
/// cache line; wide enough for any vector ISA this code targets.
inline constexpr size_t kFieldAlign = 64;

/// Doubles per alignment block.
inline constexpr size_t kAlignDoubles = kFieldAlign / sizeof(double);

/// Rounds an element count up to a whole number of alignment blocks so
/// consecutive SoA planes all start kFieldAlign-aligned.
constexpr size_t paddedCount(size_t N) {
  return (N + kAlignDoubles - 1) / kAlignDoubles * kAlignDoubles;
}

constexpr const char *layoutName(Layout L) {
  return L == Layout::SoA ? "soa" : "aos";
}

/// Parses "aos"/"soa"; returns false (leaving \p Out untouched) on
/// anything else.
inline bool parseLayout(std::string_view Name, Layout &Out) {
  if (Name == "aos") {
    Out = Layout::AoS;
    return true;
  }
  if (Name == "soa") {
    Out = Layout::SoA;
    return true;
  }
  return false;
}

} // namespace sacfd

#endif // SACFD_ARRAY_LAYOUT_H
