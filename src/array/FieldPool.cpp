//===- array/FieldPool.cpp - Reusable field-buffer arena ------------------===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//

#include "array/FieldPool.h"

#include "telemetry/Telemetry.h"

#include <atomic>

namespace sacfd {

namespace detail {
unsigned nextFieldPoolTypeId() {
  static std::atomic<unsigned> Next{0};
  return Next.fetch_add(1, std::memory_order_relaxed);
}
} // namespace detail

void FieldPool::setEnabled(bool On) {
  std::lock_guard<std::mutex> Lock(M);
  if (Enabled && !On)
    drainFreeListsLocked();
  Enabled = On;
}

bool FieldPool::enabled() const {
  std::lock_guard<std::mutex> Lock(M);
  return Enabled;
}

void FieldPool::setLayout(Layout L) {
  std::lock_guard<std::mutex> Lock(M);
  FieldLayout = L;
}

Layout FieldPool::layout() const {
  std::lock_guard<std::mutex> Lock(M);
  return FieldLayout;
}

FieldPool::Stats FieldPool::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  return St;
}

void FieldPool::drainFreeListsLocked() {
  for (std::unique_ptr<SubPoolBase> &Sub : Subs)
    if (Sub)
      St.BytesResident -= Sub->drainFree();
}

void FieldPool::recordTelemetry(unsigned Step) const {
  if (!telemetry::enabled())
    return;
  static const unsigned AcqId = telemetry::gaugeId("pool.acquisitions");
  static const unsigned HitId = telemetry::gaugeId("pool.hits");
  static const unsigned ResId = telemetry::gaugeId("pool.bytes_resident");
  static const unsigned HighId = telemetry::gaugeId("pool.high_water");
  static const unsigned LayoutId = telemetry::gaugeId("pool.layout");
  Stats S = stats();
  telemetry::recordGauge(AcqId, Step, static_cast<double>(S.Acquisitions));
  telemetry::recordGauge(HitId, Step, static_cast<double>(S.Hits));
  telemetry::recordGauge(ResId, Step, static_cast<double>(S.BytesResident));
  telemetry::recordGauge(HighId, Step, static_cast<double>(S.HighWaterBytes));
  telemetry::recordGauge(LayoutId, Step, static_cast<double>(layout()));
}

} // namespace sacfd
