//===- array/NDArray.h - Owning multi-dimensional array --------*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense, owning array the SaC-style API computes with.
///
/// Element types are value types: double for scalar fields, or small
/// user-defined structs like the paper's `fluid_cv`/`fluid_pv` cell states
/// (any T with the needed arithmetic operators works inside expressions).
/// Storage is row-major and contiguous; rank is dynamic (see Shape).
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_ARRAY_NDARRAY_H
#define SACFD_ARRAY_NDARRAY_H

#include "array/AllocCounter.h"
#include "array/Shape.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace sacfd {

/// A dense row-major array of T with runtime rank and extents.
template <typename T> class NDArray {
public:
  using ValueType = T;

  /// Creates an empty rank-0 array of one (value-initialized) element.
  NDArray() : Dims({}), Data(1) {}

  /// Creates a value-initialized array of the given shape.
  explicit NDArray(Shape S) : Dims(S), Data(S.count()) {}

  /// Creates an array of the given shape filled with \p Fill.
  NDArray(Shape S, const T &Fill) : Dims(S), Data(S.count(), Fill) {}

  const Shape &shape() const { return Dims; }
  unsigned rank() const { return Dims.rank(); }
  size_t size() const { return Data.size(); }

  /// Linear (row-major) element access.
  const T &operator[](size_t Linear) const {
    assert(Linear < Data.size() && "linear index out of bounds");
    return Data[Linear];
  }
  T &operator[](size_t Linear) {
    assert(Linear < Data.size() && "linear index out of bounds");
    return Data[Linear];
  }

  /// Multi-dimensional element access.
  const T &at(const Index &Ix) const { return Data[Dims.linearize(Ix)]; }
  T &at(const Index &Ix) { return Data[Dims.linearize(Ix)]; }

  /// Rank-1 convenience access.
  const T &at(std::ptrdiff_t I) const { return at(Index{I}); }
  T &at(std::ptrdiff_t I) { return at(Index{I}); }

  /// Rank-2 convenience access.
  const T &at(std::ptrdiff_t I, std::ptrdiff_t J) const {
    return at(Index{I, J});
  }
  T &at(std::ptrdiff_t I, std::ptrdiff_t J) { return at(Index{I, J}); }

  T *data() { return Data.data(); }
  const T *data() const { return Data.data(); }

  auto begin() { return Data.begin(); }
  auto end() { return Data.end(); }
  auto begin() const { return Data.begin(); }
  auto end() const { return Data.end(); }

  /// Replaces shape and storage; contents are value-initialized.
  void reshapeDiscard(Shape S) {
    Dims = S;
    Data.assign(S.count(), T());
  }

  /// Fills every element with \p Value.
  void fill(const T &Value) {
    for (T &Elem : Data)
      Elem = Value;
  }

private:
  Shape Dims;
  // Buffer allocations are counted (see AllocCounter.h) so the
  // zero-allocation-per-step regression tests can observe them.
  std::vector<T, alloctrack::CountingAllocator<T>> Data;
};

} // namespace sacfd

#endif // SACFD_ARRAY_NDARRAY_H
