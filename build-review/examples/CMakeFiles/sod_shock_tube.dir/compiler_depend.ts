# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sod_shock_tube.
