file(REMOVE_RECURSE
  "CMakeFiles/sod_shock_tube.dir/sod_shock_tube.cpp.o"
  "CMakeFiles/sod_shock_tube.dir/sod_shock_tube.cpp.o.d"
  "sod_shock_tube"
  "sod_shock_tube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sod_shock_tube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
