# Empty compiler generated dependencies file for sod_shock_tube.
# This may be replaced when dependencies are built.
