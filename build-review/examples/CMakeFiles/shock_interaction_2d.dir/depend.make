# Empty dependencies file for shock_interaction_2d.
# This may be replaced when dependencies are built.
