file(REMOVE_RECURSE
  "CMakeFiles/shock_interaction_2d.dir/shock_interaction_2d.cpp.o"
  "CMakeFiles/shock_interaction_2d.dir/shock_interaction_2d.cpp.o.d"
  "shock_interaction_2d"
  "shock_interaction_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shock_interaction_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
