file(REMOVE_RECURSE
  "CMakeFiles/riemann_gallery.dir/riemann_gallery.cpp.o"
  "CMakeFiles/riemann_gallery.dir/riemann_gallery.cpp.o.d"
  "riemann_gallery"
  "riemann_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/riemann_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
