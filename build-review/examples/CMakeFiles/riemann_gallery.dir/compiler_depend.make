# Empty compiler generated dependencies file for riemann_gallery.
# This may be replaced when dependencies are built.
