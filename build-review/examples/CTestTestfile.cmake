# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-review/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-review/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sod_shock_tube "/root/repo/build-review/examples/sod_shock_tube" "--cells" "100" "--quiet")
set_tests_properties(example_sod_shock_tube PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sod_shock_tube_fused "/root/repo/build-review/examples/sod_shock_tube" "--cells" "100" "--quiet" "--engine" "fused" "--backend" "fork-join" "--threads" "2")
set_tests_properties(example_sod_shock_tube_fused PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_shock_interaction_2d "/root/repo/build-review/examples/shock_interaction_2d" "--cells" "32" "--time-fraction" "0.25" "--no-files")
set_tests_properties(example_shock_interaction_2d PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_riemann_gallery "/root/repo/build-review/examples/riemann_gallery" "--cells" "100")
set_tests_properties(example_riemann_gallery PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sod_guarded "/root/repo/build-review/examples/sod_shock_tube" "--cells" "100" "--quiet" "--guard" "--guard-every" "2")
set_tests_properties(example_sod_guarded PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sod_cfl10_guarded "/root/repo/build-review/examples/sod_shock_tube" "--cells" "100" "--quiet" "--cfl" "10" "--guard" "--end-time" "0.05")
set_tests_properties(example_sod_cfl10_guarded PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sod_fault_injection "/root/repo/build-review/examples/sod_shock_tube" "--cells" "100" "--quiet" "--guard" "--poison-step" "3" "--poison-cells" "2" "--end-time" "0.05")
set_tests_properties(example_sod_fault_injection PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interaction_guarded "/root/repo/build-review/examples/shock_interaction_2d" "--cells" "32" "--time-fraction" "0.25" "--no-files" "--guard")
set_tests_properties(example_interaction_guarded PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sod_telemetry "/root/repo/build-review/examples/sod_shock_tube" "--cells" "100" "--quiet" "--telemetry" "sod_smoke_telemetry.json")
set_tests_properties(example_sod_telemetry PROPERTIES  LABELS "smoke" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
