# Empty dependencies file for guard_overhead.
# This may be replaced when dependencies are built.
