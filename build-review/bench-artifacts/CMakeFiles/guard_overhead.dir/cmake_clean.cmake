file(REMOVE_RECURSE
  "../bench/guard_overhead"
  "../bench/guard_overhead.pdb"
  "CMakeFiles/guard_overhead.dir/guard_overhead.cpp.o"
  "CMakeFiles/guard_overhead.dir/guard_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guard_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
