file(REMOVE_RECURSE
  "../bench/fig5_scaling_large"
  "../bench/fig5_scaling_large.pdb"
  "CMakeFiles/fig5_scaling_large.dir/fig5_scaling_large.cpp.o"
  "CMakeFiles/fig5_scaling_large.dir/fig5_scaling_large.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_scaling_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
