# Empty dependencies file for fig5_scaling_large.
# This may be replaced when dependencies are built.
