file(REMOVE_RECURSE
  "../bench/ablation_schedule"
  "../bench/ablation_schedule.pdb"
  "CMakeFiles/ablation_schedule.dir/ablation_schedule.cpp.o"
  "CMakeFiles/ablation_schedule.dir/ablation_schedule.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
