file(REMOVE_RECURSE
  "../bench/fig4_scaling"
  "../bench/fig4_scaling.pdb"
  "CMakeFiles/fig4_scaling.dir/fig4_scaling.cpp.o"
  "CMakeFiles/fig4_scaling.dir/fig4_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
