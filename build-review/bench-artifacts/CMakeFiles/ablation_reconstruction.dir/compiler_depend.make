# Empty compiler generated dependencies file for ablation_reconstruction.
# This may be replaced when dependencies are built.
