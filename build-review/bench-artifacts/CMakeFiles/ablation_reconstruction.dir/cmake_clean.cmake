file(REMOVE_RECURSE
  "../bench/ablation_reconstruction"
  "../bench/ablation_reconstruction.pdb"
  "CMakeFiles/ablation_reconstruction.dir/ablation_reconstruction.cpp.o"
  "CMakeFiles/ablation_reconstruction.dir/ablation_reconstruction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
