file(REMOVE_RECURSE
  "../bench/ablation_fusion"
  "../bench/ablation_fusion.pdb"
  "CMakeFiles/ablation_fusion.dir/ablation_fusion.cpp.o"
  "CMakeFiles/ablation_fusion.dir/ablation_fusion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
