file(REMOVE_RECURSE
  "../bench/extra_openmp_baseline"
  "../bench/extra_openmp_baseline.pdb"
  "CMakeFiles/extra_openmp_baseline.dir/extra_openmp_baseline.cpp.o"
  "CMakeFiles/extra_openmp_baseline.dir/extra_openmp_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_openmp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
