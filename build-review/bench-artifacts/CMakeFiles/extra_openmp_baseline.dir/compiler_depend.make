# Empty compiler generated dependencies file for extra_openmp_baseline.
# This may be replaced when dependencies are built.
