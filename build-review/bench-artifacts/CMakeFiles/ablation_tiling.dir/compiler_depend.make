# Empty compiler generated dependencies file for ablation_tiling.
# This may be replaced when dependencies are built.
