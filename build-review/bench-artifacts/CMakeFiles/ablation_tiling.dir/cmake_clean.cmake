file(REMOVE_RECURSE
  "../bench/ablation_tiling"
  "../bench/ablation_tiling.pdb"
  "CMakeFiles/ablation_tiling.dir/ablation_tiling.cpp.o"
  "CMakeFiles/ablation_tiling.dir/ablation_tiling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
