# Empty dependencies file for fig3_interaction_snapshot.
# This may be replaced when dependencies are built.
