file(REMOVE_RECURSE
  "../bench/fig3_interaction_snapshot"
  "../bench/fig3_interaction_snapshot.pdb"
  "CMakeFiles/fig3_interaction_snapshot.dir/fig3_interaction_snapshot.cpp.o"
  "CMakeFiles/fig3_interaction_snapshot.dir/fig3_interaction_snapshot.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_interaction_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
