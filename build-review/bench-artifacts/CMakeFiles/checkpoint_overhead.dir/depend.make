# Empty dependencies file for checkpoint_overhead.
# This may be replaced when dependencies are built.
