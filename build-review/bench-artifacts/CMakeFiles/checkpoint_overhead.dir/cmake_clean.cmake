file(REMOVE_RECURSE
  "../bench/checkpoint_overhead"
  "../bench/checkpoint_overhead.pdb"
  "CMakeFiles/checkpoint_overhead.dir/checkpoint_overhead.cpp.o"
  "CMakeFiles/checkpoint_overhead.dir/checkpoint_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
