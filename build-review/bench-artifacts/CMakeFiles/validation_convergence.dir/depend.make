# Empty dependencies file for validation_convergence.
# This may be replaced when dependencies are built.
