file(REMOVE_RECURSE
  "../bench/validation_convergence"
  "../bench/validation_convergence.pdb"
  "CMakeFiles/validation_convergence.dir/validation_convergence.cpp.o"
  "CMakeFiles/validation_convergence.dir/validation_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
