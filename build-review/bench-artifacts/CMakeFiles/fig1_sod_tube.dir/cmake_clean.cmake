file(REMOVE_RECURSE
  "../bench/fig1_sod_tube"
  "../bench/fig1_sod_tube.pdb"
  "CMakeFiles/fig1_sod_tube.dir/fig1_sod_tube.cpp.o"
  "CMakeFiles/fig1_sod_tube.dir/fig1_sod_tube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sod_tube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
