# Empty dependencies file for fig1_sod_tube.
# This may be replaced when dependencies are built.
