file(REMOVE_RECURSE
  "../bench/telemetry_overhead"
  "../bench/telemetry_overhead.pdb"
  "CMakeFiles/telemetry_overhead.dir/telemetry_overhead.cpp.o"
  "CMakeFiles/telemetry_overhead.dir/telemetry_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
