# Empty compiler generated dependencies file for telemetry_overhead.
# This may be replaced when dependencies are built.
