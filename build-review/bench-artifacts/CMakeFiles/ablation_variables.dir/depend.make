# Empty dependencies file for ablation_variables.
# This may be replaced when dependencies are built.
