file(REMOVE_RECURSE
  "../bench/ablation_variables"
  "../bench/ablation_variables.pdb"
  "CMakeFiles/ablation_variables.dir/ablation_variables.cpp.o"
  "CMakeFiles/ablation_variables.dir/ablation_variables.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
