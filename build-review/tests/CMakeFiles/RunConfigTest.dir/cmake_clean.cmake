file(REMOVE_RECURSE
  "CMakeFiles/RunConfigTest.dir/RunConfigTest.cpp.o"
  "CMakeFiles/RunConfigTest.dir/RunConfigTest.cpp.o.d"
  "RunConfigTest"
  "RunConfigTest.pdb"
  "RunConfigTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RunConfigTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
