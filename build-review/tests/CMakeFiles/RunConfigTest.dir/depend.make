# Empty dependencies file for RunConfigTest.
# This may be replaced when dependencies are built.
