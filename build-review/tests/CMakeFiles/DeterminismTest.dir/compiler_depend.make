# Empty compiler generated dependencies file for DeterminismTest.
# This may be replaced when dependencies are built.
