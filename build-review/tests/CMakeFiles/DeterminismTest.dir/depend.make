# Empty dependencies file for DeterminismTest.
# This may be replaced when dependencies are built.
