file(REMOVE_RECURSE
  "CMakeFiles/DeterminismTest.dir/DeterminismTest.cpp.o"
  "CMakeFiles/DeterminismTest.dir/DeterminismTest.cpp.o.d"
  "DeterminismTest"
  "DeterminismTest.pdb"
  "DeterminismTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DeterminismTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
