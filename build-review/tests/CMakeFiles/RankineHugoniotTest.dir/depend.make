# Empty dependencies file for RankineHugoniotTest.
# This may be replaced when dependencies are built.
