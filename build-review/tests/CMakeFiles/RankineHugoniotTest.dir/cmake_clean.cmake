file(REMOVE_RECURSE
  "CMakeFiles/RankineHugoniotTest.dir/RankineHugoniotTest.cpp.o"
  "CMakeFiles/RankineHugoniotTest.dir/RankineHugoniotTest.cpp.o.d"
  "RankineHugoniotTest"
  "RankineHugoniotTest.pdb"
  "RankineHugoniotTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RankineHugoniotTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
