# Empty compiler generated dependencies file for TimeIntegratorTest.
# This may be replaced when dependencies are built.
