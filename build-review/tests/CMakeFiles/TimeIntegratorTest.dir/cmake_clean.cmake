file(REMOVE_RECURSE
  "CMakeFiles/TimeIntegratorTest.dir/TimeIntegratorTest.cpp.o"
  "CMakeFiles/TimeIntegratorTest.dir/TimeIntegratorTest.cpp.o.d"
  "TimeIntegratorTest"
  "TimeIntegratorTest.pdb"
  "TimeIntegratorTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TimeIntegratorTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
