# Empty compiler generated dependencies file for ConvergenceTest.
# This may be replaced when dependencies are built.
