file(REMOVE_RECURSE
  "CMakeFiles/ConvergenceTest.dir/ConvergenceTest.cpp.o"
  "CMakeFiles/ConvergenceTest.dir/ConvergenceTest.cpp.o.d"
  "ConvergenceTest"
  "ConvergenceTest.pdb"
  "ConvergenceTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ConvergenceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
