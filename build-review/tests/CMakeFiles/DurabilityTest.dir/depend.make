# Empty dependencies file for DurabilityTest.
# This may be replaced when dependencies are built.
