file(REMOVE_RECURSE
  "CMakeFiles/DurabilityTest.dir/DurabilityTest.cpp.o"
  "CMakeFiles/DurabilityTest.dir/DurabilityTest.cpp.o.d"
  "DurabilityTest"
  "DurabilityTest.pdb"
  "DurabilityTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/DurabilityTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
