file(REMOVE_RECURSE
  "CMakeFiles/ExactRiemannTest.dir/ExactRiemannTest.cpp.o"
  "CMakeFiles/ExactRiemannTest.dir/ExactRiemannTest.cpp.o.d"
  "ExactRiemannTest"
  "ExactRiemannTest.pdb"
  "ExactRiemannTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ExactRiemannTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
