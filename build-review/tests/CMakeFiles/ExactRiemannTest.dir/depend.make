# Empty dependencies file for ExactRiemannTest.
# This may be replaced when dependencies are built.
