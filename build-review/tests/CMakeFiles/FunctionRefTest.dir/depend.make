# Empty dependencies file for FunctionRefTest.
# This may be replaced when dependencies are built.
