file(REMOVE_RECURSE
  "CMakeFiles/FunctionRefTest.dir/FunctionRefTest.cpp.o"
  "CMakeFiles/FunctionRefTest.dir/FunctionRefTest.cpp.o.d"
  "FunctionRefTest"
  "FunctionRefTest.pdb"
  "FunctionRefTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FunctionRefTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
