file(REMOVE_RECURSE
  "CMakeFiles/FaultInjectionTest.dir/FaultInjectionTest.cpp.o"
  "CMakeFiles/FaultInjectionTest.dir/FaultInjectionTest.cpp.o.d"
  "FaultInjectionTest"
  "FaultInjectionTest.pdb"
  "FaultInjectionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/FaultInjectionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
