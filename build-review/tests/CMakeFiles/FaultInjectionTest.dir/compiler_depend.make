# Empty compiler generated dependencies file for FaultInjectionTest.
# This may be replaced when dependencies are built.
