file(REMOVE_RECURSE
  "CMakeFiles/StepGuardTest.dir/StepGuardTest.cpp.o"
  "CMakeFiles/StepGuardTest.dir/StepGuardTest.cpp.o.d"
  "StepGuardTest"
  "StepGuardTest.pdb"
  "StepGuardTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StepGuardTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
