# Empty compiler generated dependencies file for StepGuardTest.
# This may be replaced when dependencies are built.
