# Empty compiler generated dependencies file for CharacteristicsTest.
# This may be replaced when dependencies are built.
