file(REMOVE_RECURSE
  "CMakeFiles/CharacteristicsTest.dir/CharacteristicsTest.cpp.o"
  "CMakeFiles/CharacteristicsTest.dir/CharacteristicsTest.cpp.o.d"
  "CharacteristicsTest"
  "CharacteristicsTest.pdb"
  "CharacteristicsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CharacteristicsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
