file(REMOVE_RECURSE
  "CMakeFiles/CheckpointStoreTest.dir/CheckpointStoreTest.cpp.o"
  "CMakeFiles/CheckpointStoreTest.dir/CheckpointStoreTest.cpp.o.d"
  "CheckpointStoreTest"
  "CheckpointStoreTest.pdb"
  "CheckpointStoreTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CheckpointStoreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
