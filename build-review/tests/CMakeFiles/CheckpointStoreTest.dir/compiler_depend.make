# Empty compiler generated dependencies file for CheckpointStoreTest.
# This may be replaced when dependencies are built.
