# Empty compiler generated dependencies file for ScheduleTest.
# This may be replaced when dependencies are built.
