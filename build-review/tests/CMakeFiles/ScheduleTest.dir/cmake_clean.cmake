file(REMOVE_RECURSE
  "CMakeFiles/ScheduleTest.dir/ScheduleTest.cpp.o"
  "CMakeFiles/ScheduleTest.dir/ScheduleTest.cpp.o.d"
  "ScheduleTest"
  "ScheduleTest.pdb"
  "ScheduleTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ScheduleTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
