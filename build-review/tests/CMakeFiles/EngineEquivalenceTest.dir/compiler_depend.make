# Empty compiler generated dependencies file for EngineEquivalenceTest.
# This may be replaced when dependencies are built.
