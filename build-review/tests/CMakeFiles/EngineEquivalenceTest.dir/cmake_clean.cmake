file(REMOVE_RECURSE
  "CMakeFiles/EngineEquivalenceTest.dir/EngineEquivalenceTest.cpp.o"
  "CMakeFiles/EngineEquivalenceTest.dir/EngineEquivalenceTest.cpp.o.d"
  "EngineEquivalenceTest"
  "EngineEquivalenceTest.pdb"
  "EngineEquivalenceTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EngineEquivalenceTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
