# Empty dependencies file for EulerStateTest.
# This may be replaced when dependencies are built.
