file(REMOVE_RECURSE
  "CMakeFiles/EulerStateTest.dir/EulerStateTest.cpp.o"
  "CMakeFiles/EulerStateTest.dir/EulerStateTest.cpp.o.d"
  "EulerStateTest"
  "EulerStateTest.pdb"
  "EulerStateTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EulerStateTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
