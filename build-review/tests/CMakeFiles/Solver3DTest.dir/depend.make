# Empty dependencies file for Solver3DTest.
# This may be replaced when dependencies are built.
