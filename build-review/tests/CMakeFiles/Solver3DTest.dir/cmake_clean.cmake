file(REMOVE_RECURSE
  "CMakeFiles/Solver3DTest.dir/Solver3DTest.cpp.o"
  "CMakeFiles/Solver3DTest.dir/Solver3DTest.cpp.o.d"
  "Solver3DTest"
  "Solver3DTest.pdb"
  "Solver3DTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Solver3DTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
