file(REMOVE_RECURSE
  "CMakeFiles/Solver2DTest.dir/Solver2DTest.cpp.o"
  "CMakeFiles/Solver2DTest.dir/Solver2DTest.cpp.o.d"
  "Solver2DTest"
  "Solver2DTest.pdb"
  "Solver2DTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Solver2DTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
