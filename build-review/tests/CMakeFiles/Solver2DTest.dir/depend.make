# Empty dependencies file for Solver2DTest.
# This may be replaced when dependencies are built.
