# Empty compiler generated dependencies file for ProblemsTest.
# This may be replaced when dependencies are built.
