file(REMOVE_RECURSE
  "CMakeFiles/ProblemsTest.dir/ProblemsTest.cpp.o"
  "CMakeFiles/ProblemsTest.dir/ProblemsTest.cpp.o.d"
  "ProblemsTest"
  "ProblemsTest.pdb"
  "ProblemsTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ProblemsTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
