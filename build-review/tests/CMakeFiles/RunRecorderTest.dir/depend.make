# Empty dependencies file for RunRecorderTest.
# This may be replaced when dependencies are built.
