file(REMOVE_RECURSE
  "CMakeFiles/RunRecorderTest.dir/RunRecorderTest.cpp.o"
  "CMakeFiles/RunRecorderTest.dir/RunRecorderTest.cpp.o.d"
  "RunRecorderTest"
  "RunRecorderTest.pdb"
  "RunRecorderTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RunRecorderTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
