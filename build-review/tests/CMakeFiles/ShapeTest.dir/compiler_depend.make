# Empty compiler generated dependencies file for ShapeTest.
# This may be replaced when dependencies are built.
