file(REMOVE_RECURSE
  "CMakeFiles/ShapeTest.dir/ShapeTest.cpp.o"
  "CMakeFiles/ShapeTest.dir/ShapeTest.cpp.o.d"
  "ShapeTest"
  "ShapeTest.pdb"
  "ShapeTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ShapeTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
