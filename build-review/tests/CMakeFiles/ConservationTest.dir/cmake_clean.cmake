file(REMOVE_RECURSE
  "CMakeFiles/ConservationTest.dir/ConservationTest.cpp.o"
  "CMakeFiles/ConservationTest.dir/ConservationTest.cpp.o.d"
  "ConservationTest"
  "ConservationTest.pdb"
  "ConservationTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ConservationTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
