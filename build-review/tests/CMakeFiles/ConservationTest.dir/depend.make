# Empty dependencies file for ConservationTest.
# This may be replaced when dependencies are built.
