# Empty dependencies file for IoTest.
# This may be replaced when dependencies are built.
