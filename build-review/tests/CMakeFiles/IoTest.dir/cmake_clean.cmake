file(REMOVE_RECURSE
  "CMakeFiles/IoTest.dir/IoTest.cpp.o"
  "CMakeFiles/IoTest.dir/IoTest.cpp.o.d"
  "IoTest"
  "IoTest.pdb"
  "IoTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/IoTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
