file(REMOVE_RECURSE
  "ArrayExprTest"
  "ArrayExprTest.pdb"
  "ArrayExprTest[1]_tests.cmake"
  "CMakeFiles/ArrayExprTest.dir/ArrayExprTest.cpp.o"
  "CMakeFiles/ArrayExprTest.dir/ArrayExprTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ArrayExprTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
