# Empty dependencies file for ArrayExprTest.
# This may be replaced when dependencies are built.
