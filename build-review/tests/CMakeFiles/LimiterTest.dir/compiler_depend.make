# Empty compiler generated dependencies file for LimiterTest.
# This may be replaced when dependencies are built.
