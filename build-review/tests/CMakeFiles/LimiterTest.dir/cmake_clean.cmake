file(REMOVE_RECURSE
  "CMakeFiles/LimiterTest.dir/LimiterTest.cpp.o"
  "CMakeFiles/LimiterTest.dir/LimiterTest.cpp.o.d"
  "LimiterTest"
  "LimiterTest.pdb"
  "LimiterTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/LimiterTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
