file(REMOVE_RECURSE
  "CMakeFiles/GridTest.dir/GridTest.cpp.o"
  "CMakeFiles/GridTest.dir/GridTest.cpp.o.d"
  "GridTest"
  "GridTest.pdb"
  "GridTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/GridTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
