# Empty dependencies file for GridTest.
# This may be replaced when dependencies are built.
