# Empty compiler generated dependencies file for Solver1DTest.
# This may be replaced when dependencies are built.
