file(REMOVE_RECURSE
  "CMakeFiles/Solver1DTest.dir/Solver1DTest.cpp.o"
  "CMakeFiles/Solver1DTest.dir/Solver1DTest.cpp.o.d"
  "Solver1DTest"
  "Solver1DTest.pdb"
  "Solver1DTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Solver1DTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
