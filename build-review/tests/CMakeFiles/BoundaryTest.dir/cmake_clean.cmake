file(REMOVE_RECURSE
  "BoundaryTest"
  "BoundaryTest.pdb"
  "BoundaryTest[1]_tests.cmake"
  "CMakeFiles/BoundaryTest.dir/BoundaryTest.cpp.o"
  "CMakeFiles/BoundaryTest.dir/BoundaryTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/BoundaryTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
