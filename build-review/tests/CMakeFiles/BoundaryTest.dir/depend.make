# Empty dependencies file for BoundaryTest.
# This may be replaced when dependencies are built.
