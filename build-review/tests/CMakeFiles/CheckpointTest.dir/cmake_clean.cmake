file(REMOVE_RECURSE
  "CMakeFiles/CheckpointTest.dir/CheckpointTest.cpp.o"
  "CMakeFiles/CheckpointTest.dir/CheckpointTest.cpp.o.d"
  "CheckpointTest"
  "CheckpointTest.pdb"
  "CheckpointTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/CheckpointTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
