# Empty compiler generated dependencies file for CheckpointTest.
# This may be replaced when dependencies are built.
