# Empty dependencies file for ReconstructionTest.
# This may be replaced when dependencies are built.
