file(REMOVE_RECURSE
  "CMakeFiles/ReconstructionTest.dir/ReconstructionTest.cpp.o"
  "CMakeFiles/ReconstructionTest.dir/ReconstructionTest.cpp.o.d"
  "ReconstructionTest"
  "ReconstructionTest.pdb"
  "ReconstructionTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ReconstructionTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
