# Empty dependencies file for ArrayRank3Test.
# This may be replaced when dependencies are built.
