file(REMOVE_RECURSE
  "ArrayRank3Test"
  "ArrayRank3Test.pdb"
  "ArrayRank3Test[1]_tests.cmake"
  "CMakeFiles/ArrayRank3Test.dir/ArrayRank3Test.cpp.o"
  "CMakeFiles/ArrayRank3Test.dir/ArrayRank3Test.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ArrayRank3Test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
