file(REMOVE_RECURSE
  "CMakeFiles/RiemannSolverTest.dir/RiemannSolverTest.cpp.o"
  "CMakeFiles/RiemannSolverTest.dir/RiemannSolverTest.cpp.o.d"
  "RiemannSolverTest"
  "RiemannSolverTest.pdb"
  "RiemannSolverTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RiemannSolverTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
