# Empty dependencies file for RiemannSolverTest.
# This may be replaced when dependencies are built.
