file(REMOVE_RECURSE
  "CMakeFiles/WithLoopTest.dir/WithLoopTest.cpp.o"
  "CMakeFiles/WithLoopTest.dir/WithLoopTest.cpp.o.d"
  "WithLoopTest"
  "WithLoopTest.pdb"
  "WithLoopTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/WithLoopTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
