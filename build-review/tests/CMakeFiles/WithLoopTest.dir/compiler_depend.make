# Empty compiler generated dependencies file for WithLoopTest.
# This may be replaced when dependencies are built.
