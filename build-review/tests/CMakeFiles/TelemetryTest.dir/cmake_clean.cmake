file(REMOVE_RECURSE
  "CMakeFiles/TelemetryTest.dir/TelemetryTest.cpp.o"
  "CMakeFiles/TelemetryTest.dir/TelemetryTest.cpp.o.d"
  "TelemetryTest"
  "TelemetryTest.pdb"
  "TelemetryTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TelemetryTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
