# Empty dependencies file for TelemetryTest.
# This may be replaced when dependencies are built.
