file(REMOVE_RECURSE
  "CMakeFiles/RiemannPropertyTest.dir/RiemannPropertyTest.cpp.o"
  "CMakeFiles/RiemannPropertyTest.dir/RiemannPropertyTest.cpp.o.d"
  "RiemannPropertyTest"
  "RiemannPropertyTest.pdb"
  "RiemannPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/RiemannPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
