# Empty dependencies file for RiemannPropertyTest.
# This may be replaced when dependencies are built.
