# Empty dependencies file for Backend2DTest.
# This may be replaced when dependencies are built.
