file(REMOVE_RECURSE
  "Backend2DTest"
  "Backend2DTest.pdb"
  "Backend2DTest[1]_tests.cmake"
  "CMakeFiles/Backend2DTest.dir/Backend2DTest.cpp.o"
  "CMakeFiles/Backend2DTest.dir/Backend2DTest.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/Backend2DTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
