# Empty compiler generated dependencies file for sacfd_euler.
# This may be replaced when dependencies are built.
