file(REMOVE_RECURSE
  "libsacfd_euler.a"
)
