file(REMOVE_RECURSE
  "CMakeFiles/sacfd_euler.dir/ExactRiemann.cpp.o"
  "CMakeFiles/sacfd_euler.dir/ExactRiemann.cpp.o.d"
  "CMakeFiles/sacfd_euler.dir/RankineHugoniot.cpp.o"
  "CMakeFiles/sacfd_euler.dir/RankineHugoniot.cpp.o.d"
  "libsacfd_euler.a"
  "libsacfd_euler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
