# Empty dependencies file for sacfd_io.
# This may be replaced when dependencies are built.
