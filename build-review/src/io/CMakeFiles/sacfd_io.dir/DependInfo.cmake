
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/AsciiPlot.cpp" "src/io/CMakeFiles/sacfd_io.dir/AsciiPlot.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/AsciiPlot.cpp.o.d"
  "/root/repo/src/io/Checkpoint.cpp" "src/io/CMakeFiles/sacfd_io.dir/Checkpoint.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/Checkpoint.cpp.o.d"
  "/root/repo/src/io/CheckpointStore.cpp" "src/io/CMakeFiles/sacfd_io.dir/CheckpointStore.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/CheckpointStore.cpp.o.d"
  "/root/repo/src/io/CsvWriter.cpp" "src/io/CMakeFiles/sacfd_io.dir/CsvWriter.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/CsvWriter.cpp.o.d"
  "/root/repo/src/io/FieldExport.cpp" "src/io/CMakeFiles/sacfd_io.dir/FieldExport.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/FieldExport.cpp.o.d"
  "/root/repo/src/io/PgmWriter.cpp" "src/io/CMakeFiles/sacfd_io.dir/PgmWriter.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/PgmWriter.cpp.o.d"
  "/root/repo/src/io/TelemetryExport.cpp" "src/io/CMakeFiles/sacfd_io.dir/TelemetryExport.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/TelemetryExport.cpp.o.d"
  "/root/repo/src/io/VtkWriter.cpp" "src/io/CMakeFiles/sacfd_io.dir/VtkWriter.cpp.o" "gcc" "src/io/CMakeFiles/sacfd_io.dir/VtkWriter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/solver/CMakeFiles/sacfd_solver.dir/DependInfo.cmake"
  "/root/repo/build-review/src/array/CMakeFiles/sacfd_array.dir/DependInfo.cmake"
  "/root/repo/build-review/src/numerics/CMakeFiles/sacfd_numerics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/euler/CMakeFiles/sacfd_euler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/sacfd_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/sacfd_telemetry.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/sacfd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
