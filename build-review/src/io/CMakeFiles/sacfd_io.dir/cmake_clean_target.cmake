file(REMOVE_RECURSE
  "libsacfd_io.a"
)
