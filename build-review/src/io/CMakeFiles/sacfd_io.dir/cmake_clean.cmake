file(REMOVE_RECURSE
  "CMakeFiles/sacfd_io.dir/AsciiPlot.cpp.o"
  "CMakeFiles/sacfd_io.dir/AsciiPlot.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/Checkpoint.cpp.o"
  "CMakeFiles/sacfd_io.dir/Checkpoint.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/CheckpointStore.cpp.o"
  "CMakeFiles/sacfd_io.dir/CheckpointStore.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/CsvWriter.cpp.o"
  "CMakeFiles/sacfd_io.dir/CsvWriter.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/FieldExport.cpp.o"
  "CMakeFiles/sacfd_io.dir/FieldExport.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/PgmWriter.cpp.o"
  "CMakeFiles/sacfd_io.dir/PgmWriter.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/TelemetryExport.cpp.o"
  "CMakeFiles/sacfd_io.dir/TelemetryExport.cpp.o.d"
  "CMakeFiles/sacfd_io.dir/VtkWriter.cpp.o"
  "CMakeFiles/sacfd_io.dir/VtkWriter.cpp.o.d"
  "libsacfd_io.a"
  "libsacfd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
