file(REMOVE_RECURSE
  "libsacfd_array.a"
)
