# Empty dependencies file for sacfd_array.
# This may be replaced when dependencies are built.
