file(REMOVE_RECURSE
  "CMakeFiles/sacfd_array.dir/Shape.cpp.o"
  "CMakeFiles/sacfd_array.dir/Shape.cpp.o.d"
  "libsacfd_array.a"
  "libsacfd_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
