# Empty dependencies file for sacfd_support.
# This may be replaced when dependencies are built.
