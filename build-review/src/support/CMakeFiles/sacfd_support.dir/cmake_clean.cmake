file(REMOVE_RECURSE
  "CMakeFiles/sacfd_support.dir/CommandLine.cpp.o"
  "CMakeFiles/sacfd_support.dir/CommandLine.cpp.o.d"
  "CMakeFiles/sacfd_support.dir/Env.cpp.o"
  "CMakeFiles/sacfd_support.dir/Env.cpp.o.d"
  "CMakeFiles/sacfd_support.dir/Error.cpp.o"
  "CMakeFiles/sacfd_support.dir/Error.cpp.o.d"
  "CMakeFiles/sacfd_support.dir/FaultInjection.cpp.o"
  "CMakeFiles/sacfd_support.dir/FaultInjection.cpp.o.d"
  "CMakeFiles/sacfd_support.dir/StrUtil.cpp.o"
  "CMakeFiles/sacfd_support.dir/StrUtil.cpp.o.d"
  "CMakeFiles/sacfd_support.dir/Timer.cpp.o"
  "CMakeFiles/sacfd_support.dir/Timer.cpp.o.d"
  "libsacfd_support.a"
  "libsacfd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
