
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/CommandLine.cpp" "src/support/CMakeFiles/sacfd_support.dir/CommandLine.cpp.o" "gcc" "src/support/CMakeFiles/sacfd_support.dir/CommandLine.cpp.o.d"
  "/root/repo/src/support/Env.cpp" "src/support/CMakeFiles/sacfd_support.dir/Env.cpp.o" "gcc" "src/support/CMakeFiles/sacfd_support.dir/Env.cpp.o.d"
  "/root/repo/src/support/Error.cpp" "src/support/CMakeFiles/sacfd_support.dir/Error.cpp.o" "gcc" "src/support/CMakeFiles/sacfd_support.dir/Error.cpp.o.d"
  "/root/repo/src/support/FaultInjection.cpp" "src/support/CMakeFiles/sacfd_support.dir/FaultInjection.cpp.o" "gcc" "src/support/CMakeFiles/sacfd_support.dir/FaultInjection.cpp.o.d"
  "/root/repo/src/support/StrUtil.cpp" "src/support/CMakeFiles/sacfd_support.dir/StrUtil.cpp.o" "gcc" "src/support/CMakeFiles/sacfd_support.dir/StrUtil.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "src/support/CMakeFiles/sacfd_support.dir/Timer.cpp.o" "gcc" "src/support/CMakeFiles/sacfd_support.dir/Timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
