file(REMOVE_RECURSE
  "libsacfd_support.a"
)
