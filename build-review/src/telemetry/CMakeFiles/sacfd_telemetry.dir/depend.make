# Empty dependencies file for sacfd_telemetry.
# This may be replaced when dependencies are built.
