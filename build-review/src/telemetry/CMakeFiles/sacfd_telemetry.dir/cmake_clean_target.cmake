file(REMOVE_RECURSE
  "libsacfd_telemetry.a"
)
