file(REMOVE_RECURSE
  "CMakeFiles/sacfd_telemetry.dir/Telemetry.cpp.o"
  "CMakeFiles/sacfd_telemetry.dir/Telemetry.cpp.o.d"
  "libsacfd_telemetry.a"
  "libsacfd_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
