# Empty compiler generated dependencies file for sacfd_numerics.
# This may be replaced when dependencies are built.
