file(REMOVE_RECURSE
  "libsacfd_numerics.a"
)
