
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/Reconstruction.cpp" "src/numerics/CMakeFiles/sacfd_numerics.dir/Reconstruction.cpp.o" "gcc" "src/numerics/CMakeFiles/sacfd_numerics.dir/Reconstruction.cpp.o.d"
  "/root/repo/src/numerics/RiemannSolvers.cpp" "src/numerics/CMakeFiles/sacfd_numerics.dir/RiemannSolvers.cpp.o" "gcc" "src/numerics/CMakeFiles/sacfd_numerics.dir/RiemannSolvers.cpp.o.d"
  "/root/repo/src/numerics/TimeIntegrators.cpp" "src/numerics/CMakeFiles/sacfd_numerics.dir/TimeIntegrators.cpp.o" "gcc" "src/numerics/CMakeFiles/sacfd_numerics.dir/TimeIntegrators.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/euler/CMakeFiles/sacfd_euler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/sacfd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
