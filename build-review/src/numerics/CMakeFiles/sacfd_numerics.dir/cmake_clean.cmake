file(REMOVE_RECURSE
  "CMakeFiles/sacfd_numerics.dir/Reconstruction.cpp.o"
  "CMakeFiles/sacfd_numerics.dir/Reconstruction.cpp.o.d"
  "CMakeFiles/sacfd_numerics.dir/RiemannSolvers.cpp.o"
  "CMakeFiles/sacfd_numerics.dir/RiemannSolvers.cpp.o.d"
  "CMakeFiles/sacfd_numerics.dir/TimeIntegrators.cpp.o"
  "CMakeFiles/sacfd_numerics.dir/TimeIntegrators.cpp.o.d"
  "libsacfd_numerics.a"
  "libsacfd_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
