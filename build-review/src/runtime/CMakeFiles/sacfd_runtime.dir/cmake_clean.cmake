file(REMOVE_RECURSE
  "CMakeFiles/sacfd_runtime.dir/Backend.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/Backend.cpp.o.d"
  "CMakeFiles/sacfd_runtime.dir/ForkJoinBackend.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/ForkJoinBackend.cpp.o.d"
  "CMakeFiles/sacfd_runtime.dir/OmpBackend.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/OmpBackend.cpp.o.d"
  "CMakeFiles/sacfd_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/Runtime.cpp.o.d"
  "CMakeFiles/sacfd_runtime.dir/Schedule.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/Schedule.cpp.o.d"
  "CMakeFiles/sacfd_runtime.dir/SerialBackend.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/SerialBackend.cpp.o.d"
  "CMakeFiles/sacfd_runtime.dir/SpinBarrierPool.cpp.o"
  "CMakeFiles/sacfd_runtime.dir/SpinBarrierPool.cpp.o.d"
  "libsacfd_runtime.a"
  "libsacfd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
