
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Backend.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/Backend.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/Backend.cpp.o.d"
  "/root/repo/src/runtime/ForkJoinBackend.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/ForkJoinBackend.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/ForkJoinBackend.cpp.o.d"
  "/root/repo/src/runtime/OmpBackend.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/OmpBackend.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/OmpBackend.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/Runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/Runtime.cpp.o.d"
  "/root/repo/src/runtime/Schedule.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/Schedule.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/Schedule.cpp.o.d"
  "/root/repo/src/runtime/SerialBackend.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/SerialBackend.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/SerialBackend.cpp.o.d"
  "/root/repo/src/runtime/SpinBarrierPool.cpp" "src/runtime/CMakeFiles/sacfd_runtime.dir/SpinBarrierPool.cpp.o" "gcc" "src/runtime/CMakeFiles/sacfd_runtime.dir/SpinBarrierPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/support/CMakeFiles/sacfd_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/sacfd_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
