file(REMOVE_RECURSE
  "libsacfd_runtime.a"
)
