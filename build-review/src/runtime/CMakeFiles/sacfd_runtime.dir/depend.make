# Empty dependencies file for sacfd_runtime.
# This may be replaced when dependencies are built.
