file(REMOVE_RECURSE
  "CMakeFiles/sacfd_solver.dir/Problems.cpp.o"
  "CMakeFiles/sacfd_solver.dir/Problems.cpp.o.d"
  "CMakeFiles/sacfd_solver.dir/RunConfig.cpp.o"
  "CMakeFiles/sacfd_solver.dir/RunConfig.cpp.o.d"
  "libsacfd_solver.a"
  "libsacfd_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sacfd_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
