file(REMOVE_RECURSE
  "libsacfd_solver.a"
)
