# Empty compiler generated dependencies file for sacfd_solver.
# This may be replaced when dependencies are built.
