
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/Problems.cpp" "src/solver/CMakeFiles/sacfd_solver.dir/Problems.cpp.o" "gcc" "src/solver/CMakeFiles/sacfd_solver.dir/Problems.cpp.o.d"
  "/root/repo/src/solver/RunConfig.cpp" "src/solver/CMakeFiles/sacfd_solver.dir/RunConfig.cpp.o" "gcc" "src/solver/CMakeFiles/sacfd_solver.dir/RunConfig.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/array/CMakeFiles/sacfd_array.dir/DependInfo.cmake"
  "/root/repo/build-review/src/euler/CMakeFiles/sacfd_euler.dir/DependInfo.cmake"
  "/root/repo/build-review/src/numerics/CMakeFiles/sacfd_numerics.dir/DependInfo.cmake"
  "/root/repo/build-review/src/runtime/CMakeFiles/sacfd_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/support/CMakeFiles/sacfd_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/telemetry/CMakeFiles/sacfd_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
