//===- bench/fig5_scaling_large.cpp - Section 5 large-grid sweep ----------===//
//
// EXT5: the paper's prose extension of Fig. 4 — "When the same benchmark
// was run with a larger 2000x2000 grid we discovered that Fortran was
// able to scale slightly with small numbers of cores but after just five
// cores it started to suffer from the overheads of inter-thread
// communication again."  Larger grain per parallel region, same
// measurement harness.
//
// Scaled default; --full for 2000x2000.
//
//===----------------------------------------------------------------------===//

#include "ScalingHarness.h"

#include "support/CommandLine.h"
#include "support/StrUtil.h"

using namespace sacfd;

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 384;
  unsigned Steps = 12;
  unsigned Repeats = 1;
  std::string Threads = "1,2,4";

  ScalingOptions Opt;
  Opt.Base.Scheme = SchemeConfig::benchmarkScheme();
  CommandLine CL("fig5_scaling_large",
                 "EXT5: the 2000x2000 variant of the Fig. 4 sweep "
                 "(larger per-region grain)");
  CL.addFlag("full", Full, "run the paper-scale 2000x2000 grid");
  CL.addInt("cells", Cells, "grid cells per axis (scaled default)");
  CL.addUnsigned("steps", Steps, "time steps");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addString("threads", Threads, "comma-separated thread counts");
  CL.addString("model", Opt.Model,
               "restrict the sweep to one model: sac or fortran");
  // Engine/backend/threads are what the sweep varies, so only the other
  // RunConfig groups are exposed.
  Opt.Base.registerScheduleFlags(CL);
  Opt.Base.registerGuardFlags(CL);
  Opt.Base.registerTelemetryFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  Opt.Base.resolveOrExit();

  Opt.ExperimentId = "EXT5";
  Opt.Cells = Full ? 2000 : static_cast<size_t>(Cells);
  Opt.Steps = Full ? 100 : Steps;
  Opt.Repeats = Repeats;
  if (Full)
    Threads = "1,2,4,5,8,16";
  for (const std::string &Part : split(Threads, ','))
    if (auto N = parseInt(Part); N && *N > 0)
      Opt.ThreadCounts.push_back(static_cast<unsigned>(*N));
  if (Opt.ThreadCounts.empty())
    Opt.ThreadCounts = {1, 2, 4};

  return runScalingExperiment(Opt);
}
