//===- bench/ScalingHarness.h - Fig. 4 measurement harness -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the thread-scaling experiments (paper Fig. 4 and the
/// Section 5 2000x2000 sweep): runs the 2D shock-interaction workload for
/// a fixed number of time steps on each (engine, backend, threads)
/// configuration and prints one row per run.
///
/// Engine/backend pairing follows the paper's comparison:
///   sac      ArraySolver  on SpinBarrierPool (persistent pool, spin sync)
///   fortran  FusedSolver  on ForkJoinBackend (thread team per loop)
/// plus the serial single-core reference for both engines.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_BENCH_SCALINGHARNESS_H
#define SACFD_BENCH_SCALINGHARNESS_H

#include "io/TelemetryExport.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "solver/StepGuard.h"
#include "support/Env.h"
#include "support/Timer.h"
#include "telemetry/TelemetryOptions.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace sacfd {

struct ScalingOptions {
  const char *ExperimentId;
  size_t Cells;        ///< grid cells per axis
  unsigned Steps;      ///< fixed time steps (paper: 1000)
  unsigned Repeats;    ///< timing repetitions, min is reported
  std::vector<unsigned> ThreadCounts;
  /// Wrap every run in a StepGuard (default policy).  Healthy runs stay
  /// bit-identical; the scan cost becomes part of the measurement.
  bool Guarded = false;
  /// Restrict the sweep to one model ("sac" or "fortran"; empty = both).
  /// With --telemetry this keeps the solver-stage spans single-engine.
  std::string Model;
  /// Telemetry report: --telemetry path + --telemetry-every stride.
  TelemetryCliOptions Telemetry;
};

/// One configuration's measurement.
struct ScalingRow {
  std::string Model; ///< "sac" or "fortran"
  unsigned Threads;
  double Seconds;
};

inline double runOneScalingConfig(const ScalingOptions &Opt, bool SacModel,
                                  unsigned Threads,
                                  double *RegionsPerStep = nullptr) {
  TimingSamples Samples;
  for (unsigned Rep = 0; Rep < Opt.Repeats; ++Rep) {
    // dx = 1 at every size, like the paper's 400x400 reference grid.
    Problem<2> Prob = shockInteraction2D(
        Opt.Cells, 2.2, static_cast<double>(Opt.Cells) / 2.0);
    SchemeConfig Scheme = SchemeConfig::benchmarkScheme();

    std::unique_ptr<Backend> Exec =
        Threads <= 1
            ? createBackend(BackendKind::Serial, 1)
            : createBackend(SacModel ? BackendKind::SpinPool
                                     : BackendKind::ForkJoin,
                            Threads);

    std::unique_ptr<EulerSolver<2>> Solver;
    if (SacModel)
      Solver = std::make_unique<ArraySolver<2>>(Prob, Scheme, *Exec);
    else
      Solver = std::make_unique<FusedSolver<2>>(Prob, Scheme, *Exec);

    WallTimer Timer;
    if (Opt.Guarded) {
      StepGuard<2> Guard(*Solver, GuardConfig{});
      Guard.advanceSteps(Opt.Steps);
    } else {
      Solver->advanceSteps(Opt.Steps);
    }
    Samples.add(Timer.seconds());

    if (RegionsPerStep)
      *RegionsPerStep = static_cast<double>(Exec->regionsDispatched()) /
                        static_cast<double>(Opt.Steps);

    FieldHealth<2> H = fieldHealth(*Solver);
    if (!H.AllFinite)
      std::fprintf(stderr, "warning: %s run lost finiteness\n",
                   SacModel ? "sac" : "fortran");
  }
  return Samples.min();
}

/// Runs the full sweep and prints the Fig. 4 table.
inline int runScalingExperiment(const ScalingOptions &Opt) {
  Opt.Telemetry.apply();
  std::printf("# %s: wall clock of a %u-step simulation on a %zux%zu "
              "grid (RK3 + piecewise-constant reconstruction)%s\n",
              Opt.ExperimentId, Opt.Steps, Opt.Cells, Opt.Cells,
              Opt.Guarded ? ", step-guarded" : "");
  std::printf("# models: sac = array solver on persistent spin pool; "
              "fortran = fused solver on per-loop fork-join\n");
  std::printf("# host hardware threads: %u (thread counts beyond this "
              "measure oversubscribed dispatch overhead only)\n",
              hardwareThreadCount());
  std::printf("%-8s %8s %12s %14s\n", "model", "threads", "wall[s]",
              "vs fortran@1");

  double FortranBase = 0.0;
  std::vector<ScalingRow> Rows;
  double RegionsPerStep[2] = {0.0, 0.0};
  if (!Opt.Model.empty() && Opt.Model != "sac" && Opt.Model != "fortran") {
    std::fprintf(stderr, "error: unknown model '%s' (sac or fortran)\n",
                 Opt.Model.c_str());
    return 1;
  }
  for (bool SacModel : {false, true}) {
    if (!Opt.Model.empty() && Opt.Model != (SacModel ? "sac" : "fortran"))
      continue;
    for (unsigned T : Opt.ThreadCounts) {
      double Seconds = runOneScalingConfig(Opt, SacModel, T,
                                           &RegionsPerStep[SacModel]);
      Rows.push_back({SacModel ? "sac" : "fortran", T, Seconds});
      if (!SacModel && T == Opt.ThreadCounts.front())
        FortranBase = Seconds;
    }
  }
  std::printf("# parallel regions per time step: fortran %.1f, sac %.1f "
              "(each pays one dispatch; the models differ in its cost)\n",
              RegionsPerStep[0], RegionsPerStep[1]);

  for (const ScalingRow &Row : Rows)
    std::printf("%-8s %8u %12.3f %14.2f\n", Row.Model.c_str(), Row.Threads,
                Row.Seconds,
                FortranBase > 0.0 ? Row.Seconds / FortranBase : 0.0);

  if (Opt.Telemetry.enabled()) {
    // One report for the whole sweep: a T=1 entry contributes the
    // region.serial spans, the sac legs region.spin_pool, the fortran
    // legs region.fork_join.
    std::string ThreadList;
    for (unsigned T : Opt.ThreadCounts)
      ThreadList += (ThreadList.empty() ? "" : ",") + std::to_string(T);
    TelemetryMeta Meta = {
        {"program", Opt.ExperimentId},
        {"cells", std::to_string(Opt.Cells)},
        {"steps", std::to_string(Opt.Steps)},
        {"threads", ThreadList},
        {"guard", Opt.Guarded ? "on" : "off"},
    };
    if (!writeTelemetryJson(Opt.Telemetry.Path, telemetry::snapshot(),
                            Meta)) {
      std::fprintf(stderr, "error: cannot write telemetry JSON to %s\n",
                   Opt.Telemetry.Path.c_str());
      return 1;
    }
    std::printf("# telemetry written to %s\n", Opt.Telemetry.Path.c_str());
  }
  return 0;
}

} // namespace sacfd

#endif // SACFD_BENCH_SCALINGHARNESS_H
