//===- bench/ScalingHarness.h - Fig. 4 measurement harness -----*- C++ -*-===//
//
// Part of SacFD, a reproduction of "Numerical Simulations of Unsteady Shock
// Wave Interactions Using SaC and Fortran-90" (PaCT 2009).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the thread-scaling experiments (paper Fig. 4 and the
/// Section 5 2000x2000 sweep): runs the 2D shock-interaction workload for
/// a fixed number of time steps on each (engine, backend, threads)
/// configuration and prints one row per run.
///
/// Engine/backend pairing follows the paper's comparison:
///   sac      ArraySolver  on SpinBarrierPool (persistent pool, spin sync)
///   fortran  FusedSolver  on ForkJoinBackend (thread team per loop)
/// plus the serial single-core reference for both engines.
///
/// Every leg is built through the RunConfig/SolverFactory surface: the
/// harness overrides engine/backend/threads per leg and inherits the
/// rest — scheme, schedule/tile, guard, telemetry — from Opt.Base, so
/// the sweep honors --tile/--schedule/--guard exactly like the tools.
///
//===----------------------------------------------------------------------===//

#ifndef SACFD_BENCH_SCALINGHARNESS_H
#define SACFD_BENCH_SCALINGHARNESS_H

#include "io/TelemetryExport.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/Env.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

namespace sacfd {

struct ScalingOptions {
  const char *ExperimentId;
  size_t Cells;        ///< grid cells per axis
  unsigned Steps;      ///< fixed time steps (paper: 1000)
  unsigned Repeats;    ///< timing repetitions, min is reported
  std::vector<unsigned> ThreadCounts;
  /// Restrict the sweep to one model ("sac" or "fortran"; empty = both).
  /// With --telemetry this keeps the solver-stage spans single-engine.
  std::string Model;
  /// Everything else a run is shaped by — scheme, schedule/tile, guard,
  /// telemetry.  The sweep overrides Engine/Backend/Threads per leg.
  RunConfig Base;
};

/// One configuration's measurement.
struct ScalingRow {
  std::string Model; ///< "sac" or "fortran"
  unsigned Threads;
  double Seconds;
};

inline double runOneScalingConfig(const ScalingOptions &Opt, bool SacModel,
                                  unsigned Threads,
                                  double *RegionsPerStep = nullptr) {
  TimingSamples Samples;
  for (unsigned Rep = 0; Rep < Opt.Repeats; ++Rep) {
    // dx = 1 at every size, like the paper's 400x400 reference grid.
    // --scenario (when the bench registered it) swaps in any 2D gallery
    // workload at the sweep resolution instead.
    Problem<2> Prob = resolveProblem(
        shockInteraction2D(Opt.Cells, 2.2,
                           static_cast<double>(Opt.Cells) / 2.0),
        Opt.Base);

    RunConfig Cfg = Opt.Base;
    Cfg.Engine = SacModel ? EngineKind::Array : EngineKind::Fused;
    Cfg.Backend = Threads <= 1 ? BackendKind::Serial
                               : (SacModel ? BackendKind::SpinPool
                                           : BackendKind::ForkJoin);
    Cfg.Threads = Threads <= 1 ? 1 : Threads;
    SolverRun<2> Run = makeSolverRun(Prob, Cfg);

    WallTimer Timer;
    Run.advanceSteps(Opt.Steps);
    Samples.add(Timer.seconds());

    if (RegionsPerStep)
      *RegionsPerStep =
          static_cast<double>(Run.backend().regionsDispatched()) /
          static_cast<double>(Opt.Steps);

    FieldHealth<2> H = fieldHealth(Run.solver());
    if (!H.AllFinite)
      std::fprintf(stderr, "warning: %s run lost finiteness\n",
                   SacModel ? "sac" : "fortran");
  }
  return Samples.min();
}

/// Runs the full sweep and prints the Fig. 4 table.
inline int runScalingExperiment(const ScalingOptions &Opt) {
  bool Guarded = Opt.Base.Guard.Enabled;
  std::printf("# %s: wall clock of a %u-step simulation on a %zux%zu "
              "grid (RK3 + piecewise-constant reconstruction)%s\n",
              Opt.ExperimentId, Opt.Steps, Opt.Cells, Opt.Cells,
              Guarded ? ", step-guarded" : "");
  std::printf("# models: sac = array solver on persistent spin pool; "
              "fortran = fused solver on per-loop fork-join\n");
  if (Opt.Base.TileCfg.Enabled)
    std::printf("# 2D tiling: %s, dealing %s\n",
                Opt.Base.TileCfg.str().c_str(),
                Opt.Base.TileCfg.Dealing.str().c_str());
  std::printf("# host hardware threads: %u (thread counts beyond this "
              "measure oversubscribed dispatch overhead only)\n",
              hardwareThreadCount());
  std::printf("%-8s %8s %12s %14s\n", "model", "threads", "wall[s]",
              "vs fortran@1");

  double FortranBase = 0.0;
  std::vector<ScalingRow> Rows;
  double RegionsPerStep[2] = {0.0, 0.0};
  if (!Opt.Model.empty() && Opt.Model != "sac" && Opt.Model != "fortran") {
    std::fprintf(stderr, "error: unknown model '%s' (sac or fortran)\n",
                 Opt.Model.c_str());
    return 1;
  }
  for (bool SacModel : {false, true}) {
    if (!Opt.Model.empty() && Opt.Model != (SacModel ? "sac" : "fortran"))
      continue;
    for (unsigned T : Opt.ThreadCounts) {
      double Seconds = runOneScalingConfig(Opt, SacModel, T,
                                           &RegionsPerStep[SacModel]);
      Rows.push_back({SacModel ? "sac" : "fortran", T, Seconds});
      if (!SacModel && T == Opt.ThreadCounts.front())
        FortranBase = Seconds;
    }
  }
  std::printf("# parallel regions per time step: fortran %.1f, sac %.1f "
              "(each pays one dispatch; the models differ in its cost)\n",
              RegionsPerStep[0], RegionsPerStep[1]);

  for (const ScalingRow &Row : Rows)
    std::printf("%-8s %8u %12.3f %14.2f\n", Row.Model.c_str(), Row.Threads,
                Row.Seconds,
                FortranBase > 0.0 ? Row.Seconds / FortranBase : 0.0);

  if (Opt.Base.Telemetry.enabled()) {
    // One report for the whole sweep: a T=1 entry contributes the
    // region.serial spans, the sac legs region.spin_pool, the fortran
    // legs region.fork_join.
    std::string ThreadList;
    for (unsigned T : Opt.ThreadCounts)
      ThreadList += (ThreadList.empty() ? "" : ",") + std::to_string(T);
    TelemetryMeta Meta = {
        {"program", Opt.ExperimentId},
        {"cells", std::to_string(Opt.Cells)},
        {"steps", std::to_string(Opt.Steps)},
        {"threads", ThreadList},
        {"schedule", Opt.Base.Sched.str()},
        {"tile", Opt.Base.TileCfg.str()},
        {"guard", Guarded ? "on" : "off"},
    };
    if (!writeTelemetryJson(Opt.Base.Telemetry.Path, telemetry::snapshot(),
                            Meta)) {
      std::fprintf(stderr, "error: cannot write telemetry JSON to %s\n",
                   Opt.Base.Telemetry.Path.c_str());
      return 1;
    }
    std::printf("# telemetry written to %s\n",
                Opt.Base.Telemetry.Path.c_str());
  }
  return 0;
}

} // namespace sacfd

#endif // SACFD_BENCH_SCALINGHARNESS_H
