//===- bench/fig4_scaling.cpp - Paper Fig. 4 reproduction -----------------===//
//
// FIG4: "Wall clock time of a 1000 time step simulation on a 400x400
// grid" — SaC (persistent spin pool) vs Fortran (per-loop fork-join)
// across thread counts, third-order TVD Runge-Kutta + first-order
// piecewise-constant reconstruction (Section 5).
//
// The default run is scaled down so the whole bench suite completes in
// minutes on one core; pass --full for the paper-scale parameters.
// Expected shape (paper): the fortran model is fastest at 1 thread and
// its wall clock GROWS with the thread count at this grain size (per-loop
// thread management overhead), while the sac model starts slower but
// stays flat/scales — crossing below fortran as threads increase.
//
//===----------------------------------------------------------------------===//

#include "ScalingHarness.h"

#include "support/CommandLine.h"
#include "support/StrUtil.h"

using namespace sacfd;

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 192;
  unsigned Steps = 60;
  unsigned Repeats = 1;
  std::string Threads = "1,2,4";

  ScalingOptions Opt;
  Opt.Base.Scheme = SchemeConfig::benchmarkScheme();
  CommandLine CL("fig4_scaling",
                 "FIG4: 1000-step 400x400 wall-clock, sac vs fortran "
                 "execution model, thread sweep");
  CL.addFlag("full", Full, "run the paper-scale 400x400 x 1000 steps");
  CL.addInt("cells", Cells, "grid cells per axis (scaled default)");
  CL.addUnsigned("steps", Steps, "time steps (scaled default)");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addString("threads", Threads, "comma-separated thread counts");
  CL.addString("model", Opt.Model,
               "restrict the sweep to one model: sac or fortran");
  // Engine/backend/threads are what the sweep varies, so only the other
  // RunConfig groups are exposed.
  Opt.Base.registerScenarioFlag(CL);
  Opt.Base.registerScheduleFlags(CL);
  Opt.Base.registerGuardFlags(CL);
  Opt.Base.registerTelemetryFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  Opt.Base.resolveOrExit();

  Opt.ExperimentId = "FIG4";
  Opt.Cells = Full ? 400 : static_cast<size_t>(Cells);
  Opt.Steps = Full ? 1000 : Steps;
  Opt.Repeats = Repeats;
  if (Full)
    Threads = "1,2,4,8,16";
  for (const std::string &Part : split(Threads, ','))
    if (auto N = parseInt(Part); N && *N > 0)
      Opt.ThreadCounts.push_back(static_cast<unsigned>(*N));
  if (Opt.ThreadCounts.empty())
    Opt.ThreadCounts = {1, 2, 4};

  return runScalingExperiment(Opt);
}
