//===- bench/validation_convergence.cpp - Order-of-accuracy table ---------===//
//
// V1 (methodology support): formal convergence-order table on the smooth
// periodic advection problem, one row per (reconstruction, N).  The
// orders certify that every scheme the paper's menu offers delivers its
// design accuracy inside this implementation — the quantitative backing
// for reading anything into the FIG1/FIG3 error numbers.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"

#include <cmath>
#include <cstdio>

using namespace sacfd;

namespace {

double advectionError(Backend &Exec, ReconstructionKind Recon, size_t N,
                      double T) {
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Recon = Recon;
  C.Cfl = 0.4;
  ArraySolver<1> S(smoothAdvectionProblem(N), C, Exec);
  S.advanceTo(T);
  double Err = 0.0;
  const Grid<1> &G = S.problem().Domain;
  for (std::ptrdiff_t I = 0; I < static_cast<std::ptrdiff_t>(N); ++I) {
    double X = G.cellCenter(0, I);
    Err += std::fabs(S.primitiveAt(Index{I}).Rho -
                     smoothAdvectionDensity1D(X, T)) *
           G.dx(0);
  }
  return Err;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;

  CommandLine CL("validation_convergence",
                 "V1: L1 convergence orders on smooth periodic advection");
  CL.addFlag("full", Full, "refine one extra level");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;

  const size_t Sizes[] = {32, 64, 128, 256};
  unsigned Levels = Full ? 4 : 3;
  double T = 0.25;

  auto Exec = createBackend(BackendKind::Serial, 1);
  std::printf("# V1: smooth advection to t=%.2f, L1(rho) error and "
              "observed order (RK3 time integration caps the observable "
              "order at ~3)\n",
              T);
  std::printf("%-8s", "recon");
  for (unsigned L = 0; L < Levels; ++L)
    std::printf(" %11s N=%-4zu", "L1 @", Sizes[L]);
  std::printf(" %8s\n", "order");

  for (ReconstructionKind K :
       {ReconstructionKind::PiecewiseConstant, ReconstructionKind::Tvd2,
        ReconstructionKind::Tvd3, ReconstructionKind::Weno3,
        ReconstructionKind::Weno5}) {
    std::printf("%-8s", reconstructionKindName(K));
    double Prev = 0.0, Last = 0.0, SecondLast = 0.0;
    for (unsigned L = 0; L < Levels; ++L) {
      double E = advectionError(*Exec, K, Sizes[L], T);
      std::printf(" %16.3e", E);
      SecondLast = Prev;
      Prev = E;
      if (L == Levels - 1) {
        Last = E;
        (void)Last;
      }
    }
    std::printf(" %8.2f\n", std::log2(SecondLast / Prev));
  }
  return 0;
}
