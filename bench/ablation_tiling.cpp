//===- bench/ablation_tiling.cpp - A4: 2D tile-schedule sweep -------------===//
//
// A5: prices the tile-scheduled 2D runtime against the legacy
// row-flattened execution on the Fig. 4 hot loops.  For each backend the
// sweep runs the 2D shock-interaction workload with tiling off (the
// row-flattening baseline), then across tile sizes and tile-dealing
// schedules, and reports every configuration's wall clock relative to
// that backend's flattened baseline.  Determinism makes this a pure
// performance knob — every row computes bit-identical fields — so the
// acceptance question is simply whether tiled execution reaches parity
// or better.
//
// --json writes the table as a machine-readable artifact
// (artifacts/BENCH_tiling.json in CI).
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

struct TilingRow {
  std::string Backend;
  std::string TileSpec;
  std::string Dealing;
  double Seconds;
  double VsFlat; ///< Seconds / the same backend's tile-off seconds
};

double runOnce(const RunConfig &Cfg, size_t Cells, unsigned Steps,
               unsigned Repeats) {
  TimingSamples Samples;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    Problem<2> Prob = shockInteraction2D(Cells, 2.2,
                                         static_cast<double>(Cells) / 2.0);
    SolverRun<2> Run = makeSolverRun(Prob, Cfg);
    WallTimer Timer;
    Run.advanceSteps(Steps);
    Samples.add(Timer.seconds());
  }
  return Samples.min();
}

bool writeJson(const std::string &Path, size_t Cells, unsigned Steps,
               unsigned Threads, const std::vector<TilingRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n  \"experiment\": \"tiling_ablation\",\n"
               "  \"cells\": %zu,\n  \"steps\": %u,\n"
               "  \"threads\": %u,\n  \"rows\": [\n",
               Cells, Steps, Threads);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const TilingRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"backend\": \"%s\", \"tile\": \"%s\", "
                 "\"dealing\": \"%s\", \"seconds\": %.6f, "
                 "\"vs_flat\": %.4f}%s\n",
                 R.Backend.c_str(), R.TileSpec.c_str(), R.Dealing.c_str(),
                 R.Seconds, R.VsFlat, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 160;
  unsigned Steps = 30;
  unsigned Repeats = 1;
  std::string JsonPath;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("ablation_tiling",
                 "A5: tile size x dealing x backend sweep of the "
                 "2D runtime vs row-flattened execution");
  CL.addFlag("full", Full, "larger grid and more steps");
  CL.addInt("cells", Cells, "grid cells per axis");
  CL.addUnsigned("steps", Steps, "time steps per run");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addString("json", JsonPath, "write the table to this JSON file");
  // The sweep varies backend and tile itself; engine/threads/scheme come
  // from the shared surface.
  Cfg.registerSchemeFlags(CL);
  Cfg.registerEngineFlag(CL);
  CL.addUnsigned("threads", Cfg.Threads, "worker threads");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 400;
    Steps = 100;
  }
  if (Repeats == 0)
    Repeats = 1;
  Cfg.resolveOrExit();

  const BackendKind Backends[] = {BackendKind::Serial, BackendKind::SpinPool,
                                  BackendKind::ForkJoin};
  const char *TileSpecs[] = {"16x64", "32x128", "64x256", "8x512", "auto"};
  const char *Dealings[] = {"static", "static,2", "dynamic"};

  std::printf("# A5: %s engine, %dx%d grid, %u steps, %u threads, "
              "min of %u\n",
              engineKindName(Cfg.Engine), Cells, Cells, Steps, Cfg.Threads,
              Repeats);
  std::printf("%-10s %-8s %-10s %10s %9s\n", "backend", "tile", "dealing",
              "wall[s]", "vs flat");

  std::vector<TilingRow> Rows;
  for (BackendKind Kind : Backends) {
    RunConfig Leg = Cfg;
    Leg.Backend = Kind;
    if (Kind == BackendKind::Serial)
      Leg.Threads = 1;

    Leg.TileCfg = Tile::off();
    double Flat = runOnce(Leg, static_cast<size_t>(Cells), Steps, Repeats);
    Rows.push_back({backendKindName(Kind), "off", "-", Flat, 1.0});
    std::printf("%-10s %-8s %-10s %10.3f %9s\n", backendKindName(Kind),
                "off", "-", Flat, "1.00");

    double BestTiled = 1e300;
    for (const char *Spec : TileSpecs)
      for (const char *Dealing : Dealings) {
        Leg.TileCfg = Tile::parseSpec(Spec).Value.value();
        Leg.TileCfg.Dealing = Schedule::parseSpec(Dealing).Value.value();
        // Tile dealing is a worker knob; one dealing suffices serially.
        if (Kind == BackendKind::Serial && Dealing != Dealings[0])
          continue;
        double Seconds =
            runOnce(Leg, static_cast<size_t>(Cells), Steps, Repeats);
        double Ratio = Flat > 0.0 ? Seconds / Flat : 0.0;
        BestTiled = std::min(BestTiled, Ratio);
        Rows.push_back({backendKindName(Kind), Spec, Dealing, Seconds,
                        Ratio});
        std::printf("%-10s %-8s %-10s %10.3f %9.2f\n",
                    backendKindName(Kind), Spec, Dealing, Seconds, Ratio);
      }
    std::printf("# %s best tiled vs flat: %.2f (%s)\n",
                backendKindName(Kind), BestTiled,
                BestTiled <= 1.05 ? "parity or better" : "slower");
  }

  if (!JsonPath.empty()) {
    if (!writeJson(JsonPath, static_cast<size_t>(Cells), Steps, Cfg.Threads,
                   Rows)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
