//===- bench/fig3_interaction_snapshot.cpp - Paper Fig. 2/3 run -----------===//
//
// FIG2/3: the two-channel unsteady shock interaction (Ms = 2.2, domain
// 2h x 2h).  Runs the configuration, writes the Fig. 3 snapshot images
// (density + numerical schlieren PGM), and prints quantitative feature
// diagnostics the paper describes qualitatively:
//
//   - the primary shocks "rapidly become approximately circular": we
//     report the front radius along the two channel axes and the
//     diagonal;
//   - the "Mach stem between them": pressure on the diagonal behind the
//     fronts must exceed the single post-shock pressure (irregular
//     interaction), which we report as the diagonal amplification;
//   - diagonal mirror symmetry (exact for this configuration).
//
// Default is a scaled 128x128 run; --full uses the paper's 400x400 grid.
//
//===----------------------------------------------------------------------===//

#include "euler/RankineHugoniot.h"
#include "io/AsciiPlot.h"
#include "io/FieldExport.h"
#include "io/PgmWriter.h"
#include "io/RunIo.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>

using namespace sacfd;

namespace {

/// Walks from the quiescent far corner toward the origin along a ray and
/// returns the distance of the first strongly compressed cell (the
/// primary shock front).  The threshold sits well above the weak
/// diffracted waves running along the walls and well below the post-shock
/// pressure, so it latches onto the primary front.
double frontRadius(const EulerSolver<2> &S, double DirX, double DirY) {
  const Grid<2> &G = S.problem().Domain;
  double MaxR = std::min(G.hi(0), G.hi(1));
  for (double R = MaxR - 1.0; R > 0.0; R -= G.dx(0) * 0.5) {
    std::ptrdiff_t I = static_cast<std::ptrdiff_t>(R * DirX / G.dx(0));
    std::ptrdiff_t J = static_cast<std::ptrdiff_t>(R * DirY / G.dx(1));
    if (I >= static_cast<std::ptrdiff_t>(G.cells(0)) ||
        J >= static_cast<std::ptrdiff_t>(G.cells(1)))
      continue;
    if (S.primitiveAt(Index{I, J}).P > 2.0)
      return std::sqrt(static_cast<double>(I * I) * G.dx(0) * G.dx(0) +
                       static_cast<double>(J * J) * G.dx(1) * G.dx(1));
  }
  return 0.0;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 128;
  double Ms = 2.2;
  bool NoFiles = false;
  RunConfig Cfg;

  CommandLine CL("fig3_interaction_snapshot",
                 "FIG2/3: two-channel shock interaction snapshot with "
                 "feature diagnostics");
  CL.addFlag("full", Full, "run the paper's 400x400 grid");
  CL.addInt("cells", Cells, "grid cells per axis (scaled default)");
  CL.addDouble("ms", Ms, "shock Mach number");
  CL.addFlag("no-files", NoFiles, "skip PGM output");
  Cfg.registerAll(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full)
    Cells = 400;
  Cfg.resolveOrExit();

  double H = static_cast<double>(Cells) / 2.0; // dx = 1, h = Cells/2
  Problem<2> Prob = shockInteraction2D(static_cast<size_t>(Cells), Ms, H);
  SolverRun<2> Run = makeSolverRun(Prob, Cfg);
  installEmergencyCheckpoint(Run);
  EulerSolver<2> &Solver = Run.solver();

  std::printf("# FIG3: %dx%d, Ms=%.2f, h=%.0f, scheme %s, %s\n", Cells,
              Cells, Ms, H, Cfg.Scheme.str().c_str(),
              Cfg.executionStr().c_str());

  WallTimer Timer;
  Run.advanceTo(Prob.EndTime * 0.8);
  double Wall = Timer.seconds();
  Run.printGuardReport();

  FieldHealth<2> Health = fieldHealth(Solver);
  std::printf("t=%.2f steps=%u wall=%.2fs min(rho)=%.4f min(p)=%.4f "
              "finite=%s\n",
              Solver.time(), Solver.stepCount(), Wall, Health.MinDensity,
              Health.MinPressure, Health.AllFinite ? "yes" : "NO");

  // Feature diagnostics.
  double C0 = Prob.G.soundSpeed(1.0, 1.0);
  double Expected = Ms * C0 * Solver.time();
  double Rx = frontRadius(Solver, 1.0, 0.02);
  double Ry = frontRadius(Solver, 0.02, 1.0);
  double Rd = frontRadius(Solver, std::sqrt(0.5), std::sqrt(0.5));
  std::printf("primary front radius: along x %.1f, along y %.1f, "
              "diagonal %.1f (Ms*c0*t = %.1f)\n",
              Rx, Ry, Rd, Expected);
  std::printf("circularity |Rx-Ry|/Rx = %.3f\n",
              Rx > 0 ? std::fabs(Rx - Ry) / Rx : 0.0);

  PostShockState Post = postShockState(Ms, 1.0, 1.0, Prob.G);
  double DiagP = 0.0;
  for (std::ptrdiff_t K = 0; K < Cells; ++K)
    DiagP = std::max(DiagP, Solver.primitiveAt(Index{K, K}).P);
  std::printf("max pressure on the diagonal %.2f vs single post-shock "
              "p1 = %.2f (amplification %.2fx => %s interaction)\n",
              DiagP, Post.P, DiagP / Post.P,
              DiagP > 1.5 * Post.P ? "Mach-stem/irregular" : "regular");

  double MaxAsym = 0.0;
  for (std::ptrdiff_t I = 0; I < Cells; ++I)
    for (std::ptrdiff_t J = 0; J < I; ++J)
      MaxAsym = std::max(
          MaxAsym, std::fabs(Solver.primitiveAt(Index{I, J}).Rho -
                             Solver.primitiveAt(Index{J, I}).Rho));
  std::printf("diagonal symmetry max|rho(i,j)-rho(j,i)| = %.2e\n", MaxAsym);

  if (!NoFiles) {
    writePgm("fig3_density.pgm", scalarField(Solver, FieldQuantity::Density));
    writePgm("fig3_schlieren.pgm", schlierenField(Solver));
    std::printf("wrote fig3_density.pgm, fig3_schlieren.pgm\n");
  }

  std::printf("\n# density map (Fig. 3 analogue):\n%s",
              asciiFieldMap(scalarField(Solver, FieldQuantity::Density))
                  .c_str());

  if (!writeRunTelemetry(Run, "fig3_interaction_snapshot",
                         {{"cells", std::to_string(Cells)},
                          {"ms", std::to_string(Ms)}})) {
    std::fprintf(stderr, "error: cannot write telemetry JSON\n");
    return 1;
  }
  return Health.AllFinite && !Run.failed() ? 0 : 1;
}
