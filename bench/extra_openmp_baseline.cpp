//===- bench/extra_openmp_baseline.cpp - E1: OpenMP cross-check -----------===//
//
// E1 (extra baseline, beyond the paper): the paper's Fortran runs used
// OpenMP.  Our fork-join backend models the *cost structure* the paper
// attributes to it (team per region); a modern OpenMP runtime (libgomp)
// instead keeps its team alive, which should land its dispatch cost
// near the spin pool's.  This bench measures all three on the same
// workload so the model assumptions are checkable against an industrial
// runtime.
//
//===----------------------------------------------------------------------===//

#include "runtime/OmpBackend.h"
#include "runtime/Runtime.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 128;
  unsigned Steps = 20;
  unsigned Threads = 4;

  CommandLine CL("extra_openmp_baseline",
                 "E1: spin-pool vs fork-join vs real OpenMP on the "
                 "benchmark workload");
  CL.addFlag("full", Full, "400x400 x 200 steps");
  CL.addInt("cells", Cells, "grid cells per axis");
  CL.addUnsigned("steps", Steps, "time steps");
  CL.addUnsigned("threads", Threads, "team size");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 400;
    Steps = 200;
  }

  if (!openMpAvailable())
    std::printf("# E1: OpenMP not available in this build; measuring the "
                "two models only\n");

  std::printf("# E1: fused solver, %dx%d grid, %u steps, %u threads\n",
              Cells, Cells, Steps, Threads);
  std::printf("%-12s %12s\n", "backend", "wall[s]");

  for (BackendKind K : {BackendKind::Serial, BackendKind::SpinPool,
                        BackendKind::ForkJoin, BackendKind::OpenMp}) {
    auto Exec = createBackend(K, Threads);
    if (!Exec)
      continue;
    Problem<2> Prob = shockInteraction2D(
        static_cast<size_t>(Cells), 2.2, static_cast<double>(Cells) / 2.0);
    FusedSolver<2> S(Prob, SchemeConfig::benchmarkScheme(), *Exec);
    WallTimer T;
    S.advanceSteps(Steps);
    std::printf("%-12s %12.3f\n", Exec->name(), T.seconds());
  }
  return 0;
}
