//===- bench/alloc_overhead.cpp - A6: field-buffer pooling ----------------===//
//
// A6: prices the FieldPool against one-malloc-per-temporary on the
// Fig. 4 workload (2D shock interaction, benchmark scheme).  For each
// engine the harness runs the same stepping loop with the pool enabled
// and disabled, reporting wall clock, NDArray heap allocations per step
// (total and steady-state, i.e. after the first warmup step), and the
// pool's resident footprint.  Determinism makes this a pure performance
// knob — both arms compute bit-identical fields — so the acceptance
// question is pooled wall clock <= unpooled, with steady-state
// allocations pinned at zero.
//
// --json writes the table as a machine-readable artifact
// (artifacts/BENCH_alloc.json in CI).
//
//===----------------------------------------------------------------------===//

#include "array/AllocCounter.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

struct AllocRow {
  std::string Engine;
  bool Pooled;
  double Seconds;
  double AllocsPerStep;       ///< all steps, warmup included
  double SteadyAllocsPerStep; ///< after the first step
  uint64_t PoolResidentBytes;
  double VsUnpooled; ///< Seconds / the same engine's unpooled seconds
};

struct RunResult {
  double Seconds = 0.0;
  uint64_t TotalAllocs = 0;
  uint64_t SteadyAllocs = 0;
  uint64_t ResidentBytes = 0;
};

RunResult runOnce(const RunConfig &Cfg, size_t Cells, unsigned Steps,
                  unsigned Repeats) {
  RunResult Best;
  Best.Seconds = 1e300;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    Problem<2> Prob = shockInteraction2D(Cells, 2.2,
                                         static_cast<double>(Cells) / 2.0);
    SolverRun<2> Run = makeSolverRun(Prob, Cfg);
    uint64_t Before = alloctrack::allocationCount();
    WallTimer Timer;
    Run.advanceSteps(1);
    uint64_t AfterWarmup = alloctrack::allocationCount();
    Run.advanceSteps(Steps - 1);
    double Seconds = Timer.seconds();
    uint64_t After = alloctrack::allocationCount();
    if (Seconds < Best.Seconds) {
      Best.Seconds = Seconds;
      Best.TotalAllocs = After - Before;
      Best.SteadyAllocs = After - AfterWarmup;
      Best.ResidentBytes = Run.solver().fieldPool().stats().BytesResident;
    }
  }
  return Best;
}

bool writeJson(const std::string &Path, size_t Cells, unsigned Steps,
               unsigned Threads, const std::vector<AllocRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n  \"experiment\": \"alloc_ablation\",\n"
               "  \"cells\": %zu,\n  \"steps\": %u,\n"
               "  \"threads\": %u,\n  \"rows\": [\n",
               Cells, Steps, Threads);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const AllocRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"engine\": \"%s\", \"pooled\": %s, "
                 "\"seconds\": %.6f, \"allocs_per_step\": %.2f, "
                 "\"steady_allocs_per_step\": %.2f, "
                 "\"pool_resident_bytes\": %llu, \"vs_unpooled\": %.4f}%s\n",
                 R.Engine.c_str(), R.Pooled ? "true" : "false", R.Seconds,
                 R.AllocsPerStep, R.SteadyAllocsPerStep,
                 static_cast<unsigned long long>(R.PoolResidentBytes),
                 R.VsUnpooled, I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 160;
  unsigned Steps = 30;
  unsigned Repeats = 1;
  std::string JsonPath;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("alloc_overhead",
                 "A6: field-buffer pooling vs per-temporary allocation "
                 "on the Fig. 4 workload");
  CL.addFlag("full", Full, "larger grid and more steps");
  CL.addInt("cells", Cells, "grid cells per axis");
  CL.addUnsigned("steps", Steps, "time steps per run");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addString("json", JsonPath, "write the table to this JSON file");
  Cfg.registerBackendFlags(CL);
  Cfg.registerSchemeFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 400;
    Steps = 100;
  }
  if (Repeats == 0)
    Repeats = 1;
  if (Steps < 2)
    Steps = 2;
  Cfg.resolveOrExit();

  const EngineKind Engines[] = {EngineKind::Array, EngineKind::Fused};

  std::printf("# A6: %dx%d grid, %u steps, %u threads, min of %u\n", Cells,
              Cells, Steps, Cfg.Threads, Repeats);
  std::printf("%-8s %-8s %10s %12s %14s %12s %8s\n", "engine", "pool",
              "wall[s]", "allocs/step", "steady a/step", "pool[KiB]",
              "vs off");

  std::vector<AllocRow> Rows;
  bool SteadyClean = true;
  bool PooledNoSlower = true;
  for (EngineKind Engine : Engines) {
    RunConfig Leg = Cfg;
    Leg.Engine = Engine;

    double Unpooled = 0.0;
    for (bool Pooled : {false, true}) {
      Leg.Pooling = Pooled;
      RunResult R = runOnce(Leg, static_cast<size_t>(Cells), Steps, Repeats);
      double PerStep = static_cast<double>(R.TotalAllocs) / Steps;
      double SteadyPerStep =
          static_cast<double>(R.SteadyAllocs) / (Steps - 1);
      if (!Pooled)
        Unpooled = R.Seconds;
      double Ratio = Unpooled > 0.0 ? R.Seconds / Unpooled : 1.0;
      if (Pooled) {
        SteadyClean = SteadyClean && R.SteadyAllocs == 0;
        PooledNoSlower = PooledNoSlower && Ratio <= 1.05;
      }
      Rows.push_back({engineKindName(Engine), Pooled, R.Seconds, PerStep,
                      SteadyPerStep, R.ResidentBytes, Ratio});
      std::printf("%-8s %-8s %10.3f %12.2f %14.2f %12.1f %8.2f\n",
                  engineKindName(Engine), Pooled ? "on" : "off", R.Seconds,
                  PerStep, SteadyPerStep, R.ResidentBytes / 1024.0, Ratio);
    }
  }
  std::printf("# steady-state pooled allocations: %s\n",
              SteadyClean ? "0 (clean)" : "NONZERO");
  std::printf("# pooled wall clock vs unpooled: %s\n",
              PooledNoSlower ? "parity or better" : "slower");

  if (!JsonPath.empty()) {
    if (!writeJson(JsonPath, static_cast<size_t>(Cells), Steps, Cfg.Threads,
                   Rows)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return SteadyClean ? 0 : 1;
}
