//===- bench/ablation_tasks.cpp - A7: task backend vs pool backends -------===//
//
// A7: prices the work-stealing task backend against the spin-pool and
// fork-join backends on the Fig. 4 shock-interaction workload at two
// grains: the FIG4 default grid and an EXT5-style larger grid.  The
// tasks backend runs twice per configuration — once in loop mode (the
// Backend contract, directly comparable to the pools) and once in DAG
// step mode (per-tile snapshot/flux/update tasks with the GetDT
// reduction overlapped).  Determinism makes this a pure performance
// knob — every row computes bit-identical fields — so the acceptance
// question is whether tasks reach parity or better with fork-join at
// the highest worker count.
//
// --json writes the table as a machine-readable artifact
// (artifacts/BENCH_tasks.json in CI).
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

struct TasksRow {
  std::string Grid; ///< "fig4" or "ext5"
  size_t Cells;
  unsigned Threads;
  std::string Backend;
  std::string StepMode;
  double Seconds;
  double VsForkJoin; ///< Seconds / fork-join's seconds at same grid+threads
};

double runOnce(const RunConfig &Cfg, size_t Cells, unsigned Steps,
               unsigned Repeats) {
  TimingSamples Samples;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    Problem<2> Prob = shockInteraction2D(Cells, 2.2,
                                         static_cast<double>(Cells) / 2.0);
    SolverRun<2> Run = makeSolverRun(Prob, Cfg);
    WallTimer Timer;
    Run.advanceSteps(Steps);
    Samples.add(Timer.seconds());
  }
  return Samples.min();
}

bool writeJson(const std::string &Path, unsigned Steps,
               const std::vector<TasksRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n  \"experiment\": \"tasks_ablation\",\n"
               "  \"steps\": %u,\n  \"rows\": [\n",
               Steps);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const TasksRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"grid\": \"%s\", \"cells\": %zu, \"threads\": %u, "
                 "\"backend\": \"%s\", \"step_mode\": \"%s\", "
                 "\"seconds\": %.6f, \"vs_forkjoin\": %.4f}%s\n",
                 R.Grid.c_str(), R.Cells, R.Threads, R.Backend.c_str(),
                 R.StepMode.c_str(), R.Seconds, R.VsForkJoin,
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Fig4Cells = 96;
  int Ext5Cells = 192;
  unsigned Steps = 20;
  unsigned Repeats = 1;
  std::string Threads = "1,2,4,8";
  std::string JsonPath;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();
  Cfg.Engine = EngineKind::Fused; // DAG stepping requires the fused engine.

  CommandLine CL("ablation_tasks",
                 "A7: task backend (loop and DAG step modes) vs the "
                 "spin-pool and fork-join backends on FIG4/EXT5 grids");
  CL.addFlag("full", Full, "larger grids and more steps");
  CL.addInt("cells", Fig4Cells, "FIG4 grid cells per axis");
  CL.addInt("ext5-cells", Ext5Cells, "EXT5 grid cells per axis");
  CL.addUnsigned("steps", Steps, "time steps per run");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addString("threads", Threads, "comma-separated worker counts");
  CL.addString("json", JsonPath, "write the table to this JSON file");
  // The sweep varies backend, step mode, and threads itself; the scheme
  // and schedule knobs come from the shared surface.
  Cfg.registerSchemeFlags(CL);
  Cfg.registerScheduleFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Fig4Cells = 160;
    Ext5Cells = 384;
    Steps = 60;
  }
  if (Repeats == 0)
    Repeats = 1;
  Cfg.resolveOrExit();

  std::vector<unsigned> ThreadCounts;
  for (const std::string &Part : split(Threads, ','))
    if (auto N = parseInt(Part); N && *N > 0)
      ThreadCounts.push_back(static_cast<unsigned>(*N));
  if (ThreadCounts.empty())
    ThreadCounts = {1, 2, 4, 8};

  struct GridSpec {
    const char *Name;
    size_t Cells;
  };
  const GridSpec Grids[] = {{"fig4", static_cast<size_t>(Fig4Cells)},
                            {"ext5", static_cast<size_t>(Ext5Cells)}};
  struct ConfigSpec {
    BackendKind Backend;
    StepMode Step;
  };
  const ConfigSpec Configs[] = {{BackendKind::ForkJoin, StepMode::Loops},
                                {BackendKind::SpinPool, StepMode::Loops},
                                {BackendKind::Tasks, StepMode::Loops},
                                {BackendKind::Tasks, StepMode::Dag}};

  std::printf("# A7: fused engine, %u steps, min of %u\n", Steps, Repeats);
  std::printf("%-6s %6s %8s %-10s %-6s %10s %12s\n", "grid", "cells",
              "threads", "backend", "step", "wall[s]", "vs forkjoin");

  std::vector<TasksRow> Rows;
  bool TasksReachParity = true;
  for (const GridSpec &G : Grids)
    for (unsigned T : ThreadCounts) {
      double ForkJoinSeconds = 0.0;
      for (const ConfigSpec &C : Configs) {
        RunConfig Leg = Cfg;
        Leg.Backend = C.Backend;
        Leg.Step = C.Step;
        Leg.Threads = T;
        double Seconds = runOnce(Leg, G.Cells, Steps, Repeats);
        if (C.Backend == BackendKind::ForkJoin)
          ForkJoinSeconds = Seconds;
        double Ratio =
            ForkJoinSeconds > 0.0 ? Seconds / ForkJoinSeconds : 1.0;
        Rows.push_back({G.Name, G.Cells, T, backendKindName(C.Backend),
                        stepModeName(C.Step), Seconds, Ratio});
        std::printf("%-6s %6zu %8u %-10s %-6s %10.3f %12.2f\n", G.Name,
                    G.Cells, T, backendKindName(C.Backend),
                    stepModeName(C.Step), Seconds, Ratio);
        // Acceptance: at the top worker count, tasks must not lose to
        // fork-join (its per-dispatch thread spawns are pure overhead).
        if (C.Backend == BackendKind::Tasks && C.Step == StepMode::Loops &&
            T == ThreadCounts.back() && Ratio > 1.10)
          TasksReachParity = false;
      }
    }
  std::printf("# tasks vs fork-join at %u workers: %s\n", ThreadCounts.back(),
              TasksReachParity ? "parity or better" : "slower");

  if (!JsonPath.empty()) {
    if (!writeJson(JsonPath, Steps, Rows)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
