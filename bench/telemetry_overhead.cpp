//===- bench/telemetry_overhead.cpp - Instrumentation cost ----------------===//
//
// Prices the telemetry subsystem on the 2D interaction workload:
//
//   disabled   telemetry off — every probe is one relaxed atomic load
//   enabled    spans + counters + every-step gauges all recording
//
// Both configurations run the identical solver; the difference is pure
// instrumentation cost.  The per-region spans fire ~27 times per RK3
// step (every parallelFor dispatch) plus the per-stage solver spans, so
// this measures the worst-case probe density the codebase has.  Target:
// < 2% overhead with gauges at every-step granularity.
//
// Median-of-N (--iters) per-step seconds, like guard_overhead.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Env.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"

#include <cstdio>

using namespace sacfd;

namespace {

double measurePerStep(unsigned Iters, unsigned Steps,
                      const Problem<2> &Prob, const SchemeConfig &Scheme,
                      Backend &Exec) {
  TimingSamples PerStep;
  for (unsigned I = 0; I < Iters; ++I) {
    ArraySolver<2> S(Prob, Scheme, Exec);
    WallTimer T;
    S.advanceSteps(Steps);
    PerStep.add(T.seconds() / S.stepCount());
    // Keep the retired-buffer store bounded across iterations.
    telemetry::reset();
  }
  return PerStep.median();
}

} // namespace

int main(int Argc, const char **Argv) {
  int Cells = 160;
  unsigned Steps = 60;
  unsigned Threads = defaultThreadCount();
  unsigned Iters = 5;
  bool Full = false;
  bool Check = false;

  CommandLine CL("telemetry_overhead",
                 "instrumentation cost: identical runs with telemetry "
                 "disabled vs fully enabled (every-step gauges)");
  CL.addInt("cells", Cells, "2D grid cells per axis");
  CL.addUnsigned("steps", Steps, "solver steps per measurement");
  CL.addUnsigned("threads", Threads, "worker threads");
  CL.addUnsigned("iters", Iters,
                 "timing repetitions per configuration (median wins)");
  CL.addFlag("full", Full, "larger grid and more steps");
  CL.addFlag("check", Check, "exit nonzero if overhead exceeds 2%");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 320;
    Steps = 120;
  }
  if (Iters == 0)
    Iters = 1;

  auto Exec = createBackend(BackendKind::SpinPool, Threads);
  Problem<2> Prob = shockInteraction2D(static_cast<size_t>(Cells), 2.2,
                                       static_cast<double>(Cells) / 2.0);
  SchemeConfig Scheme = SchemeConfig::benchmarkScheme();

  std::printf("# telemetry_overhead: %dx%d, %u steps, backend %s(%u), "
              "median of %u\n",
              Cells, Cells, Steps, Exec->name(), Exec->workerCount(),
              Iters);
  std::printf("%-12s %12s %12s\n", "telemetry", "step[ms]", "steps/s");

  // Warm up the pool and the page cache once so neither configuration
  // pays first-touch costs.
  measurePerStep(1, Steps, Prob, Scheme, *Exec);

  telemetry::setEnabled(false);
  double Disabled = measurePerStep(Iters, Steps, Prob, Scheme, *Exec);
  std::printf("%-12s %12.4f %12.1f\n", "disabled", Disabled * 1e3,
              1.0 / Disabled);

  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  double Enabled = measurePerStep(Iters, Steps, Prob, Scheme, *Exec);
  telemetry::setEnabled(false);
  std::printf("%-12s %12.4f %12.1f\n", "enabled", Enabled * 1e3,
              1.0 / Enabled);

  double Overhead = Enabled / Disabled - 1.0;
  std::printf("# overhead: %.2f%% (target < 2%%)\n", Overhead * 100.0);
  return Check && Overhead >= 0.02 ? 1 : 0;
}
