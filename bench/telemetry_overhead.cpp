//===- bench/telemetry_overhead.cpp - Instrumentation cost ----------------===//
//
// Prices the telemetry subsystem on the 2D interaction workload:
//
//   disabled   telemetry off — every probe is one relaxed atomic load
//   enabled    spans + counters + every-step gauges all recording
//
// Both configurations run the identical solver; the difference is pure
// instrumentation cost.  The per-region spans fire ~27 times per RK3
// step (every parallelFor dispatch) plus the per-stage solver spans, so
// this measures the worst-case probe density the codebase has.  Target:
// < 2% overhead with gauges at every-step granularity.
//
// Median-of-N (--iters) per-step seconds, like guard_overhead.
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"

#include <cstdio>

using namespace sacfd;

namespace {

double measurePerStep(unsigned Iters, unsigned Steps,
                      const Problem<2> &Prob, const RunConfig &Cfg) {
  TimingSamples PerStep;
  for (unsigned I = 0; I < Iters; ++I) {
    SolverRun<2> Run = makeSolverRun(Prob, Cfg);
    WallTimer T;
    Run.advanceSteps(Steps);
    PerStep.add(T.seconds() / Run.solver().stepCount());
    // Keep the retired-buffer store bounded across iterations.
    telemetry::reset();
  }
  return PerStep.median();
}

} // namespace

int main(int Argc, const char **Argv) {
  int Cells = 160;
  unsigned Steps = 60;
  unsigned Iters = 5;
  bool Full = false;
  bool Check = false;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("telemetry_overhead",
                 "instrumentation cost: identical runs with telemetry "
                 "disabled vs fully enabled (every-step gauges)");
  CL.addInt("cells", Cells, "2D grid cells per axis");
  CL.addUnsigned("steps", Steps, "solver steps per measurement");
  CL.addUnsigned("iters", Iters,
                 "timing repetitions per configuration (median wins)");
  CL.addFlag("full", Full, "larger grid and more steps");
  CL.addFlag("check", Check, "exit nonzero if overhead exceeds 2%");
  // Telemetry on/off is what this bench measures, so only the other
  // RunConfig groups are exposed.
  Cfg.registerSchemeFlags(CL);
  Cfg.registerEngineFlag(CL);
  Cfg.registerBackendFlags(CL);
  Cfg.registerScheduleFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 320;
    Steps = 120;
  }
  if (Iters == 0)
    Iters = 1;
  Cfg.resolveOrExit();

  Problem<2> Prob = shockInteraction2D(static_cast<size_t>(Cells), 2.2,
                                       static_cast<double>(Cells) / 2.0);

  std::printf("# telemetry_overhead: %dx%d, %u steps, %s, median of %u\n",
              Cells, Cells, Steps, Cfg.executionStr().c_str(), Iters);
  std::printf("%-12s %12s %12s\n", "telemetry", "step[ms]", "steps/s");

  // Warm up the pool and the page cache once so neither configuration
  // pays first-touch costs.
  measurePerStep(1, Steps, Prob, Cfg);

  telemetry::setEnabled(false);
  double Disabled = measurePerStep(Iters, Steps, Prob, Cfg);
  std::printf("%-12s %12.4f %12.1f\n", "disabled", Disabled * 1e3,
              1.0 / Disabled);

  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);
  double Enabled = measurePerStep(Iters, Steps, Prob, Cfg);
  telemetry::setEnabled(false);
  std::printf("%-12s %12.4f %12.1f\n", "enabled", Enabled * 1e3,
              1.0 / Enabled);

  double Overhead = Enabled / Disabled - 1.0;
  std::printf("# overhead: %.2f%% (target < 2%%)\n", Overhead * 100.0);
  return Check && Overhead >= 0.02 ? 1 : 0;
}
