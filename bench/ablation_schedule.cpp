//===- bench/ablation_schedule.cpp - A2: OMP_SCHEDULE analogue ------------===//
//
// A2: the paper tuned the Fortran runtime via OMP_SCHEDULE and found
// "several different combinations ... made a negligible difference".
// This ablation sweeps the fork-join backend's schedule (static,
// static-chunked, dynamic) over the Fig. 4 workload and reports the
// spread, so the claim can be checked on this analogue.
//
//===----------------------------------------------------------------------===//

#include "runtime/ForkJoinBackend.h"
#include "runtime/Runtime.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 128;
  unsigned Steps = 20;
  unsigned Threads = 4;

  CommandLine CL("ablation_schedule",
                 "A2: fork-join schedule sweep (OMP_SCHEDULE analogue)");
  CL.addFlag("full", Full, "larger grid and more steps");
  CL.addInt("cells", Cells, "grid cells per axis");
  CL.addUnsigned("steps", Steps, "time steps per run");
  CL.addUnsigned("threads", Threads, "fork-join team size");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 400;
    Steps = 100;
  }

  std::printf("# A2: fused solver on fork-join(%u), %dx%d grid, %u steps "
              "per schedule\n",
              Threads, Cells, Cells, Steps);
  std::printf("%-14s %12s\n", "schedule", "wall[s]");

  const char *Schedules[] = {"static", "static,8", "static,64", "dynamic",
                             "dynamic,8", "dynamic,64"};
  double Best = 1e300, Worst = 0.0;
  for (const char *Name : Schedules) {
    Schedule Sched = Schedule::parse(Name).value();
    auto Exec = std::make_unique<ForkJoinBackend>(Threads, Sched);
    Problem<2> Prob = shockInteraction2D(
        static_cast<size_t>(Cells), 2.2, static_cast<double>(Cells) / 2.0);
    FusedSolver<2> S(Prob, SchemeConfig::benchmarkScheme(), *Exec);
    WallTimer T;
    S.advanceSteps(Steps);
    double Seconds = T.seconds();
    Best = std::min(Best, Seconds);
    Worst = std::max(Worst, Seconds);
    std::printf("%-14s %12.3f\n", Name, Seconds);
  }
  std::printf("# spread worst/best = %.2f (paper: 'negligible "
              "difference')\n",
              Best > 0.0 ? Worst / Best : 0.0);
  return 0;
}
