//===- bench/micro_kernels.cpp - K1: kernel microbenchmarks ---------------===//
//
// K1 (methodology support): google-benchmark microbenchmarks of the
// primitives whose costs explain the Fig. 4 curves:
//
//   - parallel-region dispatch latency per backend (the fork-join vs
//     spin-pool gap IS the paper's "overhead of communication between
//     the threads");
//   - with-loop elementwise throughput (fused vs materialized);
//   - the getDt reduction;
//   - per-face reconstruction + Riemann solve for each scheme.
//
//===----------------------------------------------------------------------===//

#include "array/Layout.h"
#include "array/Reductions.h"
#include "array/WithLoop.h"
#include "kernels/Kernels.h"
#include "numerics/Reconstruction.h"
#include "numerics/RiemannSolvers.h"
#include "runtime/ForkJoinBackend.h"
#include "runtime/SerialBackend.h"
#include "runtime/SpinBarrierPool.h"

#include <benchmark/benchmark.h>

#include <cmath>

using namespace sacfd;

//===----------------------------------------------------------------------===//
// Dispatch latency
//===----------------------------------------------------------------------===//

static void BM_DispatchSerial(benchmark::State &State) {
  SerialBackend Exec;
  for (auto _ : State)
    Exec.parallelFor(0, 1, [](size_t, size_t) {});
}
BENCHMARK(BM_DispatchSerial);

static void BM_DispatchSpinPool(benchmark::State &State) {
  SpinBarrierPool Exec(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    Exec.parallelFor(0, 64, [](size_t, size_t) {});
}
BENCHMARK(BM_DispatchSpinPool)->Arg(2)->Arg(4);

static void BM_DispatchForkJoin(benchmark::State &State) {
  ForkJoinBackend Exec(static_cast<unsigned>(State.range(0)));
  for (auto _ : State)
    Exec.parallelFor(0, 64, [](size_t, size_t) {});
}
BENCHMARK(BM_DispatchForkJoin)->Arg(2)->Arg(4);

//===----------------------------------------------------------------------===//
// With-loop throughput
//===----------------------------------------------------------------------===//

static void BM_WithLoopElementwiseFused(benchmark::State &State) {
  SerialBackend Exec;
  size_t N = static_cast<size_t>(State.range(0));
  NDArray<double> A(Shape{N}, 1.5), B(Shape{N}, 2.5), Out(Shape{N});
  for (auto _ : State) {
    assignInto(Out, (toExpr(A) + toExpr(B)) * 0.5 - toExpr(A) / 4.0, Exec);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_WithLoopElementwiseFused)->Arg(1 << 14)->Arg(1 << 18);

static void BM_WithLoopElementwiseMaterialized(benchmark::State &State) {
  SerialBackend Exec;
  size_t N = static_cast<size_t>(State.range(0));
  NDArray<double> A(Shape{N}, 1.5), B(Shape{N}, 2.5), Out(Shape{N});
  for (auto _ : State) {
    NDArray<double> T1 = materialize(toExpr(A) + toExpr(B), Exec);
    NDArray<double> T2 = materialize(toExpr(T1) * 0.5, Exec);
    NDArray<double> T3 = materialize(toExpr(A) / 4.0, Exec);
    assignInto(Out, toExpr(T2) - toExpr(T3), Exec);
    benchmark::DoNotOptimize(Out.data());
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_WithLoopElementwiseMaterialized)->Arg(1 << 14)->Arg(1 << 18);

static void BM_MaxvalReduction(benchmark::State &State) {
  SerialBackend Exec;
  size_t N = static_cast<size_t>(State.range(0));
  NDArray<double> A(Shape{N});
  for (size_t I = 0; I < N; ++I)
    A[I] = static_cast<double>((I * 2654435761u) % 1000);
  for (auto _ : State) {
    double M = maxval(fabsE(A) * 0.5 + 1.0, Exec);
    benchmark::DoNotOptimize(M);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_MaxvalReduction)->Arg(1 << 14)->Arg(1 << 18);

//===----------------------------------------------------------------------===//
// Face kernels
//===----------------------------------------------------------------------===//

namespace {

std::array<Cons<2>, 6> faceStencil() {
  Gas G;
  std::array<Cons<2>, 6> S;
  for (int I = 0; I < 6; ++I) {
    Prim<2> W;
    W.Rho = 1.0 + 0.1 * I;
    W.Vel = {0.3 - 0.05 * I, 0.1};
    W.P = 1.0 + 0.05 * I * I;
    S[I] = toCons(W, G);
  }
  return S;
}

} // namespace

template <ReconstructionKind K>
static void BM_FaceReconstruct(benchmark::State &State) {
  Gas G;
  auto Stencil = faceStencil();
  for (auto _ : State) {
    FaceStates<2> F = reconstructFaceStates(
        K, LimiterKind::MinMod, ReconstructVariables::Characteristic,
        Stencil, G, 0);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_FaceReconstruct<ReconstructionKind::PiecewiseConstant>)
    ->Name("BM_FaceReconstruct/pc1");
BENCHMARK(BM_FaceReconstruct<ReconstructionKind::Tvd2>)
    ->Name("BM_FaceReconstruct/tvd2");
BENCHMARK(BM_FaceReconstruct<ReconstructionKind::Weno3>)
    ->Name("BM_FaceReconstruct/weno3");

template <RiemannKind K>
static void BM_RiemannFlux(benchmark::State &State) {
  Gas G;
  auto Stencil = faceStencil();
  for (auto _ : State) {
    Cons<2> F = numericalFlux(K, Stencil[2], Stencil[3], G, 0);
    benchmark::DoNotOptimize(F);
  }
}
BENCHMARK(BM_RiemannFlux<RiemannKind::Rusanov>)
    ->Name("BM_RiemannFlux/rusanov");
BENCHMARK(BM_RiemannFlux<RiemannKind::Hll>)->Name("BM_RiemannFlux/hll");
BENCHMARK(BM_RiemannFlux<RiemannKind::Hllc>)->Name("BM_RiemannFlux/hllc");
BENCHMARK(BM_RiemannFlux<RiemannKind::Roe>)->Name("BM_RiemannFlux/roe");

//===----------------------------------------------------------------------===//
// kernels:: scalar vs SIMD (per-kernel speedup rows)
//===----------------------------------------------------------------------===//
//
// Paired rows over the same SoA (unit-stride) buffers: .../scalar runs the
// -fno-tree-vectorize TU, .../simd the host-ISA TU.  The ratio per pair is
// the per-kernel vectorization speedup A8 reports; ablation_simd re-measures
// the same pairs and writes them to artifacts/BENCH_simd.json.

namespace {

/// Aligned SoA planes over \p Cells cells filled with a smooth positive
/// state (so maxEigen's sqrt sees valid pressures).
struct SoaField2 {
  NDArray<double> Buf;
  size_t Plane;
  explicit SoaField2(size_t Cells)
      : Buf(Shape{static_cast<size_t>(NumVars<2>), paddedCount(Cells)}),
        Plane(paddedCount(Cells)) {
    Gas G;
    kernels::Run<2> R = run();
    for (size_t I = 0; I < Cells; ++I) {
      Prim<2> W;
      W.Rho = 1.0 + 0.2 * std::sin(0.01 * static_cast<double>(I));
      W.Vel = {0.4 * std::cos(0.02 * static_cast<double>(I)), 0.1};
      W.P = 1.0 + 0.1 * std::sin(0.03 * static_cast<double>(I) + 1.0);
      kernels::storeCons(R, I, toCons(W, G));
    }
  }
  kernels::Run<2> run() { return kernels::soaRun<2>(Buf.data(), Plane, 0); }
  kernels::ConstRun<2> crun() const {
    return kernels::soaRun<2>(Buf.data(), Plane, 0);
  }
};

} // namespace

static void BM_KernelFluxFaces(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const bool Simd = State.range(1) != 0;
  Gas G;
  SoaField2 U(N + 1), F(N);
  kernels::ConstRun<2> L = U.crun();
  kernels::ConstRun<2> R = kernels::advance(U.crun(), 1);
  for (auto _ : State) {
    kernels::fluxFaces<2>(L, R, F.run(), G, 0, RiemannKind::Hllc, N, Simd);
    benchmark::DoNotOptimize(F.Buf.data());
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_KernelFluxFaces)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Name("BM_Kernel/fluxFaces");

static void BM_KernelMaxEigen(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const bool Simd = State.range(1) != 0;
  Gas G;
  SoaField2 U(N);
  const double InvDx[2] = {128.0, 128.0};
  for (auto _ : State) {
    double Ev = kernels::maxEigen<2>(U.crun(), G, InvDx, 0.0, N, Simd);
    benchmark::DoNotOptimize(Ev);
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_KernelMaxEigen)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Name("BM_Kernel/maxEigen");

static void BM_KernelSspUpdate(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const bool Simd = State.range(1) != 0;
  SoaField2 U(N), Un(N), Res(N);
  for (auto _ : State) {
    kernels::sspUpdate<2>(U.run(), Un.crun(), Res.crun(), 0.5, 0.5, 1e-3, N,
                          Simd);
    benchmark::DoNotOptimize(U.Buf.data());
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_KernelSspUpdate)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Name("BM_Kernel/sspUpdate");

static void BM_KernelAccumDivergence(benchmark::State &State) {
  const size_t N = static_cast<size_t>(State.range(0));
  const bool Simd = State.range(1) != 0;
  SoaField2 Res(N), F(N + 1);
  kernels::ConstRun<2> Lo = F.crun();
  kernels::ConstRun<2> Hi = kernels::advance(F.crun(), 1);
  for (auto _ : State) {
    kernels::accumDivergence<2>(Res.run(), Lo, Hi, 128.0, N, Simd);
    benchmark::DoNotOptimize(Res.Buf.data());
  }
  State.SetItemsProcessed(State.iterations() * static_cast<int64_t>(N));
}
BENCHMARK(BM_KernelAccumDivergence)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Name("BM_Kernel/accumDivergence");

BENCHMARK_MAIN();
