//===- bench/ablation_shards.cpp - A9: multi-process shard scaling --------===//
//
// A9: prices the multi-process row-block decomposition (src/shard/)
// against the single-process run on the Fig. 4 shock-interaction
// workload at two grains: the FIG4 default grid and an EXT5-style
// larger grid (--full raises EXT5 to the 2000x2000 headline row).
// Every shard count computes a bit-identical field — the 1-shard row's
// state hash is the reference and a mismatch fails the run — so the
// acceptance question is pure scaling: wall time across 1/2/4/8 shard
// processes with per-RK-stage shared-memory halo exchange.
//
// --json writes the table as a machine-readable artifact
// (artifacts/BENCH_shard.json in CI).
//
//===----------------------------------------------------------------------===//

#include "shard/ShardCoordinator.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

struct ShardRow {
  std::string Grid; ///< "fig4" or "ext5"
  size_t Cells;
  unsigned Shards;
  double Seconds;
  double Speedup; ///< 1-shard seconds / this row's seconds
  bool HashOk;    ///< state hash matches the 1-shard reference
};

/// One timed sharded run; fills \p Hash with the final state hash.
double runOnce(const SchemeConfig &Scheme, size_t Cells, unsigned Shards,
               unsigned Steps, unsigned Repeats, uint64_t &Hash) {
  TimingSamples Samples;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    Problem<2> Prob = shockInteraction2D(Cells, 2.2,
                                         static_cast<double>(Cells) / 2.0);
    ShardOptions Opt;
    Opt.Shards = Shards;
    Opt.Scheme = Scheme;
    ShardCoordinator Coord(Prob, Opt);
    if (!Coord.start() || !Coord.advanceSteps(Steps)) {
      std::fprintf(stderr, "error: %u-shard run failed\n", Shards);
      std::exit(1);
    }
    WallTimer Timer;
    // Time a second leg so process forking and first-touch page faults
    // stay out of the steady-state number.
    if (!Coord.advanceSteps(Steps)) {
      std::fprintf(stderr, "error: %u-shard run failed\n", Shards);
      std::exit(1);
    }
    Samples.add(Timer.seconds());
    Hash = Coord.stateHash();
    Coord.shutdown();
  }
  return Samples.min();
}

bool writeJson(const std::string &Path, unsigned Steps,
               const std::vector<ShardRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n  \"experiment\": \"shard_ablation\",\n"
               "  \"steps\": %u,\n  \"rows\": [\n",
               Steps);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ShardRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"grid\": \"%s\", \"cells\": %zu, \"shards\": %u, "
                 "\"seconds\": %.6f, \"speedup\": %.4f, "
                 "\"hash_ok\": %s}%s\n",
                 R.Grid.c_str(), R.Cells, R.Shards, R.Seconds, R.Speedup,
                 R.HashOk ? "true" : "false",
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Fig4Cells = 96;
  int Ext5Cells = 192;
  unsigned Steps = 20;
  unsigned Repeats = 1;
  std::string ShardList = "1,2,4,8";
  std::string JsonPath;
  SchemeConfig Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("ablation_shards",
                 "A9: multi-process shard scaling (shared-memory halo "
                 "exchange) on FIG4/EXT5 grids");
  CL.addFlag("full", Full, "headline grids: EXT5 at 2000x2000, more steps");
  CL.addInt("cells", Fig4Cells, "FIG4 grid cells per axis");
  CL.addInt("ext5-cells", Ext5Cells, "EXT5 grid cells per axis");
  CL.addUnsigned("steps", Steps, "timed steps per run (after warmup)");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addString("shards", ShardList, "comma-separated shard counts");
  CL.addString("json", JsonPath, "write the table to this JSON file");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Fig4Cells = 400;
    Ext5Cells = 2000;
    Steps = 40;
  }
  if (Repeats == 0)
    Repeats = 1;

  std::vector<unsigned> ShardCounts;
  for (const std::string &Part : split(ShardList, ','))
    if (auto N = parseInt(Part); N && *N > 0)
      ShardCounts.push_back(static_cast<unsigned>(*N));
  if (ShardCounts.empty())
    ShardCounts = {1, 2, 4, 8};

  struct GridSpec {
    const char *Name;
    size_t Cells;
  };
  const GridSpec Grids[] = {{"fig4", static_cast<size_t>(Fig4Cells)},
                            {"ext5", static_cast<size_t>(Ext5Cells)}};

  std::printf("# A9: fused engine per shard, %u timed steps, min of %u\n",
              Steps, Repeats);
  std::printf("%-6s %6s %7s %10s %9s %6s\n", "grid", "cells", "shards",
              "wall[s]", "speedup", "hash");

  std::vector<ShardRow> Rows;
  bool AllHashesMatch = true;
  for (const GridSpec &G : Grids) {
    double OneShardSeconds = 0.0;
    uint64_t RefHash = 0;
    for (unsigned Shards : ShardCounts) {
      uint64_t Hash = 0;
      double Seconds = runOnce(Scheme, G.Cells, Shards, Steps, Repeats,
                               Hash);
      if (Shards == ShardCounts.front()) {
        OneShardSeconds = Seconds;
        RefHash = Hash;
      }
      bool HashOk = Hash == RefHash;
      AllHashesMatch = AllHashesMatch && HashOk;
      double Speedup = Seconds > 0.0 ? OneShardSeconds / Seconds : 1.0;
      Rows.push_back(
          {G.Name, G.Cells, Shards, Seconds, Speedup, HashOk});
      std::printf("%-6s %6zu %7u %10.3f %9.2f %6s\n", G.Name, G.Cells,
                  Shards, Seconds, Speedup, HashOk ? "ok" : "MISMATCH");
    }
  }
  if (!AllHashesMatch) {
    std::fprintf(stderr,
                 "error: shard hash diverged from the reference row\n");
    return 1;
  }

  if (!JsonPath.empty()) {
    if (!writeJson(JsonPath, Steps, Rows)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
