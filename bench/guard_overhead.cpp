//===- bench/guard_overhead.cpp - Step-guard cost measurement -------------===//
//
// Quantifies what the breakdown guard costs on a healthy run and what a
// recovery cycle costs when the solver does break.  Three measurements
// on the 2D interaction workload:
//
//   unguarded        plain advanceSteps, the baseline
//   guarded every=K  health scan after each K-step window (K = 1,2,4,8)
//   recovery         guarded run with a persistent mid-run fault that
//                    forces the full retry + floor cycle
//
// The scan is a single parallel reduction over the interior, so the
// healthy-path overhead should shrink roughly like 1/K with cadence.
//
//===----------------------------------------------------------------------===//

#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

namespace {

/// Median-of-Iters per-step seconds of one configuration.  \p Run gets a
/// fresh solver each iteration and returns the step count it took.
template <typename RunFn>
double measurePerStep(unsigned Iters, RunFn &&Run) {
  TimingSamples PerStep;
  for (unsigned I = 0; I < Iters; ++I) {
    WallTimer T;
    unsigned Steps = Run();
    PerStep.add(T.seconds() / Steps);
  }
  return PerStep.median();
}

} // namespace

int main(int Argc, const char **Argv) {
  int Cells = 160;
  unsigned Steps = 60;
  unsigned Iters = 3;
  bool Full = false;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("guard_overhead",
                 "cost of the step guard: healthy-path scan overhead "
                 "per cadence and the price of a recovery cycle");
  CL.addInt("cells", Cells, "2D grid cells per axis");
  CL.addUnsigned("steps", Steps, "solver steps per measurement");
  CL.addUnsigned("iters", Iters,
                 "timing repetitions per configuration (median wins)");
  CL.addFlag("full", Full, "larger grid and more steps");
  // The guard configurations are what this bench sweeps, so only the
  // non-guard RunConfig groups are exposed.
  Cfg.registerSchemeFlags(CL);
  Cfg.registerEngineFlag(CL);
  Cfg.registerBackendFlags(CL);
  Cfg.registerScheduleFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 320;
    Steps = 120;
  }
  if (Iters == 0)
    Iters = 1;
  Cfg.resolveOrExit();

  Problem<2> Prob = shockInteraction2D(static_cast<size_t>(Cells), 2.2,
                                       static_cast<double>(Cells) / 2.0);

  std::printf("# guard_overhead: %dx%d, %u steps, %s, median of %u\n",
              Cells, Cells, Steps, Cfg.executionStr().c_str(), Iters);
  std::printf("%-24s %12s %12s %10s\n", "configuration", "step[ms]",
              "steps/s", "vs base");

  // Baseline: no guard at all.  Cost is compared per step actually
  // taken, because guarded runs round the step count up to whole
  // windows.
  double BasePerStep = measurePerStep(Iters, [&] {
    SolverRun<2> Run = makeSolverRun(Prob, Cfg);
    Run.advanceSteps(Steps);
    return Run.solver().stepCount();
  });
  std::printf("%-24s %12.4f %12.1f %10s\n", "unguarded",
              BasePerStep * 1e3, 1.0 / BasePerStep, "1.00x");

  // Healthy-path overhead at several scan cadences.
  for (unsigned Every : {1u, 2u, 4u, 8u}) {
    RunConfig GuardedCfg = Cfg;
    GuardedCfg.Guard.Enabled = true;
    GuardedCfg.Guard.Every = Every;
    double PerStep = measurePerStep(Iters, [&] {
      SolverRun<2> Run = makeSolverRun(Prob, GuardedCfg);
      Run.advanceSteps(Steps);
      return Run.solver().stepCount();
    });
    char Label[32];
    std::snprintf(Label, sizeof(Label), "guarded every=%u", Every);
    std::printf("%-24s %12.4f %12.1f %9.2fx\n", Label, PerStep * 1e3,
                1.0 / PerStep, PerStep / BasePerStep);
  }

  // Recovery: a persistent fault halfway through forces the guard all
  // the way down the retry ladder and into the floor stage.
  {
    RunConfig RecoveryCfg = Cfg;
    RecoveryCfg.Guard.Enabled = true;
    RecoveryCfg.Guard.PoisonStep = Steps / 2;
    RecoveryCfg.Guard.PoisonCells = 4;
    std::string Detail;
    double PerStep = measurePerStep(Iters, [&] {
      SolverRun<2> Run = makeSolverRun(Prob, RecoveryCfg);
      Run.advanceSteps(Steps);
      Detail = Run.guard()->summary();
      return Run.solver().stepCount();
    });
    std::printf("%-24s %12.4f %12.1f %9.2fx\n", "recovery (1 breakdown)",
                PerStep * 1e3, 1.0 / PerStep, PerStep / BasePerStep);
    std::printf("# recovery detail: %s\n", Detail.c_str());
  }
  return 0;
}
