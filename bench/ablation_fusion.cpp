//===- bench/ablation_fusion.cpp - A1: with-loop fusion effect ------------===//
//
// A1: the paper credits SaC's scaling to the compiler "collating the many
// small operations on the arrays into fewer larger operations".  This
// ablation measures that collation in our analogue: the array engine's
// Fused mode (expression chains evaluate in one pass) against its
// Materialized mode (one temporary array per operation), at the kernel
// level and over full solver steps.
//
//===----------------------------------------------------------------------===//

#include "array/Reductions.h"
#include "array/WithLoop.h"
#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

namespace {

double timeIt(unsigned Iterations, FunctionRef<void()> Body) {
  // One warmup, then best of 3.
  Body();
  TimingSamples S;
  for (int Rep = 0; Rep < 3; ++Rep) {
    WallTimer T;
    for (unsigned I = 0; I < Iterations; ++I)
      Body();
    S.add(T.seconds() / Iterations);
  }
  return S.min();
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 96;
  unsigned Steps = 10;

  CommandLine CL("ablation_fusion",
                 "A1: fused vs materialized array-pipeline evaluation");
  CL.addFlag("full", Full, "larger kernel arrays and more steps");
  CL.addInt("cells", Cells, "2D solver grid cells per axis");
  CL.addUnsigned("steps", Steps, "solver steps per measurement");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;

  size_t KernelN = Full ? 4'000'000 : 400'000;
  if (Full) {
    Cells = 192;
    Steps = 30;
  }

  auto Exec = createBackend(BackendKind::Serial, 1);
  std::printf("# A1: fused vs materialized evaluation (serial, kernel "
              "N=%zu, solver %dx%d x %u steps)\n",
              KernelN, Cells, Cells, Steps);
  std::printf("%-34s %12s %12s %8s\n", "pipeline", "fused[s]", "mater.[s]",
              "ratio");

  // Kernel 1: the dfDx chain from the paper --
  //   (drop([1], q) - drop([-1], q)) / delta  feeding an axpy consumer.
  {
    NDArray<double> Q(Shape{KernelN});
    for (size_t I = 0; I < KernelN; ++I)
      Q[I] = static_cast<double>(I % 1000) * 1e-3;
    NDArray<double> Out(Shape{KernelN - 2});

    double Fused = timeIt(4, [&] {
      // Whole chain in one pass.
      assignInto(Out,
                 (drop(Index{1}, drop(Index{-1}, Q)) * 2.0 -
                  drop(Index{2}, Q) - drop(Index{-2}, Q)) /
                     0.01,
                 *Exec);
    });
    double Mat = timeIt(4, [&] {
      // One temporary per operation.
      NDArray<double> A = materialize(drop(Index{1}, drop(Index{-1}, Q)),
                                      *Exec);
      NDArray<double> B = materialize(toExpr(A) * 2.0, *Exec);
      NDArray<double> C = materialize(drop(Index{2}, Q), *Exec);
      NDArray<double> D = materialize(drop(Index{-2}, Q), *Exec);
      NDArray<double> E = materialize(toExpr(B) - toExpr(C), *Exec);
      NDArray<double> F = materialize(toExpr(E) - toExpr(D), *Exec);
      assignInto(Out, toExpr(F) / 0.01, *Exec);
    });
    std::printf("%-34s %12.5f %12.5f %8.2f\n", "dfDx second-difference",
                Fused, Mat, Mat / Fused);
  }

  // Kernel 2: the getDt pipeline -- sqrt/fabs/add/scale feeding maxval.
  {
    NDArray<double> P(Shape{KernelN}), Rho(Shape{KernelN}),
        U(Shape{KernelN});
    for (size_t I = 0; I < KernelN; ++I) {
      P[I] = 1.0 + 0.5 * static_cast<double>(I % 17);
      Rho[I] = 0.5 + 0.25 * static_cast<double>(I % 13);
      U[I] = static_cast<double>(I % 29) - 14.0;
    }
    volatile double Sink = 0.0;

    double Fused = timeIt(4, [&] {
      Sink = maxval((fabsE(U) + sqrtE(toExpr(P) * 1.4 / toExpr(Rho))) /
                        0.01,
                    *Exec);
    });
    double Mat = timeIt(4, [&] {
      NDArray<double> C =
          materialize(sqrtE(toExpr(P) * 1.4 / toExpr(Rho)), *Exec);
      NDArray<double> D = materialize(fabsE(U), *Exec);
      NDArray<double> Ev =
          materialize((toExpr(D) + toExpr(C)) / 0.01, *Exec);
      Sink = maxval(Ev, *Exec);
    });
    (void)Sink;
    std::printf("%-34s %12.5f %12.5f %8.2f\n", "getDt eigenvalue pipeline",
                Fused, Mat, Mat / Fused);
  }

  // Full solver: the Fig. 4 workload under both evaluation modes.
  {
    auto RunSolver = [&](ArrayEvalMode Mode) {
      Problem<2> Prob = shockInteraction2D(
          static_cast<size_t>(Cells), 2.2,
          static_cast<double>(Cells) / 2.0);
      ArraySolver<2> S(Prob, SchemeConfig::benchmarkScheme(), *Exec, Mode);
      WallTimer T;
      S.advanceSteps(Steps);
      return T.seconds();
    };
    double Fused = RunSolver(ArrayEvalMode::Fused);
    double Mat = RunSolver(ArrayEvalMode::Materialized);
    std::printf("%-34s %12.5f %12.5f %8.2f\n",
                "full 2D solver (benchmark scheme)", Fused, Mat,
                Mat / Fused);
  }
  return 0;
}
