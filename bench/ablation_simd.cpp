//===- bench/ablation_simd.cpp - A8: SoA + SIMD ablation ------------------===//
//
// A8: prices the SoA field layout and the vectorized kernel layer.
//
// Two levels:
//   1. per-kernel: each kernels:: primitive timed scalar (the
//      -fno-tree-vectorize TU) vs SIMD (the host-ISA TU) over the same
//      unit-stride SoA buffers — the per-kernel vectorization speedup;
//   2. end-to-end: the Fig. 4 workload (2D shock interaction, benchmark
//      scheme) across {aos,soa} x {scalar,simd} on both engines, each
//      priced against the scalar-AoS baseline.
//
// Determinism makes the whole sweep a pure performance knob: every
// configuration must produce bit-identical fields, and the bench checks
// that before it prints a single timing row.
//
// --json writes artifacts/BENCH_simd.json; --gate makes the process fail
// when the acceptance floor is missed (>= 1.3x on >= 2 kernels and
// SoA+SIMD no slower than scalar AoS end-to-end) — the Release-matrix CI
// leg runs with --gate.  Both checks auto-skip when the toolchain could
// not build an accelerated simdimpl TU (kernels::simdAccelerated() is
// false), because then "SIMD" is a dispatch formality, not a claim.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

//===----------------------------------------------------------------------===//
// Per-kernel timing
//===----------------------------------------------------------------------===//

/// Aligned SoA planes over \p Cells cells holding a smooth positive state.
struct SoaField2 {
  NDArray<double> Buf;
  size_t Plane;
  explicit SoaField2(size_t Cells)
      : Buf(Shape{static_cast<size_t>(NumVars<2>), paddedCount(Cells)}),
        Plane(paddedCount(Cells)) {
    Gas G;
    kernels::Run<2> R = run();
    for (size_t I = 0; I < Cells; ++I) {
      Prim<2> W;
      W.Rho = 1.0 + 0.2 * std::sin(0.01 * static_cast<double>(I));
      W.Vel = {0.4 * std::cos(0.02 * static_cast<double>(I)), 0.1};
      W.P = 1.0 + 0.1 * std::sin(0.03 * static_cast<double>(I) + 1.0);
      kernels::storeCons(R, I, toCons(W, G));
    }
  }
  kernels::Run<2> run() { return kernels::soaRun<2>(Buf.data(), Plane, 0); }
  kernels::ConstRun<2> crun() const {
    return kernels::soaRun<2>(Buf.data(), Plane, 0);
  }
};

struct KernelRow {
  std::string Name;
  double ScalarSec = 0.0;
  double SimdSec = 0.0;
  double speedup() const {
    return SimdSec > 0.0 ? ScalarSec / SimdSec : 0.0;
  }
};

/// Times \p Body (called once per inner reputation) and returns the best
/// of \p Repeats batched samples.
template <typename Fn>
double timeKernel(unsigned Reps, unsigned Repeats, Fn &&Body) {
  TimingSamples Samples;
  for (unsigned S = 0; S < Repeats; ++S) {
    WallTimer Timer;
    for (unsigned R = 0; R < Reps; ++R)
      Body();
    Samples.add(Timer.seconds());
  }
  return Samples.min();
}

std::vector<KernelRow> benchKernels(size_t Cells, unsigned Reps,
                                    unsigned Repeats) {
  Gas G;
  std::vector<KernelRow> Rows;

  SoaField2 U(Cells + 1), F(Cells + 1), Un(Cells), Res(Cells);
  kernels::ConstRun<2> L = U.crun();
  kernels::ConstRun<2> R = kernels::advance(U.crun(), 1);
  kernels::ConstRun<2> Lo = F.crun();
  kernels::ConstRun<2> Hi = kernels::advance(F.crun(), 1);
  const double InvDx[2] = {128.0, 128.0};
  volatile double Sink = 0.0;

  for (bool Simd : {false, true}) {
    double Sec = timeKernel(Reps, Repeats, [&] {
      kernels::fluxFaces<2>(L, R, F.run(), G, 0, RiemannKind::Hllc, Cells,
                            Simd);
    });
    if (!Simd)
      Rows.push_back({"fluxFaces", Sec, 0.0});
    else
      Rows.back().SimdSec = Sec;
  }
  for (bool Simd : {false, true}) {
    double Sec = timeKernel(Reps, Repeats, [&] {
      Sink = kernels::maxEigen<2>(U.crun(), G, InvDx, 0.0, Cells, Simd);
    });
    if (!Simd)
      Rows.push_back({"maxEigen", Sec, 0.0});
    else
      Rows.back().SimdSec = Sec;
  }
  for (bool Simd : {false, true}) {
    double Sec = timeKernel(Reps, Repeats, [&] {
      kernels::sspUpdate<2>(U.run(), Un.crun(), Res.crun(), 0.5, 0.5, 1e-3,
                            Cells, Simd);
    });
    if (!Simd)
      Rows.push_back({"sspUpdate", Sec, 0.0});
    else
      Rows.back().SimdSec = Sec;
  }
  for (bool Simd : {false, true}) {
    double Sec = timeKernel(Reps, Repeats, [&] {
      kernels::accumDivergence<2>(Res.run(), Lo, Hi, 128.0, Cells, Simd);
    });
    if (!Simd)
      Rows.push_back({"accumDivergence", Sec, 0.0});
    else
      Rows.back().SimdSec = Sec;
  }
  (void)Sink;
  return Rows;
}

//===----------------------------------------------------------------------===//
// End-to-end Fig. 4 workload
//===----------------------------------------------------------------------===//

struct E2eRow {
  std::string Engine;
  std::string LayoutName;
  bool Simd = false;
  double Seconds = 0.0;
  double VsScalarAos = 1.0; ///< ScalarAosSeconds / Seconds (>1 = faster)
};

Problem<2> fig4Problem(size_t Cells) {
  return shockInteraction2D(Cells, 2.2, static_cast<double>(Cells) / 2.0);
}

double runE2eOnce(const RunConfig &Cfg, size_t Cells, unsigned Steps,
                  unsigned Repeats) {
  TimingSamples Samples;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    SolverRun<2> Run = makeSolverRun(fig4Problem(Cells), Cfg);
    Run.advanceSteps(2); // warm the pool and flux scratch
    WallTimer Timer;
    Run.advanceSteps(Steps);
    Samples.add(Timer.seconds());
  }
  return Samples.min();
}

/// Every {layout, simd} configuration must reproduce the scalar-AoS
/// fields bit for bit.  \returns false (and prints the offender) on any
/// divergence.
bool checkBitIdentity(const RunConfig &Base, size_t Cells, unsigned Steps) {
  bool Ok = true;
  for (EngineKind Engine : {EngineKind::Array, EngineKind::Fused}) {
    RunConfig Ref = Base;
    Ref.Engine = Engine;
    Ref.FieldLayout = Layout::AoS;
    Ref.Simd = false;
    SolverRun<2> RefRun = makeSolverRun(fig4Problem(Cells), Ref);
    RefRun.advanceSteps(Steps);
    for (Layout L : {Layout::AoS, Layout::SoA})
      for (bool Simd : {false, true}) {
        if (L == Layout::AoS && !Simd)
          continue;
        RunConfig Cfg = Ref;
        Cfg.FieldLayout = L;
        Cfg.Simd = Simd;
        SolverRun<2> Run = makeSolverRun(fig4Problem(Cells), Cfg);
        Run.advanceSteps(Steps);
        double Diff = maxFieldDifference(RefRun.solver(), Run.solver());
        if (Diff != 0.0) {
          std::fprintf(stderr,
                       "BIT-IDENTITY VIOLATION: %s %s %s differs from "
                       "scalar aos by %g\n",
                       engineKindName(Engine), layoutName(L),
                       Simd ? "simd" : "scalar", Diff);
          Ok = false;
        }
      }
  }
  return Ok;
}

bool writeJson(const std::string &Path, size_t KernelCells, size_t Cells,
               unsigned Steps, const std::vector<KernelRow> &Kernels,
               const std::vector<E2eRow> &E2e, bool BitIdentical) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n  \"experiment\": \"simd_ablation\",\n"
               "  \"simd_accelerated\": %s,\n"
               "  \"bit_identical\": %s,\n"
               "  \"kernel_cells\": %zu,\n"
               "  \"cells\": %zu,\n  \"steps\": %u,\n"
               "  \"kernels\": [\n",
               kernels::simdAccelerated() ? "true" : "false",
               BitIdentical ? "true" : "false", KernelCells, Cells, Steps);
  for (size_t I = 0; I < Kernels.size(); ++I) {
    const KernelRow &R = Kernels[I];
    std::fprintf(F,
                 "    {\"kernel\": \"%s\", \"scalar_s\": %.6e, "
                 "\"simd_s\": %.6e, \"speedup\": %.3f}%s\n",
                 R.Name.c_str(), R.ScalarSec, R.SimdSec, R.speedup(),
                 I + 1 < Kernels.size() ? "," : "");
  }
  std::fprintf(F, "  ],\n  \"end_to_end\": [\n");
  for (size_t I = 0; I < E2e.size(); ++I) {
    const E2eRow &R = E2e[I];
    std::fprintf(F,
                 "    {\"engine\": \"%s\", \"layout\": \"%s\", "
                 "\"simd\": %s, \"seconds\": %.6f, "
                 "\"vs_scalar_aos\": %.4f}%s\n",
                 R.Engine.c_str(), R.LayoutName.c_str(),
                 R.Simd ? "true" : "false", R.Seconds, R.VsScalarAos,
                 I + 1 < E2e.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  bool Full = false;
  bool Gate = false;
  int Cells = 96;
  unsigned Steps = 20;
  unsigned Repeats = 2;
  unsigned KernelReps = 200;
  std::string JsonPath;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("ablation_simd",
                 "A8: per-kernel scalar-vs-SIMD speedups plus the "
                 "layout x simd end-to-end matrix on the Fig. 4 workload");
  CL.addFlag("full", Full, "larger grid and more steps");
  CL.addFlag("gate", Gate,
             "fail the process when the acceptance floor is missed "
             "(>=1.3x on >=2 kernels, SoA+SIMD >= scalar AoS end-to-end)");
  CL.addInt("cells", Cells, "grid cells per axis (end-to-end)");
  CL.addUnsigned("steps", Steps, "time steps per end-to-end run");
  CL.addUnsigned("repeats", Repeats, "repetitions per config (min wins)");
  CL.addUnsigned("kernel-reps", KernelReps,
                 "inner repetitions per kernel timing batch");
  CL.addString("json", JsonPath, "write the table to this JSON file");
  CL.addUnsigned("threads", Cfg.Threads, "worker threads");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full) {
    Cells = 256;
    Steps = 60;
    Repeats = 3;
    KernelReps = 1000;
  }
  if (Repeats == 0)
    Repeats = 1;
  Cfg.resolveOrExit();

  const size_t KernelCells = 1 << 14;
  std::printf("# A8: simd ablation (accelerated simd TU: %s)\n",
              kernels::simdAccelerated() ? "yes" : "no");

  // Bit-identity first: a timing table for diverging runs is meaningless.
  bool BitIdentical =
      checkBitIdentity(Cfg, static_cast<size_t>(Cells) / 2, 6);
  std::printf("# bit-identity across {aos,soa} x {scalar,simd} x "
              "{array,fused}: %s\n",
              BitIdentical ? "ok" : "VIOLATED");

  std::printf("## per-kernel (%zu cells, unit-stride runs)\n", KernelCells);
  std::printf("%-16s %12s %12s %9s\n", "kernel", "scalar[s]", "simd[s]",
              "speedup");
  std::vector<KernelRow> Kernels =
      benchKernels(KernelCells, KernelReps, Repeats + 1);
  unsigned FastKernels = 0;
  for (const KernelRow &R : Kernels) {
    if (R.speedup() >= 1.3)
      ++FastKernels;
    std::printf("%-16s %12.6f %12.6f %8.2fx\n", R.Name.c_str(), R.ScalarSec,
                R.SimdSec, R.speedup());
  }

  std::printf("## end-to-end: fig4 interaction %dx%d, %u steps, "
              "%u threads\n",
              Cells, Cells, Steps, Cfg.Threads);
  std::printf("%-10s %-6s %-7s %10s %9s\n", "engine", "layout", "simd",
              "wall[s]", "speedup");
  std::vector<E2eRow> E2e;
  double SoaSimdVsScalarAos = 0.0;
  for (EngineKind Engine : {EngineKind::Array, EngineKind::Fused}) {
    double ScalarAos = 0.0;
    for (Layout L : {Layout::AoS, Layout::SoA})
      for (bool Simd : {false, true}) {
        RunConfig Run = Cfg;
        Run.Engine = Engine;
        Run.FieldLayout = L;
        Run.Simd = Simd;
        double Sec =
            runE2eOnce(Run, static_cast<size_t>(Cells), Steps, Repeats);
        if (L == Layout::AoS && !Simd)
          ScalarAos = Sec;
        double Speedup = Sec > 0.0 ? ScalarAos / Sec : 0.0;
        E2e.push_back(
            {engineKindName(Engine), layoutName(L), Simd, Sec, Speedup});
        if (Engine == EngineKind::Fused && L == Layout::SoA && Simd)
          SoaSimdVsScalarAos = Speedup;
        std::printf("%-10s %-6s %-7s %10.3f %8.2fx\n",
                    engineKindName(Engine), layoutName(L),
                    Simd ? "on" : "off", Sec, Speedup);
      }
  }

  if (!JsonPath.empty()) {
    if (!writeJson(JsonPath, KernelCells, static_cast<size_t>(Cells), Steps,
                   Kernels, E2e, BitIdentical)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }

  if (!BitIdentical)
    return 1; // a correctness failure gates unconditionally

  if (Gate) {
    if (!kernels::simdAccelerated()) {
      std::printf("# gate: skipped (no accelerated simd TU in this "
                  "build)\n");
      return 0;
    }
    bool Pass = true;
    if (FastKernels < 2) {
      std::fprintf(stderr,
                   "GATE: only %u kernels reached 1.3x (need >= 2)\n",
                   FastKernels);
      Pass = false;
    }
    if (SoaSimdVsScalarAos < 1.0) {
      std::fprintf(stderr,
                   "GATE: fused SoA+SIMD is slower than scalar AoS on "
                   "fig4 (%.2fx)\n",
                   SoaSimdVsScalarAos);
      Pass = false;
    }
    std::printf("# gate: %s (%u/4 kernels >= 1.3x, fused soa+simd "
                "%.2fx vs scalar aos)\n",
                Pass ? "pass" : "FAIL", FastKernels, SoaSimdVsScalarAos);
    return Pass ? 0 : 1;
  }
  return 0;
}
