//===- bench/ablation_variables.cpp - A4: characteristic projection -------===//
//
// A4: Section 3 insists "the reconstruction is applied to the so-called
// (local) characteristic variables rather than to the primitive
// variables ... Otherwise, numerical simulations fail because of a loss
// of monotonicity and numerical oscillations developing near the
// discontinuities."  This ablation runs the same scheme in both variable
// sets and quantifies the oscillations (total-variation excess over the
// exact solution's TV) and the cost of the projection.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 400;

  CommandLine CL("ablation_variables",
                 "A4: characteristic vs primitive-variable "
                 "reconstruction");
  CL.addFlag("full", Full, "run at 2000 cells");
  CL.addInt("cells", Cells, "grid cells");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full)
    Cells = 2000;

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;

  auto Exec = createBackend(BackendKind::Serial, 1);
  std::printf("# A4: Sod N=%d to t=0.2; TV0 is the initial density total "
              "variation (the exact solution keeps TV = TV0)\n",
              Cells);
  std::printf("%-8s %-16s %10s %12s %12s\n", "recon", "variables",
              "wall[s]", "L1(rho)", "TV-TV0");

  for (ReconstructionKind K :
       {ReconstructionKind::Tvd2, ReconstructionKind::Tvd3,
        ReconstructionKind::Weno3}) {
    for (ReconstructVariables V : {ReconstructVariables::Characteristic,
                                   ReconstructVariables::Primitive}) {
      SchemeConfig C = SchemeConfig::figureScheme();
      C.Recon = K;
      C.Vars = V;
      ArraySolver<1> S(sodProblem(static_cast<size_t>(Cells)), C, *Exec);
      double Tv0 = densityTotalVariation(S);
      WallTimer T;
      S.advanceTo(0.2);
      double Seconds = T.seconds();
      double TvExcess = densityTotalVariation(S) - Tv0;
      RiemannErrors E = riemannL1Error(S, L, R, 0.5);
      std::printf("%-8s %-16s %10.3f %12.5f %12.2e\n",
                  reconstructionKindName(K),
                  V == ReconstructVariables::Characteristic
                      ? "characteristic"
                      : "primitive",
                  Seconds, E.Rho, TvExcess);
    }
  }
  std::printf("# positive TV-TV0 = spurious oscillations; the paper's "
              "choice (characteristic) should stay at or below the "
              "primitive variant\n");
  return 0;
}
