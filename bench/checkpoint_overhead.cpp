//===- bench/checkpoint_overhead.cpp - Durable-run cost measurement -------===//
//
// Quantifies what periodic checkpointing costs on the Fig. 4 interaction
// workload.  Three cadences, median-of-N per-step seconds each:
//
//   every=0     plain advanceSteps, the baseline (durability off)
//   every=100   the default production cadence — the acceptance target
//               is < 5% overhead here
//   every=10    an aggressively short cadence, to show the scaling
//
// Each checkpoint is a full atomic header+payload+manifest write through
// the CheckpointStore (fsync included), so the measured overhead is the
// real durability price, not just the serialization.  --json writes the
// table as a machine-readable artifact (artifacts/BENCH_checkpoint.json
// in CI).
//
//===----------------------------------------------------------------------===//

#include "io/RunIo.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

using namespace sacfd;

namespace {

struct CadenceRow {
  unsigned Every;         ///< --checkpoint-every value (0 = durability off)
  double PerStepSeconds;  ///< median-of-iters per-step wall time
  double VsBase;          ///< PerStepSeconds / the every=0 baseline
  unsigned Generations;   ///< checkpoints on disk after one run
};

/// Median-of-Iters per-step seconds of one cadence.  Fresh solver and a
/// wiped checkpoint directory per iteration so every run pays the same
/// write pattern.
double measurePerStep(unsigned Iters, const Problem<2> &Prob,
                      const RunConfig &Cfg, unsigned Steps,
                      unsigned *GenerationsOut) {
  TimingSamples PerStep;
  for (unsigned I = 0; I < Iters; ++I) {
    if (!Cfg.Checkpoint.Dir.empty())
      std::filesystem::remove_all(Cfg.Checkpoint.Dir);
    SolverRun<2> Run(Prob, Cfg);
    setupDurableRun(Run);
    WallTimer T;
    Run.advanceSteps(Steps);
    PerStep.add(T.seconds() / Run.solver().stepCount());
  }
  if (GenerationsOut)
    *GenerationsOut =
        Cfg.Checkpoint.Dir.empty()
            ? 0
            : static_cast<unsigned>(
                  CheckpointStore(Cfg.Checkpoint.Dir).generations().size());
  return PerStep.median();
}

bool writeJson(const std::string &Path, int Cells, unsigned Steps,
               unsigned Threads, const std::vector<CadenceRow> &Rows) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fprintf(F,
               "{\n  \"experiment\": \"checkpoint_overhead\",\n"
               "  \"cells\": %d,\n  \"steps\": %u,\n"
               "  \"threads\": %u,\n  \"rows\": [\n",
               Cells, Steps, Threads);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const CadenceRow &R = Rows[I];
    std::fprintf(F,
                 "    {\"every\": %u, \"seconds_per_step\": %.6e, "
                 "\"vs_base\": %.4f, \"generations\": %u}%s\n",
                 R.Every, R.PerStepSeconds, R.VsBase, R.Generations,
                 I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, const char **Argv) {
  int Cells = 128;
  unsigned Steps = 200;
  unsigned Iters = 3;
  std::string Dir = "checkpoint_overhead.ckpt";
  std::string JsonPath;
  RunConfig Cfg;
  Cfg.Scheme = SchemeConfig::benchmarkScheme();

  CommandLine CL("checkpoint_overhead",
                 "cost of periodic durable checkpoints on the Fig. 4 "
                 "interaction workload, per cadence");
  CL.addInt("cells", Cells, "2D grid cells per axis");
  CL.addUnsigned("steps", Steps, "solver steps per measurement");
  CL.addUnsigned("iters", Iters,
                 "timing repetitions per cadence (median wins)");
  CL.addString("dir", Dir, "scratch checkpoint directory (wiped per run)");
  CL.addString("json", JsonPath, "write the table to this JSON file");
  // The checkpoint cadences are what this bench sweeps, so only the
  // non-durability RunConfig groups are exposed.
  Cfg.registerSchemeFlags(CL);
  Cfg.registerEngineFlag(CL);
  Cfg.registerBackendFlags(CL);
  Cfg.registerScheduleFlags(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Iters == 0)
    Iters = 1;
  Cfg.resolveOrExit();

  Problem<2> Prob = shockInteraction2D(static_cast<size_t>(Cells), 2.2,
                                       static_cast<double>(Cells) / 2.0);

  std::printf("# checkpoint_overhead: %dx%d, %u steps, %s, median of %u\n",
              Cells, Cells, Steps, Cfg.executionStr().c_str(), Iters);
  std::printf("%-24s %12s %12s %10s %8s\n", "configuration", "step[ms]",
              "steps/s", "vs base", "ckpts");

  std::vector<CadenceRow> Rows;
  double BasePerStep = 0.0;
  for (unsigned Every : {0u, 100u, 10u}) {
    RunConfig RunCfg = Cfg;
    RunCfg.Checkpoint.Dir = Every == 0 ? std::string() : Dir;
    RunCfg.Checkpoint.Every = Every;
    unsigned Generations = 0;
    double PerStep =
        measurePerStep(Iters, Prob, RunCfg, Steps, &Generations);
    if (Every == 0)
      BasePerStep = PerStep;
    CadenceRow Row{Every, PerStep, PerStep / BasePerStep, Generations};
    Rows.push_back(Row);
    char Label[32];
    if (Every == 0)
      std::snprintf(Label, sizeof(Label), "no checkpoints");
    else
      std::snprintf(Label, sizeof(Label), "checkpoint every=%u", Every);
    std::printf("%-24s %12.4f %12.1f %9.2fx %8u\n", Label, PerStep * 1e3,
                1.0 / PerStep, Row.VsBase, Generations);
  }
  std::filesystem::remove_all(Dir);

  if (!JsonPath.empty()) {
    if (!writeJson(JsonPath, Cells, Steps, Cfg.Threads, Rows)) {
      std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
