//===- bench/ablation_reconstruction.cpp - A3: scheme cost/accuracy -------===//
//
// A3: the paper uses WENO3 for its flow figures but drops to 1st-order
// piecewise-constant reconstruction for the Fig. 4 speed measurement.
// This ablation quantifies that trade: wall time and exact-solution
// error of every reconstruction on the Sod tube at fixed resolution,
// plus the work ratio that justifies benchmarking with PC1.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  bool Full = false;
  int Cells = 400;

  CommandLine CL("ablation_reconstruction",
                 "A3: reconstruction scheme cost vs accuracy on Sod");
  CL.addFlag("full", Full, "run at 2000 cells");
  CL.addInt("cells", Cells, "grid cells");
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  if (Full)
    Cells = 2000;

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;

  std::printf("# A3: Sod tube N=%d to t=0.2, HLLC + RK3, serial\n", Cells);
  std::printf("%-8s %10s %8s %12s %14s\n", "recon", "wall[s]", "steps",
              "L1(rho)", "cost/accuracy");

  auto Exec = createBackend(BackendKind::Serial, 1);
  double Pc1Time = 0.0;
  for (ReconstructionKind K :
       {ReconstructionKind::PiecewiseConstant, ReconstructionKind::Tvd2,
        ReconstructionKind::Tvd3, ReconstructionKind::Weno3}) {
    SchemeConfig C = SchemeConfig::figureScheme();
    C.Recon = K;
    ArraySolver<1> S(sodProblem(static_cast<size_t>(Cells)), C, *Exec);
    WallTimer T;
    S.advanceTo(0.2);
    double Seconds = T.seconds();
    if (K == ReconstructionKind::PiecewiseConstant)
      Pc1Time = Seconds;
    RiemannErrors E = riemannL1Error(S, L, R, 0.5);
    std::printf("%-8s %10.3f %8u %12.5f %11.2fx\n",
                reconstructionKindName(K), Seconds, S.stepCount(), E.Rho,
                Pc1Time > 0.0 ? Seconds / Pc1Time : 1.0);
  }
  return 0;
}
