//===- bench/fig1_sod_tube.cpp - Paper Fig. 1 reproduction ----------------===//
//
// FIG1: "The expansion of a shockwave from the center in the
// one-dimensional simulation where two gasses of different densities
// meet.  The three diagrams move forward in time from left to right."
//
// Reproduces the three-snapshot series of the Sod problem: for each
// snapshot time the bench prints the density profile (terminal plot),
// the wave positions, and the L1 errors against the exact Riemann
// solution.  Uses the paper's flow-figure scheme (WENO3 + RK3).
//
//===----------------------------------------------------------------------===//

#include "io/AsciiPlot.h"
#include "io/CsvWriter.h"
#include "io/RunIo.h"
#include "solver/Diagnostics.h"
#include "solver/Problems.h"
#include "solver/SolverFactory.h"
#include "support/CommandLine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace sacfd;

int main(int Argc, const char **Argv) {
  int Cells = 400;
  bool Csv = false;
  bool Full = false; // accepted for harness uniformity; default IS full
  RunConfig Cfg;

  CommandLine CL("fig1_sod_tube",
                 "FIG1: three-snapshot Sod tube density series with "
                 "errors vs the exact solution");
  CL.addInt("cells", Cells, "grid cells");
  CL.addFlag("csv", Csv, "also write fig1_t*.csv profiles");
  CL.addFlag("full", Full, "no-op (the default already runs paper scale)");
  Cfg.registerAll(CL);
  if (!CL.parse(Argc, Argv))
    return CL.helpRequested() ? 0 : 1;
  Cfg.resolveOrExit();

  std::printf("# FIG1: Sod shock tube, N=%d, scheme %s, %s\n", Cells,
              Cfg.Scheme.str().c_str(), Cfg.executionStr().c_str());

  Prim<1> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0};
  L.P = 1.0;
  R.Rho = 0.125;
  R.Vel = {0.0};
  R.P = 0.1;

  Problem<1> Prob = sodProblem(static_cast<size_t>(Cells));
  SolverRun<1> Run = makeSolverRun(Prob, Cfg);
  installEmergencyCheckpoint(Run);
  EulerSolver<1> &Solver = Run.solver();

  WallTimer Timer;
  const double SnapshotTimes[] = {0.05, 0.125, 0.2};
  std::printf("%10s %8s %12s %12s %12s %12s\n", "t", "steps", "L1(rho)",
              "L1(u)", "L1(p)", "min(rho)");

  for (double T : SnapshotTimes) {
    if (!Run.advanceTo(T))
      break;
    RiemannErrors E = riemannL1Error(Solver, L, R, 0.5);
    FieldHealth<1> H = fieldHealth(Solver);
    std::printf("%10.3f %8u %12.5f %12.5f %12.5f %12.5f\n", Solver.time(),
                Solver.stepCount(), E.Rho, E.U, E.P, H.MinDensity);
  }
  Run.printGuardReport();

  // Re-run for the visual series (fresh solver per frame keeps the plot
  // logic trivial and the run is cheap).
  std::printf("\n# density snapshots (the paper's three frames):\n");
  for (double T : SnapshotTimes) {
    SolverRun<1> Frame = makeSolverRun(Prob, Cfg);
    if (!Frame.advanceTo(T))
      std::printf("# frame t=%.3f: %s\n", T,
                  Frame.guard()->summary().c_str());
    std::vector<ProfileSample> Profile = profileOf(Frame.solver());
    std::vector<double> Density;
    for (const ProfileSample &S : Profile)
      Density.push_back(S.Rho);
    std::printf("t = %.3f\n%s\n", T,
                asciiLinePlot(Density, 72, 12).c_str());
    if (Csv) {
      char Path[64];
      std::snprintf(Path, sizeof(Path), "fig1_t%03d.csv",
                    static_cast<int>(T * 1000));
      writeProfileCsv(Path, Profile);
      std::printf("wrote %s\n", Path);
    }
  }
  std::printf("# FIG1 total wall time %.2fs\n", Timer.seconds());

  if (!writeRunTelemetry(Run, "fig1_sod_tube",
                         {{"cells", std::to_string(Cells)}})) {
    std::fprintf(stderr, "error: cannot write telemetry JSON\n");
    return 1;
  }
  return Run.failed() ? 1 : 0;
}
