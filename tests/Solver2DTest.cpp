//===- tests/Solver2DTest.cpp - 2D solver integration tests ---------------===//
//
// The paper's Fig. 2/3 configuration at test scale: diagonal symmetry,
// dimensional consistency with the 1D solver, conservation in closed
// boxes, and sanity of the shock-interaction flow structure.
//
//===----------------------------------------------------------------------===//

#include "euler/RankineHugoniot.h"
#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

SerialBackend Exec;

Prim<2> prim2(double Rho, double U, double V, double P) {
  Prim<2> W;
  W.Rho = Rho;
  W.Vel = {U, V};
  W.P = P;
  return W;
}

} // namespace

TEST(Solver2D, PreservesUniformFlow) {
  for (ReconstructionKind K :
       {ReconstructionKind::PiecewiseConstant, ReconstructionKind::Tvd2,
        ReconstructionKind::Weno3}) {
    SchemeConfig C;
    C.Recon = K;
    ArraySolver<2> S(uniformFlow2D(16), C, Exec);
    S.advanceSteps(5);
    for (std::ptrdiff_t I = 0; I < 16; ++I)
      for (std::ptrdiff_t J = 0; J < 16; ++J) {
        Prim<2> W = S.primitiveAt(Index{I, J});
        ASSERT_NEAR(W.Rho, 1.0, 1e-13);
        ASSERT_NEAR(W.Vel[0], 0.3, 1e-13);
        ASSERT_NEAR(W.Vel[1], -0.2, 1e-13);
        ASSERT_NEAR(W.P, 1.0, 1e-13);
      }
  }
}

TEST(Solver2D, YUniformDataMatchesOneDimensionalSolver) {
  // The dimensional-consistency property behind the paper's rank-generic
  // reuse: a 2D field that is constant along y must evolve exactly like
  // the 1D solver evolves one row.
  constexpr size_t N = 64;
  SchemeConfig C = SchemeConfig::figureScheme();

  Problem<1> P1 = sodProblem(N);

  Problem<2> P2;
  P2.Name = "sod-y-uniform";
  P2.Domain = Grid<2>({N, 8}, {0.0, 0.0}, {1.0, 0.125}, 2);
  P2.Boundary = BoundarySpec<2>::uniform(BcKind::Transmissive);
  P2.InitialState = [](const std::array<double, 2> &X) {
    return X[0] < 0.5 ? prim2(1.0, 0.0, 0.0, 1.0)
                      : prim2(0.125, 0.0, 0.0, 0.1);
  };

  ArraySolver<1> S1(P1, C, Exec);
  ArraySolver<2> S2(P2, C, Exec);
  // Same dx along x and same CFL over identical wave speeds: in the
  // y-uniform state v = 0, so EV_2d = (|u|+c)/dx + c/dy differs from
  // the 1D EV.  Advance with a fixed common dt instead.
  for (int Step = 0; Step < 20; ++Step) {
    double Dt = std::min(S1.computeDt(), S2.computeDt());
    // Use advanceTo's clamping path to step both with the same dt.
    S1.advanceTo(S1.time() + Dt);
    S2.advanceTo(S2.time() + Dt);
  }

  for (std::ptrdiff_t I = 0; I < static_cast<std::ptrdiff_t>(N); ++I) {
    Prim<1> W1 = S1.primitiveAt(Index{I});
    for (std::ptrdiff_t J = 0; J < 8; ++J) {
      Prim<2> W2 = S2.primitiveAt(Index{I, J});
      ASSERT_NEAR(W2.Rho, W1.Rho, 1e-11) << "cell " << I << "," << J;
      ASSERT_NEAR(W2.Vel[0], W1.Vel[0], 1e-11);
      ASSERT_NEAR(W2.Vel[1], 0.0, 1e-11) << "no y-velocity may appear";
      ASSERT_NEAR(W2.P, W1.P, 1e-11);
    }
  }
}

TEST(Solver2D, ShockInteractionStaysDiagonallySymmetric) {
  // The Fig. 2 configuration is mirror-symmetric about the main
  // diagonal; the discrete evolution must preserve that exactly:
  // field(i, j) = swap-velocities(field(j, i)).
  Problem<2> P = shockInteraction2D(32, 2.2, /*ChannelWidth=*/16.0);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  S.advanceSteps(12);

  for (std::ptrdiff_t I = 0; I < 32; ++I)
    for (std::ptrdiff_t J = 0; J < 32; ++J) {
      const Cons<2> &A = S.field().at(P.Domain.toStorage(Index{I, J}));
      const Cons<2> &B = S.field().at(P.Domain.toStorage(Index{J, I}));
      ASSERT_NEAR(A.Rho, B.Rho, 1e-12) << I << "," << J;
      ASSERT_NEAR(A.Mom[0], B.Mom[1], 1e-12) << I << "," << J;
      ASSERT_NEAR(A.Mom[1], B.Mom[0], 1e-12) << I << "," << J;
      ASSERT_NEAR(A.E, B.E, 1e-12) << I << "," << J;
    }
}

TEST(Solver2D, ShockInteractionDevelopsExpectedStructure) {
  // After the shocks enter: compression near the lower-left region,
  // quiescent gas far from it, positive everywhere.
  Problem<2> P = shockInteraction2D(40, 2.2, 20.0);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  S.advanceTo(0.25 * P.EndTime);

  FieldHealth<2> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
  EXPECT_GT(H.MinPressure, 0.0);

  // Near the inflow corner the gas is post-shock: denser than quiescent.
  Prim<2> NearCorner = S.primitiveAt(Index{1, 1});
  EXPECT_GT(NearCorner.P, 2.0) << "post-shock pressure at the channels";

  // The far corner is still quiescent (shock has not arrived).
  Prim<2> FarCorner = S.primitiveAt(Index{38, 38});
  EXPECT_NEAR(FarCorner.Rho, 1.0, 1e-6);
  EXPECT_NEAR(FarCorner.P, 1.0, 1e-6);
}

TEST(Solver2D, PrimaryShockPositionTracksRankineHugoniotSpeed) {
  // The primary shock along the channel axis must advance at ~Ms * c0.
  double Ms = 2.2, H = 30.0;
  Problem<2> P = shockInteraction2D(60, Ms, H); // dx = 1
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  double C0 = P.G.soundSpeed(1.0, 1.0);
  double RunTime = 12.0 / (Ms * C0); // shock should travel ~12 units
  S.advanceTo(RunTime);

  // Walk along y = h/2 (inside the jet) until the pressure falls to the
  // quiescent value: that is the shock front.
  std::ptrdiff_t Front = 0;
  for (std::ptrdiff_t I = 0; I < 60; ++I) {
    if (S.primitiveAt(Index{I, 15}).P > 1.5)
      Front = I;
    else
      break;
  }
  double FrontX = P.Domain.cellCenter(0, Front);
  EXPECT_NEAR(FrontX, Ms * C0 * RunTime, 3.0)
      << "shock front off Rankine-Hugoniot speed";
}

TEST(Solver2D, ConservationInClosedBox) {
  // Reflective box with a pressure bump: mass and energy exactly
  // conserved, and by symmetry both momentum components stay ~0.
  Problem<2> P;
  P.Name = "closed-box";
  P.Domain = Grid<2>::square(24, 1.0, 2);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Reflective);
  P.InitialState = [](const std::array<double, 2> &X) {
    double R2 = (X[0] - 0.5) * (X[0] - 0.5) + (X[1] - 0.5) * (X[1] - 0.5);
    return prim2(1.0, 0.0, 0.0, 1.0 + 2.0 * std::exp(-60.0 * R2));
  };

  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  ConservedTotals<2> Before = conservedTotals(S);
  S.advanceSteps(25);
  ConservedTotals<2> After = conservedTotals(S);

  EXPECT_NEAR(After.Mass, Before.Mass, 1e-12 * Before.Mass);
  EXPECT_NEAR(After.Energy, Before.Energy, 1e-12 * Before.Energy);
  EXPECT_NEAR(After.Momentum[0], 0.0, 1e-11);
  EXPECT_NEAR(After.Momentum[1], 0.0, 1e-11);
}

TEST(Solver2D, Riemann2DStableAndDiagonallySymmetric) {
  // Configuration 4 data are symmetric under (x, y) swap.
  Problem<2> P = riemann2D(24);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  S.advanceSteps(10);

  FieldHealth<2> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);

  for (std::ptrdiff_t I = 0; I < 24; ++I)
    for (std::ptrdiff_t J = 0; J < 24; ++J) {
      const Cons<2> &A = S.field().at(P.Domain.toStorage(Index{I, J}));
      const Cons<2> &B = S.field().at(P.Domain.toStorage(Index{J, I}));
      ASSERT_NEAR(A.Rho, B.Rho, 1e-12);
      ASSERT_NEAR(A.Mom[0], B.Mom[1], 1e-12);
    }
}

TEST(Solver2D, Riemann2DConfig12TopBottomSymmetryOfContacts) {
  // Configuration 12 is symmetric under (x, y) swap as well (NW and SE
  // mirror each other); check it holds discretely, and that the run
  // stays healthy.
  Problem<2> P = riemann2D(24, 2, 12);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  S.advanceSteps(10);
  FieldHealth<2> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
  for (std::ptrdiff_t I = 0; I < 24; ++I)
    for (std::ptrdiff_t J = 0; J < 24; ++J) {
      const Cons<2> &A = S.field().at(P.Domain.toStorage(Index{I, J}));
      const Cons<2> &B = S.field().at(P.Domain.toStorage(Index{J, I}));
      ASSERT_NEAR(A.Rho, B.Rho, 1e-12) << I << "," << J;
      ASSERT_NEAR(A.Mom[0], B.Mom[1], 1e-12);
    }
}

TEST(Solver2D, Riemann2DConfig6SpinsUpVorticity) {
  // Configuration 6: four contacts induce rotation; after a while the
  // field must carry nonzero circulation while staying positive.
  Problem<2> P = riemann2D(24, 2, 6);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<2> S(P, C, Exec);
  S.advanceTo(0.15);
  FieldHealth<2> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
  EXPECT_GT(H.MinPressure, 0.0);

  // Crude circulation: sum of (u_y dx - ... ) sign pattern around the
  // center; just require both velocity components to change sign across
  // the domain (rotating structure).
  Prim<2> WLeft = S.primitiveAt(Index{4, 12});
  Prim<2> WRight = S.primitiveAt(Index{19, 12});
  EXPECT_LT(WLeft.Vel[1] * WRight.Vel[1], 0.0)
      << "vertical velocity flips across the vortex core";
}

TEST(Solver2D, InflowGhostCellsHoldRankineHugoniotState) {
  double Ms = 2.2;
  Problem<2> P = shockInteraction2D(16, Ms, 8.0);
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<2> S(P, C, Exec);
  S.advanceSteps(3);

  // Ghost column x < 0 inside the channel (y < h): frozen post-shock.
  PostShockState Post = postShockState(Ms, 1.0, 1.0, P.G);
  const Cons<2> &Ghost = S.field().at(Index{1, 2 + 2});
  Prim<2> W = toPrim(Ghost, P.G);
  EXPECT_NEAR(W.Rho, Post.Rho, 1e-12);
  EXPECT_NEAR(W.Vel[0], Post.U, 1e-12);
  EXPECT_NEAR(W.Vel[1], 0.0, 1e-12);
  EXPECT_NEAR(W.P, Post.P, 1e-12);
}
