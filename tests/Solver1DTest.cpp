//===- tests/Solver1DTest.cpp - 1D solver integration tests ---------------===//
//
// The paper's Fig. 1 experiment (Sod tube) as executable validation: the
// solver is run against the exact Riemann solution across the full
// scheme matrix, plus conservation, TVD, positivity and contact
// preservation properties.
//
//===----------------------------------------------------------------------===//

#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

using namespace sacfd;

namespace {

SerialBackend Exec;

Prim<1> sodLeft() {
  Prim<1> W;
  W.Rho = 1.0;
  W.Vel = {0.0};
  W.P = 1.0;
  return W;
}
Prim<1> sodRight() {
  Prim<1> W;
  W.Rho = 0.125;
  W.Vel = {0.0};
  W.P = 0.1;
  return W;
}

struct SchemeCase {
  ReconstructionKind Recon;
  LimiterKind Limiter;
  RiemannKind Riemann;
  TimeIntegratorKind Integrator;

  std::string label() const {
    std::string S = reconstructionKindName(Recon);
    S += std::string("_") + limiterKindName(Limiter);
    S += std::string("_") + riemannKindName(Riemann);
    S += std::string("_") + timeIntegratorKindName(Integrator);
    return S;
  }

  SchemeConfig config() const {
    SchemeConfig C;
    C.Recon = Recon;
    C.Limiter = Limiter;
    C.Riemann = Riemann;
    C.Integrator = Integrator;
    return C;
  }
};

class SchemeMatrixTest : public ::testing::TestWithParam<SchemeCase> {};

} // namespace

TEST_P(SchemeMatrixTest, PreservesUniformFlowExactly) {
  // Free-stream preservation: a uniform state is a fixed point of every
  // consistent scheme.
  ArraySolver<1> S(uniformFlow1D(64), GetParam().config(), Exec);
  S.advanceSteps(10);
  for (std::ptrdiff_t I = 0; I < 64; ++I) {
    Prim<1> W = S.primitiveAt(Index{I});
    ASSERT_NEAR(W.Rho, 1.0, 1e-13);
    ASSERT_NEAR(W.Vel[0], 0.5, 1e-13);
    ASSERT_NEAR(W.P, 1.0, 1e-13);
  }
}

TEST_P(SchemeMatrixTest, SodTubeMatchesExactSolution) {
  // Run the Fig. 1 experiment at modest resolution; L1 density error
  // against the exact Riemann solution must be small and the field
  // healthy.
  ArraySolver<1> S(sodProblem(128), GetParam().config(), Exec);
  S.advanceTo(0.2);

  FieldHealth<1> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
  EXPECT_GT(H.MinPressure, 0.0);

  RiemannErrors E = riemannL1Error(S, sodLeft(), sodRight(), 0.5);
  ASSERT_TRUE(E.Valid);
  // First-order schemes sit near 0.02 at N=128; high-order near 0.005.
  double Bound =
      GetParam().Recon == ReconstructionKind::PiecewiseConstant ? 0.05
                                                                : 0.02;
  EXPECT_LT(E.Rho, Bound) << "L1(rho) too large";
  EXPECT_LT(E.U, 2.0 * Bound) << "L1(u) too large";
  EXPECT_LT(E.P, 2.0 * Bound) << "L1(p) too large";
}

INSTANTIATE_TEST_SUITE_P(
    SchemeMatrix, SchemeMatrixTest,
    ::testing::Values(
        // The paper's benchmark configuration (PC1 + RK3).
        SchemeCase{ReconstructionKind::PiecewiseConstant,
                   LimiterKind::MinMod, RiemannKind::Hllc,
                   TimeIntegratorKind::SspRk3},
        // The paper's flow-figure configuration (WENO3 + RK3).
        SchemeCase{ReconstructionKind::Weno3, LimiterKind::MinMod,
                   RiemannKind::Hllc, TimeIntegratorKind::SspRk3},
        // TVD2 with each limiter.
        SchemeCase{ReconstructionKind::Tvd2, LimiterKind::MinMod,
                   RiemannKind::Hllc, TimeIntegratorKind::SspRk2},
        SchemeCase{ReconstructionKind::Tvd2, LimiterKind::Superbee,
                   RiemannKind::Hllc, TimeIntegratorKind::SspRk2},
        SchemeCase{ReconstructionKind::Tvd2, LimiterKind::VanLeer,
                   RiemannKind::Hllc, TimeIntegratorKind::SspRk2},
        SchemeCase{ReconstructionKind::Tvd2, LimiterKind::Mc,
                   RiemannKind::Hllc, TimeIntegratorKind::SspRk2},
        // TVD3.
        SchemeCase{ReconstructionKind::Tvd3, LimiterKind::MinMod,
                   RiemannKind::Hllc, TimeIntegratorKind::SspRk3},
        // Riemann solver sweep under WENO3.
        SchemeCase{ReconstructionKind::Weno3, LimiterKind::MinMod,
                   RiemannKind::Rusanov, TimeIntegratorKind::SspRk3},
        SchemeCase{ReconstructionKind::Weno3, LimiterKind::MinMod,
                   RiemannKind::Hll, TimeIntegratorKind::SspRk3},
        SchemeCase{ReconstructionKind::Weno3, LimiterKind::MinMod,
                   RiemannKind::Roe, TimeIntegratorKind::SspRk3}),
    [](const ::testing::TestParamInfo<SchemeCase> &Info) {
      return Info.param.label();
    });

//===----------------------------------------------------------------------===//
// Physics properties
//===----------------------------------------------------------------------===//

TEST(Solver1D, HigherOrderBeatsFirstOrderOnSod) {
  SchemeConfig Pc = SchemeConfig::benchmarkScheme();
  SchemeConfig Weno = SchemeConfig::figureScheme();
  ArraySolver<1> A(sodProblem(128), Pc, Exec);
  ArraySolver<1> B(sodProblem(128), Weno, Exec);
  A.advanceTo(0.2);
  B.advanceTo(0.2);
  double EPc = riemannL1Error(A, sodLeft(), sodRight(), 0.5).Rho;
  double EWeno = riemannL1Error(B, sodLeft(), sodRight(), 0.5).Rho;
  EXPECT_LT(EWeno, EPc) << "WENO3 must beat PC1 at equal resolution";
}

TEST(Solver1D, ErrorDecreasesWithResolution) {
  SchemeConfig C = SchemeConfig::figureScheme();
  double Prev = 1e9;
  for (size_t N : {64, 128, 256}) {
    ArraySolver<1> S(sodProblem(N), C, Exec);
    S.advanceTo(0.2);
    double E = riemannL1Error(S, sodLeft(), sodRight(), 0.5).Rho;
    EXPECT_LT(E, Prev) << "N=" << N;
    Prev = E;
  }
}

TEST(Solver1D, MassAndEnergyConservedInClosedDomain) {
  // Reflective box with an off-center pressure bump: walls carry only
  // momentum flux, so mass and energy integrals are exact invariants.
  Problem<1> P = sodProblem(128);
  P.Boundary = BoundarySpec<1>::uniform(BcKind::Reflective);
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> S(P, C, Exec);

  ConservedTotals<1> Before = conservedTotals(S);
  S.advanceSteps(60);
  ConservedTotals<1> After = conservedTotals(S);

  EXPECT_NEAR(After.Mass, Before.Mass, 1e-12 * Before.Mass);
  EXPECT_NEAR(After.Energy, Before.Energy, 1e-12 * Before.Energy);
  // Momentum is NOT conserved (walls push back) — it must change once
  // the shock reaches a wall; just check it stays finite.
  EXPECT_TRUE(std::isfinite(After.Momentum[0]));
}

TEST(Solver1D, TotalVariationDoesNotBlowUp) {
  // Sod's solution is monotone between plateaus: for the TVD2 scheme the
  // density total variation must stay near its initial value.
  SchemeConfig C;
  C.Recon = ReconstructionKind::Tvd2;
  C.Limiter = LimiterKind::MinMod;
  C.Riemann = RiemannKind::Hllc;
  C.Integrator = TimeIntegratorKind::SspRk2;
  ArraySolver<1> S(sodProblem(200), C, Exec);
  double Tv0 = densityTotalVariation(S);
  S.advanceTo(0.2);
  double Tv1 = densityTotalVariation(S);
  EXPECT_LT(Tv1, Tv0 * 1.05) << "TV grew: " << Tv0 << " -> " << Tv1;
}

TEST(Solver1D, ContactPreservationVelocityAndPressureConstant) {
  // An isolated contact moving at u = 1: exact u and p stay constant;
  // HLLC must keep them constant to round-off (its design property).
  SchemeConfig C;
  C.Recon = ReconstructionKind::Tvd2;
  C.Limiter = LimiterKind::MinMod;
  C.Riemann = RiemannKind::Hllc;
  C.Integrator = TimeIntegratorKind::SspRk2;
  ArraySolver<1> S(movingContactProblem(100), C, Exec);
  S.advanceTo(0.1);
  for (std::ptrdiff_t I = 0; I < 100; ++I) {
    Prim<1> W = S.primitiveAt(Index{I});
    ASSERT_NEAR(W.Vel[0], 1.0, 1e-10) << "cell " << I;
    ASSERT_NEAR(W.P, 1.0, 1e-10) << "cell " << I;
  }
}

TEST(Solver1D, BlastWavesSurviveWithPositivity) {
  // Woodward-Colella blasts: pressure ratio 1e5 against reflecting
  // walls.  A short run must stay positive and finite.
  SchemeConfig C;
  C.Recon = ReconstructionKind::Tvd2;
  C.Limiter = LimiterKind::MinMod;
  C.Riemann = RiemannKind::Hllc;
  C.Integrator = TimeIntegratorKind::SspRk3;
  C.Cfl = 0.4;
  ArraySolver<1> S(blastWavesProblem(200), C, Exec);
  S.advanceTo(0.01);
  FieldHealth<1> H = fieldHealth(S);
  EXPECT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
  EXPECT_GT(H.MinPressure, 0.0);
}

TEST(Solver1D, LaxProblemShockPositionMatchesExactSpeed) {
  // Locate the steepest density drop at t = 0.13 and compare with the
  // exact right-shock speed from the Riemann solution.
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> S(laxProblem(200), C, Exec);
  S.advanceTo(0.13);

  Prim<1> L, R;
  L.Rho = 0.445;
  L.Vel = {0.698};
  L.P = 3.528;
  R.Rho = 0.5;
  R.Vel = {0.0};
  R.P = 0.571;
  ExactRiemannSolver RS(L, R);
  ASSERT_TRUE(RS.valid());
  ASSERT_TRUE(RS.rightIsShock());
  double Gam = 1.4;
  double Cr = std::sqrt(Gam * R.P / R.Rho);
  double Ratio = RS.pStar() / R.P;
  double ShockSpeed =
      R.Vel[0] + Cr * std::sqrt((Gam + 1.0) / (2.0 * Gam) * Ratio +
                                (Gam - 1.0) / (2.0 * Gam));
  double ExpectedX = 0.5 + ShockSpeed * 0.13;

  double SteepestDrop = 0.0;
  double ShockPos = 0.0;
  for (std::ptrdiff_t I = 0; I + 1 < 200; ++I) {
    double Drop = S.primitiveAt(Index{I}).Rho -
                  S.primitiveAt(Index{I + 1}).Rho;
    if (Drop > SteepestDrop) {
      SteepestDrop = Drop;
      ShockPos = S.problem().Domain.cellCenter(0, I);
    }
  }
  EXPECT_NEAR(ShockPos, ExpectedX, 0.03);
}

TEST(Solver1D, RandomRiemannProblemsStayPositiveAcrossSchemes) {
  // Robustness fuzz: random (bounded, non-vacuum) Riemann data run a few
  // steps under every reconstruction; the solution must stay finite and
  // positive.
  unsigned Seed = 314159;
  auto Next = [&Seed] {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<double>(Seed % 10000) / 10000.0;
  };
  for (int Trial = 0; Trial < 12; ++Trial) {
    Prim<1> L, R;
    L.Rho = 0.2 + 2.0 * Next();
    L.Vel = {1.5 * Next() - 0.75};
    L.P = 0.2 + 2.0 * Next();
    R.Rho = 0.2 + 2.0 * Next();
    R.Vel = {1.5 * Next() - 0.75};
    R.P = 0.2 + 2.0 * Next();

    for (ReconstructionKind K :
         {ReconstructionKind::PiecewiseConstant, ReconstructionKind::Tvd2,
          ReconstructionKind::Weno3}) {
      SchemeConfig C = SchemeConfig::figureScheme();
      C.Recon = K;
      Problem<1> P = sodProblem(64);
      P.InitialState = [L, R](const std::array<double, 1> &X) {
        return X[0] < 0.5 ? L : R;
      };
      ArraySolver<1> S(P, C, Exec);
      S.advanceSteps(8);
      FieldHealth<1> H = fieldHealth(S);
      ASSERT_TRUE(H.AllFinite)
          << "trial " << Trial << " " << reconstructionKindName(K);
      ASSERT_GT(H.MinDensity, 0.0) << "trial " << Trial;
      ASSERT_GT(H.MinPressure, 0.0) << "trial " << Trial;
    }
  }
}

TEST(Solver1D, GetDtMatchesCflDefinition) {
  // dt = CFL / max((|u|+c)/dx) — check against a direct evaluation.
  SchemeConfig C = SchemeConfig::figureScheme();
  C.Cfl = 0.6;
  ArraySolver<1> S(sodProblem(64), C, Exec);
  double Dt = S.computeDt();

  double EvMax = 0.0;
  const Grid<1> &G = S.problem().Domain;
  for (std::ptrdiff_t I = 0; I < 64; ++I) {
    Prim<1> W = S.primitiveAt(Index{I});
    EvMax = std::max(EvMax,
                     maxWaveSpeed(W, S.problem().G, 0) * (1.0 / G.dx(0)));
  }
  EXPECT_NEAR(Dt, 0.6 / EvMax, 1e-14);
}

TEST(Solver1D, ShuOsherShockEntropyInteraction) {
  // Ms = 3 shock hitting a sinusoidal entropy field: the shock arrives
  // near x = -4 + 3.55 * t and compressed oscillations pile up behind
  // it.  Checks position, amplification and health at t = 1.8.
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> S(shuOsherProblem(300), C, Exec);
  S.advanceTo(1.8);

  FieldHealth<1> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);

  const Grid<1> &G = S.problem().Domain;
  double MaxRho = 0.0;
  double SteepestDrop = 0.0, ShockPos = 0.0;
  for (std::ptrdiff_t I = 0; I + 1 < 300; ++I) {
    double Rho = S.primitiveAt(Index{I}).Rho;
    MaxRho = std::max(MaxRho, Rho);
    double Drop = Rho - S.primitiveAt(Index{I + 1}).Rho;
    if (Drop > SteepestDrop) {
      SteepestDrop = Drop;
      ShockPos = G.cellCenter(0, I);
    }
  }
  // Shock speed from Rankine-Hugoniot at Ms = 3 into (1, 0, 1) gas is
  // ~3.55; the post-interaction density overshoots the plain post-shock
  // value (3.857) through wave compression.
  EXPECT_NEAR(ShockPos, -4.0 + 3.55 * 1.8, 0.4);
  EXPECT_GT(MaxRho, 4.0);
  EXPECT_LT(MaxRho, 5.5);
}

TEST(Solver1D, BlastWavesReachKnownCollisionStructure) {
  // Woodward-Colella to the full t = 0.038: by then the two blasts have
  // collided; the density spike sits between x ~ 0.6 and 0.8 with peak
  // around 5-7 at moderate resolution.
  SchemeConfig C;
  C.Recon = ReconstructionKind::Tvd2;
  C.Limiter = LimiterKind::MinMod;
  C.Riemann = RiemannKind::Hllc;
  C.Integrator = TimeIntegratorKind::SspRk3;
  C.Cfl = 0.4;
  ArraySolver<1> S(blastWavesProblem(400), C, Exec);
  S.advanceTo(0.038);

  FieldHealth<1> H = fieldHealth(S);
  ASSERT_TRUE(H.AllFinite);
  EXPECT_GT(H.MinDensity, 0.0);
  EXPECT_GT(H.MinPressure, 0.0);

  double MaxRho = 0.0, PeakX = 0.0;
  for (std::ptrdiff_t I = 0; I < 400; ++I) {
    double Rho = S.primitiveAt(Index{I}).Rho;
    if (Rho > MaxRho) {
      MaxRho = Rho;
      PeakX = S.problem().Domain.cellCenter(0, I);
    }
  }
  EXPECT_GT(MaxRho, 4.0) << "collision density spike";
  EXPECT_GT(PeakX, 0.55);
  EXPECT_LT(PeakX, 0.85);
}

TEST(Solver1D, AdvanceToLandsExactlyOnEndTime) {
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<1> S(sodProblem(64), C, Exec);
  S.advanceTo(0.05);
  EXPECT_DOUBLE_EQ(S.time(), 0.05);
  EXPECT_GT(S.stepCount(), 0u);
}

TEST(Solver1D, AdvanceToSnapsDenormalRemainders) {
  // An end time one ulp past the current clock used to grind the loop:
  // Dt clamps to the remainder, Time += Dt rounds back to Time, and the
  // step count spins unbounded.  The remainder snap must finish such a
  // request in zero additional steps, landing exactly on EndTime.
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<1> S(sodProblem(32), C, Exec);
  S.advanceSteps(5);
  double Now = S.time();
  unsigned StepsBefore = S.stepCount();

  double OneUlp = std::nextafter(Now, 1e300);
  S.advanceTo(OneUlp);
  EXPECT_EQ(S.time(), OneUlp);
  EXPECT_EQ(S.stepCount(), StepsBefore);

  // A remainder just under the snap threshold must also terminate
  // promptly, not degrade into many denormal-sized steps.
  double Eps = std::numeric_limits<double>::epsilon();
  double Near = S.time() + 2.0 * Eps * S.time();
  S.advanceTo(Near);
  EXPECT_EQ(S.time(), Near);
  EXPECT_LE(S.stepCount(), StepsBefore + 2);
}

TEST(Solver1D, StepCountAndTimeAdvance) {
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<1> S(sodProblem(32), C, Exec);
  EXPECT_EQ(S.stepCount(), 0u);
  EXPECT_EQ(S.time(), 0.0);
  double Dt = S.advance();
  EXPECT_GT(Dt, 0.0);
  EXPECT_EQ(S.stepCount(), 1u);
  EXPECT_DOUBLE_EQ(S.time(), Dt);
}
