//===- tests/ConservationTest.cpp - Closed-box conservation regression ----===//
//
// A finite-volume scheme in a closed box (solid reflective walls on every
// side) must conserve mass and total energy to round-off: interior flux
// contributions telescope, and the mirrored wall states make the wall
// mass/energy fluxes exactly zero.  This regression drives an acoustic
// pulse around a sealed 2D box for 200 steps and measures the drift
// through the telemetry conserved-total gauges — the same channel the
// --telemetry CLI exposes — for both engines.
//
//===----------------------------------------------------------------------===//

#include "runtime/Runtime.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "telemetry/Telemetry.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

constexpr unsigned kSteps = 200;

/// Sealed 2D box: reflective walls all around, fluid at rest with a
/// Gaussian pressure bump off-center (so waves hit every wall at
/// non-normal incidence before step 200).
Problem<2> closedBox(size_t N) {
  Problem<2> P;
  P.Name = "closed-box";
  P.Domain = Grid<2>({N, N}, {0.0, 0.0}, {1.0, 1.0}, 2);
  P.Boundary = BoundarySpec<2>::uniform(BcKind::Reflective);
  P.InitialState = [](const std::array<double, 2> &X) {
    Prim<2> W;
    W.Rho = 1.0;
    W.Vel = {0.0, 0.0};
    double R2 = (X[0] - 0.4) * (X[0] - 0.4) + (X[1] - 0.55) * (X[1] - 0.55);
    W.P = 1.0 + 1.5 * std::exp(-60.0 * R2);
    return W;
  };
  P.EndTime = 1.0;
  return P;
}

template <typename SolverT>
void checkClosedBoxConservation(const SchemeConfig &Scheme) {
  telemetry::reset();
  telemetry::setGaugeStride(1);
  telemetry::setEnabled(true);

  auto Exec = createBackend(BackendKind::Serial, 1);
  SolverT S(closedBox(32), Scheme, *Exec);
  S.advanceSteps(kSteps);

  telemetry::MetricsReport R = telemetry::snapshot();
  telemetry::setEnabled(false);

  const telemetry::GaugeSeries *Mass = R.findGauge("step.mass");
  const telemetry::GaugeSeries *Energy = R.findGauge("step.energy");
  ASSERT_NE(Mass, nullptr);
  ASSERT_NE(Energy, nullptr);
  ASSERT_EQ(Mass->Samples.size(), kSteps);
  ASSERT_EQ(Energy->Samples.size(), kSteps);

  // Round-off accumulation over 200 steps on a 32x32 interior sits far
  // below 1e-12 relative; anything above it means a conservation bug
  // (lossy boundary flux, non-telescoping update), not rounding.
  EXPECT_LT(Mass->maxRelativeDrift(), 1e-12);
  EXPECT_LT(Energy->maxRelativeDrift(), 1e-12);

  // The gauge channel must agree with the direct diagnostic on the final
  // state — same serial interior sum, so to the last ulp.
  ConservedTotals<2> Final = conservedTotals(S);
  EXPECT_DOUBLE_EQ(Mass->last(), Final.Mass);
  EXPECT_DOUBLE_EQ(Energy->last(), Final.Energy);

  // The pulse must actually be moving (dt gauge present, eigenvalue
  // above the quiescent sound speed) or the test proves nothing.
  const telemetry::GaugeSeries *Ev = R.findGauge("step.max_eigen");
  ASSERT_NE(Ev, nullptr);
  EXPECT_GT(Ev->first(), std::sqrt(1.4));
}

class ConservationTest : public ::testing::Test {
protected:
  void TearDown() override {
    telemetry::setEnabled(false);
    telemetry::reset();
  }
};

} // namespace

TEST_F(ConservationTest, ClosedBoxArraySolverFirstOrder) {
  checkClosedBoxConservation<ArraySolver<2>>(
      SchemeConfig::benchmarkScheme());
}

TEST_F(ConservationTest, ClosedBoxFusedSolverFirstOrder) {
  checkClosedBoxConservation<FusedSolver<2>>(
      SchemeConfig::benchmarkScheme());
}

TEST_F(ConservationTest, ClosedBoxArraySolverSecondOrder) {
  checkClosedBoxConservation<ArraySolver<2>>(SchemeConfig::figureScheme());
}
