//===- tests/ReconstructionTest.cpp - Face reconstruction tests -----------===//

#include "numerics/Reconstruction.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

using namespace sacfd;

namespace {

const ReconstructionKind AllSchemes[] = {
    ReconstructionKind::PiecewiseConstant, ReconstructionKind::Tvd2,
    ReconstructionKind::Tvd3, ReconstructionKind::Weno3,
    ReconstructionKind::Weno5};

std::array<double, 6> windowOf(double (*F)(double)) {
  // Cell averages approximated by midpoint values at x = -2..3 (the face
  // of interest sits at x = 0.5).
  std::array<double, 6> W;
  for (int I = 0; I < 6; ++I)
    W[I] = F(static_cast<double>(I) - 2.0);
  return W;
}

class SchemeSweepTest : public ::testing::TestWithParam<ReconstructionKind> {
};

} // namespace

TEST_P(SchemeSweepTest, ExactOnConstantData) {
  std::array<double, 6> W;
  W.fill(3.25);
  FaceScalars F = reconstructFace(GetParam(), LimiterKind::MinMod, W);
  EXPECT_DOUBLE_EQ(F.L, 3.25);
  EXPECT_DOUBLE_EQ(F.R, 3.25);
}

TEST_P(SchemeSweepTest, HigherOrderSchemesExactOnLinearData) {
  if (GetParam() == ReconstructionKind::PiecewiseConstant)
    GTEST_SKIP() << "PC1 is only exact on constants";
  auto W = windowOf(+[](double X) { return 2.0 * X + 1.0; });
  FaceScalars F = reconstructFace(GetParam(), LimiterKind::MinMod, W);
  // Face value at x = 0.5 is 2.0*0.5 + 1 = 2.
  EXPECT_NEAR(F.L, 2.0, 1e-12);
  EXPECT_NEAR(F.R, 2.0, 1e-12);
}

TEST_P(SchemeSweepTest, FaceValuesStayWithinNeighborRangeOnMonotoneData) {
  // TVD property at the face: reconstructed values bounded by the
  // adjacent cell averages for monotone data (WENO satisfies this only
  // essentially, so give it a tiny slack).
  auto W = windowOf(+[](double X) { return std::tanh(1.5 * X); });
  bool EssentiallyNonOscillatory =
      GetParam() == ReconstructionKind::Weno3 ||
      GetParam() == ReconstructionKind::Weno5;
  double Slack = EssentiallyNonOscillatory ? 5e-3 : 1e-12;
  FaceScalars F = reconstructFace(GetParam(), LimiterKind::MinMod, W);
  EXPECT_GE(F.L, W[2] - Slack);
  EXPECT_LE(F.L, W[3] + Slack);
  EXPECT_GE(F.R, W[2] - Slack);
  EXPECT_LE(F.R, W[3] + Slack);
}

TEST_P(SchemeSweepTest, MirrorSymmetry) {
  // Reversing the window swaps the roles of L and R.
  std::array<double, 6> W = {0.1, 0.4, 1.0, 2.5, 2.6, 2.7};
  std::array<double, 6> Rev;
  for (int I = 0; I < 6; ++I)
    Rev[I] = W[5 - I];
  FaceScalars F = reconstructFace(GetParam(), LimiterKind::MinMod, W);
  FaceScalars FR = reconstructFace(GetParam(), LimiterKind::MinMod, Rev);
  EXPECT_NEAR(F.L, FR.R, 1e-13);
  EXPECT_NEAR(F.R, FR.L, 1e-13);
}

TEST_P(SchemeSweepTest, ClipsAtDiscontinuityWithoutOvershoot) {
  // A step: no reconstruction may overshoot the two plateau values.
  std::array<double, 6> W = {0.0, 0.0, 0.0, 1.0, 1.0, 1.0};
  for (LimiterKind Lim : {LimiterKind::MinMod, LimiterKind::Superbee,
                          LimiterKind::VanLeer, LimiterKind::Mc}) {
    FaceScalars F = reconstructFace(GetParam(), Lim, W);
    EXPECT_GE(F.L, -1e-6);
    EXPECT_LE(F.L, 1.0 + 1e-6);
    EXPECT_GE(F.R, -1e-6);
    EXPECT_LE(F.R, 1.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, SchemeSweepTest, ::testing::ValuesIn(AllSchemes),
    [](const ::testing::TestParamInfo<ReconstructionKind> &I) {
      return reconstructionKindName(I.param);
    });

//===----------------------------------------------------------------------===//
// Scheme-specific accuracy
//===----------------------------------------------------------------------===//

TEST(Reconstruction, Weno3NearlyThirdOrderOnSmoothData) {
  // Reconstruct sin at a face and refine; the error should shrink ~h^3.
  auto FaceError = [](double H) {
    std::array<double, 6> W;
    for (int I = 0; I < 6; ++I) {
      // Exact cell averages of sin over [x-h/2, x+h/2].
      double X = (static_cast<double>(I) - 2.0) * H;
      W[I] = (std::cos(X - 0.5 * H) - std::cos(X + 0.5 * H)) / H;
    }
    FaceScalars F =
        reconstructFace(ReconstructionKind::Weno3, LimiterKind::MinMod, W);
    return std::fabs(F.L - std::sin(0.5 * H));
  };
  double E1 = FaceError(0.1);
  double E2 = FaceError(0.05);
  double Order = std::log2(E1 / E2);
  EXPECT_GT(Order, 2.5) << "E(0.1)=" << E1 << " E(0.05)=" << E2;
}

TEST(Reconstruction, Tvd3ThirdOrderOnSmoothMonotoneData) {
  auto FaceError = [](double H) {
    std::array<double, 6> W;
    for (int I = 0; I < 6; ++I) {
      double X = (static_cast<double>(I) - 2.0) * H + 0.3;
      W[I] = (std::cos(X - 0.5 * H) - std::cos(X + 0.5 * H)) / H;
    }
    FaceScalars F =
        reconstructFace(ReconstructionKind::Tvd3, LimiterKind::MinMod, W);
    return std::fabs(F.L - std::sin(0.5 * H + 0.3));
  };
  double E1 = FaceError(0.1);
  double E2 = FaceError(0.05);
  double Order = std::log2(E1 / E2);
  EXPECT_GT(Order, 2.5) << "E(0.1)=" << E1 << " E(0.05)=" << E2;
}

TEST(Reconstruction, Tvd2SecondOrderOnSmoothMonotoneData) {
  auto FaceError = [](double H) {
    std::array<double, 6> W;
    for (int I = 0; I < 6; ++I) {
      double X = (static_cast<double>(I) - 2.0) * H + 0.3;
      W[I] = (std::cos(X - 0.5 * H) - std::cos(X + 0.5 * H)) / H;
    }
    FaceScalars F =
        reconstructFace(ReconstructionKind::Tvd2, LimiterKind::Mc, W);
    return std::fabs(F.L - std::sin(0.5 * H + 0.3));
  };
  double E1 = FaceError(0.1);
  double E2 = FaceError(0.05);
  double Order = std::log2(E1 / E2);
  EXPECT_GT(Order, 1.6) << "E(0.1)=" << E1 << " E(0.05)=" << E2;
}

TEST(Reconstruction, GhostCellRequirements) {
  EXPECT_EQ(ghostCells(ReconstructionKind::PiecewiseConstant), 1u);
  EXPECT_EQ(ghostCells(ReconstructionKind::Tvd2), 2u);
  EXPECT_EQ(ghostCells(ReconstructionKind::Tvd3), 2u);
  EXPECT_EQ(ghostCells(ReconstructionKind::Weno3), 2u);
  EXPECT_EQ(ghostCells(ReconstructionKind::Weno5), 3u);
}

TEST(Reconstruction, Weno5NearFifthOrderOnSmoothData) {
  auto FaceError = [](double H) {
    std::array<double, 6> W;
    for (int I = 0; I < 6; ++I) {
      double X = (static_cast<double>(I) - 2.0) * H + 0.3;
      W[I] = (std::cos(X - 0.5 * H) - std::cos(X + 0.5 * H)) / H;
    }
    FaceScalars F =
        reconstructFace(ReconstructionKind::Weno5, LimiterKind::MinMod, W);
    return std::fabs(F.L - std::sin(0.5 * H + 0.3));
  };
  double E1 = FaceError(0.2);
  double E2 = FaceError(0.1);
  double Order = std::log2(E1 / E2);
  EXPECT_GT(Order, 4.0) << "E(0.2)=" << E1 << " E(0.1)=" << E2;
}

TEST(Reconstruction, NameParsingRoundTrip) {
  for (ReconstructionKind K : AllSchemes)
    EXPECT_EQ(parseReconstructionKind(reconstructionKindName(K)), K);
  EXPECT_EQ(parseReconstructionKind("muscl"), ReconstructionKind::Tvd2);
  EXPECT_FALSE(parseReconstructionKind("weno7").has_value());
}

//===----------------------------------------------------------------------===//
// Characteristic-space face states
//===----------------------------------------------------------------------===//

namespace {

template <unsigned Dim>
std::array<Cons<Dim>, 6> constantStencil(const Prim<Dim> &W, const Gas &G) {
  std::array<Cons<Dim>, 6> S;
  for (auto &Q : S)
    Q = toCons(W, G);
  return S;
}

} // namespace

TEST(FaceStates, ConstantStateIsReproducedExactly) {
  Gas G;
  Prim<2> W;
  W.Rho = 0.7;
  W.Vel = {1.0, -0.5};
  W.P = 1.3;
  auto Stencil = constantStencil<2>(W, G);
  for (ReconstructionKind K : AllSchemes)
    for (unsigned Axis = 0; Axis < 2; ++Axis) {
      FaceStates<2> F = reconstructFaceStates(
          K, LimiterKind::MinMod, ReconstructVariables::Characteristic,
          Stencil, G, Axis);
      for (unsigned C = 0; C < 4; ++C) {
        EXPECT_NEAR(F.L.comp(C), Stencil[2].comp(C), 1e-11);
        EXPECT_NEAR(F.R.comp(C), Stencil[3].comp(C), 1e-11);
      }
    }
}

TEST(FaceStates, PiecewiseConstantReturnsAdjacentCells) {
  Gas G;
  Prim<1> A, B;
  A.Rho = 1.0;
  A.Vel = {0.0};
  A.P = 1.0;
  B.Rho = 0.125;
  B.Vel = {0.0};
  B.P = 0.1;
  std::array<Cons<1>, 6> Stencil;
  for (int I = 0; I < 3; ++I)
    Stencil[I] = toCons(A, G);
  for (int I = 3; I < 6; ++I)
    Stencil[I] = toCons(B, G);

  FaceStates<1> F = reconstructFaceStates(
      ReconstructionKind::PiecewiseConstant, LimiterKind::MinMod,
      ReconstructVariables::Characteristic, Stencil, G, 0);
  EXPECT_TRUE(F.L == Stencil[2]);
  EXPECT_TRUE(F.R == Stencil[3]);
}

TEST(FaceStates, CharacteristicAndPrimitiveAgreeOnSmoothData) {
  // Away from discontinuities the two projection choices converge; on a
  // gently varying stencil they must agree to reconstruction accuracy.
  Gas G;
  std::array<Cons<1>, 6> Stencil;
  for (int I = 0; I < 6; ++I) {
    Prim<1> W;
    W.Rho = 1.0 + 0.01 * static_cast<double>(I);
    W.Vel = {0.2 + 0.005 * static_cast<double>(I)};
    W.P = 1.0 + 0.008 * static_cast<double>(I);
    Stencil[I] = toCons(W, G);
  }
  FaceStates<1> FC = reconstructFaceStates(
      ReconstructionKind::Tvd2, LimiterKind::MinMod,
      ReconstructVariables::Characteristic, Stencil, G, 0);
  FaceStates<1> FP = reconstructFaceStates(
      ReconstructionKind::Tvd2, LimiterKind::MinMod,
      ReconstructVariables::Primitive, Stencil, G, 0);
  for (unsigned C = 0; C < 3; ++C) {
    EXPECT_NEAR(FC.L.comp(C), FP.L.comp(C), 5e-4);
    EXPECT_NEAR(FC.R.comp(C), FP.R.comp(C), 5e-4);
  }
}
