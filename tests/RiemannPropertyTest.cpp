//===- tests/RiemannPropertyTest.cpp - Property-based flux tests ----------===//
//
// Property-based pass over the approximate Riemann solver menu with ~1000
// seeded-random physical left/right states per property:
//
//   * consistency      F(q, q) equals the physical flux f(q)
//   * x-reflection     mirroring and swapping the states negates the flux
//                      except for the normal momentum component
//   * vs. exact        every solver tracks the exact Godunov flux, with
//                      the deviation shrinking as the jump shrinks
//   * wave bracket     the Einfeldt estimates bracket the exact contact
//   * contact          HLLC and Roe resolve a stationary contact exactly
//
// The generator is seeded, so a failure reproduces deterministically.
//
//===----------------------------------------------------------------------===//

#include "euler/ExactRiemann.h"
#include "euler/Flux.h"
#include "numerics/RiemannSolvers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

using namespace sacfd;

namespace {

constexpr unsigned kSeed = 20260805;
constexpr int kTrials = 1000;

constexpr RiemannKind kAllKinds[] = {RiemannKind::Rusanov, RiemannKind::Hll,
                                     RiemannKind::Hllc, RiemannKind::Roe};

/// Seeded generator of physical primitive states well away from vacuum:
/// rho, p in [0.1, 2], every velocity component in [-0.5, 0.5].  The
/// pressure-positivity condition then holds for every L/R pair, so the
/// exact solver is always valid.
class StateGen {
public:
  template <unsigned Dim> Prim<Dim> draw() {
    Prim<Dim> W;
    W.Rho = RhoDist(Rng);
    for (unsigned D = 0; D < Dim; ++D)
      W.Vel[D] = VelDist(Rng);
    W.P = PDist(Rng);
    return W;
  }

private:
  std::mt19937 Rng{kSeed};
  std::uniform_real_distribution<double> RhoDist{0.1, 2.0};
  std::uniform_real_distribution<double> VelDist{-0.5, 0.5};
  std::uniform_real_distribution<double> PDist{0.1, 2.0};
};

/// Componentwise |A - B| / max(1, |B|), maximized over components.
template <unsigned Dim>
double maxRelDeviation(const Cons<Dim> &A, const Cons<Dim> &B) {
  double Dev = 0.0;
  for (unsigned K = 0; K < Cons<Dim>::N; ++K)
    Dev = std::max(Dev, std::abs(A.comp(K) - B.comp(K)) /
                            std::max(1.0, std::abs(B.comp(K))));
  return Dev;
}

template <unsigned Dim>
void expectFluxNear(const Cons<Dim> &A, const Cons<Dim> &B, double Tol,
                    const char *What, RiemannKind Kind, int Trial) {
  for (unsigned K = 0; K < Cons<Dim>::N; ++K)
    EXPECT_NEAR(A.comp(K), B.comp(K),
                Tol * std::max(1.0, std::abs(B.comp(K))))
        << What << " " << riemannKindName(Kind) << " trial " << Trial
        << " component " << K;
}

/// Mirror of a primitive state about the plane normal to \p Axis.
Prim<2> mirror(const Prim<2> &W, unsigned Axis) {
  Prim<2> M = W;
  M.Vel[Axis] = -M.Vel[Axis];
  return M;
}

} // namespace

TEST(RiemannProperty, ConsistencyFluxOfEqualStatesIsPhysicalFlux) {
  StateGen Gen;
  Gas G;
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    Prim<2> W = Gen.draw<2>();
    Cons<2> Q = toCons(W, G);
    unsigned Axis = Trial % 2;
    Cons<2> Exact = physicalFlux(Q, G, Axis);
    for (RiemannKind Kind : kAllKinds)
      expectFluxNear(numericalFlux(Kind, Q, Q, G, Axis), Exact, 1e-12,
                     "consistency", Kind, Trial);
  }
}

TEST(RiemannProperty, XReflectionSymmetry) {
  // Mirroring both states about the face and swapping left/right must
  // negate every flux component except the normal momentum: with
  // u -> -u the mass, energy and tangential-momentum fluxes (odd in u)
  // flip sign while rho u^2 + p (even in u) is preserved.
  StateGen Gen;
  Gas G;
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    Prim<2> Wl = Gen.draw<2>();
    Prim<2> Wr = Gen.draw<2>();
    unsigned Axis = Trial % 2;
    for (RiemannKind Kind : kAllKinds) {
      Cons<2> F = numericalFlux(Kind, toCons(Wl, G), toCons(Wr, G), G, Axis);
      Cons<2> FM = numericalFlux(Kind, toCons(mirror(Wr, Axis), G),
                                 toCons(mirror(Wl, Axis), G), G, Axis);
      Cons<2> Expected = F * -1.0;
      Expected.setComp(1 + Axis, F.comp(1 + Axis));
      expectFluxNear(FM, Expected, 1e-12, "reflection", Kind, Trial);
    }
  }
}

TEST(RiemannProperty, ApproximateFluxesTrackExactGodunovFlux) {
  // The approximate solvers are consistent approximations of the exact
  // Godunov flux f(sample(0)).  Over random jumps the deviation stays
  // bounded, and the mean is much smaller than the worst case.  Bounds
  // are calibrated against the seeded sample with ~2x headroom.
  StateGen Gen;
  Gas G;
  struct Bound {
    RiemannKind Kind;
    double MaxDev;
    double MeanDev;
  };
  const Bound Bounds[] = {
      {RiemannKind::Rusanov, 6.0, 1.2},
      {RiemannKind::Hll, 4.0, 0.9},
      {RiemannKind::Hllc, 1.5, 0.25},
      {RiemannKind::Roe, 2.0, 0.3},
  };
  double MaxDev[4] = {};
  double SumDev[4] = {};
  int Valid = 0;
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    Prim<1> L = Gen.draw<1>();
    Prim<1> R = Gen.draw<1>();
    ExactRiemannSolver Exact(L, R, G);
    ASSERT_TRUE(Exact.valid()) << "trial " << Trial;
    ++Valid;
    Cons<1> FEx = physicalFlux(Exact.sample(0.0), G, 0);
    for (int KI = 0; KI < 4; ++KI) {
      Cons<1> F = numericalFlux(Bounds[KI].Kind, toCons(L, G), toCons(R, G),
                                G, 0);
      double Dev = maxRelDeviation(F, FEx);
      MaxDev[KI] = std::max(MaxDev[KI], Dev);
      SumDev[KI] += Dev;
    }
  }
  for (int KI = 0; KI < 4; ++KI) {
    double Mean = SumDev[KI] / Valid;
    EXPECT_LT(MaxDev[KI], Bounds[KI].MaxDev)
        << riemannKindName(Bounds[KI].Kind);
    EXPECT_LT(Mean, Bounds[KI].MeanDev) << riemannKindName(Bounds[KI].Kind);
    RecordProperty(riemannKindName(Bounds[KI].Kind),
                   std::to_string(MaxDev[KI]) + " max / " +
                       std::to_string(Mean) + " mean");
  }
}

TEST(RiemannProperty, DeviationFromExactShrinksWithTheJump) {
  // Consistency again, but quantitative: for 1% jumps every solver must
  // sit within 2% of the exact Godunov flux (deviation is O(jump), with
  // an O(wave speed) constant).
  StateGen Gen;
  Gas G;
  std::mt19937 Rng(kSeed + 1);
  std::uniform_real_distribution<double> Jitter(-0.01, 0.01);
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    Prim<1> L = Gen.draw<1>();
    Prim<1> R = L;
    R.Rho *= 1.0 + Jitter(Rng);
    R.Vel[0] += 0.5 * Jitter(Rng);
    R.P *= 1.0 + Jitter(Rng);
    ExactRiemannSolver Exact(L, R, G);
    ASSERT_TRUE(Exact.valid()) << "trial " << Trial;
    Cons<1> FEx = physicalFlux(Exact.sample(0.0), G, 0);
    for (RiemannKind Kind : kAllKinds)
      EXPECT_LT(maxRelDeviation(numericalFlux(Kind, toCons(L, G),
                                              toCons(R, G), G, 0),
                                FEx),
                0.02)
          << riemannKindName(Kind) << " trial " << Trial;
  }
}

TEST(RiemannProperty, EinfeldtSpeedsBracketTheExactContact) {
  // The HLL-family positivity argument needs the wave-speed estimates to
  // contain the star region; the exact contact speed must sit inside
  // [SL, SR] for every physical pair.
  StateGen Gen;
  Gas G;
  for (int Trial = 0; Trial < kTrials; ++Trial) {
    Prim<1> L = Gen.draw<1>();
    Prim<1> R = Gen.draw<1>();
    ExactRiemannSolver Exact(L, R, G);
    ASSERT_TRUE(Exact.valid()) << "trial " << Trial;
    auto [SL, SR] = detail::einfeldtSpeeds(L, R, G, 0);
    EXPECT_LT(SL, SR) << "trial " << Trial;
    EXPECT_LE(SL, Exact.uStar() + 1e-12) << "trial " << Trial;
    EXPECT_GE(SR, Exact.uStar() - 1e-12) << "trial " << Trial;
  }
}

TEST(RiemannProperty, ContactPreservingSolversResolveStationaryContact) {
  // A stationary contact (equal pressure, zero velocity, any density
  // jump) has the exact flux (0, p, 0).  HLLC and Roe both carry an
  // explicit contact wave and must reproduce it to round-off; the
  // two-wave solvers smear it and are exempt.
  StateGen Gen;
  Gas G;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Prim<1> L = Gen.draw<1>();
    Prim<1> R = Gen.draw<1>();
    L.Vel[0] = R.Vel[0] = 0.0;
    R.P = L.P;
    for (RiemannKind Kind : {RiemannKind::Hllc, RiemannKind::Roe}) {
      Cons<1> F = numericalFlux(Kind, toCons(L, G), toCons(R, G), G, 0);
      double Tol = 1e-13 * std::max(1.0, L.P);
      EXPECT_NEAR(F.comp(0), 0.0, Tol)
          << riemannKindName(Kind) << " trial " << Trial;
      EXPECT_NEAR(F.comp(1), L.P, Tol)
          << riemannKindName(Kind) << " trial " << Trial;
      EXPECT_NEAR(F.comp(2), 0.0, Tol)
          << riemannKindName(Kind) << " trial " << Trial;
    }
  }
}
