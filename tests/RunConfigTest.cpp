//===- tests/RunConfigTest.cpp - Unified run configuration tests ----------===//
//
// RunConfig is the single flag surface every tool shares; these tests pin
// the contract: staged strings resolve into typed fields, malformed
// values produce structured errors naming the flag (never a silent
// default), and makeBackend() installs threads/schedule/tile on the
// backend it builds.
//
//===----------------------------------------------------------------------===//

#include "solver/RunConfig.h"
#include "solver/SolverFactory.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace sacfd;

namespace {

/// Registers all RunConfig flags, parses \p Args as a command line, and
/// resolves.  \returns the resolve() outcome; the error lands in *Error.
bool parseAndResolve(RunConfig &Cfg, std::vector<const char *> Args,
                     std::string *Error = nullptr) {
  CommandLine CL("RunConfigTest", "test tool");
  Cfg.registerAll(CL);
  Args.insert(Args.begin(), "RunConfigTest");
  if (!CL.parse(static_cast<int>(Args.size()), Args.data()))
    return false;
  std::string Local;
  return Cfg.resolve(Error ? *Error : Local);
}

} // namespace

TEST(EngineKind, NamesRoundTripThroughParse) {
  for (EngineKind K : {EngineKind::Array, EngineKind::ArrayMaterialized,
                       EngineKind::Fused})
    EXPECT_EQ(parseEngineKind(engineKindName(K)), K);
  EXPECT_EQ(parseEngineKind("materialized"), EngineKind::ArrayMaterialized);
  EXPECT_FALSE(parseEngineKind("fortran").has_value());
}

TEST(RunConfigResolve, DefaultsResolveClean) {
  RunConfig Cfg;
  std::string Error;
  EXPECT_TRUE(parseAndResolve(Cfg, {}, &Error)) << Error;
  EXPECT_EQ(Cfg.Engine, EngineKind::Array);
  EXPECT_EQ(Cfg.Backend, BackendKind::SpinPool);
  EXPECT_FALSE(Cfg.TileCfg.Enabled);
  EXPECT_EQ(Cfg.Sched.K, Schedule::Kind::StaticBlock);
}

TEST(RunConfigResolve, ParsesEveryFlagGroup) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(
      Cfg,
      {"--recon", "tvd2", "--limiter", "superbee", "--riemann", "hll",
       "--integrator", "rk2", "--cfl", "0.5", "--engine", "fused",
       "--backend", "fork-join", "--threads", "3", "--schedule",
       "dynamic,4", "--tile", "16x64", "--tile-dealing", "static,2",
       "--guard", "--guard-every", "4", "--telemetry", "out.json"},
      &Error))
      << Error;
  EXPECT_EQ(Cfg.Scheme.Recon, ReconstructionKind::Tvd2);
  EXPECT_EQ(Cfg.Scheme.Limiter, LimiterKind::Superbee);
  EXPECT_EQ(Cfg.Scheme.Riemann, RiemannKind::Hll);
  EXPECT_EQ(Cfg.Scheme.Integrator, TimeIntegratorKind::SspRk2);
  EXPECT_DOUBLE_EQ(Cfg.Scheme.Cfl, 0.5);
  EXPECT_EQ(Cfg.Engine, EngineKind::Fused);
  EXPECT_EQ(Cfg.Backend, BackendKind::ForkJoin);
  EXPECT_EQ(Cfg.Threads, 3u);
  EXPECT_EQ(Cfg.Sched.K, Schedule::Kind::Dynamic);
  EXPECT_EQ(Cfg.Sched.ChunkSize, 4u);
  EXPECT_TRUE(Cfg.TileCfg.Enabled);
  EXPECT_EQ(Cfg.TileCfg.Rows, 16u);
  EXPECT_EQ(Cfg.TileCfg.Cols, 64u);
  EXPECT_EQ(Cfg.TileCfg.Dealing.K, Schedule::Kind::StaticChunk);
  EXPECT_EQ(Cfg.TileCfg.Dealing.ChunkSize, 2u);
  EXPECT_TRUE(Cfg.Guard.Enabled);
  EXPECT_EQ(Cfg.Guard.Every, 4u);
  EXPECT_EQ(Cfg.Telemetry.Path, "out.json");
  EXPECT_EQ(Cfg.executionStr(), "fused/fork-join(3) tile=16x64");
}

TEST(RunConfigResolve, ParsesLayoutAndSimdFlags) {
  {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(Cfg, {}, &Error)) << Error;
    EXPECT_EQ(Cfg.FieldLayout, Layout::AoS);
    EXPECT_TRUE(Cfg.Simd);
  }
  {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(Cfg, {"--layout", "soa", "--no-simd"},
                                &Error))
        << Error;
    EXPECT_EQ(Cfg.FieldLayout, Layout::SoA);
    EXPECT_FALSE(Cfg.Simd);
    // Both knobs show up in the one-line execution description.
    EXPECT_NE(Cfg.executionStr().find("layout=soa"), std::string::npos);
    EXPECT_NE(Cfg.executionStr().find("no-simd"), std::string::npos);
  }
  {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(Cfg, {"--layout", "aos"}, &Error)) << Error;
    EXPECT_EQ(Cfg.FieldLayout, Layout::AoS);
  }
  {
    RunConfig Cfg;
    std::string Error;
    EXPECT_FALSE(parseAndResolve(Cfg, {"--layout", "csr"}, &Error));
    EXPECT_NE(Error.find("--layout"), std::string::npos) << Error;
    EXPECT_NE(Error.find("aos|soa"), std::string::npos) << Error;
  }
}

TEST(SolverFactory, ThreadsLayoutAndSimdIntoTheEngine) {
  for (const char *Engine : {"array", "array-materialized", "fused"}) {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(Cfg,
                                {"--engine", Engine, "--layout", "soa",
                                 "--no-simd", "--threads", "1"},
                                &Error))
        << Error;
    SolverRun<1> Run = makeSolverRun(sodProblem(16), Cfg);
    EXPECT_EQ(Run.solver().fieldLayout(), Layout::SoA) << Engine;
    EXPECT_FALSE(Run.solver().simdEnabled()) << Engine;
  }
}

TEST(RunConfigResolve, ParsesCheckpointFlagGroup) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(
      Cfg,
      {"--checkpoint-dir", "ckpts", "--checkpoint-every", "25",
       "--checkpoint-keep", "5", "--checkpoint-retries", "2",
       "--checkpoint-backoff-ms", "7", "--resume"},
      &Error))
      << Error;
  EXPECT_EQ(Cfg.Checkpoint.Dir, "ckpts");
  EXPECT_EQ(Cfg.Checkpoint.Every, 25u);
  EXPECT_EQ(Cfg.Checkpoint.Keep, 5u);
  EXPECT_EQ(Cfg.Checkpoint.RetryAttempts, 2u);
  EXPECT_EQ(Cfg.Checkpoint.RetryBackoffMs, 7u);
  EXPECT_TRUE(Cfg.Checkpoint.Resume);
  EXPECT_TRUE(Cfg.Checkpoint.periodic());
}

TEST(RunConfigResolve, CheckpointingIsOffByDefaultAndAtEveryZero) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg, {}, &Error)) << Error;
  EXPECT_TRUE(Cfg.Checkpoint.Dir.empty());
  EXPECT_FALSE(Cfg.Checkpoint.Resume);
  EXPECT_FALSE(Cfg.Checkpoint.periodic()) << "no dir, no periodic hook";

  RunConfig EveryZero;
  ASSERT_TRUE(parseAndResolve(
      EveryZero, {"--checkpoint-dir", "d", "--checkpoint-every", "0"},
      &Error))
      << Error;
  EXPECT_FALSE(EveryZero.Checkpoint.periodic()) << "--checkpoint-every 0";
}

TEST(RunConfigResolve, RejectsMalformedIoFaultSpecs) {
  for (const char *Bad : {"frob=1", "fail-write=0", "fail-rename=2"}) {
    RunConfig Cfg;
    std::string Error;
    EXPECT_FALSE(parseAndResolve(Cfg, {"--io-faults", Bad}, &Error)) << Bad;
    EXPECT_NE(Error.find("--io-faults"), std::string::npos)
        << "error for " << Bad << " was: " << Error;
  }
}

TEST(RunConfigResolve, RejectsBadValuesWithStructuredErrors) {
  struct BadCase {
    std::vector<const char *> Args;
    const char *MustMention;
  };
  const BadCase Cases[] = {
      {{"--recon", "weno9"}, "--recon"},
      {{"--limiter", "vanalbada"}, "--limiter"},
      {{"--riemann", "exact"}, "--riemann"},
      {{"--integrator", "rk4"}, "--integrator"},
      {{"--engine", "fortran"}, "--engine"},
      {{"--backend", "gpu"}, "--backend"},
      {{"--execution", "gpu"}, "--execution"},
      {{"--step-mode", "pipeline"}, "--step-mode"},
      {{"--schedule", "guided"}, "--schedule"},
      {{"--schedule", "static,0"}, "--schedule"},
      {{"--tile", "0x4"}, "--tile"},
      {{"--tile", "huge"}, "--tile"},
      {{"--tile-dealing", "guided"}, "--tile-dealing"},
      {{"--scenario", "sod:"}, "--scenario"},
      {{"--scenario", "no-such-workload"}, "--scenario"},
      {{"--scenario", "sod:mach=3"}, "--scenario"},
  };
  for (const BadCase &C : Cases) {
    RunConfig Cfg;
    std::string Error;
    EXPECT_FALSE(parseAndResolve(Cfg, C.Args, &Error))
        << C.Args[0] << " " << C.Args[1];
    EXPECT_NE(Error.find(C.MustMention), std::string::npos)
        << "error for " << C.Args[1] << " was: " << Error;
  }
}

TEST(RunConfigResolve, ScenarioSpecIsValidatedAndTuningApplied) {
  // A valid spec resolves, is kept verbatim for SolverFactory, and its
  // workload tuning fills scheme knobs the user left at defaults.
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg, {"--scenario", "blast-waves"}, &Error))
      << Error;
  EXPECT_TRUE(Cfg.hasScenario());
  EXPECT_EQ(Cfg.scenarioSpecText(), "blast-waves");
  EXPECT_DOUBLE_EQ(Cfg.Scheme.Cfl, 0.4); // blast-waves' recommended CFL

  // An explicit --cfl beats the scenario's recommendation.
  RunConfig Explicit;
  ASSERT_TRUE(parseAndResolve(
      Explicit, {"--scenario", "blast-waves", "--cfl", "0.5"}, &Error))
      << Error;
  EXPECT_DOUBLE_EQ(Explicit.Scheme.Cfl, 0.5);
}

TEST(RunConfigResolve, RejectsZeroThreadsWithStructuredError) {
  // 0 parses fine as an unsigned, so it reaches resolve() — which must
  // reject it by name instead of handing a zero-worker pool to a backend.
  RunConfig Cfg;
  std::string Error;
  EXPECT_FALSE(parseAndResolve(Cfg, {"--threads", "0"}, &Error));
  EXPECT_NE(Error.find("--threads"), std::string::npos) << Error;
}

TEST(RunConfigResolve, RejectsUnparseableUnsignedAtTheCliLayer) {
  // Trailing garbage, signs, overflow and empty values never reach
  // resolve(): the CLI layer itself refuses them.
  for (const char *Bad : {"4x", "-3", "+2", "99999999999999999999", "", " "}) {
    RunConfig Cfg;
    EXPECT_FALSE(parseAndResolve(Cfg, {"--threads", Bad}))
        << "'" << Bad << "' must not parse";
  }
}

TEST(RunConfigResolve, ExecutionAliasSelectsTheBackend) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg, {"--execution", "tasks"}, &Error))
      << Error;
  EXPECT_EQ(Cfg.Backend, BackendKind::Tasks);

  // When both are given, the alias wins.
  RunConfig Both;
  ASSERT_TRUE(parseAndResolve(
      Both, {"--backend", "serial", "--execution", "fork-join"}, &Error))
      << Error;
  EXPECT_EQ(Both.Backend, BackendKind::ForkJoin);
}

TEST(RunConfigResolve, StepModeParsesAndShowsInExecutionStr) {
  for (StepMode M : {StepMode::Loops, StepMode::Dag})
    EXPECT_EQ(parseStepMode(stepModeName(M)), M);
  EXPECT_FALSE(parseStepMode("barrier").has_value());

  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg,
                              {"--engine", "fused", "--backend", "tasks",
                               "--step-mode", "dag"},
                              &Error))
      << Error;
  EXPECT_EQ(Cfg.Step, StepMode::Dag);
  EXPECT_NE(Cfg.executionStr().find("step=dag"), std::string::npos)
      << Cfg.executionStr();
}

TEST(RunConfigResolve, DagStepModeValidatesBackendAndEngine) {
  RunConfig WrongBackend;
  std::string Error;
  EXPECT_FALSE(parseAndResolve(WrongBackend,
                               {"--step-mode", "dag", "--engine", "fused",
                                "--backend", "spin-pool"},
                               &Error));
  EXPECT_NE(Error.find("--backend=tasks"), std::string::npos) << Error;

  RunConfig WrongEngine;
  EXPECT_FALSE(parseAndResolve(
      WrongEngine, {"--step-mode", "dag", "--backend", "tasks"}, &Error));
  EXPECT_NE(Error.find("--engine=fused"), std::string::npos) << Error;
}

TEST(RunConfigResolve, TileDealingSurvivesTileRespec) {
  // --tile re-parses the tile geometry but must not clobber a dealing
  // schedule given through --tile-dealing, in either flag order.
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(
      Cfg, {"--tile-dealing", "dynamic,2", "--tile", "8x8"}, &Error))
      << Error;
  EXPECT_EQ(Cfg.TileCfg.Dealing.K, Schedule::Kind::Dynamic);
  EXPECT_EQ(Cfg.TileCfg.Dealing.ChunkSize, 2u);
}

TEST(RunConfigBackend, InstallsThreadsScheduleAndTile) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg,
                              {"--backend", "fork-join", "--threads", "2",
                               "--tile", "8x32"},
                              &Error))
      << Error;
  auto B = Cfg.makeBackend();
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(B->workerCount(), 2u);
  EXPECT_TRUE(B->tile().Enabled);
  EXPECT_EQ(B->tile().Rows, 8u);
  EXPECT_EQ(B->tile().Cols, 32u);
}

TEST(SolverFactory, BuildsEachEngine) {
  Problem<1> Prob = sodProblem(64);
  for (const char *Engine : {"array", "array-materialized", "fused"}) {
    RunConfig Cfg;
    std::string Error;
    ASSERT_TRUE(parseAndResolve(
        Cfg, {"--engine", Engine, "--backend", "serial"}, &Error))
        << Error;
    SolverRun<1> Run = makeSolverRun(Prob, Cfg);
    EXPECT_FALSE(Run.guarded());
    EXPECT_TRUE(Run.advanceSteps(3));
    EXPECT_EQ(Run.solver().stepCount(), 3u);
  }
}

TEST(SolverFactory, BuildsDagSteppingFusedRun) {
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg,
                              {"--engine", "fused", "--backend", "tasks",
                               "--threads", "2", "--step-mode", "dag"},
                              &Error))
      << Error;
  SolverRun<2> Run = makeSolverRun(riemann2D(12), Cfg);
  auto *F = dynamic_cast<FusedSolver<2> *>(&Run.solver());
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->dagStepping()) << "factory must arm the DAG pipeline";
  EXPECT_TRUE(Run.advanceSteps(3));
  EXPECT_EQ(Run.solver().stepCount(), 3u);
}

TEST(SolverFactory, BuildsArmedGuard) {
  Problem<1> Prob = sodProblem(64);
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(Cfg,
                              {"--backend", "serial", "--guard",
                               "--poison-step", "2", "--poison-cells", "2"},
                              &Error))
      << Error;
  SolverRun<1> Run = makeSolverRun(Prob, Cfg);
  ASSERT_TRUE(Run.guarded());
  // The armed fault must fire and the guard must recover (floor stage).
  EXPECT_TRUE(Run.advanceSteps(6));
  EXPECT_FALSE(Run.failed());
  EXPECT_FALSE(Run.guard()->reports().empty());
}

TEST(SolverFactory, GuardedAdvanceRoutesThroughGuard) {
  Problem<1> Prob = sodProblem(64);
  RunConfig Cfg;
  std::string Error;
  ASSERT_TRUE(parseAndResolve(
      Cfg, {"--backend", "serial", "--guard", "--guard-every", "2"},
      &Error))
      << Error;
  SolverRun<1> Run = makeSolverRun(Prob, Cfg);
  EXPECT_TRUE(Run.advanceTo(0.01));
  EXPECT_GT(Run.solver().stepCount(), 0u);
  EXPECT_FALSE(Run.failed());
}
