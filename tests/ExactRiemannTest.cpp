//===- tests/ExactRiemannTest.cpp - Exact Riemann solver validation -------===//
//
// Star-region values validated against the published table in Toro,
// "Riemann Solvers and Numerical Methods for Fluid Dynamics", 3rd ed.,
// Section 4.3.3 (Table 4.3), gamma = 1.4.
//
//===----------------------------------------------------------------------===//

#include "euler/ExactRiemann.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

Prim<1> prim(double Rho, double U, double P) {
  Prim<1> W;
  W.Rho = Rho;
  W.Vel = {U};
  W.P = P;
  return W;
}

struct ToroCase {
  const char *Name;
  Prim<1> L, R;
  double PStar, UStar;
};

class ToroTableTest : public ::testing::TestWithParam<ToroCase> {};

} // namespace

TEST_P(ToroTableTest, StarValuesMatchPublishedTable) {
  const ToroCase &C = GetParam();
  ExactRiemannSolver RS(C.L, C.R);
  ASSERT_TRUE(RS.valid());
  // Published values carry ~5-6 significant digits.
  EXPECT_NEAR(RS.pStar(), C.PStar, 2e-4 * std::max(1.0, C.PStar));
  EXPECT_NEAR(RS.uStar(), C.UStar, 2e-4 * std::max(1.0, std::fabs(C.UStar)));
}

INSTANTIATE_TEST_SUITE_P(
    Toro, ToroTableTest,
    ::testing::Values(
        ToroCase{"Sod", prim(1.0, 0.0, 1.0), prim(0.125, 0.0, 0.1),
                 0.30313, 0.92745},
        ToroCase{"Test123", prim(1.0, -2.0, 0.4), prim(1.0, 2.0, 0.4),
                 0.00189, 0.0},
        ToroCase{"LeftBlast", prim(1.0, 0.0, 1000.0), prim(1.0, 0.0, 0.01),
                 460.894, 19.5975},
        ToroCase{"RightBlast", prim(1.0, 0.0, 0.01), prim(1.0, 0.0, 100.0),
                 46.0950, -6.19633},
        ToroCase{"Collision",
                 prim(5.99924, 19.5975, 460.894),
                 prim(5.99242, -6.19633, 46.0950), 1691.64, 8.68975}),
    [](const ::testing::TestParamInfo<ToroCase> &Info) {
      return Info.param.Name;
    });

TEST(ExactRiemann, SodWaveStructure) {
  ExactRiemannSolver RS(prim(1.0, 0.0, 1.0), prim(0.125, 0.0, 0.1));
  ASSERT_TRUE(RS.valid());
  EXPECT_FALSE(RS.leftIsShock()) << "Sod: left wave is a rarefaction";
  EXPECT_TRUE(RS.rightIsShock()) << "Sod: right wave is a shock";
}

TEST(ExactRiemann, SamplingRecoversDataOutsideWaveFan) {
  Prim<1> L = prim(1.0, 0.0, 1.0), R = prim(0.125, 0.0, 0.1);
  ExactRiemannSolver RS(L, R);
  ASSERT_TRUE(RS.valid());

  Prim<1> FarLeft = RS.sample(-100.0);
  EXPECT_DOUBLE_EQ(FarLeft.Rho, L.Rho);
  EXPECT_DOUBLE_EQ(FarLeft.P, L.P);

  Prim<1> FarRight = RS.sample(100.0);
  EXPECT_DOUBLE_EQ(FarRight.Rho, R.Rho);
  EXPECT_DOUBLE_EQ(FarRight.P, R.P);
}

TEST(ExactRiemann, PressureAndVelocityContinuousAcrossContact) {
  ExactRiemannSolver RS(prim(1.0, 0.0, 1.0), prim(0.125, 0.0, 0.1));
  ASSERT_TRUE(RS.valid());
  double U = RS.uStar();
  Prim<1> JustLeft = RS.sample(U - 1e-9);
  Prim<1> JustRight = RS.sample(U + 1e-9);
  EXPECT_NEAR(JustLeft.P, JustRight.P, 1e-7);
  EXPECT_NEAR(JustLeft.Vel[0], JustRight.Vel[0], 1e-7);
  // Density jumps across the contact (Sod: ~0.4263 vs ~0.2656).
  EXPECT_GT(JustLeft.Rho - JustRight.Rho, 0.1);
}

TEST(ExactRiemann, SodStarDensities) {
  // Known star densities of the Sod problem.
  ExactRiemannSolver RS(prim(1.0, 0.0, 1.0), prim(0.125, 0.0, 0.1));
  ASSERT_TRUE(RS.valid());
  Prim<1> StarL = RS.sample(RS.uStar() - 1e-9);
  Prim<1> StarR = RS.sample(RS.uStar() + 1e-9);
  EXPECT_NEAR(StarL.Rho, 0.42632, 1e-4);
  EXPECT_NEAR(StarR.Rho, 0.26557, 1e-4);
}

TEST(ExactRiemann, RarefactionFanIsSmoothAndMonotone) {
  ExactRiemannSolver RS(prim(1.0, 0.0, 1.0), prim(0.125, 0.0, 0.1));
  ASSERT_TRUE(RS.valid());
  // Walk across the left rarefaction: head at -c_l = -sqrt(1.4).
  double Head = -std::sqrt(1.4);
  double Prev = 1.0;
  for (int I = 0; I <= 50; ++I) {
    double S = Head + static_cast<double>(I) / 50.0 * (RS.uStar() - Head);
    Prim<1> W = RS.sample(S);
    EXPECT_LE(W.Rho, Prev + 1e-12) << "density decreases through the fan";
    EXPECT_GT(W.Rho, 0.0);
    EXPECT_GT(W.P, 0.0);
    Prev = W.Rho;
  }
}

TEST(ExactRiemann, SymmetricCollisionHasZeroContactSpeed) {
  ExactRiemannSolver RS(prim(1.0, 2.0, 1.0), prim(1.0, -2.0, 1.0));
  ASSERT_TRUE(RS.valid());
  EXPECT_NEAR(RS.uStar(), 0.0, 1e-12);
  EXPECT_TRUE(RS.leftIsShock());
  EXPECT_TRUE(RS.rightIsShock());
  EXPECT_GT(RS.pStar(), 1.0);
}

TEST(ExactRiemann, MirrorSymmetryOfSampledSolution) {
  // Mirroring the data mirrors the solution: W(-s; L,R) == mirror of
  // W(s; mirror R, mirror L).
  Prim<1> L = prim(1.0, 0.3, 1.0), R = prim(0.5, -0.2, 0.4);
  Prim<1> Lm = prim(0.5, 0.2, 0.4), Rm = prim(1.0, -0.3, 1.0);
  ExactRiemannSolver A(L, R), B(Lm, Rm);
  ASSERT_TRUE(A.valid() && B.valid());
  EXPECT_NEAR(A.pStar(), B.pStar(), 1e-10);
  EXPECT_NEAR(A.uStar(), -B.uStar(), 1e-10);
  for (double S : {-1.5, -0.7, -0.1, 0.0, 0.2, 0.9, 1.8}) {
    Prim<1> Wa = A.sample(S);
    Prim<1> Wb = B.sample(-S);
    EXPECT_NEAR(Wa.Rho, Wb.Rho, 1e-9);
    EXPECT_NEAR(Wa.Vel[0], -Wb.Vel[0], 1e-9);
    EXPECT_NEAR(Wa.P, Wb.P, 1e-9);
  }
}

TEST(ExactRiemann, DetectsVacuumGeneration) {
  // Receding streams too fast for the pressure to stay positive.
  ExactRiemannSolver RS(prim(1.0, -20.0, 0.4), prim(1.0, 20.0, 0.4));
  EXPECT_FALSE(RS.valid());
}

TEST(ExactRiemann, RejectsUnphysicalInput) {
  EXPECT_FALSE(ExactRiemannSolver(prim(-1.0, 0.0, 1.0),
                                  prim(1.0, 0.0, 1.0)).valid());
  EXPECT_FALSE(ExactRiemannSolver(prim(1.0, 0.0, 0.0),
                                  prim(1.0, 0.0, 1.0)).valid());
}

TEST(ExactRiemann, TrivialProblemReturnsConstantState) {
  Prim<1> W = prim(0.7, 1.3, 2.1);
  ExactRiemannSolver RS(W, W);
  ASSERT_TRUE(RS.valid());
  EXPECT_NEAR(RS.pStar(), 2.1, 1e-10);
  EXPECT_NEAR(RS.uStar(), 1.3, 1e-10);
  for (double S : {-5.0, 0.0, 1.3, 5.0}) {
    Prim<1> Out = RS.sample(S);
    EXPECT_NEAR(Out.Rho, 0.7, 1e-9);
    EXPECT_NEAR(Out.Vel[0], 1.3, 1e-9);
    EXPECT_NEAR(Out.P, 2.1, 1e-9);
  }
}
