//===- tests/BoundaryTest.cpp - Ghost-cell boundary condition tests -------===//

#include "runtime/Runtime.h"
#include "runtime/SerialBackend.h"
#include "solver/BoundaryConditions.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

Gas G;

Cons<1> cons1(double Rho, double U, double P) {
  Prim<1> W;
  W.Rho = Rho;
  W.Vel = {U};
  W.P = P;
  return toCons(W, G);
}

Cons<2> cons2(double Rho, double U, double V, double P) {
  Prim<2> W;
  W.Rho = Rho;
  W.Vel = {U, V};
  W.P = P;
  return toCons(W, G);
}

/// 1D field on a 4-cell grid with 2 ghosts; interior cells get distinct
/// states indexed 0..3.
struct Field1D {
  Grid<1> Gr{{4}, {0.0}, {1.0}, 2};
  NDArray<Cons<1>> U{Gr.storageShape()};

  Field1D() {
    for (std::ptrdiff_t I = 0; I < 4; ++I)
      U.at(Gr.toStorage(Index{I})) =
          cons1(1.0 + static_cast<double>(I), 0.5, 2.0);
  }
};

} // namespace

TEST(Boundary1D, TransmissiveCopiesEdgeCell) {
  Field1D F;
  SerialBackend Exec;
  applyBoundaries(F.U, F.Gr, BoundarySpec<1>::uniform(BcKind::Transmissive),
                  Exec);
  // Low ghosts (storage 0,1) copy interior cell 0 (storage 2).
  EXPECT_TRUE(F.U.at(Index{0}) == F.U.at(Index{2}));
  EXPECT_TRUE(F.U.at(Index{1}) == F.U.at(Index{2}));
  // High ghosts copy interior cell 3 (storage 5).
  EXPECT_TRUE(F.U.at(Index{6}) == F.U.at(Index{5}));
  EXPECT_TRUE(F.U.at(Index{7}) == F.U.at(Index{5}));
}

TEST(Boundary1D, ReflectiveMirrorsAndNegatesNormalMomentum) {
  Field1D F;
  SerialBackend Exec;
  applyBoundaries(F.U, F.Gr, BoundarySpec<1>::uniform(BcKind::Reflective),
                  Exec);
  // Layer 1 (storage 1) mirrors interior cell 0 (storage 2); layer 2
  // (storage 0) mirrors interior cell 1 (storage 3).
  EXPECT_EQ(F.U.at(Index{1}).Rho, F.U.at(Index{2}).Rho);
  EXPECT_EQ(F.U.at(Index{1}).Mom[0], -F.U.at(Index{2}).Mom[0]);
  EXPECT_EQ(F.U.at(Index{1}).E, F.U.at(Index{2}).E);
  EXPECT_EQ(F.U.at(Index{0}).Rho, F.U.at(Index{3}).Rho);
  EXPECT_EQ(F.U.at(Index{0}).Mom[0], -F.U.at(Index{3}).Mom[0]);
  // High side.
  EXPECT_EQ(F.U.at(Index{6}).Rho, F.U.at(Index{5}).Rho);
  EXPECT_EQ(F.U.at(Index{6}).Mom[0], -F.U.at(Index{5}).Mom[0]);
  EXPECT_EQ(F.U.at(Index{7}).Rho, F.U.at(Index{4}).Rho);
}

TEST(Boundary1D, InflowWritesFrozenState) {
  Field1D F;
  SerialBackend Exec;
  Cons<1> Frozen = cons1(9.0, 3.0, 7.0);
  BoundarySpec<1> Spec = BoundarySpec<1>::uniform(BcKind::Transmissive);
  BcSegment<1> In;
  In.Kind = BcKind::Inflow;
  In.InflowState = Frozen;
  Spec.setSide(boundarySide(0, false), In);
  applyBoundaries(F.U, F.Gr, Spec, Exec);
  EXPECT_TRUE(F.U.at(Index{0}) == Frozen);
  EXPECT_TRUE(F.U.at(Index{1}) == Frozen);
  // High side still transmissive.
  EXPECT_TRUE(F.U.at(Index{7}) == F.U.at(Index{5}));
}

TEST(Boundary1D, PeriodicWrapsBothEnds) {
  Field1D F;
  SerialBackend Exec;
  applyBoundaries(F.U, F.Gr, BoundarySpec<1>::uniform(BcKind::Periodic),
                  Exec);
  // Interior cells 0..3 live at storage 2..5.  Low ghost layer 1
  // (storage 1) copies interior N-1 (storage 5); layer 2 copies N-2.
  EXPECT_TRUE(F.U.at(Index{1}) == F.U.at(Index{5}));
  EXPECT_TRUE(F.U.at(Index{0}) == F.U.at(Index{4}));
  // High ghost layer 1 (storage 6) copies interior 0 (storage 2).
  EXPECT_TRUE(F.U.at(Index{6}) == F.U.at(Index{2}));
  EXPECT_TRUE(F.U.at(Index{7}) == F.U.at(Index{3}));
}

//===----------------------------------------------------------------------===//
// 2D: segmented sides and corners
//===----------------------------------------------------------------------===//

namespace {

/// 6x6 grid on [0,1]^2 with 2 ghosts, interior marked by position.
struct Field2D {
  Grid<2> Gr{{6, 6}, {0.0, 0.0}, {1.0, 1.0}, 2};
  NDArray<Cons<2>> U{Gr.storageShape()};

  Field2D() {
    for (std::ptrdiff_t I = 0; I < 6; ++I)
      for (std::ptrdiff_t J = 0; J < 6; ++J)
        U.at(Gr.toStorage(Index{I, J})) =
            cons2(1.0 + 0.1 * static_cast<double>(I) +
                      0.01 * static_cast<double>(J),
                  0.3, -0.2, 1.5);
  }
};

} // namespace

TEST(Boundary2D, AllGhostCellsGetDefinedValues) {
  Field2D F;
  SerialBackend Exec;
  // Poison the ghosts, then check every storage cell is rewritten or
  // interior.
  Shape St = F.Gr.storageShape();
  Index Iv = St.delinearize(0);
  do {
    bool Interior = Iv[0] >= 2 && Iv[0] < 8 && Iv[1] >= 2 && Iv[1] < 8;
    if (!Interior)
      F.U.at(Iv) = cons2(std::nan(""), 0, 0, 1);
  } while (St.increment(Iv));

  applyBoundaries(F.U, F.Gr, BoundarySpec<2>::uniform(BcKind::Transmissive),
                  Exec);

  Iv = St.delinearize(0);
  do {
    EXPECT_TRUE(std::isfinite(F.U.at(Iv).Rho))
        << "ghost (" << Iv[0] << "," << Iv[1] << ") left undefined";
  } while (St.increment(Iv));
}

TEST(Boundary2D, ReflectiveWallNegatesOnlyNormalComponent) {
  Field2D F;
  SerialBackend Exec;
  applyBoundaries(F.U, F.Gr, BoundarySpec<2>::uniform(BcKind::Reflective),
                  Exec);
  // Left wall (axis 0 low): ghost (1, j) mirrors interior (2, j).
  for (std::ptrdiff_t J = 2; J < 8; ++J) {
    const Cons<2> &Ghost = F.U.at(Index{1, J});
    const Cons<2> &Src = F.U.at(Index{2, J});
    EXPECT_EQ(Ghost.Rho, Src.Rho);
    EXPECT_EQ(Ghost.Mom[0], -Src.Mom[0]) << "normal flipped";
    EXPECT_EQ(Ghost.Mom[1], Src.Mom[1]) << "tangential kept";
    EXPECT_EQ(Ghost.E, Src.E);
  }
  // Bottom wall (axis 1 low): ghost (i, 1) mirrors interior (i, 2).
  for (std::ptrdiff_t I = 2; I < 8; ++I) {
    const Cons<2> &Ghost = F.U.at(Index{I, 1});
    const Cons<2> &Src = F.U.at(Index{I, 2});
    EXPECT_EQ(Ghost.Mom[0], Src.Mom[0]);
    EXPECT_EQ(Ghost.Mom[1], -Src.Mom[1]);
  }
}

TEST(Boundary2D, SegmentedSideSelectsByTangentialCoordinate) {
  // The paper's left boundary: inflow for y < 0.5, wall above.
  Field2D F;
  SerialBackend Exec;
  Cons<2> Jet = cons2(2.0, 3.0, 0.0, 4.5);

  BoundarySpec<2> Spec = BoundarySpec<2>::uniform(BcKind::Transmissive);
  BcSegment<2> Exit;
  Exit.Kind = BcKind::Inflow;
  Exit.InflowState = Jet;
  Exit.TangentialLo = 0.0;
  Exit.TangentialHi = 0.5;
  BcSegment<2> Wall;
  Wall.Kind = BcKind::Reflective;
  Wall.TangentialLo = 0.5;
  Wall.TangentialHi = std::numeric_limits<double>::infinity();
  Spec.Side[boundarySide(0, false)] = {Exit, Wall};

  applyBoundaries(F.U, F.Gr, Spec, Exec);

  // Interior y cells 0..2 have centers < 0.5 (dx = 1/6): inflow.
  for (std::ptrdiff_t J = 2; J < 5; ++J) {
    EXPECT_TRUE(F.U.at(Index{1, J}) == Jet) << "j=" << J;
    EXPECT_TRUE(F.U.at(Index{0, J}) == Jet) << "j=" << J;
  }
  // Interior y cells 3..5 (centers > 0.5): reflective wall.
  for (std::ptrdiff_t J = 5; J < 8; ++J) {
    const Cons<2> &Ghost = F.U.at(Index{1, J});
    const Cons<2> &Src = F.U.at(Index{2, J});
    EXPECT_EQ(Ghost.Mom[0], -Src.Mom[0]) << "j=" << J;
    EXPECT_EQ(Ghost.Rho, Src.Rho) << "j=" << J;
  }
}

TEST(Boundary2D, PrescribedStateFollowsTangentialAndTime) {
  // The double-Mach top boundary: the ghost state is a function of the
  // tangential coordinate AND the solver clock, so the same spec must
  // fill different ghosts as time advances.
  Field2D F;
  SerialBackend Exec;
  Cons<2> Pre = cons2(1.4, 0.0, 0.0, 1.0);
  Cons<2> Post = cons2(8.0, 7.14, -4.125, 116.5);

  BoundarySpec<2> Spec = BoundarySpec<2>::uniform(BcKind::Transmissive);
  BcSegment<2> Top;
  Top.Kind = BcKind::Prescribed;
  // Moving front: post-shock left of x = 0.3 + t, pre-shock right of it.
  Top.StateAt = [Pre, Post](double Tangential, double Time) {
    return Tangential < 0.3 + Time ? Post : Pre;
  };
  Spec.setSide(boundarySide(1, true), Top);

  applyBoundaries(F.U, F.Gr, Spec, Exec, /*Time=*/0.0);
  // dx = 1/6: interior x cells 0,1 (centers 1/12, 3/12) are post-shock,
  // the rest pre-shock.
  EXPECT_TRUE(F.U.at(Index{2, 8}) == Post);
  EXPECT_TRUE(F.U.at(Index{3, 8}) == Post);
  EXPECT_TRUE(F.U.at(Index{4, 8}) == Pre);
  EXPECT_TRUE(F.U.at(Index{7, 9}) == Pre);

  // Advance the clock: the front has swept past x = 0.75.
  applyBoundaries(F.U, F.Gr, Spec, Exec, /*Time=*/0.5);
  EXPECT_TRUE(F.U.at(Index{4, 8}) == Post);
  EXPECT_TRUE(F.U.at(Index{6, 8}) == Post);
  EXPECT_TRUE(F.U.at(Index{7, 8}) == Pre);
}

TEST(Boundary2D, IdenticalAcrossBackends) {
  SerialBackend Serial;
  auto Pool = createBackend(BackendKind::SpinPool, 4);
  auto Fork = createBackend(BackendKind::ForkJoin, 3);

  Field2D A, B, C;
  BoundarySpec<2> Spec = BoundarySpec<2>::uniform(BcKind::Reflective);
  applyBoundaries(A.U, A.Gr, Spec, Serial);
  applyBoundaries(B.U, B.Gr, Spec, *Pool);
  applyBoundaries(C.U, C.Gr, Spec, *Fork);

  for (size_t I = 0; I < A.U.size(); ++I) {
    EXPECT_TRUE(A.U[I] == B.U[I]) << "cell " << I;
    EXPECT_TRUE(A.U[I] == C.U[I]) << "cell " << I;
  }
}

TEST(BoundarySpec, SegmentLookupClampsOutOfRange) {
  BoundarySpec<2> Spec;
  BcSegment<2> A, B;
  A.Kind = BcKind::Inflow;
  A.TangentialLo = 0.0;
  A.TangentialHi = 0.5;
  B.Kind = BcKind::Reflective;
  B.TangentialLo = 0.5;
  B.TangentialHi = 1.0;
  Spec.Side[0] = {A, B};

  EXPECT_EQ(Spec.segmentAt(0, 0.25).Kind, BcKind::Inflow);
  EXPECT_EQ(Spec.segmentAt(0, 0.75).Kind, BcKind::Reflective);
  // Corner-ghost coordinates outside [0, 1) clamp to nearest segment.
  EXPECT_EQ(Spec.segmentAt(0, -0.1).Kind, BcKind::Inflow);
  EXPECT_EQ(Spec.segmentAt(0, 1.2).Kind, BcKind::Reflective);
}
