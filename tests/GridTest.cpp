//===- tests/GridTest.cpp - Grid geometry tests ---------------------------===//

#include "solver/Grid.h"

#include <gtest/gtest.h>

using namespace sacfd;

TEST(Grid, StorageAndInteriorShapes) {
  Grid<2> G({400, 300}, {0.0, 0.0}, {4.0, 3.0}, 2);
  EXPECT_EQ(G.interiorShape(), Shape({400, 300}));
  EXPECT_EQ(G.storageShape(), Shape({404, 304}));
  EXPECT_EQ(G.interiorCount(), 120000u);
  EXPECT_EQ(G.ghost(), 2u);
}

TEST(Grid, CellWidths) {
  Grid<2> G({100, 50}, {0.0, -1.0}, {2.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(G.dx(0), 0.02);
  EXPECT_DOUBLE_EQ(G.dx(1), 0.04);
}

TEST(Grid, CellCentersIncludeGhostExtrapolation) {
  Grid<1> G({10}, {0.0}, {1.0}, 2);
  EXPECT_DOUBLE_EQ(G.cellCenter(0, 0), 0.05);
  EXPECT_DOUBLE_EQ(G.cellCenter(0, 9), 0.95);
  // Ghost centers continue the uniform spacing outward.
  EXPECT_DOUBLE_EQ(G.cellCenter(0, -1), -0.05);
  EXPECT_DOUBLE_EQ(G.cellCenter(0, 10), 1.05);
}

TEST(Grid, ToStorageShiftsByGhost) {
  Grid<2> G({8, 8}, {0.0, 0.0}, {1.0, 1.0}, 2);
  Index S = G.toStorage(Index{0, 7});
  EXPECT_EQ(S[0], 2);
  EXPECT_EQ(S[1], 9);
}

TEST(Grid, SquareBuilder) {
  Grid<2> G = Grid<2>::square(400, 400.0, 2);
  EXPECT_EQ(G.cells(0), 400u);
  EXPECT_EQ(G.cells(1), 400u);
  EXPECT_DOUBLE_EQ(G.dx(0), 1.0);
  EXPECT_DOUBLE_EQ(G.dx(1), 1.0);
  EXPECT_DOUBLE_EQ(G.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(G.hi(1), 400.0);
}

TEST(Grid, EqualityComparison) {
  Grid<1> A({10}, {0.0}, {1.0}, 2);
  Grid<1> B({10}, {0.0}, {1.0}, 2);
  Grid<1> C({10}, {0.0}, {1.0}, 1);
  Grid<1> D({20}, {0.0}, {1.0}, 2);
  EXPECT_TRUE(A == B);
  EXPECT_FALSE(A == C);
  EXPECT_FALSE(A == D);
}
