//===- tests/SupportTest.cpp - support/ unit tests ------------------------===//

#include "support/CommandLine.h"
#include "support/Env.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace sacfd;

//===----------------------------------------------------------------------===//
// StrUtil
//===----------------------------------------------------------------------===//

TEST(StrUtil, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  abc \t\n"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" a b "), "a b");
}

TEST(StrUtil, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StrUtil, ParseIntAcceptsWholeIntegersOnly) {
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-7"), -7);
  EXPECT_EQ(parseInt(" 13 "), 13);
  EXPECT_EQ(parseInt("0"), 0);
  EXPECT_FALSE(parseInt("12abc").has_value());
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("  ").has_value());
  EXPECT_FALSE(parseInt("1.5").has_value());
  EXPECT_FALSE(parseInt("999999999999999999999999").has_value());
}

TEST(StrUtil, ParseUnsignedRejectsSignsAndWraps) {
  EXPECT_EQ(parseUnsigned("42"), 42ull);
  EXPECT_EQ(parseUnsigned("0"), 0ull);
  EXPECT_EQ(parseUnsigned(" 13 "), 13ull);
  EXPECT_EQ(parseUnsigned("18446744073709551615"),
            18446744073709551615ull); // ULLONG_MAX is representable
  // Raw strtoull would wrap "-3" to 2^64 - 3; the sign must be rejected.
  EXPECT_FALSE(parseUnsigned("-3").has_value());
  EXPECT_FALSE(parseUnsigned("-0").has_value());
  EXPECT_FALSE(parseUnsigned("+5").has_value());
  EXPECT_FALSE(parseUnsigned(" -3 ").has_value());
  EXPECT_FALSE(parseUnsigned("").has_value());
  EXPECT_FALSE(parseUnsigned("12abc").has_value());
  EXPECT_FALSE(parseUnsigned("1.5").has_value());
  // One past ULLONG_MAX overflows.
  EXPECT_FALSE(parseUnsigned("18446744073709551616").has_value());
  // Far past 64 bits: strtoull saturates with ERANGE; must reject, not
  // silently return ULLONG_MAX.
  EXPECT_FALSE(parseUnsigned("99999999999999999999").has_value());
}

TEST(StrUtil, ParseDoubleAcceptsStrtodForms) {
  EXPECT_DOUBLE_EQ(parseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(parseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(parseDouble("0.125").value(), 0.125);
  EXPECT_FALSE(parseDouble("abc").has_value());
  EXPECT_FALSE(parseDouble("1.5x").has_value());
  EXPECT_FALSE(parseDouble("").has_value());
}

TEST(StrUtil, EqualsLowerIsCaseInsensitive) {
  EXPECT_TRUE(equalsLower("STATIC", "static"));
  EXPECT_TRUE(equalsLower("Dynamic", "dYnAmIc"));
  EXPECT_FALSE(equalsLower("static", "statics"));
  EXPECT_FALSE(equalsLower("a", "b"));
}

TEST(StrUtil, ToLowerMapsAsciiOnly) {
  EXPECT_EQ(toLower("AbC-123"), "abc-123");
  EXPECT_EQ(toLower(""), "");
}

//===----------------------------------------------------------------------===//
// TimingSamples
//===----------------------------------------------------------------------===//

TEST(TimingSamples, EmptyStatsAreZero) {
  TimingSamples S;
  EXPECT_TRUE(S.empty());
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.min(), 0.0);
  EXPECT_EQ(S.max(), 0.0);
  EXPECT_EQ(S.mean(), 0.0);
  EXPECT_EQ(S.median(), 0.0);
}

TEST(TimingSamples, StatsOverKnownSamples) {
  TimingSamples S;
  for (double V : {3.0, 1.0, 2.0, 5.0})
    S.add(V);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 5.0);
  EXPECT_DOUBLE_EQ(S.mean(), 2.75);
  // Lower-middle median of {1,2,3,5}.
  EXPECT_DOUBLE_EQ(S.median(), 2.0);
}

TEST(TimingSamples, MedianOfOddCount) {
  TimingSamples S;
  for (double V : {9.0, 1.0, 4.0})
    S.add(V);
  EXPECT_DOUBLE_EQ(S.median(), 4.0);
}

TEST(WallTimer, MeasuresNonNegativeMonotonicTime) {
  WallTimer T;
  double A = T.seconds();
  double B = T.seconds();
  EXPECT_GE(A, 0.0);
  EXPECT_GE(B, A);
  T.restart();
  EXPECT_GE(T.seconds(), 0.0);
}

//===----------------------------------------------------------------------===//
// Env
//===----------------------------------------------------------------------===//

TEST(Env, ReadsStringAndInt) {
  ::setenv("SACFD_TEST_VAR", "hello", 1);
  EXPECT_EQ(getEnvString("SACFD_TEST_VAR").value(), "hello");
  ::setenv("SACFD_TEST_VAR", "17", 1);
  EXPECT_EQ(getEnvInt("SACFD_TEST_VAR").value(), 17);
  ::setenv("SACFD_TEST_VAR", "junk", 1);
  EXPECT_FALSE(getEnvInt("SACFD_TEST_VAR").has_value());
  ::unsetenv("SACFD_TEST_VAR");
  EXPECT_FALSE(getEnvString("SACFD_TEST_VAR").has_value());
}

TEST(Env, HardwareThreadCountIsPositive) {
  EXPECT_GE(hardwareThreadCount(), 1u);
}

TEST(Env, DefaultThreadCountHonorsOverride) {
  ::setenv("SACFD_THREADS", "3", 1);
  EXPECT_EQ(defaultThreadCount(), 3u);
  ::setenv("SACFD_THREADS", "-2", 1);
  EXPECT_EQ(defaultThreadCount(), hardwareThreadCount());
  ::unsetenv("SACFD_THREADS");
  EXPECT_EQ(defaultThreadCount(), hardwareThreadCount());
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

namespace {

struct ParsedOptions {
  int Nx = 400;
  unsigned Threads = 1;
  double Cfl = 0.5;
  bool Full = false;
  std::string Scheme = "weno3";
};

bool parseWith(ParsedOptions &Opts, std::vector<const char *> Argv) {
  CommandLine CL("test", "test tool");
  CL.addInt("nx", Opts.Nx, "grid size");
  CL.addUnsigned("threads", Opts.Threads, "worker count");
  CL.addDouble("cfl", Opts.Cfl, "CFL number");
  CL.addFlag("full", Opts.Full, "paper scale");
  CL.addString("scheme", Opts.Scheme, "reconstruction");
  Argv.insert(Argv.begin(), "test");
  return CL.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(CommandLine, DefaultsSurviveEmptyArgv) {
  ParsedOptions Opts;
  EXPECT_TRUE(parseWith(Opts, {}));
  EXPECT_EQ(Opts.Nx, 400);
  EXPECT_EQ(Opts.Threads, 1u);
  EXPECT_DOUBLE_EQ(Opts.Cfl, 0.5);
  EXPECT_FALSE(Opts.Full);
  EXPECT_EQ(Opts.Scheme, "weno3");
}

TEST(CommandLine, ParsesSeparateAndInlineValues) {
  ParsedOptions Opts;
  EXPECT_TRUE(parseWith(
      Opts, {"--nx", "128", "--cfl=0.9", "--scheme", "tvd2", "--threads=4"}));
  EXPECT_EQ(Opts.Nx, 128);
  EXPECT_EQ(Opts.Threads, 4u);
  EXPECT_DOUBLE_EQ(Opts.Cfl, 0.9);
  EXPECT_EQ(Opts.Scheme, "tvd2");
}

TEST(CommandLine, BareFlagSetsTrueAndExplicitFalseWorks) {
  ParsedOptions Opts;
  EXPECT_TRUE(parseWith(Opts, {"--full"}));
  EXPECT_TRUE(Opts.Full);

  ParsedOptions Opts2;
  EXPECT_TRUE(parseWith(Opts2, {"--full=false"}));
  EXPECT_FALSE(Opts2.Full);
}

TEST(CommandLine, RejectsUnknownOptionsAndBadValues) {
  ParsedOptions Opts;
  EXPECT_FALSE(parseWith(Opts, {"--bogus", "1"}));
  EXPECT_FALSE(parseWith(Opts, {"--nx", "notanint"}));
  EXPECT_FALSE(parseWith(Opts, {"--threads", "-3"}));
  EXPECT_FALSE(parseWith(Opts, {"--nx"}));          // missing value
  EXPECT_FALSE(parseWith(Opts, {"positional"}));    // no positionals
  EXPECT_FALSE(parseWith(Opts, {"--full=maybe"}));  // bad bool
}

TEST(CommandLine, UnsignedRejectsEveryNegativeSyntax) {
  // --opt -3 must be rejected as documented, in all accepted spellings,
  // and must not wrap to a huge positive value.
  for (std::vector<const char *> Argv :
       {std::vector<const char *>{"--threads", "-3"},
        std::vector<const char *>{"--threads=-3"},
        std::vector<const char *>{"--threads", "-1"},
        std::vector<const char *>{"--threads=-0"}}) {
    ParsedOptions Opts;
    EXPECT_FALSE(parseWith(Opts, Argv));
    EXPECT_EQ(Opts.Threads, 1u) << "rejected value must not be applied";
  }
}

TEST(CommandLine, UnsignedRangeBoundaries) {
  ParsedOptions Opts;
  EXPECT_TRUE(parseWith(Opts, {"--threads", "4294967295"})); // UINT_MAX
  EXPECT_EQ(Opts.Threads, 4294967295u);
  // UINT_MAX + 1 and far-out-of-range values are rejected, not truncated.
  EXPECT_FALSE(parseWith(Opts, {"--threads", "4294967296"}));
  EXPECT_FALSE(parseWith(Opts, {"--threads", "99999999999999999999"}));
  EXPECT_EQ(Opts.Threads, 4294967295u);
}

TEST(CommandLine, OverflowDiagnosticNamesTheRange) {
  // An overflowing value must produce an "out of range" diagnostic
  // naming the limit — not the generic bad-value line that suggests a
  // typo.  Both overflow classes: past 64 bits (strtoull ERANGE) and
  // 64-bit-representable but past UINT_MAX.
  for (const char *Value : {"99999999999999999999", "4294967296"}) {
    ParsedOptions Opts;
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(parseWith(Opts, {"--threads", Value}));
    std::string Err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(Err.find(std::string("bad value '") + Value + "'"),
              std::string::npos)
        << Err;
    EXPECT_NE(Err.find("out of range (max 4294967295)"), std::string::npos)
        << Err;
  }
  // Int options get their own range note.
  ParsedOptions Opts;
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(parseWith(Opts, {"--nx", "99999999999"}));
  std::string Err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(Err.find("out of range (int)"), std::string::npos) << Err;
}

TEST(CommandLine, WasSetTracksExplicitFlagsOnly) {
  // wasSet distinguishes "user passed --cfl" from "default survived" —
  // the hook scenario tuning uses to avoid clobbering explicit choices.
  ParsedOptions Opts;
  CommandLine CL("test", "test tool");
  CL.addInt("nx", Opts.Nx, "grid size");
  CL.addDouble("cfl", Opts.Cfl, "CFL number");
  const char *Argv[] = {"test", "--cfl", "0.9"};
  EXPECT_TRUE(CL.parse(3, Argv));
  EXPECT_TRUE(CL.wasSet("cfl"));
  EXPECT_FALSE(CL.wasSet("nx"));
  EXPECT_FALSE(CL.wasSet("no-such-flag"));

  // A fresh parse resets the record.
  const char *Argv2[] = {"test", "--nx=64"};
  EXPECT_TRUE(CL.parse(2, Argv2));
  EXPECT_TRUE(CL.wasSet("nx"));
  EXPECT_FALSE(CL.wasSet("cfl"));
}

TEST(CommandLine, HelpStopsParsing) {
  ParsedOptions Opts;
  CommandLine CL("test", "test tool");
  CL.addInt("nx", Opts.Nx, "grid size");
  const char *Argv[] = {"test", "--help"};
  EXPECT_FALSE(CL.parse(2, Argv));
  EXPECT_TRUE(CL.helpRequested());
}
