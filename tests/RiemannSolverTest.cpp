//===- tests/RiemannSolverTest.cpp - Approximate Riemann solver tests -----===//
//
// Contract for every numerical flux:
//   consistency    F(q, q) = f(q)
//   conservativity mirror symmetry under coordinate reflection
//   upwinding      supersonic data passes the upwind physical flux
//   accuracy       close to the exact Godunov flux on standard problems
//
//===----------------------------------------------------------------------===//

#include "euler/ExactRiemann.h"
#include "numerics/RiemannSolvers.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace sacfd;

namespace {

const RiemannKind AllSolvers[] = {RiemannKind::Rusanov, RiemannKind::Hll,
                                  RiemannKind::Hllc, RiemannKind::Roe};

class RiemannSolverSweep : public ::testing::TestWithParam<RiemannKind> {};

template <unsigned Dim> Prim<Dim> randomPrim(unsigned &Seed) {
  auto Next = [&Seed] {
    Seed = Seed * 1664525u + 1013904223u;
    return static_cast<double>(Seed % 10000) / 10000.0;
  };
  Prim<Dim> W;
  W.Rho = 0.1 + 2.0 * Next();
  for (unsigned D = 0; D < Dim; ++D)
    W.Vel[D] = 3.0 * Next() - 1.5;
  W.P = 0.1 + 2.0 * Next();
  return W;
}

Prim<1> prim1(double Rho, double U, double P) {
  Prim<1> W;
  W.Rho = Rho;
  W.Vel = {U};
  W.P = P;
  return W;
}

/// Mirror a 2D state along \p Axis.
Prim<2> mirrored(const Prim<2> &W, unsigned Axis) {
  Prim<2> M = W;
  M.Vel[Axis] = -M.Vel[Axis];
  return M;
}

/// Exact Godunov flux via the exact Riemann solver (1D reference).
Cons<1> godunovFlux(const Prim<1> &L, const Prim<1> &R, const Gas &G) {
  ExactRiemannSolver RS(L, R, G);
  EXPECT_TRUE(RS.valid());
  Prim<1> FaceState = RS.sample(0.0);
  return physicalFlux(FaceState, G, 0);
}

} // namespace

TEST_P(RiemannSolverSweep, ConsistencyOnRandomStates1D) {
  Gas G;
  unsigned Seed = 5;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Prim<1> W = randomPrim<1>(Seed);
    Cons<1> Q = toCons(W, G);
    Cons<1> F = numericalFlux(GetParam(), Q, Q, G, 0);
    Cons<1> Exact = physicalFlux(Q, G, 0);
    for (unsigned C = 0; C < 3; ++C)
      ASSERT_NEAR(F.comp(C), Exact.comp(C),
                  1e-12 * (1.0 + std::fabs(Exact.comp(C))));
  }
}

TEST_P(RiemannSolverSweep, ConsistencyOnRandomStates2DBothAxes) {
  Gas G;
  unsigned Seed = 17;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Prim<2> W = randomPrim<2>(Seed);
    Cons<2> Q = toCons(W, G);
    for (unsigned Axis = 0; Axis < 2; ++Axis) {
      Cons<2> F = numericalFlux(GetParam(), Q, Q, G, Axis);
      Cons<2> Exact = physicalFlux(Q, G, Axis);
      for (unsigned C = 0; C < 4; ++C)
        ASSERT_NEAR(F.comp(C), Exact.comp(C),
                    1e-12 * (1.0 + std::fabs(Exact.comp(C))));
    }
  }
}

TEST_P(RiemannSolverSweep, MirrorSymmetry) {
  // Reflecting both states across the face negates mass/energy flux and
  // preserves normal-momentum flux.
  Gas G;
  unsigned Seed = 23;
  for (int Trial = 0; Trial < 100; ++Trial) {
    Prim<2> L = randomPrim<2>(Seed);
    Prim<2> R = randomPrim<2>(Seed);
    for (unsigned Axis = 0; Axis < 2; ++Axis) {
      Cons<2> F = numericalFlux(GetParam(), toCons(L, G), toCons(R, G), G,
                                Axis);
      Cons<2> FM = numericalFlux(GetParam(), toCons(mirrored(R, Axis), G),
                                 toCons(mirrored(L, Axis), G), G, Axis);
      double Tol = 1e-10;
      ASSERT_NEAR(F.Rho, -FM.Rho, Tol * (1.0 + std::fabs(F.Rho)));
      ASSERT_NEAR(F.Mom[Axis], FM.Mom[Axis],
                  Tol * (1.0 + std::fabs(F.Mom[Axis])));
      ASSERT_NEAR(F.Mom[1 - Axis], -FM.Mom[1 - Axis],
                  Tol * (1.0 + std::fabs(F.Mom[1 - Axis])));
      ASSERT_NEAR(F.E, -FM.E, Tol * (1.0 + std::fabs(F.E)));
    }
  }
}

TEST_P(RiemannSolverSweep, SupersonicUpwinding) {
  // Supersonic rightward flow: the Godunov-type solvers (HLL family,
  // Roe) must return the upwind physical flux exactly; Rusanov is a
  // central flux with scalar dissipation and is only approximately
  // upwind, so it gets a loose bound.
  Gas G;
  double Tol = GetParam() == RiemannKind::Rusanov ? 4.0 : 1e-9;

  Prim<1> L = prim1(1.0, 3.0, 1.0); // M ~ 2.5
  Prim<1> R = prim1(0.5, 3.5, 0.8);
  Cons<1> F = numericalFlux(GetParam(), toCons(L, G), toCons(R, G), G, 0);
  Cons<1> FL = physicalFlux(L, G, 0);
  for (unsigned C = 0; C < 3; ++C)
    EXPECT_NEAR(F.comp(C), FL.comp(C), Tol * (1.0 + std::fabs(FL.comp(C))))
        << riemannKindName(GetParam());

  // Supersonic leftward flow: the right flux.
  Prim<1> L2 = prim1(0.5, -3.5, 0.8);
  Prim<1> R2 = prim1(1.0, -3.0, 1.0);
  Cons<1> F2 = numericalFlux(GetParam(), toCons(L2, G), toCons(R2, G), G, 0);
  Cons<1> FR = physicalFlux(R2, G, 0);
  for (unsigned C = 0; C < 3; ++C)
    EXPECT_NEAR(F2.comp(C), FR.comp(C),
                Tol * (1.0 + std::fabs(FR.comp(C))));
}

TEST_P(RiemannSolverSweep, CloseToGodunovFluxOnSod) {
  Gas G;
  Prim<1> L = prim1(1.0, 0.0, 1.0);
  Prim<1> R = prim1(0.125, 0.0, 0.1);
  Cons<1> F = numericalFlux(GetParam(), toCons(L, G), toCons(R, G), G, 0);
  Cons<1> Exact = godunovFlux(L, R, G);
  // Approximate solvers act on the raw initial jump (the hardest case) and
  // differ from the sampled Godunov flux by bounded dissipation; HLLC on
  // Sod sits ~0.18 off in momentum, Rusanov ~0.3.
  for (unsigned C = 0; C < 3; ++C)
    EXPECT_NEAR(F.comp(C), Exact.comp(C), 0.35)
        << riemannKindName(GetParam()) << " component " << C;
}

TEST_P(RiemannSolverSweep, StationaryContactDissipation) {
  // A stationary contact: the exact flux is pure pressure.  HLLC and Roe
  // must resolve it exactly; Rusanov/HLL smear it.
  Gas G;
  Prim<1> L = prim1(1.0, 0.0, 1.0);
  Prim<1> R = prim1(0.25, 0.0, 1.0);
  Cons<1> F = numericalFlux(GetParam(), toCons(L, G), toCons(R, G), G, 0);
  if (GetParam() == RiemannKind::Hllc || GetParam() == RiemannKind::Roe) {
    EXPECT_NEAR(F.Rho, 0.0, 1e-12);
    EXPECT_NEAR(F.Mom[0], 1.0, 1e-12);
    EXPECT_NEAR(F.E, 0.0, 1e-12);
  } else {
    // Dissipative solvers produce a spurious mass flux here.
    EXPECT_GT(std::fabs(F.Rho), 1e-3);
    EXPECT_NEAR(F.Mom[0], 1.0, 0.2);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, RiemannSolverSweep,
                         ::testing::ValuesIn(AllSolvers),
                         [](const ::testing::TestParamInfo<RiemannKind> &I) {
                           return riemannKindName(I.param);
                         });

//===----------------------------------------------------------------------===//
// Solver-specific checks
//===----------------------------------------------------------------------===//

TEST(RiemannSolvers, DissipationOrdering) {
  // On Sod data, |mass-flux error vs Godunov| should not increase as the
  // solver gets more sophisticated: rusanov >= hll >= hllc(~roe).
  Gas G;
  Prim<1> L = prim1(1.0, 0.0, 1.0);
  Prim<1> R = prim1(0.125, 0.0, 0.1);
  Cons<1> Exact = godunovFlux(L, R, G);

  auto Error = [&](RiemannKind K) {
    Cons<1> F = numericalFlux(K, toCons(L, G), toCons(R, G), G, 0);
    return std::fabs(F.Rho - Exact.Rho);
  };
  double ERus = Error(RiemannKind::Rusanov);
  double EHll = Error(RiemannKind::Hll);
  double EHllc = Error(RiemannKind::Hllc);
  EXPECT_GE(ERus + 1e-12, EHll);
  EXPECT_GE(EHll + 1e-12, EHllc);
}

TEST(RiemannSolvers, RoeEntropyFixPreventsExpansionShock) {
  // Transonic rarefaction data (sonic point inside the left fan): plain
  // Roe produces an entropy-violating jump; the fix must add dissipation
  // so the flux departs from the upwind value.
  Gas G;
  Prim<1> L = prim1(1.0, -0.5, 0.2);
  Prim<1> R = prim1(0.2, 1.5, 0.02);
  Cons<1> FRoe = roeFlux(toCons(L, G), toCons(R, G), G, 0);
  // Compare against the exact Godunov flux: with the entropy fix the Roe
  // flux stays within the dissipation band of it (without the fix the
  // momentum flux error on this transonic fan is far larger).
  Cons<1> Exact = godunovFlux(L, R, G);
  for (unsigned C = 0; C < 3; ++C)
    EXPECT_NEAR(FRoe.comp(C), Exact.comp(C), 0.35) << "component " << C;
}

TEST(RiemannSolvers, HllcPreservesIsolatedShearWave2D) {
  // Pure tangential velocity jump: HLLC advects it without normal flux.
  Gas G;
  Prim<2> L, R;
  L.Rho = 1.0;
  L.Vel = {0.0, 1.0};
  L.P = 1.0;
  R = L;
  R.Vel[1] = -1.0;
  Cons<2> F = hllcFlux(toCons(L, G), toCons(R, G), G, 0);
  EXPECT_NEAR(F.Rho, 0.0, 1e-12);
  EXPECT_NEAR(F.Mom[0], 1.0, 1e-12);
  EXPECT_NEAR(F.E, 0.0, 1e-12);
}

TEST(RiemannSolvers, RandomProblemsStayNearGodunovFlux) {
  // Cross-validation against the exact solver: for random physical
  // Riemann data (vacuum excluded), every approximate flux must stay
  // within a dissipation-bounded distance of the exact Godunov flux.
  Gas G;
  unsigned Seed = 2024;
  int Checked = 0;
  for (int Trial = 0; Trial < 200; ++Trial) {
    Prim<1> L = randomPrim<1>(Seed);
    Prim<1> R = randomPrim<1>(Seed);
    ExactRiemannSolver RS(L, R, G);
    if (!RS.valid())
      continue;
    ++Checked;
    Cons<1> Exact = physicalFlux(RS.sample(0.0), G, 0);
    // Dissipation budget: Rusanov adds up to smax * |dQ| / 2, so the
    // bound scales with both the jump and the fastest signal speed.
    double Jump = 0.0;
    for (unsigned C = 0; C < 3; ++C)
      Jump = std::max(Jump, std::fabs(toCons(R, G).comp(C) -
                                      toCons(L, G).comp(C)));
    double Smax =
        std::max(maxWaveSpeed(L, G, 0), maxWaveSpeed(R, G, 0));
    double Bound = std::max(1.0, 1.5 * Smax * Jump);
    for (RiemannKind K : AllSolvers) {
      Cons<1> F = numericalFlux(K, toCons(L, G), toCons(R, G), G, 0);
      for (unsigned C = 0; C < 3; ++C)
        ASSERT_NEAR(F.comp(C), Exact.comp(C), Bound)
            << riemannKindName(K) << " trial " << Trial;
    }
  }
  EXPECT_GT(Checked, 150) << "most random problems should be solvable";
}

TEST(RiemannSolvers, NameParsingRoundTrip) {
  for (RiemannKind K : AllSolvers)
    EXPECT_EQ(parseRiemannKind(riemannKindName(K)), K);
  EXPECT_EQ(parseRiemannKind("llf"), RiemannKind::Rusanov);
  EXPECT_FALSE(parseRiemannKind("osher").has_value());
}
