//===- tests/CheckpointTest.cpp - Save/restart correctness ----------------===//

#include "io/Checkpoint.h"
#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace sacfd;

namespace {

SerialBackend Exec;

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

} // namespace

TEST(Checkpoint, RoundTripPreservesEverything) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  S.advanceSteps(7);
  std::string Path = tempPath("roundtrip.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S));

  ArraySolver<1> Fresh(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  ASSERT_TRUE(loadCheckpoint(Path, Fresh));
  EXPECT_DOUBLE_EQ(Fresh.time(), S.time());
  EXPECT_EQ(Fresh.stepCount(), S.stepCount());
  EXPECT_EQ(maxFieldDifference(S, Fresh), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  // run A: 20 uninterrupted steps.  run B: 10 steps, checkpoint, restore
  // into a fresh solver, 10 more.  Fields must agree bitwise.
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> A(sodProblem(96), C, Exec);
  A.advanceSteps(20);

  ArraySolver<1> B1(sodProblem(96), C, Exec);
  B1.advanceSteps(10);
  std::string Path = tempPath("restart.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, B1));

  ArraySolver<1> B2(sodProblem(96), C, Exec);
  ASSERT_TRUE(loadCheckpoint(Path, B2));
  B2.advanceSteps(10);

  EXPECT_DOUBLE_EQ(A.time(), B2.time());
  EXPECT_EQ(A.stepCount(), B2.stepCount());
  EXPECT_EQ(maxFieldDifference(A, B2), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, CrossEngineRestore) {
  // A checkpoint is engine-independent state: save from the array
  // engine, restore into the fused engine.
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<2> A(riemann2D(12), C, Exec);
  A.advanceSteps(4);
  std::string Path = tempPath("crossengine.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, A));

  FusedSolver<2> F(riemann2D(12), C, Exec);
  ASSERT_TRUE(loadCheckpoint(Path, F));
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);

  // And both continue identically.
  A.advanceSteps(4);
  F.advanceSteps(4);
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, RejectsGeometryMismatch) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  std::string Path = tempPath("mismatch.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S));

  ArraySolver<1> WrongCells(sodProblem(128), SchemeConfig::figureScheme(),
                            Exec);
  EXPECT_FALSE(loadCheckpoint(Path, WrongCells));

  ArraySolver<1> WrongGhost(sodProblem(64, /*GhostLayers=*/3),
                            SchemeConfig::figureScheme(), Exec);
  EXPECT_FALSE(loadCheckpoint(Path, WrongGhost));

  Problem<1> OtherGamma = sodProblem(64);
  OtherGamma.G = Gas(1.67);
  ArraySolver<1> WrongGas(OtherGamma, SchemeConfig::figureScheme(), Exec);
  EXPECT_FALSE(loadCheckpoint(Path, WrongGas));
  std::remove(Path.c_str());
}

TEST(Checkpoint, RejectsWrongRank) {
  ArraySolver<2> S2(riemann2D(8), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("rank.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S2));
  ArraySolver<1> S1(sodProblem(8), SchemeConfig::benchmarkScheme(), Exec);
  EXPECT_FALSE(loadCheckpoint(Path, S1));
  std::remove(Path.c_str());
}

TEST(Checkpoint, RejectsTruncatedAndCorruptFiles) {
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("trunc.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S));

  // Truncate the field section.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    Bytes.resize(Bytes.size() - 16);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  EXPECT_FALSE(loadCheckpoint(Path, T));

  // Garbage magic.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "not a checkpoint at all";
  }
  EXPECT_FALSE(loadCheckpoint(Path, T));
  EXPECT_FALSE(loadCheckpoint(tempPath("missing.ckp"), T));
  std::remove(Path.c_str());
}

TEST(Checkpoint, FailedTruncatedLoadPreservesField) {
  // Regression: the loader used to fread straight into the live field, so
  // a truncated payload partially overwrote it before the failure was
  // detected.  A failed load must leave the solver bit-identical.
  ArraySolver<1> Source(sodProblem(32), SchemeConfig::benchmarkScheme(),
                        Exec);
  Source.advanceSteps(5);
  std::string Path = tempPath("truncpreserve.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, Source));
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    // Keep the header and half the payload.
    Bytes.resize(Bytes.size() / 2);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  T.advanceSteps(2);
  ArraySolver<1> Reference(sodProblem(32), SchemeConfig::benchmarkScheme(),
                           Exec);
  Reference.advanceSteps(2);

  EXPECT_FALSE(loadCheckpoint(Path, T));
  EXPECT_EQ(maxFieldDifference(T, Reference), 0.0)
      << "failed load must not touch the field";
  EXPECT_DOUBLE_EQ(T.time(), Reference.time());
  EXPECT_EQ(T.stepCount(), Reference.stepCount());

  // And the intact reference checkpoint still loads after the failure.
  std::string Good = tempPath("truncpreserve_good.ckp");
  ASSERT_TRUE(saveCheckpoint(Good, Source));
  ASSERT_TRUE(loadCheckpoint(Good, T));
  EXPECT_EQ(maxFieldDifference(T, Source), 0.0);
  std::remove(Path.c_str());
  std::remove(Good.c_str());
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("trailing.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S));
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    Out << "junk";
  }
  ArraySolver<1> T(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  EXPECT_FALSE(loadCheckpoint(Path, T));
  std::remove(Path.c_str());
}

TEST(Checkpoint, ThreeDimensionalRoundTrip) {
  ArraySolver<3> S(sphericalBlast3D(6), SchemeConfig::benchmarkScheme(),
                   Exec);
  S.advanceSteps(2);
  std::string Path = tempPath("rank3.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S));
  ArraySolver<3> T(sphericalBlast3D(6), SchemeConfig::benchmarkScheme(),
                   Exec);
  ASSERT_TRUE(loadCheckpoint(Path, T));
  EXPECT_EQ(maxFieldDifference(S, T), 0.0);
  std::remove(Path.c_str());
}
