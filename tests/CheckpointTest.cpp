//===- tests/CheckpointTest.cpp - Save/restart correctness ----------------===//
//
// Round-trip and restart bit-identity of the v2 checkpoint format, the
// full CheckpointError taxonomy (every variant constructed, most through
// the fault-injection layer), v1 compatibility, exact file-size
// validation in both directions, the atomic save path, and the
// retry-with-backoff wrapper.
//
//===----------------------------------------------------------------------===//

#include "io/Checkpoint.h"
#include "runtime/SerialBackend.h"
#include "solver/ArraySolver.h"
#include "solver/Diagnostics.h"
#include "solver/FusedSolver.h"
#include "solver/Problems.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

using namespace sacfd;

namespace {

SerialBackend Exec;

std::string tempPath(const char *Name) {
  return std::string(::testing::TempDir()) + "/" + Name;
}

/// Disarms any leftover fault plan when a test exits early.
struct FaultGuard {
  FaultGuard() { iofault::clear(); }
  ~FaultGuard() { iofault::clear(); }
};

/// Byte count of \p Path; 0 if missing.
uint64_t sizeOf(const std::string &Path) {
  std::error_code Ec;
  uint64_t Size = std::filesystem::file_size(Path, Ec);
  return Ec ? 0 : Size;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips and restart bit-identity
//===----------------------------------------------------------------------===//

TEST(Checkpoint, RoundTripPreservesEverything) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  S.advanceSteps(7);
  std::string Path = tempPath("roundtrip.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  ArraySolver<1> Fresh(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  ASSERT_TRUE(loadCheckpoint(Path, Fresh).ok());
  EXPECT_DOUBLE_EQ(Fresh.time(), S.time());
  EXPECT_EQ(Fresh.stepCount(), S.stepCount());
  EXPECT_EQ(maxFieldDifference(S, Fresh), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  // run A: 20 uninterrupted steps.  run B: 10 steps, checkpoint, restore
  // into a fresh solver, 10 more.  Fields must agree bitwise.
  SchemeConfig C = SchemeConfig::figureScheme();
  ArraySolver<1> A(sodProblem(96), C, Exec);
  A.advanceSteps(20);

  ArraySolver<1> B1(sodProblem(96), C, Exec);
  B1.advanceSteps(10);
  std::string Path = tempPath("restart.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, B1).ok());

  ArraySolver<1> B2(sodProblem(96), C, Exec);
  ASSERT_TRUE(loadCheckpoint(Path, B2).ok());
  B2.advanceSteps(10);

  EXPECT_DOUBLE_EQ(A.time(), B2.time());
  EXPECT_EQ(A.stepCount(), B2.stepCount());
  EXPECT_EQ(maxFieldDifference(A, B2), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, PrescribedBoundaryAfterRollback) {
  // Double Mach reflection drives its top wall from a time-dependent
  // Prescribed state, so the ghost rows encode the solver clock.  Roll
  // a run back mid-flight (load an earlier checkpoint into the same
  // solver) and require every cell -- ghost rows included -- to match
  // an uninterrupted run bit for bit.  A stale clock after the rewind
  // would feed the prescribed state the wrong time on the next fill.
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  C.Cfl = 0.3;
  Problem<2> P = doubleMachReflection(16);

  FusedSolver<2> A(P, C, Exec);
  A.advanceSteps(6);

  FusedSolver<2> B(P, C, Exec);
  B.advanceSteps(4);
  std::string Path = tempPath("dmr-rollback.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, B).ok());
  B.advanceSteps(2); // run ahead of the checkpoint...
  ASSERT_TRUE(loadCheckpoint(Path, B).ok()); // ...then roll back
  EXPECT_EQ(B.stepCount(), 4u);
  B.advanceSteps(2);

  EXPECT_DOUBLE_EQ(A.time(), B.time());
  EXPECT_EQ(A.stepCount(), B.stepCount());
  ASSERT_EQ(A.field().size(), B.field().size());
  std::vector<Cons<2>> Sa(A.field().size()), Sb(B.field().size());
  A.field().exportTo(Sa.data());
  B.field().exportTo(Sb.data());
  EXPECT_EQ(std::memcmp(Sa.data(), Sb.data(), Sa.size() * sizeof(Cons<2>)),
            0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, AdvanceToSnapAfterRollback) {
  // advanceTo clamps the final dt and snaps the clock onto the target
  // through restoreClock.  Drive a rolled-back double-Mach run through
  // the same advanceTo as an uninterrupted one, then take one more
  // step so the prescribed wall is refilled from the snapped clock;
  // the full storage must still agree bitwise.
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  C.Cfl = 0.3;
  Problem<2> P = doubleMachReflection(16);

  FusedSolver<2> A(P, C, Exec);
  A.advanceSteps(3);
  const double Target = A.time() * 1.5; // not step-aligned: forces a snap
  A.advanceTo(Target);
  A.advanceSteps(1);

  FusedSolver<2> B(P, C, Exec);
  B.advanceSteps(3);
  std::string Path = tempPath("dmr-snap.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, B).ok());
  B.advanceSteps(3);
  ASSERT_TRUE(loadCheckpoint(Path, B).ok());
  B.advanceTo(Target);
  B.advanceSteps(1);

  EXPECT_DOUBLE_EQ(A.time(), B.time());
  EXPECT_EQ(A.stepCount(), B.stepCount());
  std::vector<Cons<2>> Sa(A.field().size()), Sb(B.field().size());
  A.field().exportTo(Sa.data());
  B.field().exportTo(Sb.data());
  EXPECT_EQ(std::memcmp(Sa.data(), Sb.data(), Sa.size() * sizeof(Cons<2>)),
            0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, CrossEngineRestore) {
  // A checkpoint is engine-independent state: save from the array
  // engine, restore into the fused engine.
  SchemeConfig C = SchemeConfig::benchmarkScheme();
  ArraySolver<2> A(riemann2D(12), C, Exec);
  A.advanceSteps(4);
  std::string Path = tempPath("crossengine.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, A).ok());

  FusedSolver<2> F(riemann2D(12), C, Exec);
  ASSERT_TRUE(loadCheckpoint(Path, F).ok());
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);

  // And both continue identically.
  A.advanceSteps(4);
  F.advanceSteps(4);
  EXPECT_EQ(maxFieldDifference(A, F), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, ThreeDimensionalRoundTrip) {
  ArraySolver<3> S(sphericalBlast3D(6), SchemeConfig::benchmarkScheme(),
                   Exec);
  S.advanceSteps(2);
  std::string Path = tempPath("rank3.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());
  ArraySolver<3> T(sphericalBlast3D(6), SchemeConfig::benchmarkScheme(),
                   Exec);
  ASSERT_TRUE(loadCheckpoint(Path, T).ok());
  EXPECT_EQ(maxFieldDifference(S, T), 0.0);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// v1 compatibility
//===----------------------------------------------------------------------===//

TEST(Checkpoint, LegacyV1FilesStillLoad) {
  ArraySolver<1> S(sodProblem(48), SchemeConfig::figureScheme(), Exec);
  S.advanceSteps(6);
  std::string Path = tempPath("legacy.ckp");
  ASSERT_TRUE(saveCheckpointLegacyV1(Path, S).ok());

  ArraySolver<1> T(sodProblem(48), SchemeConfig::figureScheme(), Exec);
  ASSERT_TRUE(loadCheckpoint(Path, T).ok());
  EXPECT_DOUBLE_EQ(T.time(), S.time());
  EXPECT_EQ(T.stepCount(), S.stepCount());
  EXPECT_EQ(maxFieldDifference(S, T), 0.0);
  std::remove(Path.c_str());
}

TEST(Checkpoint, LegacyV1ValidatesGeometryAndSize) {
  ArraySolver<1> S(sodProblem(48), SchemeConfig::figureScheme(), Exec);
  std::string Path = tempPath("legacy_geom.ckp");
  ASSERT_TRUE(saveCheckpointLegacyV1(Path, S).ok());

  ArraySolver<1> Wrong(sodProblem(96), SchemeConfig::figureScheme(), Exec);
  EXPECT_EQ(loadCheckpoint(Path, Wrong).Error,
            CheckpointError::GeometryMismatch);

  // v1 has no payload byte count in the header, so the exact-size check
  // is the only tear detection it gets.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    Out << "junk";
  }
  ArraySolver<1> T(sodProblem(48), SchemeConfig::figureScheme(), Exec);
  EXPECT_EQ(loadCheckpoint(Path, T).Error, CheckpointError::Truncated);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The error taxonomy, file-surgery edition
//===----------------------------------------------------------------------===//

TEST(Checkpoint, MissingFileIsNotFound) {
  ArraySolver<1> T(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStatus St = loadCheckpoint(tempPath("missing.ckp"), T);
  EXPECT_EQ(St.Error, CheckpointError::NotFound);
  EXPECT_NE(St.str().find("not-found"), std::string::npos);
}

TEST(Checkpoint, RejectsGeometryMismatch) {
  ArraySolver<1> S(sodProblem(64), SchemeConfig::figureScheme(), Exec);
  std::string Path = tempPath("mismatch.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  ArraySolver<1> WrongCells(sodProblem(128), SchemeConfig::figureScheme(),
                            Exec);
  EXPECT_EQ(loadCheckpoint(Path, WrongCells).Error,
            CheckpointError::GeometryMismatch);

  ArraySolver<1> WrongGhost(sodProblem(64, /*GhostLayers=*/3),
                            SchemeConfig::figureScheme(), Exec);
  CheckpointStatus St = loadCheckpoint(Path, WrongGhost);
  EXPECT_EQ(St.Error, CheckpointError::GeometryMismatch);
  EXPECT_NE(St.Detail.find("ghost"), std::string::npos);

  Problem<1> OtherGamma = sodProblem(64);
  OtherGamma.G = Gas(1.67);
  ArraySolver<1> WrongGas(OtherGamma, SchemeConfig::figureScheme(), Exec);
  EXPECT_EQ(loadCheckpoint(Path, WrongGas).Error,
            CheckpointError::GeometryMismatch);
  std::remove(Path.c_str());
}

TEST(Checkpoint, RejectsWrongRank) {
  ArraySolver<2> S2(riemann2D(8), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("rank.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S2).ok());
  ArraySolver<1> S1(sodProblem(8), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStatus St = loadCheckpoint(Path, S1);
  EXPECT_EQ(St.Error, CheckpointError::GeometryMismatch);
  EXPECT_NE(St.Detail.find("rank"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(Checkpoint, ShortFileIsTruncatedWithExactByteCount) {
  ArraySolver<1> S(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("trunc.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());
  uint64_t Full = sizeOf(Path);

  // Drop exactly 16 payload bytes; the detail must count them.
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    Bytes.resize(Bytes.size() - 16);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  ASSERT_EQ(sizeOf(Path), Full - 16);
  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStatus St = loadCheckpoint(Path, T);
  EXPECT_EQ(St.Error, CheckpointError::Truncated);
  EXPECT_NE(St.Detail.find("16 bytes short"), std::string::npos) << St.str();

  // Garbage magic.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "not a checkpoint at all, but long enough for the magic read";
  }
  EXPECT_EQ(loadCheckpoint(Path, T).Error, CheckpointError::BadMagic);

  // Sub-magic-size file.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << "tiny";
  }
  EXPECT_EQ(loadCheckpoint(Path, T).Error, CheckpointError::Truncated);
  std::remove(Path.c_str());
}

TEST(Checkpoint, TrailingGarbageIsTruncatedWithExactByteCount) {
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("trailing.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::app);
    Out << "junk";
  }
  ArraySolver<1> T(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStatus St = loadCheckpoint(Path, T);
  EXPECT_EQ(St.Error, CheckpointError::Truncated);
  EXPECT_NE(St.Detail.find("4 trailing bytes"), std::string::npos)
      << St.str();
  std::remove(Path.c_str());
}

TEST(Checkpoint, FailedTruncatedLoadPreservesField) {
  // Regression: the loader used to fread straight into the live field, so
  // a truncated payload partially overwrote it before the failure was
  // detected.  A failed load must leave the solver bit-identical.
  ArraySolver<1> Source(sodProblem(32), SchemeConfig::benchmarkScheme(),
                        Exec);
  Source.advanceSteps(5);
  std::string Path = tempPath("truncpreserve.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, Source).ok());
  {
    std::ifstream In(Path, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    // Keep the header and half the payload.
    Bytes.resize(Bytes.size() / 2);
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }

  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  T.advanceSteps(2);
  ArraySolver<1> Reference(sodProblem(32), SchemeConfig::benchmarkScheme(),
                           Exec);
  Reference.advanceSteps(2);

  EXPECT_EQ(loadCheckpoint(Path, T).Error, CheckpointError::Truncated);
  EXPECT_EQ(maxFieldDifference(T, Reference), 0.0)
      << "failed load must not touch the field";
  EXPECT_DOUBLE_EQ(T.time(), Reference.time());
  EXPECT_EQ(T.stepCount(), Reference.stepCount());

  // And the intact reference checkpoint still loads after the failure.
  std::string Good = tempPath("truncpreserve_good.ckp");
  ASSERT_TRUE(saveCheckpoint(Good, Source).ok());
  ASSERT_TRUE(loadCheckpoint(Good, T).ok());
  EXPECT_EQ(maxFieldDifference(T, Source), 0.0);
  std::remove(Path.c_str());
  std::remove(Good.c_str());
}

TEST(Checkpoint, FailedChecksumLoadPreservesField) {
  // Same invariant for the corruption path: the payload stages through a
  // scratch buffer, so a checksum failure cannot leave a half-copied
  // field behind.
  ArraySolver<1> Source(sodProblem(32), SchemeConfig::benchmarkScheme(),
                        Exec);
  Source.advanceSteps(5);
  std::string Path = tempPath("sumpreserve.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, Source).ok());
  {
    // Flip one payload byte on disk; size and header stay valid.
    std::fstream F(Path, std::ios::binary | std::ios::in | std::ios::out);
    F.seekp(-8, std::ios::end);
    char B = 0;
    F.read(&B, 1);
    F.seekp(-8, std::ios::end);
    B = static_cast<char>(B ^ 1);
    F.write(&B, 1);
  }

  ArraySolver<1> T(sodProblem(32), SchemeConfig::benchmarkScheme(), Exec);
  T.advanceSteps(2);
  ArraySolver<1> Reference(sodProblem(32), SchemeConfig::benchmarkScheme(),
                           Exec);
  Reference.advanceSteps(2);

  EXPECT_EQ(loadCheckpoint(Path, T).Error,
            CheckpointError::ChecksumMismatch);
  EXPECT_EQ(maxFieldDifference(T, Reference), 0.0);
  EXPECT_EQ(T.stepCount(), Reference.stepCount());
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// The error taxonomy, fault-injection edition: every CheckpointError
// variant constructed through support/FaultInjection.
//===----------------------------------------------------------------------===//

TEST(CheckpointFaults, FailOpenOnLoadIsNotFound) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_notfound.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  iofault::Plan P;
  P.FailOpenNth = 1;
  iofault::setPlan(P);
  EXPECT_EQ(loadCheckpoint(Path, S).Error, CheckpointError::NotFound);
  EXPECT_EQ(iofault::faultsFired(), 1u);
  // One-shot: the very next load runs clean.
  EXPECT_TRUE(loadCheckpoint(Path, S).ok());
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, WriteFaultsAreWriteFailedAndLeaveNoFile) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_writefail.ckp");

  for (const char *Spec :
       {"fail-open=1", "fail-write=1", "short-write=2", "fail-rename"}) {
    iofault::Plan P;
    std::string Err;
    ASSERT_TRUE(iofault::parsePlan(Spec, P, Err)) << Err;
    iofault::setPlan(P);
    CheckpointStatus St = saveCheckpoint(Path, S);
    EXPECT_EQ(St.Error, CheckpointError::WriteFailed) << Spec;
    EXPECT_EQ(sizeOf(Path), 0u) << Spec << ": no file under the real name";
    EXPECT_EQ(sizeOf(Path + ".tmp"), 0u) << Spec << ": temp cleaned up";
    iofault::clear();
  }
}

TEST(CheckpointFaults, FailedSaveKeepsPreviousCheckpoint) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_keepold.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());
  uint64_t OldSize = sizeOf(Path);
  ASSERT_GT(OldSize, 0u);

  S.advanceSteps(3);
  iofault::Plan P;
  P.FailRename = true;
  iofault::setPlan(P);
  EXPECT_EQ(saveCheckpoint(Path, S).Error, CheckpointError::WriteFailed);
  iofault::clear();

  // The old generation survived the failed overwrite, bit-for-bit enough
  // to load.
  EXPECT_EQ(sizeOf(Path), OldSize);
  ArraySolver<1> T(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  ASSERT_TRUE(loadCheckpoint(Path, T).ok());
  EXPECT_EQ(T.stepCount(), 0u);
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, TornWriteSurfacesAsTruncatedAtLoad) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_torn.ckp");

  // The lying disk: the payload write drops half its bytes but reports
  // success, so the save "succeeds" and the tear only surfaces at load
  // as an exact-size mismatch.
  iofault::Plan P;
  P.TornWriteNth = 2; // write 1 = header, write 2 = payload
  iofault::setPlan(P);
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());
  iofault::clear();

  CheckpointStatus St = loadCheckpoint(Path, S);
  EXPECT_EQ(St.Error, CheckpointError::Truncated);
  EXPECT_NE(St.Detail.find("short of its payload"), std::string::npos)
      << St.str();
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, BitFlipOnMagicReadIsBadMagic) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_magic.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  iofault::Plan P;
  P.BitFlipReadNth = 1; // read 1 = the 8-byte magic
  P.BitFlipByte = 0;
  iofault::setPlan(P);
  EXPECT_EQ(loadCheckpoint(Path, S).Error, CheckpointError::BadMagic);
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, BitFlipOnVersionReadIsVersionSkew) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_version.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  // Read 2 covers the header prefix after the magic; its byte 0 is the
  // version field, and 2 xor 1 = 3 is a version this build refuses.
  iofault::Plan P;
  P.BitFlipReadNth = 2;
  P.BitFlipByte = 0;
  iofault::setPlan(P);
  CheckpointStatus St = loadCheckpoint(Path, S);
  EXPECT_EQ(St.Error, CheckpointError::VersionSkew);
  EXPECT_NE(St.Detail.find("v3"), std::string::npos) << St.str();
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, BitFlipOnV1GeometryReadIsGeometryMismatch) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_geom.ckp");
  // v1 deliberately: v2's header checksum catches the flipped bit first
  // (integrity before compatibility), so the geometry path needs an
  // unchecksummed header to be reachable via read corruption.
  ASSERT_TRUE(saveCheckpointLegacyV1(Path, S).ok());

  // Byte 8 of read 2 is the ghost-layer count (prefix offset 16).
  iofault::Plan P;
  P.BitFlipReadNth = 2;
  P.BitFlipByte = 8;
  iofault::setPlan(P);
  CheckpointStatus St = loadCheckpoint(Path, S);
  EXPECT_EQ(St.Error, CheckpointError::GeometryMismatch);
  EXPECT_NE(St.Detail.find("ghost"), std::string::npos) << St.str();
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, BitFlipOnHeaderReadIsChecksumMismatch) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_hdrsum.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  // Byte 16 of read 2 is the step count — covered by the v2 header
  // checksum but not by the magic/version gates, so the flip must be
  // reported as corruption, not as a geometry mismatch.
  iofault::Plan P;
  P.BitFlipReadNth = 2;
  P.BitFlipByte = 16;
  iofault::setPlan(P);
  CheckpointStatus St = loadCheckpoint(Path, S);
  EXPECT_EQ(St.Error, CheckpointError::ChecksumMismatch);
  EXPECT_NE(St.Detail.find("header"), std::string::npos) << St.str();
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, BitFlipOnPayloadReadIsChecksumMismatch) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  S.advanceSteps(3);
  std::string Path = tempPath("fi_paysum.ckp");
  ASSERT_TRUE(saveCheckpoint(Path, S).ok());

  iofault::Plan P;
  P.BitFlipReadNth = 4; // reads: magic, prefix, v2 tail, payload
  iofault::setPlan(P);
  ArraySolver<1> T(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  CheckpointStatus St = loadCheckpoint(Path, T);
  EXPECT_EQ(St.Error, CheckpointError::ChecksumMismatch);
  EXPECT_NE(St.Detail.find("payload"), std::string::npos) << St.str();
  EXPECT_EQ(T.stepCount(), 0u) << "failed load must not restore the clock";
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Retry with backoff
//===----------------------------------------------------------------------===//

TEST(CheckpointFaults, RetryRecoversFromTransientWriteFault) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_retry.ckp");

  iofault::Plan P;
  P.FailWriteNth = 1;
  iofault::setPlan(P);
  RetryPolicy Retry{/*Attempts=*/3, /*BackoffMs=*/1};
  EXPECT_TRUE(saveCheckpointWithRetry(Path, S, Retry).ok())
      << "one-shot fault, attempt 2 must succeed";
  EXPECT_EQ(iofault::faultsFired(), 1u);
  ASSERT_TRUE(loadCheckpoint(Path, S).ok());
  std::remove(Path.c_str());
}

TEST(CheckpointFaults, RetryGivesUpAfterBudget) {
  FaultGuard FG;
  ArraySolver<1> S(sodProblem(16), SchemeConfig::benchmarkScheme(), Exec);
  std::string Path = tempPath("fi_retry_exhaust.ckp");

  // Three one-shot faults, one per attempt: every attempt fails.
  iofault::Plan P;
  P.FailWriteNth = 1;  // attempt 1: header write (op 1) fails
  P.ShortWriteNth = 3; // attempt 2: header is op 2, payload op 3 tears
  P.FailOpenNth = 3;   // attempt 3: its open is the third one
  iofault::setPlan(P);
  RetryPolicy Retry{/*Attempts=*/3, /*BackoffMs=*/1};
  EXPECT_EQ(saveCheckpointWithRetry(Path, S, Retry).Error,
            CheckpointError::WriteFailed);
  EXPECT_EQ(sizeOf(Path), 0u);
  std::remove(Path.c_str());
}
